open Sf_ir

type t = {
  field : string;
  offsets : int list list;
  min_flat : int;
  max_flat : int;
  size_elements : int;
  init_elements : int;
}

let flatten_offset ~shape offsets =
  if List.length offsets <> List.length shape then
    invalid_arg "Internal_buffer.flatten_offset: rank mismatch";
  let rec go shape offsets =
    match (shape, offsets) with
    | [], [] -> 0
    | _ :: shape_rest, o :: offsets_rest ->
        let stride = List.fold_left ( * ) 1 shape_rest in
        (o * stride) + go shape_rest offsets_rest
    | _, _ -> assert false
  in
  go shape offsets

let of_stencil (p : Program.t) (s : Stencil.t) =
  let full_rank = Program.rank p in
  let w = p.Program.vector_width in
  let fields = Stencil.input_fields s in
  List.filter_map
    (fun field ->
      if List.length (Program.field_axes p field) <> full_rank then None
      else begin
        let offsets = Stencil.accesses_of_field s field in
        let flats = List.map (flatten_offset ~shape:p.Program.shape) offsets in
        let min_flat = List.fold_left min (List.hd flats) flats in
        let max_flat = List.fold_left max (List.hd flats) flats in
        let buffered = List.length offsets > 1 in
        let size_elements = if buffered then max_flat - min_flat + w else 0 in
        (* [init_elements] is the number of extra input elements (beyond the
           one-element-per-output streaming rate) that must arrive before
           the first output: the shift register must be full (size - 1,
           since the newest element is consumed the same cycle) and the
           furthest-ahead access must have arrived (max_flat). This is the
           paper's initialization phase of max{B_i} up to the -1. *)
        let init_elements =
          if buffered then max (size_elements - 1) (max 0 max_flat) else max 0 max_flat
        in
        Some { field; offsets; min_flat; max_flat; size_elements; init_elements }
      end)
    fields

let stencil_init_delay p s =
  List.fold_left (fun acc b -> max acc b.init_elements) 0 (of_stencil p s)

let stencil_init_cycles p s =
  let w = p.Program.vector_width in
  Sf_support.Util.ceil_div (stencil_init_delay p s) (max 1 w)

let fill_start all b =
  let longest = List.fold_left (fun acc x -> max acc x.init_elements) 0 all in
  longest - b.init_elements

let total_buffer_elements p s =
  List.fold_left (fun acc b -> acc + b.size_elements) 0 (of_stencil p s)

let pp fmt b =
  Format.fprintf fmt "%s: %d accesses, flat span [%d, %d], size %d, init %d" b.field
    (List.length b.offsets) b.min_flat b.max_flat b.size_elements b.init_elements
