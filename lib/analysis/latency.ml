open Sf_ir

type config = {
  add : int;
  mul : int;
  div : int;
  sqrt : int;
  compare : int;
  logic : int;
  select : int;
  call : int;
  min_max : int;
}

let default =
  { add = 8; mul = 8; div = 32; sqrt = 32; compare = 2; logic = 1; select = 1; call = 32; min_max = 2 }

let cheap =
  { add = 1; mul = 1; div = 1; sqrt = 1; compare = 1; logic = 1; select = 1; call = 1; min_max = 1 }

let binop_latency cfg = function
  | Expr.Add | Expr.Sub -> cfg.add
  | Expr.Mul -> cfg.mul
  | Expr.Div -> cfg.div
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Eq | Expr.Ne -> cfg.compare
  | Expr.And | Expr.Or -> cfg.logic

let func_latency cfg = function
  | Expr.Sqrt -> cfg.sqrt
  | Expr.Min | Expr.Max -> cfg.min_max
  | Expr.Abs -> cfg.logic
  | Expr.Exp | Expr.Log | Expr.Pow | Expr.Sin | Expr.Cos | Expr.Floor | Expr.Ceil -> cfg.call

(* Critical path over the hash-consed DAG: each distinct node's depth is
   computed once, however often the inlined tree repeats it. The result
   is sharing-invariant (a maximum over root-to-leaf paths), so it equals
   the historical tree walk exactly — post-fusion bodies just no longer
   pay an exponential walk for it. Unbound variables contribute depth 0,
   matching the old lookup-miss behavior. *)
let critical_path cfg (body : Expr.body) =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec depth t =
    match Hashtbl.find_opt memo (Dag.id t) with
    | Some d -> d
    | None ->
        let d =
          match Dag.view t with
          | Dag.Const _ | Dag.Access _ | Dag.Var _ -> 0
          | Dag.Unary (Expr.Neg, x) -> cfg.add + depth x
          | Dag.Unary (Expr.Not, x) -> cfg.logic + depth x
          | Dag.Binary (op, x, y) -> binop_latency cfg op + max (depth x) (depth y)
          | Dag.Select { cond; if_true; if_false } ->
              cfg.select + max (depth cond) (max (depth if_true) (depth if_false))
          | Dag.Call (f, args) ->
              func_latency cfg f + List.fold_left (fun acc a -> max acc (depth a)) 0 args
        in
        Hashtbl.replace memo (Dag.id t) d;
        d
  in
  depth (Dag.of_body body)

let pp_config fmt cfg =
  Format.fprintf fmt "add=%d mul=%d div=%d sqrt=%d cmp=%d sel=%d call=%d" cfg.add cfg.mul cfg.div
    cfg.sqrt cfg.compare cfg.select cfg.call
