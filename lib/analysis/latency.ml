open Sf_ir

type config = {
  add : int;
  mul : int;
  div : int;
  sqrt : int;
  compare : int;
  logic : int;
  select : int;
  call : int;
  min_max : int;
}

let default =
  { add = 8; mul = 8; div = 32; sqrt = 32; compare = 2; logic = 1; select = 1; call = 32; min_max = 2 }

let cheap =
  { add = 1; mul = 1; div = 1; sqrt = 1; compare = 1; logic = 1; select = 1; call = 1; min_max = 1 }

let binop_latency cfg = function
  | Expr.Add | Expr.Sub -> cfg.add
  | Expr.Mul -> cfg.mul
  | Expr.Div -> cfg.div
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Eq | Expr.Ne -> cfg.compare
  | Expr.And | Expr.Or -> cfg.logic

let func_latency cfg = function
  | Expr.Sqrt -> cfg.sqrt
  | Expr.Min | Expr.Max -> cfg.min_max
  | Expr.Abs -> cfg.logic
  | Expr.Exp | Expr.Log | Expr.Pow | Expr.Sin | Expr.Cos | Expr.Floor | Expr.Ceil -> cfg.call

let critical_path cfg (body : Expr.body) =
  let depth_of_var = Hashtbl.create 8 in
  let rec depth expr =
    match expr with
    | Expr.Const _ | Expr.Access _ -> 0
    | Expr.Var v -> ( match Hashtbl.find_opt depth_of_var v with Some d -> d | None -> 0)
    | Expr.Unary (Expr.Neg, x) -> cfg.add + depth x
    | Expr.Unary (Expr.Not, x) -> cfg.logic + depth x
    | Expr.Binary (op, x, y) -> binop_latency cfg op + max (depth x) (depth y)
    | Expr.Select { cond; if_true; if_false } ->
        cfg.select + max (depth cond) (max (depth if_true) (depth if_false))
    | Expr.Call (f, args) ->
        func_latency cfg f + List.fold_left (fun acc a -> max acc (depth a)) 0 args
  in
  List.iter (fun (name, e) -> Hashtbl.replace depth_of_var name (depth e)) body.Expr.lets;
  depth body.Expr.result

let pp_config fmt cfg =
  Format.fprintf fmt "add=%d mul=%d div=%d sqrt=%d cmp=%d sel=%d call=%d" cfg.add cfg.mul cfg.div
    cfg.sqrt cfg.compare cfg.select cfg.call
