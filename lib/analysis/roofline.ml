let attainable_ops_per_s ~ai_ops_per_byte ~bandwidth_bytes_per_s =
  ai_ops_per_byte *. bandwidth_bytes_per_s

let bandwidth_to_saturate ~compute_ops_per_s ~ai_ops_per_byte =
  if ai_ops_per_byte <= 0. then invalid_arg "Roofline.bandwidth_to_saturate: non-positive AI";
  compute_ops_per_s /. ai_ops_per_byte

let fraction_of_roof ~measured_ops_per_s ~ai_ops_per_byte ~bandwidth_bytes_per_s =
  let roof = attainable_ops_per_s ~ai_ops_per_byte ~bandwidth_bytes_per_s in
  if roof <= 0. then 0. else measured_ops_per_s /. roof

let is_bandwidth_bound ~ai_ops_per_byte ~bandwidth_bytes_per_s ~compute_ops_per_s =
  attainable_ops_per_s ~ai_ops_per_byte ~bandwidth_bytes_per_s < compute_ops_per_s
