open Sf_ir

type t = {
  profile : Expr.op_profile;
  flops_per_cell : int;
  work_profile : Expr.op_profile;
  tree_profile : Expr.op_profile;
  work_flops_per_cell : int;
  tree_flops_per_cell : int;
  read_elements : int;
  written_elements : int;
  read_bytes : int;
  written_bytes : int;
}

(* Tree profiles of deeply fused bodies saturate; keep the aggregate
   saturating too. *)
let sat_add a b =
  let s = a + b in
  if s < a || s < b then max_int else s

let sat_add_profile (a : Expr.op_profile) (b : Expr.op_profile) =
  {
    Expr.adds = sat_add a.Expr.adds b.Expr.adds;
    muls = sat_add a.Expr.muls b.Expr.muls;
    divs = sat_add a.Expr.divs b.Expr.divs;
    sqrts = sat_add a.Expr.sqrts b.Expr.sqrts;
    mins = sat_add a.Expr.mins b.Expr.mins;
    maxs = sat_add a.Expr.maxs b.Expr.maxs;
    other_calls = sat_add a.Expr.other_calls b.Expr.other_calls;
    compares = sat_add a.Expr.compares b.Expr.compares;
    data_branches = sat_add a.Expr.data_branches b.Expr.data_branches;
    const_branches = sat_add a.Expr.const_branches b.Expr.const_branches;
  }

let of_program (p : Program.t) =
  let profile =
    List.fold_left
      (fun acc s -> Expr.add_profile acc (Stencil.op_profile s))
      Expr.empty_profile p.Program.stencils
  in
  let work_profile =
    List.fold_left
      (fun acc s -> Expr.add_profile acc (Stencil.work_profile s))
      Expr.empty_profile p.Program.stencils
  in
  let tree_profile =
    List.fold_left
      (fun acc s -> sat_add_profile acc (Stencil.tree_profile s))
      Expr.empty_profile p.Program.stencils
  in
  let flops_per_cell = Expr.flop_count profile in
  let shape = p.Program.shape in
  let read_elements, read_bytes =
    List.fold_left
      (fun (elems, bytes) f ->
        (elems + Field.num_elements f ~shape, bytes + Field.size_bytes f ~shape))
      (0, 0) p.Program.inputs
  in
  let cells = Program.cells p in
  let written_elements = List.length p.Program.outputs * cells in
  let written_bytes = written_elements * Dtype.size_bytes p.Program.dtype in
  {
    profile;
    flops_per_cell;
    work_profile;
    tree_profile;
    work_flops_per_cell = Expr.flop_count work_profile;
    tree_flops_per_cell =
      sat_add
        (sat_add tree_profile.Expr.adds tree_profile.Expr.muls)
        (sat_add tree_profile.Expr.divs tree_profile.Expr.sqrts);
    read_elements;
    written_elements;
    read_bytes;
    written_bytes;
  }

let total_flops p = float_of_int (of_program p).flops_per_cell *. float_of_int (Program.cells p)
let total_operands t = t.read_elements + t.written_elements
let total_bytes t = t.read_bytes + t.written_bytes

let ai_ops_per_operand p =
  let t = of_program p in
  total_flops p /. float_of_int (total_operands t)

let ai_ops_per_byte p =
  let t = of_program p in
  total_flops p /. float_of_int (total_bytes t)

let streaming_operands_per_cycle (p : Program.t) =
  let full_rank = Program.rank p in
  let streaming_inputs =
    List.length (List.filter (fun f -> Field.rank f = full_rank) p.Program.inputs)
  in
  (streaming_inputs + List.length p.Program.outputs) * p.Program.vector_width

let streaming_bytes_per_second ~frequency_hz (p : Program.t) =
  let bytes_per_cycle =
    streaming_operands_per_cycle p * Dtype.size_bytes p.Program.dtype
  in
  float_of_int bytes_per_cycle *. frequency_hz

let pp fmt t =
  Format.fprintf fmt "%d flops/cell; reads %d operands (%d B), writes %d operands (%d B)"
    t.flops_per_cell t.read_elements t.read_bytes t.written_elements t.written_bytes
