(** Vectorization (paper, Sec. IV-C).

    Vectorizing by W reduces inner-loop iterations by W, shortens
    initialization phases and delay buffers (in cycles), and multiplies
    the bandwidth requirement and parallelism by W. The transformation
    itself only re-parameterizes the program; all W-dependence lives in
    the analyses. *)

val apply : Sf_ir.Program.t -> int -> Sf_ir.Program.t
(** Set the vector width; raises [Invalid_argument] if W does not divide
    the innermost extent or the program does not validate. *)

val legal_widths : Sf_ir.Program.t -> max:int -> int list
(** Powers of two up to [max] dividing the innermost extent. *)
