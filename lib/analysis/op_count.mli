(** Operation and data-volume accounting (paper, Sec. IX-A).

    With perfect reuse of all input and computed fields — the execution
    model StencilFlow builds — every off-chip input is read exactly once
    and every declared output written exactly once. For horizontal
    diffusion this yields the paper's 5·IJK + 5·I reads and 4·IJK writes,
    and an arithmetic intensity of 130/9 ops per operand (Eq. 2). *)

type t = {
  profile : Sf_ir.Expr.op_profile;  (** Aggregate over all stencils, per cell. *)
  flops_per_cell : int;
      (** Floating-point ops per iteration-space cell, counting adds,
          muls, divs and sqrt (each as one op), as the paper counts. *)
  work_profile : Sf_ir.Expr.op_profile;
      (** Sharing-aware aggregate ({!Sf_ir.Stencil.work_profile}): every
          distinct DAG node counted once — the ops the pipeline actually
          instantiates. *)
  tree_profile : Sf_ir.Expr.op_profile;
      (** Fully inlined aggregate ({!Sf_ir.Stencil.tree_profile},
          saturating): per-occurrence counts, as a sharing-blind
          evaluation would execute. *)
  work_flops_per_cell : int;
  tree_flops_per_cell : int;
      (** [work_flops_per_cell <= flops_per_cell <= tree_flops_per_cell];
          the spread is exactly the work CSE and fusion-preserved sharing
          save per cell. *)
  read_elements : int;  (** Total operands read from off-chip memory. *)
  written_elements : int;  (** Total operands written to off-chip memory. *)
  read_bytes : int;
  written_bytes : int;
}

val of_program : Sf_ir.Program.t -> t

val total_flops : Sf_ir.Program.t -> float
(** [flops_per_cell * cells]. *)

val total_operands : t -> int
val total_bytes : t -> int

val ai_ops_per_operand : Sf_ir.Program.t -> float
(** Upper-bound arithmetic intensity in ops/operand (Eq. 2, left side). *)

val ai_ops_per_byte : Sf_ir.Program.t -> float
(** Arithmetic intensity in ops/byte (Eq. 2): ops/operand divided by the
    operand size. *)

val streaming_operands_per_cycle : Sf_ir.Program.t -> int
(** Off-chip operands required per cycle during steady-state streaming:
    (full-rank inputs + outputs) x vector width. Lower-dimensional inputs
    are prefetched and do not stream (Sec. IX-B: "approximately 9
    operands/cycle" for horizontal diffusion at W=1). *)

val streaming_bytes_per_second : frequency_hz:float -> Sf_ir.Program.t -> float
(** Bandwidth needed to stream without stalling at a clock frequency. *)

val pp : Format.formatter -> t -> unit
