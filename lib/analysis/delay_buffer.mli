(** Delay buffers for inter-stencil reuse and deadlock freedom (paper,
    Sec. IV-B, Figs. 4 and 8).

    Edges between stencils replace off-chip round trips with direct
    dataflow, but a node whose inputs arrive through paths of different
    latency can deadlock: the fast path blocks on a full channel while the
    slow path starves. StencilFlow sizes the FIFO on each edge so that
    enough credits exist to cover the worst-case path-delay difference.

    Latency contributions accumulate along all paths through the DAG,
    including the initialization phase of the receiving node itself
    (Sec. IV-B): for an edge [e = (u, v)], [avail u] is the cycle at
    which [u]'s first word emerges (accumulated init + compute latencies
    along the longest path), and [need e] is the pipeline step at which
    [v] first consumes that field — fields with smaller internal buffers
    start filling later (Sec. IV-A), so edges into the same node can have
    different needs. [v] starts stepping at
    [t0 = max(0, max_e (avail - need))]; the buffer on [e] is
    [t0 + need e - avail u], and the edge with the largest slack gets
    zero. All quantities are in cycles = vector words (one word of W
    elements moves per cycle). *)

type node_info = {
  init_cycles : int;  (** Internal-buffer initialization (Sec. IV-A). *)
  compute_cycles : int;  (** Critical path of the computation AST. *)
}

type t = {
  program : Sf_ir.Program.t;
  nodes : (string * node_info) list;  (** Stencils and inputs (inputs are zero). *)
  edges : ((string * string) * int) list;  (** Buffer depth per edge, in words. *)
  latency_cycles : int;  (** L of Eq. 1: the longest path through the DAG. *)
  timing : (string * (int * int)) list;
      (** Per stencil, the derived schedule: the cycle its pipeline can
          take its first step, and the cycle its first output word
          emerges ([t0 + init + compute]). *)
}

val analyze : ?config:Latency.config -> Sf_ir.Program.t -> t
(** Runs the full analysis. The program must validate. *)

val node_info : t -> string -> node_info
(** Raises [Not_found] for unknown nodes. *)

val start_cycle : t -> string -> int
(** The cycle a stencil's pipeline takes its first step (t0 above). *)

val output_cycle : t -> string -> int
(** The cycle a stencil's first output word emerges; the program latency
    L is the maximum over stencils. *)

val buffer_for : t -> src:string -> dst:string -> int
(** Delay-buffer depth (words) for an edge; raises [Not_found] if the edge
    does not exist. *)

val edge_slack : t -> src:string -> dst:string -> int
(** Synonym of {!buffer_for} under its path-slack reading: the worst-case
    path-delay difference (in words) the edge's FIFO must absorb. The
    fault-injection harness uses it to aim under-provisioning
    experiments at the tightest edge. *)

val tightest_edge : t -> ((string * string) * int) option
(** The edge with the smallest strictly positive analysed depth — where
    under-provisioning bites first. [None] when every edge is zero
    (pure chains have no path-delay differences to absorb). *)

val total_delay_buffer_words : t -> int
(** Sum of all edge buffers — on-chip memory pressure of synchronization. *)

val total_fast_memory_elements : t -> int
(** Internal buffers + delay buffers, in elements: the program's total
    on-chip buffering requirement. *)

val pp : Format.formatter -> t -> unit
