(** Pipeline latency of a stencil's computation (paper, Sec. IV-B).

    The AST of a stencil computation forms a DAG whose critical path adds
    a delay between inputs entering and results exiting the pipeline. The
    per-operation latencies are type- and architecture-dependent, so they
    are provided as configuration with conservative defaults; the paper
    notes these delays are typically small (<100 cycles) and may safely be
    overestimated. *)

type config = {
  add : int;
  mul : int;
  div : int;
  sqrt : int;
  compare : int;
  logic : int;
  select : int;
  call : int;  (** Latency of math calls other than sqrt/min/max. *)
  min_max : int;
}

val default : config
(** Conservative defaults for pipelined single-precision floating point on
    a Stratix-10-class device. *)

val cheap : config
(** All-ones configuration, useful to make unit tests readable. *)

val critical_path : config -> Sf_ir.Expr.body -> int
(** Depth of the computation DAG in cycles. Let-bound temporaries are
    shared, not duplicated: each binding's depth is computed once. *)

val pp_config : Format.formatter -> config -> unit
