open Sf_ir

let radius (p : Program.t) =
  Program.validate_exn p;
  let rank = Program.rank p in
  let reach : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace reach f.Field.name (Array.make rank 0)) p.Program.inputs;
  List.iter
    (fun (s : Stencil.t) ->
      let r = Array.make rank 0 in
      List.iter
        (fun (field, offsets) ->
          let upstream =
            match Hashtbl.find_opt reach field with
            | Some u -> u
            | None -> Array.make rank 0
          in
          let axes = Program.field_axes p field in
          let per_axis = Array.make rank 0 in
          List.iteri (fun i axis -> per_axis.(axis) <- abs (List.nth offsets i)) axes;
          for a = 0 to rank - 1 do
            r.(a) <- max r.(a) (upstream.(a) + per_axis.(a))
          done)
        (Stencil.accesses s);
      Hashtbl.replace reach s.Stencil.name r)
    (Program.topological_stencils p);
  let total = Array.make rank 0 in
  List.iter
    (fun o ->
      let r = Hashtbl.find reach o in
      for a = 0 to rank - 1 do
        total.(a) <- max total.(a) r.(a)
      done)
    p.Program.outputs;
  Array.to_list total

let max_radius p = List.fold_left max 0 (radius p)
