(** Influence radius: how far outputs depend on inputs.

    For every stencil, accumulated along all dependency paths, the
    farthest (per axis) any output cell's value can depend on an input
    cell. This bounds the halo spatial tiling needs (paper, Sec. IX-D:
    redundancy "proportional to the DAG depth") and the boundary region
    where transformed programs — whose out-of-bounds predication fires at
    different offsets — may legally differ from the original.

    Note that the radius of a {e fused} program's syntactic offsets can
    be smaller than the original program's influence: substituting a
    producer that reads only scalar or lower-dimensional fields absorbs
    the consumer's offsets entirely. Comparisons between program versions
    must therefore use the maximum of both influences. *)

val radius : Sf_ir.Program.t -> int list
(** Per-axis influence over the whole program (max over outputs). *)

val max_radius : Sf_ir.Program.t -> int
(** Largest per-axis entry (0 for programs reading only scalars). *)
