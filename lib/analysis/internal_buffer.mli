(** Internal buffers for intra-stencil reuse (paper, Sec. IV-A).

    When a stencil accesses the same input field at multiple offsets, a
    single on-chip buffer (a shift register in hardware, Fig. 6) holds the
    sliding window between the lowest and highest accessed address. The
    buffer size is the largest distance between any two offsets in memory
    order, plus the vector width W: e.g. in a 3D space {K,J,I}, accesses
    [0,1,0] and [0,-1,0] buffer two rows (2I + W elements), while [0,0,0]
    and [1,0,0] buffer a 2D slice (2IJ + W, Fig. 7).

    The stencil's initialization phase is the maximum buffer size over its
    fields; smaller buffers start filling after [max - B_f] elements so
    that all fill simultaneously. Lower-dimensional (non-full-rank) fields
    are prefetched and contribute no initialization delay (DESIGN.md). *)

type t = {
  field : string;
  offsets : int list list;  (** Distinct access offsets, in program order. *)
  min_flat : int;  (** Lowest flattened offset in memory order. *)
  max_flat : int;  (** Highest flattened offset in memory order. *)
  size_elements : int;
      (** Shift-register size: [max_flat - min_flat + W]; 0 when the field
          is accessed at a single offset at or before the center. *)
  init_elements : int;
      (** Extra input elements (beyond the one-per-output streaming rate)
          that must arrive before the first output can be produced:
          [max (size_elements - 1) (max 0 max_flat)] for buffered fields
          (the paper's initialization phase max{B_i}, modulo the element
          consumed in the producing cycle), and [max 0 max_flat] for
          single-access fields. The cycle-level simulator realizes exactly
          this schedule, so analysis and measurement agree. *)
}

val flatten_offset : shape:int list -> int list -> int
(** Row-major flattening of a full-rank offset vector. *)

val of_stencil : Sf_ir.Program.t -> Sf_ir.Stencil.t -> t list
(** One entry per full-rank field the stencil reads (buffered or not). *)

val stencil_init_delay : Sf_ir.Program.t -> Sf_ir.Stencil.t -> int
(** The initialization phase in {e elements}: max over fields of
    [init_elements] (paper: max of the internal buffer sizes). *)

val stencil_init_cycles : Sf_ir.Program.t -> Sf_ir.Stencil.t -> int
(** {!stencil_init_delay} divided by the vector width (rounded up):
    vectorization shortens initialization phases (Sec. IV-C). *)

val fill_start : t list -> t -> int
(** [fill_start all b]: the element index at which buffer [b] starts
    filling, [max_i init - b.init]; the largest buffer(s) start at 0. *)

val total_buffer_elements : Sf_ir.Program.t -> Sf_ir.Stencil.t -> int
(** Sum of buffer sizes — on-chip memory pressure of one stencil unit. *)

val pp : Format.formatter -> t -> unit
