open Sf_ir

type node_info = { init_cycles : int; compute_cycles : int }

type t = {
  program : Program.t;
  nodes : (string * node_info) list;
  edges : ((string * string) * int) list;
  latency_cycles : int;
  timing : (string * (int * int)) list;
      (* per stencil: (t0 = first pipeline step's cycle,
                       avail = first output word's cycle) *)
}

(* For every node v, in topological order, we track [avail v]: the cycle at
   which v's first output word emerges, assuming continuous streaming.
   For an edge e = (u, v) carrying field u into stencil v:

   - [need e] is the pipeline step at which v first consumes a word of u:
     v's initialization phase is init_max(v), but the field's own buffer
     only starts filling after init_max(v) - init_extra(u) steps
     (Sec. IV-A: the largest buffers start reading immediately);
   - v's step 0 can happen no earlier than
     [t0 v = max(0, max_e (avail u - need e))];
   - the delay buffer must hold everything u produces before v starts
     draining the edge: [buffer e = t0 v + need e - avail u]. The edge
     with the largest slack gets zero, as the paper observes;
   - [avail v = t0 v + init_max v + compute v].

   This realizes the paper's rule of accumulating latencies along all
   paths "including the contribution of the initialization phase of the
   node itself" (Sec. IV-B): each in-edge carries the consuming node's
   per-field start offset, which both synchronizes joins (Fig. 4) and
   compensates differing internal-buffer spans within one stencil. *)
let analyze ?(config = Latency.default) (p : Program.t) =
  let g = Program.graph p in
  let w = max 1 p.Program.vector_width in
  let full_rank = Program.rank p in
  let info_table : (string, node_info) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace info_table f.Field.name { init_cycles = 0; compute_cycles = 0 })
    p.Program.inputs;
  List.iter
    (fun s ->
      let init_cycles = Internal_buffer.stencil_init_cycles p s in
      let compute_cycles = Latency.critical_path config s.Stencil.body in
      Hashtbl.replace info_table s.Stencil.name { init_cycles; compute_cycles })
    p.Program.stencils;
  let order =
    match Program.G.topological_sort g with
    | Ok o -> o
    | Error cyc -> invalid_arg ("Delay_buffer.analyze: cycle through " ^ String.concat "," cyc)
  in
  let avail : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let timing = ref [] in
  let edges = ref [] in
  List.iter
    (fun v ->
      match Program.G.find_vertex_exn g v with
      | Program.Input _ -> Hashtbl.replace avail v 0
      | Program.Op s ->
          let info = Hashtbl.find info_table v in
          let buffers = Internal_buffer.of_stencil p s in
          let init_extra field =
            match
              List.find_opt (fun (b : Internal_buffer.t) -> String.equal b.field field) buffers
            with
            | Some b -> Sf_support.Util.ceil_div b.init_elements w
            | None -> 0
          in
          (* Only full-rank producers stream through channels; lower-
             dimensional inputs are prefetched and impose no edge. *)
          let streaming_preds =
            List.filter
              (fun (u, ()) -> List.length (Program.field_axes p u) = full_rank)
              (Program.G.preds g v)
          in
          let annotated =
            List.map
              (fun (u, ()) ->
                let need = info.init_cycles - init_extra u in
                (u, need, Hashtbl.find avail u))
              streaming_preds
          in
          let t0 =
            List.fold_left (fun acc (_, need, av) -> max acc (av - need)) 0 annotated
          in
          List.iter
            (fun (u, need, av) -> edges := ((u, v), t0 + need - av) :: !edges)
            annotated;
          let out = t0 + info.init_cycles + info.compute_cycles in
          timing := (v, (t0, out)) :: !timing;
          Hashtbl.replace avail v out)
    order;
  let latency_cycles =
    List.fold_left (fun acc s -> max acc (Hashtbl.find avail s.Stencil.name)) 0 p.Program.stencils
  in
  let nodes = List.map (fun (v, _) -> (v, Hashtbl.find info_table v)) (Program.G.vertices g) in
  { program = p; nodes; edges = List.rev !edges; latency_cycles; timing = List.rev !timing }

let node_info t name =
  match List.assoc_opt name t.nodes with Some i -> i | None -> raise Not_found

let start_cycle t name =
  match List.assoc_opt name t.timing with Some (t0, _) -> t0 | None -> raise Not_found

let output_cycle t name =
  match List.assoc_opt name t.timing with Some (_, out) -> out | None -> raise Not_found

let buffer_for t ~src ~dst =
  match List.assoc_opt (src, dst) t.edges with Some b -> b | None -> raise Not_found

let edge_slack t ~src ~dst = buffer_for t ~src ~dst

(* The smallest positive analysed depth: the edge where under-
   provisioning experiments bite first. All-zero graphs (pure chains)
   have no tight edge — nothing to under-provision. *)
let tightest_edge t =
  List.fold_left
    (fun acc (e, b) ->
      if b <= 0 then acc
      else match acc with Some (_, best) when best <= b -> acc | _ -> Some (e, b))
    None t.edges

let total_delay_buffer_words t = List.fold_left (fun acc (_, b) -> acc + b) 0 t.edges

let total_fast_memory_elements t =
  let w = t.program.Program.vector_width in
  let internal =
    List.fold_left
      (fun acc s -> acc + Internal_buffer.total_buffer_elements t.program s)
      0 t.program.Program.stencils
  in
  internal + (total_delay_buffer_words t * w)

let pp fmt t =
  Format.fprintf fmt "delay analysis of %s: L = %d cycles@." t.program.Program.name
    t.latency_cycles;
  List.iter
    (fun (v, i) ->
      if i.init_cycles + i.compute_cycles > 0 then
        Format.fprintf fmt "  node %s: init %d + compute %d cycles@." v i.init_cycles
          i.compute_cycles)
    t.nodes;
  List.iter
    (fun ((u, v), b) -> if b > 0 then Format.fprintf fmt "  edge %s -> %s: buffer %d words@." u v b)
    t.edges
