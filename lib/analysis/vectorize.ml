open Sf_ir

let apply p w =
  let p = Program.with_vector_width p w in
  Program.validate_exn p;
  p

let legal_widths (p : Program.t) ~max =
  let innermost = List.nth p.Program.shape (Program.rank p - 1) in
  let rec widths w acc = if w > max then List.rev acc
    else widths (w * 2) (if innermost mod w = 0 then w :: acc else acc)
  in
  widths 1 []
