open Sf_ir

let expected_cycles ?config (p : Program.t) =
  let analysis = Delay_buffer.analyze ?config p in
  let n = Sf_support.Util.ceil_div (Program.cells p) p.Program.vector_width in
  analysis.Delay_buffer.latency_cycles + n

let expected_seconds ?config ~frequency_hz p =
  float_of_int (expected_cycles ?config p) /. frequency_hz

let performance_ops_per_s ?config ~frequency_hz p =
  Op_count.total_flops p /. expected_seconds ?config ~frequency_hz p

let initialization_fraction ?config p =
  let analysis = Delay_buffer.analyze ?config p in
  float_of_int analysis.Delay_buffer.latency_cycles /. float_of_int (expected_cycles ?config p)
