(** Roofline model arithmetic (paper, Sec. IX-A, Eqs. 3-4; [27]).

    Performance of a bandwidth-bound program is capped by arithmetic
    intensity times achievable memory bandwidth; a compute-bound program
    needs bandwidth proportional to its throughput divided by intensity. *)

val attainable_ops_per_s : ai_ops_per_byte:float -> bandwidth_bytes_per_s:float -> float
(** Eq. 3: the bandwidth-imposed performance ceiling. *)

val bandwidth_to_saturate : compute_ops_per_s:float -> ai_ops_per_byte:float -> float
(** Eq. 4: bandwidth required to keep a compute rate fed. *)

val fraction_of_roof :
  measured_ops_per_s:float -> ai_ops_per_byte:float -> bandwidth_bytes_per_s:float -> float
(** The "%Roof." column of Table II, in [0, 1] (can exceed 1 only if the
    measurement beats the model). *)

val is_bandwidth_bound :
  ai_ops_per_byte:float -> bandwidth_bytes_per_s:float -> compute_ops_per_s:float -> bool
