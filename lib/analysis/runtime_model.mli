(** Expected-runtime model (paper, Sec. VIII-A, Eq. 1).

    A fully pipelined circuit processes N inputs in [C = L + I * N] cycles
    with initiation interval I = 1. N is the iteration-space size divided
    by the vector width; L is the program latency from the delay-buffer
    analysis. L is proportional to (D-1)-dimensional slices only, so it
    becomes negligible for large domains — but it is always included. *)

val expected_cycles : ?config:Latency.config -> Sf_ir.Program.t -> int
(** [L + cells/W] (ceiling division). *)

val expected_seconds : ?config:Latency.config -> frequency_hz:float -> Sf_ir.Program.t -> float

val performance_ops_per_s :
  ?config:Latency.config -> frequency_hz:float -> Sf_ir.Program.t -> float
(** Total floating-point operations divided by expected runtime: the
    upper-bound line of Figs. 14-15. *)

val initialization_fraction : ?config:Latency.config -> Sf_ir.Program.t -> float
(** L / C: the share of runtime spent initializing (0.7% for horizontal
    diffusion in the paper, Sec. IX). *)
