(** The JSON-based program description format (paper, Sec. II, Lst. 1).

    A program document looks like:
    {v
    {
      "name": "example",
      "shape": [64, 64, 64],
      "dtype": "float32",          // optional, default float32
      "vector_width": 1,           // optional, default 1
      "inputs": {
        "a":     {},                         // full-rank field
        "crlat": {"axes": [1]},              // lower-dimensional field
        "alpha": {"axes": []}                // scalar (0D)
      },
      "stencils": {
        "b": {
          "code": "b = a[0,0,1] + a[0,0,-1] + alpha;",
          "boundary": {"a": {"type": "constant", "value": 0.0}}
        },
        "c": {"code": "0.5 * (b[0,0,0] + b[0,1,0])", "shrink": true}
      },
      "outputs": ["c"]
    }
    v}

    Bare identifiers in stencil code that name scalar inputs are resolved
    to 0-offset accesses. Object member order defines stencil order. *)

val of_json :
  ?file:string -> Sf_support.Json.t -> (Sf_ir.Program.t, Sf_support.Diag.t list) result
(** Decode and validate. Failures are structured diagnostics: decode
    problems carry code [SF0203] (or the DSL code [SF0101]/[SF0102] with
    its span for stencil-code errors), JSON type mismatches [SF0202],
    and validation failures one [SF0301] diagnostic per problem. When
    [file] is given it is attached to every diagnostic's span. *)

val of_string : ?file:string -> string -> (Sf_ir.Program.t, Sf_support.Diag.t list) result
(** {!of_json} after parsing; malformed JSON yields a located [SF0201]. *)

val of_file : string -> (Sf_ir.Program.t, Sf_support.Diag.t list) result
(** {!of_string} on a file's contents; I/O failures yield [SF0204]. *)

val to_json : Sf_ir.Program.t -> Sf_support.Json.t
(** Encode; decoding the result yields an equivalent program. *)

val to_string : Sf_ir.Program.t -> string
