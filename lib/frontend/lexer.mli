(** Hand-written lexer for the stencil computation DSL (paper, Sec. II).

    The token stream feeds the Pratt parser in {!Parser}. Positions are
    byte offsets into the source, reported in errors as line/column. *)

type token =
  | Number of float
  | Ident of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Assign  (** [=] *)
  | Question
  | Colon
  | Plus
  | Minus
  | Star
  | Slash
  | Lt
  | Le
  | Gt
  | Ge
  | EqEq
  | Ne
  | AndAnd
  | OrOr
  | Bang
  | Eof

type spanned = { token : token; line : int; col : int }

val tokenize : string -> (spanned list, Sf_support.Diag.t) result
(** Lex a full source string; the result always ends with [Eof]. Comments
    ([// ...] to end of line) and whitespace are skipped. Failures are
    located diagnostics with code [SF0101]. *)

val token_to_string : token -> string
