type token =
  | Number of float
  | Ident of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Assign
  | Question
  | Colon
  | Plus
  | Minus
  | Star
  | Slash
  | Lt
  | Le
  | Gt
  | Ge
  | EqEq
  | Ne
  | AndAnd
  | OrOr
  | Bang
  | Eof

type spanned = { token : token; line : int; col : int }

module Diag = Sf_support.Diag

(* Internal: carries the located diagnostic to the [tokenize] boundary. *)
exception Located of Diag.t

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize_located src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let fail msg =
    raise (Located (Diag.error ~span:(Diag.span ~line:!line ~col:!col ()) ~code:Diag.Code.lex msg))
  in
  let emit token = tokens := { token; line = !line; col = !col } :: !tokens in
  let advance () =
    if !pos < n && src.[!pos] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr pos
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_digit c || (c = '.' && match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      if !pos < n && src.[!pos] = '.' then begin
        advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        advance ();
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done
      end;
      let text = String.sub src start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> emit (Number f)
      | None -> fail (Printf.sprintf "malformed number %s" text)
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      emit (Ident (String.sub src start (!pos - start)))
    end
    else begin
      let two = match peek 1 with Some d -> Printf.sprintf "%c%c" c d | None -> "" in
      match two with
      | "<=" ->
          emit Le;
          advance ();
          advance ()
      | ">=" ->
          emit Ge;
          advance ();
          advance ()
      | "==" ->
          emit EqEq;
          advance ();
          advance ()
      | "!=" ->
          emit Ne;
          advance ();
          advance ()
      | "&&" ->
          emit AndAnd;
          advance ();
          advance ()
      | "||" ->
          emit OrOr;
          advance ();
          advance ()
      | _ -> (
          (match c with
          | '(' -> emit Lparen
          | ')' -> emit Rparen
          | '[' -> emit Lbracket
          | ']' -> emit Rbracket
          | ',' -> emit Comma
          | ';' -> emit Semicolon
          | '=' -> emit Assign
          | '?' -> emit Question
          | ':' -> emit Colon
          | '+' -> emit Plus
          | '-' -> emit Minus
          | '*' -> emit Star
          | '/' -> emit Slash
          | '<' -> emit Lt
          | '>' -> emit Gt
          | '!' -> emit Bang
          | c -> fail (Printf.sprintf "unexpected character %c" c));
          advance ())
    end
  done;
  tokens := { token = Eof; line = !line; col = !col } :: !tokens;
  List.rev !tokens

let tokenize src =
  match tokenize_located src with ts -> Ok ts | exception Located d -> Error d

let token_to_string = function
  | Number f -> Printf.sprintf "number %g" f
  | Ident s -> Printf.sprintf "identifier %s" s
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semicolon -> ";"
  | Assign -> "="
  | Question -> "?"
  | Colon -> ":"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | EqEq -> "=="
  | Ne -> "!="
  | AndAnd -> "&&"
  | OrOr -> "||"
  | Bang -> "!"
  | Eof -> "end of input"
