module Json = Sf_support.Json
module Diag = Sf_support.Diag
open Sf_ir

(* Internal: carries the structured diagnostic to the public boundary. *)
exception Fail of Diag.t

let fail fmt =
  Printf.ksprintf (fun m -> raise (Fail (Diag.error ~code:Diag.Code.format m))) fmt

let decode_dtype json =
  let name = Json.get_string json in
  match Dtype.of_string name with
  | Some d -> d
  | None -> fail "unknown dtype %s" name

let decode_field ~full_rank ~default_dtype (name, spec) =
  let dtype =
    match Json.member "dtype" spec with Some d -> decode_dtype d | None -> default_dtype
  in
  let axes =
    match Json.member "axes" spec with
    | Some a -> Some (List.map Json.get_int (Json.get_list a))
    | None -> None
  in
  Field.make ~dtype ?axes ~name ~full_rank ()

let decode_boundary (field, spec) =
  match Json.member_exn "type" spec |> Json.get_string with
  | "constant" ->
      let value =
        match Json.member "value" spec with Some v -> Json.get_float v | None -> 0.
      in
      (field, Boundary.Constant value)
  | "copy" -> (field, Boundary.Copy)
  | other -> fail "unknown boundary condition type %s for field %s" other field

let decode_stencil ~scalar (name, spec) =
  let code =
    match Json.member "code" spec with
    | Some c -> Json.get_string c
    | None -> (
        (* "computation" is accepted as an alias for compatibility with the
           paper's examples. *)
        match Json.member "computation" spec with
        | Some c -> Json.get_string c
        | None -> fail "stencil %s: missing code" name)
  in
  let body =
    match Parser.parse_body ~output:name code with
    | Ok b -> b
    | Error d ->
        (* Keep the DSL diagnostic's own code and span; record which
           stencil's code it came from. *)
        raise (Fail (Diag.add_note (Printf.sprintf "in the code of stencil %s" name) d))
  in
  let body = Parser.resolve_body ~scalar body in
  let boundary =
    match Json.member "boundary" spec with
    | Some b -> List.map decode_boundary (Json.get_obj b)
    | None -> []
  in
  let shrink =
    match Json.member "shrink" spec with Some s -> Json.get_bool s | None -> false
  in
  Stencil.make ~boundary ~shrink ~name body

let decode json =
  let name =
    match Json.member "name" json with Some n -> Json.get_string n | None -> "unnamed"
  in
  let shape =
    match Json.member "shape" json with
    | Some s -> List.map Json.get_int (Json.get_list s)
    | None -> fail "missing shape"
  in
  let dtype =
    match Json.member "dtype" json with Some d -> decode_dtype d | None -> Dtype.F32
  in
  let vector_width =
    match Json.member "vector_width" json with Some w -> Json.get_int w | None -> 1
  in
  let full_rank = List.length shape in
  let inputs =
    match Json.member "inputs" json with
    | Some i -> List.map (decode_field ~full_rank ~default_dtype:dtype) (Json.get_obj i)
    | None -> []
  in
  let scalar v =
    List.exists (fun f -> String.equal f.Field.name v && Field.is_scalar f) inputs
  in
  let stencils =
    match Json.member "stencils" json with
    | Some s -> List.map (decode_stencil ~scalar) (Json.get_obj s)
    | None -> fail "missing stencils"
  in
  let outputs =
    match Json.member "outputs" json with
    | Some o -> List.map Json.get_string (Json.get_list o)
    | None -> fail "missing outputs"
  in
  Program.make ~dtype ~vector_width ~name ~shape ~inputs ~outputs stencils

let locate file d = match file with Some f -> Diag.with_file f d | None -> d

let of_json ?file json =
  match decode json with
  | program -> (
      match Program.validate program with
      | Ok () -> Ok program
      | Error msgs ->
          Error (List.map (fun m -> locate file (Diag.error ~code:Diag.Code.validation m)) msgs))
  | exception Fail d -> Error [ locate file d ]
  | exception Json.Type_error m ->
      Error [ locate file (Diag.error ~code:Diag.Code.json_type m) ]
  | exception Invalid_argument m ->
      Error [ locate file (Diag.error ~code:Diag.Code.format m) ]

let json_error ?file (e : Json.error) =
  if e.Json.line = 0 then Error [ locate file (Diag.error ~code:Diag.Code.io e.Json.reason) ]
  else
    Error
      [
        locate file
          (Diag.error
             ~span:(Diag.span ~line:e.Json.line ~col:e.Json.col ())
             ~code:Diag.Code.json_parse e.Json.reason);
      ]

let of_string ?file s =
  match Json.parse s with Ok j -> of_json ?file j | Error e -> json_error ?file e

let of_file path =
  match Json.parse_file path with
  | Ok j -> of_json ~file:path j
  | Error e -> json_error ~file:path e

let encode_field f =
  let members = [ ("dtype", Json.String (Dtype.name f.Field.dtype)) ] in
  let members = members @ [ ("axes", Json.List (List.map (fun a -> Json.Int a) f.Field.axes)) ] in
  (f.Field.name, Json.Obj members)

let encode_boundary (field, cond) =
  let spec =
    match cond with
    | Boundary.Constant v -> [ ("type", Json.String "constant"); ("value", Json.Float v) ]
    | Boundary.Copy -> [ ("type", Json.String "copy") ]
  in
  (field, Json.Obj spec)

let encode_stencil s =
  let body = s.Stencil.body in
  let code =
    if body.Expr.lets = [] then Expr.to_string body.Expr.result
    else
      Sf_support.Util.string_concat_map ""
        (fun (n, e) -> Printf.sprintf "%s = %s; " n (Expr.to_string e))
        body.Expr.lets
      ^ Printf.sprintf "%s = %s;" s.Stencil.name (Expr.to_string body.Expr.result)
  in
  let members = [ ("code", Json.String code) ] in
  let members =
    if s.Stencil.boundary = [] then members
    else members @ [ ("boundary", Json.Obj (List.map encode_boundary s.Stencil.boundary)) ]
  in
  let members = if s.Stencil.shrink then members @ [ ("shrink", Json.Bool true) ] else members in
  (s.Stencil.name, Json.Obj members)

let to_json (p : Program.t) =
  Json.Obj
    [
      ("name", Json.String p.name);
      ("shape", Json.List (List.map (fun e -> Json.Int e) p.shape));
      ("dtype", Json.String (Dtype.name p.dtype));
      ("vector_width", Json.Int p.vector_width);
      ("inputs", Json.Obj (List.map encode_field p.inputs));
      ("stencils", Json.Obj (List.map encode_stencil p.stencils));
      ("outputs", Json.List (List.map (fun o -> Json.String o) p.outputs));
    ]

let to_string p = Json.to_string (to_json p)
