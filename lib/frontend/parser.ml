open Sf_ir
module Diag = Sf_support.Diag

(* Internal: carries the located diagnostic to the public boundary. *)
exception Located of Diag.t

type state = { mutable tokens : Lexer.spanned list }

let peek st = match st.tokens with [] -> assert false | t :: _ -> t

let fail_at (spanned : Lexer.spanned) msg =
  raise
    (Located
       (Diag.error
          ~span:(Diag.span ~line:spanned.Lexer.line ~col:spanned.Lexer.col ())
          ~code:Diag.Code.syntax msg))

let fail_unlocated msg = raise (Located (Diag.error ~code:Diag.Code.syntax msg))

let advance st = match st.tokens with [] -> assert false | _ :: rest -> st.tokens <- rest

let expect st token =
  let t = peek st in
  if t.token = token then advance st
  else
    fail_at t
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string token)
         (Lexer.token_to_string t.token))

let parse_int_offset st =
  let t = peek st in
  let negated =
    match t.token with
    | Lexer.Minus ->
        advance st;
        true
    | Lexer.Plus ->
        advance st;
        false
    | _ -> false
  in
  let t = peek st in
  match t.token with
  | Lexer.Number f when Float.is_integer f ->
      advance st;
      let v = int_of_float f in
      if negated then -v else v
  | tok -> fail_at t (Printf.sprintf "expected integer offset, found %s" (Lexer.token_to_string tok))

(* Binding powers; ternary sits below all binary operators. *)
let binop_of_token = function
  | Lexer.OrOr -> Some (Expr.Or, 1)
  | Lexer.AndAnd -> Some (Expr.And, 2)
  | Lexer.EqEq -> Some (Expr.Eq, 3)
  | Lexer.Ne -> Some (Expr.Ne, 3)
  | Lexer.Lt -> Some (Expr.Lt, 4)
  | Lexer.Le -> Some (Expr.Le, 4)
  | Lexer.Gt -> Some (Expr.Gt, 4)
  | Lexer.Ge -> Some (Expr.Ge, 4)
  | Lexer.Plus -> Some (Expr.Add, 5)
  | Lexer.Minus -> Some (Expr.Sub, 5)
  | Lexer.Star -> Some (Expr.Mul, 6)
  | Lexer.Slash -> Some (Expr.Div, 6)
  | _ -> None

let rec parse_ternary st =
  let cond = parse_binary st 1 in
  let t = peek st in
  match t.token with
  | Lexer.Question ->
      advance st;
      let if_true = parse_ternary st in
      expect st Lexer.Colon;
      let if_false = parse_ternary st in
      Expr.Select { cond; if_true; if_false }
  | _ -> cond

and parse_binary st min_bp =
  let lhs = parse_unary st in
  let rec loop lhs =
    let t = peek st in
    match binop_of_token t.token with
    | Some (op, bp) when bp >= min_bp ->
        advance st;
        let rhs = parse_binary st (bp + 1) in
        loop (Expr.Binary (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  let t = peek st in
  match t.token with
  | Lexer.Minus ->
      advance st;
      Expr.Unary (Expr.Neg, parse_unary st)
  | Lexer.Bang ->
      advance st;
      Expr.Unary (Expr.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = peek st in
  match t.token with
  | Lexer.Number f ->
      advance st;
      Expr.Const f
  | Lexer.Lparen ->
      advance st;
      let e = parse_ternary st in
      expect st Lexer.Rparen;
      e
  | Lexer.Ident name -> (
      advance st;
      let next = peek st in
      match next.token with
      | Lexer.Lbracket ->
          advance st;
          let rec offsets acc =
            let o = parse_int_offset st in
            let t = peek st in
            match t.token with
            | Lexer.Comma ->
                advance st;
                offsets (o :: acc)
            | Lexer.Rbracket ->
                advance st;
                List.rev (o :: acc)
            | tok ->
                fail_at t
                  (Printf.sprintf "expected , or ] in access, found %s"
                     (Lexer.token_to_string tok))
          in
          Expr.Access { field = name; offsets = offsets [] }
      | Lexer.Lparen -> (
          match Expr.func_of_name name with
          | None -> fail_at next (Printf.sprintf "unknown function %s" name)
          | Some f ->
              advance st;
              let rec args acc =
                let a = parse_ternary st in
                let t = peek st in
                match t.token with
                | Lexer.Comma ->
                    advance st;
                    args (a :: acc)
                | Lexer.Rparen ->
                    advance st;
                    List.rev (a :: acc)
                | tok ->
                    fail_at t
                      (Printf.sprintf "expected , or ) in call, found %s"
                         (Lexer.token_to_string tok))
              in
              let args = args [] in
              if List.length args <> Expr.func_arity f then
                fail_at next
                  (Printf.sprintf "%s expects %d argument(s), got %d" (Expr.func_name f)
                     (Expr.func_arity f) (List.length args));
              Expr.Call (f, args))
      | _ -> Expr.Var name)
  | tok -> fail_at t (Printf.sprintf "unexpected %s" (Lexer.token_to_string tok))

let with_state src f =
  let tokens = match Lexer.tokenize src with Ok ts -> ts | Error d -> raise (Located d) in
  let st = { tokens } in
  let result = f st in
  (match (peek st).token with
  | Lexer.Eof -> ()
  | tok -> fail_at (peek st) (Printf.sprintf "trailing %s" (Lexer.token_to_string tok)));
  result

let located f = match f () with v -> Ok v | exception Located d -> Error d
let parse_expr src = located (fun () -> with_state src parse_ternary)

let parse_assignments_state st =
  let rec stmts acc =
    let t = peek st in
    match t.token with
    | Lexer.Eof -> List.rev acc
    | Lexer.Ident name -> (
        advance st;
        expect st Lexer.Assign;
        let e = parse_ternary st in
        let t = peek st in
        match t.token with
        | Lexer.Semicolon ->
            advance st;
            stmts ((name, e) :: acc)
        | Lexer.Eof -> List.rev ((name, e) :: acc)
        | tok -> fail_at t (Printf.sprintf "expected ; after statement, found %s" (Lexer.token_to_string tok)))
    | tok -> fail_at t (Printf.sprintf "expected statement, found %s" (Lexer.token_to_string tok))
  in
  stmts []

let parse_assignments src = located (fun () -> with_state src parse_assignments_state)

let parse_body_located ~output src =
  (* Heuristic: code containing an assignment at the start is a statement
     list; otherwise it is a bare result expression. *)
  let tokens = match Lexer.tokenize src with Ok ts -> ts | Error d -> raise (Located d) in
  let is_statement_form =
    match tokens with
    | { Lexer.token = Lexer.Ident _; _ } :: { Lexer.token = Lexer.Assign; _ } :: _ -> true
    | _ -> false
  in
  if not is_statement_form then { Expr.lets = []; result = with_state src parse_ternary }
  else begin
    let stmts = with_state src parse_assignments_state in
    match List.rev stmts with
    | [] -> fail_unlocated "empty stencil body"
    | (last_name, result) :: rev_lets when String.equal last_name output ->
        { Expr.lets = List.rev rev_lets; result }
    | (last_name, _) :: _ ->
        fail_unlocated
          (Printf.sprintf "final statement must assign the stencil output %s, found %s" output
             last_name)
  end

let parse_body ~output src = located (fun () -> parse_body_located ~output src)

let resolve_idents ~scalar expr =
  let rec go expr =
    match expr with
    | Expr.Var v when scalar v -> Expr.Access { field = v; offsets = [] }
    | Expr.Const _ | Expr.Access _ | Expr.Var _ -> expr
    | Expr.Unary (op, x) -> Expr.Unary (op, go x)
    | Expr.Binary (op, x, y) -> Expr.Binary (op, go x, go y)
    | Expr.Select { cond; if_true; if_false } ->
        Expr.Select { cond = go cond; if_true = go if_true; if_false = go if_false }
    | Expr.Call (f, args) -> Expr.Call (f, List.map go args)
  in
  go expr

let resolve_body ~scalar (body : Expr.body) =
  let bound = Hashtbl.create 8 in
  let lets =
    List.map
      (fun (name, e) ->
        let scalar v = scalar v && not (Hashtbl.mem bound v) in
        let e = resolve_idents ~scalar e in
        Hashtbl.replace bound name ();
        (name, e))
      body.Expr.lets
  in
  let scalar v = scalar v && not (Hashtbl.mem bound v) in
  { Expr.lets; result = resolve_idents ~scalar body.Expr.result }
