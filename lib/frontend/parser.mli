(** Pratt parser for stencil computation code (paper, Sec. II, Lst. 1).

    Grammar (C-like expression syntax):
    {v
      stmt      ::= ident '=' expr ';'
      code      ::= stmt* expr?          (or stmt+ where the last statement
                                          assigns the stencil's own name)
      expr      ::= ternary
      ternary   ::= or ('?' ternary ':' ternary)?
      binary levels: || < && < ==,!= < <,<=,>,>= < +,- < *,/
      unary     ::= ('-' | '!') unary | primary
      primary   ::= number | ident | ident '[' int (',' int)* ']'
                  | func '(' expr (',' expr)* ')' | '(' expr ')'
    v}

    Bare identifiers parse to [Expr.Var]; {!resolve_idents} later rewrites
    those naming scalar (0-dimensional) fields into zero-offset accesses. *)

val parse_expr : string -> (Sf_ir.Expr.t, Sf_support.Diag.t) result
(** Parse a single expression. Failures are located diagnostics — code
    [SF0102], or [SF0101] when lexing already failed. *)

val parse_assignments : string -> ((string * Sf_ir.Expr.t) list, Sf_support.Diag.t) result
(** Parse a sequence of [name = expr;] statements (the trailing semicolon
    of the last statement may be omitted). *)

val parse_body : output:string -> string -> (Sf_ir.Expr.body, Sf_support.Diag.t) result
(** Parse stencil code. Either a bare expression, or a statement list in
    which the assignment to [output] (which must be the final statement)
    provides the result and the preceding assignments become lets. *)

val resolve_idents : scalar:(string -> bool) -> Sf_ir.Expr.t -> Sf_ir.Expr.t
(** Rewrite [Var v] into [Access {field = v; offsets = []}] whenever
    [scalar v]. *)

val resolve_body : scalar:(string -> bool) -> Sf_ir.Expr.body -> Sf_ir.Expr.body
