module F = Sf_support.Fingerprint
module Store = Sf_support.Store
module Diag = Sf_support.Diag

type binding = B : 'a Ctx.slot * 'a -> binding
type entry = { bindings : binding list; diags : Diag.t list }

(* LRU bookkeeping: each record carries the logical time of its last
   use; eviction scans for the minimum. Capacities are small (hundreds),
   so the O(n) scan is cheaper than maintaining an intrusive list. *)
type record = { mutable last_use : int; entry : entry }

(* One in-progress execution of a key. The first caller to miss becomes
   the leader and runs the pass; concurrent callers with the same key
   block on [cv] (sharing the cache mutex) until the leader settles the
   flight with [fulfill] (outcome = Some entry) or [abandon] (None —
   failed or cancelled executions are never published). *)
type flight = {
  flight_key : F.t;
  mutable settled : bool;
  mutable outcome : entry option;
  cv : Condition.t;
}

type t = {
  capacity : int;
  mu : Mutex.t;
  table : (F.t, record) Hashtbl.t;
  flights : (F.t, flight) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
  mutable joined : int;
  mutable store_corrupt : int;
  mutable takeovers : int;
  mutable store : Store.t option;
}

let create ?(capacity = 128) () =
  {
    capacity = max 1 capacity;
    mu = Mutex.create ();
    table = Hashtbl.create 64;
    flights = Hashtbl.create 8;
    tick = 0;
    hits = 0;
    misses = 0;
    stale = 0;
    evictions = 0;
    joined = 0;
    store_corrupt = 0;
    takeovers = 0;
    store = None;
  }

let with_store t store =
  t.store <- Some store;
  t

let absent_marker = F.of_string "<absent>"

let key ~pass_name ~options_fp ~reads ctx =
  let read_fp slot =
    match Ctx.slot_fingerprint ctx slot with Some fp -> fp | None -> absent_marker
  in
  F.combine
    (F.of_string pass_name
    :: (match options_fp with Some fp -> fp | None -> absent_marker)
    :: List.map read_fp reads)

(* Disk format: a marshalled [(slot_name, marshalled value) list * Diag.t
   list]. The outer structure is versioned by the store header; the
   per-value bytes are reattached to their typed slot by name, which is
   the one place the module must trust the schema version ([Obj.magic]).
   Every failure mode — unknown slot, truncated bytes, incompatible
   marshal — lands in the [with] and is accounted as stale. *)
let serialize entry =
  try
    let bindings =
      List.map (fun (B (slot, v)) -> (slot.Ctx.slot_name, Marshal.to_string v [])) entry.bindings
    in
    Some (Marshal.to_string (bindings, entry.diags) [])
  with _ -> None

let deserialize payload =
  try
    let bindings, diags = (Marshal.from_string payload 0 : (string * string) list * Diag.t list) in
    let bind (name, bytes) =
      match Ctx.find_slot name with
      | None -> raise Exit
      | Some (Ctx.P slot) -> B (slot, Obj.magic (Marshal.from_string bytes 0))
    in
    Some { bindings = List.map bind bindings; diags }
  with _ -> None

(* The helpers below assume [t.mu] is held by the caller. *)

let touch t record =
  t.tick <- t.tick + 1;
  record.last_use <- t.tick

let insert_memory t key entry =
  if not (Hashtbl.mem t.table key) then begin
    if Hashtbl.length t.table >= t.capacity then begin
      let victim =
        Hashtbl.fold
          (fun k r acc ->
            match acc with
            | Some (_, best) when best.last_use <= r.last_use -> acc
            | _ -> Some (k, r))
          t.table None
      in
      match victim with
      | Some (k, _) ->
          Hashtbl.remove t.table k;
          t.evictions <- t.evictions + 1
      | None -> ()
    end;
    let record = { last_use = 0; entry } in
    touch t record;
    Hashtbl.add t.table key record
  end

let settle t flight outcome =
  flight.settled <- true;
  flight.outcome <- outcome;
  (* Only unregister the flight we actually own: after a takeover the
     table holds the new leader's flight under the same key, and a
     stale leader settling late must not evict it. *)
  (match Hashtbl.find_opt t.flights flight.flight_key with
  | Some registered when registered == flight -> Hashtbl.remove t.flights flight.flight_key
  | _ -> ());
  Condition.broadcast flight.cv

type outcome = Hit of entry | Joined of entry | Miss of flight

(* Wait for [flight] to settle while holding [t.mu]. Without a bound
   this is a plain [Condition.wait] loop. With [wait_until] (an absolute
   {!Sf_support.Util.monotime}) the wait polls — OCaml's [Condition] has
   no timed wait — and returns [`Expired] once the bound passes with the
   flight still unsettled. *)
let wait_for_flight t flight wait_until =
  match wait_until with
  | None ->
      while not flight.settled do
        Condition.wait flight.cv t.mu
      done;
      `Settled
  | Some bound ->
      let rec loop () =
        if flight.settled then `Settled
        else if Sf_support.Util.monotime () >= bound then `Expired
        else begin
          Mutex.unlock t.mu;
          Unix.sleepf 0.001;
          Mutex.lock t.mu;
          loop ()
        end
      in
      loop ()

let acquire ?wait_until t key =
  Mutex.lock t.mu;
  let rec go ~waited =
    match Hashtbl.find_opt t.table key with
    | Some record ->
        touch t record;
        if waited then t.joined <- t.joined + 1 else t.hits <- t.hits + 1;
        let entry = record.entry in
        Mutex.unlock t.mu;
        if waited then Joined entry else Hit entry
    | None -> (
        match Hashtbl.find_opt t.flights key with
        | Some flight -> (
            match wait_for_flight t flight wait_until with
            | `Expired ->
                (* The leader stalled past our bound. If its flight is
                   still the registered one, take it over: unregister
                   the stalled flight and lead a fresh one, so waiters
                   are never parked behind a wedged (or crashed) leader
                   forever. The stale leader's eventual settle is
                   harmless — [settle] only unregisters its own
                   flight. *)
                let fresh =
                  { flight_key = key; settled = false; outcome = None; cv = Condition.create () }
                in
                (match Hashtbl.find_opt t.flights key with
                | Some registered when registered == flight -> Hashtbl.remove t.flights key
                | _ -> ());
                Hashtbl.replace t.flights key fresh;
                t.takeovers <- t.takeovers + 1;
                t.misses <- t.misses + 1;
                Mutex.unlock t.mu;
                Miss fresh
            | `Settled -> (
                match flight.outcome with
                | Some entry ->
                    (* The leader published while we slept: a deduplicated
                       execution, counted separately from plain hits. *)
                    t.joined <- t.joined + 1;
                    Mutex.unlock t.mu;
                    Joined entry
                | None ->
                    (* Leader failed or was cancelled; race to lead a fresh
                       attempt (or join whoever won). *)
                    go ~waited))
        | None -> (
            let flight =
              { flight_key = key; settled = false; outcome = None; cv = Condition.create () }
            in
            Hashtbl.add t.flights key flight;
            match t.store with
            | None ->
                t.misses <- t.misses + 1;
                Mutex.unlock t.mu;
                Miss flight
            | Some store -> (
                (* Disk lookup without the lock: blob reads must not
                   stall unrelated keys. The registered flight keeps
                   same-key callers parked meanwhile. *)
                Mutex.unlock t.mu;
                let found =
                  match Store.find store ~key:(F.to_hex key) with
                  | `Absent -> Ok None
                  | `Stale -> Error `Stale
                  | `Corrupt -> Error `Corrupt
                  | `Found payload -> (
                      match deserialize payload with
                      | None -> Error `Stale
                      | Some entry -> Ok (Some entry))
                in
                Mutex.lock t.mu;
                match found with
                | Ok (Some entry) ->
                    insert_memory t key entry;
                    t.hits <- t.hits + 1;
                    settle t flight (Some entry);
                    Mutex.unlock t.mu;
                    if waited then Joined entry else Hit entry
                | Ok None ->
                    t.misses <- t.misses + 1;
                    Mutex.unlock t.mu;
                    Miss flight
                | Error `Stale ->
                    t.stale <- t.stale + 1;
                    Mutex.unlock t.mu;
                    Miss flight
                | Error `Corrupt ->
                    (* The blob failed its checksum; the store has
                       already quarantined it. Count it and execute the
                       pass — a damaged artifact must never replay. *)
                    t.store_corrupt <- t.store_corrupt + 1;
                    t.misses <- t.misses + 1;
                    Mutex.unlock t.mu;
                    Miss flight)))
  in
  go ~waited:false

let fulfill t flight entry =
  (* Write through to the store before publishing: blob IO happens
     outside the lock, and a follower woken by [settle] must already be
     able to find the blob's in-memory twin. *)
  (match t.store with
  | None -> ()
  | Some store -> (
      match serialize entry with
      | None -> ()
      | Some payload -> ignore (Store.put store ~key:(F.to_hex flight.flight_key) payload)));
  Mutex.lock t.mu;
  insert_memory t flight.flight_key entry;
  settle t flight (Some entry);
  Mutex.unlock t.mu

let abandon t flight =
  Mutex.lock t.mu;
  settle t flight None;
  Mutex.unlock t.mu

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  joined : int;
  store_corrupt : int;
  takeovers : int;
  entries : int;
}

let stats (c : t) =
  Mutex.lock c.mu;
  let s =
    {
      hits = c.hits;
      misses = c.misses;
      stale = c.stale;
      evictions = c.evictions;
      joined = c.joined;
      store_corrupt = c.store_corrupt;
      takeovers = c.takeovers;
      entries = Hashtbl.length c.table;
    }
  in
  Mutex.unlock c.mu;
  s

let clear t =
  Mutex.lock t.mu;
  (* In-progress flights are left to settle into the fresh table; only
     published entries and counters are dropped. *)
  Hashtbl.reset t.table;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.stale <- 0;
  t.evictions <- 0;
  t.joined <- 0;
  t.store_corrupt <- 0;
  t.takeovers <- 0;
  let store = t.store in
  Mutex.unlock t.mu;
  match store with None -> () | Some store -> ignore (Store.clear store)
