module F = Sf_support.Fingerprint
module Store = Sf_support.Store
module Diag = Sf_support.Diag

type binding = B : 'a Ctx.slot * 'a -> binding
type entry = { bindings : binding list; diags : Diag.t list }

(* LRU bookkeeping: each record carries the logical time of its last
   use; eviction scans for the minimum. Capacities are small (hundreds),
   so the O(n) scan is cheaper than maintaining an intrusive list. *)
type record = { mutable last_use : int; entry : entry }

type t = {
  capacity : int;
  table : (F.t, record) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
  store : Store.t option;
}

let create ?(capacity = 128) () =
  {
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    stale = 0;
    evictions = 0;
    store = None;
  }

let with_store t store = { t with store = Some store }

let absent_marker = F.of_string "<absent>"

let key ~pass_name ~options_fp ~reads ctx =
  let read_fp slot =
    match Ctx.slot_fingerprint ctx slot with Some fp -> fp | None -> absent_marker
  in
  F.combine
    (F.of_string pass_name
    :: (match options_fp with Some fp -> fp | None -> absent_marker)
    :: List.map read_fp reads)

(* Disk format: a marshalled [(slot_name, marshalled value) list * Diag.t
   list]. The outer structure is versioned by the store header; the
   per-value bytes are reattached to their typed slot by name, which is
   the one place the module must trust the schema version ([Obj.magic]).
   Every failure mode — unknown slot, truncated bytes, incompatible
   marshal — lands in the [with] and is accounted as stale. *)
let serialize entry =
  try
    let bindings =
      List.map (fun (B (slot, v)) -> (slot.Ctx.slot_name, Marshal.to_string v [])) entry.bindings
    in
    Some (Marshal.to_string (bindings, entry.diags) [])
  with _ -> None

let deserialize payload =
  try
    let bindings, diags = (Marshal.from_string payload 0 : (string * string) list * Diag.t list) in
    let bind (name, bytes) =
      match Ctx.find_slot name with
      | None -> raise Exit
      | Some (Ctx.P slot) -> B (slot, Obj.magic (Marshal.from_string bytes 0))
    in
    Some { bindings = List.map bind bindings; diags }
  with _ -> None

let touch t record =
  t.tick <- t.tick + 1;
  record.last_use <- t.tick

let insert_memory t key entry =
  if not (Hashtbl.mem t.table key) then begin
    if Hashtbl.length t.table >= t.capacity then begin
      let victim =
        Hashtbl.fold
          (fun k r acc ->
            match acc with
            | Some (_, best) when best.last_use <= r.last_use -> acc
            | _ -> Some (k, r))
          t.table None
      in
      match victim with
      | Some (k, _) ->
          Hashtbl.remove t.table k;
          t.evictions <- t.evictions + 1
      | None -> ()
    end;
    let record = { last_use = 0; entry } in
    touch t record;
    Hashtbl.add t.table key record
  end

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some record ->
      touch t record;
      t.hits <- t.hits + 1;
      Some record.entry
  | None -> (
      match t.store with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some store -> (
          match Store.find store ~key:(F.to_hex key) with
          | `Absent ->
              t.misses <- t.misses + 1;
              None
          | `Stale ->
              t.stale <- t.stale + 1;
              None
          | `Found payload -> (
              match deserialize payload with
              | None ->
                  t.stale <- t.stale + 1;
                  None
              | Some entry ->
                  insert_memory t key entry;
                  t.hits <- t.hits + 1;
                  Some entry)))

let add t key entry =
  insert_memory t key entry;
  match t.store with
  | None -> ()
  | Some store -> (
      match serialize entry with
      | None -> ()
      | Some payload -> ignore (Store.put store ~key:(F.to_hex key) payload))

type stats = { hits : int; misses : int; stale : int; evictions : int; entries : int }

let stats (c : t) =
  {
    hits = c.hits;
    misses = c.misses;
    stale = c.stale;
    evictions = c.evictions;
    entries = Hashtbl.length c.table;
  }

let clear t =
  Hashtbl.reset t.table;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.stale <- 0;
  t.evictions <- 0;
  match t.store with None -> () | Some store -> ignore (Store.clear store)
