(** The standard pass catalogue over {!Ctx.t}, mirroring the paper's
    toolflow (Sec. VII): frontend, domain-specific optimization,
    buffering analysis, device mapping, code generation and cycle-level
    simulation. Compose them freely, or use {!standard} /
    {!codegen_pipeline} for the driver defaults. *)

val load_file : string -> Pass_manager.pass
(** Parse and validate a JSON program description from disk. Failures
    carry located diagnostics ([SF0201]/[SF0202]/[SF0203]/[SF0204],
    [SF0301], and [SF0101]/[SF0102] from embedded DSL bodies). *)

val load_string : ?file:string -> string -> Pass_manager.pass
(** Like {!load_file} from an in-memory JSON string; [file] labels
    diagnostic spans. *)

val use_program : Sf_ir.Program.t -> Pass_manager.pass
(** Install an already-constructed program (validated, [SF0301]). *)

val fuse : ?max_body_size:int -> unit -> Pass_manager.pass
(** Aggressive stencil fusion (Sec. V-B); records the {!Ctx.t.fusion}
    report. *)

val optimize : ?min_size:int -> unit -> Pass_manager.pass
(** Constant folding + common subexpression elimination. *)

val vectorize : int -> Pass_manager.pass
(** Set the vectorization width (Sec. IV-C). *)

val sdfg_pipeline :
  ?verify:bool -> ?max_probe_cells:int -> Sf_sdfg.Pipeline.pass list -> Pass_manager.pass
(** Run an {!Sf_sdfg.Pipeline} (verified graph rewriting) as one pass,
    recording its per-rewrite entries in {!Ctx.t.pipeline_entries}. *)

val delay_buffers : Pass_manager.pass
(** The delay-buffer/latency analysis (Sec. IV-B) under the context's
    simulator latency configuration. *)

val partition : Pass_manager.pass
(** Greedy multi-device partitioning under the context's device model.
    When the program cannot be partitioned, falls back to a single
    oversubscribed device and records an [SF0503] warning carrying the
    partitioner's reason — the fallback is never silent. *)

val partition_into : int -> Pass_manager.pass
(** Force a mapping onto exactly N devices via
    {!Sf_mapping.Partition.contiguous}, ignoring the resource model —
    the [--devices N] CLI option, for exercising multi-device simulation
    on programs the greedy partitioner keeps on one device. Fails
    ([SF0501]) when [N < 1]. *)

val performance_model : Pass_manager.pass
(** The Eq. 1 runtime model evaluated at the device clock. *)

val simulate : ?validate:bool -> ?seed:int -> unit -> Pass_manager.pass
(** Cycle-level simulation on the context's partition placement, on the
    context's inputs (or random inputs from [seed] when absent),
    validated against the sequential reference when [validate] (default
    true). Routed through {!Sf_sim.Parallel}, so the context's
    [sim_config.parallelism] selects domain-parallel execution for
    multi-device placements (identical results either way; invalid
    parallel configurations are [SF0704]). Failures (deadlock [SF0701],
    mismatch [SF0702], timeout [SF0703]) are recorded
    as error diagnostics in {!Ctx.t.diags} and in {!Ctx.t.simulation}
    without aborting the pipeline, so reports and exit codes can still
    be produced from the remaining artifacts. *)

val codegen_opencl : Pass_manager.pass
(** Emit the Intel-FPGA-style OpenCL kernels and host program for the
    context's partition ([SF0601] on lowering failure). *)

val codegen_vitis : Pass_manager.pass
(** Emit the Xilinx-style Vitis HLS C++ source (single device). *)

val standard :
  ?fuse:bool -> ?simulate:bool -> ?validate:bool -> unit -> Pass_manager.pass list
(** The end-to-end driver pipeline of Sec. VII (without a frontend pass):
    fusion, delay-buffer analysis, partitioning, the runtime model, and
    optionally simulation. *)

val codegen_pipeline : backend:[ `Opencl | `Vitis ] -> Pass_manager.pass list
(** Analysis + mapping + code generation (no simulation). *)

val dump_hook : dir:string -> Pass_manager.hooks
(** Hooks whose [dump] writes every current artifact to
    [dir/NN-passname/<artifact>] after each pass — the [--dump-ir]
    implementation. Creates directories as needed. *)
