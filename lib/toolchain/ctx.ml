module Diag = Sf_support.Diag
module Program = Sf_ir.Program
module Stencil = Sf_ir.Stencil
module Engine = Sf_sim.Engine

type t = {
  device : Sf_models.Device.t;
  sim_config : Engine.config;
  inputs : (string * Sf_reference.Tensor.t) list option;
  source_file : string option;
  program : Program.t option;
  fusion : Sf_sdfg.Fusion.report option;
  opt : Sf_sdfg.Opt.report option;
  pipeline_entries : Sf_sdfg.Pipeline.entry list;
  analysis : Sf_analysis.Delay_buffer.t option;
  partition : Sf_mapping.Partition.t option;
  kernels : Sf_codegen.Opencl.artifact list;
  host_source : string option;
  vitis_source : string option;
  simulation : (Engine.stats, Diag.t) result option;
  performance_model : float option;
  diags : Diag.t list;
}

let create ?(device = Sf_models.Device.stratix10) ?(sim_config = Engine.Config.default)
    ?inputs () =
  {
    device;
    sim_config;
    inputs;
    source_file = None;
    program = None;
    fusion = None;
    opt = None;
    pipeline_entries = [];
    analysis = None;
    partition = None;
    kernels = [];
    host_source = None;
    vitis_source = None;
    simulation = None;
    performance_model = None;
    diags = [];
  }

(* A new program version invalidates everything derived from the old one,
   including the optimizer report and embedded-pipeline entries — stale
   reports would otherwise leak into cache keys. Only the fusion report
   survives: it describes how the current program came to be, not a
   property of a superseded version, and passes that produce a new
   report install it right after the swap. *)
let with_program ctx p =
  {
    ctx with
    program = Some p;
    opt = None;
    pipeline_entries = [];
    analysis = None;
    partition = None;
    kernels = [];
    host_source = None;
    vitis_source = None;
    simulation = None;
    performance_model = None;
  }

let the_program ctx =
  match ctx.program with
  | Some p -> Ok p
  | None ->
      Error
        [
          Diag.error ~code:Diag.Code.internal
            "no program loaded: a frontend pass must run first";
        ]

let add_diag ctx d =
  let same (d' : Diag.t) =
    d'.Diag.severity = d.Diag.severity
    && String.equal d'.Diag.code d.Diag.code
    && String.equal d'.Diag.message d.Diag.message
  in
  if List.exists same ctx.diags then ctx else { ctx with diags = ctx.diags @ [ d ] }

let code_bytes ctx =
  List.fold_left (fun acc (a : Sf_codegen.Opencl.artifact) -> acc + String.length a.source)
    0 ctx.kernels
  + (match ctx.host_source with Some s -> String.length s | None -> 0)
  + match ctx.vitis_source with Some s -> String.length s | None -> 0

let counters ctx =
  let program_counters =
    match ctx.program with
    | None -> []
    | Some p ->
        let edges =
          List.fold_left
            (fun acc s -> acc + List.length (Stencil.input_fields s))
            0 p.Program.stencils
        in
        [ ("stencils", List.length p.Program.stencils); ("edges", edges) ]
  in
  program_counters
  @ (match ctx.opt with
    | None -> []
    | Some (r : Sf_sdfg.Opt.report) ->
        [
          ("opt-ops-before", r.ops_before);
          ("opt-ops-after", r.ops_after);
          ("opt-shared", r.shared_nodes);
          ("opt-flops-saved", Sf_sdfg.Opt.flops_saved r);
        ])
  @ (match ctx.analysis with
    | None -> []
    | Some a -> [ ("delay-words", Sf_analysis.Delay_buffer.total_delay_buffer_words a) ])
  @ (match ctx.partition with
    | None -> []
    | Some pt -> [ ("devices", pt.Sf_mapping.Partition.num_devices) ])
  @ (match code_bytes ctx with 0 -> [] | n -> [ ("code-bytes", n) ])
  @
  match ctx.simulation with
  | Some (Ok (s : Engine.stats)) ->
      [
        ("sim-cycles", s.cycles);
        ("sim-stalls", Sf_sim.Telemetry.total_blocked s.telemetry);
        ("sim-net-bytes", s.network_bytes);
      ]
      @
      let f = s.faults in
      if f.Sf_sim.Fault_plan.injected_events > 0 then
        [
          ("faults-injected", f.Sf_sim.Fault_plan.injected_events);
          ("stall-cycles-injected", f.Sf_sim.Fault_plan.injected_stall_cycles);
        ]
      else []
  | Some (Error _) | None -> []

let fmt_to_string pp v =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  pp fmt v;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* Deterministic textual renderings, shared between [artifact_files] and
   the report slots' fingerprints. *)
let fusion_text (r : Sf_sdfg.Fusion.report) =
  Printf.sprintf "stencils %d -> %d\n%s" r.stencils_before r.stencils_after
    (String.concat ""
       (List.map (fun (u, v) -> Printf.sprintf "fused %s into %s\n" u v) r.fused_pairs))

let opt_text (r : Sf_sdfg.Opt.report) =
  Printf.sprintf "ops %d -> %d (tree %d)\nshared nodes %d\nflops saved by sharing %d\n"
    r.ops_before r.ops_after r.tree_ops_after r.shared_nodes (Sf_sdfg.Opt.flops_saved r)

let pipeline_text entries =
  String.concat ""
    (List.map (fun e -> fmt_to_string Sf_sdfg.Pipeline.pp_entry e ^ "\n") entries)

let analysis_text a = fmt_to_string Sf_analysis.Delay_buffer.pp a
let partition_text pt = fmt_to_string Sf_mapping.Partition.pp pt

let simulation_text = function
  | Ok (s : Engine.stats) ->
      Printf.sprintf "cycles %d (predicted %d)\nbytes read %d, written %d, network %d\n"
        s.cycles s.predicted_cycles s.bytes_read s.bytes_written s.network_bytes
  | Error d -> Printf.sprintf "FAILED: %s\n" (Diag.to_string d)

let artifact_files ctx =
  let file name content = Some (name, content) in
  List.filter_map
    (fun x -> x)
    [
      (match ctx.program with
      | Some p -> file "program.json" (Sf_frontend.Program_json.to_string p)
      | None -> None);
      (match ctx.fusion with Some r -> file "fusion.txt" (fusion_text r) | None -> None);
      (match ctx.opt with Some r -> file "opt.txt" (opt_text r) | None -> None);
      (match ctx.pipeline_entries with
      | [] -> None
      | entries -> file "pipeline.txt" (pipeline_text entries));
      (match ctx.analysis with
      | Some a -> file "analysis.txt" (analysis_text a)
      | None -> None);
      (match ctx.partition with
      | Some pt -> file "partition.txt" (partition_text pt)
      | None -> None);
      (match ctx.simulation with
      | Some r -> file "simulation.txt" (simulation_text r)
      | None -> None);
      (match ctx.host_source with Some s -> file "host.c" s | None -> None);
      (match ctx.vitis_source with Some s -> file "vitis.cpp" s | None -> None);
    ]
  @ List.map
      (fun (a : Sf_codegen.Opencl.artifact) -> (a.filename, a.source))
      ctx.kernels

(* Typed artifact slots.

   A slot names one artifact of the context, with a uniform interface to
   read it, install it, erase it, and fingerprint its content. Passes
   declare the slots they read and write (see {!Pass_manager.pass}); the
   content-addressed cache keys a pass execution on the fingerprints of
   its read slots and replays the values of its write slots on a hit.

   Environment slots (device, configuration, inputs) have no [erase] —
   they are request parameters, not pass products — so erasing them is a
   no-op; no pass lists them as writes. *)

module F = Sf_support.Fingerprint

type 'a slot = {
  slot_name : string;
  get : t -> 'a option;
  put : t -> 'a -> t;
  erase : t -> t;
  fp : 'a -> F.t;
}

type packed = P : 'a slot -> packed

let program_slot =
  {
    slot_name = "program";
    get = (fun ctx -> ctx.program);
    put = with_program;
    erase =
      (fun ctx ->
        {
          ctx with
          program = None;
          opt = None;
          pipeline_entries = [];
          analysis = None;
          partition = None;
          kernels = [];
          host_source = None;
          vitis_source = None;
          simulation = None;
          performance_model = None;
        });
    fp = Program.fingerprint;
  }

let source_file_slot =
  {
    slot_name = "source-file";
    get = (fun ctx -> ctx.source_file);
    put = (fun ctx f -> { ctx with source_file = Some f });
    erase = (fun ctx -> { ctx with source_file = None });
    fp = F.of_string;
  }

let fusion_slot =
  {
    slot_name = "fusion";
    get = (fun ctx -> ctx.fusion);
    put = (fun ctx r -> { ctx with fusion = Some r });
    erase = (fun ctx -> { ctx with fusion = None });
    fp = (fun r -> F.of_string (fusion_text r));
  }

let opt_slot =
  {
    slot_name = "opt";
    get = (fun ctx -> ctx.opt);
    put = (fun ctx r -> { ctx with opt = Some r });
    erase = (fun ctx -> { ctx with opt = None });
    fp = (fun r -> F.of_string (opt_text r));
  }

let pipeline_entries_slot =
  {
    slot_name = "pipeline-entries";
    get = (fun ctx -> match ctx.pipeline_entries with [] -> None | es -> Some es);
    put = (fun ctx es -> { ctx with pipeline_entries = es });
    erase = (fun ctx -> { ctx with pipeline_entries = [] });
    fp = (fun es -> F.of_string (pipeline_text es));
  }

let analysis_slot =
  {
    slot_name = "analysis";
    get = (fun ctx -> ctx.analysis);
    put = (fun ctx a -> { ctx with analysis = Some a });
    erase = (fun ctx -> { ctx with analysis = None });
    fp = (fun a -> F.of_string (analysis_text a));
  }

let partition_slot =
  {
    slot_name = "partition";
    get = (fun ctx -> ctx.partition);
    put = (fun ctx pt -> { ctx with partition = Some pt });
    erase = (fun ctx -> { ctx with partition = None });
    fp = (fun pt -> F.of_string (partition_text pt));
  }

let kernels_slot =
  {
    slot_name = "kernels";
    get = (fun ctx -> match ctx.kernels with [] -> None | ks -> Some ks);
    put = (fun ctx ks -> { ctx with kernels = ks });
    erase = (fun ctx -> { ctx with kernels = [] });
    fp =
      (fun ks ->
        F.digest (fun st ->
            F.add_list st
              (fun st (a : Sf_codegen.Opencl.artifact) ->
                F.add_int st a.device;
                F.add_string st a.filename;
                F.add_string st a.source)
              ks));
  }

let host_source_slot =
  {
    slot_name = "host-source";
    get = (fun ctx -> ctx.host_source);
    put = (fun ctx s -> { ctx with host_source = Some s });
    erase = (fun ctx -> { ctx with host_source = None });
    fp = F.of_string;
  }

let vitis_source_slot =
  {
    slot_name = "vitis-source";
    get = (fun ctx -> ctx.vitis_source);
    put = (fun ctx s -> { ctx with vitis_source = Some s });
    erase = (fun ctx -> { ctx with vitis_source = None });
    fp = F.of_string;
  }

let simulation_slot =
  {
    slot_name = "simulation";
    get = (fun ctx -> ctx.simulation);
    put = (fun ctx r -> { ctx with simulation = Some r });
    erase = (fun ctx -> { ctx with simulation = None });
    fp =
      (fun r ->
        F.digest (fun st ->
            F.add_string st (simulation_text r);
            match r with
            | Error _ -> ()
            | Ok (s : Engine.stats) ->
                F.add_list st
                  (fun st (name, (res : Sf_reference.Interp.result)) ->
                    F.add_string st name;
                    F.add_fingerprint st (Sf_reference.Tensor.fingerprint res.tensor);
                    F.add_list st F.add_bool (Array.to_list res.valid))
                  s.results));
  }

let performance_model_slot =
  {
    slot_name = "performance-model";
    get = (fun ctx -> ctx.performance_model);
    put = (fun ctx v -> { ctx with performance_model = Some v });
    erase = (fun ctx -> { ctx with performance_model = None });
    fp = (fun v -> F.digest (fun st -> F.add_float st v));
  }

let device_slot =
  {
    slot_name = "device";
    get = (fun ctx -> Some ctx.device);
    put = (fun ctx d -> { ctx with device = d });
    erase = (fun ctx -> ctx);
    fp = Sf_models.Device.fingerprint;
  }

let sim_config_slot =
  {
    slot_name = "sim-config";
    get = (fun ctx -> Some ctx.sim_config);
    put = (fun ctx c -> { ctx with sim_config = c });
    erase = (fun ctx -> ctx);
    fp = Engine.Config.fingerprint;
  }

(* Narrow view of the config so latency-driven analyses are keyed only on
   the operator-latency table, not on simulation knobs like seeds or
   cycle limits — that is what makes an incremental request re-run only
   genuinely downstream passes. *)
let sim_latency_slot =
  {
    slot_name = "sim-latency";
    get = (fun ctx -> Some ctx.sim_config.Engine.Config.latency);
    put = (fun ctx l -> { ctx with sim_config = { ctx.sim_config with Engine.Config.latency = l } });
    erase = (fun ctx -> ctx);
    fp = Engine.Config.latency_fingerprint;
  }

let inputs_slot =
  {
    slot_name = "inputs";
    get = (fun ctx -> ctx.inputs);
    put = (fun ctx i -> { ctx with inputs = Some i });
    erase = (fun ctx -> { ctx with inputs = None });
    fp =
      (fun inputs ->
        F.digest (fun st ->
            F.add_list st
              (fun st (name, t) ->
                F.add_string st name;
                F.add_fingerprint st (Sf_reference.Tensor.fingerprint t))
              inputs));
  }

let all_slots =
  [
    P program_slot;
    P source_file_slot;
    P fusion_slot;
    P opt_slot;
    P pipeline_entries_slot;
    P analysis_slot;
    P partition_slot;
    P kernels_slot;
    P host_source_slot;
    P vitis_source_slot;
    P simulation_slot;
    P performance_model_slot;
    P device_slot;
    P sim_config_slot;
    P sim_latency_slot;
    P inputs_slot;
  ]

let slot_name (P s) = s.slot_name
let find_slot name = List.find_opt (fun p -> String.equal (slot_name p) name) all_slots
let slot_fingerprint ctx (P s) = Option.map s.fp (s.get ctx)
