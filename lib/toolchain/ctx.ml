module Diag = Sf_support.Diag
module Program = Sf_ir.Program
module Stencil = Sf_ir.Stencil
module Engine = Sf_sim.Engine

type t = {
  device : Sf_models.Device.t;
  sim_config : Engine.config;
  inputs : (string * Sf_reference.Tensor.t) list option;
  source_file : string option;
  program : Program.t option;
  fusion : Sf_sdfg.Fusion.report option;
  opt : Sf_sdfg.Opt.report option;
  pipeline_entries : Sf_sdfg.Pipeline.entry list;
  analysis : Sf_analysis.Delay_buffer.t option;
  partition : Sf_mapping.Partition.t option;
  kernels : Sf_codegen.Opencl.artifact list;
  host_source : string option;
  vitis_source : string option;
  simulation : (Engine.stats, Diag.t) result option;
  performance_model : float option;
  diags : Diag.t list;
}

let create ?(device = Sf_models.Device.stratix10) ?(sim_config = Engine.Config.default)
    ?inputs () =
  {
    device;
    sim_config;
    inputs;
    source_file = None;
    program = None;
    fusion = None;
    opt = None;
    pipeline_entries = [];
    analysis = None;
    partition = None;
    kernels = [];
    host_source = None;
    vitis_source = None;
    simulation = None;
    performance_model = None;
    diags = [];
  }

(* A new program version invalidates everything derived from the old one;
   reports about how it was produced (fusion, pipeline entries) stay. *)
let with_program ctx p =
  {
    ctx with
    program = Some p;
    analysis = None;
    partition = None;
    kernels = [];
    host_source = None;
    vitis_source = None;
    simulation = None;
    performance_model = None;
  }

let the_program ctx =
  match ctx.program with
  | Some p -> Ok p
  | None ->
      Error
        [
          Diag.error ~code:Diag.Code.internal
            "no program loaded: a frontend pass must run first";
        ]

let add_diag ctx d =
  let same (d' : Diag.t) =
    d'.Diag.severity = d.Diag.severity
    && String.equal d'.Diag.code d.Diag.code
    && String.equal d'.Diag.message d.Diag.message
  in
  if List.exists same ctx.diags then ctx else { ctx with diags = ctx.diags @ [ d ] }

let code_bytes ctx =
  List.fold_left (fun acc (a : Sf_codegen.Opencl.artifact) -> acc + String.length a.source)
    0 ctx.kernels
  + (match ctx.host_source with Some s -> String.length s | None -> 0)
  + match ctx.vitis_source with Some s -> String.length s | None -> 0

let counters ctx =
  let program_counters =
    match ctx.program with
    | None -> []
    | Some p ->
        let edges =
          List.fold_left
            (fun acc s -> acc + List.length (Stencil.input_fields s))
            0 p.Program.stencils
        in
        [ ("stencils", List.length p.Program.stencils); ("edges", edges) ]
  in
  program_counters
  @ (match ctx.opt with
    | None -> []
    | Some (r : Sf_sdfg.Opt.report) ->
        [
          ("opt-ops-before", r.ops_before);
          ("opt-ops-after", r.ops_after);
          ("opt-shared", r.shared_nodes);
          ("opt-flops-saved", Sf_sdfg.Opt.flops_saved r);
        ])
  @ (match ctx.analysis with
    | None -> []
    | Some a -> [ ("delay-words", Sf_analysis.Delay_buffer.total_delay_buffer_words a) ])
  @ (match ctx.partition with
    | None -> []
    | Some pt -> [ ("devices", pt.Sf_mapping.Partition.num_devices) ])
  @ (match code_bytes ctx with 0 -> [] | n -> [ ("code-bytes", n) ])
  @
  match ctx.simulation with
  | Some (Ok (s : Engine.stats)) ->
      [
        ("sim-cycles", s.cycles);
        ("sim-stalls", Sf_sim.Telemetry.total_blocked s.telemetry);
        ("sim-net-bytes", s.network_bytes);
      ]
      @
      let f = s.faults in
      if f.Sf_sim.Fault_plan.injected_events > 0 then
        [
          ("faults-injected", f.Sf_sim.Fault_plan.injected_events);
          ("stall-cycles-injected", f.Sf_sim.Fault_plan.injected_stall_cycles);
        ]
      else []
  | Some (Error _) | None -> []

let fmt_to_string pp v =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  pp fmt v;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let artifact_files ctx =
  let file name content = Some (name, content) in
  List.filter_map
    (fun x -> x)
    [
      (match ctx.program with
      | Some p -> file "program.json" (Sf_frontend.Program_json.to_string p)
      | None -> None);
      (match ctx.fusion with
      | Some (r : Sf_sdfg.Fusion.report) ->
          file "fusion.txt"
            (Printf.sprintf "stencils %d -> %d\n%s" r.stencils_before r.stencils_after
               (String.concat ""
                  (List.map
                     (fun (u, v) -> Printf.sprintf "fused %s into %s\n" u v)
                     r.fused_pairs)))
      | None -> None);
      (match ctx.opt with
      | Some (r : Sf_sdfg.Opt.report) ->
          file "opt.txt"
            (Printf.sprintf
               "ops %d -> %d (tree %d)\nshared nodes %d\nflops saved by sharing %d\n"
               r.ops_before r.ops_after r.tree_ops_after r.shared_nodes
               (Sf_sdfg.Opt.flops_saved r))
      | None -> None);
      (match ctx.pipeline_entries with
      | [] -> None
      | entries ->
          file "pipeline.txt"
            (String.concat ""
               (List.map
                  (fun e -> fmt_to_string Sf_sdfg.Pipeline.pp_entry e ^ "\n")
                  entries)));
      (match ctx.analysis with
      | Some a -> file "analysis.txt" (fmt_to_string Sf_analysis.Delay_buffer.pp a)
      | None -> None);
      (match ctx.partition with
      | Some pt -> file "partition.txt" (fmt_to_string Sf_mapping.Partition.pp pt)
      | None -> None);
      (match ctx.simulation with
      | Some (Ok (s : Engine.stats)) ->
          file "simulation.txt"
            (Printf.sprintf
               "cycles %d (predicted %d)\nbytes read %d, written %d, network %d\n" s.cycles
               s.predicted_cycles s.bytes_read s.bytes_written s.network_bytes)
      | Some (Error d) -> file "simulation.txt" (Printf.sprintf "FAILED: %s\n" (Diag.to_string d))
      | None -> None);
      (match ctx.host_source with Some s -> file "host.c" s | None -> None);
      (match ctx.vitis_source with Some s -> file "vitis.cpp" s | None -> None);
    ]
  @ List.map
      (fun (a : Sf_codegen.Opencl.artifact) -> (a.filename, a.source))
      ctx.kernels
