(** Content-addressed cache of pass executions — thread-safe, with
    single-flight deduplication.

    A cache entry records what one pass produced — the values of its
    declared write slots plus the diagnostics it emitted — keyed by a
    digest of everything the execution could depend on: the pass name,
    a fingerprint of its options, and the fingerprints of its read
    slots (see {!key}). Two executions with equal keys are guaranteed
    (up to hash collisions) to produce identical artifacts, so
    {!Pass_manager.run} can replay the entry instead of running the
    pass.

    Entries live in a bounded in-memory LRU; with {!with_store} they
    are additionally written through to an on-disk {!Sf_support.Store},
    so a fresh process (or the [serve] daemon after a restart) starts
    warm. Disk blobs are [Marshal]-serialized per slot and guarded by
    the store's schema version; any deserialization failure counts as
    [stale] and falls back to executing the pass — the cache is an
    accelerator, never a correctness dependency.

    {b Concurrency.} Every operation is safe to call from any domain:
    lookups, insertions, [stats] and [clear] synchronize on one
    internal mutex (held only for table operations, never for blob
    IO). Lookup follows a {e single-flight} protocol: {!acquire}
    returns [Miss flight] to exactly one caller per key — the leader,
    who must execute the pass and then {!fulfill} (publish) or
    {!abandon} (failed / cancelled — never published) the flight.
    Concurrent acquirers of the same key block until the flight
    settles and get [Joined entry], so a fleet replaying near-identical
    requests executes each distinct pass once. *)

type binding = B : 'a Ctx.slot * 'a -> binding
(** One write-slot value captured from a pass execution. *)

type entry = {
  bindings : binding list;  (** Write slots, in declaration order. *)
  diags : Sf_support.Diag.t list;
      (** Diagnostics the execution appended, replayed on a hit. *)
}

type t

val create : ?capacity:int -> unit -> t
(** In-memory LRU holding at most [capacity] entries (default 128). *)

val with_store : t -> Sf_support.Store.t -> t
(** Attach a write-through (and read-miss fallback) [store]; returns
    the same cache. *)

val key :
  pass_name:string ->
  options_fp:Sf_support.Fingerprint.t option ->
  reads:Ctx.packed list ->
  Ctx.t ->
  Sf_support.Fingerprint.t
(** The cache key of executing [pass_name] (with options digesting to
    [options_fp]) against the current content of [reads] in [ctx].
    Absent read slots contribute a distinct absence marker, so "ran
    before the artifact existed" and "ran against artifact X" never
    collide. *)

type flight
(** A claimed in-progress execution. The holder must settle it with
    {!fulfill} or {!abandon} — leaking one blocks every later acquirer
    of its key forever. *)

type outcome =
  | Hit of entry  (** Found in memory or promoted from the store. *)
  | Joined of entry
      (** Deduplicated: a concurrent execution of the same key finished
          while this caller waited. *)
  | Miss of flight
      (** This caller leads: execute, then {!fulfill} or {!abandon}. *)

val acquire : ?wait_until:float -> t -> Sf_support.Fingerprint.t -> outcome
(** Look the key up (memory first, then the store — a disk hit is
    promoted to memory and settles the flight for any waiters; a blob
    failing its checksum is counted in [store_corrupt] and treated as a
    miss), joining an in-progress execution if one exists. Blocks only
    while waiting on a leader, normally for as long as the leader
    executes. With [wait_until] (an absolute {!Sf_support.Util.monotime}
    bound) the flight-wait is bounded: if the leader has not settled by
    then, this caller {e takes over} — the stalled flight is
    unregistered and a fresh one returned as [Miss], so a crashed or
    wedged leader can never park waiters forever. A stale leader
    settling after a takeover only wakes its own waiters; it cannot
    disturb the new flight. Updates the hit/miss/stale/joined/takeover
    counters. *)

val fulfill : t -> flight -> entry -> unit
(** Publish the leader's result: insert into memory (evicting LRU when
    full), write through to the store when attached, and wake every
    waiter with [Joined entry]. *)

val abandon : t -> flight -> unit
(** Settle the flight without publishing (the execution failed or was
    cancelled). Waiters retry; the first one becomes the new leader. *)

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  joined : int;  (** Executions deduplicated by single-flight waiting. *)
  store_corrupt : int;
      (** Store blobs that failed their checksum trailer (each was
          quarantined and served as a miss). *)
  takeovers : int;
      (** Bounded flight-waits that expired and took over a stalled
          leader's flight. *)
  entries : int;
}

val stats : t -> stats

val clear : t -> unit
(** Drop every in-memory entry and delete the store's blobs; counters
    are reset. In-progress flights are unaffected and settle into the
    cleared table. *)
