(** Content-addressed cache of pass executions.

    A cache entry records what one pass produced — the values of its
    declared write slots plus the diagnostics it emitted — keyed by a
    digest of everything the execution could depend on: the pass name,
    a fingerprint of its options, and the fingerprints of its read
    slots (see {!key}). Two executions with equal keys are guaranteed
    (up to hash collisions) to produce identical artifacts, so
    {!Pass_manager.run} can replay the entry instead of running the
    pass.

    Entries live in a bounded in-memory LRU; with {!with_store} they
    are additionally written through to an on-disk {!Sf_support.Store},
    so a fresh process (or the [serve] daemon after a restart) starts
    warm. Disk blobs are [Marshal]-serialized per slot and guarded by
    the store's schema version; any deserialization failure counts as
    [stale] and falls back to executing the pass — the cache is an
    accelerator, never a correctness dependency. *)

type binding = B : 'a Ctx.slot * 'a -> binding
(** One write-slot value captured from a pass execution. *)

type entry = {
  bindings : binding list;  (** Write slots, in declaration order. *)
  diags : Sf_support.Diag.t list;
      (** Diagnostics the execution appended, replayed on a hit. *)
}

type t

val create : ?capacity:int -> unit -> t
(** In-memory LRU holding at most [capacity] entries (default 128). *)

val with_store : t -> Sf_support.Store.t -> t
(** Same cache, write-through to (and read-miss fallback from) [store]. *)

val key :
  pass_name:string ->
  options_fp:Sf_support.Fingerprint.t option ->
  reads:Ctx.packed list ->
  Ctx.t ->
  Sf_support.Fingerprint.t
(** The cache key of executing [pass_name] (with options digesting to
    [options_fp]) against the current content of [reads] in [ctx].
    Absent read slots contribute a distinct absence marker, so "ran
    before the artifact existed" and "ran against artifact X" never
    collide. *)

val find : t -> Sf_support.Fingerprint.t -> entry option
(** Memory first, then the store (a disk hit is promoted to memory).
    Updates the hit/miss/stale counters. *)

val add : t -> Sf_support.Fingerprint.t -> entry -> unit
(** Insert, evicting the least-recently-used entry when full, and write
    through to the store when one is attached. *)

type stats = { hits : int; misses : int; stale : int; evictions : int; entries : int }

val stats : t -> stats
val clear : t -> unit
(** Drop every in-memory entry and delete the store's blobs; counters
    are reset. *)
