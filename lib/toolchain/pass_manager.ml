module Diag = Sf_support.Diag
module F = Sf_support.Fingerprint
module Program = Sf_ir.Program
module Partition = Sf_mapping.Partition
module Resource = Sf_models.Resource

type kind = Frontend | Transform | Analysis | Mapping | Codegen | Simulation | Other

let kind_to_string = function
  | Frontend -> "frontend"
  | Transform -> "transform"
  | Analysis -> "analysis"
  | Mapping -> "mapping"
  | Codegen -> "codegen"
  | Simulation -> "simulation"
  | Other -> "other"

type pass = {
  name : string;
  description : string;
  kind : kind;
  reads : Ctx.packed list;
  writes : Ctx.packed list;
  fingerprint : unit -> F.t option;
  run : Ctx.t -> (Ctx.t, Diag.t list) result;
}

let make_pass ?(reads = []) ?(writes = []) ?(fingerprint = fun () -> None) ~name ~description
    ~kind run =
  { name; description; kind; reads; writes; fingerprint; run }

let monotime = Sf_support.Util.monotime

type timing = {
  pass : string;
  kind : kind;
  seconds : float;
  counters_before : (string * int) list;
  counters_after : (string * int) list;
  ok : bool;
  cached : bool;
  joined : bool;
  missed : bool;
}

type trace = timing list

type hooks = {
  on_pass : (timing -> unit) option;
  dump : (index:int -> pass:string -> Ctx.t -> unit) option;
}

let no_hooks = { on_pass = None; dump = None }

(* Post-pass invariants over whatever artifacts the context holds.
   Returns hard errors (abort) and warnings (dedupe into ctx.diags). *)
let invariant_diags (ctx : Ctx.t) =
  let errors = ref [] and warnings = ref [] in
  let error d = errors := d :: !errors in
  let warning d = warnings := d :: !warnings in
  (match ctx.Ctx.program with
  | None -> ()
  | Some p -> (
      match Program.validate p with
      | Ok () -> ()
      | Error msgs ->
          List.iter (fun m -> error (Diag.error ~code:Diag.Code.validation m)) msgs));
  (match ctx.Ctx.analysis with
  | None -> ()
  | Some a ->
      List.iter
        (fun ((src, dst), depth) ->
          if depth < 0 then
            error
              (Diag.errorf ~code:Diag.Code.analysis_invariant
                 "delay buffer %s -> %s has negative depth %d" src dst depth))
        a.Sf_analysis.Delay_buffer.edges);
  (match (ctx.Ctx.program, ctx.Ctx.partition) with
  | Some p, Some pt -> (
      (match Partition.validate p pt with
      | Ok () -> ()
      | Error msgs ->
          List.iter
            (fun m -> error (Diag.error ~code:Diag.Code.partition_invariant m))
            msgs);
      List.iteri
        (fun d usage ->
          if not (Resource.fits ctx.Ctx.device usage) then
            warning
              (Diag.warningf ~code:Diag.Code.partition_invariant
                 "device %d of the partition exceeds the %s resource budget" d
                 ctx.Ctx.device.Sf_models.Device.name))
        pt.Partition.per_device_usage)
  | _ -> ());
  (List.rev !errors, List.rev !warnings)

(* Replay a cache entry: install every captured write slot (the program
   slot first in declaration order, so its derived-artifact invalidation
   cannot clobber a slot installed after it) and re-append the recorded
   diagnostics through [add_diag] (deduplicated like a live run). *)
let replay ctx (entry : Cache.entry) =
  let ctx =
    List.fold_left (fun ctx (Cache.B (slot, v)) -> slot.Ctx.put ctx v) ctx entry.Cache.bindings
  in
  List.fold_left Ctx.add_diag ctx entry.Cache.diags

(* Capture what a successful execution produced: the declared write
   slots that are present afterwards, plus the diagnostics appended
   relative to the pre-pass context ([add_diag] only ever appends). *)
let capture (pass : pass) (ctx : Ctx.t) (ctx' : Ctx.t) =
  let bindings =
    List.filter_map
      (fun (Ctx.P slot) ->
        match slot.Ctx.get ctx' with Some v -> Some (Cache.B (slot, v)) | None -> None)
      pass.writes
  in
  let before = List.length ctx.Ctx.diags in
  let diags = List.filteri (fun i _ -> i >= before) ctx'.Ctx.diags in
  { Cache.bindings; diags }

let run ?(hooks = no_hooks) ?cache ?(should_stop = fun () -> false) ?deadline passes ctx =
  let trace = ref [] in
  let record t =
    trace := t :: !trace;
    match hooks.on_pass with Some f -> f t | None -> ()
  in
  let rec go index ctx = function
    | [] -> Ok (ctx, List.rev !trace)
    | pass :: rest ->
        if should_stop () then
          (* Cancellation is only honoured at pass boundaries: a pass
             either runs to completion or not at all, so a cancelled
             request can never publish a half-built artifact. *)
          Error
            ( [ Diag.errorf ~code:Diag.Code.cancelled "request cancelled before pass %s" pass.name ],
              List.rev !trace )
        else begin
          let counters_before = Ctx.counters ctx in
          let lookup =
            match (cache, pass.fingerprint ()) with
            | Some cache, Some options_fp ->
                let key =
                  Cache.key ~pass_name:pass.name ~options_fp:(Some options_fp) ~reads:pass.reads
                    ctx
                in
                (* The deadline also bounds the single-flight wait: a
                   waiter parked behind a stalled leader takes the
                   flight over at the deadline instead of blocking
                   forever (and then typically fails fast below). *)
                Some (cache, Cache.acquire ?wait_until:deadline cache key)
            | _ -> None
          in
          match lookup with
          | Some (_, ((Cache.Hit entry | Cache.Joined entry) as outcome)) ->
              (* Hit: the entry was stored after its invariants passed, so
                 replaying it cannot introduce an invariant violation. *)
              let t0 = monotime () in
              let ctx' = replay ctx entry in
              let seconds = monotime () -. t0 in
              record
                {
                  pass = pass.name;
                  kind = pass.kind;
                  seconds;
                  counters_before;
                  counters_after = Ctx.counters ctx';
                  ok = true;
                  cached = true;
                  joined = (match outcome with Cache.Joined _ -> true | _ -> false);
                  missed = false;
                };
              (match hooks.dump with Some f -> f ~index ~pass:pass.name ctx' | None -> ());
              go (index + 1) ctx' rest
          | Some (_, Cache.Miss _) | None -> (
              (* As flight leader (the [Miss] case) this execution must
                 settle the flight on every exit path: [fulfill] only
                 after the invariants pass, [abandon] on failure or
                 invariant violation — failed runs are never published,
                 and a parked follower then retries as the new leader. *)
              let flight =
                match lookup with Some (cache, Cache.Miss f) -> Some (cache, f) | _ -> None
              in
              let abandon () =
                match flight with Some (cache, f) -> Cache.abandon cache f | None -> ()
              in
              let expired =
                match deadline with Some d -> monotime () >= d | None -> false
              in
              if expired then begin
                (* The deadline is only charged against actual work:
                   cached replays above are free, so a warm request can
                   still answer after its budget, while a cold one
                   stops at the first pass it cannot afford. Completed
                   passes stay cached for the retry. *)
                abandon ();
                Error
                  ( [
                      Diag.errorf ~code:Diag.Code.deadline "deadline exceeded before pass %s"
                        pass.name;
                    ],
                    List.rev !trace )
              end
              else
              let t0 = monotime () in
              let result =
                try pass.run ctx
                with exn ->
                  Error
                    [
                      Diag.errorf ~code:Diag.Code.internal "pass %s raised: %s" pass.name
                        (Printexc.to_string exn);
                    ]
              in
              let seconds = monotime () -. t0 in
              let entry ok counters_after =
                {
                  pass = pass.name;
                  kind = pass.kind;
                  seconds;
                  counters_before;
                  counters_after;
                  ok;
                  cached = false;
                  joined = false;
                  missed = flight <> None;
                }
              in
              match result with
              | Error ds ->
                  abandon ();
                  record (entry false counters_before);
                  Error (ds, List.rev !trace)
              | Ok ctx' -> (
                  let errors, warnings = invariant_diags ctx' in
                  let ctx' = List.fold_left Ctx.add_diag ctx' warnings in
                  record (entry (errors = []) (Ctx.counters ctx'));
                  match errors with
                  | _ :: _ ->
                      abandon ();
                      Error (errors, List.rev !trace)
                  | [] ->
                      (match flight with
                      | Some (cache, f) -> Cache.fulfill cache f (capture pass ctx ctx')
                      | None -> ());
                      (match hooks.dump with
                      | Some f -> f ~index ~pass:pass.name ctx'
                      | None -> ());
                      go (index + 1) ctx' rest))
        end
  in
  go 0 ctx passes

let pp_counters fmt (before, after) =
  List.iter
    (fun (key, v) ->
      match List.assoc_opt key before with
      | Some v0 when v0 <> v -> Format.fprintf fmt " %s=%d->%d" key v0 v
      | Some _ | None -> Format.fprintf fmt " %s=%d" key v)
    after

let pp_trace fmt (trace : trace) =
  Format.fprintf fmt "pass trace (%d pass(es)):@." (List.length trace);
  List.iter
    (fun t ->
      Format.fprintf fmt "  %-18s %-10s %8.2f ms %s%s%a@." t.pass (kind_to_string t.kind)
        (t.seconds *. 1000.)
        (if t.cached then "[cached]" else "")
        (if t.ok then "" else "[FAILED]")
        pp_counters
        (t.counters_before, t.counters_after))
    trace

let cached_passes (trace : trace) = List.length (List.filter (fun t -> t.cached) trace)
let executed_passes (trace : trace) = List.length (List.filter (fun t -> not t.cached) trace)

let time ~label f =
  ignore label;
  let t0 = monotime () in
  let result = f () in
  (result, monotime () -. t0)
