(** The typed artifact store threaded through {!Pass_manager} passes.

    Each pipeline stage reads the artifacts it needs and records the ones
    it produces: the frontend fills {!t.program}, transformations replace
    it (recording fusion/pipeline reports), analyses fill {!t.analysis},
    mapping fills {!t.partition}, and backends fill the generated-code
    slots. Warnings accumulate in {!t.diags} (deduplicated); hard errors
    are returned by the pass itself and abort the pipeline. *)

type t = {
  device : Sf_models.Device.t;  (** Resource/frequency model for mapping. *)
  sim_config : Sf_sim.Engine.config;
  inputs : (string * Sf_reference.Tensor.t) list option;
      (** Simulation inputs (default: random). *)
  source_file : string option;  (** Where {!t.program} was loaded from. *)
  program : Sf_ir.Program.t option;
  fusion : Sf_sdfg.Fusion.report option;
  opt : Sf_sdfg.Opt.report option;
      (** Counters from the last expression-optimisation pass (fold-cse). *)
  pipeline_entries : Sf_sdfg.Pipeline.entry list;
      (** Per-pass records from an embedded {!Sf_sdfg.Pipeline} run. *)
  analysis : Sf_analysis.Delay_buffer.t option;
  partition : Sf_mapping.Partition.t option;
  kernels : Sf_codegen.Opencl.artifact list;
  host_source : string option;
  vitis_source : string option;
  simulation : (Sf_sim.Engine.stats, Sf_support.Diag.t) result option;
  performance_model : float option;  (** Modelled ops/s at the device clock. *)
  diags : Sf_support.Diag.t list;
      (** Accumulated non-fatal diagnostics, oldest first. *)
}

val create :
  ?device:Sf_models.Device.t ->
  ?sim_config:Sf_sim.Engine.config ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  unit ->
  t
(** An empty context (default device: Stratix 10). *)

val with_program : t -> Sf_ir.Program.t -> t
(** Install a (new version of the) program, invalidating the artifacts
    derived from the previous version (analysis, partition, generated
    code, simulation). *)

val the_program : t -> (Sf_ir.Program.t, Sf_support.Diag.t list) result
(** The current program, or an [SF0901] diagnostic when no frontend pass
    has run yet. *)

val add_diag : t -> Sf_support.Diag.t -> t
(** Append a diagnostic unless an identical one (severity, code, message)
    is already recorded. *)

val counters : t -> (string * int) list
(** Artifact-size counters for the artifacts present: [stencils] and
    [edges] of the program, [opt-ops-before]/[opt-ops-after]/[opt-shared]/
    [opt-flops-saved] of the expression-optimisation report, [delay-words]
    of the analysis, [devices] of the partition, [code-bytes] of all
    generated sources. Used by {!Pass_manager} to report what each pass
    changed. *)

val artifact_files : t -> (string * string) list
(** The current artifacts as [(filename, contents)] pairs — the program
    as JSON, textual renderings of reports/analysis/partition/simulation,
    and the generated sources verbatim. Used by the [--dump-ir] hook. *)
