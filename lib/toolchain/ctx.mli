(** The typed artifact store threaded through {!Pass_manager} passes.

    Each pipeline stage reads the artifacts it needs and records the ones
    it produces: the frontend fills {!t.program}, transformations replace
    it (recording fusion/pipeline reports), analyses fill {!t.analysis},
    mapping fills {!t.partition}, and backends fill the generated-code
    slots. Warnings accumulate in {!t.diags} (deduplicated); hard errors
    are returned by the pass itself and abort the pipeline. *)

type t = {
  device : Sf_models.Device.t;  (** Resource/frequency model for mapping. *)
  sim_config : Sf_sim.Engine.config;
  inputs : (string * Sf_reference.Tensor.t) list option;
      (** Simulation inputs (default: random). *)
  source_file : string option;  (** Where {!t.program} was loaded from. *)
  program : Sf_ir.Program.t option;
  fusion : Sf_sdfg.Fusion.report option;
  opt : Sf_sdfg.Opt.report option;
      (** Counters from the last expression-optimisation pass (fold-cse). *)
  pipeline_entries : Sf_sdfg.Pipeline.entry list;
      (** Per-pass records from an embedded {!Sf_sdfg.Pipeline} run. *)
  analysis : Sf_analysis.Delay_buffer.t option;
  partition : Sf_mapping.Partition.t option;
  kernels : Sf_codegen.Opencl.artifact list;
  host_source : string option;
  vitis_source : string option;
  simulation : (Sf_sim.Engine.stats, Sf_support.Diag.t) result option;
  performance_model : float option;  (** Modelled ops/s at the device clock. *)
  diags : Sf_support.Diag.t list;
      (** Accumulated non-fatal diagnostics, oldest first. *)
}

val create :
  ?device:Sf_models.Device.t ->
  ?sim_config:Sf_sim.Engine.config ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  unit ->
  t
(** An empty context (default device: Stratix 10). *)

val with_program : t -> Sf_ir.Program.t -> t
(** Install a (new version of the) program, invalidating every artifact
    derived from the previous version (optimizer report, pipeline
    entries, analysis, partition, generated code, simulation,
    performance model). The fusion report is kept: it documents how the
    current program was produced, and fusing passes re-install it right
    after the swap. *)

val the_program : t -> (Sf_ir.Program.t, Sf_support.Diag.t list) result
(** The current program, or an [SF0901] diagnostic when no frontend pass
    has run yet. *)

val add_diag : t -> Sf_support.Diag.t -> t
(** Append a diagnostic unless an identical one (severity, code, message)
    is already recorded. *)

val counters : t -> (string * int) list
(** Artifact-size counters for the artifacts present: [stencils] and
    [edges] of the program, [opt-ops-before]/[opt-ops-after]/[opt-shared]/
    [opt-flops-saved] of the expression-optimisation report, [delay-words]
    of the analysis, [devices] of the partition, [code-bytes] of all
    generated sources. Used by {!Pass_manager} to report what each pass
    changed. *)

val artifact_files : t -> (string * string) list
(** The current artifacts as [(filename, contents)] pairs — the program
    as JSON, textual renderings of reports/analysis/partition/simulation,
    and the generated sources verbatim. Used by the [--dump-ir] hook. *)

(** {2 Typed artifact slots}

    A slot is a first-class view of one artifact of the context: how to
    read it, install it, erase it, and digest its content. Passes declare
    the slots they read and write ({!Pass_manager.pass}); the
    content-addressed cache ({!Cache}) keys a pass execution on the
    digests of its read slots and replays its write slots on a hit.

    The environment slots ([device], [sim-config], [sim-latency],
    [inputs]) always [get] to [Some] and have a no-op [erase]: they are
    request parameters, listed only in a pass's reads. [sim-latency] is a
    narrowed view of [sim-config] so latency-driven analyses are not
    invalidated by unrelated simulation knobs (seed, cycle limits). *)

type 'a slot = {
  slot_name : string;  (** Stable identifier, also the on-disk binding key. *)
  get : t -> 'a option;
  put : t -> 'a -> t;
      (** Install a value; for [program] this is {!with_program}, so
          installing also invalidates derived artifacts. *)
  erase : t -> t;
  fp : 'a -> Sf_support.Fingerprint.t;  (** Content digest of a value. *)
}

type packed = P : 'a slot -> packed

val program_slot : Sf_ir.Program.t slot
val source_file_slot : string slot
val fusion_slot : Sf_sdfg.Fusion.report slot
val opt_slot : Sf_sdfg.Opt.report slot
val pipeline_entries_slot : Sf_sdfg.Pipeline.entry list slot
val analysis_slot : Sf_analysis.Delay_buffer.t slot
val partition_slot : Sf_mapping.Partition.t slot
val kernels_slot : Sf_codegen.Opencl.artifact list slot
val host_source_slot : string slot
val vitis_source_slot : string slot
val simulation_slot : (Sf_sim.Engine.stats, Sf_support.Diag.t) result slot
val performance_model_slot : float slot
val device_slot : Sf_models.Device.t slot
val sim_config_slot : Sf_sim.Engine.config slot
val sim_latency_slot : Sf_analysis.Latency.config slot
val inputs_slot : (string * Sf_reference.Tensor.t) list slot

val all_slots : packed list
val slot_name : packed -> string
val find_slot : string -> packed option
(** Look a slot up by {!slot_name} — how the on-disk store maps
    serialized bindings back to typed slots. *)

val slot_fingerprint : t -> packed -> Sf_support.Fingerprint.t option
(** Digest of the slot's current content, or [None] when absent. *)
