(** Instrumented execution of a declared pass list.

    {!run} applies passes over a {!Ctx.t} in order, recording per-pass
    wall-clock time and artifact-size counters, invoking dump hooks
    between passes (the [--dump-ir] mechanism), and checking artifact
    invariants after every pass: the program still validates ([SF0301]),
    every analysed delay buffer has non-negative depth ([SF0401]), and
    the partition is structurally sound ([SF0502]) and fits the device
    (a deduplicated warning when it does not — the single-device
    fallback intentionally overflows). A pass returning [Error] (or an
    invariant error) aborts the pipeline; the timings of all executed
    passes, including the failing one, are still reported.

    Passes declare the {!Ctx.slot}s they read and write. When {!run} is
    given a {!Cache.t}, each cacheable pass is first looked up by its
    content key (pass name + options fingerprint + read-slot
    fingerprints); a hit replays the stored write slots and diagnostics
    instead of executing, and a miss stores them after the invariants
    pass. Failed executions are never cached. *)

type kind = Frontend | Transform | Analysis | Mapping | Codegen | Simulation | Other

val kind_to_string : kind -> string

type pass = {
  name : string;
  description : string;
  kind : kind;
  reads : Ctx.packed list;
      (** Slots whose content the pass depends on — the cache key. *)
  writes : Ctx.packed list;
      (** Slots the pass may install, captured into cache entries in
          this order (list the program slot first: installing it
          invalidates derived slots). *)
  fingerprint : unit -> Sf_support.Fingerprint.t option;
      (** Digest of the pass's captured options (closure arguments);
          [None] marks the pass uncacheable. *)
  run : Ctx.t -> (Ctx.t, Sf_support.Diag.t list) result;
}

val make_pass :
  ?reads:Ctx.packed list ->
  ?writes:Ctx.packed list ->
  ?fingerprint:(unit -> Sf_support.Fingerprint.t option) ->
  name:string ->
  description:string ->
  kind:kind ->
  (Ctx.t -> (Ctx.t, Sf_support.Diag.t list) result) ->
  pass
(** Construct a pass. The defaults ([reads]/[writes] empty, no
    fingerprint) make it uncacheable, which is always sound. *)

type timing = {
  pass : string;
  kind : kind;
  seconds : float;
  counters_before : (string * int) list;
  counters_after : (string * int) list;
  ok : bool;  (** False for the pass that aborted the pipeline. *)
  cached : bool;  (** True when the pass was replayed from the cache. *)
  joined : bool;
      (** True when the replayed entry came from waiting on a concurrent
          execution of the same key (single-flight deduplication) rather
          than from an already-published entry. Implies [cached]. *)
  missed : bool;
      (** True when the pass was cacheable, missed, and executed as the
          flight leader (its result was published on success). *)
}

type trace = timing list
(** One entry per executed pass, in execution order. *)

type hooks = {
  on_pass : (timing -> unit) option;
      (** Called after each pass completes (successfully or not). *)
  dump : (index:int -> pass:string -> Ctx.t -> unit) option;
      (** Called with the post-pass context after each successful pass;
          see {!Passes.dump_hook}. *)
}

val no_hooks : hooks

val run :
  ?hooks:hooks ->
  ?cache:Cache.t ->
  ?should_stop:(unit -> bool) ->
  ?deadline:float ->
  pass list ->
  Ctx.t ->
  (Ctx.t * trace, Sf_support.Diag.t list * trace) result
(** Run the passes in order. [Ok] carries the final context (whose
    [diags] field holds accumulated warnings) and the trace; [Error]
    carries the diagnostics of the failing pass or invariant and the
    trace up to and including it. A pass raising an exception becomes an
    [SF0901] diagnostic rather than escaping. With [cache], cacheable
    passes are replayed on a content-key hit (their trace entries have
    [cached = true]) and stored on a miss via the single-flight protocol
    — concurrent [run]s over a shared cache execute each distinct key
    once, and failed or cancelled executions abandon their flight so
    they never poison the cache. [should_stop] is polled before each
    pass (default: never); when it returns [true] the pipeline aborts
    with an [SF0902] cancellation error — a pass either runs to
    completion or not at all. [deadline] (an absolute
    {!Sf_support.Util.monotime}, default: none) is charged only against
    passes that would actually execute: cache replays are free, but a
    pass that must run (or lead a flight) after the deadline aborts the
    pipeline with [SF0904] instead — completed passes stay cached, so a
    retry resumes from the abandoned pass. The deadline also bounds
    single-flight waits (see {!Cache.acquire}). *)

val pp_trace : Format.formatter -> trace -> unit
(** The [--trace-passes] rendering: one line per pass with its kind,
    wall-clock time, a [\[cached\]] marker for replayed passes, and the
    artifact counters it changed. *)

val cached_passes : trace -> int
(** Passes replayed from the cache. *)

val executed_passes : trace -> int
(** Passes actually executed (not replayed). *)

val time : label:string -> (unit -> 'a) -> 'a * float
(** [time ~label f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds — the shared timing primitive for benchmark
    sections ([label] is not printed, only carried for callers). *)
