module Diag = Sf_support.Diag
module F = Sf_support.Fingerprint
module Program = Sf_ir.Program
module Engine = Sf_sim.Engine
module Partition = Sf_mapping.Partition

open Pass_manager

let ( let* ) r f = match r with Ok v -> f v | Error ds -> Error ds

(* Map the ad-hoc exceptions legacy transforms still raise. *)
let transform_guard name f =
  try f ()
  with Invalid_argument m | Failure m ->
    Error [ Diag.errorf ~code:Diag.Code.transform "pass %s failed: %s" name m ]

let install ?file ctx p = Ok { (Ctx.with_program ctx p) with Ctx.source_file = file }

(* Options fingerprints: a pass's cache key must cover the arguments its
   closure captured, not just the context it reads. *)
let opts f () = Some (F.digest f)
let no_opts = opts (fun _ -> ())

let load_file path =
  make_pass ~name:"load-file"
    ~description:("parse and validate a JSON program description from " ^ path)
    ~kind:Frontend
    ~writes:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.source_file_slot ]
    ~fingerprint:(fun () ->
      (* Key on the file's bytes, so an edited file is a different
         execution; an unreadable file is uncacheable and fails live. *)
      match In_channel.with_open_bin path In_channel.input_all with
      | content -> Some (F.digest (fun st -> F.add_string st content))
      | exception Sys_error _ -> None)
    (fun ctx ->
      let* p = Sf_frontend.Program_json.of_file path in
      install ~file:path ctx p)

let load_string ?file source =
  make_pass ~name:"load-string"
    ~description:"parse and validate an in-memory JSON program description" ~kind:Frontend
    ~writes:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.source_file_slot ]
    ~fingerprint:
      (opts (fun st ->
           F.add_string st source;
           F.add_option st F.add_string file))
    (fun ctx ->
      let* p = Sf_frontend.Program_json.of_string ?file source in
      install ?file ctx p)

let use_program p =
  make_pass ~name:"use-program" ~description:"install an already-constructed program"
    ~kind:Frontend
    ~writes:[ Ctx.P Ctx.program_slot ]
    ~fingerprint:(fun () -> Some (Program.fingerprint p))
    (fun ctx ->
      match Program.validate p with
      | Ok () -> install ctx p
      | Error msgs -> Error (List.map (Diag.error ~code:Diag.Code.validation) msgs))

let fuse ?max_body_size () =
  make_pass ~name:"stencil-fusion"
    ~description:"aggressively fuse producer/consumer stencils (Sec. V-B)" ~kind:Transform
    ~reads:[ Ctx.P Ctx.program_slot ]
    ~writes:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.fusion_slot ]
    ~fingerprint:(opts (fun st -> F.add_option st F.add_int max_body_size))
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      transform_guard "stencil-fusion" @@ fun () ->
      let p', report = Sf_sdfg.Fusion.fuse_all ?max_body_size p in
      Ok { (Ctx.with_program ctx p') with Ctx.fusion = Some report })

let optimize ?min_size () =
  make_pass ~name:"fold-cse"
    ~description:"constant folding and common subexpression elimination" ~kind:Transform
    ~reads:[ Ctx.P Ctx.program_slot ]
    ~writes:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.opt_slot ]
    ~fingerprint:(opts (fun st -> F.add_option st F.add_int min_size))
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      transform_guard "fold-cse" @@ fun () ->
      let p', report = Sf_sdfg.Opt.optimize_with_report ?min_size p in
      Ok { (Ctx.with_program ctx p') with Ctx.opt = Some report })

let vectorize w =
  make_pass
    ~name:(Printf.sprintf "vectorize-%d" w)
    ~description:"set the vectorization width (Sec. IV-C)" ~kind:Transform
    ~reads:[ Ctx.P Ctx.program_slot ]
    ~writes:[ Ctx.P Ctx.program_slot ]
    ~fingerprint:(opts (fun st -> F.add_int st w))
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      transform_guard "vectorize" @@ fun () ->
      Ok (Ctx.with_program ctx (Sf_analysis.Vectorize.apply p w)))

(* Uncacheable: the pass list is arbitrary closures with no canonical
   digest. *)
let sdfg_pipeline ?verify ?max_probe_cells passes =
  make_pass ~name:"sdfg-pipeline" ~description:"verified graph-rewriting pipeline (Sec. V)"
    ~kind:Transform
    ~reads:[ Ctx.P Ctx.program_slot ]
    ~writes:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.pipeline_entries_slot ]
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      let* p', entries = Sf_sdfg.Pipeline.run ?verify ?max_probe_cells passes p in
      Ok
        {
          (Ctx.with_program ctx p') with
          Ctx.pipeline_entries = ctx.Ctx.pipeline_entries @ entries;
        })

let delay_buffers =
  make_pass ~name:"delay-buffers"
    ~description:"size inter-stencil delay buffers and the program latency (Sec. IV-B)"
    ~kind:Analysis
    ~reads:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.sim_latency_slot ]
    ~writes:[ Ctx.P Ctx.analysis_slot ]
    ~fingerprint:no_opts
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      try
        let a =
          Sf_analysis.Delay_buffer.analyze ~config:ctx.Ctx.sim_config.Engine.Config.latency p
        in
        Ok { ctx with Ctx.analysis = Some a }
      with Invalid_argument m | Failure m ->
        Error [ Diag.errorf ~code:Diag.Code.analysis_invariant "delay-buffer analysis failed: %s" m ])

let partition =
  make_pass ~name:"partition"
    ~description:"map stencils onto devices under the resource model (Sec. III-B)"
    ~kind:Mapping
    ~reads:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.device_slot ]
    ~writes:[ Ctx.P Ctx.partition_slot ]
    ~fingerprint:no_opts
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      match Partition.greedy ~device:ctx.Ctx.device p with
      | Ok pt -> Ok { ctx with Ctx.partition = Some pt }
      | Error d ->
          let warn =
            Diag.warning ~code:Diag.Code.partition_fallback
              ~notes:[ d.Diag.message ]
              "program does not partition across devices; falling back to a single \
               oversubscribed device"
          in
          Ctx.add_diag { ctx with Ctx.partition = Some (Partition.single_device p) } warn
          |> Result.ok)

let partition_into devices =
  make_pass
    ~name:(Printf.sprintf "partition-into-%d" devices)
    ~description:"split the topological order into even contiguous device chunks"
    ~kind:Mapping
    ~reads:[ Ctx.P Ctx.program_slot ]
    ~writes:[ Ctx.P Ctx.partition_slot ]
    ~fingerprint:(opts (fun st -> F.add_int st devices))
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      match Partition.contiguous ~devices p with
      | Ok pt -> Ok { ctx with Ctx.partition = Some pt }
      | Error d -> Error [ d ])

let performance_model =
  make_pass ~name:"performance-model"
    ~description:"evaluate the Eq. 1 runtime model at the device clock" ~kind:Analysis
    ~reads:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.sim_latency_slot; Ctx.P Ctx.device_slot ]
    ~writes:[ Ctx.P Ctx.performance_model_slot ]
    ~fingerprint:no_opts
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      let ops =
        Sf_analysis.Runtime_model.performance_ops_per_s
          ~config:ctx.Ctx.sim_config.Engine.Config.latency
          ~frequency_hz:ctx.Ctx.device.Sf_models.Device.frequency_hz p
      in
      Ok { ctx with Ctx.performance_model = Some ops })

let simulate ?(validate = true) ?seed () =
  make_pass ~name:"simulate"
    ~description:"cycle-level spatial simulation validated against the reference"
    ~kind:Simulation
    ~reads:
      [
        Ctx.P Ctx.program_slot;
        Ctx.P Ctx.partition_slot;
        Ctx.P Ctx.sim_config_slot;
        Ctx.P Ctx.inputs_slot;
      ]
    ~writes:[ Ctx.P Ctx.simulation_slot ]
    ~fingerprint:
      (opts (fun st ->
           F.add_bool st validate;
           F.add_option st F.add_int seed))
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      let placement = Option.map Partition.placement_fn ctx.Ctx.partition in
      let config = ctx.Ctx.sim_config in
      let inputs =
        match (ctx.Ctx.inputs, seed) with
        | (Some _ as i), _ -> i
        | None, Some seed -> Some (Sf_reference.Interp.random_inputs ~seed p)
        | None, None -> None
      in
      let result =
        if validate then Sf_sim.Parallel.run_and_validate ~config ?placement ?inputs p
        else Sf_sim.Parallel.run ~config ?placement ?inputs p
      in
      let ctx = { ctx with Ctx.simulation = Some result } in
      match result with Ok _ -> Ok ctx | Error d -> Ok (Ctx.add_diag ctx d))

let codegen_opencl =
  make_pass ~name:"codegen-opencl"
    ~description:"emit Intel-FPGA-style OpenCL kernels and host code (Sec. VI)" ~kind:Codegen
    ~reads:[ Ctx.P Ctx.program_slot; Ctx.P Ctx.partition_slot ]
    ~writes:[ Ctx.P Ctx.kernels_slot; Ctx.P Ctx.host_source_slot ]
    ~fingerprint:no_opts
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      let* kernels = Sf_codegen.Opencl.generate ?partition:ctx.Ctx.partition p in
      let* host = Sf_codegen.Opencl.host_source ?partition:ctx.Ctx.partition p in
      Ok { ctx with Ctx.kernels = kernels; Ctx.host_source = Some host })

let codegen_vitis =
  make_pass ~name:"codegen-vitis" ~description:"emit Xilinx-style Vitis HLS C++ (Sec. VI)"
    ~kind:Codegen
    ~reads:[ Ctx.P Ctx.program_slot ]
    ~writes:[ Ctx.P Ctx.vitis_source_slot ]
    ~fingerprint:no_opts
    (fun ctx ->
      let* p = Ctx.the_program ctx in
      let* source = Sf_codegen.Vitis.generate p in
      Ok { ctx with Ctx.vitis_source = Some source })

let fuse_pass = fuse
let simulate_pass = simulate

let standard ?(fuse = true) ?(simulate = true) ?(validate = true) () =
  (if fuse then [ fuse_pass () ] else [])
  @ [ delay_buffers; partition; performance_model ]
  @ if simulate then [ simulate_pass ~validate () ] else []

let codegen_pipeline ~backend =
  [ delay_buffers; partition ]
  @ match backend with `Opencl -> [ codegen_opencl ] | `Vitis -> [ codegen_vitis ]

let mkdir_p dir =
  (* Only the leaf and its parent are ever missing in practice, but walk
     the whole path to be safe. *)
  let parts = String.split_on_char '/' dir in
  ignore
    (List.fold_left
       (fun prefix part ->
         let path = if prefix = "" then part else prefix ^ "/" ^ part in
         if path <> "" && not (Sys.file_exists path) then Sys.mkdir path 0o755;
         path)
       (if String.length dir > 0 && dir.[0] = '/' then "/" else "")
       parts)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let dump_hook ~dir =
  {
    Pass_manager.no_hooks with
    dump =
      Some
        (fun ~index ~pass ctx ->
          let subdir = Filename.concat dir (Printf.sprintf "%02d-%s" index pass) in
          mkdir_p subdir;
          List.iter
            (fun (name, content) -> write_file (Filename.concat subdir name) content)
            (Ctx.artifact_files ctx));
  }
