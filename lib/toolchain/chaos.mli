(** Deterministic chaos harness for the serve tier.

    The simulator earned its robustness claims through seeded fault
    campaigns ([Sf_sim.Faults]); this module applies the same discipline
    to the service layer. A campaign drives a {e live}
    {!Service.serve_loop} (real pipes, real worker pool, real writer)
    with a seed-derived plan of adversity — worker exceptions and slow
    passes injected through the service's [disturb] hook, malformed
    NDJSON interleaved with real traffic, and post-hoc on-disk blob
    corruption — and asserts the hardening invariants:

    + every submitted line (admitted id or garbage) is answered exactly
      once;
    + response [seq] numbers are gap-free ([0..n-1]);
    + the loop is alive at the end: the trailing [health] probe answers
      [ok] with every worker accounted for, and each injected exception
      surfaced as an [SF0905] response rather than a lost worker;
    + after corrupting a seeded subset of the store's blobs, a clean
      serial re-run over that store reproduces the unperturbed baseline
      byte-for-byte (on [ok]/[result]/[diagnostics] — timing and [seq]
      are scheduling-dependent by design) — a damaged blob is detected,
      quarantined and re-executed, never replayed.

    Everything is derived from the seed via [Fault_plan.Rng]'s
    splittable SplitMix64, so a failing seed replays exactly. *)

type disturbance = Calm | Raise | Slow of float

type seed_report = {
  seed : int;
  requests : int;  (** Clean compile requests in the plan. *)
  malformed : int;  (** Garbage lines interleaved. *)
  raises : int;  (** Injected worker exceptions. *)
  slows : int;  (** Injected slow executions. *)
  corrupted_blobs : int;  (** Store blobs damaged before the re-run. *)
  failures : string list;  (** Violated invariants; empty = pass. *)
}

type report = { seeds : int; failed : int; seed_reports : seed_report list }

val passed : report -> bool

val run_seed :
  ?serve_jobs:int ->
  ?requests:int ->
  store_root:string ->
  programs:string list ->
  int ->
  seed_report
(** Run one seed: baseline, perturbed live run against a store under
    [store_root] (created and removed per seed), corruption, clean
    re-run. [serve_jobs] defaults to 3, [requests] to 8; [programs] are
    program-file paths cycled across requests. *)

val campaign :
  ?seeds:int list ->
  ?serve_jobs:int ->
  ?requests:int ->
  ?store_root:string ->
  programs:string list ->
  unit ->
  report
(** {!run_seed} over every seed (default [1..25]). [store_root] defaults
    to a pid-qualified directory under the system temp dir and is
    removed afterwards. *)

val pp_report : Format.formatter -> report -> unit
