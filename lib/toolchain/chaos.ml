module Json = Sf_support.Json
module Store = Sf_support.Store
module Rng = Sf_sim.Fault_plan.Rng

(* What the plan does to one admitted request, injected through the
   service's [disturb] hook at the moment a worker starts executing. *)
type disturbance = Calm | Raise | Slow of float

type seed_report = {
  seed : int;
  requests : int;
  malformed : int;
  raises : int;
  slows : int;
  corrupted_blobs : int;
  failures : string list;
}

type report = { seeds : int; failed : int; seed_reports : seed_report list }

let passed r = r.failed = 0

(* --- deterministic request plan ------------------------------------ *)

type plan = {
  lines : string list;  (* the full NDJSON stream, shutdown included *)
  clean : (string * string) list;  (* id key -> clean request line *)
  disturbances : (string, disturbance) Hashtbl.t;
  n_malformed : int;
  n_raises : int;
  n_slows : int;
}

let id_key k = Printf.sprintf "\"r%d\"" k

let request_line ?deadline_ms ~verb ~file k =
  let deadline =
    match deadline_ms with
    | Some ms -> Printf.sprintf {|, "deadline_ms": %d|} ms
    | None -> ""
  in
  Printf.sprintf {|{"id": "r%d", "verb": %S, "program_file": %S%s}|} k verb file deadline

(* Garbage the reader must survive: invalid JSON, wrong-typed verbs,
   unknown verbs, compile verbs with no program. Every one of these must
   be answered (ok:false), never crash the loop. *)
let malformed_pool =
  [|
    "{";
    "not json at all";
    {|{"verb": 42}|};
    {|{"verb": "bogus-verb", "id": "m"}|};
    {|[1, 2|};
    {|{"verb": "analyze"}|};
    "\"just a string\"";
    {|{"id": {"deep": [1, {"nest": null}]}}|};
  |]

let make_plan ~rng ~programs ~requests =
  let d_rng = Rng.split rng "disturb" in
  let m_rng = Rng.split rng "malformed" in
  let v_rng = Rng.split rng "verbs" in
  let disturbances = Hashtbl.create 16 in
  let n_malformed = ref 0 and n_raises = ref 0 and n_slows = ref 0 in
  let progs = Array.of_list programs in
  let clean = ref [] in
  let lines = ref [] in
  let emit l = lines := l :: !lines in
  for k = 0 to requests - 1 do
    (* Seeded garbage interleaved with real traffic. *)
    if Rng.int m_rng 3 = 0 then begin
      emit malformed_pool.(Rng.int m_rng (Array.length malformed_pool));
      incr n_malformed
    end;
    let file = progs.(k mod Array.length progs) in
    let verb = if Rng.int v_rng 4 = 0 then "simulate" else "analyze" in
    let line = request_line ~verb ~file k in
    clean := (id_key k, line) :: !clean;
    (match Rng.int d_rng 4 with
    | 0 ->
        Hashtbl.replace disturbances (id_key k) Raise;
        incr n_raises
    | 1 ->
        let ms = 1 + Rng.int d_rng 10 in
        Hashtbl.replace disturbances (id_key k) (Slow (float_of_int ms /. 1000.));
        incr n_slows
    | _ -> ());
    emit line
  done;
  emit {|{"id": "probe", "verb": "health"}|};
  emit {|{"verb": "shutdown"}|};
  {
    lines = List.rev !lines;
    clean = List.rev !clean;
    disturbances;
    n_malformed = !n_malformed;
    n_raises = !n_raises;
    n_slows = !n_slows;
  }

(* --- driving a live serve_loop ------------------------------------- *)

(* Feed [lines] to a real [Service.serve_loop] over pipes — same
   plumbing as a remote client — and return the response lines. The
   writer goes first and the whole stream fits comfortably in the pipe
   buffer for campaign-sized plans, so no extra feeder domain is
   needed. *)
let drive service lines =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ocq = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      Out_channel.output_string ocq l;
      Out_channel.output_char ocq '\n')
    lines;
  Out_channel.close ocq;
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.serve_loop service ic oc;
        Out_channel.close oc;
        In_channel.close ic)
  in
  let ic = Unix.in_channel_of_descr resp_r in
  let rec read acc =
    match In_channel.input_line ic with None -> List.rev acc | Some l -> read (l :: acc)
  in
  let responses = read [] in
  Domain.join server;
  In_channel.close ic;
  responses

(* The semantic core of a response — what must be reproducible across
   runs. Timing, seq, worker attribution and cache deltas are
   scheduling-dependent by design and excluded. *)
let essence json =
  Json.to_string ~minify:true
    (Json.Obj
       [
         ("ok", Option.value ~default:Json.Null (Json.member "ok" json));
         ("result", Option.value ~default:Json.Null (Json.member "result" json));
         ("diagnostics", Option.value ~default:Json.Null (Json.member "diagnostics" json));
       ])

let member_key name json =
  match Json.member name json with
  | Some v -> Some (Json.to_string ~minify:true v)
  | None -> None

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- store corruption ----------------------------------------------- *)

let rec rm_rf path =
  if (try Sys.is_directory path with Sys_error _ -> false) then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    try Sys.rmdir path with Sys_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let list_blobs dir =
  let acc = ref [] in
  let subdirs = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.iter
    (fun sub ->
      let subpath = Filename.concat dir sub in
      if try Sys.is_directory subpath with Sys_error _ -> false then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".blob" then acc := Filename.concat subpath f :: !acc)
          (try Sys.readdir subpath with Sys_error _ -> [||]))
    subdirs;
  List.sort compare !acc

(* Damage a seeded subset of the store's blobs in place: truncation or a
   single bit flip in the payload region. At least one blob is hit
   whenever the store is non-empty, so every seed exercises the
   corruption path. *)
let corrupt_blobs ~rng dir =
  let c_rng = Rng.split rng "corrupt" in
  let blobs = list_blobs dir in
  let corrupted = ref 0 in
  List.iteri
    (fun i path ->
      if Rng.int c_rng 2 = 0 || (i = 0 && !corrupted = 0) then begin
        match In_channel.with_open_bin path In_channel.input_all with
        | exception _ -> ()
        | content when String.length content < 4 -> ()
        | content ->
            let damaged =
              if Rng.int c_rng 2 = 0 then
                (* Truncate: cut the blob roughly in half. *)
                String.sub content 0 (String.length content / 2)
              else begin
                (* Bit-flip one byte past the version header. *)
                let b = Bytes.of_string content in
                let lo = min (String.length content - 1) 12 in
                let pos = lo + Rng.int c_rng (String.length content - lo) in
                Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
                Bytes.to_string b
              end
            in
            Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc damaged);
            incr corrupted
      end)
    blobs;
  !corrupted

(* --- one seed ------------------------------------------------------- *)

let run_seed ?(serve_jobs = 3) ?(requests = 8) ~store_root ~programs seed =
  let rng = Rng.make seed in
  let plan = make_plan ~rng ~programs ~requests in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in

  (* Unperturbed baseline: the clean requests through a fresh serial
     service, no store — the answers every later run must reproduce. *)
  let baseline =
    let t = Service.create () in
    List.map
      (fun (key, line) ->
        match Service.handle t line with
        | resp, `Continue -> (
            match Json.parse resp with
            | Ok json -> (key, essence json)
            | Error _ -> (key, "unparseable"))
        | _, `Stop -> (key, "unexpected stop"))
      plan.clean
  in

  let store_dir = Filename.concat store_root (Printf.sprintf "seed-%d" seed) in
  rm_rf store_dir;

  (* Perturbed run: live serve loop, seeded worker exceptions and slow
     passes injected via the disturb hook, malformed lines interleaved. *)
  let disturb ~id =
    match id with
    | None -> ()
    | Some id -> (
        match Hashtbl.find_opt plan.disturbances (Json.to_string ~minify:true id) with
        | Some Raise -> failwith "chaos: injected worker exception"
        | Some (Slow dt) -> Unix.sleepf dt
        | Some Calm | None -> ())
  in
  let t = Service.create ~serve_jobs ~queue_depth:256 ~store_dir ~disturb () in
  let responses =
    match drive t plan.lines with
    | responses -> responses
    | exception exn ->
        fail "serve loop died: %s" (Printexc.to_string exn);
        []
  in
  let parsed =
    List.filter_map
      (fun l ->
        match Json.parse l with
        | Ok j -> Some j
        | Error _ ->
            fail "response is not JSON: %s" l;
            None)
      responses
  in

  (* Invariant 1: one response per submitted line — every admitted id
     (and every piece of garbage) answered exactly once. *)
  let expected = List.length plan.lines in
  if List.length responses <> expected then
    fail "expected %d response(s), got %d" expected (List.length responses);
  List.iter
    (fun (key, _) ->
      let n =
        List.length
          (List.filter (fun j -> member_key "id" j = Some key) parsed)
      in
      if n <> 1 then fail "id %s answered %d time(s)" key n)
    plan.clean;

  (* Invariant 2: seq gap-free. *)
  let seqs =
    List.sort compare
      (List.filter_map (fun j -> Option.bind (Json.member "seq" j) Json.int_opt) parsed)
  in
  if seqs <> List.init (List.length parsed) Fun.id then fail "seq has gaps: not 0..n-1";

  (* Invariant 3: loop alive at the end — the health probe (sent after
     all traffic) answered ok with every worker still accounted for. *)
  (match List.find_opt (fun j -> member_key "id" j = Some "\"probe\"") parsed with
  | None -> fail "health probe unanswered"
  | Some j -> (
      if Json.member "ok" j <> Some (Json.Bool true) then fail "health probe not ok";
      match Json.member "result" j with
      | Some result -> (
          match Option.bind (Json.member "workers_alive" result) Json.int_opt with
          | Some alive when alive >= serve_jobs -> ()
          | Some alive -> fail "only %d/%d workers alive" alive serve_jobs
          | None -> fail "health result has no workers_alive")
      | None -> fail "health probe has no result"));

  (* Every injected exception must have surfaced as SF0905, not been
     swallowed or crashed the loop. *)
  let sf0905 =
    List.length
      (List.filter
         (fun j ->
           match member_key "diagnostics" j with
           | Some d -> contains_substring ~needle:"SF0905" d
           | None -> false)
         parsed)
  in
  if sf0905 <> plan.n_raises then
    fail "expected %d SF0905 response(s), found %d" plan.n_raises sf0905;

  (* Invariant 4: damage the on-disk store, then a clean serial re-run
     over it must reproduce the baseline byte-for-byte — corrupt blobs
     are detected and re-executed, never replayed. *)
  let corrupted = corrupt_blobs ~rng store_dir in
  let rerun_service = Service.create ~store_dir () in
  List.iter
    (fun (key, line) ->
      match Service.handle rerun_service line with
      | exception exn -> fail "re-run of %s raised: %s" key (Printexc.to_string exn)
      | resp, `Continue -> (
          match Json.parse resp with
          | Ok json ->
              let e = essence json in
              let b = List.assoc key baseline in
              if not (String.equal e b) then
                fail "re-run of %s diverged from baseline after corruption" key
          | Error _ -> fail "re-run of %s: response is not JSON" key)
      | _, `Stop -> fail "re-run of %s stopped" key)
    plan.clean;
  rm_rf store_dir;

  {
    seed;
    requests;
    malformed = plan.n_malformed;
    raises = plan.n_raises;
    slows = plan.n_slows;
    corrupted_blobs = corrupted;
    failures = List.rev !failures;
  }

let campaign ?(seeds = List.init 25 (fun i -> i + 1)) ?serve_jobs ?requests ?store_root
    ~programs () =
  if programs = [] then invalid_arg "Chaos.campaign: no programs";
  let store_root =
    match store_root with
    | Some d -> d
    | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "sf-chaos-%d" (Unix.getpid ()))
  in
  let seed_reports =
    List.map (fun seed -> run_seed ?serve_jobs ?requests ~store_root ~programs seed) seeds
  in
  rm_rf store_root;
  {
    seeds = List.length seed_reports;
    failed = List.length (List.filter (fun r -> r.failures <> []) seed_reports);
    seed_reports;
  }

let pp_report fmt r =
  Format.fprintf fmt "chaos campaign: %d seed(s), %d failed@." r.seeds r.failed;
  List.iter
    (fun s ->
      Format.fprintf fmt
        "  seed %-4d %-4s %d req(s), %d malformed, %d raise(s), %d slow(s), %d blob(s) corrupted@."
        s.seed
        (if s.failures = [] then "ok" else "FAIL")
        s.requests s.malformed s.raises s.slows s.corrupted_blobs;
      List.iter (fun m -> Format.fprintf fmt "    - %s@." m) s.failures)
    r.seed_reports
