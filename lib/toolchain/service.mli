(** The [stencilflow serve] request loop — a concurrent scheduler over
    one shared, thread-safe pass cache.

    A service holds one {!Cache.t} (optionally disk-backed) and executes
    newline-delimited JSON requests against it, so a design-space
    exploration loop pays the full pipeline once and near-zero for every
    repeated or incremental request afterwards. {!serve_loop} runs three
    roles: a {e reader} (the calling domain) that parses and admits
    requests, a pool of [serve_jobs] worker domains that execute them
    concurrently, and a single {e writer} domain that serializes the
    responses — concurrent identical requests collapse onto one pass
    execution through the cache's single-flight protocol.

    {2 Protocol}

    One request per line, one response per line (minified JSON).
    Requests:

    {v
    {"id": <any>,              // optional, echoed back verbatim
     "verb": "analyze" | "simulate" | "codegen"
           | "cache-stats" | "evict" | "cancel" | "health" | "shutdown",
     "target": <id>,           // cancel only: the id to cancel
     "deadline_ms": int,       // per-request budget; overrides the
                               // --deadline-ms default, < 0 disables it
     "program": {...},         // inline program description, or
     "program_file": "path",   // a path to one (compile verbs only)
     "options": {              // all optional
       "width": int,           // vectorization width override
       "fuse": bool, "optimize": bool,
       "devices": int,         // force a contiguous partition
       "seed": int,            // simulation input seed (default 42)
       "validate": bool,       // validate sim against the reference
       "max_cycles": int,      // simulation cycle budget (SF0703)
       "backend": "opencl" | "vitis"}}
    v}

    Responses:

    {v
    {"id": ..., "seq": n, "verb": ..., "ok": bool,
     "result": <verb-specific payload>,
     "diagnostics": [...],     // SF-coded, same shape as --diag-json
     "passes": {"executed": n, "cached": n,
                "trace": [{"pass": name, "cached": bool}, ...]},
     "cache": {"hits": n, "misses": n, "joined": n},  // this request only
     "timing": {"seconds": s,          // admission to completion
                "queue_seconds": s,    // waiting for a free worker
                "exec_seconds": s,     // executing
                "worker": n}}          // 1..serve_jobs, 0 = reader
    v}

    {2 Ordering and [seq]}

    Responses are written as requests complete — out of order when
    [serve_jobs > 1]. Every response carries the monotone [seq] in which
    the writer emitted it plus the client's [id], so clients can
    correlate either way; with [ordered = true] (the [--ordered] flag)
    the writer buffers completions and emits responses in admission
    (request) order, making [seq] coincide with it.

    {2 Cancellation and overload}

    [{"verb": "cancel", "target": <id>}] flags the in-flight request
    whose [id] equals [target] (compared structurally); its pipeline
    stops at the next pass boundary and it answers [ok: false] with an
    [SF0902] diagnostic — partial results are never published to the
    cache. The cancel response reports whether the target was found
    still in flight.

    When [queue_depth] requests are already admitted and uncompleted,
    further pool verbs are rejected immediately with [ok: false] and an
    [SF0903] diagnostic. Control verbs ([cancel], [shutdown]) and
    malformed lines are answered by the reader directly and are never
    rejected for overload.

    Malformed lines produce an [ok: false] response with an [SF0201]
    diagnostic; unknown verbs and missing programs report [SF0203]. The
    loop never dies on a bad request — only on end of input or an
    explicit [shutdown] (which still drains every admitted request).

    {2 Robustness}

    A request whose deadline (its own [deadline_ms], else the server's
    [--deadline-ms] default) expires before a pass that would actually
    execute answers [ok: false] with [SF0904] — cached replays are free,
    and the passes completed before the deadline stay cached, so a retry
    resumes where the budget ran out. An exception escaping a request
    (or injected by the chaos hook, see {!Chaos}) answers [SF0905] with
    the backtrace attached as a note instead of killing the worker; the
    pool respawns any worker that does die. [{"verb": "health"}] is
    answered by the reader directly — even with the pool saturated —
    with uptime, in-flight count, worker liveness/crash counters and the
    cache's integrity counters ([store_corrupt], [takeovers]). A client
    that hangs up mid-stream (EPIPE) ends the session cleanly: the
    writer marks its sink dead and drains remaining completions without
    writing. *)

type t

val create :
  ?cache_capacity:int ->
  ?store_dir:string ->
  ?on_trace:(verb:string -> Pass_manager.trace -> unit) ->
  ?jobs:int ->
  ?serve_jobs:int ->
  ?queue_depth:int ->
  ?ordered:bool ->
  ?deadline_ms:int ->
  ?disturb:(id:Sf_support.Json.t option -> unit) ->
  unit ->
  t
(** A fresh service: an in-memory LRU of [cache_capacity] entries
    (default 128), backed by an on-disk {!Sf_support.Store} rooted at
    [store_dir] when given. [on_trace] observes every compile verb's
    pass trace (the CLI's [--trace-passes]) and must be thread-safe when
    [serve_jobs > 1]. [jobs] is the host-thread budget for each
    request's simulation ([0] = auto); when [serve_jobs > 1] every
    request gets a [jobs / serve_jobs] slice (at least 1) so concurrent
    simulations never oversubscribe the host. [serve_jobs] (default 1)
    sizes the worker pool, [queue_depth] (default 64) bounds admitted
    uncompleted requests, [ordered] (default false) restores FIFO
    response order. [deadline_ms] (default none; [<= 0] means none) is
    the default per-request budget, overridable per request. [disturb]
    is the chaos-injection hook: called with the request's [id] at the
    start of every pool execution; whatever it raises is crash-isolated
    into an [SF0905] response ({!Chaos} uses this to inject seeded
    worker exceptions and slow passes). *)

val cache : t -> Cache.t

val handle : t -> string -> string * [ `Continue | `Stop ]
(** Execute one request line synchronously in the calling domain and
    return the minified response line (without a [seq] field — sequence
    numbers exist only on the writer path), plus whether a serve loop
    should keep running ([`Stop] only after [shutdown]). Thread-safe:
    any number of domains may call [handle] on one service concurrently.
    Exposed for in-process tests and benchmarks. *)

val serve_loop : t -> in_channel -> out_channel -> unit
(** Read request lines until EOF or [shutdown], executing admitted
    requests on [serve_jobs] worker domains and writing (and flushing)
    one response line each from a single writer domain. Blank lines are
    ignored. Returns once every admitted request has been answered and
    the workers have been joined. *)
