(** The [stencilflow serve] request loop.

    A service holds one {!Cache.t} (optionally disk-backed) and executes
    newline-delimited JSON requests against it, so a design-space
    exploration loop pays the full pipeline once and near-zero for every
    repeated or incremental request afterwards.

    {2 Protocol}

    One request per line, one response per line (minified JSON).
    Requests:

    {v
    {"id": <any>,              // optional, echoed back verbatim
     "verb": "analyze" | "simulate" | "codegen"
           | "cache-stats" | "evict" | "shutdown",
     "program": {...},         // inline program description, or
     "program_file": "path",   // a path to one (compile verbs only)
     "options": {              // all optional
       "width": int,           // vectorization width override
       "fuse": bool, "optimize": bool,
       "devices": int,         // force a contiguous partition
       "seed": int,            // simulation input seed (default 42)
       "validate": bool,       // validate sim against the reference
       "max_cycles": int,      // simulation cycle budget (SF0703)
       "backend": "opencl" | "vitis"}}
    v}

    Responses:

    {v
    {"id": ..., "verb": ..., "ok": bool,
     "result": <verb-specific payload>,
     "diagnostics": [...],     // SF-coded, same shape as --diag-json
     "passes": {"executed": n, "cached": n,
                "trace": [{"pass": name, "cached": bool}, ...]},
     "cache": {"hits": n, "misses": n, "stale": n,
               "evictions": n, "entries": n},
     "timing": {"seconds": s}}
    v}

    Malformed lines produce an [ok: false] response with an [SF0201]
    diagnostic; unknown verbs and missing programs report [SF0203]. The
    loop never dies on a bad request — only on end of input or an
    explicit [shutdown]. *)

type t

val create :
  ?cache_capacity:int ->
  ?store_dir:string ->
  ?on_trace:(verb:string -> Pass_manager.trace -> unit) ->
  ?jobs:int ->
  unit ->
  t
(** A fresh service: an in-memory LRU of [cache_capacity] entries
    (default 128), backed by an on-disk {!Sf_support.Store} rooted at
    [store_dir] when given. [on_trace] observes every compile verb's
    pass trace (the CLI's [--trace-passes]); [jobs] is threaded into
    each request's simulation config as the host-thread budget
    ([0] = auto). *)

val cache : t -> Cache.t

val handle : t -> string -> string * [ `Continue | `Stop ]
(** Execute one request line and return the minified response line, plus
    whether the loop should keep running ([`Stop] only after
    [shutdown]). Exposed for in-process tests; {!serve_loop} is this in
    a loop. *)

val serve_loop : t -> in_channel -> out_channel -> unit
(** Read request lines until EOF or [shutdown], writing (and flushing)
    one response line each. Blank lines are ignored. *)
