module Json = Sf_support.Json
module Diag = Sf_support.Diag
module Store = Sf_support.Store
module Executor = Sf_support.Executor
module Engine = Sf_sim.Engine

let monotime = Sf_support.Util.monotime

type t = {
  cache : Cache.t;
  on_trace : (verb:string -> Pass_manager.trace -> unit) option;
  jobs : int;
  serve_jobs : int;
  queue_depth : int;
  ordered : bool;
  deadline_ms : int option;  (* server-wide default request budget *)
  disturb : (id:Json.t option -> unit) option;  (* chaos injection hook *)
  created_at : float;
  pool : Executor.t option Atomic.t;  (* live serve pool, for [health] *)
  cancels : (string, bool Atomic.t) Hashtbl.t;
  cancels_mu : Mutex.t;
}

let create ?(cache_capacity = 128) ?store_dir ?on_trace ?(jobs = 0) ?(serve_jobs = 1)
    ?(queue_depth = 64) ?(ordered = false) ?deadline_ms ?disturb () =
  let cache = Cache.create ~capacity:cache_capacity () in
  let cache =
    match store_dir with None -> cache | Some dir -> Cache.with_store cache (Store.open_ dir)
  in
  {
    cache;
    on_trace;
    jobs;
    serve_jobs = max 1 serve_jobs;
    queue_depth = max 1 queue_depth;
    ordered;
    deadline_ms = (match deadline_ms with Some ms when ms > 0 -> Some ms | _ -> None);
    disturb;
    created_at = monotime ();
    pool = Atomic.make None;
    cancels = Hashtbl.create 16;
    cancels_mu = Mutex.create ();
  }

let cache t = t.cache

(* Each request's simulation gets a slice of the host-thread budget: the
   pool's workers run [serve_jobs] simulations concurrently, so handing
   every one of them the full budget would oversubscribe the host by a
   factor of [serve_jobs]. *)
let sim_jobs t =
  let resolved = if t.jobs > 0 then t.jobs else Executor.default_jobs () in
  if t.serve_jobs > 1 then max 1 (resolved / t.serve_jobs) else resolved

(* Cancellation registry --------------------------------------------- *)

(* Requests are addressed by their client [id] (any JSON value, keyed by
   its minified rendering). A flag is registered at admission — before
   the request reaches a worker — so a [cancel] can hit a request that
   is still queued; the executing pipeline polls it at pass boundaries. *)

let cancel_key id = Json.to_string ~minify:true id

let register_cancel t id =
  let flag = Atomic.make false in
  let key = cancel_key id in
  Mutex.lock t.cancels_mu;
  Hashtbl.add t.cancels key flag;
  Mutex.unlock t.cancels_mu;
  (key, flag)

let unregister_cancel t key =
  Mutex.lock t.cancels_mu;
  Hashtbl.remove t.cancels key;
  Mutex.unlock t.cancels_mu

let request_cancel t id =
  Mutex.lock t.cancels_mu;
  let found =
    match Hashtbl.find_opt t.cancels (cancel_key id) with
    | Some flag ->
        Atomic.set flag true;
        true
    | None -> false
  in
  Mutex.unlock t.cancels_mu;
  found

(* Request decoding -------------------------------------------------- *)

type options = {
  width : int option;
  fuse : bool;
  optimize : bool;
  devices : int option;
  seed : int option;
  validate : bool;
  max_cycles : int option;
  backend : [ `Opencl | `Vitis ];
}

let default_options =
  {
    width = None;
    fuse = false;
    optimize = false;
    devices = None;
    seed = None;
    validate = true;
    max_cycles = None;
    backend = `Opencl;
  }

let decode_options json =
  match Json.member "options" json with
  | None -> Ok default_options
  | Some o ->
      let int k = Option.bind (Json.member k o) Json.int_opt in
      let bool ~default k =
        match Json.member k o with Some (Json.Bool b) -> b | _ -> default
      in
      let backend =
        match Option.bind (Json.member "backend" o) Json.string_opt with
        | None | Some "opencl" -> Ok `Opencl
        | Some "vitis" -> Ok `Vitis
        | Some other ->
            Error [ Diag.errorf ~code:Diag.Code.format "unknown backend %S" other ]
      in
      Result.map
        (fun backend ->
          {
            width = int "width";
            fuse = bool ~default:false "fuse";
            optimize = bool ~default:false "optimize";
            devices = int "devices";
            seed = int "seed";
            validate = bool ~default:true "validate";
            max_cycles = int "max_cycles";
            backend;
          })
        backend

(* The frontend of every compile verb: a load pass keyed on the program
   text (inline programs are re-serialized minified, so formatting
   differences do not defeat the cache), then the option-driven
   transforms in the same order as the CLI. *)
let frontend_passes json opts =
  let load =
    match (Json.member "program" json, Json.member "program_file" json) with
    | Some p, _ -> Ok (Passes.load_string (Json.to_string ~minify:true p))
    | None, Some f -> (
        match Json.string_opt f with
        | Some path -> Ok (Passes.load_file path)
        | None ->
            Error [ Diag.error ~code:Diag.Code.format "\"program_file\" must be a string" ])
    | None, None ->
        Error
          [
            Diag.error ~code:Diag.Code.format
              "request needs a \"program\" object or a \"program_file\" path";
          ]
  in
  Result.map
    (fun load ->
      [ load ]
      @ (match opts.width with Some w -> [ Passes.vectorize w ] | None -> [])
      @ (if opts.fuse then [ Passes.fuse () ] else [])
      @ if opts.optimize then [ Passes.optimize () ] else [])
    load

let verb_passes verb opts =
  match verb with
  | `Analyze -> [ Passes.delay_buffers ]
  | `Simulate ->
      [
        Passes.delay_buffers;
        (match opts.devices with
        | Some n -> Passes.partition_into n
        | None -> Passes.partition);
        Passes.performance_model;
        Passes.simulate ~validate:opts.validate ?seed:opts.seed ();
      ]
  | `Codegen -> Passes.codegen_pipeline ~backend:opts.backend

(* Request parsing --------------------------------------------------- *)

type body =
  | Compile of [ `Analyze | `Simulate | `Codegen ] * Json.t
  | Cache_stats
  | Evict
  | Cancel of Json.t option
  | Health
  | Shutdown
  | Invalid of Diag.t list

type request = {
  id : Json.t option;
  verb_name : string;
  body : body;
  deadline_ms : int option;  (* per-request override of the server default *)
}

let parse_request line =
  match Json.parse line with
  | Error e ->
      {
        id = None;
        verb_name = "error";
        body =
          Invalid
            [
              Diag.errorf ~code:Diag.Code.json_parse "malformed request: %s"
                (Json.error_to_string e);
            ];
        deadline_ms = None;
      }
  | Ok json -> (
      let id = Json.member "id" json in
      let deadline_ms = Option.bind (Json.member "deadline_ms" json) Json.int_opt in
      let req verb_name body = { id; verb_name; body; deadline_ms } in
      match Option.bind (Json.member "verb" json) Json.string_opt with
      | Some "analyze" -> req "analyze" (Compile (`Analyze, json))
      | Some "simulate" -> req "simulate" (Compile (`Simulate, json))
      | Some "codegen" -> req "codegen" (Compile (`Codegen, json))
      | Some "cache-stats" -> req "cache-stats" Cache_stats
      | Some "evict" -> req "evict" Evict
      | Some "cancel" -> req "cancel" (Cancel (Json.member "target" json))
      | Some "health" -> req "health" Health
      | Some "shutdown" -> req "shutdown" Shutdown
      | Some other ->
          req other (Invalid [ Diag.errorf ~code:Diag.Code.format "unknown verb %S" other ])
      | None ->
          req "error" (Invalid [ Diag.error ~code:Diag.Code.format "request has no \"verb\"" ]))

(* The absolute monotonic deadline of a request admitted at [t_admit]:
   the request's own [deadline_ms] when present (negative disables even
   the server default — an explicit opt-out), else the server-wide
   [--deadline-ms] default, else none. *)
let deadline_of (t : t) req ~t_admit =
  match req.deadline_ms with
  | Some ms when ms >= 0 -> Some (t_admit +. (float_of_int ms /. 1000.))
  | Some _ -> None
  | None -> (
      match t.deadline_ms with
      | Some ms -> Some (t_admit +. (float_of_int ms /. 1000.))
      | None -> None)

(* Response encoding ------------------------------------------------- *)

let diags_json ds = Json.List (List.map Diag.to_json ds)

let passes_json (trace : Pass_manager.trace) =
  Json.Obj
    [
      ("executed", Json.Int (Pass_manager.executed_passes trace));
      ("cached", Json.Int (Pass_manager.cached_passes trace));
      ( "trace",
        Json.List
          (List.map
             (fun (t : Pass_manager.timing) ->
               Json.Obj
                 [
                   ("pass", Json.String t.Pass_manager.pass);
                   ("cached", Json.Bool t.Pass_manager.cached);
                 ])
             trace) );
    ]

let stats_json (s : Cache.stats) =
  Json.Obj
    [
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses);
      ("stale", Json.Int s.Cache.stale);
      ("evictions", Json.Int s.Cache.evictions);
      ("joined", Json.Int s.Cache.joined);
      ("store_corrupt", Json.Int s.Cache.store_corrupt);
      ("takeovers", Json.Int s.Cache.takeovers);
      ("entries", Json.Int s.Cache.entries);
    ]

(* Load-balancer probe payload. [in_flight] is supplied by the caller
   (the serve reader knows its admission counter; the synchronous
   [handle] path is always 0); worker liveness comes from the live pool
   when one is attached. *)
let health_json t ~in_flight =
  let stats = Cache.stats t.cache in
  let workers_alive, worker_crashes =
    match Atomic.get t.pool with
    | Some pool -> (Executor.alive pool, Executor.crashes pool)
    | None -> (0, 0)
  in
  Json.Obj
    [
      ("uptime_seconds", Json.Float (monotime () -. t.created_at));
      ("in_flight", Json.Int in_flight);
      ("serve_jobs", Json.Int t.serve_jobs);
      ("workers_alive", Json.Int workers_alive);
      ("worker_crashes", Json.Int worker_crashes);
      ("store_corrupt", Json.Int stats.Cache.store_corrupt);
      ("takeovers", Json.Int stats.Cache.takeovers);
      ("cache_entries", Json.Int stats.Cache.entries);
    ]

(* What this request did to the cache, derived from its own pass trace —
   unlike the global counters these deltas are race-free, so responses
   stay deterministic under concurrent execution. The global totals are
   only reported by the explicit [cache-stats] verb. *)
let trace_cache_json (trace : Pass_manager.trace) =
  let count p = List.length (List.filter p trace) in
  Json.Obj
    [
      ( "hits",
        Json.Int (count (fun t -> t.Pass_manager.cached && not t.Pass_manager.joined)) );
      ("misses", Json.Int (count (fun t -> t.Pass_manager.missed)));
      ("joined", Json.Int (count (fun t -> t.Pass_manager.joined)));
    ]

let analyze_result (ctx : Ctx.t) =
  match (ctx.Ctx.program, ctx.Ctx.analysis) with
  | Some p, Some a ->
      Json.Obj
        [
          ("program", Json.String p.Sf_ir.Program.name);
          ("latency_cycles", Json.Int a.Sf_analysis.Delay_buffer.latency_cycles);
          ( "delay_buffer_words",
            Json.Int (Sf_analysis.Delay_buffer.total_delay_buffer_words a) );
          ("expected_cycles", Json.Int (Sf_analysis.Runtime_model.expected_cycles p));
        ]
  | _ -> Json.Null

let simulate_result (ctx : Ctx.t) =
  let base = match analyze_result ctx with Json.Obj fields -> fields | _ -> [] in
  let devices =
    match ctx.Ctx.partition with
    | Some pt -> [ ("devices", Json.Int pt.Sf_mapping.Partition.num_devices) ]
    | None -> []
  in
  let performance =
    match ctx.Ctx.performance_model with
    | Some ops -> [ ("modeled_ops_per_s", Json.Float ops) ]
    | None -> []
  in
  let simulation =
    match ctx.Ctx.simulation with
    | Some (Ok (s : Engine.stats)) ->
        [
          ( "simulation",
            Json.Obj
              [
                ("cycles", Json.Int s.Engine.cycles);
                ("predicted_cycles", Json.Int s.Engine.predicted_cycles);
                ("bytes_read", Json.Int s.Engine.bytes_read);
                ("bytes_written", Json.Int s.Engine.bytes_written);
                ("network_bytes", Json.Int s.Engine.network_bytes);
              ] );
        ]
    | Some (Error d) -> [ ("simulation", Json.Obj [ ("failed", Diag.to_json d) ]) ]
    | None -> []
  in
  Json.Obj (base @ devices @ performance @ simulation)

let codegen_result (ctx : Ctx.t) =
  let files =
    List.map
      (fun (name, source) ->
        Json.Obj
          [ ("filename", Json.String name); ("bytes", Json.Int (String.length source)) ])
      (List.filter
         (fun (name, _) ->
           Filename.check_suffix name ".cl"
           || Filename.check_suffix name ".c"
           || Filename.check_suffix name ".cpp")
         (Ctx.artifact_files ctx))
  in
  let code_bytes =
    match List.assoc_opt "code-bytes" (Ctx.counters ctx) with Some n -> n | None -> 0
  in
  Json.Obj [ ("files", Json.List files); ("code_bytes", Json.Int code_bytes) ]

(* Request execution ------------------------------------------------- *)

type reply = {
  ok : bool;
  result : Json.t;
  diags : Diag.t list;
  trace : Pass_manager.trace;
  control : [ `Continue | `Stop ];
}

let reply ?(ok = true) ?(result = Json.Null) ?(diags = []) ?(trace = [])
    ?(control = `Continue) () =
  { ok; result; diags; trace; control }

type timing = { seconds : float; queue_seconds : float; exec_seconds : float; worker : int }

let render ?seq ~id ~verb ~timing reply =
  Json.to_string ~minify:true
    (Json.Obj
       ((match id with Some id -> [ ("id", id) ] | None -> [])
       @ (match seq with Some n -> [ ("seq", Json.Int n) ] | None -> [])
       @ [
           ("verb", Json.String verb);
           ("ok", Json.Bool reply.ok);
           ("result", reply.result);
           ("diagnostics", diags_json reply.diags);
           ("passes", passes_json reply.trace);
           ("cache", trace_cache_json reply.trace);
           ( "timing",
             Json.Obj
               [
                 ("seconds", Json.Float timing.seconds);
                 ("queue_seconds", Json.Float timing.queue_seconds);
                 ("exec_seconds", Json.Float timing.exec_seconds);
                 ("worker", Json.Int timing.worker);
               ] );
         ]))

let compile_verb t ~should_stop ?deadline ~verb ~name json =
  let outcome =
    let ( let* ) = Result.bind in
    let* opts = decode_options json in
    let* frontend = frontend_passes json opts in
    Ok (opts, frontend)
  in
  match outcome with
  | Error ds -> reply ~ok:false ~diags:ds ()
  | Ok (opts, frontend) -> (
      let sim_config =
        Engine.Config.make
          ~safety:(Engine.Config.safety ?max_cycles:opts.max_cycles ())
          ~parallelism:(Engine.Config.parallelism ~host_jobs:(sim_jobs t) ())
          ()
      in
      let ctx = Ctx.create ~sim_config () in
      let passes = frontend @ verb_passes verb opts in
      let emit_trace trace =
        match t.on_trace with Some f -> f ~verb:name trace | None -> ()
      in
      match Pass_manager.run ~cache:t.cache ~should_stop ?deadline passes ctx with
      | Ok (ctx, trace) ->
          emit_trace trace;
          let result =
            match verb with
            | `Analyze -> analyze_result ctx
            | `Simulate -> simulate_result ctx
            | `Codegen -> codegen_result ctx
          in
          let ok = not (Diag.has_errors ctx.Ctx.diags) in
          reply ~ok ~result ~diags:ctx.Ctx.diags ~trace ()
      | Error (ds, trace) ->
          emit_trace trace;
          reply ~ok:false ~diags:ds ~trace ())

let cancel_reply t target =
  match target with
  | None ->
      reply ~ok:false
        ~diags:[ Diag.error ~code:Diag.Code.format "cancel needs a \"target\" id" ]
        ()
  | Some target ->
      let found = request_cancel t target in
      reply ~result:(Json.Obj [ ("target", target); ("found", Json.Bool found) ]) ()

let run_request t ~should_stop ?deadline ?(in_flight = 0) req =
  match req.body with
  | Compile (verb, json) -> compile_verb t ~should_stop ?deadline ~verb ~name:req.verb_name json
  | Cache_stats -> reply ~result:(stats_json (Cache.stats t.cache)) ()
  | Evict ->
      let dropped = (Cache.stats t.cache).Cache.entries in
      Cache.clear t.cache;
      reply ~result:(Json.Obj [ ("entries_dropped", Json.Int dropped) ]) ()
  | Cancel target -> cancel_reply t target
  | Health -> reply ~result:(health_json t ~in_flight) ()
  | Shutdown -> reply ~control:`Stop ()
  | Invalid ds -> reply ~ok:false ~diags:ds ()

let handle t line =
  let t0 = monotime () in
  let req = parse_request line in
  let registration =
    match (req.id, req.body) with
    | Some id, Compile _ -> Some (register_cancel t id)
    | _ -> None
  in
  let should_stop =
    match registration with
    | Some (_, flag) -> fun () -> Atomic.get flag
    | None -> fun () -> false
  in
  let rep = run_request t ~should_stop ?deadline:(deadline_of t req ~t_admit:t0) req in
  (match registration with Some (key, _) -> unregister_cancel t key | None -> ());
  let dt = monotime () -. t0 in
  let timing =
    { seconds = dt; queue_seconds = 0.; exec_seconds = dt; worker = Executor.worker_index () }
  in
  (render ~id:req.id ~verb:req.verb_name ~timing rep, rep.control)

(* The concurrent serve loop ----------------------------------------- *)

(* Three roles share the session:

   - the {e reader} (the calling domain) parses each line, admits it —
     or rejects it with [SF0903] when [queue_depth] requests are already
     in flight — and submits admitted work to the pool. Cheap control
     verbs ([cancel], [shutdown], malformed lines) are answered by the
     reader directly so a busy pool cannot delay them (a [cancel] that
     queued behind its target would be useless);
   - the {e pool} ([serve_jobs] dedicated workers) executes requests;
   - the {e writer} (one domain) is the only role touching [oc]: it
     serializes completed responses, assigns the monotone [seq] at write
     time, and in [ordered] mode buffers out-of-order completions until
     every earlier admission has been written.

   [busy] counts admitted-but-uncompleted pool requests: the admission
   bound, and the writer's liveness criterion (it exits once the reader
   closed, [busy] is zero and the queue is drained). *)

type sched = {
  mu : Mutex.t;
  cv : Condition.t;
  out : (int * (seq:int -> string)) Queue.t;  (* admission index, renderer *)
  mutable busy : int;
  mutable closed : bool;
}

let enqueue sched admitted render =
  Mutex.lock sched.mu;
  Queue.push (admitted, render) sched.out;
  Condition.broadcast sched.cv;
  Mutex.unlock sched.mu

let complete sched admitted render =
  Mutex.lock sched.mu;
  sched.busy <- sched.busy - 1;
  Queue.push (admitted, render) sched.out;
  Condition.broadcast sched.cv;
  Mutex.unlock sched.mu

let writer_loop ~ordered sched oc =
  let next_seq = ref 0 in
  let buffer = Hashtbl.create 16 in
  let next_admitted = ref 0 in
  (* A client hanging up mid-stream surfaces here as [Sys_error]
     (EPIPE/closed fd). That is a normal way for a session to end, not a
     crash: mark the sink dead and keep draining the queue silently so
     workers' [complete] calls never block and the loop unwinds
     cleanly. *)
  let dead = ref false in
  let emit render =
    let seq = !next_seq in
    incr next_seq;
    if not !dead then
      try
        Out_channel.output_string oc (render ~seq);
        Out_channel.output_char oc '\n';
        Out_channel.flush oc
      with Sys_error _ -> dead := true
  in
  let rec flush_ordered () =
    match Hashtbl.find_opt buffer !next_admitted with
    | Some render ->
        Hashtbl.remove buffer !next_admitted;
        incr next_admitted;
        emit render;
        flush_ordered ()
    | None -> ()
  in
  let rec loop () =
    Mutex.lock sched.mu;
    while Queue.is_empty sched.out && not (sched.closed && sched.busy = 0) do
      Condition.wait sched.cv sched.mu
    done;
    if Queue.is_empty sched.out then Mutex.unlock sched.mu
    else begin
      let admitted, render = Queue.pop sched.out in
      Mutex.unlock sched.mu;
      if ordered then begin
        Hashtbl.replace buffer admitted render;
        flush_ordered ()
      end
      else emit render;
      loop ()
    end
  in
  loop ()

let serve_loop t ic oc =
  let pool = Executor.create ~dedicated:true ~jobs:t.serve_jobs () in
  Atomic.set t.pool (Some pool);
  let sched =
    { mu = Mutex.create (); cv = Condition.create (); out = Queue.create (); busy = 0;
      closed = false }
  in
  let writer = Domain.spawn (fun () -> writer_loop ~ordered:t.ordered sched oc) in
  let admitted = ref 0 in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
        let t_admit = monotime () in
        let req = parse_request line in
        let n = !admitted in
        incr admitted;
        let quick rep =
          let dt = monotime () -. t_admit in
          let timing = { seconds = dt; queue_seconds = 0.; exec_seconds = dt; worker = 0 } in
          enqueue sched n (fun ~seq -> render ~seq ~id:req.id ~verb:req.verb_name ~timing rep)
        in
        match req.body with
        | Shutdown ->
            (* Answered by the reader; the writer still drains every
               admitted request before the session ends. *)
            quick (reply ~control:`Stop ())
        | Cancel target ->
            quick (cancel_reply t target);
            loop ()
        | Health ->
            (* Answered by the reader so a saturated pool cannot starve
               a load-balancer probe — that is the whole point of it. *)
            Mutex.lock sched.mu;
            let in_flight = sched.busy in
            Mutex.unlock sched.mu;
            quick (reply ~result:(health_json t ~in_flight) ());
            loop ()
        | Invalid ds ->
            quick (reply ~ok:false ~diags:ds ());
            loop ()
        | Compile _ | Cache_stats | Evict ->
            Mutex.lock sched.mu;
            let full = sched.busy >= t.queue_depth in
            if not full then sched.busy <- sched.busy + 1;
            Mutex.unlock sched.mu;
            if full then
              quick
                (reply ~ok:false
                   ~diags:
                     [
                       Diag.errorf ~code:Diag.Code.overload
                         "server overloaded: %d request(s) already in flight (queue depth %d)"
                         t.queue_depth t.queue_depth;
                     ]
                   ())
            else begin
              let registration =
                match (req.id, req.body) with
                | Some id, Compile _ -> Some (register_cancel t id)
                | _ -> None
              in
              Executor.submit pool (fun () ->
                  let t_start = monotime () in
                  let should_stop =
                    match registration with
                    | Some (_, flag) -> fun () -> Atomic.get flag
                    | None -> fun () -> false
                  in
                  let rep =
                    (* Crash isolation: whatever escapes the request —
                       including a chaos [disturb] injection — becomes
                       an SF0905 response with the backtrace attached,
                       never a dead worker or a dropped reply. *)
                    try
                      (match t.disturb with Some f -> f ~id:req.id | None -> ());
                      run_request t ~should_stop
                        ?deadline:(deadline_of t req ~t_admit)
                        req
                    with exn ->
                      let bt = Printexc.get_backtrace () in
                      let notes = if bt = "" then [] else [ "backtrace: " ^ bt ] in
                      reply ~ok:false
                        ~diags:
                          [
                            Diag.errorf ~notes ~code:Diag.Code.serve_internal
                              "request raised: %s" (Printexc.to_string exn);
                          ]
                        ()
                  in
                  (match registration with
                  | Some (key, _) -> unregister_cancel t key
                  | None -> ());
                  let t_end = monotime () in
                  let timing =
                    {
                      seconds = t_end -. t_admit;
                      queue_seconds = t_start -. t_admit;
                      exec_seconds = t_end -. t_start;
                      worker = Executor.worker_index ();
                    }
                  in
                  complete sched n (fun ~seq ->
                      render ~seq ~id:req.id ~verb:req.verb_name ~timing rep))
            end;
            loop ())
  in
  loop ();
  Mutex.lock sched.mu;
  sched.closed <- true;
  Condition.broadcast sched.cv;
  Mutex.unlock sched.mu;
  Domain.join writer;
  Executor.shutdown pool
