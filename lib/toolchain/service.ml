module Json = Sf_support.Json
module Diag = Sf_support.Diag
module Store = Sf_support.Store
module Engine = Sf_sim.Engine

type t = {
  cache : Cache.t;
  on_trace : (verb:string -> Pass_manager.trace -> unit) option;
  jobs : int;
}

let create ?(cache_capacity = 128) ?store_dir ?on_trace ?(jobs = 0) () =
  let cache = Cache.create ~capacity:cache_capacity () in
  let cache =
    match store_dir with None -> cache | Some dir -> Cache.with_store cache (Store.open_ dir)
  in
  { cache; on_trace; jobs }

let cache t = t.cache

(* Request decoding -------------------------------------------------- *)

type options = {
  width : int option;
  fuse : bool;
  optimize : bool;
  devices : int option;
  seed : int option;
  validate : bool;
  max_cycles : int option;
  backend : [ `Opencl | `Vitis ];
}

let default_options =
  {
    width = None;
    fuse = false;
    optimize = false;
    devices = None;
    seed = None;
    validate = true;
    max_cycles = None;
    backend = `Opencl;
  }

let decode_options json =
  match Json.member "options" json with
  | None -> Ok default_options
  | Some o ->
      let int k = Option.bind (Json.member k o) Json.int_opt in
      let bool ~default k =
        match Json.member k o with Some (Json.Bool b) -> b | _ -> default
      in
      let backend =
        match Option.bind (Json.member "backend" o) Json.string_opt with
        | None | Some "opencl" -> Ok `Opencl
        | Some "vitis" -> Ok `Vitis
        | Some other ->
            Error [ Diag.errorf ~code:Diag.Code.format "unknown backend %S" other ]
      in
      Result.map
        (fun backend ->
          {
            width = int "width";
            fuse = bool ~default:false "fuse";
            optimize = bool ~default:false "optimize";
            devices = int "devices";
            seed = int "seed";
            validate = bool ~default:true "validate";
            max_cycles = int "max_cycles";
            backend;
          })
        backend

(* The frontend of every compile verb: a load pass keyed on the program
   text (inline programs are re-serialized minified, so formatting
   differences do not defeat the cache), then the option-driven
   transforms in the same order as the CLI. *)
let frontend_passes json opts =
  let load =
    match (Json.member "program" json, Json.member "program_file" json) with
    | Some p, _ -> Ok (Passes.load_string (Json.to_string ~minify:true p))
    | None, Some f -> (
        match Json.string_opt f with
        | Some path -> Ok (Passes.load_file path)
        | None ->
            Error [ Diag.error ~code:Diag.Code.format "\"program_file\" must be a string" ])
    | None, None ->
        Error
          [
            Diag.error ~code:Diag.Code.format
              "request needs a \"program\" object or a \"program_file\" path";
          ]
  in
  Result.map
    (fun load ->
      [ load ]
      @ (match opts.width with Some w -> [ Passes.vectorize w ] | None -> [])
      @ (if opts.fuse then [ Passes.fuse () ] else [])
      @ if opts.optimize then [ Passes.optimize () ] else [])
    load

let verb_passes verb opts =
  match verb with
  | `Analyze -> [ Passes.delay_buffers ]
  | `Simulate ->
      [
        Passes.delay_buffers;
        (match opts.devices with
        | Some n -> Passes.partition_into n
        | None -> Passes.partition);
        Passes.performance_model;
        Passes.simulate ~validate:opts.validate ?seed:opts.seed ();
      ]
  | `Codegen -> Passes.codegen_pipeline ~backend:opts.backend

(* Response encoding ------------------------------------------------- *)

let diags_json ds = Json.List (List.map Diag.to_json ds)

let passes_json (trace : Pass_manager.trace) =
  Json.Obj
    [
      ("executed", Json.Int (Pass_manager.executed_passes trace));
      ("cached", Json.Int (Pass_manager.cached_passes trace));
      ( "trace",
        Json.List
          (List.map
             (fun (t : Pass_manager.timing) ->
               Json.Obj
                 [
                   ("pass", Json.String t.Pass_manager.pass);
                   ("cached", Json.Bool t.Pass_manager.cached);
                 ])
             trace) );
    ]

let stats_json (s : Cache.stats) =
  Json.Obj
    [
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses);
      ("stale", Json.Int s.Cache.stale);
      ("evictions", Json.Int s.Cache.evictions);
      ("entries", Json.Int s.Cache.entries);
    ]

let analyze_result (ctx : Ctx.t) =
  match (ctx.Ctx.program, ctx.Ctx.analysis) with
  | Some p, Some a ->
      Json.Obj
        [
          ("program", Json.String p.Sf_ir.Program.name);
          ("latency_cycles", Json.Int a.Sf_analysis.Delay_buffer.latency_cycles);
          ( "delay_buffer_words",
            Json.Int (Sf_analysis.Delay_buffer.total_delay_buffer_words a) );
          ("expected_cycles", Json.Int (Sf_analysis.Runtime_model.expected_cycles p));
        ]
  | _ -> Json.Null

let simulate_result (ctx : Ctx.t) =
  let base = match analyze_result ctx with Json.Obj fields -> fields | _ -> [] in
  let devices =
    match ctx.Ctx.partition with
    | Some pt -> [ ("devices", Json.Int pt.Sf_mapping.Partition.num_devices) ]
    | None -> []
  in
  let performance =
    match ctx.Ctx.performance_model with
    | Some ops -> [ ("modeled_ops_per_s", Json.Float ops) ]
    | None -> []
  in
  let simulation =
    match ctx.Ctx.simulation with
    | Some (Ok (s : Engine.stats)) ->
        [
          ( "simulation",
            Json.Obj
              [
                ("cycles", Json.Int s.Engine.cycles);
                ("predicted_cycles", Json.Int s.Engine.predicted_cycles);
                ("bytes_read", Json.Int s.Engine.bytes_read);
                ("bytes_written", Json.Int s.Engine.bytes_written);
                ("network_bytes", Json.Int s.Engine.network_bytes);
              ] );
        ]
    | Some (Error d) -> [ ("simulation", Json.Obj [ ("failed", Diag.to_json d) ]) ]
    | None -> []
  in
  Json.Obj (base @ devices @ performance @ simulation)

let codegen_result (ctx : Ctx.t) =
  let files =
    List.map
      (fun (name, source) ->
        Json.Obj
          [ ("filename", Json.String name); ("bytes", Json.Int (String.length source)) ])
      (List.filter
         (fun (name, _) ->
           Filename.check_suffix name ".cl"
           || Filename.check_suffix name ".c"
           || Filename.check_suffix name ".cpp")
         (Ctx.artifact_files ctx))
  in
  let code_bytes =
    match List.assoc_opt "code-bytes" (Ctx.counters ctx) with Some n -> n | None -> 0
  in
  Json.Obj [ ("files", Json.List files); ("code_bytes", Json.Int code_bytes) ]

(* Request execution ------------------------------------------------- *)

let response ?id ~verb ~ok ?(result = Json.Null) ?(diags = []) ?(trace = []) cache seconds =
  Json.to_string ~minify:true
    (Json.Obj
       ((match id with Some id -> [ ("id", id) ] | None -> [])
       @ [
           ("verb", Json.String verb);
           ("ok", Json.Bool ok);
           ("result", result);
           ("diagnostics", diags_json diags);
           ("passes", passes_json trace);
           ("cache", stats_json (Cache.stats cache));
           ("timing", Json.Obj [ ("seconds", Json.Float seconds) ]);
         ]))

let compile_verb t ?id ~verb ~name json t0 =
  let outcome =
    let ( let* ) = Result.bind in
    let* opts = decode_options json in
    let* frontend = frontend_passes json opts in
    Ok (opts, frontend)
  in
  match outcome with
  | Error ds ->
      response ?id ~verb:name ~ok:false ~diags:ds t.cache (Unix.gettimeofday () -. t0)
  | Ok (opts, frontend) -> (
      let sim_config =
        Engine.Config.make
          ~safety:(Engine.Config.safety ?max_cycles:opts.max_cycles ())
          ~parallelism:(Engine.Config.parallelism ~host_jobs:t.jobs ())
          ()
      in
      let ctx = Ctx.create ~sim_config () in
      let passes = frontend @ verb_passes verb opts in
      let emit_trace trace =
        match t.on_trace with Some f -> f ~verb:name trace | None -> ()
      in
      match Pass_manager.run ~cache:t.cache passes ctx with
      | Ok (ctx, trace) ->
          emit_trace trace;
          let result =
            match verb with
            | `Analyze -> analyze_result ctx
            | `Simulate -> simulate_result ctx
            | `Codegen -> codegen_result ctx
          in
          let ok = not (Diag.has_errors ctx.Ctx.diags) in
          response ?id ~verb:name ~ok ~result ~diags:ctx.Ctx.diags ~trace t.cache
            (Unix.gettimeofday () -. t0)
      | Error (ds, trace) ->
          emit_trace trace;
          response ?id ~verb:name ~ok:false ~diags:ds ~trace t.cache
            (Unix.gettimeofday () -. t0))

let handle t line =
  let t0 = Unix.gettimeofday () in
  match Json.parse line with
  | Error e ->
      ( response ~verb:"error" ~ok:false
          ~diags:
            [
              Diag.errorf ~code:Diag.Code.json_parse "malformed request: %s"
                (Json.error_to_string e);
            ]
          t.cache
          (Unix.gettimeofday () -. t0),
        `Continue )
  | Ok json -> (
      let id = Json.member "id" json in
      let verb = Option.bind (Json.member "verb" json) Json.string_opt in
      match verb with
      | Some "analyze" -> (compile_verb t ?id ~verb:`Analyze ~name:"analyze" json t0, `Continue)
      | Some "simulate" ->
          (compile_verb t ?id ~verb:`Simulate ~name:"simulate" json t0, `Continue)
      | Some "codegen" -> (compile_verb t ?id ~verb:`Codegen ~name:"codegen" json t0, `Continue)
      | Some "cache-stats" ->
          ( response ?id ~verb:"cache-stats" ~ok:true
              ~result:(stats_json (Cache.stats t.cache))
              t.cache
              (Unix.gettimeofday () -. t0),
            `Continue )
      | Some "evict" ->
          let dropped = (Cache.stats t.cache).Cache.entries in
          Cache.clear t.cache;
          ( response ?id ~verb:"evict" ~ok:true
              ~result:(Json.Obj [ ("entries_dropped", Json.Int dropped) ])
              t.cache
              (Unix.gettimeofday () -. t0),
            `Continue )
      | Some "shutdown" ->
          (response ?id ~verb:"shutdown" ~ok:true t.cache (Unix.gettimeofday () -. t0), `Stop)
      | Some other ->
          ( response ?id ~verb:other ~ok:false
              ~diags:[ Diag.errorf ~code:Diag.Code.format "unknown verb %S" other ]
              t.cache
              (Unix.gettimeofday () -. t0),
            `Continue )
      | None ->
          ( response ?id ~verb:"error" ~ok:false
              ~diags:[ Diag.error ~code:Diag.Code.format "request has no \"verb\"" ]
              t.cache
              (Unix.gettimeofday () -. t0),
            `Continue ))

let serve_loop t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        let resp, continue = handle t line in
        Out_channel.output_string oc resp;
        Out_channel.output_char oc '\n';
        Out_channel.flush oc;
        (match continue with `Continue -> loop () | `Stop -> ())
  in
  loop ()
