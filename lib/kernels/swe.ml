open Sf_ir
module E = Builder.E

let feedback = [ ("h_out", "h"); ("hu_out", "hu"); ("hv_out", "hv") ]

(* Momentum flux with a dry-cell guard: hu^2/h + g h^2/2, zeroed where
   the water column is (numerically) dry. *)
let momentum_flux ~num ~h =
  E.(
    sel
      (acc h [ 0; 0 ] >% c 1e-6)
      ((acc num [ 0; 0 ] *% acc num [ 0; 0 ] /% acc h [ 0; 0 ])
      +% (c 0.5 *% sc "g" *% (acc h [ 0; 0 ] *% acc h [ 0; 0 ])))
      (c 0.))

let average field =
  E.(
    c 0.25
    *% (acc field [ 0; -1 ] +% acc field [ 0; 1 ] +% acc field [ -1; 0 ] +% acc field [ 1; 0 ]))

let program ?(shape = [ 64; 64 ]) ?(vector_width = 1) () =
  let b = Builder.create ~vector_width ~name:"shallow_water" ~shape () in
  List.iter (fun f -> Builder.input b f) [ "h"; "hu"; "hv" ];
  List.iter (fun f -> Builder.input b ~axes:[] f) [ "g"; "dtdx"; "dtdy" ];
  let copy_bc fields = List.map (fun f -> (f, Boundary.Copy)) fields in
  (* Flux components as separate stencils: both momenta read them, and
     they read all three state fields. *)
  Builder.stencil b ~boundary:(copy_bc [ "hu"; "h" ]) "fx" (momentum_flux ~num:"hu" ~h:"h");
  Builder.stencil b ~boundary:(copy_bc [ "hv"; "h" ]) "fy" (momentum_flux ~num:"hv" ~h:"h");
  Builder.stencil b
    ~boundary:(copy_bc [ "h"; "hu"; "hv" ])
    ~lets:
      [
        ("dflux_x", E.(acc "hu" [ 0; 1 ] -% acc "hu" [ 0; -1 ]));
        ("dflux_y", E.(acc "hv" [ 1; 0 ] -% acc "hv" [ -1; 0 ]));
      ]
    "h_out"
    E.(average "h" -% (c 0.5 *% sc "dtdx" *% var "dflux_x") -% (c 0.5 *% sc "dtdy" *% var "dflux_y"));
  Builder.stencil b
    ~boundary:(copy_bc [ "hu"; "h"; "hv"; "fx" ])
    ~lets:
      [
        ("dpress", E.(acc "fx" [ 0; 1 ] -% acc "fx" [ 0; -1 ]));
        ( "dadv",
          E.(
            (acc "hu" [ 1; 0 ] *% acc "hv" [ 1; 0 ] /% max_ (acc "h" [ 1; 0 ]) (c 1e-6))
            -% (acc "hu" [ -1; 0 ] *% acc "hv" [ -1; 0 ] /% max_ (acc "h" [ -1; 0 ]) (c 1e-6))) );
      ]
    "hu_out"
    E.(average "hu" -% (c 0.5 *% sc "dtdx" *% var "dpress") -% (c 0.5 *% sc "dtdy" *% var "dadv"));
  Builder.stencil b
    ~boundary:(copy_bc [ "hv"; "h"; "hu"; "fy" ])
    ~lets:
      [
        ("dpress", E.(acc "fy" [ 1; 0 ] -% acc "fy" [ -1; 0 ]));
        ( "dadv",
          E.(
            (acc "hu" [ 0; 1 ] *% acc "hv" [ 0; 1 ] /% max_ (acc "h" [ 0; 1 ]) (c 1e-6))
            -% (acc "hu" [ 0; -1 ] *% acc "hv" [ 0; -1 ] /% max_ (acc "h" [ 0; -1 ]) (c 1e-6))) );
      ]
    "hv_out"
    E.(average "hv" -% (c 0.5 *% sc "dtdy" *% var "dpress") -% (c 0.5 *% sc "dtdx" *% var "dadv"));
  List.iter (Builder.output b) [ "h_out"; "hu_out"; "hv_out" ];
  Builder.finish b

let stable_inputs ?(seed = 7) (p : Program.t) =
  let module Tensor = Sf_reference.Tensor in
  let shape = p.Program.shape in
  let j_ext = List.nth shape 0 and i_ext = List.nth shape 1 in
  let state = Random.State.make [| seed |] in
  let hump idx =
    match idx with
    | [ j; i ] ->
        let dj = float_of_int (j - (j_ext / 2)) /. float_of_int j_ext in
        let di = float_of_int (i - (i_ext / 2)) /. float_of_int i_ext in
        1. +. (0.1 *. Float.exp (-40. *. ((dj *. dj) +. (di *. di))))
        +. (0.001 *. (Random.State.float state 2. -. 1.))
    | _ -> 1.
  in
  [
    ("h", Tensor.of_fn shape hump);
    ("hu", Tensor.create shape);
    ("hv", Tensor.create shape);
    ("g", Tensor.of_array [ 1 ] [| 9.81 |]);
    ("dtdx", Tensor.of_array [ 1 ] [| 0.01 |]);
    ("dtdy", Tensor.of_array [ 1 ] [| 0.01 |]);
  ]
