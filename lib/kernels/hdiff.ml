open Sf_ir
module E = Builder.E

let meteoswiss_shape = [ 80; 128; 128 ]

(* Per-field 5-point laplacian with a latitude-dependent correction:
   lap = (q_west + q_east - 2q) + crlat0(j) * (q_south + q_north - 2q);
   the doubled centre is strength-reduced to an addition, as synthesis
   does, keeping the operation mix adds-heavy like the paper's (87/41). *)
let laplacian field =
  let centre2 = E.(acc field [ 0; 0; 0 ] +% acc field [ 0; 0; 0 ]) in
  E.(
    acc field [ 0; 0; -1 ] +% acc field [ 0; 0; 1 ] -% centre2
    +% (acc "crlat0" [ 0 ] *% (acc field [ 0; -1; 0 ] +% acc field [ 0; 1; 0 ] -% centre2)))

(* Monotonic flux limiter (i direction): the raw laplacian difference is
   suppressed when it transports against the gradient, then capped by the
   latitude-dependent threshold — both data-dependent branches. *)
let flux_i ~lap ~field =
  let raw = E.(acc lap [ 0; 0; 1 ] -% acc lap [ 0; 0; 0 ]) in
  let grad = E.(acc field [ 0; 0; 1 ] -% acc field [ 0; 0; 0 ]) in
  E.(
    sel
      (var "raw" *% var "grad" >% c 0.)
      (c 0.)
      (sel (abs_ (var "raw") >% acc "acrlat0" [ 0 ]) (acc "acrlat0" [ 0 ]) (var "raw")),
    [ ("raw", raw); ("grad", grad) ])

let flux_j ~lap ~field =
  let raw = E.(acc "crlat1" [ 0 ] *% (acc lap [ 0; 1; 0 ] -% acc lap [ 0; 0; 0 ])) in
  let grad = E.(acc field [ 0; 1; 0 ] -% acc field [ 0; 0; 0 ]) in
  E.(
    sel
      (var "raw" *% var "grad" >% c 0.)
      (c 0.)
      (sel (abs_ (var "raw") >% acc "acrlat0" [ 0 ]) (acc "acrlat0" [ 0 ]) (var "raw")),
    [ ("raw", raw); ("grad", grad) ])

(* Smagorinsky diffusion factor for the wind components: shear and strain
   of the (u, v) field with an extra vertical-velocity contribution,
   clamped into [0, 0.5] (sqrt + min + max, Sec. IX-A). *)
let smagorinsky =
  let t =
    E.(
      acc "crlatu" [ 0 ] *% (acc "u" [ 0; 0; 1 ] -% acc "u" [ 0; 0; -1 ])
      -% (acc "crlatv" [ 0 ] *% (acc "v" [ 0; 1; 0 ] -% acc "v" [ 0; -1; 0 ]))
      +% (c 0.05 *% (acc "w" [ 0; 0; 1 ] -% acc "w" [ 0; 0; -1 ])))
  in
  let s =
    E.(
      acc "crlatu" [ 0 ] *% (acc "u" [ 0; 1; 0 ] -% acc "u" [ 0; -1; 0 ])
      +% (acc "crlatv" [ 0 ] *% (acc "v" [ 0; 0; 1 ] -% acc "v" [ 0; 0; -1 ]))
      +% (c 0.05 *% (acc "w" [ 0; 1; 0 ] -% acc "w" [ 0; -1; 0 ])))
  in
  ( E.(min_ (c 0.5) (max_ (c 0.) (var "smag_raw"))),
    [
      ("t_shear", t);
      ("s_strain", s);
      ( "smag_raw",
        E.(
          (c 0.5 *% sqrt_ ((var "t_shear" *% var "t_shear") +% (var "s_strain" *% var "s_strain")))
          -% acc "acrlat0" [ 0 ]) );
    ] )

(* Guarded update: flux divergence scaled by the externally supplied
   diffusion mask, with a Smagorinsky term for the wind components, and a
   rejection branch for updates exceeding the stability cap. *)
let update ~field ~flx ~fly ~smag =
  let delta =
    E.(
      acc flx [ 0; 0; 0 ] -% acc flx [ 0; 0; -1 ]
      +% (acc fly [ 0; 0; 0 ] -% acc fly [ 0; -1; 0 ]))
  in
  let smag_term =
    match smag with
    | None -> E.c 0.
    | Some (s, lap) -> E.(acc s [ 0; 0; 0 ] *% acc lap [ 0; 0; 0 ])
  in
  ( E.(
      sel
        (abs_ (var "upd") >% c 4.)
        (acc field [ 0; 0; 0 ])
        (acc field [ 0; 0; 0 ] -% var "upd" +% var "smag_term")),
    [
      ("delta", delta);
      ("upd", E.(acc "hdmask" [ 0; 0; 0 ] *% var "delta"));
      ("smag_term", smag_term);
    ] )

let fields = [ "u"; "v"; "w"; "pp" ]
let stencil_count = (3 * List.length fields) + 2 + List.length fields

let program ?(shape = meteoswiss_shape) ?(vector_width = 1) ?(dtype = Dtype.F32) () =
  let b = Builder.create ~dtype ~vector_width ~name:"horizontal_diffusion" ~shape () in
  List.iter (fun f -> Builder.input b f) (fields @ [ "hdmask" ]);
  List.iter
    (fun f -> Builder.input b ~axes:[ 1 ] f)
    [ "crlat0"; "crlat1"; "crlatu"; "crlatv"; "acrlat0" ];
  let zero_bc inputs = List.map (fun f -> (f, Boundary.Constant 0.)) inputs in
  (* Laplacians. *)
  List.iter
    (fun f ->
      Builder.stencil b ~boundary:(zero_bc [ f ]) (Printf.sprintf "lap_%s" f) (laplacian f))
    fields;
  (* Limited fluxes in both horizontal directions. *)
  List.iter
    (fun f ->
      let lap = Printf.sprintf "lap_%s" f in
      let result_i, lets_i = flux_i ~lap ~field:f in
      Builder.stencil b ~boundary:(zero_bc [ lap; f ]) ~lets:lets_i
        (Printf.sprintf "flx_%s" f) result_i;
      let result_j, lets_j = flux_j ~lap ~field:f in
      Builder.stencil b ~boundary:(zero_bc [ lap; f ]) ~lets:lets_j
        (Printf.sprintf "fly_%s" f) result_j)
    fields;
  (* Smagorinsky factors for the wind components. *)
  let smag_result, smag_lets = smagorinsky in
  Builder.stencil b ~boundary:(zero_bc [ "u"; "v"; "w" ]) ~lets:smag_lets "smag_u" smag_result;
  Builder.stencil b ~boundary:(zero_bc [ "u"; "v"; "w" ]) ~lets:smag_lets "smag_v" smag_result;
  (* Guarded updates. *)
  List.iter
    (fun f ->
      let flx = Printf.sprintf "flx_%s" f and fly = Printf.sprintf "fly_%s" f in
      let smag =
        match f with
        | "u" -> Some ("smag_u", "lap_u")
        | "v" -> Some ("smag_v", "lap_v")
        | _ -> None
      in
      let result, lets = update ~field:f ~flx ~fly ~smag in
      Builder.stencil b
        ~boundary:(zero_bc [ flx; fly; f ])
        ~lets
        (Printf.sprintf "%s_out" f)
        result;
      Builder.output b (Printf.sprintf "%s_out" f))
    fields;
  Builder.finish b
