(** Iterative-style stencil workloads (paper, Sec. VIII-C).

    StencilFlow handles traditional iterative stencils by chaining many
    copies of the operation into a linear DAG — analogous to time-tiled
    iterative execution, where each chain stage corresponds to one
    timestep unrolled into hardware. These generators produce the
    kernels benchmarked in Figs. 14-15 and Table I. *)

type kind = Jacobi2d | Jacobi3d | Diffusion2d | Diffusion3d | Laplace2d

val kind_name : kind -> string
val default_shape : kind -> int list
(** Benchmark domain: slice sizes chosen so internal buffers match the
    M20K budgets of Table I (see DESIGN.md). *)

val body : kind -> field:string -> Sf_ir.Expr.t
(** One application of the operation reading [field]. *)

val flops_per_cell : kind -> int
(** Floating-point ops of a single application (adds + muls). *)

val chain :
  ?shape:int list ->
  ?vector_width:int ->
  ?boundary:Sf_ir.Boundary.t ->
  kind ->
  length:int ->
  Sf_ir.Program.t
(** A linear chain of [length] applications: stage i reads stage i-1's
    stream; only the final stage is written to memory. *)

val single : ?shape:int list -> ?vector_width:int -> kind -> Sf_ir.Program.t
(** A one-stage program (for validation and examples). *)
