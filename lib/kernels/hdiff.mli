(** Horizontal diffusion from the COSMO weather model (paper, Sec. IX).

    A 4th-order explicit diffusion operator on a staggered
    latitude-longitude grid with Smagorinsky diffusion on the wind
    components and monotonic flux limiting [26]. The original stencil
    program is proprietary MeteoSwiss code extracted through Dawn; this
    generator reconstructs a program with the characteristics the paper
    reports (Sec. IX-A) — validated by the test suite and reported
    against the paper in EXPERIMENTS.md:

    - five 3D input fields (u, v, w, pp, hdmask) and five 1D per-latitude
      fields (crlat0, crlat1, crlatu, crlatv, acrlat0): reads 5·IJK + 5·J
      operands under perfect reuse (the paper writes 5·I for its 1D
      extent);
    - four 3D outputs (u_out, v_out, w_out, pp_out): writes 4·IJK;
    - per-field laplacians, limited fluxes in both horizontal directions,
      Smagorinsky factors with sqrt / min / max clamping, and guarded
      updates — data-dependent ternary branches throughout;
    - an operation mix dominated by additions, with arithmetic intensity
      within a few percent of the paper's 130/9 ops per operand (Eq. 2);
    - complex dependencies: non-source stencils consume 1-4 producers,
      many stencils share the same inputs. *)

val program :
  ?shape:int list -> ?vector_width:int -> ?dtype:Sf_ir.Dtype.t -> unit -> Sf_ir.Program.t
(** Default shape is the MeteoSwiss benchmark domain 80 x 128 x 128
    (stored K-outermost; the paper stacks a 128 x 128 horizontal domain
    in 80 vertical layers). *)

val meteoswiss_shape : int list

val stencil_count : int
(** Number of stencil nodes before fusion. *)
