(** Shallow-water equations: a multi-output application example.

    One Lax-Friedrichs step of the 2D shallow-water system over water
    height [h] and momenta [hu], [hv], with gravity [g] and the grid
    ratios [dtdx], [dtdy] as scalar inputs. Unlike the paper's iterative
    microbenchmarks this is a {e coupled} system: three stencils each
    read all three state fields (plus flux terms with divisions and a
    dry-cell guard branch), producing three outputs — the
    multiple-producer / multiple-consumer sharing pattern StencilFlow's
    delay-buffer analysis exists for. Combine with
    {!Sf_sim.Timeloop.unroll} to chain timesteps spatially. *)

val program : ?shape:int list -> ?vector_width:int -> unit -> Sf_ir.Program.t
(** Outputs [h_out], [hu_out], [hv_out]; default shape 64 x 64. *)

val feedback : (string * string) list
(** The time-loop feedback relation: [h_out -> h], [hu_out -> hu],
    [hv_out -> hv]. *)

val stable_inputs : ?seed:int -> Sf_ir.Program.t -> (string * Sf_reference.Tensor.t) list
(** A physically reasonable initial state (a smooth hump of water at
    rest, h around 1, small g·dt/dx) on which repeated stepping stays
    finite — useful for multi-step tests. *)
