(** Acoustic wave propagation: a second-order-in-time kernel.

    The 2D acoustic wave equation, discretized leap-frog style, needs
    {e two} previous time levels: [u_next = 2u - u_prev + c^2 lap(u)].
    On load/store architectures this is the classic seismic
    reverse-time-migration workload the FPGA stencil literature targets
    (paper, Sec. X and [15]). Spatially, iterating it requires feeding
    two results back: the new field, and a pass-through copy of the
    current field that becomes the previous level — exercising
    {!Sf_sim.Timeloop} with multi-field feedback. *)

val program : ?shape:int list -> ?vector_width:int -> unit -> Sf_ir.Program.t
(** Outputs [u_next] and [u_pass] (the carried copy of [u]); inputs [u],
    [u_prev], the velocity-squared field [c2], and the scalar [dt2]. *)

val feedback : (string * string) list
(** [u_next -> u], [u_pass -> u_prev]. *)

val pulse_inputs : Sf_ir.Program.t -> (string * Sf_reference.Tensor.t) list
(** A centred Gaussian pulse at rest in a homogeneous medium with a CFL-
    stable time step. *)
