open Sf_ir
module E = Builder.E

type kind = Jacobi2d | Jacobi3d | Diffusion2d | Diffusion3d | Laplace2d

let kind_name = function
  | Jacobi2d -> "jacobi2d"
  | Jacobi3d -> "jacobi3d"
  | Diffusion2d -> "diffusion2d"
  | Diffusion3d -> "diffusion3d"
  | Laplace2d -> "laplace2d"

(* Domains sized so a chain stage's internal buffers cost roughly the
   per-stage M20K budget implied by Table I, while the outer extent is
   large enough that initialization latency L is negligible relative to
   N (Sec. VIII-A: "L becomes negligible when the domain is large
   relative to the depth of the stencil DAG" — Sec. VIII-C runs "a large
   input domain"). *)
let default_shape = function
  | Jacobi2d | Diffusion2d | Laplace2d -> [ 16384; 4096 ]
  | Jacobi3d | Diffusion3d -> [ 32768; 64; 64 ]

(* Jacobi: average of the von Neumann neighbourhood.
   Diffusion: weighted 5/7-point update with distinct coefficients, as in
   Zohouri et al.'s diffusion kernels. *)
let body kind ~field =
  let a o = E.acc field o in
  match kind with
  | Jacobi2d ->
      E.(c 0.25 *% (a [ 0; -1 ] +% a [ 0; 1 ] +% a [ -1; 0 ] +% a [ 1; 0 ]))
  | Laplace2d ->
      E.(a [ 0; -1 ] +% a [ 0; 1 ] +% a [ -1; 0 ] +% a [ 1; 0 ] -% (c 4. *% a [ 0; 0 ]))
  | Jacobi3d ->
      E.(
        c 0.125
        *% (a [ 0; 0; -1 ] +% a [ 0; 0; 1 ] +% a [ 0; -1; 0 ] +% a [ 0; 1; 0 ]
           +% a [ -1; 0; 0 ] +% a [ 1; 0; 0 ] +% a [ 0; 0; 0 ]))
  | Diffusion2d ->
      E.(
        (c 0.1 *% a [ 0; -1 ]) +% (c 0.15 *% a [ 0; 1 ]) +% (c 0.2 *% a [ -1; 0 ])
        +% (c 0.25 *% a [ 1; 0 ]) +% (c 0.3 *% a [ 0; 0 ]))
  | Diffusion3d ->
      E.(
        (c 0.1 *% a [ 0; 0; -1 ]) +% (c 0.12 *% a [ 0; 0; 1 ]) +% (c 0.14 *% a [ 0; -1; 0 ])
        +% (c 0.16 *% a [ 0; 1; 0 ]) +% (c 0.18 *% a [ -1; 0; 0 ]) +% (c 0.2 *% a [ 1; 0; 0 ])
        +% (c 0.1 *% a [ 0; 0; 0 ]))

let flops_per_cell kind =
  Expr.flop_count (Expr.op_profile (body kind ~field:"x"))

let chain ?shape ?(vector_width = 1) ?(boundary = Boundary.Constant 0.) kind ~length =
  if length < 1 then invalid_arg "Iterative.chain: length must be positive";
  let shape = match shape with Some s -> s | None -> default_shape kind in
  let b =
    Builder.create ~vector_width
      ~name:(Printf.sprintf "%s_chain%d" (kind_name kind) length)
      ~shape ()
  in
  Builder.input b "f0";
  let prev = ref "f0" in
  for i = 1 to length do
    let name = Printf.sprintf "f%d" i in
    Builder.stencil b ~boundary:[ (!prev, boundary) ] name (body kind ~field:!prev);
    prev := name
  done;
  Builder.output b !prev;
  Builder.finish b

let single ?shape ?vector_width kind = chain ?shape ?vector_width kind ~length:1
