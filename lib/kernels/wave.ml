open Sf_ir
module E = Builder.E

let feedback = [ ("u_next", "u"); ("u_pass", "u_prev") ]

let program ?(shape = [ 64; 64 ]) ?(vector_width = 1) () =
  let b = Builder.create ~vector_width ~name:"acoustic_wave" ~shape () in
  Builder.input b "u";
  Builder.input b "u_prev";
  Builder.input b "c2";
  Builder.input b ~axes:[] "dt2";
  (* Zero (absorbing-ish) boundaries on the laplacian taps. *)
  Builder.stencil b
    ~boundary:[ ("u", Boundary.Constant 0.) ]
    "lap"
    E.(
      acc "u" [ 0; -1 ] +% acc "u" [ 0; 1 ] +% acc "u" [ -1; 0 ] +% acc "u" [ 1; 0 ]
      -% ((acc "u" [ 0; 0 ] +% acc "u" [ 0; 0 ]) +% (acc "u" [ 0; 0 ] +% acc "u" [ 0; 0 ])));
  Builder.stencil b "u_next"
    E.(
      acc "u" [ 0; 0 ] +% acc "u" [ 0; 0 ] -% acc "u_prev" [ 0; 0 ]
      +% (sc "dt2" *% acc "c2" [ 0; 0 ] *% acc "lap" [ 0; 0 ]));
  (* Pass-through so the current level can feed back as the previous
     one; reads at the center only, so it adds no latency. *)
  Builder.stencil b "u_pass" E.(acc "u" [ 0; 0 ]);
  Builder.output b "u_next";
  Builder.output b "u_pass";
  Builder.finish b

let pulse_inputs (p : Program.t) =
  let module Tensor = Sf_reference.Tensor in
  let shape = p.Program.shape in
  let j_ext = List.nth shape 0 and i_ext = List.nth shape 1 in
  let pulse idx =
    match idx with
    | [ j; i ] ->
        let dj = float_of_int (j - (j_ext / 2)) and di = float_of_int (i - (i_ext / 2)) in
        Float.exp (-0.05 *. ((dj *. dj) +. (di *. di)))
    | _ -> 0.
  in
  let u = Tensor.of_fn shape pulse in
  [
    ("u", u);
    ("u_prev", Tensor.copy u) (* at rest: du/dt = 0 *);
    ("c2", Tensor.create ~init:1. shape);
    ("dt2", Tensor.of_array [ 1 ] [| 0.1 |]);
  ]
