open Sf_ir

let eval_const_unop op c =
  match op with
  | Expr.Neg -> -.c
  | Expr.Not -> if c <> 0. then 0. else 1.

let eval_const_binop op a b =
  let of_bool p = if p then 1. else 0. in
  match op with
  | Expr.Add -> a +. b
  | Expr.Sub -> a -. b
  | Expr.Mul -> a *. b
  | Expr.Div -> a /. b
  | Expr.Lt -> of_bool (a < b)
  | Expr.Le -> of_bool (a <= b)
  | Expr.Gt -> of_bool (a > b)
  | Expr.Ge -> of_bool (a >= b)
  | Expr.Eq -> of_bool (a = b)
  | Expr.Ne -> of_bool (a <> b)
  | Expr.And -> of_bool (a <> 0. && b <> 0.)
  | Expr.Or -> of_bool (a <> 0. || b <> 0.)

let eval_const_call f args =
  match (f, args) with
  | Expr.Sqrt, [ x ] -> Some (Float.sqrt x)
  | Expr.Abs, [ x ] -> Some (Float.abs x)
  | Expr.Exp, [ x ] -> Some (Float.exp x)
  | Expr.Log, [ x ] -> Some (Float.log x)
  | Expr.Pow, [ x; y ] -> Some (Float.pow x y)
  | Expr.Min, [ x; y ] -> Some (Float.min x y)
  | Expr.Max, [ x; y ] -> Some (Float.max x y)
  | Expr.Sin, [ x ] -> Some (Float.sin x)
  | Expr.Cos, [ x ] -> Some (Float.cos x)
  | Expr.Floor, [ x ] -> Some (Float.floor x)
  | Expr.Ceil, [ x ] -> Some (Float.ceil x)
  | ( ( Expr.Sqrt | Expr.Abs | Expr.Exp | Expr.Log | Expr.Pow | Expr.Min | Expr.Max | Expr.Sin
      | Expr.Cos | Expr.Floor | Expr.Ceil ),
      _ ) ->
      None

(* Constant folding as a linear pass over the DAG: each distinct node is
   folded exactly once, however often the inlined tree repeats it. The
   float guards [c = 0.] / [c = 1.] deliberately use OCaml's [=] so -0.0
   triggers the zero identities exactly like the float patterns of the
   old tree-walking fold did (and NaN never matches). *)
let fold_dag ?(preserve_access_effects = false) root =
  let memo : (int, Dag.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo (Dag.id t) with
    | Some t' -> t'
    | None ->
        let t' =
          match Dag.view t with
          | Dag.Const _ | Dag.Access _ | Dag.Var _ -> t
          | Dag.Unary (op, x) -> (
              let x' = go x in
              match Dag.view x' with
              | Dag.Const c -> Dag.const (eval_const_unop op c)
              | _ -> Dag.unary op x')
          | Dag.Binary (op, x, y) -> (
              let x' = go x and y' = go y in
              match (op, Dag.view x', Dag.view y') with
              | _, Dag.Const a, Dag.Const b -> Dag.const (eval_const_binop op a b)
              (* IEEE-safe identities only: adding/subtracting zero and
                 multiplying/dividing by one preserve NaN and Inf
                 propagation. *)
              | Expr.Add, Dag.Const c, _ when c = 0. -> y'
              | Expr.Add, _, Dag.Const c when c = 0. -> x'
              | Expr.Sub, _, Dag.Const c when c = 0. -> x'
              | Expr.Mul, Dag.Const c, _ when c = 1. -> y'
              | Expr.Mul, _, Dag.Const c when c = 1. -> x'
              | Expr.Div, _, Dag.Const c when c = 1. -> x'
              | _, _, _ -> Dag.binary op x' y')
          | Dag.Select { cond; if_true; if_false } -> (
              let cond' = go cond in
              match Dag.view cond' with
              (* Folding a constant-condition select drops the unselected
                 branch. Under "shrink" semantics the dropped branch's
                 (predicated, possibly out-of-bounds) accesses still
                 affect the validity mask, so the fold is only legal when
                 that branch reads nothing or the caller asked for
                 pure-value semantics. *)
              | Dag.Const c
                when (not preserve_access_effects)
                     || Dag.accesses (if c <> 0. then if_false else if_true) = [] ->
                  go (if c <> 0. then if_true else if_false)
              | _ ->
                  Dag.select ~cond:cond' ~if_true:(go if_true) ~if_false:(go if_false))
          | Dag.Call (f, args) -> (
              let args' = List.map go args in
              let consts =
                List.filter_map
                  (fun a -> match Dag.view a with Dag.Const c -> Some c | _ -> None)
                  args'
              in
              if List.length consts = List.length args' then
                match eval_const_call f consts with
                | Some v -> Dag.const v
                | None -> Dag.call f args'
              else Dag.call f args')
        in
        Hashtbl.replace memo (Dag.id t) t';
        t'
  in
  go root

let fold_constants ?preserve_access_effects expr =
  Dag.to_expr (fold_dag ?preserve_access_effects (Dag.of_expr expr))

(* Compat shim: CSE is now hash-consing + let-extraction on the DAG. No
   string keys, no repeated [Expr.size] walks, and a subtree occurring
   many times through one shared parent is bound once, not per textual
   occurrence. *)
let cse ?min_size (body : Expr.body) = Dag.to_body ?min_size (Dag.of_body body)

let optimize_stencil ?min_size (s : Stencil.t) =
  (* Shrink stencils must keep predicated accesses alive (they feed the
     validity mask) even when a constant condition never selects them. *)
  let root = Dag.of_body s.Stencil.body in
  let folded = fold_dag ~preserve_access_effects:s.Stencil.shrink root in
  let s = { s with Stencil.body = Dag.extract ?min_size folded } in
  (* Folding can eliminate every access to a field (a constant-condition
     select, for instance); drop boundary conditions for fields that are
     no longer read. *)
  let still_read = Stencil.input_fields s in
  {
    s with
    Stencil.boundary =
      List.filter (fun (f, _) -> List.exists (String.equal f) still_read) s.Stencil.boundary;
  }

type report = {
  ops_before : int;
  ops_after : int;
  tree_ops_after : int;
  shared_nodes : int;
}

let flops_saved r = r.tree_ops_after - r.ops_after

let work_flops (p : Program.t) =
  List.fold_left
    (fun acc (s : Stencil.t) ->
      acc + Expr.flop_count (Dag.work_profile (Dag.of_body s.Stencil.body)))
    0 p.Program.stencils

let tree_flops (p : Program.t) =
  let sat a b = let s = a + b in if s < a || s < b then max_int else s in
  List.fold_left
    (fun acc (s : Stencil.t) ->
      sat acc (Expr.flop_count (Dag.tree_profile (Dag.of_body s.Stencil.body))))
    0 p.Program.stencils

let shared_count (p : Program.t) =
  List.fold_left
    (fun acc (s : Stencil.t) -> acc + Dag.shared_nodes (Dag.of_body s.Stencil.body))
    0 p.Program.stencils

let optimize_with_report ?min_size (p : Program.t) =
  let ops_before = work_flops p in
  let stencils = List.map (optimize_stencil ?min_size) p.Program.stencils in
  (* Dead-code elimination: folding may disconnect stencils entirely;
     remove (transitively) everything that is neither an output nor read
     by a surviving stencil. *)
  let rec prune stencils =
    let read = List.concat_map (fun (s : Stencil.t) -> Stencil.input_fields s) stencils in
    let live (s : Stencil.t) =
      List.exists (String.equal s.Stencil.name) p.Program.outputs
      || List.exists (String.equal s.Stencil.name) read
    in
    let survivors = List.filter live stencils in
    if List.length survivors = List.length stencils then stencils else prune survivors
  in
  let stencils = prune stencils in
  let read = List.concat_map (fun (s : Stencil.t) -> Stencil.input_fields s) stencils in
  let inputs =
    List.filter (fun f -> List.exists (String.equal f.Field.name) read) p.Program.inputs
  in
  let optimized = { p with Program.stencils; inputs } in
  Program.validate_exn optimized;
  let report =
    {
      ops_before;
      ops_after = work_flops optimized;
      tree_ops_after = tree_flops optimized;
      shared_nodes = shared_count optimized;
    }
  in
  (optimized, report)

let optimize ?min_size (p : Program.t) = fst (optimize_with_report ?min_size p)
