open Sf_ir

let is_const = function Expr.Const _ -> true | _ -> false

let eval_const_unop op c =
  match op with
  | Expr.Neg -> -.c
  | Expr.Not -> if c <> 0. then 0. else 1.

let eval_const_binop op a b =
  let of_bool p = if p then 1. else 0. in
  match op with
  | Expr.Add -> a +. b
  | Expr.Sub -> a -. b
  | Expr.Mul -> a *. b
  | Expr.Div -> a /. b
  | Expr.Lt -> of_bool (a < b)
  | Expr.Le -> of_bool (a <= b)
  | Expr.Gt -> of_bool (a > b)
  | Expr.Ge -> of_bool (a >= b)
  | Expr.Eq -> of_bool (a = b)
  | Expr.Ne -> of_bool (a <> b)
  | Expr.And -> of_bool (a <> 0. && b <> 0.)
  | Expr.Or -> of_bool (a <> 0. || b <> 0.)

let eval_const_call f args =
  match (f, args) with
  | Expr.Sqrt, [ x ] -> Some (Float.sqrt x)
  | Expr.Abs, [ x ] -> Some (Float.abs x)
  | Expr.Exp, [ x ] -> Some (Float.exp x)
  | Expr.Log, [ x ] -> Some (Float.log x)
  | Expr.Pow, [ x; y ] -> Some (Float.pow x y)
  | Expr.Min, [ x; y ] -> Some (Float.min x y)
  | Expr.Max, [ x; y ] -> Some (Float.max x y)
  | Expr.Sin, [ x ] -> Some (Float.sin x)
  | Expr.Cos, [ x ] -> Some (Float.cos x)
  | Expr.Floor, [ x ] -> Some (Float.floor x)
  | Expr.Ceil, [ x ] -> Some (Float.ceil x)
  | ( ( Expr.Sqrt | Expr.Abs | Expr.Exp | Expr.Log | Expr.Pow | Expr.Min | Expr.Max | Expr.Sin
      | Expr.Cos | Expr.Floor | Expr.Ceil ),
      _ ) ->
      None

let fold_constants ?(preserve_access_effects = false) expr =
  let rec fold_constants expr =
    match expr with
  | Expr.Const _ | Expr.Access _ | Expr.Var _ -> expr
  | Expr.Unary (op, x) -> (
      match fold_constants x with
      | Expr.Const c -> Expr.Const (eval_const_unop op c)
      | x' -> Expr.Unary (op, x'))
  | Expr.Binary (op, x, y) -> (
      let x' = fold_constants x and y' = fold_constants y in
      match (op, x', y') with
      | _, Expr.Const a, Expr.Const b -> Expr.Const (eval_const_binop op a b)
      (* IEEE-safe identities only: adding/subtracting zero and
         multiplying/dividing by one preserve NaN and Inf propagation. *)
      | Expr.Add, Expr.Const 0., e | Expr.Add, e, Expr.Const 0. -> e
      | Expr.Sub, e, Expr.Const 0. -> e
      | Expr.Mul, Expr.Const 1., e | Expr.Mul, e, Expr.Const 1. -> e
      | Expr.Div, e, Expr.Const 1. -> e
      | _, _, _ -> Expr.Binary (op, x', y'))
  | Expr.Select { cond; if_true; if_false } -> (
      let cond' = fold_constants cond in
      match cond' with
      (* Folding a constant-condition select drops the unselected branch.
         Under "shrink" semantics the dropped branch's (predicated,
         possibly out-of-bounds) accesses still affect the validity mask,
         so the fold is only legal when that branch reads nothing or the
         caller asked for pure-value semantics. *)
      | Expr.Const c
        when (not preserve_access_effects)
             || Expr.accesses (if c <> 0. then if_false else if_true) = [] ->
          fold_constants (if c <> 0. then if_true else if_false)
      | _ ->
          Expr.Select
            { cond = cond'; if_true = fold_constants if_true; if_false = fold_constants if_false })
  | Expr.Call (f, args) -> (
      let args' = List.map fold_constants args in
      if List.for_all is_const args' then
        let values = List.map (function Expr.Const c -> c | _ -> assert false) args' in
        match eval_const_call f values with
        | Some v -> Expr.Const v
        | None -> Expr.Call (f, args')
      else Expr.Call (f, args'))
  in
  fold_constants expr

let cse ?(min_size = 3) (body : Expr.body) =
  let expr = Expr.inline_lets body in
  (* Count structurally identical subtrees (keyed by their canonical
     rendering, which is unambiguous). *)
  let counts : (string, int * Expr.t) Hashtbl.t = Hashtbl.create 64 in
  let rec count e =
    (match e with
    | Expr.Const _ | Expr.Access _ | Expr.Var _ -> ()
    | Expr.Unary (_, x) -> count x
    | Expr.Binary (_, x, y) ->
        count x;
        count y
    | Expr.Select { cond; if_true; if_false } ->
        count cond;
        count if_true;
        count if_false
    | Expr.Call (_, args) -> List.iter count args);
    if Expr.size e >= min_size then begin
      let key = Expr.to_string e in
      match Hashtbl.find_opt counts key with
      | Some (n, _) -> Hashtbl.replace counts key (n + 1, e)
      | None -> Hashtbl.replace counts key (1, e)
    end
  in
  count expr;
  let shared =
    Hashtbl.fold (fun key (n, e) acc -> if n >= 2 then (key, e) :: acc else acc) counts []
    (* Bind smaller subtrees first so larger ones can reference them. *)
    |> List.sort (fun (_, a) (_, b) -> compare (Expr.size a) (Expr.size b))
  in
  let name_of : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.iteri (fun i (key, _) -> Hashtbl.replace name_of key (Printf.sprintf "__cse%d" i)) shared;
  (* Rewrite an expression, replacing shared subtrees by their variable —
     except the expression being defined itself ([skip]). *)
  let rec rewrite ?skip e =
    let key = Expr.to_string e in
    match Hashtbl.find_opt name_of key with
    | Some v when skip <> Some key -> Expr.Var v
    | Some _ | None -> (
        match e with
        | Expr.Const _ | Expr.Access _ | Expr.Var _ -> e
        | Expr.Unary (op, x) -> Expr.Unary (op, rewrite x)
        | Expr.Binary (op, x, y) -> Expr.Binary (op, rewrite x, rewrite y)
        | Expr.Select { cond; if_true; if_false } ->
            Expr.Select
              { cond = rewrite cond; if_true = rewrite if_true; if_false = rewrite if_false }
        | Expr.Call (f, args) -> Expr.Call (f, List.map rewrite args))
  in
  let lets =
    List.map
      (fun (key, e) -> (Hashtbl.find name_of key, rewrite ~skip:key e))
      shared
  in
  { Expr.lets; result = rewrite expr }

let optimize_stencil ?min_size (s : Stencil.t) =
  (* Shrink stencils must keep predicated accesses alive (they feed the
     validity mask) even when a constant condition never selects them. *)
  let fold e = fold_constants ~preserve_access_effects:s.Stencil.shrink e in
  let folded =
    {
      Expr.lets = List.map (fun (n, e) -> (n, fold e)) s.Stencil.body.Expr.lets;
      result = fold s.Stencil.body.Expr.result;
    }
  in
  let s = { s with Stencil.body = cse ?min_size folded } in
  (* Folding can eliminate every access to a field (a constant-condition
     select, for instance); drop boundary conditions for fields that are
     no longer read. *)
  let still_read = Stencil.input_fields s in
  {
    s with
    Stencil.boundary =
      List.filter (fun (f, _) -> List.exists (String.equal f) still_read) s.Stencil.boundary;
  }

let optimize ?min_size (p : Program.t) =
  let stencils = List.map (optimize_stencil ?min_size) p.Program.stencils in
  (* Dead-code elimination: folding may disconnect stencils entirely;
     remove (transitively) everything that is neither an output nor read
     by a surviving stencil. *)
  let rec prune stencils =
    let read = List.concat_map (fun (s : Stencil.t) -> Stencil.input_fields s) stencils in
    let live (s : Stencil.t) =
      List.exists (String.equal s.Stencil.name) p.Program.outputs
      || List.exists (String.equal s.Stencil.name) read
    in
    let survivors = List.filter live stencils in
    if List.length survivors = List.length stencils then stencils else prune survivors
  in
  let stencils = prune stencils in
  let read = List.concat_map (fun (s : Stencil.t) -> Stencil.input_fields s) stencils in
  let inputs =
    List.filter (fun f -> List.exists (String.equal f.Field.name) read) p.Program.inputs
  in
  let optimized = { p with Program.stencils; inputs } in
  Program.validate_exn optimized;
  optimized
