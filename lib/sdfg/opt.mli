(** Expression-level optimizations.

    Fusion (Sec. V-B) inlines producer expressions once per consuming
    access, so a fused stencil can contain many copies of the same
    subexpression; the paper relies on the downstream optimizing compiler
    to clean this up ("combined code sections increase the opportunity
    for common subexpression elimination"). This module provides that
    cleanup natively so that op counts, critical paths and resource
    estimates of fused programs reflect hardware sharing:

    - {!fold_constants}: constant subtrees are evaluated, and the safe
      algebraic identities [x + 0], [0 + x], [x - 0], [x * 1], [1 * x],
      [x / 1] and constant-condition selects are simplified (identities
      that could change IEEE semantics on NaN/Inf inputs, like [x * 0],
      are left alone);
    - {!cse}: repeated subtrees are hoisted into let bindings, computed
      once and fanned out. *)

val fold_constants : ?preserve_access_effects:bool -> Sf_ir.Expr.t -> Sf_ir.Expr.t
(** With [preserve_access_effects] (used for "shrink" stencils, whose
    validity masks depend on every predicated access), constant-condition
    selects are only folded when the eliminated branch reads no fields. *)

val cse : ?min_size:int -> Sf_ir.Expr.body -> Sf_ir.Expr.body
(** Inline the body's existing lets, then hoist every subtree of at least
    [min_size] AST nodes (default 3) occurring more than once into a
    fresh let ([__cseN]). Inner shared subtrees are bound before the
    outer ones that use them. *)

val optimize_stencil : ?min_size:int -> Sf_ir.Stencil.t -> Sf_ir.Stencil.t

val optimize : ?min_size:int -> Sf_ir.Program.t -> Sf_ir.Program.t
(** Apply both passes to every stencil, then clean up what folding may
    have disconnected: boundary conditions of fields no longer read,
    stencils that became dead, and inputs that fell out of use. Validates
    the result. Typically run after {!Fusion.fuse_all}. *)
