(** Expression-level optimizations over the hash-consed DAG.

    Fusion (Sec. V-B) inlines producer expressions once per consuming
    access, so a fused stencil can contain many copies of the same
    subexpression; the paper relies on the downstream optimizing compiler
    to clean this up ("combined code sections increase the opportunity
    for common subexpression elimination"). This module provides that
    cleanup natively — as linear passes over {!Sf_ir.Dag} nodes, so each
    distinct value is visited once no matter how often the inlined tree
    repeats it:

    - {!fold_dag} / {!fold_constants}: constant subgraphs are evaluated,
      and the safe algebraic identities [x + 0], [0 + x], [x - 0],
      [x * 1], [1 * x], [x / 1] and constant-condition selects are
      simplified (identities that could change IEEE semantics on NaN/Inf
      inputs, like [x * 0], are left alone);
    - CSE is let-extraction ({!Sf_ir.Dag.extract}): every shared node is
      bound once and fanned out. *)

val eval_const_unop : Sf_ir.Expr.unop -> float -> float

val eval_const_binop : Sf_ir.Expr.binop -> float -> float -> float
(** IEEE semantics, pinned by regression tests: [Eq] on NaN is false and
    [Ne] on NaN is true (OCaml [=]/[<>] on floats), exactly as
    [Reference.Interp] and the compiled simulator evaluate them — a
    folded comparison must equal the runtime one bit-for-bit. *)

val eval_const_call : Sf_ir.Expr.func -> float list -> float option
(** [None] when the argument count does not match the function. *)

val fold_dag : ?preserve_access_effects:bool -> Sf_ir.Dag.t -> Sf_ir.Dag.t
(** Fold one DAG (memoized per node id). With [preserve_access_effects]
    (used for "shrink" stencils, whose validity masks depend on every
    predicated access), constant-condition selects are only folded when
    the eliminated branch reads no fields. *)

val fold_constants : ?preserve_access_effects:bool -> Sf_ir.Expr.t -> Sf_ir.Expr.t
(** Tree-level convenience wrapper around {!fold_dag}. *)

val cse : ?min_size:int -> Sf_ir.Expr.body -> Sf_ir.Expr.body
(** Compatibility shim for {!Sf_ir.Dag.to_body}: hoist every shared
    non-leaf node of at least [min_size] AST nodes (default 3) into a
    let binding ([__cseN]), inner shares bound before the outer ones
    that use them. Unlike the historical string-keyed version, a subtree
    repeated only through a single shared parent is bound once. *)

val optimize_stencil : ?min_size:int -> Sf_ir.Stencil.t -> Sf_ir.Stencil.t

type report = {
  ops_before : int;  (** work (sharing-aware) flops per cell, summed over stencils *)
  ops_after : int;  (** same, after folding + CSE *)
  tree_ops_after : int;
      (** flops of the fully inlined post-optimization trees (saturating) *)
  shared_nodes : int;  (** distinct shared non-leaf values across all bodies *)
}

val flops_saved : report -> int
(** [tree_ops_after - ops_after]: per-cell flops the extracted sharing
    avoids relative to per-occurrence evaluation. *)

val optimize_with_report : ?min_size:int -> Sf_ir.Program.t -> Sf_ir.Program.t * report

val optimize : ?min_size:int -> Sf_ir.Program.t -> Sf_ir.Program.t
(** Apply both passes to every stencil, then clean up what folding may
    have disconnected: boundary conditions of fields no longer read,
    stencils that became dead, and inputs that fell out of use. Validates
    the result. Typically run after {!Fusion.fuse_all}. *)
