open Sf_ir

type storage = Off_chip | On_chip | Stream of { depth : int }

type container = {
  cname : string;
  dtype : Dtype.t;
  extent : int list;
  storage : storage;
  transient : bool;
  axes_hint : int list option;
}

type node_id = int

type node =
  | Access of string
  | Tasklet of { label : string; body : Expr.body }
  | Stencil_node of Stencil.t
  | Pipeline of {
      label : string;
      iteration : int list;
      init_cycles : int;
      drain_cycles : int;
      body : graph;
    }
  | Unrolled_map of { label : string; width : int; body : graph }

and edge = { src : node_id; dst : node_id; data : string; subset : string }
and graph = { nodes : (node_id * node) list; edges : edge list }

type state = { slabel : string; body : graph }
type t = { name : string; containers : container list; states : state list }

let empty_graph = { nodes = []; edges = [] }

let add_node g node =
  let id = List.length g.nodes in
  ({ g with nodes = g.nodes @ [ (id, node) ] }, id)

let add_edge g ~src ~dst ~data ~subset = { g with edges = g.edges @ [ { src; dst; data; subset } ] }
let find_container t name = List.find_opt (fun c -> String.equal c.cname name) t.containers

let subset_of_offsets offsets =
  "[" ^ Sf_support.Util.string_concat_map ", " string_of_int offsets ^ "]"

let stream_name ~src ~dst = Printf.sprintf "%s__to__%s" src dst

(* Metadata containers encode program-level parameters that DaCe would
   keep as symbols; they are zero-extent and transient. *)
let symbol_container name value =
  { cname = Printf.sprintf "__sym_%s_%d" name value; dtype = Dtype.I32; extent = [];
    storage = On_chip; transient = true; axes_hint = None }

let symbol_value t name =
  List.find_map
    (fun c ->
      let prefix = Printf.sprintf "__sym_%s_" name in
      if String.length c.cname > String.length prefix
         && String.sub c.cname 0 (String.length prefix) = prefix
      then int_of_string_opt (String.sub c.cname (String.length prefix)
             (String.length c.cname - String.length prefix))
      else None)
    t.containers

let of_program (p : Program.t) =
  Program.validate_exn p;
  let analysis = Sf_analysis.Delay_buffer.analyze p in
  let full_shape = p.Program.shape in
  let containers = ref [] in
  let add_container c = containers := !containers @ [ c ] in
  List.iter
    (fun (f : Field.t) ->
      add_container
        {
          cname = f.Field.name;
          dtype = f.Field.dtype;
          extent = Field.extent f ~shape:full_shape;
          storage = Off_chip;
          transient = false;
          axes_hint = Some f.Field.axes;
        })
    p.Program.inputs;
  let graph = ref empty_graph in
  let node id_graph node =
    let g, id = add_node id_graph node in
    graph := g;
    id
  in
  (* Access nodes are shared per container within the state. *)
  let access_ids : (string, node_id) Hashtbl.t = Hashtbl.create 16 in
  let access name =
    match Hashtbl.find_opt access_ids name with
    | Some id -> id
    | None ->
        let id = node !graph (Access name) in
        Hashtbl.replace access_ids name id;
        id
  in
  let stencil_ids : (string, node_id) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Stencil.t) ->
      let id = node !graph (Stencil_node s) in
      Hashtbl.replace stencil_ids s.Stencil.name id)
    p.Program.stencils;
  (* Result containers: off-chip when written to memory, streams between
     stencils otherwise; a stencil consumed by several others gets one
     stream per edge, with the analysed depth. *)
  List.iter
    (fun (s : Stencil.t) ->
      let name = s.Stencil.name in
      let sid = Hashtbl.find stencil_ids name in
      if List.exists (String.equal name) p.Program.outputs then begin
        add_container
          {
            cname = name;
            dtype = p.Program.dtype;
            extent = full_shape;
            storage = Off_chip;
            transient = false;
            axes_hint = None;
          };
        graph :=
          add_edge !graph ~src:sid ~dst:(access name) ~data:name ~subset:"[full]"
      end;
      List.iter
        (fun consumer ->
          let sname = stream_name ~src:name ~dst:consumer in
          let depth = Sf_analysis.Delay_buffer.buffer_for analysis ~src:name ~dst:consumer in
          add_container
            {
              cname = sname;
              dtype = p.Program.dtype;
              extent = [];
              storage = Stream { depth };
              transient = true;
              axes_hint = None;
            };
          let aid = access sname in
          graph := add_edge !graph ~src:sid ~dst:aid ~data:sname ~subset:"[stream]";
          graph :=
            add_edge !graph ~src:aid
              ~dst:(Hashtbl.find stencil_ids consumer)
              ~data:sname ~subset:"[stream]")
        (Program.consumers p name))
    p.Program.stencils;
  (* Input reads. *)
  List.iter
    (fun (s : Stencil.t) ->
      let sid = Hashtbl.find stencil_ids s.Stencil.name in
      List.iter
        (fun field ->
          if Program.is_input p field then begin
            let offsets = Stencil.accesses_of_field s field in
            graph :=
              add_edge !graph ~src:(access field) ~dst:sid ~data:field
                ~subset:(Sf_support.Util.string_concat_map " " subset_of_offsets offsets)
          end)
        (Stencil.input_fields s))
    p.Program.stencils;
  add_container (symbol_container "W" p.Program.vector_width);
  {
    name = p.Program.name;
    containers = !containers;
    states = [ { slabel = "main"; body = !graph } ];
  }

let extract_program (t : t) =
  let stencils =
    List.concat_map
      (fun st -> List.filter_map (fun (_, n) -> match n with Stencil_node s -> Some s | _ -> None) st.body.nodes)
      t.states
  in
  if stencils = [] then Error "SDFG contains no stencil library nodes"
  else begin
    let written = List.map (fun (s : Stencil.t) -> s.Stencil.name) stencils in
    let outputs =
      List.filter_map
        (fun c ->
          if (not c.transient) && c.storage = Off_chip
             && List.exists (String.equal c.cname) written
          then Some c.cname
          else None)
        t.containers
    in
    match
      List.find_opt
        (fun c -> (not c.transient) && List.exists (String.equal c.cname) outputs)
        t.containers
    with
    | None -> Error "no off-chip output container found"
    | Some out_container ->
        let shape = out_container.extent in
        (* Recover each input's axes by matching its extent against a
           subsequence of the iteration shape (leftmost match). *)
        let infer_axes extent =
          let rec go axes axis = function
            | [] -> Some (List.rev axes)
            | e :: rest ->
                let rec seek a =
                  if a >= List.length shape then None
                  else if List.nth shape a = e then Some a
                  else seek (a + 1)
                in
                (match seek axis with
                | None -> None
                | Some a -> go (a :: axes) (a + 1) rest)
          in
          go [] 0 extent
        in
        let read_fields =
          List.concat_map (fun (s : Stencil.t) -> Stencil.input_fields s) stencils
          |> List.filter (fun f -> not (List.exists (String.equal f) written))
          |> List.sort_uniq String.compare
        in
        let inputs =
          List.filter_map
            (fun c ->
              if c.transient || not (List.exists (String.equal c.cname) read_fields) then None
              else
                (* Prefer the recorded axes (set when the SDFG was lowered
                   from a program); inference from extents is ambiguous
                   when several iteration axes share an extent. *)
                match c.axes_hint with
                | Some axes -> Some { Field.name = c.cname; dtype = c.dtype; axes }
                | None -> (
                    match infer_axes c.extent with
                    | None -> None
                    | Some axes -> Some { Field.name = c.cname; dtype = c.dtype; axes }))
            t.containers
        in
        let w = Option.value (symbol_value t "W") ~default:1 in
        let program =
          Program.make ~dtype:out_container.dtype ~vector_width:w ~name:t.name ~shape
            ~inputs ~outputs stencils
        in
        (match Program.validate program with
        | Ok () -> Ok program
        | Error errs -> Error (String.concat "; " errs))
  end

(* Expansion of a stencil library node into the Fig. 12 subgraph. *)
let expand_stencil (p_shape : int list) w init_cycles drain_cycles (s : Stencil.t) containers =
  let g = ref empty_graph in
  let node n =
    let g', id = add_node !g n in
    g := g';
    id
  in
  let new_containers = ref [] in
  let fields = Stencil.input_fields s in
  let compute_inputs = ref [] in
  List.iter
    (fun field ->
      let offsets = Stencil.accesses_of_field s field in
      let buffered = List.length offsets > 1 in
      let sr = Printf.sprintf "sr_%s_%s" s.Stencil.name field in
      if buffered then begin
        (* Shift-register container sized by the flat span of the
           accesses; a full-rank requirement is guaranteed upstream. *)
        let flats =
          List.filter_map
            (fun o ->
              if List.length o = List.length p_shape then
                Some (Sf_analysis.Internal_buffer.flatten_offset ~shape:p_shape o)
              else None)
            offsets
        in
        let size =
          match flats with
          | [] -> w
          | f :: rest ->
              let lo = List.fold_left min f rest and hi = List.fold_left max f rest in
              hi - lo + w
        in
        new_containers :=
          { cname = sr; dtype = Dtype.F32; extent = [ size ]; storage = On_chip;
            transient = true; axes_hint = None }
          :: !new_containers;
        (* As in DaCe, each use of a container gets its own access node:
           one for the pre-shift state and one for the written state, so
           the dataflow inside the scope stays acyclic. *)
        let sr_read = node (Access sr) in
        let sr_write = node (Access sr) in
        (* Shift phase: move every entry by W, fully unrolled. *)
        let shift_body, _ =
          add_node empty_graph
            (Tasklet
               {
                 label = Printf.sprintf "shift_%s" field;
                 body = { Expr.lets = []; result = Expr.Var "in" };
               })
        in
        let shift =
          node
            (Unrolled_map { label = Printf.sprintf "shift_%s" field; width = size - w; body = shift_body })
        in
        g := add_edge !g ~src:sr_read ~dst:shift ~data:sr ~subset:"[i]";
        g := add_edge !g ~src:shift ~dst:sr_write ~data:sr ~subset:"[i+W]";
        (* Update phase: a tasklet reads the input stream into the head of
           the register. *)
        let update =
          node
            (Tasklet
               {
                 label = Printf.sprintf "update_%s" field;
                 body = { Expr.lets = []; result = Expr.Var "in" };
               })
        in
        let in_access = node (Access field) in
        g := add_edge !g ~src:in_access ~dst:update ~data:field ~subset:"[stream]";
        g := add_edge !g ~src:update ~dst:sr_write ~data:sr ~subset:"[0:W]";
        compute_inputs := (sr_write, sr, offsets) :: !compute_inputs
      end
      else begin
        let in_access = node (Access field) in
        compute_inputs := (in_access, field, offsets) :: !compute_inputs
      end)
    fields;
  (* Compute phase: taps feed the computation tasklet, whose result passes
     through a conditional write guard that drops initialization-phase
     outputs. *)
  let compute = node (Tasklet { label = "compute"; body = s.Stencil.body }) in
  List.iter
    (fun (src, data, offsets) ->
      g :=
        add_edge !g ~src ~dst:compute ~data
          ~subset:(Sf_support.Util.string_concat_map " " subset_of_offsets offsets))
    (List.rev !compute_inputs);
  let guard =
    node
      (Tasklet
         {
           label = "write_if_not_initializing";
           body = { Expr.lets = []; result = Expr.Var "value" };
         })
  in
  g := add_edge !g ~src:compute ~dst:guard ~data:"value" ~subset:"[scalar]";
  let out_access = node (Access s.Stencil.name) in
  g := add_edge !g ~src:guard ~dst:out_access ~data:s.Stencil.name ~subset:"[stream]";
  ignore containers;
  ( Pipeline
      {
        label = Printf.sprintf "pipeline_%s" s.Stencil.name;
        iteration = p_shape;
        init_cycles;
        drain_cycles;
        body = !g;
      },
    !new_containers )

let expand_library_nodes (t : t) =
  match extract_program t with
  | Error _ -> t
  | Ok p ->
      let new_containers = ref [] in
      let states =
        List.map
          (fun st ->
            let nodes =
              List.map
                (fun (id, n) ->
                  match n with
                  | Stencil_node s ->
                      let init = Sf_analysis.Internal_buffer.stencil_init_cycles p s in
                      let drain =
                        Sf_analysis.Latency.critical_path Sf_analysis.Latency.default
                          s.Stencil.body
                      in
                      let expanded, extra =
                        expand_stencil p.Program.shape p.Program.vector_width init drain s
                          t.containers
                      in
                      new_containers := extra @ !new_containers;
                      (id, expanded)
                  | other -> (id, other))
                st.body.nodes
            in
            { st with body = { st.body with nodes } })
          t.states
      in
      let with_new = t.containers @ List.rev !new_containers in
      (* Expanded scopes reference stencil results by their bare names
         (the connector the outer graph wires to a stream); declare port
         containers for any name not already present. *)
      let ports =
        List.filter_map
          (fun (s : Stencil.t) ->
            let name = s.Stencil.name in
            if List.exists (fun c -> String.equal c.cname name) with_new then None
            else
              Some
                {
                  cname = name;
                  dtype = p.Program.dtype;
                  extent = [];
                  storage = Stream { depth = 0 };
                  transient = true;
                  axes_hint = None;
                })
          p.Program.stencils
      in
      { t with states; containers = with_new @ ports }

let rec graph_acyclic g =
  let module G = Sf_support.Dgraph.Make (Int) in
  let dg = List.fold_left (fun dg (id, _) -> G.add_vertex dg id ()) G.empty g.nodes in
  let dg =
    List.fold_left
      (fun dg e ->
        if G.mem_vertex dg e.src && G.mem_vertex dg e.dst && e.src <> e.dst then
          G.add_edge dg ~src:e.src ~dst:e.dst ()
        else dg)
      dg g.edges
  in
  G.is_dag dg
  && List.for_all
       (fun (_, n) ->
         match n with
         | Pipeline { body; _ } | Unrolled_map { body; _ } -> graph_acyclic body
         | Access _ | Tasklet _ | Stencil_node _ -> true)
       g.nodes

let validate (t : t) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.cname then err "duplicate container %s" c.cname
      else Hashtbl.add seen c.cname ())
    t.containers;
  let rec check_graph path g =
    let ids = List.map fst g.nodes in
    List.iter
      (fun e ->
        if not (List.mem e.src ids) then err "%s: edge references unknown source %d" path e.src;
        if not (List.mem e.dst ids) then err "%s: edge references unknown destination %d" path e.dst)
      g.edges;
    List.iter
      (fun (_, n) ->
        match n with
        | Access name ->
            (* Access nodes inside expansions may reference shift registers
               declared at the SDFG level. *)
            if not (Hashtbl.mem seen name) then err "%s: access to unknown container %s" path name
        | Pipeline { label; body; _ } -> check_graph (path ^ "/" ^ label) body
        | Unrolled_map { label; body; _ } -> check_graph (path ^ "/" ^ label) body
        | Tasklet _ | Stencil_node _ -> ())
      g.nodes;
    if not (graph_acyclic g) then err "%s: dataflow graph has a cycle" path
  in
  List.iter (fun st -> check_graph st.slabel st.body) t.states;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let stats (t : t) =
  let rec count g =
    List.fold_left
      (fun (n, e) (_, node) ->
        match node with
        | Pipeline { body; _ } | Unrolled_map { body; _ } ->
            let n', e' = count body in
            (n + 1 + n', e + e')
        | Access _ | Tasklet _ | Stencil_node _ -> (n + 1, e))
      (0, List.length g.edges)
      g.nodes
  in
  let nodes, edges =
    List.fold_left
      (fun (n, e) st ->
        let n', e' = count st.body in
        (n + n', e + e'))
      (0, 0) t.states
  in
  (List.length t.states, nodes, edges)

let pp fmt (t : t) =
  let states, nodes, edges = stats t in
  Format.fprintf fmt "sdfg %s: %d state(s), %d node(s), %d edge(s), %d container(s)" t.name
    states nodes edges (List.length t.containers)
