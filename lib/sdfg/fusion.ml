open Sf_ir

type report = {
  fused_pairs : (string * string) list;
  stencils_before : int;
  stencils_after : int;
}

let can_fuse (p : Program.t) ~producer ~consumer =
  match (Program.find_stencil p producer, Program.find_stencil p consumer) with
  | None, _ -> Error (Printf.sprintf "%s is not a stencil" producer)
  | _, None -> Error (Printf.sprintf "%s is not a stencil" consumer)
  | Some u, Some v ->
      if List.exists (String.equal producer) p.Program.outputs then
        Error (Printf.sprintf "%s is written to off-chip memory" producer)
      else begin
        match Program.consumers p producer with
        | [ c ] when String.equal c consumer ->
            if not (Stencil.equal_boundaries u v) then
              Error "boundary conditions differ"
            else Ok ()
        | [ _ ] -> Error (Printf.sprintf "%s does not feed %s" producer consumer)
        | consumers ->
            Error
              (Printf.sprintf "%s has %d consumers (container degree > 2)" producer
                 (List.length consumers))
      end

let fuse_pair (p : Program.t) ~producer ~consumer =
  (match can_fuse p ~producer ~consumer with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fusion.fuse_pair: " ^ m));
  let u = Option.get (Program.find_stencil p producer) in
  let v = Option.get (Program.find_stencil p consumer) in
  let u_expr = Expr.inline_lets u.Stencil.body in
  let v_expr = Expr.inline_lets v.Stencil.body in
  (* Substitute u's body (shifted by the access offset) for each access to
     the producer. Full-rank fields shift componentwise; lower-dimensional
     fields shift only on the axes they span. *)
  let fused_expr =
    Expr.map_accesses
      (fun ~field ~offsets ->
        if String.equal field producer then begin
          let delta = offsets in
          Expr.map_accesses
            (fun ~field:f ~offsets:inner ->
              let axes = Program.field_axes p f in
              if List.length axes = Program.rank p then
                Expr.Access { field = f; offsets = List.map2 ( + ) inner delta }
              else
                Expr.Access
                  { field = f; offsets = List.map2 (fun o axis -> o + List.nth delta axis) inner axes })
            u_expr
        end
        else Expr.Access { field; offsets })
      v_expr
  in
  let merged_boundary =
    let from_u =
      List.filter (fun (f, _) -> not (List.mem_assoc f v.Stencil.boundary)) u.Stencil.boundary
    in
    v.Stencil.boundary @ from_u
  in
  let fused =
    Stencil.make
      ~boundary:
        (List.filter (fun (f, _) -> not (String.equal f producer)) merged_boundary)
      ~shrink:v.Stencil.shrink ~name:consumer
      { Expr.lets = []; result = fused_expr }
  in
  let stencils =
    List.filter_map
      (fun s ->
        if String.equal s.Stencil.name producer then None
        else if String.equal s.Stencil.name consumer then Some fused
        else Some s)
      p.Program.stencils
  in
  let p' = { p with Program.stencils } in
  Program.validate_exn p';
  p'

let fuse_all ?(max_body_size = max_int) (p : Program.t) =
  let before = List.length p.Program.stencils in
  let rec go p fused =
    let candidate =
      List.find_map
        (fun (s : Stencil.t) ->
          let producer = s.Stencil.name in
          match Program.consumers p producer with
          | [ consumer ] -> (
              match can_fuse p ~producer ~consumer with
              | Ok () ->
                  let u = Option.get (Program.find_stencil p producer) in
                  let v = Option.get (Program.find_stencil p consumer) in
                  let size =
                    Expr.size (Expr.inline_lets u.Stencil.body)
                    * List.length (Stencil.accesses_of_field v producer)
                    + Expr.size (Expr.inline_lets v.Stencil.body)
                  in
                  if size <= max_body_size then Some (producer, consumer) else None
              | Error _ -> None)
          | _ -> None)
        (Program.topological_stencils p)
    in
    match candidate with
    | None -> (p, List.rev fused)
    | Some (producer, consumer) ->
        go (fuse_pair p ~producer ~consumer) ((producer, consumer) :: fused)
  in
  let p', fused_pairs = go p [] in
  (p', { fused_pairs; stencils_before = before; stencils_after = List.length p'.Program.stencils })

let interior_radius (p : Program.t) = Sf_analysis.Influence.max_radius p

let equivalence_radius ~original ~fused =
  max (interior_radius original) (interior_radius fused)

let equivalence_radii ~original ~fused =
  List.map2 max (Sf_analysis.Influence.radius original) (Sf_analysis.Influence.radius fused)
