open Sf_ir

type report = {
  fused_pairs : (string * string) list;
  stencils_before : int;
  stencils_after : int;
}

let can_fuse (p : Program.t) ~producer ~consumer =
  match (Program.find_stencil p producer, Program.find_stencil p consumer) with
  | None, _ -> Error (Printf.sprintf "%s is not a stencil" producer)
  | _, None -> Error (Printf.sprintf "%s is not a stencil" consumer)
  | Some u, Some v ->
      if List.exists (String.equal producer) p.Program.outputs then
        Error (Printf.sprintf "%s is written to off-chip memory" producer)
      else begin
        match Program.consumers p producer with
        | [ c ] when String.equal c consumer ->
            if not (Stencil.equal_boundaries u v) then
              Error "boundary conditions differ"
            else Ok ()
        | [ _ ] -> Error (Printf.sprintf "%s does not feed %s" producer consumer)
        | consumers ->
            Error
              (Printf.sprintf "%s has %d consumers (container degree > 2)" producer
                 (List.length consumers))
      end

(* The fused body as a hash-consed DAG. Substitute u's body (shifted by
   the access offset) for each access to the producer. Full-rank fields
   shift componentwise; lower-dimensional fields shift only on the axes
   they span. Substitution happens on the DAG: the shifted producer body
   is built once per distinct offset, shifted copies share whatever nodes
   coincide (constants, overlapping taps), and [Dag.extract] afterwards
   turns that sharing back into let bindings — so fusion no longer loses
   the sharing that the paper delegates to "the downstream compiler's
   CSE". *)
let fused_dag (p : Program.t) (u : Stencil.t) (v : Stencil.t) ~producer =
  let u_root = Dag.of_body u.Stencil.body in
  let rank = Program.rank p in
  let shifted : (int list, Dag.t) Hashtbl.t = Hashtbl.create 8 in
  let shift_u delta =
    match Hashtbl.find_opt shifted delta with
    | Some d -> d
    | None ->
        let d =
          Dag.map_accesses
            (fun ~field ~offsets ->
              let axes = Program.field_axes p field in
              if List.length axes = rank then
                Dag.access ~field ~offsets:(List.map2 ( + ) offsets delta)
              else
                Dag.access ~field
                  ~offsets:
                    (List.map2 (fun o axis -> o + List.nth delta axis) offsets axes))
            u_root
        in
        Hashtbl.replace shifted delta d;
        d
  in
  Dag.map_accesses
    (fun ~field ~offsets ->
      if String.equal field producer then shift_u offsets
      else Dag.access ~field ~offsets)
    (Dag.of_body v.Stencil.body)

let fuse_pair (p : Program.t) ~producer ~consumer =
  (match can_fuse p ~producer ~consumer with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fusion.fuse_pair: " ^ m));
  let u = Option.get (Program.find_stencil p producer) in
  let v = Option.get (Program.find_stencil p consumer) in
  let fused_body = Dag.extract (fused_dag p u v ~producer) in
  let merged_boundary =
    let from_u =
      List.filter (fun (f, _) -> not (List.mem_assoc f v.Stencil.boundary)) u.Stencil.boundary
    in
    v.Stencil.boundary @ from_u
  in
  let fused =
    Stencil.make
      ~boundary:
        (List.filter (fun (f, _) -> not (String.equal f producer)) merged_boundary)
      ~shrink:v.Stencil.shrink ~name:consumer fused_body
  in
  let stencils =
    List.filter_map
      (fun s ->
        if String.equal s.Stencil.name producer then None
        else if String.equal s.Stencil.name consumer then Some fused
        else Some s)
      p.Program.stencils
  in
  let p' = { p with Program.stencils } in
  Program.validate_exn p';
  p'

let fuse_all ?(max_body_size = max_int) (p : Program.t) =
  let before = List.length p.Program.stencils in
  let rec go p fused =
    let candidate =
      List.find_map
        (fun (s : Stencil.t) ->
          let producer = s.Stencil.name in
          match Program.consumers p producer with
          | [ consumer ] -> (
              match can_fuse p ~producer ~consumer with
              | Ok () ->
                  let u = Option.get (Program.find_stencil p producer) in
                  let v = Option.get (Program.find_stencil p consumer) in
                  (* Size the candidate by the *work* of the actual fused
                     DAG — each shared node counted once — instead of the
                     historical inlined-tree estimate, which rejected
                     fusions whose blow-up is purely textual. Hash-consing
                     makes building the candidate body cheap, and a later
                     [fuse_pair] on the same edge replays it from the memo
                     table. *)
                  let size = Dag.work_size (fused_dag p u v ~producer) in
                  if size <= max_body_size then Some (producer, consumer) else None
              | Error _ -> None)
          | _ -> None)
        (Program.topological_stencils p)
    in
    match candidate with
    | None -> (p, List.rev fused)
    | Some (producer, consumer) ->
        go (fuse_pair p ~producer ~consumer) ((producer, consumer) :: fused)
  in
  let p', fused_pairs = go p [] in
  (p', { fused_pairs; stencils_before = before; stencils_after = List.length p'.Program.stencils })

let interior_radius (p : Program.t) = Sf_analysis.Influence.max_radius p

let equivalence_radius ~original ~fused =
  max (interior_radius original) (interior_radius fused)

let equivalence_radii ~original ~fused =
  List.map2 max (Sf_analysis.Influence.radius original) (Sf_analysis.Influence.radius fused)
