(** General-purpose graph transformations (paper, Sec. V-A, Fig. 10).

    Together with {!Fusion}, these are the rewrites StencilFlow uses to
    extract analyzable stencil programs from externally produced SDFGs
    and to reshape them for hardware:

    - {b MapFission} splits a parallel subgraph (a state holding several
      stencil library nodes) into multiple states, introducing transient
      off-chip storage between the components;
    - {b state fusion} is its inverse: consecutive single-stencil states
      merge back into one dataflow state, turning the temporaries back
      into streams — this is the canonicalization used before extracting
      the stencil program;
    - {b NestDim} reschedules parametrically-parallel stencils over a new
      outer dimension: a 2D program becomes a 3D program whose original
      inputs span only the inner axes. *)

val map_fission : Sdfg.t -> Sdfg.t
(** Split every state with more than one stencil library node into one
    state per stencil, in topological order. Stream containers crossing
    the new state boundaries become transient off-chip arrays. *)

val state_fusion : Sdfg.t -> Sdfg.t
(** Merge all states into a single dataflow state, rebuilding streams
    between stencils (inverse of {!map_fission} up to stream depths). *)

val nest_dim : Sf_ir.Program.t -> extent:int -> Sf_ir.Program.t
(** Lift a program to one more (outer) dimension of the given extent:
    every stencil iterates the new axis, every offset list gains a
    leading 0, and original input fields span only the original axes, so
    each outer slice computes exactly what the original program computed
    (validated by tests). Raises [Invalid_argument] on 3D inputs (the DSL
    supports at most 3 dimensions). *)
