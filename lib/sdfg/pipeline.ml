open Sf_ir

type pass = {
  pass_name : string;
  description : string;
  apply : Program.t -> Program.t;
  preserves_shape : bool;
}

let fuse ?max_body_size () =
  {
    pass_name = "stencil-fusion";
    description = "aggressively fuse producer/consumer stencils (Sec. V-B)";
    apply = (fun p -> fst (Fusion.fuse_all ?max_body_size p));
    preserves_shape = true;
  }

let fold_and_cse ?min_size () =
  {
    pass_name = "fold-cse";
    description = "constant folding and common subexpression elimination";
    apply = (fun p -> Opt.optimize ?min_size p);
    preserves_shape = true;
  }

let vectorize w =
  {
    pass_name = Printf.sprintf "vectorize-%d" w;
    description = "set the vectorization width (Sec. IV-C)";
    apply = (fun p -> Sf_analysis.Vectorize.apply p w);
    preserves_shape = true;
  }

let nest ~extent =
  {
    pass_name = Printf.sprintf "nest-dim-%d" extent;
    description = "lift the program to one more outer dimension (NestDim)";
    apply = (fun p -> Transform.nest_dim p ~extent);
    preserves_shape = false;
  }

let custom ~name ?(description = "user transformation") ?(preserves_shape = true) apply =
  { pass_name = name; description; apply; preserves_shape }

type entry = {
  applied : string;
  stencils_before : int;
  stencils_after : int;
  flops_before : int;
  flops_after : int;
  latency_before : int;
  latency_after : int;
  verified : bool option;
}

let flops_per_cell p = (Sf_analysis.Op_count.of_program p).Sf_analysis.Op_count.flops_per_cell
let latency p = (Sf_analysis.Delay_buffer.analyze p).Sf_analysis.Delay_buffer.latency_cycles

(* Interior-cell comparison of two same-shape programs on shared random
   probe inputs; both programs' combined access radius bounds the region
   where boundary handling may differ. *)
let probes_match before after =
  let radii = Fusion.equivalence_radii ~original:before ~fused:after in
  let shape = before.Program.shape in
  if not (List.for_all2 (fun e r -> e > 2 * r) shape radii) then None
  else begin
    let inputs = Sf_reference.Interp.random_inputs before in
    let ra = Sf_reference.Interp.run before ~inputs in
    let rb = Sf_reference.Interp.run after ~inputs in
    let equal = ref true in
    List.iter
      (fun (name, (r : Sf_reference.Interp.result)) ->
        match List.assoc_opt name rb with
        | None -> equal := false
        | Some r' ->
            let rec scan prefix = function
              | [] ->
                  let idx = List.rev prefix in
                  if
                    List.for_all2
                      (fun i (e, r) -> i >= r && i < e - r)
                      idx (List.combine shape radii)
                  then begin
                    let a = Sf_reference.Tensor.get r.Sf_reference.Interp.tensor idx in
                    let b = Sf_reference.Tensor.get r'.Sf_reference.Interp.tensor idx in
                    if
                      not
                        ((Float.is_nan a && Float.is_nan b)
                        || Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a))
                    then equal := false
                  end
              | e :: rest ->
                  for i = 0 to e - 1 do
                    scan (i :: prefix) rest
                  done
            in
            scan [] shape)
      ra;
    Some !equal
  end

module Diag = Sf_support.Diag

let validation_diags ~context p =
  match Program.validate p with
  | Ok () -> []
  | Error msgs ->
      List.map (fun m -> Diag.error ~notes:[ context ] ~code:Diag.Code.validation m) msgs

(* Internal control flow for [run]. *)
exception Failed of Diag.t list

let run ?(verify = true) ?(max_probe_cells = 65536) passes program =
  match
    (match validation_diags ~context:"before the optimization pipeline" program with
    | [] -> ()
    | ds -> raise (Failed ds));
    let entries = ref [] in
    let final =
      List.fold_left
        (fun p pass ->
          let p' =
            try pass.apply p
            with
            | (Invalid_argument m | Failure m) ->
              raise
                (Failed
                   [
                     Diag.errorf ~code:Diag.Code.transform "pass %s failed: %s" pass.pass_name
                       m;
                   ])
          in
          (match validation_diags ~context:("after pass " ^ pass.pass_name) p' with
          | [] -> ()
          | ds -> raise (Failed ds));
          let verified =
            if
              verify && pass.preserves_shape
              && Program.cells p <= max_probe_cells
            then probes_match p p'
            else None
          in
          (match verified with
          | Some false ->
              raise
                (Failed
                   [
                     Diag.errorf ~code:Diag.Code.pass_verification
                       "pass %s changed interior results of %s" pass.pass_name
                       p.Program.name;
                   ])
          | Some true | None -> ());
          entries :=
            {
              applied = pass.pass_name;
              stencils_before = List.length p.Program.stencils;
              stencils_after = List.length p'.Program.stencils;
              flops_before = flops_per_cell p;
              flops_after = flops_per_cell p';
              latency_before = latency p;
              latency_after = latency p';
              verified;
            }
            :: !entries;
          p')
        program passes
    in
    (final, List.rev !entries)
  with
  | result -> Ok result
  | exception Failed ds -> Error ds

let default_pipeline = [ fuse (); fold_and_cse () ]

let pp_entry fmt e =
  Format.fprintf fmt "%s: stencils %d -> %d, flops/cell %d -> %d, L %d -> %d%s" e.applied
    e.stencils_before e.stencils_after e.flops_before e.flops_after e.latency_before
    e.latency_after
    (match e.verified with
    | Some true -> " [verified]"
    | Some false -> " [MISMATCH]"
    | None -> "")
