(** A data-centric dataflow representation modelled on DaCe's Stateful
    DataFlow multiGraphs (paper, Sec. V).

    Data movement (memlets on edges) is explicit and separate from
    computation (tasklets) and from data containers (access nodes);
    acyclic dataflow graphs are nested inside states, and states form the
    control flow. Two extensions from the paper are included: {e library
    nodes} — here the [Stencil] node — which carry domain-specific
    semantics and expand into subgraphs, and {e pipeline scopes},
    annotated with initialization and drain phases, which wrap the
    per-cell processing of an expanded stencil (Fig. 12). *)

type storage =
  | Off_chip  (** DRAM-backed array. *)
  | On_chip  (** BRAM/register buffer (shift registers, Fig. 6). *)
  | Stream of { depth : int }  (** FIFO channel with a fixed depth. *)

type container = {
  cname : string;
  dtype : Sf_ir.Dtype.t;
  extent : int list;  (** [] for scalars. *)
  storage : storage;
  transient : bool;  (** Not visible outside the SDFG. *)
  axes_hint : int list option;
      (** Which iteration axes a lower-dimensional container spans
          (metadata recorded at lowering time; extents alone are
          ambiguous when axes share an extent). *)
}

type node_id = int

type node =
  | Access of string  (** Read/write point for a container. *)
  | Tasklet of { label : string; body : Sf_ir.Expr.body }
  | Stencil_node of Sf_ir.Stencil.t  (** The domain-specific library node. *)
  | Pipeline of {
      label : string;
      iteration : int list;  (** Iteration-space extents of the scope. *)
      init_cycles : int;
      drain_cycles : int;
      body : graph;
    }
  | Unrolled_map of { label : string; width : int; body : graph }
      (** Fully unrolled parametric scope (the shift phase trapezoids). *)

and edge = { src : node_id; dst : node_id; data : string; subset : string }
(** A memlet: which container moves and a textual description of the
    accessed subset (offsets, ranges). *)

and graph = { nodes : (node_id * node) list; edges : edge list }

type state = { slabel : string; body : graph }

type t = {
  name : string;
  containers : container list;
  states : state list;  (** Executed in sequence (linear control flow). *)
}

val empty_graph : graph
val add_node : graph -> node -> graph * node_id
val add_edge : graph -> src:node_id -> dst:node_id -> data:string -> subset:string -> graph

val find_container : t -> string -> container option

val of_program : Sf_ir.Program.t -> t
(** Lower a stencil program into a single-state SDFG: one [Stencil_node]
    per stencil, access nodes for every container, stream-typed
    containers on inter-stencil edges with the delay-buffer depths of
    Sec. IV-B, and off-chip containers for program inputs and outputs. *)

val extract_program : t -> (Sf_ir.Program.t, string) result
(** The canonicalization direction of Sec. VII: recover a stencil program
    from an SDFG whose states contain stencil library nodes. Inverse of
    {!of_program} up to stream depths. *)

val expand_library_nodes : t -> t
(** Expand every [Stencil_node] into the Fig. 12 pipeline scope: a shift
    phase (unrolled map moving each shift-register entry by W), an update
    phase reading new values from the input streams, and a compute phase
    feeding the computation tasklet guarded by an output-write tasklet.
    Shift-register containers are added per buffered field. *)

val validate : t -> (unit, string list) result
(** Structural invariants: unique/known container names, edges reference
    existing nodes, access nodes name known containers, graphs acyclic,
    tasklet inputs available. *)

val stats : t -> int * int * int
(** (states, nodes, edges) counted recursively — used by tests and by the
    transformation reports. *)

val pp : Format.formatter -> t -> unit
