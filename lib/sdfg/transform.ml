open Sf_ir

let program_of_sdfg t =
  match Sdfg.extract_program t with
  | Ok p -> p
  | Error m -> invalid_arg ("Transform: cannot recover stencil program: " ^ m)

let map_fission (t : Sdfg.t) =
  let p = program_of_sdfg t in
  let full_shape = p.Program.shape in
  let containers =
    List.map
      (fun (f : Field.t) ->
        {
          Sdfg.cname = f.Field.name;
          dtype = f.Field.dtype;
          extent = Field.extent f ~shape:full_shape;
          storage = Sdfg.Off_chip;
          transient = false;
          axes_hint = Some f.Field.axes;
        })
      p.Program.inputs
    @ List.map
        (fun (s : Stencil.t) ->
          {
            Sdfg.cname = s.Stencil.name;
            dtype = p.Program.dtype;
            extent = full_shape;
            storage = Sdfg.Off_chip;
            axes_hint = None;
            (* Temporaries introduced by fission are transient; declared
               program outputs stay externally visible. *)
            transient = not (List.exists (String.equal s.Stencil.name) p.Program.outputs);
          })
        p.Program.stencils
  in
  let state_of_stencil (s : Stencil.t) =
    let g = ref Sdfg.empty_graph in
    let node n =
      let g', id = Sdfg.add_node !g n in
      g := g';
      id
    in
    let sid = node (Sdfg.Stencil_node s) in
    List.iter
      (fun field ->
        let aid = node (Sdfg.Access field) in
        g := Sdfg.add_edge !g ~src:aid ~dst:sid ~data:field ~subset:"[full]")
      (Stencil.input_fields s);
    let out = node (Sdfg.Access s.Stencil.name) in
    g := Sdfg.add_edge !g ~src:sid ~dst:out ~data:s.Stencil.name ~subset:"[full]";
    { Sdfg.slabel = "state_" ^ s.Stencil.name; body = !g }
  in
  {
    Sdfg.name = t.Sdfg.name;
    containers =
      containers
      @ [
          {
            Sdfg.cname = Printf.sprintf "__sym_W_%d" p.Program.vector_width;
            dtype = Dtype.I32;
            extent = [];
            storage = Sdfg.On_chip;
            transient = true;
            axes_hint = None;
          };
        ];
    states = List.map state_of_stencil (Program.topological_stencils p);
  }

let state_fusion (t : Sdfg.t) = Sdfg.of_program (program_of_sdfg t)

let nest_dim (p : Program.t) ~extent =
  if Program.rank p >= 3 then
    invalid_arg "Transform.nest_dim: programs are limited to 3 dimensions";
  if extent <= 0 then invalid_arg "Transform.nest_dim: non-positive extent";
  let old_rank = Program.rank p in
  let shape = extent :: p.Program.shape in
  (* Original inputs keep their data but now span only the inner axes. *)
  let inputs =
    List.map
      (fun (f : Field.t) -> { f with Field.axes = List.map (fun a -> a + 1) f.Field.axes })
      p.Program.inputs
  in
  (* Accesses to stencil-produced fields become full new-rank accesses
     with a leading 0; accesses to inputs are unchanged. *)
  let lift_expr e =
    Expr.map_accesses
      (fun ~field ~offsets ->
        match Program.find_stencil p field with
        | Some _ when List.length offsets = old_rank -> Expr.Access { field; offsets = 0 :: offsets }
        | Some _ | None -> Expr.Access { field; offsets })
      e
  in
  let stencils =
    List.map
      (fun (s : Stencil.t) ->
        let body =
          {
            Expr.lets = List.map (fun (n, e) -> (n, lift_expr e)) s.Stencil.body.Expr.lets;
            result = lift_expr s.Stencil.body.Expr.result;
          }
        in
        { s with Stencil.body })
      p.Program.stencils
  in
  let p' = { p with Program.shape; inputs; stencils } in
  Program.validate_exn p';
  p'
