(** Spatial stencil fusion (paper, Sec. V-B, Fig. 11).

    On a spatial architecture every stencil already runs in a fully
    "fused" global pipeline, so fusing two stencils does not change the
    schedule; instead it combines initialization phases (shortening the
    critical path when the pair lies on it), merges internal buffers for
    shared fields, coalesces delay buffers, exposes common-subexpression
    elimination, and coarsens nodes to improve the useful-logic ratio.

    Preconditions for fusing producer [u] into consumer [v] (paper):
    - [u] and [v] operate on the same iteration shape (always true inside
      one program) with the same boundary-condition definitions;
    - the connecting container has degree 2 — [u] has exactly one
      consumer, so all stencils keep a single output;
    - no other instance of [u] exists — [u] is not written to off-chip
      memory — so removing it adds no extra memory traffic.

    The rewrite substitutes, for each access [u\[d\]] in [v], the body of
    [u] with every access shifted by [d]. Fused and unfused programs
    agree exactly on cells where no boundary condition fires; at boundary
    cells the fused program applies predication at the combined offsets,
    as generated hardware does. *)

type report = {
  fused_pairs : (string * string) list;  (** (producer, consumer) in order. *)
  stencils_before : int;
  stencils_after : int;
}

val can_fuse : Sf_ir.Program.t -> producer:string -> consumer:string -> (unit, string) result
(** Check the preconditions, returning the violated one. *)

val fuse_pair : Sf_ir.Program.t -> producer:string -> consumer:string -> Sf_ir.Program.t
(** Fuse one edge; raises [Invalid_argument] if {!can_fuse} fails. The
    consumer keeps its name; the producer disappears. The substitution
    runs on the hash-consed DAG and the fused body is re-extracted
    ({!Sf_ir.Dag.extract}), so sharing between the inlined producer
    copies survives as let bindings instead of being duplicated. *)

val fuse_all : ?max_body_size:int -> Sf_ir.Program.t -> Sf_ir.Program.t * report
(** Aggressive fusion to fixpoint, as used for the paper's experiments.
    [max_body_size] (default unlimited) bounds the {e work} size of the
    candidate fused body — distinct DAG nodes, each shared value counted
    once ({!Sf_ir.Dag.work_size}) — which is what the pipeline actually
    instantiates; purely textual blow-up from repeated substitution no
    longer vetoes a profitable fusion. *)

val interior_radius : Sf_ir.Program.t -> int
(** The program's accumulated influence radius
    ({!Sf_analysis.Influence.max_radius}): cells at least this far from
    every domain face never trigger boundary handling anywhere in the
    DAG. *)

val equivalence_radii : original:Sf_ir.Program.t -> fused:Sf_ir.Program.t -> int list
(** Per-axis version of {!equivalence_radius} — tighter for programs with
    axes the stencils never offset along (e.g. the vertical axis of
    horizontal diffusion). *)

val equivalence_radius : original:Sf_ir.Program.t -> fused:Sf_ir.Program.t -> int
(** Cells at least this far from every face agree exactly between the two
    program versions. The maximum of both influences is required: fusing
    a producer that reads only scalar or lower-dimensional fields absorbs
    the consumer's offsets, so the fused program's own radius can
    underestimate where the {e unfused} program applied its boundary
    conditions. *)
