(** Transformation pipelines with built-in verification.

    DaCe's workflow (paper, Sec. V) separates program definition from
    optimization: performance engineers compose graph-rewriting
    transformations, and adaptations are recorded separately from the
    source. This module provides that workflow over stencil programs: a
    {!pass} is a named rewrite; {!run} applies a list of passes in order,
    records what each one changed (stencil count, op count, latency), and
    optionally {e verifies} each step by executing the program before and
    after on probe inputs and comparing results on interior cells (passes
    that legally change boundary behaviour, like fusion, still agree
    there). *)

type pass = {
  pass_name : string;
  description : string;
  apply : Sf_ir.Program.t -> Sf_ir.Program.t;
  preserves_shape : bool;
      (** Whether the iteration space (and thus cell-wise comparison) is
          preserved — false for {!nest}. *)
}

val fuse : ?max_body_size:int -> unit -> pass
(** Aggressive stencil fusion (Sec. V-B). *)

val fold_and_cse : ?min_size:int -> unit -> pass
(** Constant folding + common subexpression elimination. *)

val vectorize : int -> pass
(** Set the vectorization width (Sec. IV-C). *)

val nest : extent:int -> pass
(** Lift to one more outer dimension (NestDim). Not verifiable cell-wise
    (the shape changes); see {!Transform.nest_dim} tests for its own
    correctness property. *)

val custom :
  name:string -> ?description:string -> ?preserves_shape:bool ->
  (Sf_ir.Program.t -> Sf_ir.Program.t) -> pass
(** User-extensible transformations, as in DaCe. *)

type entry = {
  applied : string;
  stencils_before : int;
  stencils_after : int;
  flops_before : int;  (** Per cell. *)
  flops_after : int;
  latency_before : int;
  latency_after : int;
  verified : bool option;
      (** [Some true] when probe execution matched; [None] when
          verification was skipped (disabled, shape-changing pass, domain
          too large, or no interior cells). *)
}

val run :
  ?verify:bool -> ?max_probe_cells:int -> pass list -> Sf_ir.Program.t ->
  (Sf_ir.Program.t * entry list, Sf_support.Diag.t list) result
(** Apply the passes in order. [verify] (default true) compares interior
    cells on random probe inputs after each shape-preserving pass,
    skipping programs larger than [max_probe_cells] (default 65536).
    Failures are diagnostics: validation problems [SF0301], a pass
    raising [SF0302], and a verification mismatch [SF0801]. *)

val default_pipeline : pass list
(** The paper's experiment configuration: aggressive fusion followed by
    cleanup ([fuse (); fold_and_cse ()]). *)

val pp_entry : Format.formatter -> entry -> unit
