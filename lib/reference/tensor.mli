(** Dense row-major tensors holding field data.

    Used by the reference interpreter and by the simulator's memory units.
    A 0-dimensional tensor (extent []) holds a single scalar. *)

type t = { extent : int list; data : float array }

val create : ?init:float -> int list -> t
val of_fn : int list -> (int list -> float) -> t
(** Build from a function of the multi-index. *)

val of_array : int list -> float array -> t
(** Validates that the array length matches the extent product. *)

val num_elements : t -> int
val rank : t -> int

val flat_index : t -> int list -> int
(** Row-major flattening; raises [Invalid_argument] when out of bounds or
    on rank mismatch. *)

val get : t -> int list -> float
val set : t -> int list -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val in_bounds : t -> int list -> bool
val copy : t -> t
val fill : t -> float -> unit

val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination; extents must match. *)

val max_abs_diff : t -> t -> float
(** Largest absolute elementwise difference (for validation). *)

val equal_approx : ?rel:float -> ?abs:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

val slice : t -> origin:int list -> extent:int list -> t
(** Copy out a rectangular sub-tensor; raises [Invalid_argument] when the
    region exceeds the bounds. *)

val blit_region :
  src:t -> src_origin:int list -> dst:t -> dst_origin:int list -> extent:int list -> unit
(** Copy a rectangular region between tensors of equal rank. *)

val fingerprint : t -> Sf_support.Fingerprint.t
(** Content digest of extent and data (IEEE bit patterns), used to key
    simulation results on their input tensors. *)
