(** Sequential reference interpreter (paper, Sec. VI-C).

    Stencil evaluations execute one at a time in topological order — no
    fusion or inter-stencil parallelism — over real arrays. This is the
    oracle against which the spatial simulator's streamed results are
    validated, and doubles as a measured CPU baseline.

    Boundary semantics match the DSL: per-dimension out-of-bounds reads
    are replaced according to the input's boundary condition; a stencil
    with [shrink] marks every output cell whose computation touched an
    out-of-bounds value as invalid. Comparisons yield 1.0 / 0.0 and any
    non-zero value is true, matching the generated hardware's predicated
    float pipeline. *)

type result = {
  tensor : Tensor.t;
  valid : bool array;
      (** Per-cell validity (row-major); all-true unless the producing
          stencil declares [shrink]. *)
}

exception Runtime_error of string

val eval_expr :
  lookup:(field:string -> offsets:int list -> float) ->
  env:(string -> float option) ->
  Sf_ir.Expr.t ->
  float
(** Evaluate one expression given an access oracle and a let-binding
    environment. Exposed for testing and for the simulator's compute
    stage, which shares these semantics. *)

val run_all : Sf_ir.Program.t -> inputs:(string * Tensor.t) list -> (string * result) list
(** Execute every stencil; returns results for all stencils in topological
    order. Raises {!Runtime_error} on missing or mis-shaped inputs. *)

val run : Sf_ir.Program.t -> inputs:(string * Tensor.t) list -> (string * result) list
(** Like {!run_all} but restricted to the program's declared outputs. *)

val random_inputs : ?seed:int -> Sf_ir.Program.t -> (string * Tensor.t) list
(** Deterministic pseudo-random input data in [-1, 1] for every declared
    input field — convenient for tests and validation runs. *)

val input_extent : Sf_ir.Program.t -> Sf_ir.Field.t -> int list
(** The tensor extent a given input field must have. *)
