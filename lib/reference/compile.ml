open Sf_ir

type 'ctx fn = 'ctx -> float

let truthy v = v <> 0.
let of_bool b = if b then 1. else 0.

let rec expr ~access ~env e =
  match e with
  | Expr.Const c -> fun _ -> c
  | Expr.Access { field; offsets } -> access ~field ~offsets
  | Expr.Var v -> (
      match env v with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Compile.expr: unbound variable %s" v))
  | Expr.Unary (Expr.Neg, x) ->
      let cx = expr ~access ~env x in
      fun ctx -> -.cx ctx
  | Expr.Unary (Expr.Not, x) ->
      let cx = expr ~access ~env x in
      fun ctx -> of_bool (not (truthy (cx ctx)))
  | Expr.Binary (op, x, y) -> (
      let cx = expr ~access ~env x and cy = expr ~access ~env y in
      match op with
      | Expr.Add -> fun ctx -> cx ctx +. cy ctx
      | Expr.Sub -> fun ctx -> cx ctx -. cy ctx
      | Expr.Mul -> fun ctx -> cx ctx *. cy ctx
      | Expr.Div -> fun ctx -> cx ctx /. cy ctx
      | Expr.Lt -> fun ctx -> of_bool (cx ctx < cy ctx)
      | Expr.Le -> fun ctx -> of_bool (cx ctx <= cy ctx)
      | Expr.Gt -> fun ctx -> of_bool (cx ctx > cy ctx)
      | Expr.Ge -> fun ctx -> of_bool (cx ctx >= cy ctx)
      | Expr.Eq -> fun ctx -> of_bool (cx ctx = cy ctx)
      | Expr.Ne -> fun ctx -> of_bool (cx ctx <> cy ctx)
      (* Non-short-circuit, as in the predicated hardware pipeline. *)
      | Expr.And ->
          fun ctx ->
            let a = truthy (cx ctx) in
            let b = truthy (cy ctx) in
            of_bool (a && b)
      | Expr.Or ->
          fun ctx ->
            let a = truthy (cx ctx) in
            let b = truthy (cy ctx) in
            of_bool (a || b))
  | Expr.Select { cond; if_true; if_false } ->
      let cc = expr ~access ~env cond in
      let ct = expr ~access ~env if_true in
      let cf = expr ~access ~env if_false in
      (* Both branches evaluate (predication), then one is selected. *)
      fun ctx ->
        let c = cc ctx in
        let t = ct ctx in
        let f = cf ctx in
        if truthy c then t else f
  | Expr.Call (f, args) -> (
      let cargs = List.map (expr ~access ~env) args in
      match (f, cargs) with
      | Expr.Sqrt, [ x ] -> fun ctx -> Float.sqrt (x ctx)
      | Expr.Abs, [ x ] -> fun ctx -> Float.abs (x ctx)
      | Expr.Exp, [ x ] -> fun ctx -> Float.exp (x ctx)
      | Expr.Log, [ x ] -> fun ctx -> Float.log (x ctx)
      | Expr.Sin, [ x ] -> fun ctx -> Float.sin (x ctx)
      | Expr.Cos, [ x ] -> fun ctx -> Float.cos (x ctx)
      | Expr.Floor, [ x ] -> fun ctx -> Float.floor (x ctx)
      | Expr.Ceil, [ x ] -> fun ctx -> Float.ceil (x ctx)
      | Expr.Pow, [ x; y ] -> fun ctx -> Float.pow (x ctx) (y ctx)
      | Expr.Min, [ x; y ] -> fun ctx -> Float.min (x ctx) (y ctx)
      | Expr.Max, [ x; y ] -> fun ctx -> Float.max (x ctx) (y ctx)
      | ( ( Expr.Sqrt | Expr.Abs | Expr.Exp | Expr.Log | Expr.Sin | Expr.Cos | Expr.Floor
          | Expr.Ceil | Expr.Pow | Expr.Min | Expr.Max ),
          _ ) ->
          invalid_arg (Printf.sprintf "Compile.expr: wrong arity for %s" (Expr.func_name f)))

(* Bodies compile through the hash-consed DAG: every distinct node gets a
   slot and is evaluated exactly once per cell, in topological (id)
   order, so shared values — whether shared through lets or structurally
   — are computed once and fanned out. Variables referencing a later (or
   missing) binding stay unresolved [Var] leaves in the DAG and are
   rejected at compile time, exactly like the historical
   restricted-environment compiler. Bindings the result never reads are
   still evaluated (their predicated accesses keep feeding the validity
   mask). *)
let body ~access (b : Expr.body) =
  let named, root = Dag.of_body_named b in
  let nodes =
    let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    List.concat_map Dag.topo (List.map snd named @ [ root ])
    |> List.filter (fun t ->
           if Hashtbl.mem seen (Dag.id t) then false
           else begin
             Hashtbl.add seen (Dag.id t) ();
             true
           end)
    |> List.sort Dag.compare
  in
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri (fun i t -> Hashtbl.replace slot_of (Dag.id t) i) nodes;
  let n = List.length nodes in
  let values = Array.make (max 1 n) 0. in
  let slot t = Hashtbl.find slot_of (Dag.id t) in
  let compile_node t : 'ctx fn =
    match Dag.view t with
    | Dag.Const c -> fun _ -> c
    | Dag.Access { field; offsets } -> access ~field ~offsets
    | Dag.Var v -> invalid_arg (Printf.sprintf "Compile.expr: unbound variable %s" v)
    | Dag.Unary (Expr.Neg, x) ->
        let sx = slot x in
        fun _ -> -.values.(sx)
    | Dag.Unary (Expr.Not, x) ->
        let sx = slot x in
        fun _ -> of_bool (not (truthy values.(sx)))
    | Dag.Binary (op, x, y) -> (
        let sx = slot x and sy = slot y in
        match op with
        | Expr.Add -> fun _ -> values.(sx) +. values.(sy)
        | Expr.Sub -> fun _ -> values.(sx) -. values.(sy)
        | Expr.Mul -> fun _ -> values.(sx) *. values.(sy)
        | Expr.Div -> fun _ -> values.(sx) /. values.(sy)
        | Expr.Lt -> fun _ -> of_bool (values.(sx) < values.(sy))
        | Expr.Le -> fun _ -> of_bool (values.(sx) <= values.(sy))
        | Expr.Gt -> fun _ -> of_bool (values.(sx) > values.(sy))
        | Expr.Ge -> fun _ -> of_bool (values.(sx) >= values.(sy))
        | Expr.Eq -> fun _ -> of_bool (values.(sx) = values.(sy))
        | Expr.Ne -> fun _ -> of_bool (values.(sx) <> values.(sy))
        (* Non-short-circuit, as in the predicated hardware pipeline (both
           operand slots are unconditionally evaluated anyway). *)
        | Expr.And -> fun _ -> of_bool (truthy values.(sx) && truthy values.(sy))
        | Expr.Or -> fun _ -> of_bool (truthy values.(sx) || truthy values.(sy)))
    | Dag.Select { cond; if_true; if_false } ->
        (* Both branch slots evaluate (predication), then one is selected. *)
        let sc = slot cond and st = slot if_true and sf = slot if_false in
        fun _ -> if truthy values.(sc) then values.(st) else values.(sf)
    | Dag.Call (f, args) -> (
        match (f, List.map slot args) with
        | Expr.Sqrt, [ x ] -> fun _ -> Float.sqrt values.(x)
        | Expr.Abs, [ x ] -> fun _ -> Float.abs values.(x)
        | Expr.Exp, [ x ] -> fun _ -> Float.exp values.(x)
        | Expr.Log, [ x ] -> fun _ -> Float.log values.(x)
        | Expr.Sin, [ x ] -> fun _ -> Float.sin values.(x)
        | Expr.Cos, [ x ] -> fun _ -> Float.cos values.(x)
        | Expr.Floor, [ x ] -> fun _ -> Float.floor values.(x)
        | Expr.Ceil, [ x ] -> fun _ -> Float.ceil values.(x)
        | Expr.Pow, [ x; y ] -> fun _ -> Float.pow values.(x) values.(y)
        | Expr.Min, [ x; y ] -> fun _ -> Float.min values.(x) values.(y)
        | Expr.Max, [ x; y ] -> fun _ -> Float.max values.(x) values.(y)
        | ( ( Expr.Sqrt | Expr.Abs | Expr.Exp | Expr.Log | Expr.Sin | Expr.Cos | Expr.Floor
            | Expr.Ceil | Expr.Pow | Expr.Min | Expr.Max ),
            _ ) ->
            invalid_arg (Printf.sprintf "Compile.expr: wrong arity for %s" (Expr.func_name f)))
  in
  let fns = Array.of_list (List.map compile_node nodes) in
  let root_slot = slot root in
  fun ctx ->
    for i = 0 to n - 1 do
      values.(i) <- (Array.unsafe_get fns i) ctx
    done;
    values.(root_slot)
