open Sf_ir

type 'ctx fn = 'ctx -> float

let truthy v = v <> 0.
let of_bool b = if b then 1. else 0.

let rec expr ~access ~env e =
  match e with
  | Expr.Const c -> fun _ -> c
  | Expr.Access { field; offsets } -> access ~field ~offsets
  | Expr.Var v -> (
      match env v with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Compile.expr: unbound variable %s" v))
  | Expr.Unary (Expr.Neg, x) ->
      let cx = expr ~access ~env x in
      fun ctx -> -.cx ctx
  | Expr.Unary (Expr.Not, x) ->
      let cx = expr ~access ~env x in
      fun ctx -> of_bool (not (truthy (cx ctx)))
  | Expr.Binary (op, x, y) -> (
      let cx = expr ~access ~env x and cy = expr ~access ~env y in
      match op with
      | Expr.Add -> fun ctx -> cx ctx +. cy ctx
      | Expr.Sub -> fun ctx -> cx ctx -. cy ctx
      | Expr.Mul -> fun ctx -> cx ctx *. cy ctx
      | Expr.Div -> fun ctx -> cx ctx /. cy ctx
      | Expr.Lt -> fun ctx -> of_bool (cx ctx < cy ctx)
      | Expr.Le -> fun ctx -> of_bool (cx ctx <= cy ctx)
      | Expr.Gt -> fun ctx -> of_bool (cx ctx > cy ctx)
      | Expr.Ge -> fun ctx -> of_bool (cx ctx >= cy ctx)
      | Expr.Eq -> fun ctx -> of_bool (cx ctx = cy ctx)
      | Expr.Ne -> fun ctx -> of_bool (cx ctx <> cy ctx)
      (* Non-short-circuit, as in the predicated hardware pipeline. *)
      | Expr.And ->
          fun ctx ->
            let a = truthy (cx ctx) in
            let b = truthy (cy ctx) in
            of_bool (a && b)
      | Expr.Or ->
          fun ctx ->
            let a = truthy (cx ctx) in
            let b = truthy (cy ctx) in
            of_bool (a || b))
  | Expr.Select { cond; if_true; if_false } ->
      let cc = expr ~access ~env cond in
      let ct = expr ~access ~env if_true in
      let cf = expr ~access ~env if_false in
      (* Both branches evaluate (predication), then one is selected. *)
      fun ctx ->
        let c = cc ctx in
        let t = ct ctx in
        let f = cf ctx in
        if truthy c then t else f
  | Expr.Call (f, args) -> (
      let cargs = List.map (expr ~access ~env) args in
      match (f, cargs) with
      | Expr.Sqrt, [ x ] -> fun ctx -> Float.sqrt (x ctx)
      | Expr.Abs, [ x ] -> fun ctx -> Float.abs (x ctx)
      | Expr.Exp, [ x ] -> fun ctx -> Float.exp (x ctx)
      | Expr.Log, [ x ] -> fun ctx -> Float.log (x ctx)
      | Expr.Sin, [ x ] -> fun ctx -> Float.sin (x ctx)
      | Expr.Cos, [ x ] -> fun ctx -> Float.cos (x ctx)
      | Expr.Floor, [ x ] -> fun ctx -> Float.floor (x ctx)
      | Expr.Ceil, [ x ] -> fun ctx -> Float.ceil (x ctx)
      | Expr.Pow, [ x; y ] -> fun ctx -> Float.pow (x ctx) (y ctx)
      | Expr.Min, [ x; y ] -> fun ctx -> Float.min (x ctx) (y ctx)
      | Expr.Max, [ x; y ] -> fun ctx -> Float.max (x ctx) (y ctx)
      | ( ( Expr.Sqrt | Expr.Abs | Expr.Exp | Expr.Log | Expr.Sin | Expr.Cos | Expr.Floor
          | Expr.Ceil | Expr.Pow | Expr.Min | Expr.Max ),
          _ ) ->
          invalid_arg (Printf.sprintf "Compile.expr: wrong arity for %s" (Expr.func_name f)))

let body ~access (b : Expr.body) =
  let slots : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri (fun i (name, _) -> Hashtbl.replace slots name i) b.Expr.lets;
  let values = Array.make (max 1 (List.length b.Expr.lets)) 0. in
  let env v =
    match Hashtbl.find_opt slots v with
    | Some i -> Some (fun _ -> values.(i))
    | None -> None
  in
  (* Bindings may only reference earlier bindings; restrict the
     environment while compiling each one. *)
  let compiled_lets =
    List.mapi
      (fun i (_, e) ->
        let env v =
          match Hashtbl.find_opt slots v with
          | Some j when j < i -> Some (fun _ -> values.(j))
          | Some _ | None -> None
        in
        expr ~access ~env e)
      b.Expr.lets
  in
  let compiled_result = expr ~access ~env b.Expr.result in
  fun ctx ->
    List.iteri (fun i c -> values.(i) <- c ctx) compiled_lets;
    compiled_result ctx
