(** Staged compilation of stencil expressions to closures.

    Evaluating the AST per cell costs a pattern match and environment
    lookup per node; since the DSL is closed and analyzable (paper,
    Sec. II), each stencil body can instead be compiled once into a tree
    of closures over an abstract per-cell context ['ctx]. The caller
    supplies the access compiler, which may pre-resolve everything that
    does not depend on the cell — which tensor or window backs a field,
    flattened offsets, boundary-condition constants — so the per-cell
    work is only loads and arithmetic. Both the reference interpreter
    and the simulator's stencil units execute through this path; the
    semantics are those of {!Interp.eval_expr} (non-short-circuit
    booleans, both select branches evaluated), which property tests
    enforce. *)

type 'ctx fn = 'ctx -> float

val expr :
  access:(field:string -> offsets:int list -> 'ctx fn) ->
  env:(string -> 'ctx fn option) ->
  Sf_ir.Expr.t ->
  'ctx fn
(** Compile one expression; [env] resolves let-bound variables. Raises
    [Invalid_argument] on unbound variables or bad arity. *)

val body : access:(field:string -> offsets:int list -> 'ctx fn) -> Sf_ir.Expr.body -> 'ctx fn
(** Compile a whole body through the hash-consed DAG ({!Sf_ir.Dag}):
    every distinct node — let-bound or structurally shared — gets a slot
    in a reused array and is evaluated exactly once per invocation, in
    topological order (so the result is not reentrant, matching the
    single-threaded execution engines). Bindings the result never reads
    are still evaluated: their predicated accesses keep feeding the
    validity mask. Raises [Invalid_argument] on unbound or forward
    variable references. *)
