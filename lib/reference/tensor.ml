type t = { extent : int list; data : float array }

let product = List.fold_left ( * ) 1

let create ?(init = 0.) extent =
  List.iter (fun e -> if e <= 0 then invalid_arg "Tensor.create: non-positive extent") extent;
  { extent; data = Array.make (product extent) init }

let num_elements t = Array.length t.data
let rank t = List.length t.extent

let flat_index t index =
  if List.length index <> rank t then invalid_arg "Tensor.flat_index: rank mismatch";
  let rec go extent index =
    match (extent, index) with
    | [], [] -> 0
    | e :: extent_rest, i :: index_rest ->
        if i < 0 || i >= e then invalid_arg "Tensor.flat_index: index out of bounds";
        (i * product extent_rest) + go extent_rest index_rest
    | _, _ -> assert false
  in
  go t.extent index

let in_bounds t index =
  List.length index = rank t && List.for_all2 (fun i e -> i >= 0 && i < e) index t.extent

let get t index = t.data.(flat_index t index)
let set t index v = t.data.(flat_index t index) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

let of_fn extent f =
  let t = create extent in
  let rec iterate prefix = function
    | [] -> set t (List.rev prefix) (f (List.rev prefix))
    | e :: rest ->
        for i = 0 to e - 1 do
          iterate (i :: prefix) rest
        done
  in
  iterate [] extent;
  t

let of_array extent data =
  if Array.length data <> product extent then invalid_arg "Tensor.of_array: length mismatch";
  { extent; data = Array.copy data }

let copy t = { t with data = Array.copy t.data }
let fill t v = Array.fill t.data 0 (Array.length t.data) v

let map2 f a b =
  if a.extent <> b.extent then invalid_arg "Tensor.map2: extent mismatch";
  { a with data = Array.map2 f a.data b.data }

let max_abs_diff a b =
  if a.extent <> b.extent then invalid_arg "Tensor.max_abs_diff: extent mismatch";
  let worst = ref 0. in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.data.(i)) in
      if d > !worst then worst := d)
    a.data;
  !worst

let equal_approx ?(rel = 1e-6) ?(abs = 1e-9) a b =
  a.extent = b.extent
  && begin
       let ok = ref true in
       Array.iteri
         (fun i x -> if not (Sf_support.Util.float_close ~rel ~abs x b.data.(i)) then ok := false)
         a.data;
       !ok
     end

let pp fmt t =
  Format.fprintf fmt "tensor[%s]"
    (Sf_support.Util.string_concat_map "x" string_of_int t.extent)

let iterate_region extent f =
  let rank = List.length extent in
  let index = Array.make rank 0 in
  let extents = Array.of_list extent in
  let cells = product extent in
  for _ = 1 to cells do
    f (Array.to_list index);
    let rec bump d =
      if d >= 0 then begin
        index.(d) <- index.(d) + 1;
        if index.(d) = extents.(d) then begin
          index.(d) <- 0;
          bump (d - 1)
        end
      end
    in
    bump (rank - 1)
  done

let slice t ~origin ~extent =
  if List.length origin <> rank t || List.length extent <> rank t then
    invalid_arg "Tensor.slice: rank mismatch";
  List.iteri
    (fun d (o, e) ->
      let bound = List.nth t.extent d in
      if o < 0 || e <= 0 || o + e > bound then invalid_arg "Tensor.slice: region out of bounds")
    (List.combine origin extent);
  let out = create extent in
  iterate_region extent (fun idx -> set out idx (get t (List.map2 ( + ) origin idx)));
  out

let blit_region ~src ~src_origin ~dst ~dst_origin ~extent =
  iterate_region extent (fun idx ->
      set dst (List.map2 ( + ) dst_origin idx) (get src (List.map2 ( + ) src_origin idx)))

let fingerprint t =
  let module F = Sf_support.Fingerprint in
  F.digest (fun st ->
      F.add_list st F.add_int t.extent;
      F.add_int st (Array.length t.data);
      Array.iter (F.add_float st) t.data)
