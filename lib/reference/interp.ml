open Sf_ir

type result = { tensor : Tensor.t; valid : bool array }

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt
let truthy v = v <> 0.
let of_bool b = if b then 1. else 0.

let eval_func f args =
  match (f, args) with
  | Expr.Sqrt, [ x ] -> Float.sqrt x
  | Expr.Abs, [ x ] -> Float.abs x
  | Expr.Exp, [ x ] -> Float.exp x
  | Expr.Log, [ x ] -> Float.log x
  | Expr.Pow, [ x; y ] -> Float.pow x y
  | Expr.Min, [ x; y ] -> Float.min x y
  | Expr.Max, [ x; y ] -> Float.max x y
  | Expr.Sin, [ x ] -> Float.sin x
  | Expr.Cos, [ x ] -> Float.cos x
  | Expr.Floor, [ x ] -> Float.floor x
  | Expr.Ceil, [ x ] -> Float.ceil x
  | ( ( Expr.Sqrt | Expr.Abs | Expr.Exp | Expr.Log | Expr.Pow | Expr.Min | Expr.Max
      | Expr.Sin | Expr.Cos | Expr.Floor | Expr.Ceil ),
      _ ) ->
      fail "wrong arity for %s" (Expr.func_name f)

let rec eval_expr ~lookup ~env expr =
  match expr with
  | Expr.Const c -> c
  | Expr.Access { field; offsets } -> lookup ~field ~offsets
  | Expr.Var v -> (
      match env v with Some value -> value | None -> fail "unbound variable %s" v)
  | Expr.Unary (Expr.Neg, x) -> -.eval_expr ~lookup ~env x
  | Expr.Unary (Expr.Not, x) -> of_bool (not (truthy (eval_expr ~lookup ~env x)))
  | Expr.Binary (op, x, y) -> (
      let a = eval_expr ~lookup ~env x in
      (* && and || are not short-circuit: the spatial pipeline evaluates
         both sides unconditionally, and so do we. *)
      let b = eval_expr ~lookup ~env y in
      match op with
      | Expr.Add -> a +. b
      | Expr.Sub -> a -. b
      | Expr.Mul -> a *. b
      | Expr.Div -> a /. b
      | Expr.Lt -> of_bool (a < b)
      | Expr.Le -> of_bool (a <= b)
      | Expr.Gt -> of_bool (a > b)
      | Expr.Ge -> of_bool (a >= b)
      | Expr.Eq -> of_bool (a = b)
      | Expr.Ne -> of_bool (a <> b)
      | Expr.And -> of_bool (truthy a && truthy b)
      | Expr.Or -> of_bool (truthy a || truthy b))
  | Expr.Select { cond; if_true; if_false } ->
      (* Both branches are evaluated (predication), then one selected. *)
      let c = eval_expr ~lookup ~env cond in
      let t = eval_expr ~lookup ~env if_true in
      let f = eval_expr ~lookup ~env if_false in
      if truthy c then t else f
  | Expr.Call (f, args) -> eval_func f (List.map (eval_expr ~lookup ~env) args)

let input_extent (p : Program.t) (f : Field.t) =
  match Field.extent f ~shape:p.Program.shape with [] -> [ 1 ] | extent -> extent

(* Per-cell evaluation context shared with the compiled closures: the
   current multi-index plus the out-of-bounds flag that drives "shrink"
   validity. *)
type cell_ctx = { idx : int array; mutable oob : bool }

let run_all (p : Program.t) ~inputs =
  Program.validate_exn p;
  let shape = p.Program.shape in
  let rank = Program.rank p in
  let store : (string, Tensor.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let expected = input_extent p f in
      match List.assoc_opt f.Field.name inputs with
      | None -> fail "missing input data for field %s" f.Field.name
      | Some t ->
          let extent = if t.Tensor.extent = [] then [ 1 ] else t.Tensor.extent in
          if extent <> expected then
            fail "input %s: expected extent [%s], got [%s]" f.Field.name
              (Sf_support.Util.string_concat_map "," string_of_int expected)
              (Sf_support.Util.string_concat_map "," string_of_int extent);
          Hashtbl.replace store f.Field.name { t with Tensor.extent })
    p.Program.inputs;
  let results = ref [] in
  let eval_stencil (s : Stencil.t) =
    let out = Tensor.create shape in
    let valid = Array.make (Program.cells p) true in
    (* The access compiler pre-resolves everything cell-independent:
       which tensor backs the field, its strides, the offset vector and
       the boundary condition. Per cell only bounds checks and a flat
       load remain. *)
    let access ~field ~offsets =
      let axes = Array.of_list (Program.field_axes p field) in
      let tensor =
        match Hashtbl.find_opt store field with
        | Some t -> t
        | None -> fail "field %s evaluated before its producer" field
      in
      let offsets = Array.of_list offsets in
      let extents = Array.map (fun axis -> List.nth shape axis) axes in
      let strides =
        (* Row-major strides of the field's own extent. *)
        let n = Array.length extents in
        let strides = Array.make n 1 in
        for d = n - 2 downto 0 do
          strides.(d) <- strides.(d + 1) * extents.(d + 1)
        done;
        strides
      in
      let n = Array.length axes in
      let boundary = Stencil.boundary_for s field in
      fun (ctx : cell_ctx) ->
        let flat = ref 0 in
        let center = ref 0 in
        let in_bounds = ref true in
        for d = 0 to n - 1 do
          let base = ctx.idx.(axes.(d)) in
          let target = base + offsets.(d) in
          if target < 0 || target >= extents.(d) then in_bounds := false;
          flat := !flat + (target * strides.(d));
          center := !center + (base * strides.(d))
        done;
        if !in_bounds then Tensor.get_flat tensor !flat
        else begin
          ctx.oob <- true;
          match boundary with
          | Boundary.Constant c -> c
          | Boundary.Copy -> Tensor.get_flat tensor !center
        end
    in
    let compiled = Compile.body ~access s.Stencil.body in
    let ctx = { idx = Array.make rank 0; oob = false } in
    let extents = Array.of_list shape in
    let cells = Program.cells p in
    for flat = 0 to cells - 1 do
      ctx.oob <- false;
      Tensor.set_flat out flat (compiled ctx);
      if s.Stencil.shrink && ctx.oob then valid.(flat) <- false;
      (* Advance the mixed-radix counter. *)
      let rec bump d =
        if d >= 0 then begin
          ctx.idx.(d) <- ctx.idx.(d) + 1;
          if ctx.idx.(d) = extents.(d) then begin
            ctx.idx.(d) <- 0;
            bump (d - 1)
          end
        end
      in
      bump (rank - 1)
    done;
    Hashtbl.replace store s.Stencil.name out;
    results := (s.Stencil.name, { tensor = out; valid }) :: !results
  in
  List.iter eval_stencil (Program.topological_stencils p);
  List.rev !results

let run p ~inputs =
  let all = run_all p ~inputs in
  List.filter (fun (name, _) -> List.exists (String.equal name) p.Program.outputs) all

let random_inputs ?(seed = 42) (p : Program.t) =
  let state = Random.State.make [| seed |] in
  List.map
    (fun f ->
      let extent = input_extent p f in
      let t = Tensor.of_fn extent (fun _ -> Random.State.float state 2. -. 1.) in
      (f.Field.name, t))
    p.Program.inputs
