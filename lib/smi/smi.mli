(** Streaming Message Interface substitute (paper, Sec. VI-B; [16]).

    SMI exposes inter-device communication as channels with FIFO
    semantics, making remote streams look like on-chip streams in
    generated code. Two capabilities matter to StencilFlow:

    - {b transparent remote channels}: a channel descriptor names source
      and destination ranks and a port; codegen emits the same push/pop
      calls as for local channels;
    - {b stream splitting}: when several physical network connections
      exist between two endpoints, one logical stream can be split into
      substreams routed over different links and recombined in order at
      the receiver, multiplying achievable bandwidth — StencilFlow uses
      this to raise the vectorization width across devices (Sec. VI-B).

    The testbed topology is a chain of ranks with [links_per_hop]
    connections between consecutive devices (Sec. VIII-B). *)

type rank = int

type channel = {
  src_rank : rank;
  dst_rank : rank;
  port : int;  (** Distinguishes channels between the same pair. *)
  element_bytes : int;
  vector_width : int;
  depth : int;  (** Receiver-side FIFO depth (delay buffer), in words. *)
}

type topology = { devices : int; links_per_hop : int }

val chain : devices:int -> links_per_hop:int -> topology
val hops : topology -> src:rank -> dst:rank -> int
(** Number of physical hops a message traverses (chain distance). *)

val validate_channel : topology -> channel -> (unit, string) result

val split : topology -> channel -> channel list
(** Split a channel into [links_per_hop] substreams, one per physical
    link, each carrying an interleaved share of the words. *)

val split_words : 'a list -> ways:int -> 'a list list
(** Round-robin distribution of a word stream over substreams. *)

val reassemble : 'a list list -> 'a list
(** Inverse of {!split_words}: interleave substreams back in order. *)

val bandwidth_bytes_per_s : topology -> Sf_models.Device.t -> channel -> float
(** Aggregate bandwidth available to the (possibly split) channel. *)

val max_vector_width :
  topology -> Sf_models.Device.t -> element_bytes:int -> streams_per_hop:int -> int
(** The largest power-of-two vector width sustainable at one word per
    cycle per stream across a hop — the network bound that capped the
    paper's distributed runs at W=4 (Sec. VIII-C). *)
