type rank = int

type channel = {
  src_rank : rank;
  dst_rank : rank;
  port : int;
  element_bytes : int;
  vector_width : int;
  depth : int;
}

type topology = { devices : int; links_per_hop : int }

let chain ~devices ~links_per_hop =
  if devices < 1 || links_per_hop < 1 then invalid_arg "Smi.chain: non-positive topology";
  { devices; links_per_hop }

let hops _t ~src ~dst = abs (dst - src)

let validate_channel t c =
  if c.src_rank < 0 || c.src_rank >= t.devices then Error "source rank out of range"
  else if c.dst_rank < 0 || c.dst_rank >= t.devices then Error "destination rank out of range"
  else if c.src_rank = c.dst_rank then Error "channel endpoints on the same rank"
  else if c.vector_width < 1 then Error "non-positive vector width"
  else Ok ()

let split t c =
  let ways = t.links_per_hop in
  List.map (fun i -> { c with port = (c.port * ways) + i; depth = (c.depth + ways - 1) / ways })
    (Sf_support.Util.range ways)

let split_words words ~ways =
  if ways < 1 then invalid_arg "Smi.split_words: non-positive ways";
  let buckets = Array.make ways [] in
  List.iteri (fun i word -> buckets.(i mod ways) <- word :: buckets.(i mod ways)) words;
  Array.to_list (Array.map List.rev buckets)

let reassemble substreams =
  let streams = Array.of_list (List.map (fun l -> ref l) substreams) in
  let ways = Array.length streams in
  if ways = 0 then []
  else begin
    let out = ref [] in
    let continue = ref true in
    let i = ref 0 in
    while !continue do
      match !(streams.(!i mod ways)) with
      | [] -> continue := false
      | word :: rest ->
          streams.(!i mod ways) := rest;
          out := word :: !out;
          incr i
    done;
    (* Drain any remainder (streams may differ in length by one). *)
    List.rev !out
  end

let bandwidth_bytes_per_s t (d : Sf_models.Device.t) (_ : channel) =
  let links = min t.links_per_hop d.Sf_models.Device.links_per_hop in
  float_of_int links *. d.Sf_models.Device.link_bytes_per_s

(* Effective goodput fraction of the raw link rate: the SMI paper
   measures ~30.8 of 40 Gbit/s once framing and flow control are paid. *)
let link_efficiency = 0.77

let max_vector_width t (d : Sf_models.Device.t) ~element_bytes ~streams_per_hop =
  let per_hop_bytes_per_cycle =
    link_efficiency
    *. float_of_int (min t.links_per_hop d.Sf_models.Device.links_per_hop)
    *. d.Sf_models.Device.link_bytes_per_s /. d.Sf_models.Device.frequency_hz
  in
  let budget = per_hop_bytes_per_cycle /. float_of_int (max 1 streams_per_hop) in
  let rec largest w =
    if float_of_int (2 * w * element_bytes) <= budget then largest (2 * w) else w
  in
  if float_of_int element_bytes > budget then 0 else largest 1
