(** Iterative (time-stepped) execution of stencil programs.

    The paper handles traditional iterative stencils by chaining
    timesteps into a linear DAG (Sec. VIII-C); this module generalizes
    that to arbitrary programs. A {e feedback} relation maps program
    outputs back onto input fields; then:

    - {!unroll} builds the spatial form: [steps] copies of the DAG wired
      output-to-input, exactly the paper's "analogous to time-tiled
      iterative stencils". Non-feedback inputs (coefficients, masks,
      lower-dimensional fields) are shared by all steps and still read
      from memory only once — perfect reuse across the whole time loop;
    - {!run_reference} executes the time loop sequentially (the
      load/store baseline), for validation;
    - {!run_simulated} executes the unrolled program on the spatial
      simulator and returns the final-step outputs under their original
      names. *)

type feedback = (string * string) list
(** [(output, input)] pairs: after each step, [output]'s result becomes
    [input]'s data. Each output and input may appear at most once; the
    fields must have identical rank (full) and dtype. *)

val unroll : Sf_ir.Program.t -> steps:int -> feedback:feedback -> Sf_ir.Program.t
(** Replicate the DAG [steps] times; step [s]'s feedback inputs read step
    [s-1]'s corresponding outputs directly as streams. Stencil [x] of
    step [s] is named [x_t<s>]; the returned program's outputs are the
    final step's outputs. Validates the result. Raises
    [Invalid_argument] on malformed feedback. *)

val final_output_names : Sf_ir.Program.t -> steps:int -> string list -> string list
(** The unrolled names of the given outputs ([x -> x_t<steps>]). *)

val run_reference :
  Sf_ir.Program.t ->
  steps:int ->
  feedback:feedback ->
  inputs:(string * Sf_reference.Tensor.t) list ->
  (string * Sf_reference.Tensor.t) list
(** Sequential time loop: run, feed back, repeat. Returns the outputs
    after the last step, under their original names. *)

val run_simulated :
  ?config:Engine.config ->
  Sf_ir.Program.t ->
  steps:int ->
  feedback:feedback ->
  inputs:(string * Sf_reference.Tensor.t) list ->
  ((string * Sf_reference.Tensor.t) list, string) result
(** Unroll, simulate, validate against the engine's own reference check,
    and return final outputs under original names. *)
