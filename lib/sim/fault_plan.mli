(** Deterministic timing-fault plans for the simulator.

    A plan describes *when* components are perturbed, never *what* they
    compute: injected faults stall links, inflate link latency, deny
    memory-controller grants, backpressure writers and freeze stencil
    pipelines for bounded bursts — all value-preserving. The paper's
    deadlock-freedom argument (Sec. IV-B) says the analysed delay-buffer
    depths tolerate any such interleaving; {!Faults.campaign} uses this
    module to exercise that claim adversarially.

    The whole fault timeline is a pure function of [(seed, plan)]: burst
    streams draw from a per-stream split of a SplitMix64 PRNG at cycles
    determined by earlier draws alone, never by simulation state, so a
    run is exactly reproducible and two different engine schedules see
    the identical perturbation sequence. *)

(** Splittable SplitMix64 PRNG. *)
module Rng : sig
  type t

  val make : int -> t
  val bits64 : t -> int64

  val int : t -> int -> int
  (** [int t n] draws uniformly from [\[0, n)]. [n] must be positive. *)

  val split : t -> string -> t
  (** Keyed derivation: a child stream independent of its siblings.
      Does not advance the parent, so split order is irrelevant. *)
end

type kind =
  | Link_stall  (** Freeze a link entirely: no injection, no delivery. *)
  | Link_jitter  (** Add extra propagation latency to injected words. *)
  | Mem_throttle  (** Deny every grant of a device's memory controller. *)
  | Write_backpressure  (** Block a memory writer's commits. *)
  | Unit_hiccup  (** Freeze a stencil unit's pipeline. *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

(** A recurring fault source: bursts of random length separated by
    random gaps, on every matching component (or one named target). *)
module Burst : sig
  type t = {
    kind : kind;
    target : string option;  (** [None] targets every matching component. *)
    gap : int;  (** Mean idle cycles between bursts (drawn from [\[1, 2*gap\]]). *)
    duration : int;  (** Maximum burst length (drawn from [\[1, duration\]]). *)
    magnitude : int;  (** Maximum jitter magnitude (drawn from [\[1, magnitude\]]). *)
    count : int;  (** Maximum bursts per component; [max_int] = unbounded. *)
  }

  val make :
    ?target:string -> ?gap:int -> ?duration:int -> ?magnitude:int -> ?count:int -> kind -> t
  (** Defaults: all components, gap 200, duration 16, magnitude 8,
      unbounded count. *)
end

(** One concrete injected fault: [target] perturbed for [duration]
    cycles starting at [start]. Both what a plan can script explicitly
    and what the injector logs. *)
module Event : sig
  type t = { kind : kind; target : string; start : int; duration : int; magnitude : int }
end

type t = {
  bursts : Burst.t list;
  events : Event.t list;  (** Explicitly scripted events (shrunk plans). *)
  depth_overrides : ((string * string) * int) list;
      (** Per-edge analysed-depth overrides for under-provisioning
          experiments; merged behind [Config.override_edge_buffers]. *)
}

val plan :
  ?bursts:Burst.t list ->
  ?events:Event.t list ->
  ?depth_overrides:((string * string) * int) list ->
  unit ->
  t

val none : t

val default : t
(** Every fault kind aimed at every matching component, with gaps short
    enough that small fixture runs see several bursts and durations far
    below any sane deadlock window. *)

val to_string : t -> string
(** Canonical plan syntax, round-tripping through {!of_string}:
    semicolon-separated items [kind\[@target\]\[:key=value,...\]] with
    burst keys [gap]/[dur]/[mag]/[count], explicit events marked by a
    [start] key, and [depth:src->dst=N] overrides. *)

val of_string : string -> (t, string) result
(** Parses the {!to_string} syntax plus the names ["default"] and
    ["none"]. *)

(** {2 Injection} *)

type summary = {
  injected_events : int;  (** Bursts/events that activated. *)
  injected_stall_cycles : int;  (** Component-cycles spent perturbed. *)
  log : Event.t list;  (** Every activation, in chronological order. *)
}

val empty_summary : summary

type injector

val create :
  seed:int ->
  plan:t ->
  links:Link.t list ->
  controllers:(string * Controller.t) list ->
  units:Stencil_unit.t list ->
  writers:Memory_unit.Writer.t list ->
  injector
(** Bind a plan to a built system. Targets that name absent components
    are dropped (a plan written for a multi-device run stays usable on a
    single-device degrade). *)

val tick : injector -> now:int -> unit
(** Advance the fault timeline one cycle: clear every component's fault
    flags, then re-apply the flags of all streams active at [now]. The
    engine calls this once per simulated cycle, before running
    components. *)

val summary : injector -> summary

val attribution_notes : summary -> stall_cycle:int -> string list
(** Diag notes blaming the injected events that preceded a failure at
    [stall_cycle]: a totals line plus one ["fault-attribution: ..."] line
    for each of the (up to 3) most recent preceding events. Empty when
    nothing had been injected yet. *)
