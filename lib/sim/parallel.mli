(** Domain-parallel multi-device simulation (conservative PDES with
    link-latency lookahead).

    The sequential {!Engine} walks every device in one cycle loop, so
    multi-device runs get slower as the simulated system gets bigger.
    This engine instead spawns one OCaml domain per device and runs each
    device's units, channels, readers, writers and memory controller
    with the existing single-device step code. Domains synchronize only
    at link boundaries: inter-device traffic takes at least
    [net_latency_cycles] (= the lookahead L) to arrive, so a device may
    execute cycle [t] as soon as every upstream device has committed
    cycle [t - L] — everything that can influence it by cycle [t] is
    already in the cross-domain ring (one lock-free {!Spsc} ring per
    link direction, moved by in-place lane blits — the steady state
    allocates nothing). Run-ahead past downstream devices is throttled
    to {!Engine.Config.parallelism.window_cycles} (0 = auto, several
    lookaheads) so rings stay bounded; commits are published in batches
    of {!Engine.Config.parallelism.sync_batch_cycles} executed cycles
    and always flushed before blocking, so domains touch shared state a
    few times per lookahead instead of every cycle; blocked domains back
    off exponentially, or park immediately when the spawned domains
    outnumber {!Engine.Config.parallelism.host_jobs}. All three are
    throughput knobs only — any values give bit-identical results.

    {b Determinism.} Results are bit-identical and cycle-identical to
    {!Engine.run_exn} for every placement: same cycle count, outputs,
    stall totals, channel high-water marks and byte counters (pinned by
    test/test_parallel.ml against the engine parity fixture). Each
    channel is owned by exactly one domain, each domain replays the
    seed's per-cycle component order, and the L >= 1 lookahead makes the
    cross-domain exchange commute with the local schedule — which is why
    {!decide} rejects zero-latency links.

    {b Fallback.} Configurations whose semantics are inherently global —
    instrumented telemetry, occupancy tracing, a single-device
    placement, or opposite-direction traffic sharing a finite link
    budget — degrade to the sequential engine (same results, no idle
    domains spawned). A run that deadlocks, times out, or aborts is
    re-run sequentially to reproduce the exact SF0701/SF0703
    diagnostics. See docs/SIMULATOR.md, "Parallel execution". *)

type decision =
  [ `Parallel of int  (** Would spawn this many communicating domains. *)
  | `Degrade of string
    (** Would run sequentially, with the human-readable reason. *)
  | `Reject of Sf_support.Diag.t
    (** Invalid parallel configuration ([SF0704]): the placement crosses
        devices but [net_latency_cycles < 1] leaves no lookahead. *)
  ]

val decide :
  config:Engine.config -> placement:(string -> int) -> Sf_ir.Program.t -> decision
(** How {!run_exn} would execute this program: parallel, sequential
    fallback, or rejection. Pure — nothing is built or spawned. *)

val run_exn :
  ?config:Engine.config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  Engine.outcome
(** Drop-in replacement for {!Engine.run_exn} that honours
    [config.parallelism]. With [`Sequential] mode (the default) or a
    [`Degrade] decision this is exactly {!Engine.run_exn}. Raises
    [Invalid_argument] on a [`Reject] decision and on malformed
    programs. *)

val run :
  ?config:Engine.config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  (Engine.stats, Sf_support.Diag.t) result
(** {!run_exn} with structured failure, mirroring {!Engine.run}:
    deadlock [SF0701], timeout [SF0703], invalid parallel configuration
    [SF0704]. *)

val run_and_validate :
  ?config:Engine.config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  (Engine.stats, Sf_support.Diag.t) result
(** {!run}, then compare every output against the reference interpreter
    (mismatch [SF0702]), mirroring {!Engine.run_and_validate}. *)
