open Sf_ir
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp

type feedback = (string * string) list

let step_name s name = Printf.sprintf "%s_t%d" name s

let validate_feedback (p : Program.t) feedback =
  let seen_out = Hashtbl.create 8 and seen_in = Hashtbl.create 8 in
  List.iter
    (fun (o, i) ->
      if Hashtbl.mem seen_out o then invalid_arg ("Timeloop: output fed back twice: " ^ o);
      if Hashtbl.mem seen_in i then invalid_arg ("Timeloop: input fed twice: " ^ i);
      Hashtbl.add seen_out o ();
      Hashtbl.add seen_in i ();
      if not (List.exists (String.equal o) p.Program.outputs) then
        invalid_arg ("Timeloop: " ^ o ^ " is not a program output");
      match Program.find_input p i with
      | None -> invalid_arg ("Timeloop: " ^ i ^ " is not an input field")
      | Some f ->
          if not (Field.is_full_rank f ~rank:(Program.rank p)) then
            invalid_arg ("Timeloop: feedback input " ^ i ^ " must be full rank"))
    feedback

let unroll (p : Program.t) ~steps ~feedback =
  if steps < 1 then invalid_arg "Timeloop.unroll: steps must be positive";
  Program.validate_exn p;
  validate_feedback p feedback;
  let producer_of_input i = List.find_map (fun (o, i') -> if String.equal i i' then Some o else None) feedback in
  let fed_back o = List.exists (fun (o', _) -> String.equal o o') feedback in
  let rename_field s f =
    if Program.is_input p f then
      match producer_of_input f with
      | Some o when s > 1 -> step_name (s - 1) o
      | Some _ | None -> f
    else step_name s f
  in
  let unroll_stencil s (st : Stencil.t) =
    let rewrite e = Expr.rename_accesses (rename_field s) e in
    let body =
      {
        Expr.lets = List.map (fun (n, e) -> (n, rewrite e)) st.Stencil.body.Expr.lets;
        result = rewrite st.Stencil.body.Expr.result;
      }
    in
    Stencil.make
      ~boundary:(List.map (fun (f, b) -> (rename_field s f, b)) st.Stencil.boundary)
      ~shrink:st.Stencil.shrink
      ~name:(step_name s st.Stencil.name)
      body
  in
  let stencils =
    List.concat_map
      (fun s -> List.map (unroll_stencil s) p.Program.stencils)
      (List.map (fun s -> s + 1) (Sf_support.Util.range steps))
  in
  (* Final-step outputs always write to memory; outputs of earlier steps
     that are not consumed through feedback are also written (they would
     otherwise be dead). *)
  let outputs =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun o ->
            if s = steps || not (fed_back o) then Some (step_name s o) else None)
          p.Program.outputs)
      (List.map (fun s -> s + 1) (Sf_support.Util.range steps))
  in
  let unrolled =
    Program.make ~dtype:p.Program.dtype ~vector_width:p.Program.vector_width
      ~name:(Printf.sprintf "%s_x%d" p.Program.name steps)
      ~shape:p.Program.shape ~inputs:p.Program.inputs ~outputs stencils
  in
  Program.validate_exn unrolled;
  unrolled

let final_output_names (_ : Program.t) ~steps names = List.map (step_name steps) names

let run_reference (p : Program.t) ~steps ~feedback ~inputs =
  if steps < 1 then invalid_arg "Timeloop.run_reference: steps must be positive";
  validate_feedback p feedback;
  let current = ref inputs in
  let last = ref [] in
  for _ = 1 to steps do
    let results = Interp.run p ~inputs:!current in
    last := results;
    current :=
      List.map
        (fun (name, tensor) ->
          match List.find_opt (fun (o, i) -> ignore o; String.equal i name) feedback with
          | Some (o, _) -> (name, (List.assoc o results).Interp.tensor)
          | None -> (name, tensor))
        !current
  done;
  List.map (fun (o, (r : Interp.result)) -> (o, r.Interp.tensor)) !last

let run_simulated ?config (p : Program.t) ~steps ~feedback ~inputs =
  let unrolled = unroll p ~steps ~feedback in
  match Engine.run_and_validate ?config ~inputs unrolled with
  | Error d -> Error (Sf_support.Diag.to_string d)
  | Ok stats ->
      let finals =
        List.map
          (fun o ->
            let r = List.assoc (step_name steps o) stats.Engine.results in
            (o, r.Interp.tensor))
          p.Program.outputs
      in
      Ok finals
