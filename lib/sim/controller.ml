type t = {
  bytes_per_cycle : float;
  mutable budget : float;
  mutable bytes_granted : int;
  mutable denied : bool;
}

let create ~bytes_per_cycle = { bytes_per_cycle; budget = 0.; bytes_granted = 0; denied = false }
let unlimited () = create ~bytes_per_cycle:infinity

let begin_cycle t =
  if Float.is_finite t.bytes_per_cycle then begin
    (* Carry only the fractional remainder: an idle bus does not bank
       whole cycles of bandwidth for later bursts. *)
    let carry = Float.min t.budget t.bytes_per_cycle in
    t.budget <- carry +. t.bytes_per_cycle
  end

let request t bytes =
  if t.denied then false
  else if not (Float.is_finite t.bytes_per_cycle) then begin
    t.bytes_granted <- t.bytes_granted + bytes;
    true
  end
  else if t.budget >= float_of_int bytes then begin
    t.budget <- t.budget -. float_of_int bytes;
    t.bytes_granted <- t.bytes_granted + bytes;
    true
  end
  else false

let account t bytes = t.bytes_granted <- t.bytes_granted + bytes
let set_denied t denied = t.denied <- denied
let is_unlimited t = not (Float.is_finite t.bytes_per_cycle)
let bytes_granted t = t.bytes_granted
let bytes_per_cycle t = t.bytes_per_cycle
