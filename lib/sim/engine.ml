open Sf_ir
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp
module Diag = Sf_support.Diag

module Config = struct
  type bandwidth = { mem_bytes_per_cycle : float; writer_buffer : int }
  type network = { net_bytes_per_cycle : float; net_latency_cycles : int }
  type safety = { deadlock_window : int; max_cycles : int option }
  type tracing = { trace_interval : int option; telemetry : bool }
  type par_mode = [ `Sequential | `Domains_per_device ]
  type parallelism = {
    mode : par_mode;
    window_cycles : int;
    sync_batch_cycles : int;
    host_jobs : int;
  }
  type faults = { plan : Fault_plan.t option; fault_seed : int }

  let bandwidth ?(mem_bytes_per_cycle = infinity) ?(writer_buffer = 8) () =
    { mem_bytes_per_cycle; writer_buffer }

  let network ?(net_bytes_per_cycle = infinity) ?(net_latency_cycles = 64) () =
    { net_bytes_per_cycle; net_latency_cycles }

  let safety ?(deadlock_window = 4096) ?max_cycles () = { deadlock_window; max_cycles }
  let tracing ?trace_interval ?(telemetry = false) () = { trace_interval; telemetry }

  let parallelism ?(mode = `Sequential) ?(window_cycles = 0) ?(sync_batch_cycles = 0)
      ?(host_jobs = 0) () =
    { mode; window_cycles; sync_batch_cycles; host_jobs }

  let faults ?plan ?(seed = 1) () = { plan; fault_seed = seed }

  type t = {
    latency : Sf_analysis.Latency.config;
    channel_slack : int;
    override_edge_buffers : ((string * string) * int) list;
    bandwidth : bandwidth;
    network : network;
    safety : safety;
    tracing : tracing;
    parallelism : parallelism;
    faults : faults;
  }

  let make ?(latency = Sf_analysis.Latency.default) ?(channel_slack = 4)
      ?(override_edge_buffers = []) ?bandwidth:(bw = bandwidth ()) ?network:(net = network ())
      ?safety:(sf = safety ()) ?tracing:(tr = tracing ()) ?parallelism:(par = parallelism ())
      ?faults:(fl = faults ()) () =
    {
      latency;
      channel_slack;
      override_edge_buffers;
      bandwidth = bw;
      network = net;
      safety = sf;
      tracing = tr;
      parallelism = par;
      faults = fl;
    }

  let default = make ()

  module F = Sf_support.Fingerprint

  let latency_fingerprint (l : Sf_analysis.Latency.config) =
    F.digest (fun st ->
        List.iter (F.add_int st)
          [
            l.Sf_analysis.Latency.add;
            l.mul;
            l.div;
            l.sqrt;
            l.compare;
            l.logic;
            l.select;
            l.call;
            l.min_max;
          ])

  let fingerprint (c : t) =
    F.digest (fun st ->
        F.add_fingerprint st (latency_fingerprint c.latency);
        F.add_int st c.channel_slack;
        F.add_list st
          (fun st ((src, dst), n) ->
            F.add_string st src;
            F.add_string st dst;
            F.add_int st n)
          c.override_edge_buffers;
        F.add_float st c.bandwidth.mem_bytes_per_cycle;
        F.add_int st c.bandwidth.writer_buffer;
        F.add_float st c.network.net_bytes_per_cycle;
        F.add_int st c.network.net_latency_cycles;
        F.add_int st c.safety.deadlock_window;
        F.add_option st F.add_int c.safety.max_cycles;
        F.add_option st F.add_int c.tracing.trace_interval;
        F.add_bool st c.tracing.telemetry;
        F.add_int st (match c.parallelism.mode with `Sequential -> 0 | `Domains_per_device -> 1);
        F.add_int st c.parallelism.window_cycles;
        F.add_int st c.parallelism.sync_batch_cycles;
        F.add_int st c.parallelism.host_jobs;
        F.add_option st (fun st p -> F.add_string st (Fault_plan.to_string p)) c.faults.plan;
        F.add_int st c.faults.fault_seed)
end

type config = Config.t

type stats = {
  cycles : int;
  predicted_cycles : int;
  results : (string * Interp.result) list;
  bytes_read : int;
  bytes_written : int;
  network_bytes : int;
  telemetry : Telemetry.report;
  faults : Fault_plan.summary;
}

type outcome =
  | Completed of stats
  | Deadlocked of {
      cycle : int;
      blocked : (string * string) list;
      wait_cycle : string list;
      timed_out : bool;
      telemetry : Telemetry.report;
      faults : Fault_plan.summary;
    }

(* The system model, its constructor and the counter harvest live in
   [Internal] so the domain-parallel engine (parallel.ml) can drive the
   exact same components through its own scheduler; see engine.mli for
   the contract. The sequential engine below opens it. *)
module Internal = struct
(* One simulated system: all channels, units, readers, writers and links,
   each paired with its telemetry probe (absent when telemetry is off). *)
type system = {
  channels : Channel.t list ref;
  units : (Stencil_unit.t * Telemetry.probe option) list;
  readers : (Memory_unit.Reader.t * Telemetry.probe option) list;
  writers : (string * Memory_unit.Writer.t * Telemetry.probe option) list;
  links : (Link.t * Telemetry.probe option) list;
  mem_controllers : Controller.t array;
  prefetch_bytes : int;
  writers_done : int ref;
      (* Completed-writer counter, bumped by each writer's on_done hook
         so the hot loop's termination test is one integer compare. *)
  (* Wait-for relationships for deadlock diagnosis: which component
     consumes each channel, and which component produces each field for a
     given consumer. *)
  channel_consumer : (string, string) Hashtbl.t;
  producer_for : (string * string, string) Hashtbl.t;
  (* Structure the parallel engine partitions by: the home device of
     every unit, reader and writer, and every cross-device link port as
     [(link, src_device, dst_device, near, far, word_bytes)] in creation
     order (the order [Link.cycle] visits ports). *)
  comp_device : (string, int) Hashtbl.t;
  cross_ports : (Link.t * int * int * Channel.t * Channel.t * int) list;
}

let build ~config ~telemetry ~placement ~inputs (p : Program.t) =
  Program.validate_exn p;
  let { Config.latency; channel_slack; override_edge_buffers; bandwidth; network; _ } =
    config
  in
  let { Config.mem_bytes_per_cycle; writer_buffer } = bandwidth in
  let { Config.net_bytes_per_cycle; net_latency_cycles } = network in
  let analysis = Sf_analysis.Delay_buffer.analyze ~config:latency p in
  let w = p.Program.vector_width in
  let element_bytes = Dtype.size_bytes p.Program.dtype in
  let word_bytes = w * element_bytes in
  let full_rank = Program.rank p in
  let num_devices =
    1 + List.fold_left (fun acc s -> max acc (placement s.Stencil.name)) 0 p.Program.stencils
  in
  let mem_controllers =
    Array.init num_devices (fun _ -> Controller.create ~bytes_per_cycle:mem_bytes_per_cycle)
  in
  let channels = ref [] in
  let new_channel name capacity =
    let c = Channel.create_vec ~width:w ~name ~capacity in
    channels := c :: !channels;
    c
  in
  let fault_depths =
    match config.Config.faults.Config.plan with
    | Some pl -> pl.Fault_plan.depth_overrides
    | None -> []
  in
  let buffer_for ~src ~dst =
    match List.assoc_opt (src, dst) override_edge_buffers with
    | Some b -> b
    | None -> (
        match List.assoc_opt (src, dst) fault_depths with
        | Some b -> b
        | None -> Sf_analysis.Delay_buffer.buffer_for analysis ~src ~dst)
  in
  let links : (int * int, Link.t * Telemetry.probe option) Hashtbl.t = Hashtbl.create 4 in
  let link_between d1 d2 =
    let key = (min d1 d2, max d1 d2) in
    match Hashtbl.find_opt links key with
    | Some (l, _) -> l
    | None ->
        let name = Printf.sprintf "link%d-%d" (fst key) (snd key) in
        let probe = Telemetry.probe telemetry ~kind:Telemetry.Link ~name in
        let l =
          Link.create ?probe ~name ~bytes_per_cycle:net_bytes_per_cycle
            ~latency_cycles:net_latency_cycles ()
        in
        Hashtbl.replace links key (l, probe);
        l
  in
  let device_of name =
    if Option.is_some (Program.find_stencil p name) then placement name
    else
      (* Inputs live wherever their consumer lives; resolved per edge. *)
      invalid_arg "device_of: only stencils have a home device"
  in
  (* Input channel of each consumer edge, keyed by (src, dst). Cross-device
     edges get a source-side channel, a link port, and the destination-side
     channel with the analysed delay buffer. *)
  let dst_channel : (string * string, Channel.t) Hashtbl.t = Hashtbl.create 32 in
  let src_endpoint : (string * string, Channel.t) Hashtbl.t = Hashtbl.create 32 in
  let channel_consumer : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let producer_for : (string * string, string) Hashtbl.t = Hashtbl.create 32 in
  let comp_device : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let cross_ports = ref [] in
  let make_edge ~src ~dst ~src_device ~dst_device =
    let cap = buffer_for ~src ~dst + channel_slack in
    Hashtbl.replace producer_for (dst, src) src;
    if src_device = dst_device then begin
      let c = new_channel (Printf.sprintf "%s->%s" src dst) cap in
      Hashtbl.replace channel_consumer (Channel.name c) dst;
      Hashtbl.replace dst_channel (src, dst) c;
      Hashtbl.replace src_endpoint (src, dst) c
    end
    else begin
      let near = new_channel (Printf.sprintf "%s->%s.tx" src dst) channel_slack in
      let far = new_channel (Printf.sprintf "%s->%s.rx" src dst) cap in
      Hashtbl.replace channel_consumer (Channel.name near) dst;
      Hashtbl.replace channel_consumer (Channel.name far) dst;
      let link = link_between src_device dst_device in
      Link.add_port link ~src:near ~dst:far ~word_bytes;
      cross_ports := (link, src_device, dst_device, near, far, word_bytes) :: !cross_ports;
      Hashtbl.replace dst_channel (src, dst) far;
      Hashtbl.replace src_endpoint (src, dst) near
    end
  in
  (* Create edges: stencil -> stencil. *)
  List.iter
    (fun s ->
      let dst = s.Stencil.name in
      List.iter
        (fun field ->
          match Program.find_stencil p field with
          | Some producer ->
              make_edge ~src:producer.Stencil.name ~dst
                ~src_device:(device_of producer.Stencil.name) ~dst_device:(device_of dst)
          | None -> ())
        (Stencil.input_fields s))
    p.Program.stencils;
  (* Readers: one per (full-rank input field, device); they multicast to
     every consumer on that device. Lower-dimensional fields are prefetched
     straight into consuming units and accounted once per device. *)
  let input_tensor name =
    match List.assoc_opt name inputs with
    | Some t -> t
    | None -> raise (Interp.Runtime_error (Printf.sprintf "missing input data for field %s" name))
  in
  let readers = ref [] in
  let prefetch_bytes = ref 0 in
  List.iter
    (fun (f : Field.t) ->
      let consumers = Program.consumers p f.Field.name in
      let devices = List.sort_uniq compare (List.map device_of consumers) in
      if Field.rank f = full_rank then
        List.iter
          (fun d ->
            let consumer_channels =
              List.filter_map
                (fun c ->
                  if device_of c = d then begin
                    let cap = buffer_for ~src:f.Field.name ~dst:c + channel_slack in
                    let ch = new_channel (Printf.sprintf "%s->%s" f.Field.name c) cap in
                    Hashtbl.replace channel_consumer (Channel.name ch) c;
                    Hashtbl.replace producer_for (c, f.Field.name)
                      (Printf.sprintf "read.%s@%d" f.Field.name d);
                    Hashtbl.replace dst_channel (f.Field.name, c) ch;
                    Some ch
                  end
                  else None)
                consumers
            in
            let tensor = { (input_tensor f.Field.name) with Tensor.extent = Interp.input_extent p f } in
            let name = Printf.sprintf "read.%s@%d" f.Field.name d in
            Hashtbl.replace comp_device name d;
            let probe = Telemetry.probe telemetry ~kind:Telemetry.Reader ~name in
            let r =
              Memory_unit.Reader.create ?probe ~name ~tensor ~vector_width:w
                ~element_bytes:(Dtype.size_bytes f.Field.dtype) ~controller:mem_controllers.(d)
                ~outputs:consumer_channels ()
            in
            readers := (r, probe) :: !readers)
          devices
      else
        List.iter
          (fun _ -> prefetch_bytes := !prefetch_bytes + Field.size_bytes f ~shape:p.Program.shape)
          devices)
    p.Program.inputs;
  (* Writers for declared outputs. *)
  let writers = ref [] in
  let writers_done = ref 0 in
  let writer_channels : (string * Channel.t) list =
    List.map
      (fun o ->
        let cap = channel_slack + writer_buffer in
        let c = new_channel (Printf.sprintf "%s->mem" o) cap in
        let d = device_of o in
        let name = Printf.sprintf "write.%s@%d" o d in
        Hashtbl.replace comp_device name d;
        Hashtbl.replace channel_consumer (Channel.name c) name;
        let probe = Telemetry.probe telemetry ~kind:Telemetry.Writer ~name in
        let writer =
          Memory_unit.Writer.create ?probe
            ~on_done:(fun () -> incr writers_done)
            ~name ~shape:p.Program.shape ~vector_width:w ~element_bytes
            ~controller:mem_controllers.(d) ~input:c ()
        in
        writers := (o, writer, probe) :: !writers;
        (o, c))
      p.Program.outputs
  in
  (* Stencil units, in topological order. *)
  let units =
    List.map
      (fun s ->
        let name = s.Stencil.name in
        Hashtbl.replace comp_device name (device_of name);
        let bindings =
          List.map
            (fun field ->
              let is_lower = List.length (Program.field_axes p field) < full_rank in
              if is_lower then
                let f = Option.get (Program.find_input p field) in
                let tensor =
                  { (input_tensor field) with Tensor.extent = Interp.input_extent p f }
                in
                { Stencil_unit.field; channel = None; prefetched = Some tensor }
              else
                {
                  Stencil_unit.field;
                  channel = Some (Hashtbl.find dst_channel (field, name));
                  prefetched = None;
                })
            (Stencil.input_fields s)
        in
        let consumer_outputs =
          List.filter_map
            (fun c -> Hashtbl.find_opt src_endpoint (name, c))
            (Program.consumers p name)
        in
        let writer_output = List.assoc_opt name writer_channels in
        let outputs = consumer_outputs @ Option.to_list writer_output in
        let compute_cycles =
          (Sf_analysis.Delay_buffer.node_info analysis name).Sf_analysis.Delay_buffer.compute_cycles
        in
        let probe = Telemetry.probe telemetry ~kind:Telemetry.Unit ~name in
        ( Stencil_unit.create ?probe ~program:p ~stencil:s ~compute_cycles ~inputs:bindings
            ~outputs (),
          probe ))
      (Program.topological_stencils p)
  in
  let predicted =
    analysis.Sf_analysis.Delay_buffer.latency_cycles + (Program.cells p / w)
  in
  ( {
      channels;
      units;
      readers = List.rev !readers;
      writers = List.rev !writers;
      links = Hashtbl.fold (fun _ l acc -> l :: acc) links [];
      mem_controllers;
      prefetch_bytes = !prefetch_bytes;
      writers_done;
      channel_consumer;
      producer_for;
      comp_device;
      cross_ports = List.rev !cross_ports;
    },
    predicted )

(* Freeze the counter registry: per-component push/pop/byte counts are
   harvested once here from the always-on channel and controller
   counters, so the hot loop pays nothing for them; cause breakdowns
   come from the probes when telemetry was enabled. *)
let harvest ~telemetry ~system ~cycles ~samples =
  let sum_pushed chans = List.fold_left (fun a c -> a + Channel.total_pushed c) 0 chans in
  let sum_popped chans = List.fold_left (fun a c -> a + Channel.total_popped c) 0 chans in
  let unit_rows =
    List.map
      (fun (u, probe) ->
        Telemetry.counters_row ?probe ~stalled:(Stencil_unit.stall_cycles u)
          ~pushes:(sum_pushed (Stencil_unit.output_channels u))
          ~pops:(sum_popped (Stencil_unit.input_channels u))
          ~name:(Stencil_unit.name u) ~kind:Telemetry.Unit ())
      system.units
  in
  let reader_rows =
    List.map
      (fun (r, probe) ->
        Telemetry.counters_row ?probe
          ~pushes:(sum_pushed (Memory_unit.Reader.output_channels r))
          ~bytes:(Memory_unit.Reader.words_streamed r * Memory_unit.Reader.word_bytes r)
          ~name:(Memory_unit.Reader.name r) ~kind:Telemetry.Reader ())
      system.readers
  in
  let writer_rows =
    List.map
      (fun (_, w, probe) ->
        Telemetry.counters_row ?probe
          ~pops:(Channel.total_popped (Memory_unit.Writer.input_channel w))
          ~bytes:(Memory_unit.Writer.bytes_committed w)
          ~name:(Memory_unit.Writer.name w) ~kind:Telemetry.Writer ())
      system.writers
  in
  let link_rows =
    List.map
      (fun (l, probe) ->
        let ports = Link.port_channels l in
        Telemetry.counters_row ?probe
          ~pushes:(sum_pushed (List.map snd ports))
          ~pops:(sum_popped (List.map fst ports))
          ~bytes:(Link.bytes_transferred l) ~name:(Link.name l) ~kind:Telemetry.Link ())
      system.links
  in
  let channels =
    List.map
      (fun c ->
        {
          Telemetry.channel = Channel.name c;
          capacity = Channel.capacity c;
          high_water = Channel.high_water c;
          total_pushed = Channel.total_pushed c;
          total_popped = Channel.total_popped c;
        })
      (List.rev !(system.channels))
  in
  Telemetry.freeze telemetry ~cycles
    ~components:(unit_rows @ reader_rows @ writer_rows @ link_rows)
    ~channels ~samples

(* Assemble the completion stats of a finished system — shared by the
   sequential loop below and the domain-parallel engine, so byte and
   network accounting cannot drift between the two. *)
let completed_stats ?(faults = Fault_plan.empty_summary) ~system ~predicted ~cycles ~report
    (p : Program.t) =
  (* Controllers account reads and writes together; split the writes
     back out below. Prefetched lower-dimensional inputs are charged
     once per device replica. *)
  let bytes_granted =
    system.prefetch_bytes
    + Array.fold_left (fun acc c -> acc + Controller.bytes_granted c) 0 system.mem_controllers
  in
  let bytes_written =
    List.fold_left
      (fun acc (_, w, _) ->
        let r = Memory_unit.Writer.result w in
        acc
        + Array.fold_left (fun n v -> if v then n + 1 else n) 0 r.Interp.valid
          * Dtype.size_bytes p.Program.dtype
      )
      0 system.writers
  in
  {
    cycles;
    predicted_cycles = predicted;
    results = List.map (fun (o, w, _) -> (o, Memory_unit.Writer.result w)) system.writers;
    bytes_read = bytes_granted - bytes_written;
    bytes_written;
    network_bytes =
      List.fold_left (fun acc (l, _) -> acc + Link.bytes_transferred l) 0 system.links;
    telemetry = report;
    faults;
  }

(* Compare a completed run's outputs against the reference interpreter;
   shared by [run_and_validate] in both engines. *)
let compare_to_reference ~inputs (p : Program.t) stats =
  let mismatch fmt =
    Format.kasprintf (fun m -> Error (Diag.error ~code:Diag.Code.sim_mismatch m)) fmt
  in
  let reference = Interp.run p ~inputs in
  let rec check = function
    | [] -> Ok stats
    | (name, simulated) :: rest -> (
        match List.assoc_opt name reference with
        | None -> mismatch "output %s missing from reference" name
        | Some expected ->
            let (simulated : Interp.result) = simulated in
            if simulated.Interp.valid <> expected.Interp.valid then
              mismatch "output %s: validity masks differ" name
            else begin
              let worst = ref 0. in
              Array.iteri
                (fun i v ->
                  if expected.Interp.valid.(i) then begin
                    let d =
                      Float.abs (v -. Tensor.get_flat expected.Interp.tensor i)
                    in
                    if d > !worst then worst := d
                  end)
                simulated.Interp.tensor.Tensor.data;
              if !worst > 1e-9 then
                mismatch "output %s: max deviation %g from reference" name !worst
              else check rest
            end)
  in
  check stats.results
end

open Internal

(* ------------------------------------------------------------------ *)
(* Execution core.                                                     *)
(*                                                                     *)
(* The seed engine ran every component every cycle in a fixed order:   *)
(* links, writers, units in reverse topological order (consumers       *)
(* before producers), readers. That order is preserved exactly — it    *)
(* defines when data and buffer space become visible — but components  *)
(* that provably cannot progress are parked in a ready-set and only    *)
(* re-run when one of their channels changes state (producer pushed,   *)
(* consumer popped, link word matured, pending word released), and a   *)
(* fast-forward path replays a planned steady-state action for many    *)
(* cycles at once. Cycle counts, stalls, high-water marks and deadlock *)
(* diagnoses are bit-identical to the seed; see docs/SIMULATOR.md and  *)
(* test/test_sim_parity.ml.                                            *)
(*                                                                     *)
(* When telemetry is enabled the engine instead runs instrumented:     *)
(* sleeping, quiescence jumps and fast-forward batching are all        *)
(* disabled, so every component runs every cycle — exactly the seed    *)
(* schedule — and classifies its own no-progress cycles. Cycle and     *)
(* stall counts are therefore identical with telemetry on or off; only *)
(* the wall-clock cost differs.                                        *)
(* ------------------------------------------------------------------ *)

type comp =
  | Clink of Link.t
  | Cwriter of Memory_unit.Writer.t
  | Cunit of Stencil_unit.t
  | Creader of Memory_unit.Reader.t

(* Planned per-cycle action of one component inside a fast-forward
   window. *)
type batch_entry =
  | Bskip
  | Bwriter of Memory_unit.Writer.t
  | Bunit of Stencil_unit.t * Stencil_unit.plan
  | Breader of Memory_unit.Reader.t

let run_exn ?(config = Config.default) ?(placement = fun _ -> 0) ?inputs (p : Program.t) =
  let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
  let { Config.deadlock_window; max_cycles } = config.Config.safety in
  let { Config.trace_interval; telemetry = telemetry_on } = config.Config.tracing in
  let telemetry = Telemetry.create ~enabled:telemetry_on () in
  let instrumented = telemetry_on in
  let system, predicted = build ~config ~telemetry ~placement ~inputs p in
  (* Fault injection binds the plan's streams to the built components.
     Injected runs use the instrumented (run-everything) schedule so that
     per-cycle fault flags are honoured by every component every cycle. *)
  let injector =
    match config.Config.faults.Config.plan with
    | None -> None
    | Some plan ->
        Some
          (Fault_plan.create ~seed:config.Config.faults.Config.fault_seed ~plan
             ~links:(List.map fst system.links)
             ~controllers:
               (Array.to_list
                  (Array.mapi
                     (fun d c -> (Printf.sprintf "mem@%d" d, c))
                     system.mem_controllers))
             ~units:(List.map fst system.units)
             ~writers:(List.map (fun (_, w, _) -> w) system.writers))
  in
  let run_all = instrumented || Option.is_some injector in
  let cycle = ref 0 in
  let idle_cycles = ref 0 in
  let n_writers = List.length system.writers in
  let finished () = !(system.writers_done) >= n_writers in
  let max_cycles = match max_cycles with Some m -> m | None -> max_int in
  let deadlocked = ref false in
  let trace = ref [] in
  let sample_trace () =
    match trace_interval with
    | Some interval when !cycle mod interval = 0 ->
        let snapshot =
          List.rev_map (fun c -> (Channel.name c, Channel.occupancy c)) !(system.channels)
        in
        trace := (!cycle, snapshot) :: !trace
    | Some _ | None -> ()
  in
  (* Components in the seed's per-cycle order: links, writers, units
     consumers-before-producers (reverse topological order — data pushed
     this cycle becomes visible next cycle, space freed this cycle is
     reusable immediately, matching credit-based hardware), readers. The
     reversal happens once here, not per cycle. *)
  let comps =
    Array.of_list
      (List.map (fun (l, _) -> Clink l) system.links
      @ List.map (fun (_, w, _) -> Cwriter w) system.writers
      @ List.rev_map (fun (u, _) -> Cunit u) system.units
      @ List.map (fun (r, _) -> Creader r) system.readers)
  in
  let ncomps = Array.length comps in
  (* Ready-set state. [ready.(i)] means component i must run next cycle;
     a sleeping component is provably inert until a wake hook or its
     [wake_at] timer fires, so skipping it cannot change any observable
     state. [last_ran] backs the lazy stall accounting for units and the
     one-shot bandwidth-refill catch-up for links. *)
  let ready = Array.make ncomps true in
  let wake_at = Array.make ncomps max_int in
  let last_ran = Array.make ncomps (-1) in
  (* Wake hooks, derived from the component structure: a push wakes the
     channel's consumer, a pop wakes its producer. *)
  let consumer_idx : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let producer_idx : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i comp ->
      match comp with
      | Clink l ->
          List.iter
            (fun (src, dst) ->
              Hashtbl.replace consumer_idx (Channel.name src) i;
              Hashtbl.replace producer_idx (Channel.name dst) i)
            (Link.port_channels l)
      | Cwriter w ->
          Hashtbl.replace consumer_idx (Channel.name (Memory_unit.Writer.input_channel w)) i
      | Cunit u ->
          List.iter
            (fun c -> Hashtbl.replace consumer_idx (Channel.name c) i)
            (Stencil_unit.input_channels u);
          List.iter
            (fun c -> Hashtbl.replace producer_idx (Channel.name c) i)
            (Stencil_unit.output_channels u)
      | Creader r ->
          List.iter
            (fun c -> Hashtbl.replace producer_idx (Channel.name c) i)
            (Memory_unit.Reader.output_channels r))
    comps;
  List.iter
    (fun c ->
      let wake tbl =
        match Hashtbl.find_opt tbl (Channel.name c) with
        | Some i -> fun () -> ready.(i) <- true
        | None -> fun () -> ()
      in
      Channel.set_hooks c ~on_push:(wake consumer_idx) ~on_pop:(wake producer_idx))
    !(system.channels);
  (* Fast-forward batching applies only when every per-cycle effect is
     plannable: no links (link rx channels are pushed before their
     consumer pops, breaking the pop-before-push occupancy invariant),
     unlimited memory bandwidth (grants never vary), no tracing, and no
     telemetry (instrumented runs classify every cycle individually). *)
  let batchable =
    system.links = []
    && Array.for_all Controller.is_unlimited system.mem_controllers
    && trace_interval = None
    && (not instrumented)
    && Option.is_none injector
  in
  let all_channels = Array.of_list (List.rev !(system.channels)) in
  let nchan = Array.length all_channels in
  let chan_idx : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun i c -> Hashtbl.replace chan_idx (Channel.name c) i) all_channels;
  let pushed = Array.make nchan false in
  let popped = Array.make nchan false in
  let entries = Array.make ncomps Bskip in
  let mark arr c = arr.(Hashtbl.find chan_idx (Channel.name c)) <- true in
  (* Try to advance the whole system k >= 2 cycles at once. Sound only if
     every non-done component repeats the identical action each cycle of
     the window: components plan their per-cycle intent, channels bound k
     by occupancy. All touched channels are popped before they are pushed
     within a cycle (consumers precede producers in [comps]), so a
     channel that is both keeps constant occupancy and only needs one
     word in it; push-only channels bound k by free space, pop-only ones
     by occupancy. Any sleeping non-done component or unplannable unit
     aborts — the ordinary per-cycle path remains the reference. *)
  let attempt_batch () =
    let now = !cycle in
    Array.fill pushed 0 nchan false;
    Array.fill popped 0 nchan false;
    let k = ref (max_cycles - now) in
    let cap n = if n < !k then k := n in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < ncomps do
      (match comps.(!i) with
      | Clink _ -> ok := false
      | Cwriter w ->
          if Memory_unit.Writer.is_done w then entries.(!i) <- Bskip
          else if not ready.(!i) then ok := false
          else begin
            entries.(!i) <- Bwriter w;
            cap (Memory_unit.Writer.words_remaining w);
            mark popped (Memory_unit.Writer.input_channel w)
          end
      | Cunit u ->
          if Stencil_unit.is_done u then entries.(!i) <- Bskip
          else if not ready.(!i) then ok := false
          else begin
            match Stencil_unit.plan u ~now with
            | None -> ok := false
            | Some pl ->
                entries.(!i) <- Bunit (u, pl);
                cap (Stencil_unit.plan_horizon pl);
                List.iter (mark popped) (Stencil_unit.plan_pops pl);
                if Stencil_unit.plan_flush pl then
                  List.iter (mark pushed) (Stencil_unit.output_channels u)
          end
      | Creader r ->
          if Memory_unit.Reader.is_done r then entries.(!i) <- Bskip
          else if not ready.(!i) then ok := false
          else begin
            entries.(!i) <- Breader r;
            cap (Memory_unit.Reader.words_remaining r);
            List.iter (mark pushed) (Memory_unit.Reader.output_channels r)
          end);
      incr i
    done;
    if !ok then
      for ci = 0 to nchan - 1 do
        if pushed.(ci) || popped.(ci) then begin
          let c = all_channels.(ci) in
          let occ = Channel.occupancy c in
          if pushed.(ci) && popped.(ci) then begin
            if occ < 1 then ok := false
          end
          else if pushed.(ci) then cap (Channel.capacity c - occ)
          else cap occ
        end
      done;
    if !ok && !k >= 2 then begin
      let kk = !k in
      for rel = 0 to kk - 1 do
        let nowr = now + rel in
        for j = 0 to ncomps - 1 do
          match entries.(j) with
          | Bskip -> ()
          | Bwriter w -> Memory_unit.Writer.run_fast w
          | Bunit (u, pl) -> Stencil_unit.run_planned u ~now:nowr pl
          | Breader r -> Memory_unit.Reader.run_fast r
        done
      done;
      cycle := now + kk;
      idle_cycles := 0;
      for j = 0 to ncomps - 1 do
        match entries.(j) with Bskip -> () | _ -> last_ran.(j) <- now + kk - 1
      done;
      true
    end
    else false
  in
  while (not (finished ())) && (not !deadlocked) && !cycle < max_cycles do
    if not (batchable && attempt_batch ()) then begin
      Array.iter Controller.begin_cycle system.mem_controllers;
      let now = !cycle in
      (match injector with Some inj -> Fault_plan.tick inj ~now | None -> ());
      let progress = ref false in
      for i = 0 to ncomps - 1 do
        if run_all || ready.(i) || wake_at.(i) <= now then begin
          if wake_at.(i) <= now then wake_at.(i) <- max_int;
          ready.(i) <- true;
          (match comps.(i) with
          | Clink l ->
              (* A slept link missed its per-cycle bandwidth refill; the
                 budget saturates after two grant-free refills, and the
                 sleep cycle itself was grant-free, so one catch-up
                 refill restores the exact seed budget. *)
              if last_ran.(i) < now - 1 then Link.refill l;
              if Link.cycle l ~now then progress := true
              else if Link.sources_empty l then begin
                ready.(i) <- false;
                wake_at.(i) <- Link.next_arrival l ~now
              end
          | Cwriter w ->
              if Memory_unit.Writer.cycle w ~now then progress := true;
              (* Sleep only when inert: done, or nothing to pop. A
                 bandwidth-denied writer must retry after the refill. *)
              if
                Memory_unit.Writer.is_done w
                || Channel.is_empty (Memory_unit.Writer.input_channel w)
              then ready.(i) <- false
          | Cunit u ->
              (* The unit counts one stall per cycle it runs without
                 progress; credit the slept cycles it would have stalled. *)
              if (not (Stencil_unit.is_done u)) && last_ran.(i) < now - 1 then
                Stencil_unit.add_stalls u (now - 1 - last_ran.(i));
              if Stencil_unit.cycle u ~now then progress := true
              else begin
                ready.(i) <- false;
                let nr = Stencil_unit.next_release u in
                if nr > now then wake_at.(i) <- nr
              end
          | Creader r ->
              if Memory_unit.Reader.cycle r ~now then progress := true;
              if
                Memory_unit.Reader.is_done r
                || List.exists Channel.is_full (Memory_unit.Reader.output_channels r)
              then ready.(i) <- false);
          last_ran.(i) <- now
        end
      done;
      sample_trace ();
      if !progress then idle_cycles := 0
      else begin
        incr idle_cycles;
        if !idle_cycles > deadlock_window then deadlocked := true
      end;
      (* Quiescence jump: with every component asleep, only timers can
         wake the system — skip straight to the earliest one, to the
         cycle where the idle counter would trip the deadlock window, or
         to the cycle budget, whichever comes first. The skipped cycles
         are provably no-ops (memory-controller budgets saturate, see the
         link catch-up note above), so counters land exactly where the
         seed's cycle-by-cycle spin would put them. *)
      let jumped = ref false in
      if (not !deadlocked) && (not (finished ())) && trace_interval = None && not run_all
      then begin
        let any_ready = ref false in
        for i = 0 to ncomps - 1 do
          if ready.(i) then any_ready := true
        done;
        if not !any_ready then begin
          let wake_min = Array.fold_left min max_int wake_at in
          let wake_min = if wake_min <= now then now + 1 else wake_min in
          let dead_at = now + (deadlock_window + 1 - !idle_cycles) in
          if dead_at < wake_min && dead_at < max_cycles then begin
            idle_cycles := deadlock_window + 1;
            deadlocked := true;
            cycle := dead_at + 1;
            jumped := true
          end
          else if wake_min <= dead_at && wake_min < max_cycles then begin
            idle_cycles := !idle_cycles + (wake_min - 1 - now);
            cycle := wake_min;
            jumped := true
          end
          else begin
            idle_cycles := !idle_cycles + (max_cycles - 1 - now);
            cycle := max_cycles;
            jumped := true
          end
        end
      end;
      if not !jumped then incr cycle
    end
  done;
  (* Settle the lazy stall accounting for units still asleep at exit. *)
  let final = !cycle in
  Array.iteri
    (fun i comp ->
      match comp with
      | Cunit u ->
          if (not (Stencil_unit.is_done u)) && last_ran.(i) < final - 1 then
            Stencil_unit.add_stalls u (final - 1 - last_ran.(i))
      | Clink _ | Cwriter _ | Creader _ -> ())
    comps;
  let report () = harvest ~telemetry ~system ~cycles:!cycle ~samples:(List.rev !trace) in
  let faults =
    match injector with Some inj -> Fault_plan.summary inj | None -> Fault_plan.empty_summary
  in
  if !deadlocked || not (finished ()) then begin
    (* Wait-for graph: who is each blocked component waiting on?
       A cycle through it is the circular dependency of Fig. 4. *)
    let module G = Sf_support.Dgraph.Make (String) in
    let g = ref G.empty in
    let ensure v = if not (G.mem_vertex !g v) then g := G.add_vertex !g v () in
    let wait_edge waiter waited =
      ensure waiter;
      ensure waited;
      g := G.add_edge !g ~src:waiter ~dst:waited ()
    in
    List.iter
      (fun (u, _) ->
        let name = Stencil_unit.name u in
        List.iter
          (fun b ->
            match b with
            | Stencil_unit.Input_empty field -> (
                match Hashtbl.find_opt system.producer_for (name, field) with
                | Some producer -> wait_edge name producer
                | None -> ())
            | Stencil_unit.Output_full channel -> (
                match Hashtbl.find_opt system.channel_consumer channel with
                | Some consumer -> wait_edge name consumer
                | None -> ()))
          (Stencil_unit.blockages u))
      system.units;
    List.iter
      (fun (r, _) ->
        List.iter
          (fun channel ->
            match Hashtbl.find_opt system.channel_consumer channel with
            | Some consumer -> wait_edge (Memory_unit.Reader.name r) consumer
            | None -> ())
          (Memory_unit.Reader.full_output_channels r))
      system.readers;
    List.iter
      (fun (o, w, _) ->
        if Memory_unit.Writer.waiting_on_input w then
          wait_edge (Memory_unit.Writer.name w) o)
      system.writers;
    let wait_cycle =
      match G.topological_sort !g with
      | Ok _ -> []
      | Error remaining ->
          (* Walk successors within the cyclic residue until a repeat. *)
          let in_residue v = List.exists (String.equal v) remaining in
          let rec walk path v =
            if List.exists (String.equal v) path then begin
              (* [path] holds the visit order newest-first; reverse it and
                 trim everything before the first occurrence of v, leaving
                 the cycle in wait-for order (x waits on its successor). *)
              let rec drop = function
                | [] -> []
                | x :: rest -> if String.equal x v then x :: rest else drop rest
              in
              drop (List.rev (v :: path))
            end
            else
              match List.find_opt (fun (s, ()) -> in_residue s) (G.succs !g v) with
              | Some (next, ()) -> walk (v :: path) next
              | None -> []
          in
          (match remaining with [] -> [] | v :: _ -> walk [] v)
    in
    let blocked =
      List.filter_map
        (fun (u, _) ->
          Option.map (fun r -> (Stencil_unit.name u, r)) (Stencil_unit.blocked_reason u))
        system.units
      @ List.filter_map
          (fun (r, _) ->
            Option.map
              (fun reason -> (Memory_unit.Reader.name r, reason))
              (Memory_unit.Reader.blocked_reason r))
          system.readers
      @ List.filter_map
          (fun (_, w, _) ->
            Option.map
              (fun reason -> (Memory_unit.Writer.name w, reason))
              (Memory_unit.Writer.blocked_reason w))
          system.writers
    in
    Deadlocked
      {
        cycle = !cycle;
        blocked;
        wait_cycle;
        timed_out = not !deadlocked;
        telemetry = report ();
        faults;
      }
  end
  else Completed (completed_stats ~faults ~system ~predicted ~cycles:!cycle ~report:(report ()) p)

(* The structured failure of a non-completing run: SF0701 for a true
   deadlock (the idle window tripped), SF0703 for a cycle-budget
   timeout. The circular wait and per-component blocked reasons ride
   along as notes, followed by the configured cycle budget on a timeout,
   fault-attribution rows when a fault plan was active, and the top
   stall-attribution rows when telemetry was enabled. *)
let failure_diag ?budget ?(faults = Fault_plan.empty_summary) ~cycle ~blocked ~wait_cycle
    ~timed_out ~telemetry () =
  let code = if timed_out then Diag.Code.sim_timeout else Diag.Code.sim_deadlock in
  let what = if timed_out then "timed out" else "deadlocked" in
  let d = Diag.errorf ~code "simulation %s at cycle %d" what cycle in
  let d =
    match wait_cycle with
    | [] -> d
    | ws -> Diag.add_note ("circular wait: " ^ String.concat " -> " ws) d
  in
  let d =
    List.fold_left (fun d (n, r) -> Diag.add_note (Printf.sprintf "%s: %s" n r) d) d blocked
  in
  let d =
    match (timed_out, budget) with
    | true, Some b ->
        Diag.add_note
          (Printf.sprintf "cycle budget: %d (Config.safety.max_cycles / --max-cycles)" b)
          d
    | _ -> d
  in
  let d =
    List.fold_left
      (fun d n -> Diag.add_note n d)
      d
      (Fault_plan.attribution_notes faults ~stall_cycle:cycle)
  in
  List.fold_left (fun d n -> Diag.add_note n d) d (Telemetry.attribution_notes telemetry)

let run ?(config = Config.default) ?placement ?inputs p =
  match run_exn ~config ?placement ?inputs p with
  | Completed stats -> Ok stats
  | Deadlocked { cycle; blocked; wait_cycle; timed_out; telemetry; faults } ->
      Error
        (failure_diag ?budget:config.Config.safety.Config.max_cycles ~faults ~cycle ~blocked
           ~wait_cycle ~timed_out ~telemetry ())

let run_and_validate ?config ?placement ?inputs p =
  let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
  match run ?config ?placement ~inputs p with
  | Error d -> Error d
  | Ok stats -> compare_to_reference ~inputs p stats
