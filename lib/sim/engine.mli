(** The cycle-level spatial simulator: this reproduction's substitute for
    the paper's Stratix 10 testbed (see DESIGN.md).

    The engine instantiates one {!Stencil_unit} per stencil, FIFO
    channels with the depths computed by the delay-buffer analysis
    (Sec. IV-B), prefetching memory readers and buffering writers behind a
    bandwidth-limited memory {!Controller} per device, and network
    {!Link}s for edges whose endpoints are placed on different devices
    (Sec. III-B). It then advances the whole system cycle by cycle until
    all program outputs have been written, or reports a deadlock when no
    component can make progress.

    Because the units execute the real computations on real data, a run
    both measures cycles (to validate the model C = L + N of Eq. 1) and
    produces output tensors (validated against {!Sf_reference.Interp}). *)

type config = {
  latency : Sf_analysis.Latency.config;
  channel_slack : int;
      (** Extra FIFO capacity on every channel beyond the analysed delay
          buffer, covering per-hop pipeline registers. *)
  writer_buffer : int;  (** Extra buffering in front of memory writers. *)
  mem_bytes_per_cycle : float;  (** Per-device off-chip bandwidth. *)
  net_bytes_per_cycle : float;  (** Per-link network bandwidth. *)
  net_latency_cycles : int;
  deadlock_window : int;
      (** Cycles without any progress before declaring deadlock. *)
  max_cycles : int option;
  override_edge_buffers : ((string * string) * int) list;
      (** Replace the analysed buffer size on specific edges — used by the
          deadlock experiments (Fig. 4) to demonstrate what happens with
          insufficient buffering. *)
  trace_interval : int option;
      (** When set, sample every channel's occupancy every N cycles into
          {!stats.trace} (for visualizing fill behaviour and buffer
          tightness over time). *)
}

val default_config : config

type stats = {
  cycles : int;
  predicted_cycles : int;  (** L + N/W from the runtime model (Eq. 1). *)
  results : (string * Sf_reference.Interp.result) list;
  bytes_read : int;
  bytes_written : int;
  network_bytes : int;
  unit_stalls : (string * int) list;
  channel_high_water : (string * int * int) list;  (** name, high water, capacity *)
  trace : (int * (string * int) list) list;
      (** Occupancy samples [(cycle, [(channel, occupancy)])], empty
          unless [trace_interval] is set. *)
}

type outcome =
  | Completed of stats
  | Deadlocked of {
      cycle : int;
      blocked : (string * string) list;  (** Component names with reasons. *)
      wait_cycle : string list;
          (** One circular wait through the blocked components — the
              concrete instance of Fig. 4's deadlock (e.g. [a] waits on
              [c] accepting data, [c] on [b] producing, [b] on [a]).
              Empty if no cycle was identified (e.g. a timeout rather
              than a true deadlock). *)
    }

val run :
  ?config:config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  outcome
(** Simulate a program. [placement] maps each stencil name to a device
    index (default: everything on device 0); input fields are replicated
    to every device that reads them. [inputs] default to
    {!Sf_reference.Interp.random_inputs}. *)

val run_and_validate :
  ?config:config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  (stats, string) result
(** {!run}, then compare every program output against the sequential
    reference interpreter. [Error] carries a diagnostic on deadlock,
    timeout, or mismatch. *)
