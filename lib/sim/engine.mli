(** The cycle-level spatial simulator: this reproduction's substitute for
    the paper's Stratix 10 testbed (see DESIGN.md).

    The engine instantiates one {!Stencil_unit} per stencil, FIFO
    channels with the depths computed by the delay-buffer analysis
    (Sec. IV-B), prefetching memory readers and buffering writers behind a
    bandwidth-limited memory {!Controller} per device, and network
    {!Link}s for edges whose endpoints are placed on different devices
    (Sec. III-B). It then advances the whole system cycle by cycle until
    all program outputs have been written, or reports a deadlock when no
    component can make progress.

    Because the units execute the real computations on real data, a run
    both measures cycles (to validate the model C = L + N of Eq. 1) and
    produces output tensors (validated against {!Sf_reference.Interp}).

    Every run carries a {!Telemetry.report}: push/pop/byte counters and
    channel high-water marks are harvested from always-on component
    counters at no per-cycle cost, while per-cause stall attribution and
    the event trace require {!Config.tracing} with [telemetry = true]
    (which runs the engine instrumented — same cycle and stall counts,
    slower wall-clock; see docs/SIMULATOR.md). *)

(** Engine configuration, grouped by concern. Build one with
    {!Config.make}; every group has a smart constructor supplying the
    defaults, so call sites name only what they change:
    {[
      Engine.Config.make
        ~bandwidth:(Engine.Config.bandwidth ~mem_bytes_per_cycle:64. ())
        ~safety:(Engine.Config.safety ~max_cycles:100_000 ())
        ()
    ]} *)
module Config : sig
  type bandwidth = {
    mem_bytes_per_cycle : float;  (** Per-device off-chip bandwidth. *)
    writer_buffer : int;  (** Extra buffering in front of memory writers. *)
  }

  type network = {
    net_bytes_per_cycle : float;  (** Per-link network bandwidth. *)
    net_latency_cycles : int;
  }

  type safety = {
    deadlock_window : int;
        (** Cycles without any progress before declaring deadlock. *)
    max_cycles : int option;
  }

  type tracing = {
    trace_interval : int option;
        (** When set, sample every channel's occupancy every N cycles into
            {!Telemetry.report.samples} (for visualizing fill behaviour
            and buffer tightness over time). *)
    telemetry : bool;
        (** Run instrumented: classify every component's no-progress
            cycles by cause and record stall spans for the event trace.
            Cycle and stall counts are identical to an uninstrumented
            run; only wall-clock time differs. *)
  }

  type par_mode = [ `Sequential | `Domains_per_device ]

  type parallelism = {
    mode : par_mode;
        (** [`Domains_per_device] asks {!Parallel.run_exn} to spawn one
            OCaml domain per device and synchronize them only at link
            boundaries. The sequential {!run_exn} ignores this field;
            route runs through {!Parallel} to honour it. *)
    window_cycles : int;
        (** How far a domain may run ahead of its downstream consumers
            before it blocks, bounding cross-domain ring occupancy.
            [0] (the default) sizes the window automatically:
            [max 1024 (4 * net_latency_cycles)], well beyond the
            lookahead, with the transport rings sized to match. Purely a
            throughput/memory knob: any positive value yields
            bit-identical results. *)
    sync_batch_cycles : int;
        (** Commit batching: a domain publishes its committed-cycle
            clock (and progress counter) every this many executed cycles
            instead of every cycle, and always flushes before blocking
            on a neighbour — so batching can delay a waiter, never
            deadlock it. [0] (the default) derives the batch from the
            smallest link latency (clamped to [1, 64]). Purely a
            throughput knob: results are bit-identical for any positive
            value. *)
    host_jobs : int;
        (** How many hardware threads this process may assume (the CLI
            [--jobs]). [0] (the default) means
            [Domain.recommended_domain_count ()]. When fewer than the
            spawned domains, blocked domains park on their condition
            variable immediately instead of spinning first, so an
            oversubscribed host degrades gracefully. *)
  }

  val bandwidth : ?mem_bytes_per_cycle:float -> ?writer_buffer:int -> unit -> bandwidth
  (** Defaults: unlimited bandwidth, 8 words of writer buffering. *)

  val network : ?net_bytes_per_cycle:float -> ?net_latency_cycles:int -> unit -> network
  (** Defaults: unlimited bandwidth, 64 cycles latency. *)

  val safety : ?deadlock_window:int -> ?max_cycles:int -> unit -> safety
  (** Defaults: 4096-cycle idle window, no cycle budget. *)

  val tracing : ?trace_interval:int -> ?telemetry:bool -> unit -> tracing
  (** Defaults: no occupancy sampling, telemetry off. *)

  val parallelism :
    ?mode:par_mode ->
    ?window_cycles:int ->
    ?sync_batch_cycles:int ->
    ?host_jobs:int ->
    unit ->
    parallelism
  (** Defaults: sequential execution, automatic run-ahead window,
      automatic commit batch, automatic host-thread count. *)

  type faults = {
    plan : Fault_plan.t option;
        (** When set, the engine runs with deterministic fault injection:
            the plan's bursts/events perturb component timing (never
            values) and its depth overrides shrink specific channels.
            Injected runs use the instrumented run-everything schedule. *)
    fault_seed : int;
        (** Seed of the fault timeline. The whole perturbation sequence
            is a pure function of [(fault_seed, plan)]. *)
  }

  val faults : ?plan:Fault_plan.t -> ?seed:int -> unit -> faults
  (** Defaults: no plan (faults disabled), seed 1. *)

  type t = {
    latency : Sf_analysis.Latency.config;
    channel_slack : int;
        (** Extra FIFO capacity on every channel beyond the analysed delay
            buffer, covering per-hop pipeline registers. *)
    override_edge_buffers : ((string * string) * int) list;
        (** Replace the analysed buffer size on specific edges — used by
            the deadlock experiments (Fig. 4) to demonstrate what happens
            with insufficient buffering. *)
    bandwidth : bandwidth;
    network : network;
    safety : safety;
    tracing : tracing;
    parallelism : parallelism;
    faults : faults;
  }

  val make :
    ?latency:Sf_analysis.Latency.config ->
    ?channel_slack:int ->
    ?override_edge_buffers:((string * string) * int) list ->
    ?bandwidth:bandwidth ->
    ?network:network ->
    ?safety:safety ->
    ?tracing:tracing ->
    ?parallelism:parallelism ->
    ?faults:faults ->
    unit ->
    t

  val default : t
  (** [make ()]. *)

  val latency_fingerprint : Sf_analysis.Latency.config -> Sf_support.Fingerprint.t
  (** Content digest of just the operator-latency table — the part of
      the config that delay-buffer analysis and the performance model
      actually read, so cache keys for those passes ignore unrelated
      simulation knobs (seed, safety limits, tracing). *)

  val fingerprint : t -> Sf_support.Fingerprint.t
  (** Content digest over every field (fault plans via their canonical
      [Fault_plan.to_string] rendering). *)
end

type config = Config.t

type stats = {
  cycles : int;
  predicted_cycles : int;  (** L + N/W from the runtime model (Eq. 1). *)
  results : (string * Sf_reference.Interp.result) list;
  bytes_read : int;
  bytes_written : int;
  network_bytes : int;
  telemetry : Telemetry.report;
      (** Typed counter registry, channel occupancy samples and (when
          instrumented) stall attribution + event spans. The legacy
          shapes are derivable via {!Telemetry.unit_stalls} and
          {!Telemetry.channel_high_water}. *)
  faults : Fault_plan.summary;
      (** What the fault injector actually did: activation count,
          perturbed component-cycles and the chronological event log.
          {!Fault_plan.empty_summary} when no plan was configured. *)
}

type outcome =
  | Completed of stats
  | Deadlocked of {
      cycle : int;
      blocked : (string * string) list;  (** Component names with reasons. *)
      wait_cycle : string list;
          (** One circular wait through the blocked components — the
              concrete instance of Fig. 4's deadlock (e.g. [a] waits on
              [c] accepting data, [c] on [b] producing, [b] on [a]).
              Empty if no cycle was identified (e.g. a timeout rather
              than a true deadlock). *)
      timed_out : bool;
          (** The cycle budget ran out before the idle window tripped —
              a timeout ([SF0703]) rather than a true deadlock
              ([SF0701]). *)
      telemetry : Telemetry.report;
      faults : Fault_plan.summary;
          (** The injected-event log up to the failure, for
              fault-attribution notes. *)
    }

val run_exn :
  ?config:config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  outcome
(** Simulate a program. [placement] maps each stencil name to a device
    index (default: everything on device 0); input fields are replicated
    to every device that reads them. [inputs] default to
    {!Sf_reference.Interp.random_inputs}. Despite the name this raises
    only on malformed programs ({!Sf_ir.Program.validate_exn}); a
    non-completing simulation is the [Deadlocked] outcome. *)

val run :
  ?config:config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  (stats, Sf_support.Diag.t) result
(** {!run_exn} with structured failure: a deadlock maps to a Diag with
    code [SF0701], a cycle-budget timeout to [SF0703]. The Diag's notes
    carry the circular wait, each blocked component's reason, and (when
    instrumented) the top stall-attribution rows. *)

val run_and_validate :
  ?config:config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  Sf_ir.Program.t ->
  (stats, Sf_support.Diag.t) result
(** {!run}, then compare every program output against the sequential
    reference interpreter. A mismatch maps to code [SF0702]. *)

val failure_diag :
  ?budget:int ->
  ?faults:Fault_plan.summary ->
  cycle:int ->
  blocked:(string * string) list ->
  wait_cycle:string list ->
  timed_out:bool ->
  telemetry:Telemetry.report ->
  unit ->
  Sf_support.Diag.t
(** The structured diagnostic of a [Deadlocked] outcome: [SF0701] for a
    true deadlock, [SF0703] for a cycle-budget timeout, with the
    circular wait and blocked reasons as notes. [budget] (echoed on
    timeouts) records the configured cycle ceiling; [faults] adds
    fault-attribution notes naming the injected events that preceded the
    stall. Shared with {!Parallel.run}. *)

(** {2 Internal plumbing}

    The simulated system model, shared between this sequential engine
    and the domain-parallel one ({!Parallel}): both build the exact same
    components via {!Internal.build} and harvest the exact same counters
    via {!Internal.harvest}, so observable behaviour can only differ if
    a scheduler bug makes it differ — which the cross-engine parity
    tests would catch. Not part of the stable API. *)
module Internal : sig
  type system = {
    channels : Channel.t list ref;
    units : (Stencil_unit.t * Telemetry.probe option) list;
    readers : (Memory_unit.Reader.t * Telemetry.probe option) list;
    writers : (string * Memory_unit.Writer.t * Telemetry.probe option) list;
    links : (Link.t * Telemetry.probe option) list;
    mem_controllers : Controller.t array;
    prefetch_bytes : int;
    writers_done : int ref;
    channel_consumer : (string, string) Hashtbl.t;
    producer_for : (string * string, string) Hashtbl.t;
    comp_device : (string, int) Hashtbl.t;
        (** Home device of every unit, reader and writer, by name. *)
    cross_ports : (Link.t * int * int * Channel.t * Channel.t * int) list;
        (** Every cross-device link port as [(link, src_device,
            dst_device, near_channel, far_channel, word_bytes)], in the
            order {!Link.cycle} visits ports. *)
  }

  val build :
    config:Config.t ->
    telemetry:Telemetry.t ->
    placement:(string -> int) ->
    inputs:(string * Sf_reference.Tensor.t) list ->
    Sf_ir.Program.t ->
    system * int
  (** Instantiate the system; the [int] is the model-predicted cycle
      count (Eq. 1). Raises on malformed programs. *)

  val harvest :
    telemetry:Telemetry.t ->
    system:system ->
    cycles:int ->
    samples:(int * (string * int) list) list ->
    Telemetry.report

  val completed_stats :
    ?faults:Fault_plan.summary ->
    system:system ->
    predicted:int ->
    cycles:int ->
    report:Telemetry.report ->
    Sf_ir.Program.t ->
    stats

  val compare_to_reference :
    inputs:(string * Sf_reference.Tensor.t) list ->
    Sf_ir.Program.t ->
    stats ->
    (stats, Sf_support.Diag.t) result
end
