open Sf_ir
module Tensor = Sf_reference.Tensor

type input_binding = {
  field : string;
  channel : Channel.t option;
  prefetched : Tensor.t option;
}

(* Ring buffer over the flattened element stream of one full-rank input:
   the shift register of Fig. 6. [newest] is the flat element index of the
   most recently received element (-1 before any data arrives). *)
type window = { data : float array; cap : int; mutable newest : int }

type input_state = {
  field : string;
  channel : Channel.t option;
  window : window option;
  prefetched : Tensor.t option;
  axes : int list;
  start_step : int;
  boundary : Boundary.t;
}

(* Mutable per-cell context threaded through the compiled expression:
   the flat cell index, its multi-index, and the out-of-bounds flag. *)
type cell_ctx = { mutable cell_flat : int; idx : int array; mutable oob : bool }

type t = {
  name : string;
  shape : int array;
  strides : int array;
  w : int;
  cells : int;
  n_words : int;
  init_max : int;
  compute_cycles : int;
  inputs : input_state array;
  outputs : Channel.t list;
  compiled : cell_ctx -> float;
  ctx : cell_ctx;
  shrink : bool;
  mutable step : int;
  pending : (int * Word.t) Queue.t;
  mutable stalls : int;
}

let window_get win e =
  assert (e <= win.newest && e > win.newest - win.cap && e >= 0);
  win.data.(e mod win.cap)

let window_append win v =
  win.newest <- win.newest + 1;
  win.data.(win.newest mod win.cap) <- v

let create ~program ~stencil ~compute_cycles ~inputs ~outputs =
  let shape_list = program.Program.shape in
  let shape = Array.of_list shape_list in
  let strides = Array.of_list (Program.strides program) in
  let w = program.Program.vector_width in
  let cells = Program.cells program in
  let n_words = cells / w in
  let buffers = Sf_analysis.Internal_buffer.of_stencil program stencil in
  let init_max = Sf_analysis.Internal_buffer.stencil_init_cycles program stencil in
  let full_rank = Program.rank program in
  let input_states =
    List.map
      (fun (b : input_binding) ->
        let axes = Program.field_axes program b.field in
        let is_full = List.length axes = full_rank in
        let window, start_step =
          if not is_full then (None, 0)
          else begin
            let info =
              List.find
                (fun (ib : Sf_analysis.Internal_buffer.t) -> String.equal ib.field b.field)
                buffers
            in
            let init_extra = Sf_support.Util.ceil_div info.init_elements (max 1 w) in
            let cap =
              ((init_extra + 2) * w) + max 0 (-info.Sf_analysis.Internal_buffer.min_flat) + w
            in
            ( Some { data = Array.make cap 0.; cap; newest = -1 },
              init_max - init_extra )
          end
        in
        {
          field = b.field;
          channel = b.channel;
          window;
          prefetched = b.prefetched;
          axes;
          start_step;
          boundary = Stencil.boundary_for stencil b.field;
        })
      inputs
  in
  let inputs_arr = Array.of_list input_states in
  (* Compile the body once: every access pre-resolves its input, flat
     offset, per-dimension bounds data and boundary condition, leaving
     only loads and arithmetic per cell (see Sf_reference.Compile). *)
  let access ~field ~offsets =
    let input =
      match Array.find_opt (fun i -> String.equal i.field field) inputs_arr with
      | Some i -> i
      | None -> failwith (Printf.sprintf "stencil %s: unbound access to %s" stencil.Stencil.name field)
    in
    match input.window with
    | Some win ->
        let rank = Array.length shape in
        let offs = Array.of_list offsets in
        let flat =
          List.fold_left ( + ) 0 (List.mapi (fun d o -> o * strides.(d)) offsets)
        in
        let boundary = input.boundary in
        fun (ctx : cell_ctx) ->
          let in_bounds = ref true in
          for d = 0 to rank - 1 do
            let i = ctx.idx.(d) + offs.(d) in
            if i < 0 || i >= shape.(d) then in_bounds := false
          done;
          if !in_bounds then window_get win (ctx.cell_flat + flat)
          else begin
            ctx.oob <- true;
            match boundary with
            | Boundary.Constant c -> c
            | Boundary.Copy -> window_get win ctx.cell_flat
          end
    | None ->
        let tensor = Option.get input.prefetched in
        let axes = Array.of_list input.axes in
        let offs = Array.of_list offsets in
        let n = Array.length axes in
        let extents = Array.map (fun axis -> shape.(axis)) axes in
        let tstrides =
          let st = Array.make (max 1 n) 1 in
          for d = n - 2 downto 0 do
            st.(d) <- st.(d + 1) * extents.(d + 1)
          done;
          st
        in
        let boundary = input.boundary in
        fun (ctx : cell_ctx) ->
          let flat = ref 0 in
          let center = ref 0 in
          let in_bounds = ref true in
          for d = 0 to n - 1 do
            let base = ctx.idx.(axes.(d)) in
            let target = base + offs.(d) in
            if target < 0 || target >= extents.(d) then in_bounds := false;
            flat := !flat + (target * tstrides.(d));
            center := !center + (base * tstrides.(d))
          done;
          if !in_bounds then Tensor.get_flat tensor !flat
          else begin
            ctx.oob <- true;
            match boundary with
            | Boundary.Constant c -> c
            | Boundary.Copy -> Tensor.get_flat tensor !center
          end
  in
  let compiled = Sf_reference.Compile.body ~access stencil.Stencil.body in
  {
    name = stencil.Stencil.name;
    shape;
    strides;
    w;
    cells;
    n_words;
    init_max;
    compute_cycles;
    inputs = inputs_arr;
    outputs;
    compiled;
    ctx = { cell_flat = 0; idx = Array.make (Array.length shape) 0; oob = false };
    shrink = stencil.Stencil.shrink;
    step = 0;
    pending = Queue.create ();
    stalls = 0;
  }

let name t = t.name
let total_steps t = t.init_max + t.n_words
let is_done t = t.step >= total_steps t && Queue.is_empty t.pending
let stall_cycles t = t.stalls
let steps_completed t = t.step

(* Input [i] must consume a word at pipeline step [s]. *)
let consuming_at i s =
  match i.window with
  | None -> false (* prefetched: never streams *)
  | Some _ -> s >= i.start_step

let consuming_active t i = consuming_at i t.step && t.step - i.start_step < t.n_words

let compute_word t word_index =
  let word = Word.create t.w in
  let rank = Array.length t.shape in
  for lane = 0 to t.w - 1 do
    let cell_flat = (word_index * t.w) + lane in
    t.ctx.cell_flat <- cell_flat;
    (* Recover the multi-index for boundary predication. *)
    let rec fill d rem =
      if d < rank then begin
        t.ctx.idx.(d) <- rem / t.strides.(d);
        fill (d + 1) (rem mod t.strides.(d))
      end
    in
    fill 0 cell_flat;
    t.ctx.oob <- false;
    word.Word.values.(lane) <- t.compiled t.ctx;
    if t.shrink && t.ctx.oob then word.Word.valid.(lane) <- false
  done;
  word

let try_flush t ~now =
  match Queue.peek_opt t.pending with
  | Some (release, word) when release <= now && List.for_all (fun c -> not (Channel.is_full c)) t.outputs ->
      ignore (Queue.pop t.pending);
      List.iter (fun c -> Channel.push c (Word.copy word)) t.outputs;
      true
  | Some _ | None -> false

let try_step t ~now =
  if t.step >= total_steps t then false
  else if Queue.length t.pending > t.compute_cycles then false
  else begin
    let ready =
      Array.for_all
        (fun i ->
          (not (consuming_active t i))
          || match i.channel with Some c -> not (Channel.is_empty c) | None -> true)
        t.inputs
    in
    if not ready then false
    else begin
      Array.iter
        (fun i ->
          if consuming_active t i then begin
            let word = Channel.pop (Option.get i.channel) in
            let win = Option.get i.window in
            Array.iter (fun v -> window_append win v) word.Word.values
          end)
        t.inputs;
      if t.step >= t.init_max then begin
        let word_index = t.step - t.init_max in
        let word = compute_word t word_index in
        Queue.push (now + t.compute_cycles, word) t.pending
      end;
      t.step <- t.step + 1;
      true
    end
  end

let cycle t ~now =
  let flushed = try_flush t ~now in
  let stepped = try_step t ~now in
  let progress = flushed || stepped in
  if (not progress) && not (is_done t) then t.stalls <- t.stalls + 1;
  progress

type blockage = Input_empty of string | Output_full of string

let blockages t =
  if is_done t then []
  else
    (Array.to_list t.inputs
    |> List.filter_map (fun i ->
           match i.channel with
           | Some c when consuming_active t i && Channel.is_empty c -> Some (Input_empty i.field)
           | Some _ | None -> None))
    @ List.filter_map
        (fun c -> if Channel.is_full c then Some (Output_full (Channel.name c)) else None)
        t.outputs

let blocked_reason t =
  if is_done t then None
  else begin
    let input_block =
      Array.to_list t.inputs
      |> List.filter_map (fun i ->
             match i.channel with
             | Some c when consuming_active t i && Channel.is_empty c ->
                 Some (Printf.sprintf "waiting on empty input %s" i.field)
             | Some _ | None -> None)
    in
    let output_block =
      List.filter_map
        (fun c -> if Channel.is_full c then Some (Printf.sprintf "output %s full" (Channel.name c)) else None)
        t.outputs
    in
    match input_block @ output_block with
    | [] -> Some "pipeline in flight"
    | reasons -> Some (String.concat "; " reasons)
  end
