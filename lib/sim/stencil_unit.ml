open Sf_ir
module Tensor = Sf_reference.Tensor

type input_binding = {
  field : string;
  channel : Channel.t option;
  prefetched : Tensor.t option;
}

(* Ring buffer over the flattened element stream of one full-rank input:
   the shift register of Fig. 6. [newest] is the flat element index of the
   most recently received element (-1 before any data arrives). *)
type window = { data : float array; cap : int; mutable newest : int }

type input_state = {
  field : string;
  channel : Channel.t option;
  window : window option;
  prefetched : Tensor.t option;
  axes : int list;
  start_step : int;
  boundary : Boundary.t;
}

(* Mutable per-cell context threaded through the compiled expression:
   the flat cell index, its multi-index, and the out-of-bounds flag. *)
type cell_ctx = { mutable cell_flat : int; idx : int array; mutable oob : bool }

type t = {
  name : string;
  shape : int array;
  strides : int array;
  w : int;
  n_words : int;
  init_max : int;
  compute_cycles : int;
  inputs : input_state array;
  outputs : Channel.t array;
  compiled : cell_ctx -> float;
  ctx : cell_ctx;
  shrink : bool;
  mutable step : int;
  (* The delay line of computed-but-not-yet-emitted words, as a
     structure-of-arrays ring: release cycle per slot, plus the lane
     values and validity flattened at [slot * w]. Occupancy never
     exceeds compute_cycles + 1 (the pipeline depth guard in try_step),
     so compute_cycles + 2 slots suffice. *)
  pend_release : int array;
  pend_values : float array;
  pend_valid : bool array;
  pend_cap : int;
  mutable pend_head : int;
  mutable pend_count : int;
  (* Next flat cell index expected by the incremental multi-index: when
     compute proceeds sequentially (the common case) [ctx.idx] is
     advanced by carry propagation instead of per-lane division. *)
  mutable next_flat : int;
  mutable stalls : int;
  (* Fault-injection flag (Fault_plan): a hiccup freezes the pipeline
     for the cycle. Cleared by the injector each cycle. *)
  mutable hiccup : bool;
  probe : Telemetry.probe option;
}

let window_get win e =
  assert (e <= win.newest && e > win.newest - win.cap && e >= 0);
  win.data.(e mod win.cap)

let window_append win v =
  win.newest <- win.newest + 1;
  win.data.(win.newest mod win.cap) <- v

let create ?probe ~program ~stencil ~compute_cycles ~inputs ~outputs () =
  let shape_list = program.Program.shape in
  let shape = Array.of_list shape_list in
  let strides = Array.of_list (Program.strides program) in
  let w = program.Program.vector_width in
  let cells = Program.cells program in
  let n_words = cells / w in
  let buffers = Sf_analysis.Internal_buffer.of_stencil program stencil in
  let init_max = Sf_analysis.Internal_buffer.stencil_init_cycles program stencil in
  let full_rank = Program.rank program in
  let input_states =
    List.map
      (fun (b : input_binding) ->
        let axes = Program.field_axes program b.field in
        let is_full = List.length axes = full_rank in
        let window, start_step =
          if not is_full then (None, 0)
          else begin
            let info =
              List.find
                (fun (ib : Sf_analysis.Internal_buffer.t) -> String.equal ib.field b.field)
                buffers
            in
            let init_extra = Sf_support.Util.ceil_div info.init_elements (max 1 w) in
            let cap =
              ((init_extra + 2) * w) + max 0 (-info.Sf_analysis.Internal_buffer.min_flat) + w
            in
            ( Some { data = Array.make cap 0.; cap; newest = -1 },
              init_max - init_extra )
          end
        in
        {
          field = b.field;
          channel = b.channel;
          window;
          prefetched = b.prefetched;
          axes;
          start_step;
          boundary = Stencil.boundary_for stencil b.field;
        })
      inputs
  in
  let inputs_arr = Array.of_list input_states in
  (* Compile the body once: every access pre-resolves its input, flat
     offset, per-dimension bounds data and boundary condition, leaving
     only loads and arithmetic per cell (see Sf_reference.Compile). *)
  let access ~field ~offsets =
    let input =
      match Array.find_opt (fun i -> String.equal i.field field) inputs_arr with
      | Some i -> i
      | None -> failwith (Printf.sprintf "stencil %s: unbound access to %s" stencil.Stencil.name field)
    in
    match input.window with
    | Some win ->
        let rank = Array.length shape in
        let offs = Array.of_list offsets in
        let flat =
          List.fold_left ( + ) 0 (List.mapi (fun d o -> o * strides.(d)) offsets)
        in
        let boundary = input.boundary in
        fun (ctx : cell_ctx) ->
          let in_bounds = ref true in
          for d = 0 to rank - 1 do
            let i = ctx.idx.(d) + offs.(d) in
            if i < 0 || i >= shape.(d) then in_bounds := false
          done;
          if !in_bounds then window_get win (ctx.cell_flat + flat)
          else begin
            ctx.oob <- true;
            match boundary with
            | Boundary.Constant c -> c
            | Boundary.Copy -> window_get win ctx.cell_flat
          end
    | None ->
        let tensor = Option.get input.prefetched in
        let axes = Array.of_list input.axes in
        let offs = Array.of_list offsets in
        let n = Array.length axes in
        let extents = Array.map (fun axis -> shape.(axis)) axes in
        let tstrides =
          let st = Array.make (max 1 n) 1 in
          for d = n - 2 downto 0 do
            st.(d) <- st.(d + 1) * extents.(d + 1)
          done;
          st
        in
        let boundary = input.boundary in
        fun (ctx : cell_ctx) ->
          let flat = ref 0 in
          let center = ref 0 in
          let in_bounds = ref true in
          for d = 0 to n - 1 do
            let base = ctx.idx.(axes.(d)) in
            let target = base + offs.(d) in
            if target < 0 || target >= extents.(d) then in_bounds := false;
            flat := !flat + (target * tstrides.(d));
            center := !center + (base * tstrides.(d))
          done;
          if !in_bounds then Tensor.get_flat tensor !flat
          else begin
            ctx.oob <- true;
            match boundary with
            | Boundary.Constant c -> c
            | Boundary.Copy -> Tensor.get_flat tensor !center
          end
  in
  (* Compile.body schedules the body's hash-consed DAG into slots: every
     shared node (let-bound or structural) is evaluated once per cell,
     mirroring the fan-out of the spatial pipeline. *)
  let compiled = Sf_reference.Compile.body ~access stencil.Stencil.body in
  let pend_cap = compute_cycles + 2 in
  {
    name = stencil.Stencil.name;
    shape;
    strides;
    w;
    n_words;
    init_max;
    compute_cycles;
    inputs = inputs_arr;
    outputs = Array.of_list outputs;
    compiled;
    ctx = { cell_flat = 0; idx = Array.make (Array.length shape) 0; oob = false };
    shrink = stencil.Stencil.shrink;
    step = 0;
    pend_release = Array.make pend_cap 0;
    pend_values = Array.make (pend_cap * w) 0.;
    pend_valid = Array.make (pend_cap * w) true;
    pend_cap;
    pend_head = 0;
    pend_count = 0;
    next_flat = 0;
    stalls = 0;
    hiccup = false;
    probe;
  }

let name t = t.name
let total_steps t = t.init_max + t.n_words
let is_done t = t.step >= total_steps t && t.pend_count = 0
let stall_cycles t = t.stalls
let steps_completed t = t.step
let add_stalls t n = t.stalls <- t.stalls + n

let input_channels t =
  Array.to_list t.inputs |> List.filter_map (fun i -> i.channel)

let output_channels t = Array.to_list t.outputs
let next_release t = if t.pend_count = 0 then max_int else t.pend_release.(t.pend_head)

(* Input [i] must consume a word at pipeline step [s]. *)
let consuming_at i s =
  match i.window with
  | None -> false (* prefetched: never streams *)
  | Some _ -> s >= i.start_step

let consuming_active t i = consuming_at i t.step && t.step - i.start_step < t.n_words

(* Compute one output word into the pending slot whose value base is
   [vbase]. The multi-index for boundary predication is carried
   incrementally from cell to cell; the division rebuild only runs if a
   word is ever computed out of sequence. *)
let compute_into t word_index vbase =
  let rank = Array.length t.shape in
  for lane = 0 to t.w - 1 do
    let cell_flat = (word_index * t.w) + lane in
    if cell_flat <> t.next_flat then begin
      let rec fill d rem =
        if d < rank then begin
          t.ctx.idx.(d) <- rem / t.strides.(d);
          fill (d + 1) (rem mod t.strides.(d))
        end
      in
      fill 0 cell_flat;
      t.next_flat <- cell_flat
    end;
    t.ctx.cell_flat <- cell_flat;
    t.ctx.oob <- false;
    t.pend_values.(vbase + lane) <- t.compiled t.ctx;
    t.pend_valid.(vbase + lane) <- not (t.shrink && t.ctx.oob);
    t.next_flat <- t.next_flat + 1;
    let d = ref (rank - 1) in
    let carry = ref (rank > 0) in
    while !carry do
      let v = t.ctx.idx.(!d) + 1 in
      if v >= t.shape.(!d) && !d > 0 then begin
        t.ctx.idx.(!d) <- 0;
        decr d
      end
      else begin
        t.ctx.idx.(!d) <- v;
        carry := false
      end
    done
  done

(* Emit the pending head: copy its lanes into a fresh slot of every
   output channel, in place. *)
let emit_head t =
  let vbase = t.pend_head * t.w in
  for i = 0 to Array.length t.outputs - 1 do
    let c = t.outputs.(i) in
    let base = Channel.Unsafe.push_slot c in
    Array.blit t.pend_values vbase (Channel.Unsafe.buf_values c) base t.w;
    Array.blit t.pend_valid vbase (Channel.Unsafe.buf_valid c) base t.w
  done;
  t.pend_head <- (t.pend_head + 1) mod t.pend_cap;
  t.pend_count <- t.pend_count - 1

let outputs_have_space t =
  let ok = ref true in
  for i = 0 to Array.length t.outputs - 1 do
    if Channel.is_full t.outputs.(i) then ok := false
  done;
  !ok

let try_flush t ~now =
  if t.pend_count = 0 then false
  else if t.pend_release.(t.pend_head) > now then false
  else if not (outputs_have_space t) then false
  else begin
    emit_head t;
    true
  end

(* Consume one word from input [i] into its window, lane by lane. *)
let shift_in t i =
  let c = Option.get i.channel in
  let win = Option.get i.window in
  let base = Channel.Unsafe.front_slot c in
  let values = Channel.Unsafe.buf_values c in
  for lane = 0 to t.w - 1 do
    window_append win values.(base + lane)
  done;
  Channel.drop c

let try_step t ~now =
  if t.step >= total_steps t then false
  else if t.pend_count > t.compute_cycles then false
  else begin
    let ready = ref true in
    for k = 0 to Array.length t.inputs - 1 do
      let i = t.inputs.(k) in
      if consuming_active t i then
        match i.channel with
        | Some c -> if Channel.is_empty c then ready := false
        | None -> ()
    done;
    if not !ready then false
    else begin
      for k = 0 to Array.length t.inputs - 1 do
        let i = t.inputs.(k) in
        if consuming_active t i then shift_in t i
      done;
      if t.step >= t.init_max then begin
        let word_index = t.step - t.init_max in
        let tail = (t.pend_head + t.pend_count) mod t.pend_cap in
        t.pend_release.(tail) <- now + t.compute_cycles;
        compute_into t word_index (tail * t.w);
        t.pend_count <- t.pend_count + 1
      end;
      t.step <- t.step + 1;
      true
    end
  end

(* What to blame for a no-progress cycle, in the order a hardware
   pipeline would observe it: an empty input it must pop, then a full
   output it must push, then its own pending line (words still
   propagating through the compute latency). *)
let stall_blame t =
  let n = Array.length t.inputs in
  let rec starved k =
    if k >= n then None
    else
      let i = t.inputs.(k) in
      match i.channel with
      | Some c when consuming_active t i && Channel.is_empty c ->
          Some (Telemetry.Input_starved, Channel.name c)
      | Some _ | None -> starved (k + 1)
  in
  match starved 0 with
  | Some _ as blame -> blame
  | None ->
      let m = Array.length t.outputs in
      let rec full k =
        if k >= m then None
        else if Channel.is_full t.outputs.(k) then
          Some (Telemetry.Output_full, Channel.name t.outputs.(k))
        else full (k + 1)
      in
      full 0

let set_hiccup t v = t.hiccup <- v

let cycle t ~now =
  if t.hiccup && not (is_done t) then begin
    (* Injected pipeline hiccup: the whole unit freezes for the cycle. *)
    t.stalls <- t.stalls + 1;
    (match t.probe with
    | None -> ()
    | Some p -> Telemetry.stall p ~now Telemetry.Pipeline_drain);
    false
  end
  else
  let flushed = try_flush t ~now in
  let stepped = try_step t ~now in
  let progress = flushed || stepped in
  if (not progress) && not (is_done t) then begin
    t.stalls <- t.stalls + 1;
    match t.probe with
    | None -> ()
    | Some p -> (
        match stall_blame t with
        | Some (cause, channel) -> Telemetry.stall p ~now ~channel cause
        | None -> Telemetry.stall p ~now Telemetry.Pipeline_drain)
  end
  else if progress then (match t.probe with None -> () | Some p -> Telemetry.busy p ~now);
  progress

(* ------------------------------------------------------------------ *)
(* Fast-forward batch planning (see Engine): describe the exact action  *)
(* the unit will repeat every cycle over a uniform window, bounded by   *)
(* its own phase boundaries and pending-line maturity. Channel          *)
(* occupancy feasibility is the engine's responsibility.                *)
(* ------------------------------------------------------------------ *)

type plan = {
  flush : bool;
  pops : (Channel.t * window) array;
  compute : bool;
  advance : bool;
  horizon : int;
}

let plan_flush p = p.flush
let plan_steps p = p.compute || p.advance
let plan_horizon p = p.horizon
let plan_pops p = Array.to_list p.pops |> List.map fst

let plan t ~now =
  if is_done t then None
  else if t.hiccup then None
  else begin
    let l = t.compute_cycles in
    let s = t.step in
    let flush = t.pend_count > 0 && t.pend_release.(t.pend_head) <= now in
    let after_flush = t.pend_count - (if flush then 1 else 0) in
    let step_ok = s < total_steps t && after_flush <= l in
    if not (flush || step_ok) then None
    else begin
      let horizon = ref max_int in
      let cap v = if v < !horizon then horizon := v in
      let compute = step_ok && s >= t.init_max in
      if step_ok then begin
        cap (total_steps t - s);
        if s < t.init_max then cap (t.init_max - s);
        (* The set of consuming inputs must not change inside the window. *)
        Array.iter
          (fun i ->
            match i.window with
            | None -> ()
            | Some _ ->
                let a = i.start_step and b = i.start_step + t.n_words in
                if s < a then cap (a - s) else if s < b then cap (b - s))
          t.inputs
      end;
      if flush then begin
        (* Buffered entry [i] flushes at relative cycle [i] and must be
           mature there; a freshly computed word flushes after
           [pend_count] more cycles, mature only if the line is at least
           as long as the compute latency. *)
        for i = 0 to t.pend_count - 1 do
          let r = t.pend_release.((t.pend_head + i) mod t.pend_cap) in
          if r > now + i then cap i
        done;
        if compute then begin
          if l > t.pend_count then cap t.pend_count
        end
        else cap t.pend_count
      end
      else if compute then begin
        (* Not flushing: the window must close before the first flush
           comes due and before the pending line refuses another step. *)
        (if t.pend_count > 0 then cap (t.pend_release.(t.pend_head) - now)
         else cap (max l 1));
        cap (l - t.pend_count + 1)
      end;
      let pops =
        if step_ok then
          Array.to_list t.inputs
          |> List.filter_map (fun i ->
                 if consuming_active t i then
                   Some (Option.get i.channel, Option.get i.window)
                 else None)
          |> Array.of_list
        else [||]
      in
      if !horizon < 1 then None
      else Some { flush; pops; compute; advance = step_ok && not compute; horizon = !horizon }
    end
  end

(* One unchecked cycle of the planned action: the engine has already
   validated maturity and channel occupancy for the whole window. *)
let run_planned t ~now p =
  if p.flush then emit_head t;
  if p.compute || p.advance then begin
    for k = 0 to Array.length p.pops - 1 do
      let c, win = p.pops.(k) in
      let base = Channel.Unsafe.front_slot c in
      let values = Channel.Unsafe.buf_values c in
      for lane = 0 to t.w - 1 do
        window_append win values.(base + lane)
      done;
      Channel.drop c
    done;
    if p.compute then begin
      let word_index = t.step - t.init_max in
      let tail = (t.pend_head + t.pend_count) mod t.pend_cap in
      t.pend_release.(tail) <- now + t.compute_cycles;
      compute_into t word_index (tail * t.w);
      t.pend_count <- t.pend_count + 1
    end;
    t.step <- t.step + 1
  end

type blockage = Input_empty of string | Output_full of string

let blockages t =
  if is_done t then []
  else
    (Array.to_list t.inputs
    |> List.filter_map (fun i ->
           match i.channel with
           | Some c when consuming_active t i && Channel.is_empty c -> Some (Input_empty i.field)
           | Some _ | None -> None))
    @ (Array.to_list t.outputs
      |> List.filter_map (fun c ->
             if Channel.is_full c then Some (Output_full (Channel.name c)) else None))

let blocked_reason t =
  if is_done t then None
  else begin
    let input_block =
      Array.to_list t.inputs
      |> List.filter_map (fun i ->
             match i.channel with
             | Some c when consuming_active t i && Channel.is_empty c ->
                 Some (Printf.sprintf "waiting on empty input %s" i.field)
             | Some _ | None -> None)
    in
    let output_block =
      Array.to_list t.outputs
      |> List.filter_map (fun c ->
             if Channel.is_full c then Some (Printf.sprintf "output %s full" (Channel.name c))
             else None)
    in
    match input_block @ output_block with
    | [] -> Some "pipeline in flight"
    | reasons -> Some (String.concat "; " reasons)
  end
