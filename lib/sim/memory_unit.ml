module Tensor = Sf_reference.Tensor

module Reader = struct
  type t = {
    name : string;
    tensor : Tensor.t;
    vector_width : int;
    element_bytes : int;
    controller : Controller.t;
    outputs : Channel.t list;
    n_words : int;
    mutable pos : int; (* words streamed so far *)
  }

  let create ~name ~tensor ~vector_width ~element_bytes ~controller ~outputs =
    let elements = Tensor.num_elements tensor in
    if elements mod vector_width <> 0 then
      invalid_arg "Reader.create: vector width does not divide field size";
    { name; tensor; vector_width; element_bytes; controller; outputs; n_words = elements / vector_width; pos = 0 }

  let is_done t = t.pos >= t.n_words
  let name t = t.name

  let cycle t =
    if is_done t then false
    else if List.exists Channel.is_full t.outputs then false
    else if not (Controller.request t.controller (t.vector_width * t.element_bytes)) then false
    else begin
      let word = Word.create t.vector_width in
      for lane = 0 to t.vector_width - 1 do
        word.Word.values.(lane) <- Tensor.get_flat t.tensor ((t.pos * t.vector_width) + lane)
      done;
      List.iter (fun c -> Channel.push c (Word.copy word)) t.outputs;
      t.pos <- t.pos + 1;
      true
    end

  let blocked_reason t =
    if is_done t then None
    else if List.exists Channel.is_full t.outputs then Some "consumer channel full"
    else Some "waiting for memory bandwidth"

  let full_output_channels t =
    if is_done t then []
    else List.filter_map (fun c -> if Channel.is_full c then Some (Channel.name c) else None) t.outputs
end

module Writer = struct
  type t = {
    name : string;
    tensor : Tensor.t;
    valid : bool array;
    vector_width : int;
    element_bytes : int;
    controller : Controller.t;
    input : Channel.t;
    n_words : int;
    mutable pos : int;
  }

  let create ~name ~shape ~vector_width ~element_bytes ~controller ~input =
    let tensor = Tensor.create shape in
    let elements = Tensor.num_elements tensor in
    if elements mod vector_width <> 0 then
      invalid_arg "Writer.create: vector width does not divide output size";
    {
      name;
      tensor;
      valid = Array.make elements true;
      vector_width;
      element_bytes;
      controller;
      input;
      n_words = elements / vector_width;
      pos = 0;
    }

  let is_done t = t.pos >= t.n_words
  let name t = t.name

  let cycle t =
    if is_done t then false
    else if Channel.is_empty t.input then false
    else begin
      (* Only valid (non-shrunk) elements consume write bandwidth. *)
      let word = match Channel.peek t.input with Some w -> w | None -> assert false in
      let valid_count = Array.fold_left (fun n v -> if v then n + 1 else n) 0 word.Word.valid in
      if valid_count > 0 && not (Controller.request t.controller (valid_count * t.element_bytes))
      then false
      else begin
        ignore (Channel.pop t.input);
        for lane = 0 to t.vector_width - 1 do
          let idx = (t.pos * t.vector_width) + lane in
          if word.Word.valid.(lane) then Tensor.set_flat t.tensor idx word.Word.values.(lane)
          else t.valid.(idx) <- false
        done;
        t.pos <- t.pos + 1;
        true
      end
    end

  let result t = { Sf_reference.Interp.tensor = t.tensor; valid = t.valid }

  let blocked_reason t =
    if is_done t then None
    else if Channel.is_empty t.input then Some "waiting on empty input stream"
    else Some "waiting for memory bandwidth"

  let waiting_on_input t = (not (is_done t)) && Channel.is_empty t.input
end
