module Tensor = Sf_reference.Tensor

module Reader = struct
  type t = {
    name : string;
    tensor : Tensor.t;
    vector_width : int;
    element_bytes : int;
    controller : Controller.t;
    outputs : Channel.t array;
    n_words : int;
    mutable pos : int; (* words streamed so far *)
    probe : Telemetry.probe option;
  }

  let create ?probe ~name ~tensor ~vector_width ~element_bytes ~controller ~outputs () =
    let elements = Tensor.num_elements tensor in
    if elements mod vector_width <> 0 then
      invalid_arg "Reader.create: vector width does not divide field size";
    {
      name;
      tensor;
      vector_width;
      element_bytes;
      controller;
      outputs = Array.of_list outputs;
      n_words = elements / vector_width;
      pos = 0;
      probe;
    }

  let is_done t = t.pos >= t.n_words
  let name t = t.name
  let words_remaining t = t.n_words - t.pos
  let words_streamed t = t.pos
  let output_channels t = Array.to_list t.outputs
  let word_bytes t = t.vector_width * t.element_bytes

  (* Multicast the next word in place: one fresh slot per output, lanes
     copied straight from the backing tensor. *)
  let emit t =
    let base_flat = t.pos * t.vector_width in
    for i = 0 to Array.length t.outputs - 1 do
      let c = t.outputs.(i) in
      let base = Channel.Unsafe.push_slot c in
      let values = Channel.Unsafe.buf_values c in
      let valid = Channel.Unsafe.buf_valid c in
      for lane = 0 to t.vector_width - 1 do
        values.(base + lane) <- Tensor.get_flat t.tensor (base_flat + lane);
        valid.(base + lane) <- true
      done
    done;
    t.pos <- t.pos + 1

  let any_output_full t =
    let full = ref false in
    for i = 0 to Array.length t.outputs - 1 do
      if Channel.is_full t.outputs.(i) then full := true
    done;
    !full

  let first_full_output t =
    let rec go i =
      if i >= Array.length t.outputs then ""
      else if Channel.is_full t.outputs.(i) then Channel.name t.outputs.(i)
      else go (i + 1)
    in
    go 0

  let cycle t ~now =
    if is_done t then false
    else if any_output_full t then begin
      (match t.probe with
      | None -> ()
      | Some p ->
          Telemetry.stall p ~now ~channel:(first_full_output t) Telemetry.Output_full);
      false
    end
    else if not (Controller.request t.controller (t.vector_width * t.element_bytes)) then begin
      (match t.probe with
      | None -> ()
      | Some p -> Telemetry.stall p ~now Telemetry.Bandwidth_denied);
      false
    end
    else begin
      emit t;
      (match t.probe with None -> () | Some p -> Telemetry.busy p ~now);
      true
    end

  (* One unchecked cycle for the fast-forward path: the engine has
     verified output space for the whole window and that the controller
     is unlimited. *)
  let run_fast t =
    Controller.account t.controller (t.vector_width * t.element_bytes);
    emit t

  let blocked_reason t =
    if is_done t then None
    else if any_output_full t then Some "consumer channel full"
    else Some "waiting for memory bandwidth"

  let full_output_channels t =
    if is_done t then []
    else
      Array.to_list t.outputs
      |> List.filter_map (fun c -> if Channel.is_full c then Some (Channel.name c) else None)
end

module Writer = struct
  type t = {
    name : string;
    tensor : Tensor.t;
    valid : bool array;
    vector_width : int;
    element_bytes : int;
    controller : Controller.t;
    input : Channel.t;
    n_words : int;
    mutable pos : int;
    mutable bytes_committed : int;
    on_done : unit -> unit;
    (* Fault-injection flag (Fault_plan): a blocked writer commits
       nothing for the cycle. Cleared by the injector each cycle. *)
    mutable blocked : bool;
    probe : Telemetry.probe option;
  }

  let create ?probe ?(on_done = fun () -> ()) ~name ~shape ~vector_width ~element_bytes
      ~controller ~input () =
    let tensor = Tensor.create shape in
    let elements = Tensor.num_elements tensor in
    if elements mod vector_width <> 0 then
      invalid_arg "Writer.create: vector width does not divide output size";
    {
      name;
      tensor;
      valid = Array.make elements true;
      vector_width;
      element_bytes;
      controller;
      input;
      n_words = elements / vector_width;
      pos = 0;
      bytes_committed = 0;
      on_done;
      blocked = false;
      probe;
    }

  let is_done t = t.pos >= t.n_words
  let name t = t.name
  let words_remaining t = t.n_words - t.pos
  let input_channel t = t.input
  let bytes_committed t = t.bytes_committed

  let front_valid_count t =
    let base = Channel.Unsafe.front_slot t.input in
    let valid = Channel.Unsafe.buf_valid t.input in
    let n = ref 0 in
    for lane = 0 to t.vector_width - 1 do
      if valid.(base + lane) then incr n
    done;
    !n

  (* Commit the input's front word to the output tensor in place. *)
  let commit t =
    let base = Channel.Unsafe.front_slot t.input in
    let values = Channel.Unsafe.buf_values t.input in
    let valid = Channel.Unsafe.buf_valid t.input in
    let committed = ref 0 in
    for lane = 0 to t.vector_width - 1 do
      let idx = (t.pos * t.vector_width) + lane in
      if valid.(base + lane) then begin
        Tensor.set_flat t.tensor idx values.(base + lane);
        incr committed
      end
      else t.valid.(idx) <- false
    done;
    t.bytes_committed <- t.bytes_committed + (!committed * t.element_bytes);
    Channel.drop t.input;
    t.pos <- t.pos + 1;
    if t.pos >= t.n_words then t.on_done ()

  let set_blocked t v = t.blocked <- v

  let cycle t ~now =
    if is_done t then false
    else if t.blocked then begin
      (* Injected write backpressure: classify as bandwidth denial, the
         cause an external observer would ascribe to a DRAM hiccup. *)
      (match t.probe with
      | None -> ()
      | Some p -> Telemetry.stall p ~now Telemetry.Bandwidth_denied);
      false
    end
    else if Channel.is_empty t.input then begin
      (match t.probe with
      | None -> ()
      | Some p ->
          Telemetry.stall p ~now ~channel:(Channel.name t.input) Telemetry.Input_starved);
      false
    end
    else begin
      (* Only valid (non-shrunk) elements consume write bandwidth. *)
      let valid_count = front_valid_count t in
      if valid_count > 0 && not (Controller.request t.controller (valid_count * t.element_bytes))
      then begin
        (match t.probe with
        | None -> ()
        | Some p -> Telemetry.stall p ~now Telemetry.Bandwidth_denied);
        false
      end
      else begin
        commit t;
        (match t.probe with None -> () | Some p -> Telemetry.busy p ~now);
        true
      end
    end

  (* One unchecked cycle for the fast-forward path (input known
     non-empty, controller known unlimited). *)
  let run_fast t =
    let valid_count = front_valid_count t in
    if valid_count > 0 then Controller.account t.controller (valid_count * t.element_bytes);
    commit t

  let result t = { Sf_reference.Interp.tensor = t.tensor; valid = t.valid }

  let blocked_reason t =
    if is_done t then None
    else if Channel.is_empty t.input then Some "waiting on empty input stream"
    else Some "waiting for memory bandwidth"

  let waiting_on_input t = (not (is_done t)) && Channel.is_empty t.input
end
