(* Power-of-two ring with monotonically increasing cursors; [land mask]
   maps a cursor to its slot. Cursors are plain ints: at one element per
   simulated cycle they cannot overflow within any realistic run (OCaml
   int wraparound would need 2^62 operations).

   Layout: element fields live in flat unboxed rings ([tags],
   [releases] : int array; [values] : float array; [valid] : bool
   array), so producing is three int stores plus lane blits — no [Some]
   box, no tuple, no per-word allocation anywhere.

   Each side keeps its private cursor and a cached copy of the peer's in
   a [side] record it alone mutates; the shared [head]/[tail] atomics
   are read by the peer only when its cache runs out. The producer's
   atomic + side record are allocated back to back, then a cache line of
   padding, then the consumer's pair — OCaml 5.1 has no
   [Atomic.make_contended], but the minor heap is a bump allocator, so
   consecutive allocations are adjacent and the padding keeps the
   producer-written and consumer-written words on different 64-byte
   lines (they stay adjacent after promotion, which copies in order). *)

type side = {
  mutable cursor : int;  (* this side's true position (producer: staged tail) *)
  mutable published : int;  (* producer only: last value stored into the atomic *)
  mutable peer_cache : int;  (* last value read from the peer's atomic *)
}

type t = {
  mask : int;
  lanes : int;
  tags : int array;
  releases : int array;
  values : float array;
  valid : bool array;
  tail : int Atomic.t;  (* published tail; written by the producer only *)
  prod : side;
  head : int Atomic.t;  (* consume cursor; written by the consumer only *)
  cons : side;
}

let line_pad () = Sys.opaque_identity (Array.make 8 0)

let create ~capacity ~lanes =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  if lanes <= 0 then invalid_arg "Spsc.create: lanes must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let cap = !cap in
  let tail = Atomic.make 0 in
  let prod = { cursor = 0; published = 0; peer_cache = 0 } in
  let _pad1 = line_pad () in
  let head = Atomic.make 0 in
  let cons = { cursor = 0; published = 0; peer_cache = 0 } in
  let _pad2 = line_pad () in
  ignore _pad1;
  ignore _pad2;
  {
    mask = cap - 1;
    lanes;
    tags = Array.make cap 0;
    releases = Array.make cap 0;
    values = Array.make (cap * lanes) 0.;
    valid = Array.make (cap * lanes) true;
    tail;
    prod;
    head;
    cons;
  }

let capacity t = t.mask + 1
let lanes t = t.lanes
let values t = t.values
let valid t = t.valid

(* ---------------- producer ---------------- *)

let try_produce t ~tag ~release =
  let next = t.prod.cursor in
  if
    next - t.prod.peer_cache > t.mask
    && begin
         (* Looks full against the cached head; refresh and re-check. *)
         t.prod.peer_cache <- Atomic.get t.head;
         next - t.prod.peer_cache > t.mask
       end
  then -1
  else begin
    let slot = next land t.mask in
    t.tags.(slot) <- tag;
    t.releases.(slot) <- release;
    t.prod.cursor <- next + 1;
    slot * t.lanes
  end

let publish t =
  if t.prod.published <> t.prod.cursor then begin
    (* The slot stores above happen before this tail store; the consumer
       synchronizes by loading the tail. *)
    Atomic.set t.tail t.prod.cursor;
    t.prod.published <- t.prod.cursor
  end

(* ---------------- consumer ---------------- *)

let front t =
  let h = t.cons.cursor in
  if
    h = t.cons.peer_cache
    && begin
         t.cons.peer_cache <- Atomic.get t.tail;
         h = t.cons.peer_cache
       end
  then -1
  else (h land t.mask) * t.lanes

let front_tag t = t.tags.(t.cons.cursor land t.mask)
let front_release t = t.releases.(t.cons.cursor land t.mask)

let consume t =
  let h = t.cons.cursor in
  if h = t.cons.peer_cache && h = Atomic.get t.tail then failwith "Spsc.consume: empty";
  t.cons.cursor <- h + 1;
  (* Release the slot to the producer with the head store. *)
  Atomic.set t.head (h + 1)

(* ---------------- either ---------------- *)

let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
