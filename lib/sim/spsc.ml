(* Classic power-of-two ring with monotonically increasing head/tail
   indices; [land mask] maps an index to its slot. Indices are plain
   ints: at one push per simulated cycle they cannot overflow within any
   realistic run, and OCaml int wraparound would need 2^62 operations. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next slot to pop; written by the consumer only *)
  tail : int Atomic.t;  (* next slot to push; written by the producer only *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { buf = Array.make !cap None; mask = !cap - 1; head = Atomic.make 0; tail = Atomic.make 0 }

let try_push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    (* The slot is free: the consumer finished with it before advancing
       head past it, and reading [head] above synchronized with that
       advance. Publish with the tail store. *)
    t.buf.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop_opt t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head = tail then None
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    (* Clear the slot so the queue does not retain the element for a full
       lap, then release it to the producer with the head store. *)
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
