(* Deterministic timing-fault plans and their injector. See
   fault_plan.mli for the contract; Faults layers the campaign /
   shrinking harness on top. *)

module Rng = struct
  type t = { mutable state : int64 }

  (* SplitMix64: one 64-bit word of state advanced by the golden-ratio
     increment, finalized by the Stafford mix13 permutation. Chosen for
     its trivially splittable keyed derivation, not for quality beyond
     what a schedule perturbation needs. *)
  let golden = 0x9E3779B97F4A7C15L

  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make seed = { state = Int64.of_int seed }

  let bits64 t =
    t.state <- Int64.add t.state golden;
    mix t.state

  let int t n =
    if n <= 0 then invalid_arg "Fault_plan.Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.logand (bits64 t) Int64.max_int) (Int64.of_int n))

  (* FNV-1a over the key, folded into the parent state WITHOUT advancing
     it: sibling streams derived from the same parent are independent of
     the order they are split in. *)
  let split t key =
    let h = ref 0xCBF29CE484222325L in
    String.iter
      (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
      key;
    { state = mix (Int64.logxor t.state !h) }
end

type kind = Link_stall | Link_jitter | Mem_throttle | Write_backpressure | Unit_hiccup

let kind_name = function
  | Link_stall -> "link-stall"
  | Link_jitter -> "link-jitter"
  | Mem_throttle -> "mem-throttle"
  | Write_backpressure -> "write-backpressure"
  | Unit_hiccup -> "unit-hiccup"

let kind_of_name = function
  | "link-stall" -> Some Link_stall
  | "link-jitter" -> Some Link_jitter
  | "mem-throttle" -> Some Mem_throttle
  | "write-backpressure" -> Some Write_backpressure
  | "unit-hiccup" -> Some Unit_hiccup
  | _ -> None

module Burst = struct
  type t = {
    kind : kind;
    target : string option;
    gap : int;
    duration : int;
    magnitude : int;
    count : int;
  }

  let make ?target ?(gap = 200) ?(duration = 16) ?(magnitude = 8) ?(count = max_int) kind =
    if gap < 1 then invalid_arg "Fault_plan.Burst.make: gap must be >= 1";
    if duration < 1 then invalid_arg "Fault_plan.Burst.make: duration must be >= 1";
    if magnitude < 1 then invalid_arg "Fault_plan.Burst.make: magnitude must be >= 1";
    { kind; target; gap; duration; magnitude; count }
end

module Event = struct
  type t = { kind : kind; target : string; start : int; duration : int; magnitude : int }
end

type t = {
  bursts : Burst.t list;
  events : Event.t list;
  depth_overrides : ((string * string) * int) list;
}

let plan ?(bursts = []) ?(events = []) ?(depth_overrides = []) () =
  { bursts; events; depth_overrides }

let none = plan ()

(* The stock adversary: every fault kind, aimed at every matching
   component, with gaps short enough that even small fixture runs see
   several bursts, and durations far below any sane deadlock window so
   bounded faults can never trip SF0701 by themselves. *)
let default =
  {
    bursts =
      [
        Burst.make ~gap:200 ~duration:24 Link_stall;
        Burst.make ~gap:150 ~duration:16 ~magnitude:12 Link_jitter;
        Burst.make ~gap:180 ~duration:20 Mem_throttle;
        Burst.make ~gap:170 ~duration:20 Write_backpressure;
        Burst.make ~gap:120 ~duration:12 Unit_hiccup;
      ];
    events = [];
    depth_overrides = [];
  }

(* ------------------------------------------------------------------ *)
(* Plan grammar: semicolon-separated items.                            *)
(*   kind[@target][:k=v,...]   burst (keys gap, dur, mag, count)       *)
(*   kind@target:start=S,...   explicit event (presence of start)      *)
(*   depth:src->dst=N          per-edge analysed-depth override        *)
(* "default" and "none" name the canned plans.                         *)
(* ------------------------------------------------------------------ *)

let to_string p =
  let burst (b : Burst.t) =
    let head =
      match b.target with
      | None -> kind_name b.kind
      | Some t -> Printf.sprintf "%s@%s" (kind_name b.kind) t
    in
    let kvs =
      [ Printf.sprintf "gap=%d" b.gap; Printf.sprintf "dur=%d" b.duration;
        Printf.sprintf "mag=%d" b.magnitude ]
      @ if b.count = max_int then [] else [ Printf.sprintf "count=%d" b.count ]
    in
    head ^ ":" ^ String.concat "," kvs
  in
  let event (e : Event.t) =
    Printf.sprintf "%s@%s:start=%d,dur=%d,mag=%d" (kind_name e.kind) e.target e.start
      e.duration e.magnitude
  in
  let depth ((src, dst), n) = Printf.sprintf "depth:%s->%s=%d" src dst n in
  let items =
    List.map burst p.bursts @ List.map event p.events @ List.map depth p.depth_overrides
  in
  match items with [] -> "none" | _ -> String.concat ";" items

let of_string spec =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_int what s =
    match int_of_string_opt (String.trim s) with
    | Some n -> Ok n
    | None -> fail "%s is not an integer: %S" what s
  in
  let parse_depth body =
    match String.index_opt body '=' with
    | None -> fail "depth override needs src->dst=N, got %S" body
    | Some eq ->
        let edge = String.sub body 0 eq in
        let value = String.sub body (eq + 1) (String.length body - eq - 1) in
        let* n = parse_int "depth" value in
        let arrow =
          let rec find i =
            if i + 2 > String.length edge then None
            else if String.sub edge i 2 = "->" then Some i
            else find (i + 1)
          in
          find 0
        in
        (match arrow with
        | Some i when i > 0 && i + 2 < String.length edge ->
            let src = String.trim (String.sub edge 0 i) in
            let dst = String.trim (String.sub edge (i + 2) (String.length edge - i - 2)) in
            Ok (`Depth ((src, dst), n))
        | _ -> fail "depth override needs src->dst=N, got %S" body)
  in
  let parse_kvs part =
    if part = "" then Ok []
    else
      List.fold_left
        (fun acc kv ->
          let* acc = acc in
          match String.index_opt kv '=' with
          | None -> fail "expected key=value, got %S" kv
          | Some eq ->
              let k = String.trim (String.sub kv 0 eq) in
              let* v = parse_int k (String.sub kv (eq + 1) (String.length kv - eq - 1)) in
              Ok ((k, v) :: acc))
        (Ok []) (String.split_on_char ',' part)
  in
  let parse_item item =
    match String.index_opt item ':' with
    | Some 5 when String.sub item 0 5 = "depth" ->
        parse_depth (String.sub item 6 (String.length item - 6))
    | colon ->
        let head, kv_part =
          match colon with
          | None -> (item, "")
          | Some c -> (String.sub item 0 c, String.sub item (c + 1) (String.length item - c - 1))
        in
        let kind_s, target =
          match String.index_opt head '@' with
          | None -> (head, None)
          | Some at ->
              ( String.sub head 0 at,
                Some (String.trim (String.sub head (at + 1) (String.length head - at - 1))) )
        in
        let* kind =
          match kind_of_name (String.trim kind_s) with
          | Some k -> Ok k
          | None -> fail "unknown fault kind %S" kind_s
        in
        let* kvs = parse_kvs kv_part in
        let get k d = match List.assoc_opt k kvs with Some v -> v | None -> d in
        let known = [ "gap"; "dur"; "mag"; "count"; "start" ] in
        (match List.find_opt (fun (k, _) -> not (List.mem k known)) kvs with
        | Some (k, _) -> fail "unknown key %S in %S" k item
        | None ->
            if List.mem_assoc "start" kvs then
              match target with
              | None -> fail "explicit event %S needs a @target" item
              | Some target ->
                  Ok
                    (`Event
                      {
                        Event.kind;
                        target;
                        start = get "start" 0;
                        duration = get "dur" 1;
                        magnitude = get "mag" 1;
                      })
            else
              Ok
                (`Burst
                  (Burst.make ?target ~gap:(get "gap" 200) ~duration:(get "dur" 16)
                     ~magnitude:(get "mag" 8) ~count:(get "count" max_int) kind)))
  in
  match String.trim spec with
  | "" | "none" -> Ok none
  | "default" -> Ok default
  | spec ->
      let items = String.split_on_char ';' spec |> List.map String.trim in
      let* parsed =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            if item = "" then Ok acc
            else
              let* p = parse_item item in
              Ok (p :: acc))
          (Ok []) items
      in
      let parsed = List.rev parsed in
      Ok
        {
          bursts = List.filter_map (function `Burst b -> Some b | _ -> None) parsed;
          events = List.filter_map (function `Event e -> Some e | _ -> None) parsed;
          depth_overrides = List.filter_map (function `Depth d -> Some d | _ -> None) parsed;
        }

(* ------------------------------------------------------------------ *)
(* Injector.                                                           *)
(* ------------------------------------------------------------------ *)

type summary = { injected_events : int; injected_stall_cycles : int; log : Event.t list }

let empty_summary = { injected_events = 0; injected_stall_cycles = 0; log = [] }

type source =
  | Renewal of { rng : Rng.t; gap : int; max_dur : int; max_mag : int; mutable left : int }
  | Scripted of { mutable queue : (int * int * int) list (* start, dur, mag; sorted *) }

type stream = {
  s_kind : kind;
  s_target : string;
  apply : int -> unit;
  source : source;
  mutable next_start : int;
  mutable active_until : int; (* exclusive end of the active burst; -1 when idle *)
  mutable magnitude : int;
}

type injector = {
  clear : (unit -> unit) list;
  streams : stream list;
  mutable n_events : int;
  mutable n_stall_cycles : int;
  mutable event_log : Event.t list; (* newest first *)
}

let create ~seed ~(plan : t) ~links ~controllers ~units ~writers =
  let root = Rng.make seed in
  let targets_for kind : (string * (int -> unit)) list =
    match kind with
    | Link_stall ->
        List.map (fun l -> (Link.name l, fun _ -> Link.set_stalled l true)) links
    | Link_jitter ->
        List.map
          (fun l ->
            ( Link.name l,
              fun mag -> if mag > Link.extra_latency l then Link.set_extra_latency l mag ))
          links
    | Mem_throttle ->
        List.map (fun (name, c) -> (name, fun _ -> Controller.set_denied c true)) controllers
    | Write_backpressure ->
        List.map
          (fun w -> (Memory_unit.Writer.name w, fun _ -> Memory_unit.Writer.set_blocked w true))
          writers
    | Unit_hiccup ->
        List.map (fun u -> (Stencil_unit.name u, fun _ -> Stencil_unit.set_hiccup u true)) units
  in
  let matching target candidates =
    match target with
    | None -> candidates
    | Some t -> List.filter (fun (name, _) -> String.equal name t) candidates
  in
  let burst_streams =
    List.concat
      (List.mapi
         (fun bi (b : Burst.t) ->
           List.map
             (fun (name, apply) ->
               let rng = Rng.split root (Printf.sprintf "%s/%s/%d" (kind_name b.kind) name bi) in
               let next_start = 1 + Rng.int rng (2 * b.gap) in
               {
                 s_kind = b.kind;
                 s_target = name;
                 apply;
                 source =
                   Renewal
                     { rng; gap = b.gap; max_dur = b.duration; max_mag = b.magnitude;
                       left = b.count };
                 next_start;
                 active_until = -1;
                 magnitude = 1;
               })
             (matching b.target (targets_for b.kind)))
         plan.bursts)
  in
  let script_streams =
    (* One scripted stream per (kind, target), events sorted by start.
       Events naming absent components are dropped — a plan written for a
       multi-device run stays usable on a single-device degrade. *)
    let tbl : (string * string, (int * int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (e : Event.t) ->
        let key = (kind_name e.kind, e.target) in
        match Hashtbl.find_opt tbl key with
        | Some q -> q := (e.start, e.duration, e.magnitude) :: !q
        | None ->
            Hashtbl.replace tbl key (ref [ (e.start, e.duration, e.magnitude) ]);
            order := (e.kind, e.target) :: !order)
      plan.events;
    List.filter_map
      (fun (kind, target) ->
        match matching (Some target) (targets_for kind) with
        | [] -> None
        | (name, apply) :: _ ->
            let q = !(Hashtbl.find tbl (kind_name kind, target)) in
            let queue = List.sort compare q in
            Some
              {
                s_kind = kind;
                s_target = name;
                apply;
                source = Scripted { queue };
                next_start = (match queue with (s, _, _) :: _ -> s | [] -> max_int);
                active_until = -1;
                magnitude = 1;
              })
      (List.rev !order)
  in
  let clear =
    List.map
      (fun l ->
        fun () ->
         Link.set_stalled l false;
         Link.set_extra_latency l 0)
      links
    @ List.map (fun (_, c) -> fun () -> Controller.set_denied c false) controllers
    @ List.map (fun u -> fun () -> Stencil_unit.set_hiccup u false) units
    @ List.map (fun w -> fun () -> Memory_unit.Writer.set_blocked w false) writers
  in
  {
    clear;
    streams = burst_streams @ script_streams;
    n_events = 0;
    n_stall_cycles = 0;
    event_log = [];
  }

(* The whole fault timeline is a pure function of (seed, plan): every
   draw happens at a cycle determined by earlier draws alone, never by
   simulation state, so two runs with different schedules see the exact
   same perturbation sequence. *)
let tick inj ~now =
  List.iter (fun f -> f ()) inj.clear;
  List.iter
    (fun s ->
      if s.active_until >= 0 && now >= s.active_until then begin
        s.active_until <- -1;
        match s.source with
        | Renewal r -> s.next_start <- now + 1 + Rng.int r.rng (2 * r.gap)
        | Scripted _ -> ()
      end;
      if s.active_until < 0 then begin
        let activate dur mag =
          s.active_until <- now + dur;
          s.magnitude <- mag;
          inj.n_events <- inj.n_events + 1;
          inj.event_log <-
            { Event.kind = s.s_kind; target = s.s_target; start = now; duration = dur;
              magnitude = mag }
            :: inj.event_log
        in
        match s.source with
        | Renewal r ->
            if r.left > 0 && now >= s.next_start then begin
              r.left <- r.left - 1;
              let dur = 1 + Rng.int r.rng r.max_dur in
              let mag = 1 + Rng.int r.rng r.max_mag in
              activate dur mag
            end
        | Scripted q -> (
            match q.queue with
            | (start, dur, mag) :: rest when start <= now ->
                q.queue <- rest;
                activate dur mag
            | _ -> ())
      end;
      if s.active_until > now then begin
        inj.n_stall_cycles <- inj.n_stall_cycles + 1;
        s.apply s.magnitude
      end)
    inj.streams

let summary inj =
  {
    injected_events = inj.n_events;
    injected_stall_cycles = inj.n_stall_cycles;
    log = List.rev inj.event_log;
  }

let attribution_notes (s : summary) ~stall_cycle =
  match List.filter (fun (e : Event.t) -> e.Event.start <= stall_cycle) s.log with
  | [] -> []
  | before ->
      let rec take n = function
        | e :: rest when n > 0 -> e :: take (n - 1) rest
        | _ -> []
      in
      Printf.sprintf
        "injected %d timing-fault event(s) (%d perturbed component-cycles) before the failure"
        s.injected_events s.injected_stall_cycles
      :: List.map
           (fun (e : Event.t) ->
             Printf.sprintf
               "fault-attribution: %s on %s injected at cycle %d for %d cycle(s) preceded the stall"
               (kind_name e.kind) e.target e.start e.duration)
           (take 3 (List.rev before))
