(** Bounded FIFO channels between processing elements.

    Channels model the Intel OpenCL channel / hardware FIFO abstraction
    the paper maps DaCe streams onto (Sec. VI-A). Their capacity is the
    delay-buffer depth computed by the analysis plus a small slack; the
    high-water mark is recorded so tests can check how tightly the
    analysis sizes buffers. *)

type t

val create : name:string -> capacity:int -> t
(** [capacity] is in words and must be positive. *)

val name : t -> string
val capacity : t -> int
val occupancy : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val push : t -> Word.t -> unit
(** Raises [Failure] when full — callers must check {!is_full}. *)

val pop : t -> Word.t
(** Raises [Failure] when empty. *)

val peek : t -> Word.t option
val total_pushed : t -> int
val high_water : t -> int
