(** Bounded FIFO channels between processing elements.

    Channels model the Intel OpenCL channel / hardware FIFO abstraction
    the paper maps DaCe streams onto (Sec. VI-A). Their capacity is the
    delay-buffer depth computed by the analysis plus a small slack; the
    high-water mark is recorded so tests can check how tightly the
    analysis sizes buffers.

    Storage is structure-of-arrays: one flat [float array] for lane
    values and one [bool array] for lane validity, both of size
    [capacity * width], treated as a ring of [capacity] slots. The raw
    slot API lives in {!Unsafe} and lets hot paths copy lanes in place
    without allocating; the public surface is the FIFO operations plus
    the telemetry counters ({!occupancy}, {!total_pushed},
    {!total_popped}, {!high_water}). The {!Word.t}-based API is retained
    for tests and cold paths and allocates on {!pop}/{!peek}. *)

type t

val create : name:string -> capacity:int -> t
(** [capacity] is in words and must be positive; the width is 1. *)

val create_vec : width:int -> name:string -> capacity:int -> t
(** As {!create} with [width] lanes per word. *)

val name : t -> string
val capacity : t -> int
val width : t -> int
val occupancy : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val drop : t -> unit
(** Discard the oldest slot (a pop whose lanes have been read in place
    via {!Unsafe.front_slot}). Fires the pop hook. Raises [Failure] when
    empty. *)

(** {2 Zero-allocation slot access}

    The raw structure-of-arrays internals, for the simulator's hot
    paths (stencil units and memory units copying lanes in place).
    Slots are addressed by the base offset of their first lane in
    {!Unsafe.buf_values} / {!Unsafe.buf_valid}; lane [l] of a slot with
    base [b] lives at index [b + l]. Callers own the invariant that
    every lane of a pushed slot is written before the next simulator
    step reads it — nothing here is checked beyond occupancy. *)

module Unsafe : sig
  val buf_values : t -> float array
  val buf_valid : t -> bool array

  val push_slot : t -> int
  (** Append a slot and return its base offset. The caller must fill
      all [width] lanes of {!buf_values} and {!buf_valid} at that
      offset. Updates occupancy, the push counter and the high-water
      mark, and fires the push hook. Raises [Failure] when full. *)

  val front_slot : t -> int
  (** Base offset of the oldest slot. Raises [Failure] when empty. *)
end

val set_hooks : t -> on_push:(unit -> unit) -> on_pop:(unit -> unit) -> unit
(** Install wake hooks, fired after every successful push and pop
    respectively (including the slot API). Used by the engine's
    ready-set scheduler; defaults are no-ops. *)

(** {2 Word-based compatibility API} *)

val push : t -> Word.t -> unit
(** Copies the word's lanes into the ring. The word width must match the
    channel width. Raises [Failure] when full. *)

val pop : t -> Word.t
(** Allocates a fresh word holding the oldest slot. Raises [Failure]
    when empty. *)

val peek : t -> Word.t option
(** Allocates a fresh copy of the oldest slot, if any. *)

val total_pushed : t -> int
val total_popped : t -> int
val high_water : t -> int
