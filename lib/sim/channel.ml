type t = {
  name : string;
  capacity : int;
  width : int;
  values : float array; (* capacity * width, ring of slots *)
  valid : bool array;
  mutable head : int; (* slot index of the oldest element *)
  mutable count : int;
  mutable total_pushed : int;
  mutable total_popped : int;
  mutable high_water : int;
  mutable on_push : unit -> unit;
  mutable on_pop : unit -> unit;
}

let nop () = ()

let create_vec ~width ~name ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  if width <= 0 then invalid_arg "Channel.create: width must be positive";
  {
    name;
    capacity;
    width;
    values = Array.make (capacity * width) 0.;
    valid = Array.make (capacity * width) true;
    head = 0;
    count = 0;
    total_pushed = 0;
    total_popped = 0;
    high_water = 0;
    on_push = nop;
    on_pop = nop;
  }

let create ~name ~capacity = create_vec ~width:1 ~name ~capacity
let name t = t.name
let capacity t = t.capacity
let width t = t.width
let occupancy t = t.count
let is_empty t = t.count = 0
let is_full t = t.count = t.capacity

let set_hooks t ~on_push ~on_pop =
  t.on_push <- on_push;
  t.on_pop <- on_pop

let push_slot t =
  if t.count = t.capacity then failwith (Printf.sprintf "Channel.push: %s is full" t.name);
  let tail = t.head + t.count in
  let tail = if tail >= t.capacity then tail - t.capacity else tail in
  t.count <- t.count + 1;
  t.total_pushed <- t.total_pushed + 1;
  if t.count > t.high_water then t.high_water <- t.count;
  t.on_push ();
  tail * t.width

let front_slot t =
  if t.count = 0 then failwith (Printf.sprintf "Channel.pop: %s is empty" t.name);
  t.head * t.width

let drop t =
  if t.count = 0 then failwith (Printf.sprintf "Channel.pop: %s is empty" t.name);
  t.head <- (if t.head + 1 >= t.capacity then 0 else t.head + 1);
  t.count <- t.count - 1;
  t.total_popped <- t.total_popped + 1;
  t.on_pop ()

let push t word =
  if Word.width word <> t.width then
    invalid_arg (Printf.sprintf "Channel.push: %s expects width %d" t.name t.width);
  let base = push_slot t in
  Array.blit word.Word.values 0 t.values base t.width;
  Array.blit word.Word.valid 0 t.valid base t.width

let pop t =
  let base = front_slot t in
  let word = Word.create t.width in
  Array.blit t.values base word.Word.values 0 t.width;
  Array.blit t.valid base word.Word.valid 0 t.width;
  drop t;
  word

let peek t =
  if t.count = 0 then None
  else begin
    let base = front_slot t in
    let word = Word.create t.width in
    Array.blit t.values base word.Word.values 0 t.width;
    Array.blit t.valid base word.Word.valid 0 t.width;
    Some word
  end

let total_pushed t = t.total_pushed
let total_popped t = t.total_popped
let high_water t = t.high_water

module Unsafe = struct
  let buf_values t = t.values
  let buf_valid t = t.valid
  let push_slot = push_slot
  let front_slot = front_slot
end
