type t = {
  name : string;
  capacity : int;
  slots : Word.t option array;
  mutable head : int;  (* index of the oldest element *)
  mutable count : int;
  mutable total_pushed : int;
  mutable high_water : int;
}

let create ~name ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  {
    name;
    capacity;
    slots = Array.make capacity None;
    head = 0;
    count = 0;
    total_pushed = 0;
    high_water = 0;
  }

let name t = t.name
let capacity t = t.capacity
let occupancy t = t.count
let is_empty t = t.count = 0
let is_full t = t.count = t.capacity

let push t word =
  if is_full t then failwith (Printf.sprintf "Channel.push: %s is full" t.name);
  let tail = (t.head + t.count) mod t.capacity in
  t.slots.(tail) <- Some word;
  t.count <- t.count + 1;
  t.total_pushed <- t.total_pushed + 1;
  if t.count > t.high_water then t.high_water <- t.count

let pop t =
  if is_empty t then failwith (Printf.sprintf "Channel.pop: %s is empty" t.name);
  match t.slots.(t.head) with
  | None -> assert false
  | Some word ->
      t.slots.(t.head) <- None;
      t.head <- (t.head + 1) mod t.capacity;
      t.count <- t.count - 1;
      word

let peek t = if is_empty t then None else t.slots.(t.head)
let total_pushed t = t.total_pushed
let high_water t = t.high_water
