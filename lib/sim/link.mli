(** Inter-device network links (the SMI substitute, paper Sec. VI-B).

    A link connects two adjacent devices with a fixed bandwidth (the
    testbed provides two 40 Gbit/s connections between consecutive FPGAs)
    and a propagation latency. Remote streams register a port on the
    link; injection contends for the shared bandwidth, delivery happens
    [latency] cycles later, subject to destination buffer space — the
    same FIFO semantics as on-chip channels. *)

type t

val create : name:string -> bytes_per_cycle:float -> latency_cycles:int -> t

val add_port : t -> src:Channel.t -> dst:Channel.t -> word_bytes:int -> unit
(** Register a remote stream crossing this link. *)

val cycle : t -> now:int -> bool
(** Returns true when any word was injected or delivered. *)

val name : t -> string
val bytes_transferred : t -> int
val is_idle : t -> bool
(** No words in flight. *)
