(** Inter-device network links (the SMI substitute, paper Sec. VI-B).

    A link connects two adjacent devices with a fixed bandwidth (the
    testbed provides two 40 Gbit/s connections between consecutive FPGAs)
    and a propagation latency. Remote streams register a port on the
    link; injection contends for the shared bandwidth, delivery happens
    [latency] cycles later, subject to destination buffer space — the
    same FIFO semantics as on-chip channels. *)

type t

val create :
  ?probe:Telemetry.probe -> name:string -> bytes_per_cycle:float -> latency_cycles:int -> unit -> t
(** [probe] classifies no-progress cycles (destination backpressure,
    bandwidth denial, propagation latency) into the telemetry
    registry. *)

val add_port : t -> src:Channel.t -> dst:Channel.t -> word_bytes:int -> unit
(** Register a remote stream crossing this link. *)

val cycle : t -> now:int -> bool
(** Returns true when any word was injected or delivered. *)

val name : t -> string
val bytes_transferred : t -> int
val latency_cycles : t -> int
val bytes_per_cycle : t -> float

val credit_bytes : t -> int -> unit
(** Record bytes as transferred without running the link. The parallel
    engine moves each direction's traffic through its own per-domain
    controller and credits the totals back here after the join, so
    {!bytes_transferred} and the harvested link counters agree with a
    sequential run. *)

val is_idle : t -> bool
(** No words in flight. *)

val port_channels : t -> (Channel.t * Channel.t) list
(** [(src, dst)] channel pair of every registered port, for the engine's
    wake-hook wiring. *)

val sources_empty : t -> bool
(** No port has a word waiting for injection. A link with empty sources
    and either empty or blocked in-flight queues can be put to sleep. *)

val next_arrival : t -> now:int -> int
(** Earliest in-flight release cycle strictly after [now], or [max_int]
    — the link's next self-wake time while its sources stay empty.
    Releases at or before [now] are excluded: a matured head that did
    not deliver this cycle is blocked on destination space, and only a
    pop on that destination can unblock it. *)

val refill : t -> unit
(** One bandwidth-controller refill, used by the scheduler to catch up a
    link woken after sleeping: budgets converge after a single idle
    refill, so one call reproduces any number of slept cycles. *)

(** {2 Fault-injection hooks ({!Fault_plan})} *)

val set_stalled : t -> bool -> unit
(** While set, {!cycle} neither injects nor delivers (a full link
    freeze); lost cycles are classified as link latency. Cleared by the
    injector each cycle. *)

val stalled : t -> bool

val set_extra_latency : t -> int -> unit
(** Extra propagation latency added to words injected while set.
    Delivery order stays FIFO per port. Cleared by the injector each
    cycle. *)

val extra_latency : t -> int
