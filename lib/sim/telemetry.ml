module Json = Sf_support.Json

type stall_cause =
  | Input_starved
  | Output_full
  | Bandwidth_denied
  | Link_latency
  | Pipeline_drain

let cause_name = function
  | Input_starved -> "input-starved"
  | Output_full -> "output-full"
  | Bandwidth_denied -> "bandwidth-denied"
  | Link_latency -> "link-latency"
  | Pipeline_drain -> "pipeline-drain"

let all_causes = [ Input_starved; Output_full; Bandwidth_denied; Link_latency; Pipeline_drain ]

let cause_index = function
  | Input_starved -> 0
  | Output_full -> 1
  | Bandwidth_denied -> 2
  | Link_latency -> 3
  | Pipeline_drain -> 4

let n_causes = List.length all_causes

type kind = Unit | Reader | Writer | Link

let kind_name = function
  | Unit -> "unit"
  | Reader -> "reader"
  | Writer -> "writer"
  | Link -> "link"

type span = {
  track : string;
  label : string;
  start_cycle : int;
  end_cycle : int;
  blocking : string option;
}

(* A probe tracks its component's per-cause counters, the channels it
   blamed, and one open stall span at a time; consecutive stalls with
   the same (cause, channel) extend the open span. *)
type probe = {
  pname : string;
  by_cause : int array;
  blamed : (string, int) Hashtbl.t;
  mutable busy_cycles : int;
  mutable first_active : int;  (* first busy cycle, -1 before any *)
  mutable last_active : int;
  (* Open stall span: cause index, blamed channel, start, last cycle. *)
  mutable open_cause : int;  (* -1 = no open span *)
  mutable open_channel : string;
  mutable open_start : int;
  mutable open_last : int;
  spans : span list ref;  (* shared with the collector, reversed *)
}

type t = { enabled : bool; mutable probes : probe list; closed_spans : span list ref }

let create ~enabled () = { enabled; probes = []; closed_spans = ref [] }
let enabled t = t.enabled

let probe t ~kind:_ ~name =
  if not t.enabled then None
  else begin
    let p =
      {
        pname = name;
        by_cause = Array.make n_causes 0;
        blamed = Hashtbl.create 4;
        busy_cycles = 0;
        first_active = -1;
        last_active = -1;
        open_cause = -1;
        open_channel = "";
        open_start = 0;
        open_last = 0;
        spans = t.closed_spans;
      }
    in
    t.probes <- p :: t.probes;
    Some p
  end

let close_span p =
  if p.open_cause >= 0 then begin
    let label = "stall:" ^ cause_name (List.nth all_causes p.open_cause) in
    let blocking = if p.open_channel = "" then None else Some p.open_channel in
    p.spans :=
      {
        track = p.pname;
        label;
        start_cycle = p.open_start;
        end_cycle = p.open_last + 1;
        blocking;
      }
      :: !(p.spans);
    p.open_cause <- -1
  end

let stall p ~now ?(channel = "") cause =
  let ci = cause_index cause in
  p.by_cause.(ci) <- p.by_cause.(ci) + 1;
  if channel <> "" then
    Hashtbl.replace p.blamed channel
      (1 + Option.value ~default:0 (Hashtbl.find_opt p.blamed channel));
  if p.open_cause = ci && String.equal p.open_channel channel && p.open_last = now - 1 then
    p.open_last <- now
  else begin
    close_span p;
    p.open_cause <- ci;
    p.open_channel <- channel;
    p.open_start <- now;
    p.open_last <- now
  end

let busy p ~now =
  close_span p;
  p.busy_cycles <- p.busy_cycles + 1;
  if p.first_active < 0 then p.first_active <- now;
  p.last_active <- now

type counters = {
  name : string;
  kind : kind;
  busy_cycles : int;
  stalled_cycles : int;
  stalls_by_cause : (stall_cause * int) list;
  blocked_on : (string * int) list;
  pushes : int;
  pops : int;
  bytes : int;
}

type channel_info = {
  channel : string;
  capacity : int;
  high_water : int;
  total_pushed : int;
  total_popped : int;
}

type report = {
  enabled : bool;
  cycles : int;
  components : counters list;
  channels : channel_info list;
  samples : (int * (string * int) list) list;
  spans : span list;
}

let probe_total p = Array.fold_left ( + ) 0 p.by_cause

let counters_row ?probe ?stalled ?(pushes = 0) ?(pops = 0) ?(bytes = 0) ~name ~kind () =
  let busy_cycles, by_cause, blocked_on =
    match probe with
    | None -> (0, [], [])
    | Some p ->
        let by_cause =
          List.filter_map
            (fun c ->
              let n = p.by_cause.(cause_index c) in
              if n > 0 then Some (c, n) else None)
            all_causes
        in
        let blamed = Hashtbl.fold (fun ch n acc -> (ch, n) :: acc) p.blamed [] in
        let blamed =
          List.sort (fun (c1, n1) (c2, n2) -> if n1 <> n2 then compare n2 n1 else compare c1 c2)
            blamed
        in
        (p.busy_cycles, by_cause, blamed)
  in
  let stalled =
    match stalled with
    | Some s -> s
    | None -> ( match probe with None -> 0 | Some p -> probe_total p)
  in
  {
    name;
    kind;
    busy_cycles;
    stalled_cycles = stalled;
    stalls_by_cause = by_cause;
    blocked_on;
    pushes;
    pops;
    bytes;
  }

let freeze t ~cycles ~components ~channels ~samples =
  List.iter close_span t.probes;
  (* Emit each component's active phase as a span (begin/end events of
     its streaming lifetime), then sort everything chronologically. *)
  List.iter
    (fun p ->
      if p.first_active >= 0 then
        t.closed_spans :=
          {
            track = p.pname;
            label = "active";
            start_cycle = p.first_active;
            end_cycle = p.last_active + 1;
            blocking = None;
          }
          :: !(t.closed_spans))
    t.probes;
  let spans =
    List.stable_sort
      (fun a b ->
        if a.start_cycle <> b.start_cycle then compare a.start_cycle b.start_cycle
        else compare a.track b.track)
      (List.rev !(t.closed_spans))
  in
  { enabled = t.enabled; cycles; components; channels; samples; spans }

(* ------------------------------------------------------------------ *)
(* Derived views.                                                      *)
(* ------------------------------------------------------------------ *)

let unit_stalls r =
  List.filter_map
    (fun c -> if c.kind = Unit then Some (c.name, c.stalled_cycles) else None)
    r.components

let channel_high_water r =
  List.map (fun (c : channel_info) -> (c.channel, c.high_water, c.capacity)) r.channels

let total_blocked r = List.fold_left (fun acc c -> acc + c.stalled_cycles) 0 r.components

let attribution r =
  List.filter (fun c -> c.stalled_cycles > 0) r.components
  |> List.stable_sort (fun a b -> compare b.stalled_cycles a.stalled_cycles)

let top_blocker c = match c.blocked_on with [] -> None | (ch, n) :: _ -> Some (ch, n)

let dominant_cause c =
  match
    List.stable_sort (fun (_, n1) (_, n2) -> compare n2 n1) c.stalls_by_cause
  with
  | [] -> None
  | (cause, n) :: _ -> Some (cause, n)

let row_line ~cycles c =
  let pct n = if cycles = 0 then 0. else 100. *. float_of_int n /. float_of_int cycles in
  let cause =
    match dominant_cause c with
    | None -> "-"
    | Some (cause, n) -> Printf.sprintf "%s:%d" (cause_name cause) n
  in
  let blocker =
    match top_blocker c with
    | None -> "-"
    | Some (ch, n) -> Printf.sprintf "%s:%d" ch n
  in
  Printf.sprintf "%-18s %-6s %8d %5.1f%% %8d  %-24s %s" c.name (kind_name c.kind)
    c.stalled_cycles (pct c.stalled_cycles) c.busy_cycles cause blocker

let pp_attribution fmt r =
  let rows = attribution r in
  Format.fprintf fmt "stall attribution (%d cycles simulated, %d blocked component-cycles):@."
    r.cycles (total_blocked r);
  Format.fprintf fmt "  %-18s %-6s %8s %6s %8s  %-24s %s@." "component" "kind" "blocked" "" "busy"
    "top cause" "top blocking channel";
  if rows = [] then Format.fprintf fmt "  (no component ever stalled)@."
  else List.iter (fun c -> Format.fprintf fmt "  %s@." (row_line ~cycles:r.cycles c)) rows

let attribution_notes ?(limit = 3) r =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  List.map
    (fun c ->
      let blocker =
        match top_blocker c with
        | None -> ""
        | Some (ch, n) -> Printf.sprintf " (mostly on %s, %d cycles)" ch n
      in
      let cause =
        match dominant_cause c with None -> "" | Some (cause, _) -> " " ^ cause_name cause
      in
      Printf.sprintf "%s %s: %d blocked cycles%s%s" (kind_name c.kind) c.name c.stalled_cycles
        cause blocker)
    (take limit (attribution r))

(* ------------------------------------------------------------------ *)
(* JSON renderings.                                                    *)
(* ------------------------------------------------------------------ *)

let counters_json r =
  let component c =
    Json.Obj
      ([
         ("name", Json.String c.name);
         ("kind", Json.String (kind_name c.kind));
         ("busy_cycles", Json.Int c.busy_cycles);
         ("stalled_cycles", Json.Int c.stalled_cycles);
         ("pushes", Json.Int c.pushes);
         ("pops", Json.Int c.pops);
         ("bytes", Json.Int c.bytes);
       ]
      @ (if c.stalls_by_cause = [] then []
         else
           [
             ( "stalls_by_cause",
               Json.Obj
                 (List.map (fun (cause, n) -> (cause_name cause, Json.Int n)) c.stalls_by_cause)
             );
           ])
      @
      if c.blocked_on = [] then []
      else
        [
          ( "blocked_on",
            Json.Obj (List.map (fun (ch, n) -> (ch, Json.Int n)) c.blocked_on) );
        ])
  in
  let channel (c : channel_info) =
    Json.Obj
      [
        ("name", Json.String c.channel);
        ("capacity", Json.Int c.capacity);
        ("high_water", Json.Int c.high_water);
        ("pushes", Json.Int c.total_pushed);
        ("pops", Json.Int c.total_popped);
      ]
  in
  Json.Obj
    [
      ("cycles", Json.Int r.cycles);
      ("telemetry", Json.Bool r.enabled);
      ("components", Json.List (List.map component r.components));
      ("channels", Json.List (List.map channel r.channels));
    ]

(* Chrome trace_event format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   One process (pid 0), one thread per component; timestamps are cycle
   numbers interpreted as microseconds. *)
let trace_events_json r =
  let tracks =
    (* Components first (registry order), then channels with samples. *)
    List.map (fun c -> c.name) r.components
  in
  let tid_of =
    let tbl = Hashtbl.create 32 in
    List.iteri (fun i name -> Hashtbl.replace tbl name i) tracks;
    fun name ->
      match Hashtbl.find_opt tbl name with
      | Some i -> i
      | None ->
          let i = Hashtbl.length tbl in
          Hashtbl.replace tbl name i;
          i
  in
  let base ?(args = []) ~name ~ph ~tid ~ts extra =
    Json.Obj
      ([
         ("name", Json.String name);
         ("ph", Json.String ph);
         ("pid", Json.Int 0);
         ("tid", Json.Int tid);
         ("ts", Json.Int ts);
       ]
      @ extra
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  let meta =
    base ~args:[ ("name", Json.String "stencilflow simulation") ] ~name:"process_name" ~ph:"M"
      ~tid:0 ~ts:0 []
    :: List.map
         (fun c ->
           base
             ~args:[ ("name", Json.String (kind_name c.kind ^ " " ^ c.name)) ]
             ~name:"thread_name" ~ph:"M" ~tid:(tid_of c.name) ~ts:0 [])
         r.components
  in
  let span_events =
    List.map
      (fun s ->
        let args =
          match s.blocking with
          | Some ch -> [ ("blocking_channel", Json.String ch) ]
          | None -> []
        in
        base ~args ~name:s.label ~ph:"X" ~tid:(tid_of s.track) ~ts:s.start_cycle
          [ ("dur", Json.Int (max 1 (s.end_cycle - s.start_cycle))) ])
      r.spans
  in
  let counter_events =
    List.concat_map
      (fun (cycle, occupancies) ->
        List.map
          (fun (ch, occ) ->
            base
              ~args:[ ("occupancy", Json.Int occ) ]
              ~name:("fifo " ^ ch) ~ph:"C" ~tid:0 ~ts:cycle [])
          occupancies)
      r.samples
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ span_events @ counter_events));
      ("displayTimeUnit", Json.String "ms");
    ]
