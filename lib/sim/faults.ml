(* Adversarial deadlock-freedom validation on top of Fault_plan.

   The paper's claim (Sec. IV-B) is latency-insensitivity: with the
   analysed delay-buffer depths, the dataflow graph completes with
   bit-identical outputs under ANY timing. A campaign samples that
   space with N seeded fault schedules; the under-provisioning probe
   finds the largest capacity at which the tightest edge deadlocks,
   where the claim is expected to break; the shrinker reduces a failing
   plan to a minimal counterexample. *)

module Diag = Sf_support.Diag
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp

type plan = Fault_plan.t

let default_plan = Fault_plan.default

type run_outcome = Identical of int | Failed of Diag.t

type run_record = { seed : int; outcome : run_outcome; faults : Fault_plan.summary }

type report = { baseline_cycles : int; runs : run_record list }

let failures r =
  List.filter_map
    (fun run -> match run.outcome with Failed d -> Some (run, d) | Identical _ -> None)
    r.runs

let passed r = failures r = []

(* Timing faults must not change values: compare bit patterns, not
   approximate floats — any difference at all refutes the claim. *)
let bit_identical (a : (string * Interp.result) list) (b : (string * Interp.result) list) =
  List.length a = List.length b
  && List.for_all2
       (fun (na, ra) (nb, rb) ->
         String.equal na nb
         && ra.Interp.valid = rb.Interp.valid
         && Array.for_all2
              (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
              ra.Interp.tensor.Tensor.data rb.Interp.tensor.Tensor.data)
       a b

let campaign ?(config = Engine.Config.default) ?(placement = fun _ -> 0) ?inputs
    ?(plan = default_plan) ?(schedules = 25) ?(jobs = 1) (p : Sf_ir.Program.t) =
  let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
  (* The unperturbed reference run: same config with faults stripped
     (any depth override in the plan still applies to the injected runs
     only — the baseline is the analysed provisioning). *)
  let baseline_config = { config with Engine.Config.faults = Engine.Config.faults () } in
  match Engine.run ~config:baseline_config ~placement ~inputs p with
  | Error d -> Error d
  | Ok baseline ->
      let one seed =
        let faulty =
          { config with Engine.Config.faults = Engine.Config.faults ~plan ~seed () }
        in
        match Engine.run ~config:faulty ~placement ~inputs p with
        | Error d -> { seed; outcome = Failed d; faults = Fault_plan.empty_summary }
        | Ok stats ->
            let outcome =
              if bit_identical stats.Engine.results baseline.Engine.results then
                Identical stats.Engine.cycles
              else
                Failed
                  (Diag.errorf ~code:Diag.Code.sim_mismatch
                     "fault schedule (seed %d) changed output values" seed)
            in
            { seed; outcome; faults = stats.Engine.faults }
      in
      (* Each schedule is an independent simulation on shared-immutable
         inputs; [Executor.map] keeps the report indexed by seed, so the
         result is byte-identical to the serial loop for any [jobs]. *)
      let runs =
        Sf_support.Executor.with_pool ~jobs (fun pool ->
            Array.to_list (Sf_support.Executor.map pool schedules (fun i -> one (i + 1))))
      in
      Ok { baseline_cycles = baseline.Engine.cycles; runs }

(* Depth override pinning an edge's REAL channel capacity: the engine
   adds [channel_slack] on top of whatever the override says, so the
   override compensates for it (and may legitimately go negative).
   Capacity 0 cannot exist. *)
let underprovision ~channel_slack ~capacity (src, dst) =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Faults.underprovision: edge %s->%s capacity %d (< 1)" src dst capacity);
  [ ((src, dst), capacity - channel_slack) ]

type depth_probe = {
  edge : string * string;
  analysed_depth : int;  (** Words; the channel also gets [channel_slack] on top. *)
  tight_capacity : int option;
      (* Largest real capacity (in [1, depth + slack - 1]) at which the
         run deadlocks; None when even capacity 1 completes. *)
  probe_diag : Diag.t option;
      (* The SF0701 of a run at [tight_capacity] under the fault plan,
         with fault-attribution notes. *)
}

(* A Kahn network's deadlocks depend only on channel capacities, never
   on timing (processes are deterministic and reads/writes block), so
   shrinking a capacity is the ONLY way to manufacture a deadlock and
   the search below is schedule-independent: the pure-capacity runs use
   [override_edge_buffers] (no injector, fast engine paths) and their
   verdict transfers to every fault schedule. Capacity shrinks
   monotonically — less space can only add deadlocks — so the largest
   deadlocking capacity is well-defined and binary-searchable. *)
let probe_tightest ?(config = Engine.Config.default) ?(placement = fun _ -> 0) ?inputs
    ?(plan = default_plan) ?(fault_seed = 1) ?(jobs = 1)
    ~(analysis : Sf_analysis.Delay_buffer.t) (p : Sf_ir.Program.t) =
  match Sf_analysis.Delay_buffer.tightest_edge analysis with
  | None -> None
  | Some (edge, depth) ->
      let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
      let slack = config.Engine.Config.channel_slack in
      let base = { config with Engine.Config.faults = Engine.Config.faults () } in
      let completes capacity =
        let cfg =
          {
            base with
            Engine.Config.override_edge_buffers = underprovision ~channel_slack:slack ~capacity edge;
          }
        in
        match Engine.run ~config:cfg ~placement ~inputs p with Ok _ -> true | Error _ -> false
      in
      (* Largest deadlocking capacity in [1, depth + slack - 1]: lo is
         the highest KNOWN deadlock, hi the lowest known completion.
         With [jobs > 1] each round samples k interior points of the
         bracket concurrently (k-section) instead of one midpoint;
         because [completes] is monotone in the capacity, every sample
         tightens the bracket from one side or the other and the search
         converges to the same boundary the serial bisection finds. At
         [jobs = 1] the single sample IS the midpoint, so the probe
         degenerates to exactly the old bisection. *)
      let tight =
        if completes 1 then None
        else begin
          let lo = ref 1 and hi = ref (depth + slack) in
          (* depth + slack completes by the campaign's own claim; treat
             it as the completing sentinel without re-running it. *)
          Sf_support.Executor.with_pool ~jobs (fun pool ->
              while !hi - !lo > 1 do
                let gap = !hi - !lo in
                let k = max 1 (min (Sf_support.Executor.jobs pool) (gap - 1)) in
                (* Strictly increasing interior points: gap >= k + 1, so
                   the real-valued increments are >= 1 and the floors
                   stay distinct, all within (lo, hi). *)
                let points = Array.init k (fun i -> !lo + (gap * (i + 1) / (k + 1))) in
                let ok = Sf_support.Executor.map pool k (fun i -> completes points.(i)) in
                Array.iteri
                  (fun i completed ->
                    if completed then begin
                      if points.(i) < !hi then hi := points.(i)
                    end
                    else if points.(i) > !lo then lo := points.(i))
                  ok
              done);
          Some !lo
        end
      in
      let probe_diag =
        match tight with
        | None -> None
        | Some capacity ->
            let probe_plan =
              {
                plan with
                Fault_plan.depth_overrides = underprovision ~channel_slack:slack ~capacity edge;
              }
            in
            let cfg =
              {
                base with
                Engine.Config.faults = Engine.Config.faults ~plan:probe_plan ~seed:fault_seed ();
              }
            in
            (match Engine.run ~config:cfg ~placement ~inputs p with
            | Ok _ -> None (* cannot happen: capacity deadlocks schedule-independently *)
            | Error d -> Some d)
      in
      Some { edge; analysed_depth = depth; tight_capacity = tight; probe_diag }

(* Shrink a failing plan to a minimal counterexample. First replay the
   plan's own injected-event log as a scripted plan (witness): renewal
   bursts become concrete events, making every candidate deterministic
   without a seed. Then ddmin over the event list, then halve the
   surviving durations while the failure persists.

   For a correctly-provisioned network the interesting outcome is the
   opposite: [fails] keeps failing on the EMPTY event list, because a
   Kahn network's deadlocks depend only on capacities, never timing —
   the shrinker converging to zero events IS the proof that the depth
   override alone, not any injected timing, causes the deadlock. *)
let shrink ~fails (plan : Fault_plan.t) ~(witness : Fault_plan.summary) =
  let base events =
    { Fault_plan.bursts = []; events; depth_overrides = plan.Fault_plan.depth_overrides }
  in
  if not (fails (base witness.Fault_plan.log)) then None
  else begin
    let events = ref witness.Fault_plan.log in
    (* ddmin: drop chunks of shrinking size while the failure persists.
       The empty list is a legal end state — a depth-override plan that
       deadlocks with no injected timing at all proves the capacities,
       not the timing, are at fault. *)
    let chunk = ref (max 1 (List.length !events / 2)) in
    while !chunk >= 1 do
      let i = ref 0 in
      while !i < List.length !events do
        let keep = List.filteri (fun j _ -> j < !i || j >= !i + !chunk) !events in
        if List.length keep < List.length !events && fails (base keep) then
          (* Keep the index: the list shifted left under it. *)
          events := keep
        else i := !i + !chunk
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done;
    (* Halve surviving durations while the failure persists. *)
    let arr = ref (Array.of_list !events) in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun i (e : Fault_plan.Event.t) ->
          if e.Fault_plan.Event.duration > 1 then begin
            let shorter =
              { e with Fault_plan.Event.duration = e.Fault_plan.Event.duration / 2 }
            in
            let candidate = Array.copy !arr in
            candidate.(i) <- shorter;
            if fails (base (Array.to_list candidate)) then begin
              arr := candidate;
              changed := true
            end
          end)
        !arr
    done;
    Some (base (Array.to_list !arr))
  end
