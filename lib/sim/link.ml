type port = {
  src : Channel.t;
  dst : Channel.t;
  word_bytes : int;
  in_flight : (int * Word.t) Queue.t;
}

type t = {
  name : string;
  controller : Controller.t;
  latency_cycles : int;
  mutable ports : port list;
  probe : Telemetry.probe option;
  (* Fault-injection state (Fault_plan): a stalled link neither injects
     nor delivers for the cycle; extra_latency inflates the release time
     of words injected this cycle. Both are cleared by the injector each
     cycle before active faults are re-applied. *)
  mutable stalled : bool;
  mutable extra_latency : int;
}

let create ?probe ~name ~bytes_per_cycle ~latency_cycles () =
  {
    name;
    controller = Controller.create ~bytes_per_cycle;
    latency_cycles;
    ports = [];
    probe;
    stalled = false;
    extra_latency = 0;
  }

let add_port t ~src ~dst ~word_bytes =
  t.ports <- t.ports @ [ { src; dst; word_bytes; in_flight = Queue.create () } ]

let cycle t ~now =
  Controller.begin_cycle t.controller;
  if t.stalled then begin
    (* An injected stall freezes the whole link for the cycle. Classify
       the lost cycle as link latency when anything is waiting on it. *)
    (match t.probe with
    | None -> ()
    | Some probe -> (
        let busy p = not (Queue.is_empty p.in_flight && Channel.is_empty p.src) in
        match List.find_opt busy t.ports with
        | Some p -> Telemetry.stall probe ~now ~channel:(Channel.name p.dst) Telemetry.Link_latency
        | None -> ()));
    false
  end
  else begin
  let progress = ref false in
  List.iter
    (fun p ->
      (* Deliver matured words first, freeing in-flight slots. *)
      (match Queue.peek_opt p.in_flight with
      | Some (release, word) when release <= now && not (Channel.is_full p.dst) ->
          ignore (Queue.pop p.in_flight);
          Channel.push p.dst word;
          progress := true
      | Some _ | None -> ());
      (* Inject new words subject to shared link bandwidth. Injected
         latency jitter only delays release times; the per-port queue
         stays FIFO and delivery pops the head only, so word order is
         preserved under any jitter. *)
      if (not (Channel.is_empty p.src)) && Controller.request t.controller p.word_bytes then begin
        let word = Channel.pop p.src in
        Queue.push (now + t.latency_cycles + t.extra_latency, word) p.in_flight;
        progress := true
      end)
    t.ports;
  (match t.probe with
  | None -> ()
  | Some probe ->
      if !progress then Telemetry.busy probe ~now
      else begin
        (* Classify the blocked cycle in backpressure-first order: a
           matured word refused by a full destination, then a source
           word refused by the shared bandwidth budget (injection is
           always attempted when a source is non-empty), then words
           merely still in flight. A link with no work records nothing. *)
        let matured_blocked p =
          match Queue.peek_opt p.in_flight with
          | Some (release, _) when release <= now -> Channel.is_full p.dst
          | Some _ | None -> false
        in
        match List.find_opt matured_blocked t.ports with
        | Some p ->
            Telemetry.stall probe ~now ~channel:(Channel.name p.dst) Telemetry.Output_full
        | None -> (
            match List.find_opt (fun p -> not (Channel.is_empty p.src)) t.ports with
            | Some p ->
                Telemetry.stall probe ~now ~channel:(Channel.name p.src)
                  Telemetry.Bandwidth_denied
            | None -> (
                match List.find_opt (fun p -> not (Queue.is_empty p.in_flight)) t.ports with
                | Some p ->
                    Telemetry.stall probe ~now ~channel:(Channel.name p.dst)
                      Telemetry.Link_latency
                | None -> ()))
      end);
  !progress
  end

let name t = t.name
let bytes_transferred t = Controller.bytes_granted t.controller
let latency_cycles t = t.latency_cycles
let bytes_per_cycle t = Controller.bytes_per_cycle t.controller
let credit_bytes t n = Controller.account t.controller n
let is_idle t = List.for_all (fun p -> Queue.is_empty p.in_flight) t.ports
let port_channels t = List.map (fun p -> (p.src, p.dst)) t.ports
let sources_empty t = List.for_all (fun p -> Channel.is_empty p.src) t.ports

let next_arrival t ~now =
  List.fold_left
    (fun acc p ->
      match Queue.peek_opt p.in_flight with
      | Some (release, _) when release > now -> min acc release
      | Some _ | None -> acc)
    max_int t.ports

let refill t = Controller.begin_cycle t.controller
let set_stalled t v = t.stalled <- v
let stalled t = t.stalled
let set_extra_latency t v = t.extra_latency <- v
let extra_latency t = t.extra_latency
