type t = { values : float array; valid : bool array }

let create w = { values = Array.make w 0.; valid = Array.make w true }
let width t = Array.length t.values
let copy t = { values = Array.copy t.values; valid = Array.copy t.valid }
