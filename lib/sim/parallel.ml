open Sf_ir
module Interp = Sf_reference.Interp
module Diag = Sf_support.Diag
module I = Engine.Internal

type decision =
  [ `Parallel of int | `Degrade of string | `Reject of Sf_support.Diag.t ]

(* ------------------------------------------------------------------ *)
(* Cross-domain synchronization.                                       *)
(*                                                                     *)
(* Each device domain owns a [sync] cell and publishes its last fully  *)
(* executed cycle through it. Neighbours read it to enforce the        *)
(* conservative bounds: a device may execute cycle [t] once every      *)
(* upstream committed [t - L] (all traffic that can reach it by [t] is *)
(* then in the queue) and every downstream committed [t - window]      *)
(* (bounding queue occupancy). Commits are batched: a domain publishes *)
(* every [batch] executed cycles rather than every cycle, and always   *)
(* flushes before blocking on a neighbour — batching can therefore     *)
(* delay a waiter by at most one batch, never deadlock it, and within  *)
(* a batch the hot loop touches no shared state at all. A blocked      *)
(* domain backs off exponentially (or parks immediately when the host  *)
(* has fewer cores than domains), then waits on the condition          *)
(* variable. Publishers broadcast only when the waiter count is        *)
(* non-zero — the increment-then-recheck / set-then-read pairing makes *)
(* the lost-wakeup race impossible under the SC total order.           *)
(* ------------------------------------------------------------------ *)

type sync = {
  committed : int Atomic.t;  (* last fully executed cycle; -1 before cycle 0 *)
  waiters : int Atomic.t;
  mu : Mutex.t;
  cv : Condition.t;
}

(* Published in place of the cycle clock when a domain exits, so
   neighbours never block on it again. Far below [max_int] because
   readers cache [committed + lookahead] and must not overflow. *)
let sentinel = max_int / 4

let make_sync () =
  {
    committed = Atomic.make (-1);
    waiters = Atomic.make 0;
    mu = Mutex.create ();
    cv = Condition.create ();
  }

let publish sync c =
  Atomic.set sync.committed c;
  if Atomic.get sync.waiters > 0 then begin
    Mutex.lock sync.mu;
    Condition.broadcast sync.cv;
    Mutex.unlock sync.mu
  end

(* Wait until [committed >= target] or an abort; returns the committed
   value read (callers re-check the abort flag). [spin_rounds] bounds
   the pre-park backoff: round [n] costs [2^min(n,6)] cpu_relax hints,
   so early rounds return quickly when the publisher is one batch away
   and late rounds stop hammering the cache line. Zero rounds (an
   oversubscribed host, where spinning steals the publisher's core)
   parks immediately. *)
let await sync ~abort ~spin_rounds ~target =
  let block () =
    Atomic.incr sync.waiters;
    Mutex.lock sync.mu;
    let rec wait () =
      let c = Atomic.get sync.committed in
      if c >= target || Atomic.get abort then c
      else begin
        Condition.wait sync.cv sync.mu;
        wait ()
      end
    in
    let c = wait () in
    Mutex.unlock sync.mu;
    Atomic.decr sync.waiters;
    c
  in
  let rec spin n =
    let c = Atomic.get sync.committed in
    if c >= target || Atomic.get abort then c
    else if n < spin_rounds then begin
      for _ = 1 to 1 lsl min n 6 do
        Domain.cpu_relax ()
      done;
      spin (n + 1)
    end
    else block ()
  in
  spin 0

(* ------------------------------------------------------------------ *)
(* Link directions.                                                    *)
(*                                                                     *)
(* The sequential [Link] holds both directions of a device pair and    *)
(* steps them inside one global cycle. Here each direction is split in *)
(* two halves with single-domain ownership: the tx half (source        *)
(* domain) moves lanes from near channels into the SPSC ring with a    *)
(* release cycle [now + latency], publishing once per cycle; the rx    *)
(* half (destination domain) drains the ring into per-port in-flight   *)
(* rings and delivers matured words into far channels, at most one     *)
(* word per port per cycle — exactly [Link.cycle]'s per-port           *)
(* behaviour. Injection and delivery commute within a cycle because    *)
(* latency >= 1 keeps a word injected at [t] undeliverable before      *)
(* [t + 1]. All transport is in-place lane blits between the channel   *)
(* and ring structure-of-arrays buffers: the steady state allocates    *)
(* nothing.                                                            *)
(*                                                                     *)
(* Each direction gets its own bandwidth controller. That is exact     *)
(* when the link budget is infinite (requests always grant) or the     *)
(* link carries one direction only (the controller IS the link's);     *)
(* bidirectional traffic on a finite budget shares grants across       *)
(* directions in the sequential port order, which no per-direction     *)
(* split can reproduce — [decide] degrades that case.                  *)
(* ------------------------------------------------------------------ *)

(* Per-port FIFO of drained-but-undelivered words, owned by the rx
   domain. A plain growable ring: the far channel can stay full for
   arbitrarily long while the source keeps transmitting (the old
   implementation used an unbounded [Queue.t] here), so growth must be
   possible, but it doubles rarely and the steady state is in-place. *)
type flight = {
  mutable fmask : int;
  mutable releases : int array;
  mutable fvalues : float array;
  mutable fvalid : bool array;
  mutable head : int;  (* slot index of the oldest element *)
  mutable count : int;
  width : int;
}

let flight_create ~capacity ~width =
  let cap = ref 4 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    fmask = !cap - 1;
    releases = Array.make !cap 0;
    fvalues = Array.make (!cap * width) 0.;
    fvalid = Array.make (!cap * width) true;
    head = 0;
    count = 0;
    width;
  }

let flight_grow fl =
  let old_cap = fl.fmask + 1 in
  let cap = old_cap * 2 in
  let releases = Array.make cap 0 in
  let fvalues = Array.make (cap * fl.width) 0. in
  let fvalid = Array.make (cap * fl.width) true in
  for j = 0 to fl.count - 1 do
    let s = (fl.head + j) land fl.fmask in
    releases.(j) <- fl.releases.(s);
    Array.blit fl.fvalues (s * fl.width) fvalues (j * fl.width) fl.width;
    Array.blit fl.fvalid (s * fl.width) fvalid (j * fl.width) fl.width
  done;
  fl.releases <- releases;
  fl.fvalues <- fvalues;
  fl.fvalid <- fvalid;
  fl.fmask <- cap - 1;
  fl.head <- 0

type direction = {
  link : Link.t;
  src_dev : int;
  dst_dev : int;
  near : Channel.t array;  (* tx side, per port *)
  far : Channel.t array;  (* rx side, per port *)
  word_bytes : int array;
  widths : int array;
  queue : Spsc.t;  (* tag = port index, release = delivery cycle *)
  tx_ctrl : Controller.t;
  in_flight : flight array;
  latency : int;
}

(* Group [system.cross_ports] (in [Link.cycle] port order) by link and
   direction. Ring capacity: the destination drains every cycle it
   executes, and the conservative bounds keep the source within
   [window] cycles of the destination's commit point and the
   destination within [latency] cycles of the source's — so at most
   [window + latency] undrained words per port, plus slack. *)
let directions ~window (system : I.system) =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (link, sd, dd, near, far, wb) ->
      let key = (Link.name link, sd, dd) in
      let prev =
        match Hashtbl.find_opt tbl key with
        | Some ps -> ps
        | None ->
            order := (key, link, sd, dd) :: !order;
            []
      in
      Hashtbl.replace tbl key ((near, far, wb) :: prev))
    system.I.cross_ports;
  List.rev_map
    (fun (key, link, sd, dd) ->
      let ports = Array.of_list (List.rev (Hashtbl.find tbl key)) in
      let n = Array.length ports in
      let latency = Link.latency_cycles link in
      let widths = Array.map (fun (near, _, _) -> Channel.width near) ports in
      let lanes = Array.fold_left max 1 widths in
      {
        link;
        src_dev = sd;
        dst_dev = dd;
        near = Array.map (fun (near, _, _) -> near) ports;
        far = Array.map (fun (_, far, _) -> far) ports;
        word_bytes = Array.map (fun (_, _, wb) -> wb) ports;
        widths;
        queue = Spsc.create ~capacity:(n * (window + latency + 2)) ~lanes;
        tx_ctrl = Controller.create ~bytes_per_cycle:(Link.bytes_per_cycle link);
        in_flight = Array.init n (fun i -> flight_create ~capacity:(latency + 16) ~width:widths.(i));
        latency;
      })
    !order

(* ------------------------------------------------------------------ *)
(* Per-device schedule.                                                *)
(*                                                                     *)
(* Mirrors the seed's per-cycle component order restricted to one      *)
(* device: link halves first (rx then tx — the link slot in the global *)
(* order), then writers, units consumers-before-producers, readers.    *)
(* Every channel is touched by exactly one domain, so all the plain    *)
(* mutable component state stays single-domain.                        *)
(* ------------------------------------------------------------------ *)

type pcomp =
  | Prx of direction
  | Ptx of direction
  | Pwriter of Memory_unit.Writer.t
  | Punit of Stencil_unit.t
  | Preader of Memory_unit.Reader.t

type status = [ `Finished | `Aborted | `Stuck | `Timeout ]
type verdict = Done of status * int | Crashed of exn * Printexc.raw_backtrace

let run_domains ~config ~placement ~inputs (p : Program.t) =
  let telemetry = Telemetry.create ~enabled:false () in
  let system, predicted = I.build ~config ~telemetry ~placement ~inputs p in
  let ndev = Array.length system.I.mem_controllers in
  let { Engine.Config.window_cycles; sync_batch_cycles; host_jobs; mode = _ } =
    config.Engine.Config.parallelism
  in
  let { Engine.Config.deadlock_window; max_cycles } = config.Engine.Config.safety in
  let max_cycles = match max_cycles with Some m -> m | None -> max_int in
  let max_latency =
    List.fold_left
      (fun acc (l, _, _, _, _, _) -> max acc (Link.latency_cycles l))
      1 system.I.cross_ports
  in
  (* The run-ahead window is decoupled from the lookahead: the rings are
     sized to carry it, so it defaults to several multiples of the
     latency — domains re-synchronize on the slow commit clock as rarely
     as the capacity slack allows. *)
  let window =
    if window_cycles > 0 then window_cycles else max 1024 (4 * max_latency)
  in
  let dirs = directions ~window system in
  let min_latency = List.fold_left (fun acc d -> min acc d.latency) max_latency dirs in
  let batch =
    if sync_batch_cycles > 0 then sync_batch_cycles
    else max 1 (min 64 (min_latency / 4))
  in
  let host_jobs = if host_jobs > 0 then host_jobs else Domain.recommended_domain_count () in
  let home name = Hashtbl.find system.I.comp_device name in
  let dev_comps =
    Array.init ndev (fun d ->
        Array.of_list
          (List.filter_map (fun dir -> if dir.dst_dev = d then Some (Prx dir) else None) dirs
          @ List.filter_map (fun dir -> if dir.src_dev = d then Some (Ptx dir) else None) dirs
          @ List.filter_map
              (fun (_, w, _) ->
                if home (Memory_unit.Writer.name w) = d then Some (Pwriter w) else None)
              system.I.writers
          @ List.rev
              (List.filter_map
                 (fun (u, _) ->
                   if home (Stencil_unit.name u) = d then Some (Punit u) else None)
                 system.I.units)
          @ List.filter_map
              (fun (r, _) ->
                if home (Memory_unit.Reader.name r) = d then Some (Preader r) else None)
              system.I.readers))
  in
  let used = Array.map (fun comps -> Array.length comps > 0) dev_comps in
  let spawned = Array.fold_left (fun a u -> if u then a + 1 else a) 0 used in
  (* Spinning only helps when the publisher can run concurrently; on an
     oversubscribed host every spin steals the publisher's core, so park
     at once and let the scheduler hand the core over. *)
  let spin_rounds = if spawned > host_jobs then 0 else 10 in
  let syncs = Array.init ndev (fun _ -> make_sync ()) in
  let progress = Array.init ndev (fun _ -> Atomic.make 0) in
  let abort = Atomic.make false in
  let trigger_abort () =
    Atomic.set abort true;
    Array.iter
      (fun s ->
        Mutex.lock s.mu;
        Condition.broadcast s.cv;
        Mutex.unlock s.mu)
      syncs
  in
  let progress_sum () = Array.fold_left (fun a x -> a + Atomic.get x) 0 progress in
  let run_device d =
    let comps = dev_comps.(d) in
    let sync = syncs.(d) in
    let mem_ctrl = system.I.mem_controllers.(d) in
    let up = Array.of_list (List.filter (fun dir -> dir.dst_dev = d) dirs) in
    let down = Array.of_list (List.filter (fun dir -> dir.src_dev = d) dirs) in
    (* Highest cycle each bound is known to allow (committed = -1 allows
       [latency - 1] / [window - 1]); refreshed only when exceeded, so
       most cycles touch no foreign atomics at all. *)
    let up_ok = Array.map (fun dir -> dir.latency - 1) up in
    let down_ok = Array.map (fun _ -> window - 1) down in
    (* A device is done when its own pipeline has finished AND its tx
       channels are drained (downstream may still need those words).
       Inbound residue cannot exist at that point: every stream is
       fully consumed, so a unit/writer is only done once everything
       ever sent to it was delivered and popped. *)
    let local_done () =
      Array.for_all
        (fun c ->
          match c with
          | Pwriter w -> Memory_unit.Writer.is_done w
          | Punit u -> Stencil_unit.is_done u
          | Preader r -> Memory_unit.Reader.is_done r
          | Ptx dir -> Array.for_all Channel.is_empty dir.near
          | Prx _ -> true)
        comps
    in
    let local_prog = ref 0 in
    let idle = ref 0 in
    let idle_stamp = ref (-1) in
    let cycle = ref 0 in
    let last_pub = ref (-1) in
    (* Batched commit: publish the clock (and the progress counter the
       global deadlock check reads) at batch boundaries, and always
       before blocking — so a neighbour observing this domain's clock
       while it waits sees the true committed cycle, which is what makes
       batching deadlock-free. *)
    let flush () =
      let c = !cycle - 1 in
      if c > !last_pub then begin
        Atomic.set progress.(d) !local_prog;
        publish sync c;
        last_pub := c
      end
    in
    let status : [ status | `Running ] ref = ref `Running in
    while !status = `Running do
      if local_done () then status := `Finished
      else if Atomic.get abort then status := `Aborted
      else if !cycle >= max_cycles then begin
        status := `Timeout;
        trigger_abort ()
      end
      else begin
        let now = !cycle in
        for i = 0 to Array.length up - 1 do
          if !status = `Running && now > up_ok.(i) then begin
            flush ();
            let c = await syncs.(up.(i).src_dev) ~abort ~spin_rounds ~target:(now - up.(i).latency) in
            if Atomic.get abort then status := `Aborted
            else up_ok.(i) <- c + up.(i).latency
          end
        done;
        for i = 0 to Array.length down - 1 do
          if !status = `Running && now > down_ok.(i) then begin
            flush ();
            let c = await syncs.(down.(i).dst_dev) ~abort ~spin_rounds ~target:(now - window) in
            if Atomic.get abort then status := `Aborted
            else down_ok.(i) <- c + window
          end
        done;
        if !status = `Running then begin
          Controller.begin_cycle mem_ctrl;
          let prog = ref false in
          Array.iter
            (fun comp ->
              match comp with
              | Prx dir ->
                  (* Drain every published word into its port's
                     in-flight ring, then deliver at most one matured
                     word per port. *)
                  let qvalues = Spsc.values dir.queue in
                  let qvalid = Spsc.valid dir.queue in
                  let rec drain () =
                    let base = Spsc.front dir.queue in
                    if base >= 0 then begin
                      let fl = dir.in_flight.(Spsc.front_tag dir.queue) in
                      if fl.count > fl.fmask then flight_grow fl;
                      let slot = (fl.head + fl.count) land fl.fmask in
                      fl.releases.(slot) <- Spsc.front_release dir.queue;
                      Array.blit qvalues base fl.fvalues (slot * fl.width) fl.width;
                      Array.blit qvalid base fl.fvalid (slot * fl.width) fl.width;
                      fl.count <- fl.count + 1;
                      Spsc.consume dir.queue;
                      drain ()
                    end
                  in
                  drain ();
                  Array.iteri
                    (fun i far ->
                      let fl = dir.in_flight.(i) in
                      if
                        fl.count > 0
                        && fl.releases.(fl.head) <= now
                        && not (Channel.is_full far)
                      then begin
                        let dst = Channel.Unsafe.push_slot far in
                        Array.blit fl.fvalues (fl.head * fl.width)
                          (Channel.Unsafe.buf_values far) dst fl.width;
                        Array.blit fl.fvalid (fl.head * fl.width)
                          (Channel.Unsafe.buf_valid far) dst fl.width;
                        fl.head <- (fl.head + 1) land fl.fmask;
                        fl.count <- fl.count - 1;
                        prog := true
                      end)
                    dir.far
              | Ptx dir ->
                  Controller.begin_cycle dir.tx_ctrl;
                  let qvalues = Spsc.values dir.queue in
                  let qvalid = Spsc.valid dir.queue in
                  Array.iteri
                    (fun i near ->
                      if
                        (not (Channel.is_empty near))
                        && Controller.request dir.tx_ctrl dir.word_bytes.(i)
                      then begin
                        let base =
                          Spsc.try_produce dir.queue ~tag:i ~release:(now + dir.latency)
                        in
                        if base < 0 then begin
                          (* Capacity proof violated — fail safe. *)
                          status := `Stuck;
                          trigger_abort ()
                        end
                        else begin
                          let w = dir.widths.(i) in
                          let src = Channel.Unsafe.front_slot near in
                          Array.blit (Channel.Unsafe.buf_values near) src qvalues base w;
                          Array.blit (Channel.Unsafe.buf_valid near) src qvalid base w;
                          Channel.drop near;
                          prog := true
                        end
                      end)
                    dir.near;
                  Spsc.publish dir.queue
              | Pwriter w ->
                  if (not (Memory_unit.Writer.is_done w)) && Memory_unit.Writer.cycle w ~now
                  then prog := true
              | Punit u ->
                  if (not (Stencil_unit.is_done u)) && Stencil_unit.cycle u ~now then
                    prog := true
              | Preader r ->
                  if (not (Memory_unit.Reader.is_done r)) && Memory_unit.Reader.cycle r ~now
                  then prog := true)
            comps;
          if !prog then begin
            incr local_prog;
            idle := 0;
            idle_stamp := -1
          end
          else begin
            incr idle;
            if !idle > deadlock_window then begin
              (* Locally stuck for a full window. If nothing progressed
                 anywhere since the last check the whole system is
                 wedged; otherwise keep waiting on the others. *)
              flush ();
              let sum = progress_sum () in
              if !idle_stamp >= 0 && sum = !idle_stamp then begin
                status := `Stuck;
                trigger_abort ()
              end
              else begin
                idle_stamp := sum;
                idle := 0
              end
            end
          end;
          if !status = `Running then begin
            incr cycle;
            if now - !last_pub >= batch then begin
              Atomic.set progress.(d) !local_prog;
              publish sync now;
              last_pub := now
            end
          end
        end
      end
    done;
    publish sync sentinel;
    let s = match !status with #status as s -> s | `Running -> assert false in
    (s, !cycle)
  in
  let run_device d =
    match run_device d with
    | s, c -> Done (s, c)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (try trigger_abort () with _ -> ());
        publish syncs.(d) sentinel;
        Crashed (e, bt)
  in
  (* Devices left empty by the placement get their exit clock published
     up front instead of an idle domain. *)
  Array.iteri (fun d u -> if not u then publish syncs.(d) sentinel) used;
  let domains =
    Array.init ndev (fun d ->
        if used.(d) then Some (Domain.spawn (fun () -> run_device d)) else None)
  in
  let verdicts = Array.map (Option.map Domain.join) domains in
  let crashed = ref None in
  let all_finished = ref true in
  let cycles = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (Crashed (e, bt)) -> if !crashed = None then crashed := Some (e, bt)
      | Some (Done (s, c)) ->
          if s <> `Finished then all_finished := false;
          if c > !cycles then cycles := c)
    verdicts;
  match !crashed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      if not !all_finished then
        (* Deadlock, timeout or defensive abort: replay sequentially for
           the exact seed diagnosis (blocked set, circular wait, SF0701
           vs SF0703) — and, should the abort have been spurious, the
           correct completion. *)
        Engine.run_exn ~config ~placement ~inputs p
      else begin
        (* All traffic moved through per-direction controllers; credit
           the totals back so [Link.bytes_transferred] and the link
           counter rows match a sequential run. *)
        List.iter
          (fun dir -> Link.credit_bytes dir.link (Controller.bytes_granted dir.tx_ctrl))
          dirs;
        let report = I.harvest ~telemetry ~system ~cycles:!cycles ~samples:[] in
        Engine.Completed (I.completed_stats ~system ~predicted ~cycles:!cycles ~report p)
      end

(* ------------------------------------------------------------------ *)
(* Mode selection and public API.                                      *)
(* ------------------------------------------------------------------ *)

let decide ~config ~placement (p : Program.t) =
  let { Engine.Config.net_bytes_per_cycle; net_latency_cycles } =
    config.Engine.Config.network
  in
  let { Engine.Config.trace_interval; telemetry } = config.Engine.Config.tracing in
  if config.Engine.Config.parallelism.Engine.Config.mode = `Sequential then
    `Degrade "parallelism.mode is `Sequential"
  else begin
    let devices =
      List.sort_uniq compare
        (List.map (fun s -> placement s.Stencil.name) p.Program.stencils)
    in
    if List.length devices <= 1 then `Degrade "placement uses a single device"
    else if Option.is_some config.Engine.Config.faults.Engine.Config.plan then
      (* An injected run must see the sequential engine's global cycle
         order: the fault timeline is keyed to absolute cycles, and the
         domain-parallel scheduler has no global "now" to key it to. *)
      `Degrade "fault injection perturbs the schedule on the sequential engine"
    else begin
      let cross =
        List.concat_map
          (fun s ->
            let dd = placement s.Stencil.name in
            List.filter_map
              (fun field ->
                match Program.find_stencil p field with
                | Some producer ->
                    let sd = placement producer.Stencil.name in
                    if sd <> dd then Some (sd, dd) else None
                | None -> None)
              (Stencil.input_fields s))
          p.Program.stencils
      in
      if cross <> [] && net_latency_cycles < 1 then
        `Reject
          (Diag.errorf ~code:Diag.Code.sim_config
             "parallel lookahead requires net_latency_cycles >= 1, got %d"
             net_latency_cycles)
      else if telemetry then
        `Degrade "instrumented telemetry attributes stalls on the global schedule"
      else if trace_interval <> None then
        `Degrade "occupancy tracing samples the global schedule"
      else if
        net_bytes_per_cycle < infinity
        && List.exists (fun (a, b) -> List.mem (b, a) cross) cross
      then `Degrade "finite link bandwidth is shared across directions"
      else `Parallel (List.length devices)
    end
  end

let run_exn ?(config = Engine.Config.default) ?(placement = fun _ -> 0) ?inputs
    (p : Program.t) =
  let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
  match decide ~config ~placement p with
  | `Reject d -> invalid_arg (Diag.to_string d)
  | `Degrade _ -> Engine.run_exn ~config ~placement ~inputs p
  | `Parallel _ ->
      Program.validate_exn p;
      run_domains ~config ~placement ~inputs p

let run ?(config = Engine.Config.default) ?(placement = fun _ -> 0) ?inputs
    (p : Program.t) =
  let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
  match decide ~config ~placement p with
  | `Reject d -> Error d
  | `Degrade _ | `Parallel _ -> (
      match run_exn ~config ~placement ~inputs p with
      | Engine.Completed stats -> Ok stats
      | Engine.Deadlocked { cycle; blocked; wait_cycle; timed_out; telemetry; faults } ->
          Error
            (Engine.failure_diag
               ?budget:config.Engine.Config.safety.Engine.Config.max_cycles ~faults ~cycle
               ~blocked ~wait_cycle ~timed_out ~telemetry ()))

let run_and_validate ?config ?placement ?inputs (p : Program.t) =
  let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
  match run ?config ?placement ~inputs p with
  | Error d -> Error d
  | Ok stats -> I.compare_to_reference ~inputs p stats
