(** A stencil unit: the dedicated pipeline instantiated for one stencil
    operation (paper, Sec. III-A and Fig. 12).

    Per successful pipeline step the unit consumes one word from every
    active input stream (shifting it into the field's internal window
    buffer), and — once the initialization phase has passed — computes one
    output word and emits it after its compute latency, multicasting to
    every consumer channel. If any required input is empty or any output
    is full, the whole unit stalls for the cycle (the fine-grained
    per-cell dependency of Sec. III-A).

    The consumption schedule realizes the internal-buffer analysis
    exactly: input [f] starts being consumed at step
    [init_max - init_f] (larger buffers start immediately, Sec. IV-A),
    the first output is produced at step [init_max], and out-of-bounds
    taps are predicated with the input's boundary condition. *)

type input_binding = {
  field : string;
  channel : Channel.t option;
      (** [None] for prefetched lower-dimensional inputs. *)
  prefetched : Sf_reference.Tensor.t option;
      (** The whole tensor, for lower-dimensional inputs. *)
}

type t

val create :
  program:Sf_ir.Program.t ->
  stencil:Sf_ir.Stencil.t ->
  compute_cycles:int ->
  inputs:input_binding list ->
  outputs:Channel.t list ->
  t

val name : t -> string
val is_done : t -> bool

val cycle : t -> now:int -> bool
(** Advance one clock cycle; returns true if any progress was made
    (a flush or a pipeline step). *)

val stall_cycles : t -> int
val steps_completed : t -> int

(** Structured description of what blocks the unit, for deadlock-cycle
    diagnosis: inputs it waits on (by field) and output channels that are
    full (by channel name). *)
type blockage = Input_empty of string | Output_full of string

val blockages : t -> blockage list

val blocked_reason : t -> string option
(** Human-readable description of why the unit cannot currently advance
    (for deadlock diagnostics); [None] when done. *)
