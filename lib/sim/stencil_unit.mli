(** A stencil unit: the dedicated pipeline instantiated for one stencil
    operation (paper, Sec. III-A and Fig. 12).

    Per successful pipeline step the unit consumes one word from every
    active input stream (shifting it into the field's internal window
    buffer), and — once the initialization phase has passed — computes one
    output word and emits it after its compute latency, multicasting to
    every consumer channel. If any required input is empty or any output
    is full, the whole unit stalls for the cycle (the fine-grained
    per-cell dependency of Sec. III-A).

    The consumption schedule realizes the internal-buffer analysis
    exactly: input [f] starts being consumed at step
    [init_max - init_f] (larger buffers start immediately, Sec. IV-A),
    the first output is produced at step [init_max], and out-of-bounds
    taps are predicated with the input's boundary condition. *)

type input_binding = {
  field : string;
  channel : Channel.t option;
      (** [None] for prefetched lower-dimensional inputs. *)
  prefetched : Sf_reference.Tensor.t option;
      (** The whole tensor, for lower-dimensional inputs. *)
}

type t

val create :
  ?probe:Telemetry.probe ->
  program:Sf_ir.Program.t ->
  stencil:Sf_ir.Stencil.t ->
  compute_cycles:int ->
  inputs:input_binding list ->
  outputs:Channel.t list ->
  unit ->
  t
(** [probe] enables per-cycle stall classification (cause + blamed
    channel) into the telemetry registry; without it only the aggregate
    {!stall_cycles} counter is maintained. *)

val name : t -> string
val is_done : t -> bool

val cycle : t -> now:int -> bool
(** Advance one clock cycle; returns true if any progress was made
    (a flush or a pipeline step). *)

val stall_cycles : t -> int
val steps_completed : t -> int

val add_stalls : t -> int -> unit
(** Credit stall cycles accounted lazily by the scheduler for cycles the
    unit was provably unable to progress and therefore not run. *)

val set_hiccup : t -> bool -> unit
(** Fault-injection hook ({!Fault_plan}): while set, the pipeline
    freezes — {!cycle} makes no progress (counted and classified as a
    pipeline stall) and {!plan} returns [None]. Cleared by the injector
    each cycle. *)

val input_channels : t -> Channel.t list
(** Streaming (full-rank) input channels, for wake-hook wiring. *)

val output_channels : t -> Channel.t list

val next_release : t -> int
(** Release cycle of the oldest pending word, or [max_int] when the
    pending line is empty — the unit's next self-wake time. *)

(** {2 Fast-forward batch planning}

    A plan captures the single action (flush and/or step) the unit will
    repeat identically every cycle for up to [plan_horizon] cycles,
    given unchanged channel feasibility. The horizon only accounts for
    the unit's own state (phase boundaries, pending-line maturity); the
    engine bounds it further using channel occupancies. *)

type plan

val plan : t -> now:int -> plan option
(** [None] when the unit cannot make progress this cycle or has no
    uniform window (then the engine falls back to per-cycle stepping). *)

val plan_horizon : plan -> int
val plan_flush : plan -> bool
(** Whether the plan emits one word per cycle to every output. *)

val plan_steps : plan -> bool
(** Whether the plan advances the pipeline one step per cycle. *)

val plan_pops : plan -> Channel.t list
(** Input channels from which the plan consumes one word per cycle. *)

val run_planned : t -> now:int -> plan -> unit
(** Execute one cycle of the plan without re-checking feasibility. *)

(** Structured description of what blocks the unit, for deadlock-cycle
    diagnosis: inputs it waits on (by field) and output channels that are
    full (by channel name). *)
type blockage = Input_empty of string | Output_full of string

val blockages : t -> blockage list

val blocked_reason : t -> string option
(** Human-readable description of why the unit cannot currently advance
    (for deadlock diagnostics); [None] when done. *)
