(** Off-chip memory controller with a bytes-per-cycle budget.

    Models the DDR4 controller behaviour measured in the paper's
    bandwidth study (Sec. VIII-D, Fig. 16): all readers and writers on a
    device share an effective bandwidth that is well below the data-sheet
    peak once many access points contend. Fractional budgets accumulate
    across cycles so sub-byte-per-cycle rates still make progress. *)

type t

val create : bytes_per_cycle:float -> t
(** [bytes_per_cycle = infinity] disables the constraint. *)

val unlimited : unit -> t

val begin_cycle : t -> unit
(** Refill the budget; unspent budget does not accumulate beyond one
    cycle's worth (the bus cannot "save up" bandwidth), but fractional
    remainders carry so small rates are honoured on average. *)

val request : t -> int -> bool
(** [request t bytes] grants all-or-nothing and debits the budget.
    Always refused while {!set_denied} is in force, even on an unlimited
    controller. *)

val set_denied : t -> bool -> unit
(** Fault-injection hook ({!Fault_plan}): while set, every {!request} is
    refused regardless of budget, modelling a transient
    memory-controller throttle. Cleared by the injector each cycle. *)

val account : t -> int -> unit
(** Record [bytes] as granted without a budget check — for fast paths
    that have already established the controller is {!is_unlimited}. *)

val is_unlimited : t -> bool
(** True when the bytes-per-cycle budget is infinite. *)

val bytes_granted : t -> int
(** Total bytes granted over the run. *)

val bytes_per_cycle : t -> float
