(** Vector words: the unit of data movement in the simulator.

    One word carries W consecutive elements (the vector width of
    Sec. IV-C) plus per-element validity flags used by the "shrink"
    boundary condition — invalid elements are dropped by memory writers
    but still occupy stream slots, preserving stream rates. *)

type t = { values : float array; valid : bool array }

val create : int -> t
(** All-zero, all-valid word of the given width. *)

val width : t -> int
val copy : t -> t
