(** Off-chip memory readers and writers.

    Source fields are instantiated as dedicated prefetchers that read
    ahead of computations; dedicated writers at sink nodes buffer data
    while waiting for DRAM writes (paper, Sec. VI-A). Both contend for
    their device's {!Controller} bandwidth. *)

module Reader : sig
  type t

  val create :
    ?probe:Telemetry.probe ->
    name:string ->
    tensor:Sf_reference.Tensor.t ->
    vector_width:int ->
    element_bytes:int ->
    controller:Controller.t ->
    outputs:Channel.t list ->
    unit ->
    t
  (** Streams the tensor row-major, one word per cycle when bandwidth and
      all consumer channels allow, multicasting to every consumer.
      [probe] classifies no-progress cycles (output-full vs
      bandwidth-denied) into the telemetry registry. *)

  val cycle : t -> now:int -> bool
  val is_done : t -> bool
  val name : t -> string
  val blocked_reason : t -> string option

  val words_remaining : t -> int
  val words_streamed : t -> int
  val output_channels : t -> Channel.t list
  val word_bytes : t -> int

  val run_fast : t -> unit
  (** One unchecked streaming cycle for the engine's fast-forward path:
      requires every output to have space and the controller to be
      {!Controller.is_unlimited}. *)

  val full_output_channels : t -> string list
  (** Names of consumer channels currently exerting backpressure. *)
end

module Writer : sig
  type t

  val create :
    ?probe:Telemetry.probe ->
    ?on_done:(unit -> unit) ->
    name:string ->
    shape:int list ->
    vector_width:int ->
    element_bytes:int ->
    controller:Controller.t ->
    input:Channel.t ->
    unit ->
    t
  (** [on_done] fires once, when the final word is committed — the engine
      uses it to maintain a completed-writer counter so the hot loop's
      termination test is a single integer comparison. [probe]
      classifies no-progress cycles (input-starved vs bandwidth-denied)
      into the telemetry registry. *)

  val cycle : t -> now:int -> bool
  val is_done : t -> bool
  val name : t -> string

  val set_blocked : t -> bool -> unit
  (** Fault-injection hook ({!Fault_plan}): while set, {!cycle} commits
      nothing (classified as bandwidth denial), modelling a transient
      DRAM write stall. Cleared by the injector each cycle. *)

  val words_remaining : t -> int
  val input_channel : t -> Channel.t

  val bytes_committed : t -> int
  (** Bytes of valid (non-shrunk) elements committed so far. *)

  val run_fast : t -> unit
  (** One unchecked cycle for the engine's fast-forward path: requires a
      non-empty input and an {!Controller.is_unlimited} controller. *)

  val result : t -> Sf_reference.Interp.result
  (** The written tensor with its validity mask ("shrink" cells are left
      at zero and marked invalid). *)

  val blocked_reason : t -> string option

  val waiting_on_input : t -> bool
end
