(** Off-chip memory readers and writers.

    Source fields are instantiated as dedicated prefetchers that read
    ahead of computations; dedicated writers at sink nodes buffer data
    while waiting for DRAM writes (paper, Sec. VI-A). Both contend for
    their device's {!Controller} bandwidth. *)

module Reader : sig
  type t

  val create :
    name:string ->
    tensor:Sf_reference.Tensor.t ->
    vector_width:int ->
    element_bytes:int ->
    controller:Controller.t ->
    outputs:Channel.t list ->
    t
  (** Streams the tensor row-major, one word per cycle when bandwidth and
      all consumer channels allow, multicasting to every consumer. *)

  val cycle : t -> bool
  val is_done : t -> bool
  val name : t -> string
  val blocked_reason : t -> string option

  val full_output_channels : t -> string list
  (** Names of consumer channels currently exerting backpressure. *)
end

module Writer : sig
  type t

  val create :
    name:string ->
    shape:int list ->
    vector_width:int ->
    element_bytes:int ->
    controller:Controller.t ->
    input:Channel.t ->
    t

  val cycle : t -> bool
  val is_done : t -> bool
  val name : t -> string

  val result : t -> Sf_reference.Interp.result
  (** The written tensor with its validity mask ("shrink" cells are left
      at zero and marked invalid). *)

  val blocked_reason : t -> string option

  val waiting_on_input : t -> bool
end
