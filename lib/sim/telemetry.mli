(** Cycle-level simulator telemetry: a typed counter registry, stall
    attribution and a structured event trace.

    The paper's evaluation (Eq. 1 / Fig. 11, the bandwidth study of
    Fig. 16, the deadlock experiments of Fig. 4) is explained by where
    cycles go: which unit stalls on which channel, which reader the
    memory controller starves, which link hop backs up. This module is
    the engine's observability layer for exactly that question.

    A {!t} is created per run by {!Engine}. When enabled (see
    [Engine.Config.tracing]), every component owns a {!probe} and
    classifies each no-progress cycle by {!stall_cause}, blaming the
    channel that blocked it; the engine then freezes everything into a
    {!report} — per-component {!counters}, per-channel FIFO statistics,
    occupancy samples and {!span} events — which renders as a
    stall-attribution table ({!pp_attribution}), a counters JSON
    document ({!counters_json}) and a Chrome [trace_event] JSON trace
    ({!trace_events_json}) viewable in [chrome://tracing] or Perfetto.

    When disabled, probes are absent and the hot loop pays nothing; the
    report still carries the always-on aggregates (total stalls,
    high-water marks, push/pop counts) harvested once at end of run. *)

(** Why a component made no progress on a given cycle. *)
type stall_cause =
  | Input_starved  (** An input channel the component must pop is empty. *)
  | Output_full  (** An output channel the component must push is full. *)
  | Bandwidth_denied
      (** The memory or link {!Controller} refused the byte budget. *)
  | Link_latency
      (** All of a link's in-flight words are still propagating. *)
  | Pipeline_drain
      (** A stencil unit waiting only on its own compute pipeline: the
          pending line is full or its head has not matured. *)

val cause_name : stall_cause -> string
(** Stable kebab-case name ("input-starved", "output-full", ...). *)

val all_causes : stall_cause list

(** Component kinds, for grouping and rendering. *)
type kind = Unit | Reader | Writer | Link

val kind_name : kind -> string

type t
(** One run's collector. *)

type probe
(** Per-component recording handle; only exists when telemetry is
    enabled, so components carry a [probe option] and the disabled mode
    costs one [match] per cycle call. *)

val create : enabled:bool -> unit -> t
val enabled : t -> bool

val probe : t -> kind:kind -> name:string -> probe option
(** Register a component. [None] when the collector is disabled. *)

val stall : probe -> now:int -> ?channel:string -> stall_cause -> unit
(** Record one blocked cycle at [now], blaming [channel] when one is
    responsible. Consecutive stalls with the same cause and channel
    accumulate into a single {!span}. *)

val busy : probe -> now:int -> unit
(** Record one progressing cycle at [now]; closes any open stall span. *)

(** {2 Frozen results} *)

(** The counter registry entry of one component. [stalled_cycles] is the
    always-on aggregate; [stalls_by_cause] and [blocked_on] are only
    populated when telemetry was enabled (they sum to [stalled_cycles]
    for stencil units, whose stalls are also counted when disabled). *)
type counters = {
  name : string;
  kind : kind;
  busy_cycles : int;  (** Cycles with progress (enabled runs only). *)
  stalled_cycles : int;  (** Total no-progress cycles while not done. *)
  stalls_by_cause : (stall_cause * int) list;  (** Nonzero causes only. *)
  blocked_on : (string * int) list;
      (** Blamed channels with blocked-cycle counts, descending. *)
  pushes : int;  (** Words pushed into the component's output channels. *)
  pops : int;  (** Words popped from the component's input channels. *)
  bytes : int;  (** Off-chip or network bytes moved by the component. *)
}

(** Per-channel FIFO statistics. *)
type channel_info = {
  channel : string;
  capacity : int;
  high_water : int;
  total_pushed : int;
  total_popped : int;
}

(** One interval event on a component's timeline: either the component's
    active phase ([label = "active"]) or a stall span
    ([label = "stall:<cause>"] with [blocking] naming the blamed
    channel). [end_cycle] is exclusive. *)
type span = {
  track : string;
  label : string;
  start_cycle : int;
  end_cycle : int;
  blocking : string option;
}

type report = {
  enabled : bool;
  cycles : int;
  components : counters list;
      (** Stencil units in topological order, then readers, writers and
          links in creation order. *)
  channels : channel_info list;  (** In channel creation order. *)
  samples : (int * (string * int) list) list;
      (** Occupancy samples [(cycle, [(channel, occupancy)])] — present
          when [trace_interval] was set, independent of [enabled]. *)
  spans : span list;  (** Sorted by start cycle; enabled runs only. *)
}

val freeze :
  t ->
  cycles:int ->
  components:counters list ->
  channels:channel_info list ->
  samples:(int * (string * int) list) list ->
  report
(** Close all open spans at [cycles] and assemble the report. Called
    once by the engine at end of run. *)

val counters_row :
  ?probe:probe ->
  ?stalled:int ->
  ?pushes:int ->
  ?pops:int ->
  ?bytes:int ->
  name:string ->
  kind:kind ->
  unit ->
  counters
(** Build one registry entry during harvest. Cause breakdown, blamed
    channels and busy cycles come from [probe] when present; [stalled]
    overrides the total (used for stencil units, whose aggregate stall
    counter is maintained even with telemetry off). *)

(** {2 Derived views} *)

val unit_stalls : report -> (string * int) list
(** [(name, stalled_cycles)] of every stencil unit, in topological
    order — the shape of the old [stats.unit_stalls] field. *)

val channel_high_water : report -> (string * int * int) list
(** [(name, high_water, capacity)] in creation order — the shape of the
    old [stats.channel_high_water] field. *)

val total_blocked : report -> int
(** Sum of [stalled_cycles] over all components. *)

val attribution : report -> counters list
(** Components with at least one blocked cycle, most-blocked first
    (ties keep registry order). *)

val top_blocker : counters -> (string * int) option
(** The channel this component was most often blocked on. *)

val pp_attribution : Format.formatter -> report -> unit
(** The stall-attribution table: one row per blocked component with its
    blocked/busy cycle counts, dominant cause and top blocking
    channel, against the run's total cycles. *)

val attribution_notes : ?limit:int -> report -> string list
(** The top [limit] (default 3) attribution rows as single-line strings,
    for attachment to deadlock/timeout diagnostics as notes. *)

(** {2 JSON renderings} *)

val counters_json : report -> Sf_support.Json.t
(** The full registry: [{"cycles": _, "components": [...],
    "channels": [...]}] with per-cause stall counts and blamed
    channels. *)

val trace_events_json : report -> Sf_support.Json.t
(** The run as Chrome [trace_event] JSON: an object with a
    ["traceEvents"] array holding thread-name metadata ([ph = "M"]) per
    component, complete events ([ph = "X"]) for active phases and stall
    spans (with cause and blamed channel in [args]), and counter events
    ([ph = "C"]) for sampled channel occupancies. Timestamps are cycle
    numbers (1 cycle = 1 "microsecond"). Open the file in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)
