(** Adversarial deadlock-freedom validation (paper, Sec. IV-B).

    The analysed delay-buffer depths are supposed to make the dataflow
    graph latency-insensitive: any timing, same outputs, no deadlock. A
    {!campaign} samples that claim with N seeded fault schedules per
    program and checks every run's outputs are bit-identical to the
    unperturbed baseline; {!probe_tightest} aims an under-provisioning
    experiment at the tightest analysed edge, where a deadlock
    ([SF0701]) is the expected — and wanted — outcome; {!shrink}
    reduces a failing plan to a minimal counterexample. *)

type plan = Fault_plan.t

val default_plan : plan
(** {!Fault_plan.default}: every fault kind on every component. *)

(** One seeded schedule's verdict: completed with outputs bit-identical
    to the unperturbed baseline (payload: cycles), or failed with the
    engine's structured diagnostic ([SF0701]/[SF0703], including
    fault-attribution notes) or an [SF0702] mismatch. *)
type run_outcome = Identical of int | Failed of Sf_support.Diag.t

type run_record = {
  seed : int;
  outcome : run_outcome;
  faults : Fault_plan.summary;  (** What the injector did on this run. *)
}

type report = { baseline_cycles : int; runs : run_record list }

val passed : report -> bool

val failures : report -> (run_record * Sf_support.Diag.t) list

val campaign :
  ?config:Engine.config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  ?plan:plan ->
  ?schedules:int ->
  ?jobs:int ->
  Sf_ir.Program.t ->
  (report, Sf_support.Diag.t) result
(** Run the unperturbed baseline (any fault config in [config] is
    stripped for it), then [schedules] (default 25) injected runs with
    seeds [1..N], comparing outputs bit-for-bit. [jobs] (default 1) runs
    the schedules across an {!Sf_support.Executor} pool; the report is
    indexed by seed and byte-identical for every [jobs] value. [Error]
    only when the baseline itself fails — per-schedule failures are
    reported in the {!report}. *)

val underprovision :
  channel_slack:int ->
  capacity:int ->
  string * string ->
  ((string * string) * int) list
(** A {!Fault_plan.t.depth_overrides} entry pinning the given edge's
    real channel capacity to exactly [capacity] words (the override
    compensates for the engine's [channel_slack], which otherwise pads
    every channel, so it may be negative). Raises [Invalid_argument]
    when [capacity < 1] — a capacity-zero channel cannot exist. *)

type depth_probe = {
  edge : string * string;  (** The tightest analysed edge. *)
  analysed_depth : int;
      (** Its analysed depth in words; the engine provisions
          [analysed_depth + channel_slack] of real capacity. *)
  tight_capacity : int option;
      (** Largest real capacity at which the run deadlocks — one word
          more completes. [None] when even capacity 1 completes (the
          edge is not load-bearing: no cycle of blocked components can
          form through it). *)
  probe_diag : Sf_support.Diag.t option;
      (** The [SF0701] produced by re-running at [tight_capacity] under
          the fault plan, carrying fault-attribution notes. *)
}

val probe_tightest :
  ?config:Engine.config ->
  ?placement:(string -> int) ->
  ?inputs:(string * Sf_reference.Tensor.t) list ->
  ?plan:plan ->
  ?fault_seed:int ->
  ?jobs:int ->
  analysis:Sf_analysis.Delay_buffer.t ->
  Sf_ir.Program.t ->
  depth_probe option
(** Adversarial under-provisioning of the tightest analysed edge.
    Binary-searches the largest deadlocking capacity below the analysed
    provisioning — deadlocks in a Kahn network depend only on channel
    capacities and shrink monotonically with them, so the boundary is
    well-defined and independent of timing. [jobs] (default 1) widens
    each bisection round into a k-section: up to [jobs] interior
    capacities of the bracket are simulated concurrently on an
    {!Sf_support.Executor} pool, and monotonicity guarantees the same
    boundary as the serial search — then re-runs once at that
    capacity under [plan] (default {!default_plan}) and [fault_seed] to
    capture the [SF0701] with fault-attribution notes. The analysis is
    often conservative (it budgets compute latency the slow path does
    not need before its first word), so [tight_capacity] typically sits
    a few words below [analysed_depth]: the gap is the provisioning
    margin, and a [Some] result proves the edge is genuinely
    load-bearing. [None] when the program has no positive-depth edge. *)

val shrink :
  fails:(Fault_plan.t -> bool) ->
  Fault_plan.t ->
  witness:Fault_plan.summary ->
  Fault_plan.t option
(** Reduce a failing plan to a minimal counterexample. The [witness] is
    the injected-event log of a failing run of [plan]; its events are
    replayed as a scripted plan (so candidates need no seed), then
    ddmin-ed down and their durations halved while [fails] keeps
    holding. [None] if the scripted replay does not fail. The event list
    of the result may be empty: a depth-override plan that deadlocks
    with zero injected events proves the capacities, not the timing,
    cause the failure — a Kahn network's deadlocks depend only on
    buffer bounds. *)
