(** Bounded lock-free single-producer single-consumer ring, specialized
    for the parallel engine's link transport.

    Each inter-device link direction gets one ring; the owning
    (upstream) domain produces link words into it and the downstream
    domain drains it. Exactly one domain may produce and exactly one may
    consume; under that contract every operation is wait-free — and,
    unlike a generic ['a option array] queue, nothing here allocates.
    An element is two unboxed ints ([tag], [release]) in flat [int
    array] rings plus [lanes] word lanes in flat [float array]/[bool
    array] rings, written and read in place through the same
    structure-of-arrays idiom as {!Channel.Unsafe}.

    {b Cursors and contention.} The producer owns the tail, the
    consumer the head. Each side works against a cached copy of the
    other's cursor and refreshes it from the shared atomic only when
    the ring looks full (producer) or empty (consumer), so steady-state
    operations touch no foreign cache line at all. The two atomics are
    allocated with padding between the producer-written and
    consumer-written ones, keeping head and tail out of the same cache
    line (false sharing was a measured cost of the previous layout).

    {b Batched publication.} [try_produce] stages elements privately;
    [publish] makes everything staged visible to the consumer with one
    atomic store. The producer may stage any number of elements per
    [publish] — the parallel engine publishes once per simulated cycle
    per direction rather than once per word. The atomic store/load pair
    on the tail (and symmetrically the head) provides the
    happens-before edges that make the plain arrays safe to share. *)

type t

val create : capacity:int -> lanes:int -> t
(** A ring holding at least [capacity] elements (rounded up to a power
    of two), each carrying [lanes] value/valid lanes. Both arguments
    must be positive. *)

val capacity : t -> int
val lanes : t -> int

(** {2 Producer side} *)

val try_produce : t -> tag:int -> release:int -> int
(** Stage one element and return the base offset of its lanes in
    {!values}/{!valid} (lane [l] lives at [base + l]), or [-1] when the
    ring is full. The caller fills the lanes, then calls {!publish} —
    staged elements are invisible to the consumer until then. *)

val publish : t -> unit
(** Make every staged element visible to the consumer. No-op when
    nothing is staged. *)

val values : t -> float array
val valid : t -> bool array
(** The lane rings. The producer may write only lanes of slots returned
    by {!try_produce} and not yet published; the consumer may read only
    lanes of the {!front} element. *)

(** {2 Consumer side} *)

val front : t -> int
(** Base lane offset of the oldest element, or [-1] when the ring is
    empty. Stable until {!consume}. *)

val front_tag : t -> int

val front_release : t -> int
(** The int fields of the oldest element. Only meaningful when {!front}
    returned [>= 0]. *)

val consume : t -> unit
(** Release the oldest element back to the producer. The caller must
    have finished reading its lanes. Raises [Failure] when empty. *)

(** {2 Either side} *)

val is_empty : t -> bool
(** Based on the published tail; a stale answer only errs toward
    "non-empty" on the producer side and "empty" on the consumer
    side. *)

val length : t -> int
(** Number of published, unconsumed elements at some recent instant. *)
