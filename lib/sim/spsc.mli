(** Bounded lock-free single-producer single-consumer queue.

    The cross-domain transport of the parallel engine ({!Parallel}): each
    inter-device link direction gets one queue, the owning (upstream)
    domain pushes link words into it, the downstream domain drains it.
    Exactly one domain may push and exactly one may pop; under that
    contract every operation is wait-free — one sequentially-consistent
    atomic read and write, no locks, no CAS loop.

    The producer establishes free space by reading the consumer's head
    index before writing a slot, and publishes the slot by advancing the
    tail; the consumer mirrors this with the tail. The two
    [Atomic] accesses give the happens-before edges that make the
    non-atomic slot array safe to share. *)

type 'a t

val create : capacity:int -> 'a t
(** A queue holding at least [capacity] elements (rounded up to a power
    of two). [capacity] must be positive. *)

val try_push : 'a t -> 'a -> bool
(** Producer only. False when the queue is full; the element is not
    enqueued. *)

val pop_opt : 'a t -> 'a option
(** Consumer only. [None] when the queue is empty. *)

val is_empty : 'a t -> bool
(** Safe from either side; a stale answer only errs toward "non-empty"
    on the producer side and "empty" on the consumer side. *)

val length : 'a t -> int
(** Number of enqueued elements at some recent instant. *)
