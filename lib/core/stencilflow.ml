module Json = Sf_support.Json
module Dgraph = Sf_support.Dgraph
module Util = Sf_support.Util
module Dtype = Sf_ir.Dtype
module Boundary = Sf_ir.Boundary
module Expr = Sf_ir.Expr
module Dag = Sf_ir.Dag
module Field = Sf_ir.Field
module Stencil = Sf_ir.Stencil
module Program = Sf_ir.Program
module Builder = Sf_ir.Builder
module Lexer = Sf_frontend.Lexer
module Parser = Sf_frontend.Parser
module Program_json = Sf_frontend.Program_json
module Internal_buffer = Sf_analysis.Internal_buffer
module Delay_buffer = Sf_analysis.Delay_buffer
module Latency = Sf_analysis.Latency
module Op_count = Sf_analysis.Op_count
module Roofline = Sf_analysis.Roofline
module Runtime_model = Sf_analysis.Runtime_model
module Vectorize = Sf_analysis.Vectorize
module Influence = Sf_analysis.Influence
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp
module Compile = Sf_reference.Compile
module Engine = Sf_sim.Engine
module Parallel = Sf_sim.Parallel
module Fault_plan = Sf_sim.Fault_plan
module Faults = Sf_sim.Faults
module Telemetry = Sf_sim.Telemetry
module Timeloop = Sf_sim.Timeloop
module Sdfg = Sf_sdfg.Sdfg
module Fusion = Sf_sdfg.Fusion
module Transform = Sf_sdfg.Transform
module Opt = Sf_sdfg.Opt
module Pipeline = Sf_sdfg.Pipeline
module Partition = Sf_mapping.Partition
module Tiling = Sf_mapping.Tiling
module Autotune = Sf_mapping.Autotune
module Smi = Sf_smi.Smi
module Opencl = Sf_codegen.Opencl
module Report = Sf_codegen.Report
module Vitis = Sf_codegen.Vitis
module Dot = Sf_codegen.Dot
module Device = Sf_models.Device
module Resource = Sf_models.Resource
module Memory_model = Sf_models.Memory_model
module Loadstore = Sf_models.Loadstore
module Literature = Sf_models.Literature
module Silicon = Sf_models.Silicon
module Iterative = Sf_kernels.Iterative
module Hdiff = Sf_kernels.Hdiff
module Swe = Sf_kernels.Swe
module Wave = Sf_kernels.Wave
module Diag = Sf_support.Diag
module Executor = Sf_support.Executor
module Ctx = Sf_toolchain.Ctx
module Pass_manager = Sf_toolchain.Pass_manager
module Passes = Sf_toolchain.Passes
module Cache = Sf_toolchain.Cache
module Service = Sf_toolchain.Service
module Chaos = Sf_toolchain.Chaos
module Fingerprint = Sf_support.Fingerprint
module Store = Sf_support.Store

let load_file = Program_json.of_file
let load_string source = Program_json.of_string source

type report = {
  program : Program.t;
  fusion : Fusion.report option;
  analysis : Delay_buffer.t;
  partition : Partition.t;
  simulation : (Engine.stats, Diag.t) result option;
  performance_model : float;
  diagnostics : Diag.t list;
}

let report_of_ctx (ctx : Ctx.t) =
  match (ctx.Ctx.program, ctx.Ctx.analysis, ctx.Ctx.partition, ctx.Ctx.performance_model) with
  | Some program, Some analysis, Some partition, Some performance_model ->
      {
        program;
        fusion = ctx.Ctx.fusion;
        analysis;
        partition;
        simulation = ctx.Ctx.simulation;
        performance_model;
        diagnostics = ctx.Ctx.diags;
      }
  | _ ->
      invalid_arg "Stencilflow.report_of_ctx: pipeline did not produce all report artifacts"

let run_result ?(device = Device.stratix10) ?(fuse = true) ?(simulate = true)
    ?(validate = true) ?(sim_config = Engine.Config.default) ?inputs ?hooks program =
  let ctx = Ctx.create ~device ~sim_config ?inputs () in
  let passes = Passes.use_program program :: Passes.standard ~fuse ~simulate ~validate () in
  match Pass_manager.run ?hooks passes ctx with
  | Ok (ctx, trace) -> Ok (report_of_ctx ctx, trace)
  | Error (ds, _trace) -> Error ds

let run ?device ?fuse ?simulate ?validate ?sim_config ?inputs program =
  match run_result ?device ?fuse ?simulate ?validate ?sim_config ?inputs program with
  | Ok (report, _trace) -> report
  | Error ds -> invalid_arg (String.concat "; " (List.map Diag.to_string ds))

let codegen ?partition program = Opencl.generate ?partition program

let pp_report fmt r =
  Format.fprintf fmt "program %s: %d stencil(s) over %d device(s)@." r.program.Program.name
    (List.length r.program.Program.stencils)
    r.partition.Partition.num_devices;
  (match r.fusion with
  | Some f when f.Fusion.fused_pairs <> [] ->
      Format.fprintf fmt "  fusion: %d -> %d stencils@." f.Fusion.stencils_before
        f.Fusion.stencils_after
  | Some _ | None -> ());
  let w = r.program.Program.vector_width in
  Format.fprintf fmt "  latency L = %d cycles, expected C = %s = %d cycles@."
    r.analysis.Delay_buffer.latency_cycles
    (if w > 1 then "L + N/W" else "L + N")
    (r.analysis.Delay_buffer.latency_cycles + (Program.cells r.program / w));
  Format.fprintf fmt "  modelled performance: %s@."
    (Util.human_rate r.performance_model);
  (match r.simulation with
  | None -> ()
  | Some (Error d) -> Format.fprintf fmt "  simulation FAILED: %s@." (Diag.to_string d)
  | Some (Ok stats) ->
      Format.fprintf fmt "  simulated %d cycles (model: %d), %d B read, %d B written@."
        stats.Engine.cycles stats.Engine.predicted_cycles stats.Engine.bytes_read
        stats.Engine.bytes_written;
      let f = stats.Engine.faults in
      if f.Fault_plan.injected_events > 0 then
        Format.fprintf fmt "  injected faults: %d event(s), %d perturbed component-cycle(s)@."
          f.Fault_plan.injected_events f.Fault_plan.injected_stall_cycles);
  List.iter
    (fun d ->
      if not (Diag.is_error d) then Format.fprintf fmt "  %s@." (Diag.to_string d))
    r.diagnostics
