module Json = Sf_support.Json
module Dgraph = Sf_support.Dgraph
module Util = Sf_support.Util
module Dtype = Sf_ir.Dtype
module Boundary = Sf_ir.Boundary
module Expr = Sf_ir.Expr
module Field = Sf_ir.Field
module Stencil = Sf_ir.Stencil
module Program = Sf_ir.Program
module Builder = Sf_ir.Builder
module Lexer = Sf_frontend.Lexer
module Parser = Sf_frontend.Parser
module Program_json = Sf_frontend.Program_json
module Internal_buffer = Sf_analysis.Internal_buffer
module Delay_buffer = Sf_analysis.Delay_buffer
module Latency = Sf_analysis.Latency
module Op_count = Sf_analysis.Op_count
module Roofline = Sf_analysis.Roofline
module Runtime_model = Sf_analysis.Runtime_model
module Vectorize = Sf_analysis.Vectorize
module Influence = Sf_analysis.Influence
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp
module Engine = Sf_sim.Engine
module Timeloop = Sf_sim.Timeloop
module Sdfg = Sf_sdfg.Sdfg
module Fusion = Sf_sdfg.Fusion
module Transform = Sf_sdfg.Transform
module Opt = Sf_sdfg.Opt
module Pipeline = Sf_sdfg.Pipeline
module Partition = Sf_mapping.Partition
module Tiling = Sf_mapping.Tiling
module Autotune = Sf_mapping.Autotune
module Smi = Sf_smi.Smi
module Opencl = Sf_codegen.Opencl
module Report = Sf_codegen.Report
module Vitis = Sf_codegen.Vitis
module Dot = Sf_codegen.Dot
module Device = Sf_models.Device
module Resource = Sf_models.Resource
module Memory_model = Sf_models.Memory_model
module Loadstore = Sf_models.Loadstore
module Literature = Sf_models.Literature
module Silicon = Sf_models.Silicon
module Iterative = Sf_kernels.Iterative
module Hdiff = Sf_kernels.Hdiff
module Swe = Sf_kernels.Swe
module Wave = Sf_kernels.Wave

let load_file = Program_json.of_file
let load_string = Program_json.of_string

type report = {
  program : Program.t;
  fusion : Fusion.report option;
  analysis : Delay_buffer.t;
  partition : Partition.t;
  simulation : (Engine.stats, string) result option;
  performance_model : float;
}

let run ?(device = Device.stratix10) ?(fuse = true) ?(simulate = true) ?(validate = true)
    ?(sim_config = Engine.default_config) ?inputs program =
  Program.validate_exn program;
  let program, fusion =
    if fuse then
      let p, report = Fusion.fuse_all program in
      (p, Some report)
    else (program, None)
  in
  let analysis = Delay_buffer.analyze ~config:sim_config.Engine.latency program in
  let partition =
    match Partition.greedy ~device program with
    | Ok p -> p
    | Error _ -> Partition.single_device program
  in
  let placement = Partition.placement_fn partition in
  let simulation =
    if not simulate then None
    else if validate then
      Some (Engine.run_and_validate ~config:sim_config ~placement ?inputs program)
    else
      Some
        (match Engine.run ~config:sim_config ~placement ?inputs program with
        | Engine.Completed stats -> Ok stats
        | Engine.Deadlocked { cycle; _ } ->
            Error (Printf.sprintf "deadlocked at cycle %d" cycle))
  in
  let performance_model =
    Runtime_model.performance_ops_per_s ~config:sim_config.Engine.latency
      ~frequency_hz:device.Device.frequency_hz program
  in
  { program; fusion; analysis; partition; simulation; performance_model }

let codegen ?partition program = Opencl.generate ?partition program

let pp_report fmt r =
  Format.fprintf fmt "program %s: %d stencil(s) over %d device(s)@." r.program.Program.name
    (List.length r.program.Program.stencils)
    r.partition.Partition.num_devices;
  (match r.fusion with
  | Some f when f.Fusion.fused_pairs <> [] ->
      Format.fprintf fmt "  fusion: %d -> %d stencils@." f.Fusion.stencils_before
        f.Fusion.stencils_after
  | Some _ | None -> ());
  Format.fprintf fmt "  latency L = %d cycles, expected C = L + N = %d cycles@."
    r.analysis.Delay_buffer.latency_cycles
    (r.analysis.Delay_buffer.latency_cycles
    + (Program.cells r.program / r.program.Program.vector_width));
  Format.fprintf fmt "  modelled performance: %s@."
    (Util.human_rate r.performance_model);
  match r.simulation with
  | None -> ()
  | Some (Error m) -> Format.fprintf fmt "  simulation FAILED: %s@." m
  | Some (Ok stats) ->
      Format.fprintf fmt "  simulated %d cycles (model: %d), %d B read, %d B written@."
        stats.Engine.cycles stats.Engine.predicted_cycles stats.Engine.bytes_read
        stats.Engine.bytes_written
