(** StencilFlow: end-to-end analysis, optimization, mapping and code
    generation for DAGs of stencil computations on spatial computing
    systems — an OCaml reproduction of de Fine Licht et al., CGO 2021.

    This umbrella module re-exports the public API of every layer and
    provides the end-to-end driver of Sec. VII: parse a program
    description, run the buffering analyses, apply domain-specific
    optimization (stencil fusion), partition across devices, then either
    execute it on the cycle-level spatial simulator (validated against a
    sequential reference) or emit annotated OpenCL kernels.

    {2 Quick start}

    {[
      let program = Stencilflow.load_file "program.json" in
      let report = Stencilflow.run program in
      Format.printf "%a@." Stencilflow.pp_report report
    ]} *)

(** {1 Re-exported layers} *)

module Json = Sf_support.Json
module Dgraph = Sf_support.Dgraph
module Util = Sf_support.Util
module Dtype = Sf_ir.Dtype
module Boundary = Sf_ir.Boundary
module Expr = Sf_ir.Expr
module Dag = Sf_ir.Dag
module Field = Sf_ir.Field
module Stencil = Sf_ir.Stencil
module Program = Sf_ir.Program
module Builder = Sf_ir.Builder
module Lexer = Sf_frontend.Lexer
module Parser = Sf_frontend.Parser
module Program_json = Sf_frontend.Program_json
module Internal_buffer = Sf_analysis.Internal_buffer
module Delay_buffer = Sf_analysis.Delay_buffer
module Latency = Sf_analysis.Latency
module Op_count = Sf_analysis.Op_count
module Roofline = Sf_analysis.Roofline
module Runtime_model = Sf_analysis.Runtime_model
module Vectorize = Sf_analysis.Vectorize
module Influence = Sf_analysis.Influence
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp
module Compile = Sf_reference.Compile
module Engine = Sf_sim.Engine
module Parallel = Sf_sim.Parallel
module Fault_plan = Sf_sim.Fault_plan
module Faults = Sf_sim.Faults
module Telemetry = Sf_sim.Telemetry
module Timeloop = Sf_sim.Timeloop
module Sdfg = Sf_sdfg.Sdfg
module Fusion = Sf_sdfg.Fusion
module Transform = Sf_sdfg.Transform
module Opt = Sf_sdfg.Opt
module Pipeline = Sf_sdfg.Pipeline
module Partition = Sf_mapping.Partition
module Tiling = Sf_mapping.Tiling
module Autotune = Sf_mapping.Autotune
module Smi = Sf_smi.Smi
module Opencl = Sf_codegen.Opencl
module Report = Sf_codegen.Report
module Vitis = Sf_codegen.Vitis
module Dot = Sf_codegen.Dot
module Device = Sf_models.Device
module Resource = Sf_models.Resource
module Memory_model = Sf_models.Memory_model
module Loadstore = Sf_models.Loadstore
module Literature = Sf_models.Literature
module Silicon = Sf_models.Silicon
module Iterative = Sf_kernels.Iterative
module Hdiff = Sf_kernels.Hdiff
module Swe = Sf_kernels.Swe
module Wave = Sf_kernels.Wave
module Diag = Sf_support.Diag
module Executor = Sf_support.Executor
module Ctx = Sf_toolchain.Ctx
module Pass_manager = Sf_toolchain.Pass_manager
module Passes = Sf_toolchain.Passes
module Cache = Sf_toolchain.Cache
module Service = Sf_toolchain.Service
module Chaos = Sf_toolchain.Chaos
module Fingerprint = Sf_support.Fingerprint
module Store = Sf_support.Store

(** {1 End-to-end driver (Sec. VII)} *)

val load_file : string -> (Program.t, Diag.t list) result
(** Parse and validate a JSON program description. Failures are located,
    coded diagnostics (see {!Diag} and docs/PIPELINE.md). *)

val load_string : string -> (Program.t, Diag.t list) result

type report = {
  program : Program.t;  (** After optimization. *)
  fusion : Fusion.report option;
  analysis : Delay_buffer.t;
  partition : Partition.t;
  simulation : (Engine.stats, Diag.t) result option;
  performance_model : float;  (** Modelled ops/s at the device clock. *)
  diagnostics : Diag.t list;
      (** Warnings (e.g. the [SF0503] single-device fallback) and
          non-fatal errors (simulation failures) from the pipeline. *)
}

val report_of_ctx : Ctx.t -> report
(** Assemble a report from a pass-manager context; raises
    [Invalid_argument] when the pipeline has not produced the program,
    analysis, partition and performance-model artifacts. *)

val run_result :
  ?device:Device.t ->
  ?fuse:bool ->
  ?simulate:bool ->
  ?validate:bool ->
  ?sim_config:Engine.config ->
  ?inputs:(string * Tensor.t) list ->
  ?hooks:Pass_manager.hooks ->
  Program.t ->
  (report * Pass_manager.trace, Diag.t list) result
(** The transparent pipeline of Sec. VII, executed through the
    instrumented {!Pass_manager}: dependency analysis, buffering
    analysis, domain-specific optimization ([fuse], default true),
    multi-device partitioning under the device resource model, optional
    simulation ([simulate], default true) with validation against the
    sequential reference ([validate], default true). The trace carries
    per-pass wall-clock timings and artifact counters; [hooks] can
    observe passes or dump intermediate artifacts. *)

val run :
  ?device:Device.t ->
  ?fuse:bool ->
  ?simulate:bool ->
  ?validate:bool ->
  ?sim_config:Engine.config ->
  ?inputs:(string * Tensor.t) list ->
  Program.t ->
  report
(** {!run_result}, raising [Invalid_argument] on pipeline failure — the
    historical behaviour. Simulation failures do not raise; they are
    reported in {!report.simulation} and {!report.diagnostics}. *)

val codegen :
  ?partition:Partition.t -> Program.t -> (Opencl.artifact list, Diag.t list) result

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary; the expected-cycle label reads [C = L + N/W]
    when the program is vectorized ([W > 1]). Warnings are appended. *)
