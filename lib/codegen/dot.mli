(** Graphviz export of stencil program DAGs (as in Fig. 2 / Fig. 17).

    Nodes are input fields (boxes) and stencils (ellipses); edges carry
    the analysed delay-buffer depths. Used by the CLI and by the fusion
    study to visualize the horizontal-diffusion DAG before and after
    aggressive fusion. *)

val of_program : ?with_buffers:bool -> Sf_ir.Program.t -> string
(** DOT source. When [with_buffers] (default true), each edge is labelled
    with its delay-buffer depth in words; prefetched lower-dimensional
    inputs get dashed edges. *)

val of_sdfg : Sf_sdfg.Sdfg.t -> string
(** Render an SDFG (states as clusters, pipeline/unrolled scopes as nested
    clusters, tasklets as octagons, access nodes as ovals) — useful for
    inspecting the Fig. 12 expansion. *)
