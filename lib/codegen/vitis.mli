(** Second code-generation backend: Xilinx-style HLS C++.

    The paper notes that "supporting Xilinx FPGAs, emitting RTL code
    directly, or targeting other spatial systems entirely will only
    require adapting the stencil library node expansion" (Sec. VI). This
    backend demonstrates that claim: the same analysis results lower to
    Vitis-HLS C++ — one dataflow region whose processing elements
    communicate through [hls::stream] channels carrying the analysed
    depths, with [PIPELINE II=1] loops and partitioned shift registers.

    Single-device only (Xilinx boards in the paper's comparison have no
    SMI equivalent); use {!Opencl} for multi-device programs. *)

val generate : Sf_ir.Program.t -> (string, Sf_support.Diag.t list) result
(** The full kernel source (streams, one function per processing element,
    and the [dataflow] top function). Validation problems surface as
    [SF0301] diagnostics; internal lowering failures as [SF0601]. *)

val top_function_name : Sf_ir.Program.t -> string
