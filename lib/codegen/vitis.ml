open Sf_ir

let top_function_name (p : Program.t) = "stencilflow_" ^ p.Program.name

let stream_name ~src ~dst = Printf.sprintf "s_%s__%s" src dst

let emit_stencil_pe buf (p : Program.t) analysis (s : Stencil.t) ~consumers ~writes_memory =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let name = s.Stencil.name in
  let shape = p.Program.shape in
  let rank = Program.rank p in
  let w = p.Program.vector_width in
  let n_words = Program.cells p / w in
  let buffers = Sf_analysis.Internal_buffer.of_stencil p s in
  let info = Sf_analysis.Delay_buffer.node_info analysis name in
  let init = info.Sf_analysis.Delay_buffer.init_cycles in
  (* See Opencl.emit_stencil_kernel: register sizing consistent with the
     conservative consumption schedule. *)
  let init_extra_of (b : Sf_analysis.Internal_buffer.t) =
    Sf_support.Util.ceil_div b.init_elements (max 1 w)
  in
  let register_size (b : Sf_analysis.Internal_buffer.t) =
    (init_extra_of b * w) + w + max 0 (-b.min_flat)
  in
  let tap_base (b : Sf_analysis.Internal_buffer.t) =
    register_size b - w - (init_extra_of b * w)
  in
  let dims = List.filteri (fun i _ -> i < rank) [ "k"; "j"; "i" ] in
  let dims = if rank = 2 then [ "j"; "i" ] else if rank = 1 then [ "i" ] else dims in
  let stream_params =
    List.map (fun (b : Sf_analysis.Internal_buffer.t) -> Printf.sprintf "hls::stream<float>& in_%s" b.field) buffers
    @ List.map (fun c -> Printf.sprintf "hls::stream<float>& out_%s" c) consumers
    @ (if writes_memory then [ Printf.sprintf "hls::stream<float>& out_mem_%s" name ] else [])
  in
  add "void pe_%s(%s) {\n" name (String.concat ", " stream_params);
  List.iter
    (fun (b : Sf_analysis.Internal_buffer.t) ->
      add "  float sr_%s[%d];\n" b.field (register_size b);
      add "#pragma HLS ARRAY_PARTITION variable=sr_%s complete\n" b.field)
    buffers;
  add "loop_%s:\n" name;
  add "  for (long t = 0; t < %dL + %dL; ++t) {\n" init n_words;
  add "#pragma HLS PIPELINE II=1\n";
  (* Shift + update. *)
  List.iter
    (fun (b : Sf_analysis.Internal_buffer.t) ->
      if register_size b > w then
        add "    for (int s = 0; s < %d; ++s) sr_%s[s] = sr_%s[s + %d];\n"
          (register_size b - w) b.field b.field w;
      let init_extra = init_extra_of b in
      let start = init - init_extra in
      let target = Printf.sprintf "sr_%s[%d + v]" b.field (register_size b - w) in
      add "    if (t >= %dL && t < %dL + %dL)\n" start start n_words;
      add "      for (int v = 0; v < %d; ++v) %s = in_%s.read();\n" w target b.field)
    buffers;
  add "    if (t >= %dL) {\n" init;
  add "      long cell = (t - %dL) * %d;\n" init w;
  add "      for (int v = 0; v < %d; ++v) {\n" w;
  let strides = Program.strides p in
  List.iteri
    (fun d dim ->
      add "        const long %s = ((cell + v) / %dL) %% %dL;\n" dim (List.nth strides d)
        (List.nth shape d))
    dims;
  let tap (b : Sf_analysis.Internal_buffer.t) offsets =
    let flat = Sf_analysis.Internal_buffer.flatten_offset ~shape offsets in
    Printf.sprintf "sr_%s[%d + v]" b.field (tap_base b + flat)
  in
  let access ~field ~offsets =
    match
      List.find_opt (fun (b : Sf_analysis.Internal_buffer.t) -> b.field = field) buffers
    with
    | Some b ->
        let guards =
          List.concat
            (List.mapi
               (fun d o ->
                 if o = 0 then []
                 else
                   [
                     Printf.sprintf "(%s + (%d) >= 0 && %s + (%d) < %d)" (List.nth dims d) o
                       (List.nth dims d) o (List.nth shape d);
                   ])
               offsets)
        in
        if guards = [] then tap b offsets
        else begin
          let fallback =
            match Stencil.boundary_for s field with
            | Boundary.Constant c -> Opencl.float_literal c
            | Boundary.Copy -> tap b (List.map (fun _ -> 0) offsets)
          in
          Printf.sprintf "(%s ? %s : %s)" (String.concat " && " guards) (tap b offsets) fallback
        end
    | None ->
        (* Lower-dimensional input, served from its prefetch array; the
           index is the row-major flattening over the axes it spans
           (scalars index 0). *)
        let axes = Program.field_axes p field in
        if axes = [] then Printf.sprintf "pref_%s[0]" field
        else begin
          let extents = List.map (fun a -> List.nth shape a) axes in
          let rec index_terms axes offsets extents =
            match (axes, offsets, extents) with
            | [], [], [] -> []
            | axis :: axes_rest, o :: offs_rest, _ :: ext_rest ->
                let stride = List.fold_left ( * ) 1 ext_rest in
                Printf.sprintf "(%s + (%d)) * %d" (List.nth dims axis) o stride
                :: index_terms axes_rest offs_rest ext_rest
            | _ -> assert false
          in
          Printf.sprintf "pref_%s[%s]" field
            (String.concat " + " (index_terms axes offsets extents))
        end
  in
  let body = Opencl.scheduled_body s.Stencil.body in
  List.iter
    (fun (n, e) ->
      add "        const float %s = %s;\n" n (Opencl.expression_to_c ~access e))
    body.Expr.lets;
  add "        const float value = %s;\n" (Opencl.expression_to_c ~access body.Expr.result);
  List.iter (fun c -> add "        out_%s.write(value);\n" c) consumers;
  if writes_memory then add "        out_mem_%s.write(value);\n" name;
  add "      }\n    }\n  }\n}\n\n"

let generate_unchecked (p : Program.t) =
  let analysis = Sf_analysis.Delay_buffer.analyze p in
  let rank = Program.rank p in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "// Generated by StencilFlow (OCaml reproduction), Vitis HLS backend\n";
  add "// Program: %s\n" p.Program.name;
  add "#include <hls_stream.h>\n#include <hls_math.h>\n\n";
  (* Lower-dimensional inputs live in program-scope arrays, loaded from
     their memory buffers by the top function before the dataflow region
     starts. *)
  List.iter
    (fun (f : Field.t) ->
      if Field.rank f < rank then
        add "float pref_%s[%d];\n" f.Field.name (max 1 (Field.num_elements f ~shape:p.Program.shape)))
    p.Program.inputs;
  add "\n";
  (* Processing elements. *)
  List.iter
    (fun (s : Stencil.t) ->
      emit_stencil_pe buf p analysis s
        ~consumers:(Program.consumers p s.Stencil.name)
        ~writes_memory:(List.exists (String.equal s.Stencil.name) p.Program.outputs))
    p.Program.stencils;
  (* Readers and writers. *)
  List.iter
    (fun (f : Field.t) ->
      if Field.rank f = rank then begin
        let consumers = Program.consumers p f.Field.name in
        add "void read_%s(const float* mem%s) {\n" f.Field.name
          (String.concat ""
             (List.map (fun c -> Printf.sprintf ", hls::stream<float>& out_%s" c) consumers));
        add "  for (long idx = 0; idx < %dL; ++idx) {\n" (Field.num_elements f ~shape:p.Program.shape);
        add "#pragma HLS PIPELINE II=1\n";
        List.iter (fun c -> add "    out_%s.write(mem[idx]);\n" c) consumers;
        add "  }\n}\n\n"
      end)
    p.Program.inputs;
  List.iter
    (fun o ->
      add "void write_%s(hls::stream<float>& in, float* mem) {\n" o;
      add "  for (long idx = 0; idx < %dL; ++idx) {\n" (Program.cells p);
      add "#pragma HLS PIPELINE II=1\n";
      add "    mem[idx] = in.read();\n  }\n}\n\n" )
    p.Program.outputs;
  (* Top-level dataflow region: every input (streamed or prefetched) and
     every output arrives as a memory pointer, in declaration order. *)
  let mem_args =
    List.map (fun (f : Field.t) -> Printf.sprintf "const float* mem_%s" f.Field.name)
      p.Program.inputs
    @ List.map (fun o -> Printf.sprintf "float* mem_%s" o) p.Program.outputs
  in
  add "extern \"C\" void %s(%s) {\n" (top_function_name p) (String.concat ", " mem_args);
  List.iter
    (fun (f : Field.t) ->
      if Field.rank f < rank then begin
        let elems = max 1 (Field.num_elements f ~shape:p.Program.shape) in
        add "  for (int i = 0; i < %d; ++i) pref_%s[i] = mem_%s[i];\n" elems f.Field.name
          f.Field.name
      end)
    p.Program.inputs;
  add "#pragma HLS DATAFLOW\n";
  (* Stream declarations carry the analysed delay-buffer depths. *)
  List.iter
    (fun (s : Stencil.t) ->
      List.iter
        (fun field ->
          if List.length (Program.field_axes p field) = rank then begin
            let depth = max 1 (Sf_analysis.Delay_buffer.buffer_for analysis ~src:field ~dst:s.Stencil.name) in
            add "  hls::stream<float> %s;\n" (stream_name ~src:field ~dst:s.Stencil.name);
            add "#pragma HLS STREAM variable=%s depth=%d\n"
              (stream_name ~src:field ~dst:s.Stencil.name)
              depth
          end)
        (Stencil.input_fields s))
    p.Program.stencils;
  List.iter
    (fun o ->
      add "  hls::stream<float> %s;\n" (stream_name ~src:o ~dst:"mem");
      add "#pragma HLS STREAM variable=%s depth=8\n" (stream_name ~src:o ~dst:"mem"))
    p.Program.outputs;
  (* Invocations. *)
  List.iter
    (fun (f : Field.t) ->
      if Field.rank f = rank then
        add "  read_%s(mem_%s%s);\n" f.Field.name f.Field.name
          (String.concat ""
             (List.map
                (fun c -> ", " ^ stream_name ~src:f.Field.name ~dst:c)
                (Program.consumers p f.Field.name))))
    p.Program.inputs;
  List.iter
    (fun (s : Stencil.t) ->
      let ins =
        List.filter_map
          (fun field ->
            if List.length (Program.field_axes p field) = rank then
              Some (stream_name ~src:field ~dst:s.Stencil.name)
            else None)
          (Stencil.input_fields s)
      in
      let outs =
        List.map (fun c -> stream_name ~src:s.Stencil.name ~dst:c)
          (Program.consumers p s.Stencil.name)
        @
        if List.exists (String.equal s.Stencil.name) p.Program.outputs then
          [ stream_name ~src:s.Stencil.name ~dst:"mem" ]
        else []
      in
      add "  pe_%s(%s);\n" s.Stencil.name (String.concat ", " (ins @ outs)))
    p.Program.stencils;
  List.iter
    (fun o -> add "  write_%s(%s, mem_%s);\n" o (stream_name ~src:o ~dst:"mem") o)
    p.Program.outputs;
  add "}\n";
  Buffer.contents buf

module Diag = Sf_support.Diag

let generate (p : Program.t) =
  match Program.validate p with
  | Ok () -> (
      try Ok (generate_unchecked p)
      with Invalid_argument m | Failure m ->
        Error [ Diag.errorf ~code:Diag.Code.codegen "code generation failed: %s" m ])
  | Error msgs -> Error (List.map (Diag.error ~code:Diag.Code.validation) msgs)
