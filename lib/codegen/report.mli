(** Human-readable program reports.

    Generates a Markdown document summarizing everything StencilFlow
    derives about a program: the DAG, per-stencil buffering and latency,
    the Eq. 1 runtime model, the operation profile and roofline position,
    estimated resources and device utilization, the vectorization sweep,
    and the device partition. Exposed through the CLI as
    [stencilflow report]. *)

val markdown : ?device:Sf_models.Device.t -> Sf_ir.Program.t -> string
