(** Code generation to Intel-FPGA-style annotated OpenCL (paper, Sec. VI).

    One source file is emitted per device. Each stencil becomes an
    [autorun] kernel containing the Fig. 12 structure: a fully unrolled
    shift phase over the field's shift register, an update phase reading
    the input channels, and a compute phase with boundary predication and
    a guarded output write. Channels carry the delay-buffer depths from
    the analysis; edges crossing devices are emitted as SMI push/pop
    calls instead of channel operations (Sec. VI-B). Dedicated reader
    (prefetcher) and writer kernels move data between DRAM and streams.

    The output is not synthesized in this reproduction (no vendor
    toolchain); its structure is verified by tests and it documents
    exactly what the lowering decides: channel depths, tap offsets,
    predication, initialization and drain scheduling. *)

type artifact = {
  device : int;
  filename : string;
  source : string;
}

val generate :
  ?partition:Sf_mapping.Partition.t ->
  Sf_ir.Program.t ->
  (artifact list, Sf_support.Diag.t list) result
(** Kernel source per device (a single artifact when unpartitioned).
    Validation problems surface as [SF0301] diagnostics; internal
    lowering failures as [SF0601]. *)

val host_source :
  ?partition:Sf_mapping.Partition.t ->
  Sf_ir.Program.t ->
  (string, Sf_support.Diag.t list) result
(** Host-side C-style pseudo code: buffer allocation, replication of
    inputs to each device, kernel launch, and result copy-back. *)

val float_literal : float -> string
(** C float literal rendering shared by the backends. *)

val expression_to_c :
  access:(field:string -> offsets:int list -> string) -> Sf_ir.Expr.t -> string
(** Render an expression as C, delegating access rendering to the caller
    (exposed for tests). *)

val scheduled_body : Sf_ir.Expr.body -> Sf_ir.Expr.body
(** The body as both backends emit it: original let names preserved, and
    every structurally shared non-leaf DAG node hoisted into a [__tN]
    local, so generated kernels compute each shared value once instead of
    relying on the vendor compiler's CSE. Shared by both backends. *)
