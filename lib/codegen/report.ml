open Sf_ir
module Device = Sf_models.Device
module Resource = Sf_models.Resource
module Autotune = Sf_mapping.Autotune
module Partition = Sf_mapping.Partition

let markdown ?(device = Device.stratix10) (p : Program.t) =
  Program.validate_exn p;
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let analysis = Sf_analysis.Delay_buffer.analyze p in
  add "# StencilFlow report: %s\n\n" p.Program.name;
  add "- iteration space: %s (%d cells), dtype %s, vector width %d\n"
    (Sf_support.Util.string_concat_map " x " string_of_int p.Program.shape)
    (Program.cells p) (Dtype.name p.Program.dtype) p.Program.vector_width;
  add "- %d input field(s), %d stencil(s), %d output(s)\n\n"
    (List.length p.Program.inputs)
    (List.length p.Program.stencils)
    (List.length p.Program.outputs);

  add "## Stencil DAG\n\n";
  add
    "| stencil | reads | flops/cell | work flops | tree flops | init [cycles] | compute [cycles] | starts | first output |\n";
  add "|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun (s : Stencil.t) ->
      let info = Sf_analysis.Delay_buffer.node_info analysis s.Stencil.name in
      add "| %s | %s | %d | %d | %d | %d | %d | %d | %d |\n" s.Stencil.name
        (String.concat ", " (Stencil.input_fields s))
        (Expr.flop_count (Stencil.op_profile s))
        (Expr.flop_count (Stencil.work_profile s))
        (Expr.flop_count (Stencil.tree_profile s))
        info.Sf_analysis.Delay_buffer.init_cycles info.Sf_analysis.Delay_buffer.compute_cycles
        (Sf_analysis.Delay_buffer.start_cycle analysis s.Stencil.name)
        (Sf_analysis.Delay_buffer.output_cycle analysis s.Stencil.name))
    p.Program.stencils;

  let buffered_edges = List.filter (fun (_, b) -> b > 0) analysis.Sf_analysis.Delay_buffer.edges in
  if buffered_edges <> [] then begin
    add "\n## Delay buffers (Sec. IV-B)\n\n";
    add "| edge | depth [words] |\n|---|---|\n";
    List.iter
      (fun ((u, v), depth) -> add "| %s -> %s | %d |\n" u v depth)
      buffered_edges
  end;

  add "\n## Runtime model (Eq. 1)\n\n";
  let n = Program.cells p / p.Program.vector_width in
  add "- latency L = %d cycles, N = %d words: C = %d cycles\n"
    analysis.Sf_analysis.Delay_buffer.latency_cycles n
    (analysis.Sf_analysis.Delay_buffer.latency_cycles + n);
  add "- at %.0f MHz: %s runtime, %s\n" (device.Device.frequency_hz /. 1e6)
    (Sf_support.Util.human_time
       (Sf_analysis.Runtime_model.expected_seconds ~frequency_hz:device.Device.frequency_hz p))
    (Sf_support.Util.human_rate
       (Sf_analysis.Runtime_model.performance_ops_per_s ~frequency_hz:device.Device.frequency_hz p));
  add "- initialization fraction: %.2f%%\n"
    (100. *. Sf_analysis.Runtime_model.initialization_fraction p);

  add "\n## Data movement and roofline\n\n";
  let counts = Sf_analysis.Op_count.of_program p in
  add "- %d flops/cell; reads %d operands, writes %d (perfect reuse)\n"
    counts.Sf_analysis.Op_count.flops_per_cell counts.Sf_analysis.Op_count.read_elements
    counts.Sf_analysis.Op_count.written_elements;
  add "- sharing: %d work flops/cell vs %d fully-inlined tree flops/cell (%d saved by CSE)\n"
    counts.Sf_analysis.Op_count.work_flops_per_cell
    counts.Sf_analysis.Op_count.tree_flops_per_cell
    (counts.Sf_analysis.Op_count.tree_flops_per_cell
    - counts.Sf_analysis.Op_count.work_flops_per_cell);
  let ai = Sf_analysis.Op_count.ai_ops_per_byte p in
  add "- arithmetic intensity: %.3f Op/operand = %.3f Op/B\n"
    (Sf_analysis.Op_count.ai_ops_per_operand p) ai;
  add "- bandwidth-bound ceiling at %.1f GB/s effective: %s\n"
    (device.Device.vector_bw_cap /. 1e9)
    (Sf_support.Util.human_rate
       (Sf_analysis.Roofline.attainable_ops_per_s ~ai_ops_per_byte:ai
          ~bandwidth_bytes_per_s:device.Device.vector_bw_cap));
  add "- streaming demand: %d operands/cycle (%s at the device clock)\n"
    (Sf_analysis.Op_count.streaming_operands_per_cycle p)
    (Sf_support.Util.human_bytes_rate
       (Sf_analysis.Op_count.streaming_bytes_per_second
          ~frequency_hz:device.Device.frequency_hz p));

  add "\n## Resources on %s\n\n" device.Device.name;
  let usage = Resource.of_program p in
  let a, f, m, d = Resource.utilization device usage in
  add "| | ALM | FF | M20K | DSP |\n|---|---|---|---|---|\n";
  add "| estimated | %d | %d | %d | %d |\n" usage.Resource.alm usage.Resource.ff
    usage.Resource.m20k usage.Resource.dsp;
  add "| utilization | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n" (100. *. a) (100. *. f)
    (100. *. m) (100. *. d);

  add "\n## Vectorization sweep\n\n";
  (try
     let best, sweep = Autotune.choose ~device ~max_width:16 p in
     add "| W | model GOp/s | bandwidth-bound | fits |\n|---|---|---|---|\n";
     List.iter
       (fun e ->
         add "| %d | %.1f | %b | %b |%s\n" e.Autotune.vector_width
           (e.Autotune.modeled_ops_per_s /. 1e9)
           e.Autotune.bandwidth_bound e.Autotune.fits
           (if e.Autotune.vector_width = best.Autotune.vector_width then " <- recommended" else ""))
       sweep
   with Invalid_argument m -> add "no feasible width: %s\n" m);

  add "\n## Device mapping\n\n";
  (match Partition.greedy ~device p with
  | Ok pt ->
      add "- fits on %d device(s)\n" pt.Partition.num_devices;
      if pt.Partition.cross_edges <> [] then begin
        add "- remote streams: %s\n"
          (Sf_support.Util.string_concat_map ", "
             (fun ((u, v), (d1, d2)) -> Printf.sprintf "%s->%s (%d->%d)" u v d1 d2)
             pt.Partition.cross_edges);
        add "- network feasible at W=%d: %b\n" p.Program.vector_width
          (Partition.network_feasible p pt ~device)
      end
  | Error d -> add "- does not fit: %s\n" d.Sf_support.Diag.message);
  Buffer.contents buf
