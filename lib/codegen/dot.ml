open Sf_ir

let of_program ?(with_buffers = true) (p : Program.t) =
  let analysis = if with_buffers then Some (Sf_analysis.Delay_buffer.analyze p) else None in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %S {\n  rankdir=TB;\n" p.Program.name;
  List.iter
    (fun (f : Field.t) -> add "  %S [shape=box, style=filled, fillcolor=lightgrey];\n" f.Field.name)
    p.Program.inputs;
  List.iter
    (fun (s : Stencil.t) ->
      let shape_attr =
        if List.exists (String.equal s.Stencil.name) p.Program.outputs then
          ", peripheries=2"
        else ""
      in
      add "  %S [shape=ellipse%s];\n" s.Stencil.name shape_attr)
    p.Program.stencils;
  let g = Program.graph p in
  List.iter
    (fun (src, dst, ()) ->
      match analysis with
      | Some a -> (
          (* Lower-dimensional inputs are prefetched, not streamed: they
             have no delay-buffer edge. *)
          match Sf_analysis.Delay_buffer.buffer_for a ~src ~dst with
          | depth when depth > 0 -> add "  %S -> %S [label=\"%d\"];\n" src dst depth
          | _ -> add "  %S -> %S;\n" src dst
          | exception Not_found -> add "  %S -> %S [style=dashed];\n" src dst)
      | None -> add "  %S -> %S;\n" src dst)
    (Program.G.edges g);
  add "}\n";
  Buffer.contents buf

let of_sdfg (sdfg : Sf_sdfg.Sdfg.t) =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %S {\n  compound=true;\n  rankdir=TB;\n" sdfg.Sf_sdfg.Sdfg.name;
  let counter = ref 0 in
  let fresh () =
    incr counter;
    !counter
  in
  (* Each graph gets its own namespace of node ids. *)
  let rec emit_graph prefix (g : Sf_sdfg.Sdfg.graph) =
    List.iter
      (fun (id, node) ->
        let nid = Printf.sprintf "%s_%d" prefix id in
        match node with
        | Sf_sdfg.Sdfg.Access name -> add "  %s [shape=oval, label=%S];\n" nid name
        | Sf_sdfg.Sdfg.Tasklet { label; _ } -> add "  %s [shape=octagon, label=%S];\n" nid label
        | Sf_sdfg.Sdfg.Stencil_node s ->
            add "  %s [shape=doubleoctagon, label=%S];\n" nid s.Sf_ir.Stencil.name
        | Sf_sdfg.Sdfg.Pipeline { label; init_cycles; drain_cycles; body; _ } ->
            let cluster = fresh () in
            add "  subgraph cluster_%d {\n  label=\"%s (init %d, drain %d)\";\n" cluster label
              init_cycles drain_cycles;
            emit_graph (Printf.sprintf "%s_%d" prefix id) body;
            add "  }\n";
            add "  %s [shape=point, style=invis];\n" nid
        | Sf_sdfg.Sdfg.Unrolled_map { label; width; body } ->
            let cluster = fresh () in
            add "  subgraph cluster_%d {\n  label=\"%s (unroll %d)\";\n" cluster label width;
            emit_graph (Printf.sprintf "%s_%d" prefix id) body;
            add "  }\n";
            add "  %s [shape=point, style=invis];\n" nid)
      g.Sf_sdfg.Sdfg.nodes;
    List.iter
      (fun (e : Sf_sdfg.Sdfg.edge) ->
        add "  %s_%d -> %s_%d [label=%S];\n" prefix e.Sf_sdfg.Sdfg.src prefix
          e.Sf_sdfg.Sdfg.dst e.Sf_sdfg.Sdfg.data)
      g.Sf_sdfg.Sdfg.edges
  in
  List.iteri
    (fun i (st : Sf_sdfg.Sdfg.state) ->
      let cluster = fresh () in
      add "  subgraph cluster_%d {\n  label=%S;\n" cluster st.Sf_sdfg.Sdfg.slabel;
      emit_graph (Printf.sprintf "s%d" i) st.Sf_sdfg.Sdfg.body;
      add "  }\n")
    sdfg.Sf_sdfg.Sdfg.states;
  add "}\n";
  Buffer.contents buf
