open Sf_ir
module Partition = Sf_mapping.Partition

type artifact = { device : int; filename : string; source : string }

let func_c_name = function
  | Expr.Sqrt -> "sqrtf"
  | Expr.Abs -> "fabsf"
  | Expr.Exp -> "expf"
  | Expr.Log -> "logf"
  | Expr.Pow -> "powf"
  | Expr.Min -> "fminf"
  | Expr.Max -> "fmaxf"
  | Expr.Sin -> "sinf"
  | Expr.Cos -> "cosf"
  | Expr.Floor -> "floorf"
  | Expr.Ceil -> "ceilf"

let binop_c = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.Eq -> "=="
  | Expr.Ne -> "!="
  | Expr.And -> "&&"
  | Expr.Or -> "||"

let float_literal c =
  if Float.is_integer c && Float.abs c < 1e15 then Printf.sprintf "%.1ff" c
  else Printf.sprintf "%.9gf" c

let rec expression_to_c ~access expr =
  let atom e =
    match e with
    | Expr.Const _ | Expr.Var _ | Expr.Access _ | Expr.Call _ -> expression_to_c ~access e
    | Expr.Unary _ | Expr.Binary _ | Expr.Select _ ->
        "(" ^ expression_to_c ~access e ^ ")"
  in
  match expr with
  | Expr.Const c -> float_literal c
  | Expr.Var v -> v
  | Expr.Access { field; offsets } -> access ~field ~offsets
  | Expr.Unary (Expr.Neg, x) -> "-" ^ atom x
  | Expr.Unary (Expr.Not, x) -> "!" ^ atom x
  | Expr.Binary (op, x, y) -> Printf.sprintf "%s %s %s" (atom x) (binop_c op) (atom y)
  | Expr.Select { cond; if_true; if_false } ->
      Printf.sprintf "%s ? %s : %s" (atom cond) (atom if_true) (atom if_false)
  | Expr.Call (f, args) ->
      Printf.sprintf "%s(%s)" (func_c_name f)
        (Sf_support.Util.string_concat_map ", " (expression_to_c ~access) args)

(* Schedule a body's hash-consed DAG for emission: the programmer's let
   names are preserved, and every structurally shared non-leaf node is
   materialized as a [__tN] local so the generated kernel computes each
   shared value once and fans it out explicitly, instead of relying on
   the vendor compiler's CSE. *)
let scheduled_body (b : Expr.body) =
  let named, root = Dag.of_body_named b in
  Dag.extract ~min_size:2 ~prefix:"__t" ~keep:named root

let dim_names = [| "k"; "j"; "i" |]

(* Dimension variable names for a rank-d space: the last d entries. *)
let dims_for rank = Array.to_list (Array.sub dim_names (3 - rank) rank)

let channel_name ~src ~dst = Printf.sprintf "ch_%s__%s" src dst

let emit_stencil_kernel buf (p : Program.t) analysis (s : Stencil.t) ~remote_in
    ~local_consumers ~remote_out ~writes_memory =
  let w = p.Program.vector_width in
  let name = s.Stencil.name in
  let shape = p.Program.shape in
  let rank = Program.rank p in
  let dims = dims_for rank in
  let n_words = Program.cells p / w in
  let buffers = Sf_analysis.Internal_buffer.of_stencil p s in
  let info = Sf_analysis.Delay_buffer.node_info analysis name in
  let init = info.Sf_analysis.Delay_buffer.init_cycles in
  (* Register sizing consistent with the conservative fill-the-buffer
     schedule (init_extra words are consumed ahead of the first output):
     at compute time the newest element sits init_extra*W + W - 1 ahead
     of the lane-0 center, so the register must retain that read-ahead
     plus any negative reach. Tap for flat offset o, lane v is
     S - W - init_extra*W + o + v. *)
  let init_extra_of (b : Sf_analysis.Internal_buffer.t) =
    Sf_support.Util.ceil_div b.init_elements (max 1 w)
  in
  let register_size (b : Sf_analysis.Internal_buffer.t) =
    (init_extra_of b * w) + w + max 0 (-b.min_flat)
  in
  let tap_base (b : Sf_analysis.Internal_buffer.t) =
    register_size b - w - (init_extra_of b * w)
  in
  let add fmt = Printf.ksprintf (fun line -> Buffer.add_string buf line) fmt in
  add "__attribute__((max_global_work_dim(0)))\n";
  add "__attribute__((autorun))\n";
  add "__kernel void stencil_%s() {\n" name;
  List.iter
    (fun (b : Sf_analysis.Internal_buffer.t) ->
      add "  float sr_%s[%d]; // flat span [%d, %d], read-ahead %d words\n" b.field
        (register_size b) b.min_flat b.max_flat (init_extra_of b))
    buffers;
  (* Lower-dimensional inputs are read from the program-scope prefetch
     arrays, filled by the load_* kernels before the pipeline starts. *)
  add "  for (long t = 0; t < %dL + %dL; ++t) {\n" init n_words;
  (* Shift phase (fully unrolled). *)
  List.iter
    (fun (b : Sf_analysis.Internal_buffer.t) ->
      if register_size b > w then begin
        add "    #pragma unroll\n";
        add "    for (int s = 0; s < %d; ++s) sr_%s[s] = sr_%s[s + %d];\n"
          (register_size b - w) b.field b.field w
      end)
    buffers;
  (* Update phase: read one word from each active input stream. *)
  List.iter
    (fun (b : Sf_analysis.Internal_buffer.t) ->
      let init_extra = init_extra_of b in
      let start = init - init_extra in
      let target = Printf.sprintf "sr_%s[%d + v]" b.field (register_size b - w) in
      let source =
        if List.mem_assoc b.field remote_in then
          Printf.sprintf "SMI_Pop(&smi_%s__%s)" b.field name
        else Printf.sprintf "read_channel_intel(%s)" (channel_name ~src:b.field ~dst:name)
      in
      add "    if (t >= %dL && t < %dL + %dL) {\n" start start n_words;
      add "      #pragma unroll\n";
      add "      for (int v = 0; v < %d; ++v) %s = %s;\n" w target source;
      add "    }\n")
    buffers;
  (* Compute phase. *)
  add "    if (t >= %dL) {\n" init;
  add "      long cell = (t - %dL) * %d;\n" init w;
  add "      #pragma unroll\n";
  add "      for (int v = 0; v < %d; ++v) {\n" w;
  (* Recover the multi-index of cell + v for boundary predication. *)
  let strides = Program.strides p in
  List.iteri
    (fun d dim ->
      add "        const long %s = ((cell + v) / %dL) %% %dL;\n" dim (List.nth strides d)
        (List.nth shape d))
    dims;
  let tap (b : Sf_analysis.Internal_buffer.t) offsets =
    let flat = Sf_analysis.Internal_buffer.flatten_offset ~shape offsets in
    Printf.sprintf "sr_%s[%d + v]" b.field (tap_base b + flat)
  in
  let access ~field ~offsets =
    match List.find_opt (fun (b : Sf_analysis.Internal_buffer.t) -> b.field = field) buffers with
    | Some b ->
        let in_bounds =
          List.concat
            (List.mapi
               (fun d o ->
                 if o = 0 then []
                 else
                   [
                     Printf.sprintf "(%s + (%d) >= 0 && %s + (%d) < %d)" (List.nth dims d) o
                       (List.nth dims d) o (List.nth shape d);
                   ])
               offsets)
        in
        let value = tap b offsets in
        if in_bounds = [] then value
        else begin
          let fallback =
            match Stencil.boundary_for s field with
            | Boundary.Constant c -> float_literal c
            | Boundary.Copy -> tap b (List.map (fun _ -> 0) offsets)
          in
          Printf.sprintf "(%s ? %s : %s)" (String.concat " && " in_bounds) value fallback
        end
    | None ->
        (* Lower-dimensional prefetched field. *)
        let axes = Program.field_axes p field in
        if axes = [] then Printf.sprintf "pref_%s[0]" field
        else begin
          let index =
            Sf_support.Util.string_concat_map " + "
              (fun (axis, o) ->
                let extent_inner =
                  List.fold_left
                    (fun acc a -> if a > axis then acc * List.nth shape a else acc)
                    1 axes
                in
                Printf.sprintf "(%s + (%d)) * %d" (List.nth dims axis) o extent_inner)
              (List.combine axes offsets)
          in
          Printf.sprintf "pref_%s[%s]" field index
        end
  in
  let body = scheduled_body s.Stencil.body in
  List.iter
    (fun (letname, e) -> add "        const float %s = %s;\n" letname (expression_to_c ~access e))
    body.Expr.lets;
  add "        const float value_%d = %s;\n" 0 (expression_to_c ~access body.Expr.result);
  let emit_write target = add "        %s;\n" target in
  List.iter
    (fun consumer ->
      emit_write
        (Printf.sprintf "write_channel_intel(%s, value_0)" (channel_name ~src:name ~dst:consumer)))
    local_consumers;
  List.iter
    (fun consumer -> emit_write (Printf.sprintf "SMI_Push(&smi_%s__%s, value_0)" name consumer))
    remote_out;
  if writes_memory then
    emit_write (Printf.sprintf "write_channel_intel(%s, value_0)" (channel_name ~src:name ~dst:"mem"));
  add "      }\n";
  add "    }\n";
  add "  }\n";
  add "}\n\n"

let emit_reader buf (p : Program.t) (f : Field.t) consumers =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let elems = Field.num_elements f ~shape:p.Program.shape in
  add "__kernel void read_%s(__global const float* restrict mem) {\n" f.Field.name;
  add "  for (long idx = 0; idx < %dL; ++idx) {\n" elems;
  add "    const float value = mem[idx];\n";
  List.iter
    (fun c ->
      add "    write_channel_intel(%s, value);\n" (channel_name ~src:f.Field.name ~dst:c))
    consumers;
  add "  }\n}\n\n"

let emit_writer buf (p : Program.t) output =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "__kernel void write_%s(__global float* restrict mem) {\n" output;
  add "  for (long idx = 0; idx < %dL; ++idx) {\n" (Program.cells p);
  add "    mem[idx] = read_channel_intel(%s);\n" (channel_name ~src:output ~dst:"mem");
  add "  }\n}\n\n"

let generate_unchecked ?partition (p : Program.t) =
  let partition = match partition with Some pt -> pt | None -> Partition.single_device p in
  let analysis = Sf_analysis.Delay_buffer.analyze p in
  let device_of = Partition.placement_fn partition in
  let rank = Program.rank p in
  List.map
    (fun device ->
      let buf = Buffer.create 4096 in
      let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      add "// Generated by StencilFlow (OCaml reproduction) for device %d\n" device;
      add "// Program: %s, shape %s, W=%d\n" p.Program.name
        (Sf_support.Util.string_concat_map "x" string_of_int p.Program.shape)
        p.Program.vector_width;
      add "#pragma OPENCL EXTENSION cl_intel_channels : enable\n";
      add "#include \"smi.h\"\n\n";
      let local_stencils =
        List.filter (fun s -> device_of s.Stencil.name = device) p.Program.stencils
      in
      let local_names = List.map (fun s -> s.Stencil.name) local_stencils in
      let is_local name = List.exists (String.equal name) local_names in
      (* Channel declarations: local edges with analysed depths. *)
      List.iter
        (fun (s : Stencil.t) ->
          let dst = s.Stencil.name in
          List.iter
            (fun field ->
              let is_stencil_src = Option.is_some (Program.find_stencil p field) in
              let local_src = (not is_stencil_src) || is_local field in
              let prefetched =
                (not is_stencil_src) && List.length (Program.field_axes p field) < rank
              in
              if local_src && not prefetched then begin
                let depth =
                  Sf_analysis.Delay_buffer.buffer_for analysis ~src:field ~dst
                in
                add "channel float %s __attribute__((depth(%d)));\n"
                  (channel_name ~src:field ~dst) (max 1 depth)
              end)
            (Stencil.input_fields s))
        local_stencils;
      List.iter
        (fun o ->
          if is_local o then
            add "channel float %s __attribute__((depth(%d)));\n" (channel_name ~src:o ~dst:"mem") 8)
        p.Program.outputs;
      (* SMI channel declarations for remote streams touching this device. *)
      List.iter
        (fun ((src, dst), (d1, d2)) ->
          if d1 = device || d2 = device then
            add "SMI_Channel smi_%s__%s; // rank %d -> rank %d\n" src dst d1 d2)
        partition.Partition.cross_edges;
      add "\n";
      (* Prefetch storage and loader kernels for lower-dimensional inputs
         used on this device; readers for streamed inputs. *)
      List.iter
        (fun (f : Field.t) ->
          let devices = List.assoc f.Field.name partition.Partition.replicated_inputs in
          if List.mem device devices && List.length (Program.field_axes p f.Field.name) < rank
          then begin
            let elems = max 1 (Field.num_elements f ~shape:p.Program.shape) in
            add "float pref_%s[%d]; // lower-dimensional input, prefetched once\n" f.Field.name
              elems;
            add "__kernel void load_%s(__global const float* restrict mem) {\n" f.Field.name;
            add "  for (int idx = 0; idx < %d; ++idx) pref_%s[idx] = mem[idx];\n" elems
              f.Field.name;
            add "}\n\n"
          end)
        p.Program.inputs;
      List.iter
        (fun (f : Field.t) ->
          let devices = List.assoc f.Field.name partition.Partition.replicated_inputs in
          if List.mem device devices && List.length (Program.field_axes p f.Field.name) = rank
          then begin
            let consumers =
              List.filter (fun c -> device_of c = device) (Program.consumers p f.Field.name)
            in
            if consumers <> [] then emit_reader buf p f consumers
          end)
        p.Program.inputs;
      (* Stencil kernels. *)
      List.iter
        (fun (s : Stencil.t) ->
          let name = s.Stencil.name in
          let consumers = Program.consumers p name in
          let local_consumers = List.filter (fun c -> device_of c = device) consumers in
          let remote_out = List.filter (fun c -> device_of c <> device) consumers in
          let remote_in =
            List.filter_map
              (fun field ->
                match Program.find_stencil p field with
                | Some _ when device_of field <> device -> Some (field, device_of field)
                | Some _ | None -> None)
              (Stencil.input_fields s)
          in
          emit_stencil_kernel buf p analysis s ~remote_in ~local_consumers
            ~remote_out
            ~writes_memory:(List.exists (String.equal name) p.Program.outputs))
        local_stencils;
      (* Writers for outputs produced here. *)
      List.iter (fun o -> if is_local o then emit_writer buf p o) p.Program.outputs;
      {
        device;
        filename = Printf.sprintf "%s_device%d.cl" p.Program.name device;
        source = Buffer.contents buf;
      })
    (Sf_support.Util.range partition.Partition.num_devices)

let host_source_unchecked ?partition (p : Program.t) =
  let partition = match partition with Some pt -> pt | None -> Partition.single_device p in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "// Host code for %s over %d device(s)\n" p.Program.name partition.Partition.num_devices;
  add "#include <CL/cl.h>\n\nint main(void) {\n";
  List.iter
    (fun (f : Field.t) ->
      let devices = List.assoc f.Field.name partition.Partition.replicated_inputs in
      let bytes = Field.size_bytes f ~shape:p.Program.shape in
      List.iter
        (fun d ->
          add "  cl_mem buf_%s_dev%d = clCreateBuffer(ctx[%d], CL_MEM_READ_ONLY, %d, NULL, NULL);\n"
            f.Field.name d d bytes;
          add "  clEnqueueWriteBuffer(queue[%d], buf_%s_dev%d, CL_TRUE, 0, %d, host_%s, 0, NULL, NULL); // replicate\n"
            d f.Field.name d bytes f.Field.name)
        devices)
    p.Program.inputs;
  List.iter
    (fun o ->
      let d = Partition.placement_fn partition o in
      add "  cl_mem buf_%s = clCreateBuffer(ctx[%d], CL_MEM_WRITE_ONLY, %d, NULL, NULL);\n" o d
        (Program.cells p * Dtype.size_bytes p.Program.dtype))
    p.Program.outputs;
  add "  // launch reader/writer kernels; autorun stencil kernels start on configuration\n";
  List.iter
    (fun (f : Field.t) ->
      List.iter
        (fun d -> add "  clEnqueueTask(queue[%d], kernel_read_%s, 0, NULL, NULL);\n" d f.Field.name)
        (List.assoc f.Field.name partition.Partition.replicated_inputs))
    p.Program.inputs;
  List.iter
    (fun o ->
      let d = Partition.placement_fn partition o in
      add "  clEnqueueTask(queue[%d], kernel_write_%s, 0, NULL, NULL);\n" d o;
      add "  clEnqueueReadBuffer(queue[%d], buf_%s, CL_TRUE, 0, %d, host_%s, 0, NULL, NULL);\n" d o
        (Program.cells p * Dtype.size_bytes p.Program.dtype)
        o)
    p.Program.outputs;
  add "  return 0;\n}\n";
  Buffer.contents buf

module Diag = Sf_support.Diag

let validation_diags p =
  match Program.validate p with
  | Ok () -> []
  | Error msgs -> List.map (Diag.error ~code:Diag.Code.validation) msgs

let checked f p =
  match validation_diags p with
  | [] -> (
      try Ok (f p)
      with Invalid_argument m | Failure m ->
        Error [ Diag.errorf ~code:Diag.Code.codegen "code generation failed: %s" m ])
  | ds -> Error ds

let generate ?partition p = checked (generate_unchecked ?partition) p
let host_source ?partition p = checked (host_source_unchecked ?partition) p
