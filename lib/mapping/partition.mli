(** Mapping stencil programs to multiple devices (paper, Sec. III-B,
    Fig. 5).

    When a program exceeds one device's logic, on-chip memory, or off-chip
    bandwidth, the DAG is split across a chain of devices: stencil units
    are assigned to devices, inter-stencil edges crossing the cut become
    network (SMI) streams, and off-chip input fields are replicated into
    the DRAM of every device whose stencils read them. *)

type t = {
  num_devices : int;
  device_of : (string * int) list;  (** Per-stencil device index. *)
  replicated_inputs : (string * int list) list;
      (** Input field -> devices holding a DRAM copy. *)
  cross_edges : ((string * string) * (int * int)) list;
      (** Dataflow edges that cross devices, with their endpoints. *)
  per_device_usage : Sf_models.Resource.usage list;
}

val greedy :
  ?ceiling:float ->
  ?max_devices:int ->
  device:Sf_models.Device.t ->
  Sf_ir.Program.t ->
  (t, Sf_support.Diag.t) result
(** Topological greedy bin packing: fill the current device until the
    next stencil unit no longer fits, then start the next one. Inputs are
    replicated wherever consumed. Fails (diagnostic code [SF0501]) when
    one stencil alone exceeds a device or more than [max_devices]
    (default 8, the testbed size) are needed. *)

val single_device : Sf_ir.Program.t -> t
(** Everything on device 0 (no resource check). *)

val contiguous : devices:int -> Sf_ir.Program.t -> (t, Sf_support.Diag.t) result
(** Split the topological order into [devices] even contiguous chunks,
    without a resource check — for forcing a multi-device mapping (and
    thus the parallel simulator) on programs small enough that the
    resource-driven partitioners keep them on one device. Uses
    [min devices stencils] devices; fails ([SF0501]) when
    [devices < 1]. *)

val placement_fn : t -> string -> int
(** Adapter for {!Sf_sim.Engine}'s [placement] argument. *)

val validate : Sf_ir.Program.t -> t -> (unit, string list) result
(** Every stencil assigned exactly once to an existing device; cross-edge
    list consistent with the assignment; every consumed input replicated
    on the consuming devices. *)

val hop_demand_bytes_per_cycle : Sf_ir.Program.t -> t -> hop:int -> float
(** Bytes per cycle that must cross between devices [hop] and [hop + 1]
    when every stream moves one word per cycle: the sum over crossing
    edges of vector width times element size (streams spanning several
    hops load every hop in between — the chain topology of Sec. VIII-B). *)

val network_feasible : Sf_ir.Program.t -> t -> device:Sf_models.Device.t -> bool
(** Whether every hop's demand fits in the link bandwidth at one word per
    cycle (the constraint that capped distributed vectorization in
    Sec. VIII-C). *)

val pp : Format.formatter -> t -> unit

val balanced :
  ?ceiling:float ->
  ?max_devices:int ->
  device:Sf_models.Device.t ->
  Sf_ir.Program.t ->
  (t, Sf_support.Diag.t) result
(** Like {!greedy}, but balances load: among contiguous topological
    splits into the minimum feasible number of devices, choose the one
    minimizing the worst per-device utilization (dynamic programming).
    Balanced cuts leave headroom on every device — important in practice
    since highly utilized FPGAs fail timing. *)
