open Sf_ir
module Device = Sf_models.Device
module Resource = Sf_models.Resource
module Memory_model = Sf_models.Memory_model

type evaluation = {
  vector_width : int;
  modeled_ops_per_s : float;
  bandwidth_bound : bool;
  fits : bool;
  network_ok : bool;
}

let evaluate ?(devices = 1) ~device (p : Program.t) w =
  let p = Program.with_vector_width p w in
  Program.validate_exn p;
  let counts = Sf_analysis.Op_count.of_program p in
  let flops_per_cycle = float_of_int (counts.Sf_analysis.Op_count.flops_per_cell * w) in
  let demand_bytes =
    float_of_int
      (Sf_analysis.Op_count.streaming_operands_per_cycle p * Dtype.size_bytes p.Program.dtype)
  in
  let cap_bytes = Memory_model.bytes_per_cycle_cap device ~vectorized:(w > 1) in
  let bandwidth_bound = demand_bytes > cap_bytes in
  let throughput = if bandwidth_bound then cap_bytes /. demand_bytes else 1. in
  let usage = Resource.of_program p in
  (* Budget scales with the device count for pre-partitioned estimates. *)
  let budget_device =
    {
      device with
      Device.alm = device.Device.alm * devices;
      ff = device.Device.ff * devices;
      m20k = device.Device.m20k * devices;
      dsp = device.Device.dsp * devices;
    }
  in
  let fits = Resource.fits budget_device usage in
  let network_ok =
    devices = 1
    ||
    let topo = Sf_smi.Smi.chain ~devices ~links_per_hop:device.Device.links_per_hop in
    w
    <= Sf_smi.Smi.max_vector_width topo device
         ~element_bytes:(Dtype.size_bytes p.Program.dtype) ~streams_per_hop:1
  in
  let modeled =
    if fits && network_ok then
      flops_per_cycle *. throughput *. device.Device.frequency_hz
    else 0.
  in
  { vector_width = w; modeled_ops_per_s = modeled; bandwidth_bound; fits; network_ok }

let choose ?devices ?(max_width = 16) ?(jobs = 1) ~device p =
  let widths = Sf_analysis.Vectorize.legal_widths p ~max:max_width in
  (* Each width is an independent model evaluation; [map_list] preserves
     the width order, so the sweep table is identical for any [jobs]. *)
  let sweep =
    Sf_support.Executor.with_pool ~jobs (fun pool ->
        Sf_support.Executor.map_list pool (evaluate ?devices ~device p) widths)
  in
  let feasible = List.filter (fun e -> e.fits && e.network_ok) sweep in
  match feasible with
  | [] -> invalid_arg "Autotune.choose: no vector width fits the device"
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc e -> if e.modeled_ops_per_s > acc.modeled_ops_per_s then e else acc)
          first rest
      in
      (best, sweep)
