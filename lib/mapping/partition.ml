open Sf_ir
module Resource = Sf_models.Resource

type t = {
  num_devices : int;
  device_of : (string * int) list;
  replicated_inputs : (string * int list) list;
  cross_edges : ((string * string) * (int * int)) list;
  per_device_usage : Resource.usage list;
}

let device_lookup t name =
  match List.assoc_opt name t.device_of with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Partition: stencil %s is not assigned" name)

let derive_metadata (p : Program.t) device_of num_devices per_device_usage =
  let lookup name = List.assoc name device_of in
  let replicated_inputs =
    List.map
      (fun (f : Field.t) ->
        let devices =
          Program.consumers p f.Field.name |> List.map lookup |> List.sort_uniq compare
        in
        (f.Field.name, devices))
      p.Program.inputs
  in
  let cross_edges =
    List.concat_map
      (fun (s : Stencil.t) ->
        let dst = s.Stencil.name in
        List.filter_map
          (fun field ->
            match Program.find_stencil p field with
            | Some _ when lookup field <> lookup dst ->
                Some ((field, dst), (lookup field, lookup dst))
            | Some _ | None -> None)
          (Stencil.input_fields s))
      p.Program.stencils
  in
  { num_devices; device_of; replicated_inputs; cross_edges; per_device_usage }

let single_device (p : Program.t) =
  let device_of = List.map (fun s -> (s.Stencil.name, 0)) p.Program.stencils in
  derive_metadata p device_of 1 [ Resource.of_program p ]

let greedy ?(ceiling = 0.85) ?(max_devices = 8) ~device (p : Program.t) =
  Program.validate_exn p;
  (* Per-device fixed overhead: the memory interface for the streams that
     terminate there. Approximated by charging the whole program's
     interface cost to every device — conservative but simple. *)
  let order = Program.topological_stencils p in
  let exception Unsplittable of string in
  try
    let assignments = ref [] in
    let device_usages = ref [] in
    let current = ref Resource.zero in
    let current_id = ref 0 in
    List.iter
      (fun (s : Stencil.t) ->
        let u = Resource.of_stencil p s in
        if not (Resource.fits ~ceiling device u) then
          raise
            (Unsplittable
               (Printf.sprintf "stencil %s alone exceeds device resources" s.Stencil.name));
        let candidate = Resource.add !current u in
        if Resource.fits ~ceiling device candidate then current := candidate
        else begin
          device_usages := !current :: !device_usages;
          incr current_id;
          if !current_id >= max_devices then
            raise
              (Unsplittable
                 (Printf.sprintf "program needs more than %d devices" max_devices));
          current := u
        end;
        assignments := (s.Stencil.name, !current_id) :: !assignments)
      order;
    device_usages := !current :: !device_usages;
    let device_of = List.rev !assignments in
    Ok (derive_metadata p device_of (!current_id + 1) (List.rev !device_usages))
  with Unsplittable m -> Error (Sf_support.Diag.error ~code:Sf_support.Diag.Code.partition m)

let contiguous ~devices (p : Program.t) =
  if devices < 1 then
    Error
      (Sf_support.Diag.errorf ~code:Sf_support.Diag.Code.partition
         "contiguous partition needs at least 1 device, got %d" devices)
  else begin
    Program.validate_exn p;
    let order = Array.of_list (Program.topological_stencils p) in
    let n = Array.length order in
    let d = min devices n in
    (* Stencil i of n goes to segment i*d/n: even contiguous chunks of
       the topological order, so every cut is a chain hop. *)
    let device_of =
      List.init n (fun i -> (order.(i).Stencil.name, i * d / n))
    in
    let per_device =
      List.map
        (fun k ->
          List.fold_left
            (fun acc (name, k') ->
              if k' = k then
                Resource.add acc
                  (Resource.of_stencil p (Option.get (Program.find_stencil p name)))
              else acc)
            Resource.zero device_of)
        (Sf_support.Util.range d)
    in
    Ok (derive_metadata p device_of d per_device)
  end

let placement_fn t name = device_lookup t name

let validate (p : Program.t) t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun (s : Stencil.t) ->
      match List.assoc_opt s.Stencil.name t.device_of with
      | None -> err "stencil %s unassigned" s.Stencil.name
      | Some d when d < 0 || d >= t.num_devices ->
          err "stencil %s assigned to out-of-range device %d" s.Stencil.name d
      | Some _ -> ())
    p.Program.stencils;
  if !errors = [] then begin
    List.iter
      (fun (s : Stencil.t) ->
        let dst = s.Stencil.name in
        let dd = List.assoc dst t.device_of in
        List.iter
          (fun field ->
            match Program.find_stencil p field with
            | Some _ ->
                let sd = List.assoc field t.device_of in
                let listed = List.mem_assoc (field, dst) t.cross_edges in
                if sd <> dd && not listed then
                  err "edge %s -> %s crosses devices but is not listed" field dst;
                if sd = dd && listed then err "edge %s -> %s listed but does not cross" field dst
            | None -> (
                match List.assoc_opt field t.replicated_inputs with
                | Some devices when List.mem dd devices -> ()
                | Some _ | None ->
                    if Program.is_input p field then
                      err "input %s is not replicated on device %d for %s" field dd dst))
          (Stencil.input_fields s))
      p.Program.stencils
  end;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let hop_demand_bytes_per_cycle (p : Program.t) t ~hop =
  let element_bytes = Dtype.size_bytes p.Program.dtype in
  let word_bytes = p.Program.vector_width * element_bytes in
  List.fold_left
    (fun acc ((_, _), (src, dst)) ->
      let lo = min src dst and hi = max src dst in
      if hop >= lo && hop < hi then acc +. float_of_int word_bytes else acc)
    0. t.cross_edges

let network_feasible (p : Program.t) t ~device =
  let capacity = Sf_models.Device.link_bytes_per_cycle device in
  List.for_all
    (fun hop -> hop_demand_bytes_per_cycle p t ~hop <= capacity)
    (Sf_support.Util.range (max 0 (t.num_devices - 1)))

let pp fmt t =
  Format.fprintf fmt "partition over %d device(s):@." t.num_devices;
  List.iter (fun (s, d) -> Format.fprintf fmt "  %s -> device %d@." s d) t.device_of;
  List.iter
    (fun ((u, v), (d1, d2)) -> Format.fprintf fmt "  remote stream %s -> %s (%d -> %d)@." u v d1 d2)
    t.cross_edges

(* Dominant utilization fraction of a usage on the device. *)
let dominant_utilization device usage =
  let a, f, m, d = Sf_models.Resource.utilization device usage in
  Float.max (Float.max a f) (Float.max m d)

let balanced ?(ceiling = 0.85) ?(max_devices = 8) ~device (p : Program.t) =
  Program.validate_exn p;
  let order = Array.of_list (Program.topological_stencils p) in
  let n = Array.length order in
  let usages = Array.map (Resource.of_stencil p) order in
  (* prefix.(i) = combined usage of stencils 0..i-1. *)
  let prefix = Array.make (n + 1) Resource.zero in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- Resource.add prefix.(i) usages.(i)
  done;
  let minus a b =
    {
      Resource.alm = a.Resource.alm - b.Resource.alm;
      ff = a.Resource.ff - b.Resource.ff;
      m20k = a.Resource.m20k - b.Resource.m20k;
      dsp = a.Resource.dsp - b.Resource.dsp;
    }
  in
  let segment_cost i j = dominant_utilization device (minus prefix.(j) prefix.(i)) in
  (* Minimum feasible device count, then balance across exactly that
     many. dp.(j).(k): best worst-segment cost splitting the first j
     stencils into k segments; cut.(j).(k) records the split point. *)
  let feasible d =
    let dp = Array.make_matrix (n + 1) (d + 1) infinity in
    let cut = Array.make_matrix (n + 1) (d + 1) (-1) in
    dp.(0).(0) <- 0.;
    for j = 1 to n do
      for k = 1 to min d j do
        for i = k - 1 to j - 1 do
          let candidate = Float.max dp.(i).(k - 1) (segment_cost i j) in
          if candidate < dp.(j).(k) then begin
            dp.(j).(k) <- candidate;
            cut.(j).(k) <- i
          end
        done
      done
    done;
    if dp.(n).(d) <= ceiling then Some (dp.(n).(d), cut) else None
  in
  let rec first_feasible d =
    if d > max_devices then
      Error
        (Sf_support.Diag.errorf ~code:Sf_support.Diag.Code.partition
           "program needs more than %d devices" max_devices)
    else match feasible d with Some (cost, cut) -> Ok (d, cost, cut) | None -> first_feasible (d + 1)
  in
  match first_feasible 1 with
  | Error m -> Error m
  | Ok (devices, _, cut) ->
      (* Recover the cut points. *)
      let boundaries = Array.make (devices + 1) 0 in
      boundaries.(devices) <- n;
      let rec back j k = if k > 0 then begin
          boundaries.(k - 1) <- cut.(j).(k);
          back cut.(j).(k) (k - 1)
        end
      in
      back n devices;
      let device_of =
        List.concat
          (List.map
             (fun k ->
               List.map
                 (fun idx -> (order.(idx).Stencil.name, k))
                 (List.filter
                    (fun idx -> idx >= boundaries.(k) && idx < boundaries.(k + 1))
                    (Sf_support.Util.range n)))
             (Sf_support.Util.range devices))
      in
      let per_device =
        List.map
          (fun k -> minus prefix.(boundaries.(k + 1)) prefix.(boundaries.(k)))
          (Sf_support.Util.range devices)
      in
      Ok (derive_metadata p device_of devices per_device)
