(** Vectorization-width selection (paper, Sec. IV-C and IX-B).

    Choosing W is the main tuning knob StencilFlow exposes: too narrow
    wastes bandwidth and logic efficiency, too wide exceeds the memory
    system, the network (for multi-device programs), or the device's
    resources. The paper picks W = 8 for the bandwidth-bound horizontal
    diffusion (saturating the 58.3 GB/s effective bandwidth) and W = 16
    for the infinite-bandwidth variant; this module automates that
    reasoning using the calibrated device models. *)

type evaluation = {
  vector_width : int;
  modeled_ops_per_s : float;
  bandwidth_bound : bool;  (** Memory demand exceeds the effective cap. *)
  fits : bool;  (** Resource estimate within the device ceiling. *)
  network_ok : bool;  (** Cross-device streams sustainable (if any). *)
}

val evaluate :
  ?devices:int -> device:Sf_models.Device.t -> Sf_ir.Program.t -> int -> evaluation
(** Model one candidate width: throughput = W cells/cycle scaled down by
    the bandwidth ratio when demand exceeds the effective cap, zeroed
    when the design does not fit. *)

val choose :
  ?devices:int ->
  ?max_width:int ->
  ?jobs:int ->
  device:Sf_models.Device.t ->
  Sf_ir.Program.t ->
  evaluation * evaluation list
(** Evaluate every legal power-of-two width up to [max_width] (default
    16) and return the best feasible one plus the full sweep. [jobs]
    (default 1) evaluates the candidate widths concurrently on an
    {!Sf_support.Executor} pool; the sweep stays in width order, so the
    result is identical for every [jobs] value. Raises
    [Invalid_argument] when no width fits. *)
