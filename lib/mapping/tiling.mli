(** Spatial tiling (paper, Sec. IX-D).

    When the domain grows, internal and delay buffer sizes — proportional
    to (D-1)-dimensional slices of the iteration space — eventually exceed
    on-chip memory. Spatial tiling processes the domain in tiles whose
    inner extents bound the buffer sizes, at the price of {e redundant
    computation} at tile boundaries: each tile must be extended by a halo
    equal to the program's influence radius, which grows with the DAG
    depth, so the overhead is proportional to the DAG depth times the
    tile's surface-to-volume ratio.

    [run_tiled] executes each (halo-extended) tile independently and
    stitches the cores together; because the halo covers the full
    influence radius, the result equals the untiled execution exactly —
    including boundary-condition behaviour at true domain faces, where
    the extended tile is clipped to the domain. *)

type tile = {
  core_origin : int list;
  core_extent : int list;
  ext_origin : int list;  (** Core minus halo, clipped to the domain. *)
  ext_extent : int list;
}

type t = {
  program : Sf_ir.Program.t;
  tile_shape : int list;
  halo : int list;
      (** Per-axis influence radius of the whole DAG: the farthest any
          output cell's value depends on input cells, accumulated along
          paths (each stencil adds its own per-axis offset reach). *)
  tiles : tile list;
  redundancy : float;  (** Extra cells computed / useful cells. *)
}

val influence_radius : Sf_ir.Program.t -> int list
(** Per-axis reach of the whole program. *)

val plan : Sf_ir.Program.t -> tile_shape:int list -> t
(** Tile the iteration space; the last tile per axis may be partial.
    Raises [Invalid_argument] on rank mismatch or non-positive tiles. *)

val buffer_elements_per_tile : t -> int
(** On-chip buffering required when processing one tile at a time
    (internal + delay buffers at the tile's inner extents) — compare with
    {!Sf_analysis.Delay_buffer.total_fast_memory_elements} of the untiled
    program to see the capacity saving. *)

val run_tiled :
  t -> inputs:(string * Sf_reference.Tensor.t) list -> (string * Sf_reference.Tensor.t) list
(** Reference-execute every tile and stitch the cores; returns the
    program outputs. *)

val pp : Format.formatter -> t -> unit
