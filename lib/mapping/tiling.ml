open Sf_ir
module Tensor = Sf_reference.Tensor

type tile = {
  core_origin : int list;
  core_extent : int list;
  ext_origin : int list;
  ext_extent : int list;
}

type t = {
  program : Program.t;
  tile_shape : int list;
  halo : int list;
  tiles : tile list;
  redundancy : float;
}

let influence_radius = Sf_analysis.Influence.radius

let plan (p : Program.t) ~tile_shape =
  let rank = Program.rank p in
  if List.length tile_shape <> rank then invalid_arg "Tiling.plan: rank mismatch";
  List.iter (fun t -> if t <= 0 then invalid_arg "Tiling.plan: non-positive tile extent") tile_shape;
  let halo = influence_radius p in
  let shape = p.Program.shape in
  (* Per-axis list of (core_origin, core_extent). *)
  let axis_segments extent tile =
    let rec go origin acc =
      if origin >= extent then List.rev acc
      else go (origin + tile) ((origin, min tile (extent - origin)) :: acc)
    in
    go 0 []
  in
  let per_axis = List.map2 axis_segments shape tile_shape in
  let rec cartesian = function
    | [] -> [ [] ]
    | axis :: rest ->
        let tails = cartesian rest in
        List.concat_map (fun seg -> List.map (fun tail -> seg :: tail) tails) axis
  in
  let tiles =
    List.map
      (fun segments ->
        let core_origin = List.map fst segments in
        let core_extent = List.map snd segments in
        let ext_origin = List.map2 (fun (o, _) h -> max 0 (o - h)) segments halo in
        let ext_end =
          List.map2
            (fun ((o, e), h) bound -> min bound (o + e + h))
            (List.combine segments halo)
            shape
        in
        let ext_extent = List.map2 ( - ) ext_end ext_origin in
        { core_origin; core_extent; ext_origin; ext_extent })
      (cartesian per_axis)
  in
  let cells extents = List.fold_left ( * ) 1 extents in
  let useful = List.fold_left (fun acc t -> acc + cells t.core_extent) 0 tiles in
  let computed = List.fold_left (fun acc t -> acc + cells t.ext_extent) 0 tiles in
  {
    program = p;
    tile_shape;
    halo;
    tiles;
    redundancy = float_of_int (computed - useful) /. float_of_int useful;
  }

let sub_program (p : Program.t) extent =
  Program.make ~dtype:p.Program.dtype ~vector_width:1
    ~name:(p.Program.name ^ "_tile")
    ~shape:extent ~inputs:p.Program.inputs ~outputs:p.Program.outputs p.Program.stencils

let buffer_elements_per_tile (t : t) =
  let p = t.program in
  let interior_extent =
    List.map2
      (fun tile_e (h, bound) -> min bound (tile_e + (2 * h)))
      t.tile_shape
      (List.combine t.halo p.Program.shape)
  in
  let sub = sub_program p interior_extent in
  Sf_analysis.Delay_buffer.total_fast_memory_elements (Sf_analysis.Delay_buffer.analyze sub)

let project axes values = List.map (fun a -> List.nth values a) axes

let run_tiled (t : t) ~inputs =
  let p = t.program in
  let outputs =
    List.map (fun o -> (o, Tensor.create p.Program.shape)) p.Program.outputs
  in
  List.iter
    (fun tile ->
      let sub = sub_program p tile.ext_extent in
      let sub_inputs =
        List.map
          (fun (f : Field.t) ->
            let tensor =
              match List.assoc_opt f.Field.name inputs with
              | Some tensor -> tensor
              | None ->
                  raise
                    (Sf_reference.Interp.Runtime_error
                       (Printf.sprintf "missing input %s" f.Field.name))
            in
            let value =
              if Field.is_scalar f then tensor
              else
                Tensor.slice tensor
                  ~origin:(project f.Field.axes tile.ext_origin)
                  ~extent:(project f.Field.axes tile.ext_extent)
            in
            (f.Field.name, value))
          p.Program.inputs
      in
      let results = Sf_reference.Interp.run sub ~inputs:sub_inputs in
      List.iter
        (fun (name, dst) ->
          let (r : Sf_reference.Interp.result) = List.assoc name results in
          Tensor.blit_region ~src:r.Sf_reference.Interp.tensor
            ~src_origin:(List.map2 ( - ) tile.core_origin tile.ext_origin)
            ~dst ~dst_origin:tile.core_origin ~extent:tile.core_extent)
        outputs)
    t.tiles;
  outputs

let pp fmt t =
  Format.fprintf fmt "tiling of %s: tile %s, halo [%s], %d tiles, %.1f%% redundant computation"
    t.program.Program.name
    (Sf_support.Util.string_concat_map "x" string_of_int t.tile_shape)
    (Sf_support.Util.string_concat_map "," string_of_int t.halo)
    (List.length t.tiles)
    (100. *. t.redundancy)
