(** Stencil programs: DAGs of stencil operations on a structured grid
    (paper, Sec. II and Fig. 2).

    Nodes are off-chip input fields and stencil operations; edges are data
    dependencies. Every stencil iterates over the same iteration space
    [shape] (1, 2 or 3 dimensions). [outputs] lists the stencil results
    that are written back to off-chip memory; intermediate results flow
    producer-to-consumer without a memory round trip (Sec. IV). *)

module G : module type of Sf_support.Dgraph.Make (String)

type node = Input of Field.t | Op of Stencil.t

type t = {
  name : string;
  shape : int list;  (** Iteration-space extents, slowest-varying first. *)
  dtype : Dtype.t;  (** Data type of stencil results. *)
  vector_width : int;  (** W of Sec. IV-C; divides the innermost extent. *)
  inputs : Field.t list;
  outputs : string list;
  stencils : Stencil.t list;
}

val make :
  ?dtype:Dtype.t ->
  ?vector_width:int ->
  name:string ->
  shape:int list ->
  inputs:Field.t list ->
  outputs:string list ->
  Stencil.t list ->
  t

val rank : t -> int
val cells : t -> int
(** Product of the iteration-space extents. *)

val strides : t -> int list
(** Row-major strides of the full iteration space; innermost is 1. *)

val find_stencil : t -> string -> Stencil.t option
val find_input : t -> string -> Field.t option
val is_input : t -> string -> bool

val field_axes : t -> string -> int list
(** Axes spanned by a named field: an input's declared axes, or all axes
    for a stencil result. Raises [Not_found] for unknown names. *)

val producer_rank : t -> string -> int

val graph : t -> (node, unit) G.t
(** The dependency DAG. An edge [u -> v] means stencil [v] reads the field
    produced by (or stored in) [u]. *)

val consumers : t -> string -> string list
(** Stencils reading a given field, in program order. *)

val validate : t -> (unit, string list) result
(** Check structural well-formedness: name uniqueness, access resolution,
    offset ranks, axis declarations, acyclicity, output liveness, vector
    width divisibility, and boundary-condition references. Returns all
    diagnostics, not just the first. *)

val validate_exn : t -> unit
(** Raises [Invalid_argument] with the joined diagnostics. *)

val topological_stencils : t -> Stencil.t list
(** Stencils in dependency order. Raises if the program has a cycle. *)

val with_vector_width : t -> int -> t
val pp : Format.formatter -> t -> unit
(** Human-readable multi-line summary. *)

val body_fingerprint : Expr.body -> Sf_support.Fingerprint.t
(** Structural content digest of a stencil body, computed over the
    hash-consed DAG so shared subexpressions are digested once.
    Agrees with [Expr.equal_body]: equal bodies digest equal; any
    semantic change (constant bit-flip, operator, access offset,
    let name) digests different. *)

val fingerprint : t -> Sf_support.Fingerprint.t
(** Content digest of the whole program — the cache key component used
    by the content-addressed pass cache (see docs/PIPELINE.md). *)
