(* Hash-consed expression DAG: the canonical sharing-aware form of
   Expr trees. Structurally identical subexpressions are represented by
   one node with a unique id, so equality is an integer comparison and
   every analysis can choose between *tree* semantics (the fully inlined
   expression, as the frontend wrote it) and *work* semantics (each
   distinct value computed once, as the spatial pipeline executes it). *)

type t = { id : int; tree_size : int; node : node }

and node =
  | Const of float
  | Access of { field : string; offsets : int list }
  | Var of string
  | Unary of Expr.unop * t
  | Binary of Expr.binop * t * t
  | Select of { cond : t; if_true : t; if_false : t }
  | Call of Expr.func * t list

type view = node =
  | Const of float
  | Access of { field : string; offsets : int list }
  | Var of string
  | Unary of Expr.unop * t
  | Binary of Expr.binop * t * t
  | Select of { cond : t; if_true : t; if_false : t }
  | Call of Expr.func * t list

(* Keys identify a node by its shape and its children's ids. Constants
   are keyed on their bit pattern so NaN payloads and -0.0 vs 0.0 stay
   distinct values (Expr.equal would conflate NaNs; the DAG must not
   merge values the hardware distinguishes). *)
type key =
  | KConst of int64
  | KAccess of string * int list
  | KVar of string
  | KUnary of Expr.unop * int
  | KBinary of Expr.binop * int * int
  | KSelect of int * int * int
  | KCall of Expr.func * int list

(* The memo table is domain-local: the parallel simulator builds DAGs
   from several OCaml 5 domains at once (one per simulated device), and
   a shared table would race. Nodes therefore must not cross domains —
   every current consumer builds, analyses and discards its DAG within
   one domain; the persistent program representation stays Expr.body. *)
type state = { table : (key, t) Hashtbl.t; mutable next_id : int }

let state_key =
  Domain.DLS.new_key (fun () -> { table = Hashtbl.create 1024; next_id = 0 })

let view t = t.node
let id t = t.id
let equal a b = a.id = b.id
let compare a b = Stdlib.compare a.id b.id
let hash t = t.id
let tree_size t = t.tree_size

(* Sizes of repeatedly substituted bodies grow multiplicatively;
   saturate instead of wrapping. *)
let sat_add a b =
  let s = a + b in
  if s < a || s < b then max_int else s

let key_of node =
  match node with
  | Const c -> KConst (Int64.bits_of_float c)
  | Access { field; offsets } -> KAccess (field, offsets)
  | Var v -> KVar v
  | Unary (op, x) -> KUnary (op, x.id)
  | Binary (op, x, y) -> KBinary (op, x.id, y.id)
  | Select { cond; if_true; if_false } -> KSelect (cond.id, if_true.id, if_false.id)
  | Call (f, args) -> KCall (f, List.map (fun a -> a.id) args)

let node_tree_size node =
  match node with
  | Const _ | Access _ | Var _ -> 1
  | Unary (_, x) -> sat_add 1 x.tree_size
  | Binary (_, x, y) -> sat_add 1 (sat_add x.tree_size y.tree_size)
  | Select { cond; if_true; if_false } ->
      sat_add 1 (sat_add cond.tree_size (sat_add if_true.tree_size if_false.tree_size))
  | Call (_, args) -> List.fold_left (fun acc a -> sat_add acc a.tree_size) 1 args

let make node =
  let st = Domain.DLS.get state_key in
  let key = key_of node in
  match Hashtbl.find_opt st.table key with
  | Some t -> t
  | None ->
      let t = { id = st.next_id; tree_size = node_tree_size node; node } in
      st.next_id <- st.next_id + 1;
      Hashtbl.add st.table key t;
      t

let const c = make (Const c)
let access ~field ~offsets = make (Access { field; offsets })
let var v = make (Var v)
let unary op x = make (Unary (op, x))
let binary op x y = make (Binary (op, x, y))
let select ~cond ~if_true ~if_false = make (Select { cond; if_true; if_false })
let call f args = make (Call (f, args))

let rec of_expr ?(env = fun _ -> None) (e : Expr.t) =
  match e with
  | Expr.Const c -> const c
  | Expr.Access { field; offsets } -> access ~field ~offsets
  | Expr.Var v -> ( match env v with Some t -> t | None -> var v)
  | Expr.Unary (op, x) -> unary op (of_expr ~env x)
  | Expr.Binary (op, x, y) -> binary op (of_expr ~env x) (of_expr ~env y)
  | Expr.Select { cond; if_true; if_false } ->
      select ~cond:(of_expr ~env cond) ~if_true:(of_expr ~env if_true)
        ~if_false:(of_expr ~env if_false)
  | Expr.Call (f, args) -> call f (List.map (of_expr ~env) args)

(* Let bindings are resolved into the graph: a variable reference becomes
   a (shared) edge to the bound node, so textual sharing written by the
   programmer and structural sharing discovered by hash-consing end up in
   the same representation. Unbound variables stay as [Var] leaves. *)
let of_body_named (b : Expr.body) =
  let bound : (string, t) Hashtbl.t = Hashtbl.create 8 in
  let env v = Hashtbl.find_opt bound v in
  let names =
    List.map
      (fun (name, e) ->
        let t = of_expr ~env e in
        Hashtbl.replace bound name t;
        (name, t))
      b.Expr.lets
  in
  (names, of_expr ~env b.Expr.result)

let of_body b = snd (of_body_named b)

(* Children are always created before their parents, so node ids are a
   topological order of every DAG (hash-cons hits return the original,
   older node). *)
let reachable root =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      (match t.node with
      | Const _ | Access _ | Var _ -> ()
      | Unary (_, x) -> go x
      | Binary (_, x, y) ->
          go x;
          go y
      | Select { cond; if_true; if_false } ->
          go cond;
          go if_true;
          go if_false
      | Call (_, args) -> List.iter go args);
      acc := t :: !acc
    end
  in
  go root;
  !acc

let topo root = List.sort compare (reachable root)
let work_size root = List.length (reachable root)

let to_expr root =
  let memo : (int, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some e -> e
    | None ->
        let e =
          match t.node with
          | Const c -> Expr.Const c
          | Access { field; offsets } -> Expr.Access { field; offsets }
          | Var v -> Expr.Var v
          | Unary (op, x) -> Expr.Unary (op, go x)
          | Binary (op, x, y) -> Expr.Binary (op, go x, go y)
          | Select { cond; if_true; if_false } ->
              Expr.Select
                { cond = go cond; if_true = go if_true; if_false = go if_false }
          | Call (f, args) -> Expr.Call (f, List.map go args)
        in
        Hashtbl.replace memo t.id e;
        e
  in
  go root

(* First-encounter order in a left-to-right DFS equals first-encounter
   order in the fully inlined tree, so this agrees with
   [Expr.accesses (Expr.inline_lets body)] — the internal-buffer and
   boundary analyses depend on that order. Hash-consing makes each
   distinct access a single node, so the visited set also deduplicates. *)
let accesses root =
  List.filter_map
    (fun t -> match t.node with Access { field; offsets } -> Some (field, offsets) | _ -> None)
    (List.rev (reachable root))

let free_vars root =
  List.filter_map
    (fun t -> match t.node with Var v -> Some v | _ -> None)
    (List.rev (reachable root))

let map_accesses f root =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some t' -> t'
    | None ->
        let t' =
          match t.node with
          | Access { field; offsets } -> f ~field ~offsets
          | Const _ | Var _ -> t
          | Unary (op, x) -> unary op (go x)
          | Binary (op, x, y) -> binary op (go x) (go y)
          | Select { cond; if_true; if_false } ->
              select ~cond:(go cond) ~if_true:(go if_true) ~if_false:(go if_false)
          | Call (g, args) -> call g (List.map go args)
        in
        Hashtbl.replace memo t.id t';
        t'
  in
  go root

let reads_data root =
  List.exists
    (fun t -> match t.node with Access _ | Var _ -> true | _ -> false)
    (reachable root)

(* Profile contribution of one node (mirrors Expr.op_profile's
   classification, including the data- vs constant-branch split). *)
let node_profile t =
  let p = Expr.empty_profile in
  match t.node with
  | Const _ | Access _ | Var _ -> p
  | Unary (Expr.Neg, _) -> { p with Expr.adds = 1 }
  | Unary (Expr.Not, _) -> p
  | Binary ((Expr.Add | Expr.Sub), _, _) -> { p with Expr.adds = 1 }
  | Binary (Expr.Mul, _, _) -> { p with Expr.muls = 1 }
  | Binary (Expr.Div, _, _) -> { p with Expr.divs = 1 }
  | Binary ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Eq | Expr.Ne), _, _) ->
      { p with Expr.compares = 1 }
  | Binary ((Expr.And | Expr.Or), _, _) -> p
  | Select { cond; _ } ->
      if reads_data cond then { p with Expr.data_branches = 1 }
      else { p with Expr.const_branches = 1 }
  | Call (Expr.Sqrt, _) -> { p with Expr.sqrts = 1 }
  | Call (Expr.Min, _) -> { p with Expr.mins = 1 }
  | Call (Expr.Max, _) -> { p with Expr.maxs = 1 }
  | Call ((Expr.Abs | Expr.Exp | Expr.Log | Expr.Pow | Expr.Sin | Expr.Cos | Expr.Floor
          | Expr.Ceil), _) ->
      { p with Expr.other_calls = 1 }

(* Work profile: every distinct node counted exactly once — the op count
   of the pipeline that computes each shared value a single time and fans
   it out. *)
let work_profile root =
  List.fold_left
    (fun acc t -> Expr.add_profile acc (node_profile t))
    Expr.empty_profile (reachable root)

let sat_add_profile (a : Expr.op_profile) (b : Expr.op_profile) =
  {
    Expr.adds = sat_add a.Expr.adds b.Expr.adds;
    muls = sat_add a.Expr.muls b.Expr.muls;
    divs = sat_add a.Expr.divs b.Expr.divs;
    sqrts = sat_add a.Expr.sqrts b.Expr.sqrts;
    mins = sat_add a.Expr.mins b.Expr.mins;
    maxs = sat_add a.Expr.maxs b.Expr.maxs;
    other_calls = sat_add a.Expr.other_calls b.Expr.other_calls;
    compares = sat_add a.Expr.compares b.Expr.compares;
    data_branches = sat_add a.Expr.data_branches b.Expr.data_branches;
    const_branches = sat_add a.Expr.const_branches b.Expr.const_branches;
  }

(* Tree profile: the fully inlined expression's counts — what a naive
   per-occurrence evaluation would execute. Saturating, like tree_size. *)
let tree_profile root =
  let memo : (int, Expr.op_profile) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some p -> p
    | None ->
        let own = node_profile t in
        let p =
          match t.node with
          | Const _ | Access _ | Var _ -> own
          | Unary (_, x) -> sat_add_profile own (go x)
          | Binary (_, x, y) -> sat_add_profile own (sat_add_profile (go x) (go y))
          | Select { cond; if_true; if_false } ->
              sat_add_profile own
                (sat_add_profile (go cond) (sat_add_profile (go if_true) (go if_false)))
          | Call (_, args) ->
              List.fold_left (fun acc a -> sat_add_profile acc (go a)) own args
        in
        Hashtbl.replace memo t.id p;
        p
  in
  go root

let is_leaf t = match t.node with Const _ | Access _ | Var _ -> true | _ -> false

(* Parent-edge reference counts over the reachable subgraph. Duplicate
   edges count separately — Binary (op, x, x) references x twice, and x
   is genuinely shared work — while a node occurring many times in the
   *tree* through a single shared parent has refcount 1 (fixing the
   nested-occurrence double counting of the string-keyed CSE). *)
let refcounts nodes root =
  let refs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump t = Hashtbl.replace refs t.id (1 + Option.value ~default:0 (Hashtbl.find_opt refs t.id)) in
  List.iter
    (fun t ->
      match t.node with
      | Const _ | Access _ | Var _ -> ()
      | Unary (_, x) -> bump x
      | Binary (_, x, y) ->
          bump x;
          bump y
      | Select { cond; if_true; if_false } ->
          bump cond;
          bump if_true;
          bump if_false
      | Call (_, args) -> List.iter bump args)
    nodes;
  bump root;
  refs

let shared_nodes root =
  let nodes = reachable root in
  let refs = refcounts nodes root in
  List.length
    (List.filter
       (fun t -> (not (is_leaf t)) && Option.value ~default:0 (Hashtbl.find_opt refs t.id) >= 2)
       nodes)

(* CSE as let-extraction: bind every non-leaf node referenced at least
   twice (and of at least [min_size] tree nodes) exactly once, in
   topological order so definitions only use earlier bindings. [keep]
   pins nodes to a given name (used by codegen to preserve the
   programmer's let names); kept nodes are extracted regardless of
   sharing or size. *)
let extract ?(min_size = 3) ?(prefix = "__cse") ?(keep = []) root =
  let nodes = topo root in
  let refs = refcounts nodes root in
  let kept_name : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let taken : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, t) ->
      if not (Hashtbl.mem kept_name t.id) then begin
        Hashtbl.replace kept_name t.id name;
        Hashtbl.replace taken name ()
      end)
    keep;
  let extracted =
    List.filter
      (fun t ->
        Hashtbl.mem kept_name t.id
        || ((not (is_leaf t))
           && Option.value ~default:0 (Hashtbl.find_opt refs t.id) >= 2
           && t.tree_size >= min_size
           && not (equal t root)))
      nodes
  in
  let name_of : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let counter = ref 0 in
  List.iter
    (fun t ->
      match Hashtbl.find_opt kept_name t.id with
      | Some name -> Hashtbl.replace name_of t.id name
      | None ->
          let rec fresh () =
            let name = Printf.sprintf "%s%d" prefix !counter in
            incr counter;
            if Hashtbl.mem taken name then fresh () else name
          in
          Hashtbl.replace name_of t.id (fresh ()))
    extracted;
  (* Render a node's expression, replacing extracted strict descendants
     by their variable. *)
  let render top =
    let rec go t =
      match Hashtbl.find_opt name_of t.id with
      | Some v when not (equal t top) -> Expr.Var v
      | _ -> (
          match t.node with
          | Const c -> Expr.Const c
          | Access { field; offsets } -> Expr.Access { field; offsets }
          | Var v -> Expr.Var v
          | Unary (op, x) -> Expr.Unary (op, go x)
          | Binary (op, x, y) -> Expr.Binary (op, go x, go y)
          | Select { cond; if_true; if_false } ->
              Expr.Select { cond = go cond; if_true = go if_true; if_false = go if_false }
          | Call (f, args) -> Expr.Call (f, List.map go args))
    in
    go top
  in
  let lets = List.map (fun t -> (Hashtbl.find name_of t.id, render t)) extracted in
  let result =
    match Hashtbl.find_opt name_of root.id with
    | Some v -> Expr.Var v
    | None -> render root
  in
  { Expr.lets; result }

let to_body ?min_size ?prefix root = extract ?min_size ?prefix root
