type t = {
  name : string;
  shape : int list;
  dtype : Dtype.t;
  vector_width : int;
  mutable inputs : Field.t list;
  mutable stencils : Stencil.t list;
  mutable outputs : string list;
}

let create ?(dtype = Dtype.F32) ?(vector_width = 1) ~name ~shape () =
  { name; shape; dtype; vector_width; inputs = []; stencils = []; outputs = [] }

let input b ?dtype ?axes name =
  let dtype = Option.value dtype ~default:b.dtype in
  let field = Field.make ~dtype ?axes ~name ~full_rank:(List.length b.shape) () in
  b.inputs <- b.inputs @ [ field ]

let stencil b ?boundary ?shrink ?(lets = []) name result =
  let body = { Expr.lets; result } in
  b.stencils <- b.stencils @ [ Stencil.make ?boundary ?shrink ~name body ]

let output b name = b.outputs <- b.outputs @ [ name ]

let finish b =
  let program =
    Program.make ~dtype:b.dtype ~vector_width:b.vector_width ~name:b.name ~shape:b.shape
      ~inputs:b.inputs ~outputs:b.outputs b.stencils
  in
  Program.validate_exn program;
  program

module E = struct
  let c f = Expr.Const f
  let i n = Expr.Const (float_of_int n)
  let acc field offsets = Expr.Access { field; offsets }
  let sc field = Expr.Access { field; offsets = [] }
  let var name = Expr.Var name
  let binary op a b = Expr.Binary (op, a, b)
  let ( +% ) = binary Expr.Add
  let ( -% ) = binary Expr.Sub
  let ( *% ) = binary Expr.Mul
  let ( /% ) = binary Expr.Div
  let ( <% ) = binary Expr.Lt
  let ( <=% ) = binary Expr.Le
  let ( >% ) = binary Expr.Gt
  let ( >=% ) = binary Expr.Ge
  let ( ==% ) = binary Expr.Eq
  let ( !=% ) = binary Expr.Ne
  let ( &&% ) = binary Expr.And
  let ( ||% ) = binary Expr.Or
  let neg e = Expr.Unary (Expr.Neg, e)
  let sel cond if_true if_false = Expr.Select { cond; if_true; if_false }
  let sqrt_ e = Expr.Call (Expr.Sqrt, [ e ])
  let abs_ e = Expr.Call (Expr.Abs, [ e ])
  let exp_ e = Expr.Call (Expr.Exp, [ e ])
  let log_ e = Expr.Call (Expr.Log, [ e ])
  let pow_ a b = Expr.Call (Expr.Pow, [ a; b ])
  let min_ a b = Expr.Call (Expr.Min, [ a; b ])
  let max_ a b = Expr.Call (Expr.Max, [ a; b ])

  let sum = function
    | [] -> invalid_arg "Builder.E.sum: empty list"
    | first :: rest -> List.fold_left ( +% ) first rest
end
