(** Hash-consed expression DAG — the canonical sharing-aware IR.

    Structurally identical subexpressions of an {!Expr.t} tree are
    represented by a single node with a unique id, making equality and
    hashing O(1) and letting every consumer distinguish two metrics:

    - {e tree} metrics describe the fully inlined expression (what the
      frontend wrote, what a per-occurrence evaluation would execute);
    - {e work} metrics count each distinct node exactly once (what the
      spatial pipeline computes: shared values are produced once and
      fanned out).

    Invariants:
    - node ids increase from children to parents, so sorting reachable
      nodes by id ({!topo}) is a topological order and the root has the
      maximal id;
    - constants are hash-consed on their IEEE-754 bit pattern, so NaN
      payloads and [-0.0] vs [0.0] are distinct nodes and no
      value-changing merge can happen;
    - the memo table is domain-local (OCaml 5 [Domain.DLS]): DAGs are
      cheap ephemeral views built, analysed and discarded within one
      domain. Nodes must not be shared across domains; the persistent
      program representation remains {!Expr.body}. *)

type t

type view =
  | Const of float
  | Access of { field : string; offsets : int list }
  | Var of string
  | Unary of Expr.unop * t
  | Binary of Expr.binop * t * t
  | Select of { cond : t; if_true : t; if_false : t }
  | Call of Expr.func * t list

val view : t -> view
val id : t -> int

val equal : t -> t -> bool
(** O(1): id comparison. Sound within one domain. *)

val compare : t -> t -> int
val hash : t -> int

(** {2 Smart constructors (hash-consing)} *)

val const : float -> t
val access : field:string -> offsets:int list -> t
val var : string -> t
val unary : Expr.unop -> t -> t
val binary : Expr.binop -> t -> t -> t
val select : cond:t -> if_true:t -> if_false:t -> t
val call : Expr.func -> t list -> t

(** {2 Conversions} *)

val of_expr : ?env:(string -> t option) -> Expr.t -> t
(** Build the DAG of a tree; [env] resolves [Var] leaves (unresolved
    variables stay [Var] nodes). *)

val of_body : Expr.body -> t
(** {!of_expr} with the body's let bindings resolved in order: both the
    programmer's explicit sharing (lets) and latent structural sharing
    collapse onto the same nodes. *)

val of_body_named : Expr.body -> (string * t) list * t
(** Like {!of_body} but also returns each let binding's node, in order —
    used by consumers that want to preserve the original names. *)

val to_expr : t -> Expr.t
(** The fully inlined tree (shared nodes duplicated per occurrence). *)

val extract : ?min_size:int -> ?prefix:string -> ?keep:(string * t) list -> t -> Expr.body
(** CSE as let-extraction: every non-leaf node with at least two parent
    edges (duplicate edges count) and at least [min_size] tree nodes
    (default 3) becomes a let binding, emitted in topological order and
    named [<prefix>N] (default ["__cse"]). Nodes listed in [keep] are
    always extracted under their given name. Inlining the resulting
    body's lets reproduces {!to_expr} exactly. *)

val to_body : ?min_size:int -> ?prefix:string -> t -> Expr.body
(** {!extract} with no pinned names. *)

(** {2 Memoized queries} *)

val tree_size : t -> int
(** AST nodes of the fully inlined tree ([Expr.size] of {!to_expr});
    saturates at [max_int]. Stored on the node: O(1). *)

val work_size : t -> int
(** Distinct reachable nodes — the sharing-aware size. *)

val tree_profile : t -> Expr.op_profile
(** Op profile of the fully inlined tree (saturating). *)

val work_profile : t -> Expr.op_profile
(** Op profile counting each distinct node once. *)

val shared_nodes : t -> int
(** Non-leaf nodes with two or more parent edges — the values a
    scheduler materializes as shared temporaries. *)

val accesses : t -> (string * int list) list
(** Distinct field accesses in first-encounter (evaluation) order —
    agrees with [Expr.accesses (Expr.inline_lets body)]. *)

val free_vars : t -> string list
(** Unresolved [Var] leaves in first-encounter order. *)

val topo : t -> t list
(** All reachable nodes sorted by id: children strictly before parents,
    root last. *)

val reads_data : t -> bool
(** Whether the DAG reads any field or unresolved variable. *)

val map_accesses : (field:string -> offsets:int list -> t) -> t -> t
(** Rebuild the DAG with every access replaced by the callback's result.
    Memoized per distinct node: a substitution into a shared access is
    computed once, no matter how often the tree form repeats it. *)
