type t = F32 | F64 | I32 | I64

let size_bytes = function F32 | I32 -> 4 | F64 | I64 -> 8
let name = function F32 -> "float32" | F64 -> "float64" | I32 -> "int32" | I64 -> "int64"

let of_string = function
  | "float32" | "float" -> Some F32
  | "float64" | "double" -> Some F64
  | "int32" | "int" -> Some I32
  | "int64" | "long" -> Some I64
  | _ -> None

let is_float = function F32 | F64 -> true | I32 | I64 -> false
let equal (a : t) (b : t) = a = b
let pp fmt t = Format.pp_print_string fmt (name t)
