type t = { name : string; dtype : Dtype.t; axes : int list }

let make ?(dtype = Dtype.F32) ?axes ~name ~full_rank () =
  let axes = match axes with Some a -> a | None -> Sf_support.Util.range full_rank in
  { name; dtype; axes }

let rank f = List.length f.axes
let is_full_rank f ~rank:full = rank f = full
let is_scalar f = f.axes = []
let extent f ~shape = List.map (fun axis -> List.nth shape axis) f.axes
let num_elements f ~shape = List.fold_left ( * ) 1 (extent f ~shape)
let size_bytes f ~shape = num_elements f ~shape * Dtype.size_bytes f.dtype

let validate f ~full_rank =
  let rec strictly_increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
  in
  if f.name = "" then Error "field has an empty name"
  else if not (strictly_increasing f.axes) then
    Error (Printf.sprintf "field %s: axes must be strictly increasing" f.name)
  else if List.exists (fun a -> a < 0 || a >= full_rank) f.axes then
    Error
      (Printf.sprintf "field %s: axes must lie within the %d-dimensional iteration space"
         f.name full_rank)
  else Ok ()

let pp fmt f =
  Format.fprintf fmt "%s:%s[%s]" f.name (Dtype.name f.dtype)
    (Sf_support.Util.string_concat_map "," string_of_int f.axes)
