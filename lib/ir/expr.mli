(** Expression AST for stencil computations (paper, Sec. II).

    A stencil's code segment is restricted to an {e analyzable} form: field
    accesses at constant offsets, arithmetic, comparisons, ternary
    conditionals (including data-dependent branches), and standard math
    functions — no external data structures or functions. This closed AST
    is what makes the critical-path latency analysis (Sec. IV-B), operation
    counting (Sec. IX-A), and stencil fusion (Sec. V-B) possible. *)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

(** Standard math functions permitted by the DSL. *)
type func = Sqrt | Abs | Exp | Log | Pow | Min | Max | Sin | Cos | Floor | Ceil

type t =
  | Const of float
  | Access of { field : string; offsets : int list }
      (** [field\[o1, o2, ...\]]: a read at a constant offset from the
          center of the iteration space. A 0-dimensional (scalar) input is
          an access with no offsets. *)
  | Var of string  (** Reference to a let-bound local temporary. *)
  | Unary of unop * t
  | Binary of binop * t * t
  | Select of { cond : t; if_true : t; if_false : t }  (** [cond ? a : b] *)
  | Call of func * t list

type body = { lets : (string * t) list; result : t }
(** A stencil body: a sequence of local bindings followed by the expression
    producing the stencil's single output value. *)

val func_name : func -> string
val func_of_name : string -> func option
val func_arity : func -> int

val equal : t -> t -> bool
val equal_body : body -> body -> bool

val size : t -> int
(** Number of AST nodes. *)

val accesses : t -> (string * int list) list
(** All field accesses in evaluation order, duplicates removed. *)

val body_accesses : body -> (string * int list) list
(** Accesses of a whole body, after conceptually inlining the lets. *)

val free_vars : t -> string list
(** [Var] names not bound in the expression itself (all of them — the AST
    has no binders), duplicates removed, in order of first use. *)

val map_accesses : (field:string -> offsets:int list -> t) -> t -> t
(** Replace every access by the result of the callback (used by fusion and
    offset shifting). *)

val shift_accesses : field:string -> delta:int list -> t -> t
(** Add [delta] componentwise to the offsets of every access to [field].
    Raises [Invalid_argument] on rank mismatch. *)

val shift_all_accesses : delta:int list -> t -> t
(** Shift every access to every field whose rank equals [List.length delta];
    accesses of different rank (lower-dimensional fields) are shifted on
    the axes they span — the caller provides the axes map. *)

val substitute_var : name:string -> value:t -> t -> t
val inline_lets : body -> t
(** Substitute all let bindings into the result expression. Bindings may
    reference earlier bindings; the output contains no [Var] nodes unless
    the body referenced an unbound variable (left untouched). *)

val rename_accesses : (string -> string) -> t -> t

(** Operation profile, matching the categories the paper reports for the
    horizontal diffusion program (Sec. IX-A): additions (including
    subtractions), multiplications, divisions, square roots, min/max, other
    calls, comparisons, and data-dependent branches (ternaries whose
    condition reads at least one field). *)
type op_profile = {
  adds : int;
  muls : int;
  divs : int;
  sqrts : int;
  mins : int;
  maxs : int;
  other_calls : int;
  compares : int;
  data_branches : int;
  const_branches : int;
}

val empty_profile : op_profile
val add_profile : op_profile -> op_profile -> op_profile

val op_profile : t -> op_profile
val body_op_profile : body -> op_profile
(** Profile of a whole body. Let bindings count once each regardless of
    how often they are referenced: the pipeline computes a bound value a
    single time and fans it out. Fusion substitutes on the hash-consed
    DAG ({!Dag}) and re-extracts the sharing as lets, so fused bodies
    keep their sharing here too (modulo shared nodes below the extraction
    threshold) — see {!Dag.work_profile} for the exact sharing-aware
    count and {!Dag.tree_profile} for the fully inlined per-occurrence
    one. *)

val flop_count : op_profile -> int
(** Floating-point operations as the paper counts them: adds + muls + divs
    + sqrts (square root counts as one op; Sec. IX-A). *)

val to_string : t -> string
(** Precedence-correct rendering that reparses to an equal AST. *)

val body_to_string : body -> string
val pp : Format.formatter -> t -> unit
