(** A single stencil operation: one node of the stencil program DAG.

    Each stencil reads one or more inputs (off-chip fields or results of
    other stencils) at constant offsets and produces exactly one output
    field, named after the stencil itself (paper, Sec. II). Boundary
    conditions are per input; the "shrink" condition is a flag on the
    output. *)

type t = {
  name : string;  (** Also the name of the field this stencil produces. *)
  body : Expr.body;
  boundary : (string * Boundary.t) list;
      (** Per-input boundary conditions; inputs not listed use
          {!Boundary.default}. *)
  shrink : bool;
      (** When set, output cells whose computation read out-of-bounds
          values are dropped from the written result. *)
}

val make : ?boundary:(string * Boundary.t) list -> ?shrink:bool -> name:string -> Expr.body -> t

val boundary_for : t -> string -> Boundary.t
(** The boundary condition for one input field. *)

val accesses : t -> (string * int list) list
(** All field accesses of the (inlined) body, duplicates removed. *)

val input_fields : t -> string list
(** Names of fields read, duplicates removed, in order of first access. *)

val accesses_of_field : t -> string -> int list list
(** The distinct offsets at which this stencil reads a given field. *)

val op_profile : t -> Expr.op_profile
(** [Expr.body_op_profile] of the body: each let binding counted once,
    each subexpression once per occurrence in the binding bodies. *)

val work_profile : t -> Expr.op_profile
(** Sharing-aware profile over the hash-consed DAG ({!Dag.work_profile}):
    every distinct value counted exactly once, whether shared through a
    let or structurally. What the pipeline instantiates. *)

val tree_profile : t -> Expr.op_profile
(** Profile of the fully inlined body ({!Dag.tree_profile}, saturating):
    what a per-occurrence evaluation would execute. *)

val equal_boundaries : t -> t -> bool
(** Same boundary-condition table and shrink flag (fusion precondition,
    Sec. V-B). *)

val pp : Format.formatter -> t -> unit
