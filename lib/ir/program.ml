module G = Sf_support.Dgraph.Make (String)

type node = Input of Field.t | Op of Stencil.t

type t = {
  name : string;
  shape : int list;
  dtype : Dtype.t;
  vector_width : int;
  inputs : Field.t list;
  outputs : string list;
  stencils : Stencil.t list;
}

let make ?(dtype = Dtype.F32) ?(vector_width = 1) ~name ~shape ~inputs ~outputs stencils =
  { name; shape; dtype; vector_width; inputs; outputs; stencils }

let rank t = List.length t.shape
let cells t = List.fold_left ( * ) 1 t.shape

let strides t =
  (* Row major: the stride of each axis is the product of the extents of
     the axes inside it; the innermost axis has stride 1. *)
  let rec go = function
    | [] -> []
    | _ :: rest -> List.fold_left ( * ) 1 rest :: go rest
  in
  go t.shape

let find_stencil t name = List.find_opt (fun s -> String.equal s.Stencil.name name) t.stencils
let find_input t name = List.find_opt (fun f -> String.equal f.Field.name name) t.inputs
let is_input t name = Option.is_some (find_input t name)

let field_axes t name =
  match find_input t name with
  | Some f -> f.Field.axes
  | None -> (
      match find_stencil t name with
      | Some _ -> Sf_support.Util.range (rank t)
      | None -> raise Not_found)

let producer_rank t name = List.length (field_axes t name)

let graph t =
  let g = List.fold_left (fun g f -> G.add_vertex g f.Field.name (Input f)) G.empty t.inputs in
  let g = List.fold_left (fun g s -> G.add_vertex g s.Stencil.name (Op s)) g t.stencils in
  List.fold_left
    (fun g s ->
      List.fold_left
        (fun g src ->
          if G.mem_vertex g src then G.add_edge g ~src ~dst:s.Stencil.name () else g)
        g (Stencil.input_fields s))
    g t.stencils

let consumers t field =
  List.filter_map
    (fun s ->
      if List.exists (String.equal field) (Stencil.input_fields s) then Some s.Stencil.name
      else None)
    t.stencils

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let d = rank t in
  if d < 1 || d > 3 then err "program %s: iteration space must have 1-3 dimensions" t.name;
  List.iter (fun ext -> if ext <= 0 then err "program %s: non-positive extent %d" t.name ext) t.shape;
  if t.vector_width < 1 then err "program %s: vector width must be positive" t.name;
  (match List.rev t.shape with
  | innermost :: _ when t.vector_width > 0 && innermost mod t.vector_width <> 0 ->
      err "program %s: vector width %d does not divide innermost extent %d" t.name
        t.vector_width innermost
  | _ -> ());
  if t.outputs = [] then err "program %s: no outputs declared" t.name;
  (* Name uniqueness across inputs and stencils. *)
  let names = List.map (fun f -> f.Field.name) t.inputs @ List.map (fun s -> s.Stencil.name) t.stencils in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then err "duplicate name %s" n else Hashtbl.add seen n ())
    names;
  List.iter
    (fun f ->
      match Field.validate f ~full_rank:d with Ok () -> () | Error m -> err "%s" m)
    t.inputs;
  (* Access resolution: every access names a known field and matches its
     rank; let-bound variables resolve in order; boundary conditions refer
     to read fields. *)
  List.iter
    (fun s ->
      let body = s.Stencil.body in
      let bound = Hashtbl.create 8 in
      let check_expr expr =
        List.iter
          (fun v ->
            if not (Hashtbl.mem bound v) then
              err "stencil %s: unbound variable %s (not a declared field or prior let)"
                s.Stencil.name v)
          (Expr.free_vars expr);
        List.iter
          (fun (field, offsets) ->
            if Hashtbl.mem seen field then begin
              let want = List.length (field_axes t field) in
              let got = List.length offsets in
              if want <> got then
                err "stencil %s: access %s has %d offsets but the field spans %d axes"
                  s.Stencil.name field got want
            end
            else err "stencil %s: access to undeclared field %s" s.Stencil.name field)
          (Expr.accesses expr)
      in
      List.iter
        (fun (v, e) ->
          check_expr e;
          Hashtbl.replace bound v ())
        body.Expr.lets;
      check_expr body.Expr.result;
      if List.exists (fun (f, _) -> String.equal f s.Stencil.name) (Stencil.accesses s) then
        err "stencil %s: reads its own output (cycle)" s.Stencil.name;
      let inputs_read = Stencil.input_fields s in
      List.iter
        (fun (f, _) ->
          if not (List.exists (String.equal f) inputs_read) then
            err "stencil %s: boundary condition for unread field %s" s.Stencil.name f)
        s.Stencil.boundary)
    t.stencils;
  List.iter
    (fun o ->
      if find_stencil t o = None then err "declared output %s is not a stencil" o)
    t.outputs;
  (* Global structure: acyclic, and every stencil feeds some output. *)
  if !errors = [] then begin
    let g = graph t in
    (match G.topological_sort g with
    | Ok _ -> ()
    | Error cyc ->
        err "program %s: dependency cycle through {%s}" t.name (String.concat ", " cyc));
    let live = G.reachable_from (G.transpose g) t.outputs in
    List.iter
      (fun s ->
        if not (List.exists (String.equal s.Stencil.name) live) then
          err "stencil %s does not contribute to any output (dead code)" s.Stencil.name)
      t.stencils
  end;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let validate_exn t =
  match validate t with
  | Ok () -> ()
  | Error errs -> invalid_arg (String.concat "\n" errs)

let topological_stencils t =
  match G.topological_sort (graph t) with
  | Error cyc -> invalid_arg ("Program.topological_stencils: cycle through " ^ String.concat "," cyc)
  | Ok order -> List.filter_map (find_stencil t) order

let with_vector_width t w = { t with vector_width = w }

let pp fmt t =
  Format.fprintf fmt "program %s: shape [%s], dtype %s, W=%d@." t.name
    (Sf_support.Util.string_concat_map "x" string_of_int t.shape)
    (Dtype.name t.dtype) t.vector_width;
  Format.fprintf fmt "  inputs: %s@."
    (Sf_support.Util.string_concat_map ", " (fun f -> Format.asprintf "%a" Field.pp f) t.inputs);
  List.iter
    (fun (s : Stencil.t) ->
      Format.fprintf fmt "  %a" Stencil.pp s;
      if s.Stencil.boundary <> [] then
        Format.fprintf fmt "  [bc: %s]"
          (Sf_support.Util.string_concat_map ", "
             (fun (f, b) -> f ^ "=" ^ Boundary.to_string b)
             s.Stencil.boundary);
      if s.Stencil.shrink then Format.fprintf fmt "  [shrink]";
      Format.fprintf fmt "@.")
    t.stencils;
  Format.fprintf fmt "  outputs: %s" (String.concat ", " t.outputs)
