module G = Sf_support.Dgraph.Make (String)

type node = Input of Field.t | Op of Stencil.t

type t = {
  name : string;
  shape : int list;
  dtype : Dtype.t;
  vector_width : int;
  inputs : Field.t list;
  outputs : string list;
  stencils : Stencil.t list;
}

let make ?(dtype = Dtype.F32) ?(vector_width = 1) ~name ~shape ~inputs ~outputs stencils =
  { name; shape; dtype; vector_width; inputs; outputs; stencils }

let rank t = List.length t.shape
let cells t = List.fold_left ( * ) 1 t.shape

let strides t =
  (* Row major: the stride of each axis is the product of the extents of
     the axes inside it; the innermost axis has stride 1. *)
  let rec go = function
    | [] -> []
    | _ :: rest -> List.fold_left ( * ) 1 rest :: go rest
  in
  go t.shape

let find_stencil t name = List.find_opt (fun s -> String.equal s.Stencil.name name) t.stencils
let find_input t name = List.find_opt (fun f -> String.equal f.Field.name name) t.inputs
let is_input t name = Option.is_some (find_input t name)

let field_axes t name =
  match find_input t name with
  | Some f -> f.Field.axes
  | None -> (
      match find_stencil t name with
      | Some _ -> Sf_support.Util.range (rank t)
      | None -> raise Not_found)

let producer_rank t name = List.length (field_axes t name)

let graph t =
  let g = List.fold_left (fun g f -> G.add_vertex g f.Field.name (Input f)) G.empty t.inputs in
  let g = List.fold_left (fun g s -> G.add_vertex g s.Stencil.name (Op s)) g t.stencils in
  List.fold_left
    (fun g s ->
      List.fold_left
        (fun g src ->
          if G.mem_vertex g src then G.add_edge g ~src ~dst:s.Stencil.name () else g)
        g (Stencil.input_fields s))
    g t.stencils

let consumers t field =
  List.filter_map
    (fun s ->
      if List.exists (String.equal field) (Stencil.input_fields s) then Some s.Stencil.name
      else None)
    t.stencils

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let d = rank t in
  if d < 1 || d > 3 then err "program %s: iteration space must have 1-3 dimensions" t.name;
  List.iter (fun ext -> if ext <= 0 then err "program %s: non-positive extent %d" t.name ext) t.shape;
  if t.vector_width < 1 then err "program %s: vector width must be positive" t.name;
  (match List.rev t.shape with
  | innermost :: _ when t.vector_width > 0 && innermost mod t.vector_width <> 0 ->
      err "program %s: vector width %d does not divide innermost extent %d" t.name
        t.vector_width innermost
  | _ -> ());
  if t.outputs = [] then err "program %s: no outputs declared" t.name;
  (* Name uniqueness across inputs and stencils. *)
  let names = List.map (fun f -> f.Field.name) t.inputs @ List.map (fun s -> s.Stencil.name) t.stencils in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then err "duplicate name %s" n else Hashtbl.add seen n ())
    names;
  List.iter
    (fun f ->
      match Field.validate f ~full_rank:d with Ok () -> () | Error m -> err "%s" m)
    t.inputs;
  (* Access resolution: every access names a known field and matches its
     rank; let-bound variables resolve in order; boundary conditions refer
     to read fields. *)
  List.iter
    (fun s ->
      let body = s.Stencil.body in
      let bound = Hashtbl.create 8 in
      let check_expr expr =
        List.iter
          (fun v ->
            if not (Hashtbl.mem bound v) then
              err "stencil %s: unbound variable %s (not a declared field or prior let)"
                s.Stencil.name v)
          (Expr.free_vars expr);
        List.iter
          (fun (field, offsets) ->
            if Hashtbl.mem seen field then begin
              let want = List.length (field_axes t field) in
              let got = List.length offsets in
              if want <> got then
                err "stencil %s: access %s has %d offsets but the field spans %d axes"
                  s.Stencil.name field got want
            end
            else err "stencil %s: access to undeclared field %s" s.Stencil.name field)
          (Expr.accesses expr)
      in
      List.iter
        (fun (v, e) ->
          check_expr e;
          Hashtbl.replace bound v ())
        body.Expr.lets;
      check_expr body.Expr.result;
      if List.exists (fun (f, _) -> String.equal f s.Stencil.name) (Stencil.accesses s) then
        err "stencil %s: reads its own output (cycle)" s.Stencil.name;
      let inputs_read = Stencil.input_fields s in
      List.iter
        (fun (f, _) ->
          if not (List.exists (String.equal f) inputs_read) then
            err "stencil %s: boundary condition for unread field %s" s.Stencil.name f)
        s.Stencil.boundary)
    t.stencils;
  List.iter
    (fun o ->
      if find_stencil t o = None then err "declared output %s is not a stencil" o)
    t.outputs;
  (* Global structure: acyclic, and every stencil feeds some output. *)
  if !errors = [] then begin
    let g = graph t in
    (match G.topological_sort g with
    | Ok _ -> ()
    | Error cyc ->
        err "program %s: dependency cycle through {%s}" t.name (String.concat ", " cyc));
    let live = G.reachable_from (G.transpose g) t.outputs in
    List.iter
      (fun s ->
        if not (List.exists (String.equal s.Stencil.name) live) then
          err "stencil %s does not contribute to any output (dead code)" s.Stencil.name)
      t.stencils
  end;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let validate_exn t =
  match validate t with
  | Ok () -> ()
  | Error errs -> invalid_arg (String.concat "\n" errs)

let topological_stencils t =
  match G.topological_sort (graph t) with
  | Error cyc -> invalid_arg ("Program.topological_stencils: cycle through " ^ String.concat "," cyc)
  | Ok order -> List.filter_map (find_stencil t) order

let with_vector_width t w = { t with vector_width = w }

let pp fmt t =
  Format.fprintf fmt "program %s: shape [%s], dtype %s, W=%d@." t.name
    (Sf_support.Util.string_concat_map "x" string_of_int t.shape)
    (Dtype.name t.dtype) t.vector_width;
  Format.fprintf fmt "  inputs: %s@."
    (Sf_support.Util.string_concat_map ", " (fun f -> Format.asprintf "%a" Field.pp f) t.inputs);
  List.iter
    (fun (s : Stencil.t) ->
      Format.fprintf fmt "  %a" Stencil.pp s;
      if s.Stencil.boundary <> [] then
        Format.fprintf fmt "  [bc: %s]"
          (Sf_support.Util.string_concat_map ", "
             (fun (f, b) -> f ^ "=" ^ Boundary.to_string b)
             s.Stencil.boundary);
      if s.Stencil.shrink then Format.fprintf fmt "  [shrink]";
      Format.fprintf fmt "@.")
    t.stencils;
  Format.fprintf fmt "  outputs: %s" (String.concat ", " t.outputs)

(* Content fingerprints (the cache keys of lib/toolchain/cache).

   The body digest walks the hash-consed DAG with a memo table keyed on
   node ids, so every shared subexpression is digested exactly once and
   the digest is a pure function of the body's structure: stable across
   processes, alpha-sensitive on let names (matching [Expr.equal_body]),
   and IEEE-bit-exact on constants (matching the interning discipline of
   [Dag]). *)
module F = Sf_support.Fingerprint

let unop_tag = function Expr.Neg -> 0 | Expr.Not -> 1

let binop_tag = function
  | Expr.Add -> 0
  | Expr.Sub -> 1
  | Expr.Mul -> 2
  | Expr.Div -> 3
  | Expr.Lt -> 4
  | Expr.Le -> 5
  | Expr.Gt -> 6
  | Expr.Ge -> 7
  | Expr.Eq -> 8
  | Expr.Ne -> 9
  | Expr.And -> 10
  | Expr.Or -> 11

let dtype_tag = function Dtype.F32 -> 0 | Dtype.F64 -> 1 | Dtype.I32 -> 2 | Dtype.I64 -> 3

let body_fingerprint (b : Expr.body) =
  let memo = Hashtbl.create 64 in
  let rec fp node =
    match Hashtbl.find_opt memo (Dag.id node) with
    | Some d -> d
    | None ->
        let child st n = F.add_fingerprint st (fp n) in
        let d =
          F.digest (fun st ->
              match Dag.view node with
              | Dag.Const c ->
                  F.add_int st 0;
                  F.add_float st c
              | Dag.Access { field; offsets } ->
                  F.add_int st 1;
                  F.add_string st field;
                  F.add_list st F.add_int offsets
              | Dag.Var v ->
                  F.add_int st 2;
                  F.add_string st v
              | Dag.Unary (op, a) ->
                  F.add_int st 3;
                  F.add_int st (unop_tag op);
                  child st a
              | Dag.Binary (op, a, b) ->
                  F.add_int st 4;
                  F.add_int st (binop_tag op);
                  child st a;
                  child st b
              | Dag.Select { cond; if_true; if_false } ->
                  F.add_int st 5;
                  child st cond;
                  child st if_true;
                  child st if_false
              | Dag.Call (fn, args) ->
                  F.add_int st 6;
                  F.add_string st (Expr.func_name fn);
                  F.add_list st child args)
        in
        Hashtbl.add memo (Dag.id node) d;
        d
  in
  let lets, root = Dag.of_body_named b in
  F.digest (fun st ->
      F.add_list st
        (fun st (name, node) ->
          F.add_string st name;
          F.add_fingerprint st (fp node))
        lets;
      F.add_fingerprint st (fp root))

let boundary_fp st = function
  | Boundary.Constant c ->
      F.add_int st 0;
      F.add_float st c
  | Boundary.Copy -> F.add_int st 1

let stencil_fingerprint (s : Stencil.t) =
  F.digest (fun st ->
      F.add_string st s.Stencil.name;
      F.add_fingerprint st (body_fingerprint s.Stencil.body);
      F.add_list st
        (fun st (field, b) ->
          F.add_string st field;
          boundary_fp st b)
        s.Stencil.boundary;
      F.add_bool st s.Stencil.shrink)

let field_fp st (f : Field.t) =
  F.add_string st f.Field.name;
  F.add_int st (dtype_tag f.Field.dtype);
  F.add_list st F.add_int f.Field.axes

let fingerprint t =
  F.digest (fun st ->
      F.add_string st t.name;
      F.add_list st F.add_int t.shape;
      F.add_int st (dtype_tag t.dtype);
      F.add_int st t.vector_width;
      F.add_list st field_fp t.inputs;
      F.add_list st F.add_string t.outputs;
      F.add_list st
        (fun st s -> F.add_fingerprint st (stencil_fingerprint s))
        t.stencils)
