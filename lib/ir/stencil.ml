type t = {
  name : string;
  body : Expr.body;
  boundary : (string * Boundary.t) list;
  shrink : bool;
}

let make ?(boundary = []) ?(shrink = false) ~name body = { name; body; boundary; shrink }

let boundary_for t field =
  match List.assoc_opt field t.boundary with Some b -> b | None -> Boundary.default

let accesses t = Expr.body_accesses t.body

let dedup_keep_order l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let input_fields t = List.map fst (accesses t) |> dedup_keep_order

let accesses_of_field t field =
  List.filter_map (fun (f, offs) -> if String.equal f field then Some offs else None) (accesses t)

let op_profile t = Expr.body_op_profile t.body
let work_profile t = Dag.work_profile (Dag.of_body t.body)
let tree_profile t = Dag.tree_profile (Dag.of_body t.body)

let equal_boundaries a b =
  let normalize s =
    List.map (fun f -> (f, boundary_for s f)) (input_fields s)
    |> List.sort (fun (x, _) (y, _) -> String.compare x y)
  in
  a.shrink = b.shrink
  &&
  let ba = normalize a and bb = normalize b in
  (* Compare only on fields both read; fields read by one stencil alone
     cannot conflict. *)
  List.for_all
    (fun (f, cond) ->
      match List.assoc_opt f bb with None -> true | Some cond' -> Boundary.equal cond cond')
    ba

let pp fmt t = Format.fprintf fmt "%s = %s" t.name (Expr.body_to_string t.body)
