(** Boundary conditions for out-of-bounds field accesses (paper, Sec. II).

    [Constant c] replaces out-of-bounds reads with [c]; [Copy] replaces
    them with the value at offset 0 in all dimensions (the "center").
    Both are specified per input field. The third condition of the paper,
    "shrink", is a property of a stencil's {e output} (cells whose inputs
    were out of bounds are dropped from the result) and is therefore a
    stencil flag, not a constructor here. *)

type t = Constant of float | Copy

val default : t
(** [Constant 0.] — used when a program does not specify a condition. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
