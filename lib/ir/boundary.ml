type t = Constant of float | Copy

let default = Constant 0.

let equal a b =
  match (a, b) with
  | Constant x, Constant y -> x = y
  | Copy, Copy -> true
  | (Constant _ | Copy), _ -> false

let to_string = function
  | Constant c -> Printf.sprintf "constant(%g)" c
  | Copy -> "copy"

let pp fmt t = Format.pp_print_string fmt (to_string t)
