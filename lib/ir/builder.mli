(** Programmatic construction of stencil programs.

    This is the OCaml counterpart of the paper's "productive high-level
    interfaces": kernels and examples assemble programs with expression
    combinators instead of writing JSON by hand. [finish] validates the
    assembled program. *)

type t

val create : ?dtype:Dtype.t -> ?vector_width:int -> name:string -> shape:int list -> unit -> t
val input : t -> ?dtype:Dtype.t -> ?axes:int list -> string -> unit
(** Declare an off-chip input field (full rank unless [axes] narrows it). *)

val stencil :
  t ->
  ?boundary:(string * Boundary.t) list ->
  ?shrink:bool ->
  ?lets:(string * Expr.t) list ->
  string ->
  Expr.t ->
  unit
(** Declare a stencil producing the named field. *)

val output : t -> string -> unit
(** Mark a stencil result as written to off-chip memory. *)

val finish : t -> Program.t
(** Assemble and validate; raises [Invalid_argument] on diagnostics. *)

(** Expression combinators. [acc] builds a field access, [sc] a scalar
    (0-offset) access, [c] a constant. The infix operators mirror the DSL
    and avoid clashing with Stdlib arithmetic by a [%] suffix. *)
module E : sig
  val c : float -> Expr.t
  val i : int -> Expr.t
  val acc : string -> int list -> Expr.t
  val sc : string -> Expr.t
  val var : string -> Expr.t
  val ( +% ) : Expr.t -> Expr.t -> Expr.t
  val ( -% ) : Expr.t -> Expr.t -> Expr.t
  val ( *% ) : Expr.t -> Expr.t -> Expr.t
  val ( /% ) : Expr.t -> Expr.t -> Expr.t
  val ( <% ) : Expr.t -> Expr.t -> Expr.t
  val ( <=% ) : Expr.t -> Expr.t -> Expr.t
  val ( >% ) : Expr.t -> Expr.t -> Expr.t
  val ( >=% ) : Expr.t -> Expr.t -> Expr.t
  val ( ==% ) : Expr.t -> Expr.t -> Expr.t
  val ( !=% ) : Expr.t -> Expr.t -> Expr.t
  val ( &&% ) : Expr.t -> Expr.t -> Expr.t
  val ( ||% ) : Expr.t -> Expr.t -> Expr.t
  val neg : Expr.t -> Expr.t
  val sel : Expr.t -> Expr.t -> Expr.t -> Expr.t
  val sqrt_ : Expr.t -> Expr.t
  val abs_ : Expr.t -> Expr.t
  val exp_ : Expr.t -> Expr.t
  val log_ : Expr.t -> Expr.t
  val pow_ : Expr.t -> Expr.t -> Expr.t
  val min_ : Expr.t -> Expr.t -> Expr.t
  val max_ : Expr.t -> Expr.t -> Expr.t
  val sum : Expr.t list -> Expr.t
  (** Left-associated sum; raises on the empty list. *)
end
