(** Logical input fields of a stencil program (paper, Sec. II).

    A field is a named, typed array read from off-chip memory. Fields may
    be lower-dimensional than the iteration space — a 3D stencil can read
    2D, 1D or 0D (scalar) arrays using subsets of its indices. [axes]
    records which iteration-space axes the field spans, e.g. in a 3D
    program with axes (0=K, 1=J, 2=I), a per-row field spanning only the
    innermost dimension has [axes = [2]], and a scalar has [axes = []]. *)

type t = { name : string; dtype : Dtype.t; axes : int list }

val make : ?dtype:Dtype.t -> ?axes:int list -> name:string -> full_rank:int -> unit -> t
(** [make ~name ~full_rank ()] builds a field spanning all [full_rank]
    iteration axes unless [axes] narrows it. [dtype] defaults to F32. *)

val rank : t -> int
(** Number of axes the field spans. *)

val is_full_rank : t -> rank:int -> bool
val is_scalar : t -> bool

val extent : t -> shape:int list -> int list
(** The field's own shape: the iteration-space extents of the axes it
    spans. A scalar has extent []. *)

val num_elements : t -> shape:int list -> int
(** Product of {!extent} (1 for scalars). *)

val size_bytes : t -> shape:int list -> int
val validate : t -> full_rank:int -> (unit, string) result
val pp : Format.formatter -> t -> unit
