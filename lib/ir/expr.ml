type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type func = Sqrt | Abs | Exp | Log | Pow | Min | Max | Sin | Cos | Floor | Ceil

type t =
  | Const of float
  | Access of { field : string; offsets : int list }
  | Var of string
  | Unary of unop * t
  | Binary of binop * t * t
  | Select of { cond : t; if_true : t; if_false : t }
  | Call of func * t list

type body = { lets : (string * t) list; result : t }

let func_name = function
  | Sqrt -> "sqrt"
  | Abs -> "fabs"
  | Exp -> "exp"
  | Log -> "log"
  | Pow -> "pow"
  | Min -> "min"
  | Max -> "max"
  | Sin -> "sin"
  | Cos -> "cos"
  | Floor -> "floor"
  | Ceil -> "ceil"

let func_of_name = function
  | "sqrt" -> Some Sqrt
  | "fabs" | "abs" -> Some Abs
  | "exp" -> Some Exp
  | "log" -> Some Log
  | "pow" -> Some Pow
  | "min" | "fmin" -> Some Min
  | "max" | "fmax" -> Some Max
  | "sin" -> Some Sin
  | "cos" -> Some Cos
  | "floor" -> Some Floor
  | "ceil" -> Some Ceil
  | _ -> None

let func_arity = function
  | Pow | Min | Max -> 2
  | Sqrt | Abs | Exp | Log | Sin | Cos | Floor | Ceil -> 1

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Access a, Access b -> String.equal a.field b.field && a.offsets = b.offsets
  | Var x, Var y -> String.equal x y
  | Unary (op1, x), Unary (op2, y) -> op1 = op2 && equal x y
  | Binary (op1, x1, y1), Binary (op2, x2, y2) -> op1 = op2 && equal x1 x2 && equal y1 y2
  | Select a, Select b ->
      equal a.cond b.cond && equal a.if_true b.if_true && equal a.if_false b.if_false
  | Call (f, args1), Call (g, args2) ->
      f = g && List.length args1 = List.length args2 && List.for_all2 equal args1 args2
  | (Const _ | Access _ | Var _ | Unary _ | Binary _ | Select _ | Call _), _ -> false

let equal_body a b =
  List.length a.lets = List.length b.lets
  && List.for_all2
       (fun (n1, e1) (n2, e2) -> String.equal n1 n2 && equal e1 e2)
       a.lets b.lets
  && equal a.result b.result

let rec fold f acc expr =
  let acc = f acc expr in
  match expr with
  | Const _ | Access _ | Var _ -> acc
  | Unary (_, x) -> fold f acc x
  | Binary (_, x, y) -> fold f (fold f acc x) y
  | Select { cond; if_true; if_false } -> fold f (fold f (fold f acc cond) if_true) if_false
  | Call (_, args) -> List.fold_left (fold f) acc args

let size expr = fold (fun n _ -> n + 1) 0 expr

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let accesses expr =
  fold
    (fun acc e -> match e with Access { field; offsets } -> (field, offsets) :: acc | _ -> acc)
    [] expr
  |> List.rev |> dedup_keep_order

let free_vars expr =
  fold (fun acc e -> match e with Var v -> v :: acc | _ -> acc) [] expr
  |> List.rev |> dedup_keep_order

let rec map_accesses f expr =
  match expr with
  | Access { field; offsets } -> f ~field ~offsets
  | Const _ | Var _ -> expr
  | Unary (op, x) -> Unary (op, map_accesses f x)
  | Binary (op, x, y) -> Binary (op, map_accesses f x, map_accesses f y)
  | Select { cond; if_true; if_false } ->
      Select
        {
          cond = map_accesses f cond;
          if_true = map_accesses f if_true;
          if_false = map_accesses f if_false;
        }
  | Call (g, args) -> Call (g, List.map (map_accesses f) args)

let shift_accesses ~field ~delta expr =
  let shift ~field:f ~offsets =
    if String.equal f field then begin
      if List.length offsets <> List.length delta then
        invalid_arg "Expr.shift_accesses: offset rank mismatch";
      Access { field = f; offsets = List.map2 ( + ) offsets delta }
    end
    else Access { field = f; offsets }
  in
  map_accesses shift expr

let shift_all_accesses ~delta expr =
  let rank = List.length delta in
  let shift ~field ~offsets =
    if List.length offsets = rank then Access { field; offsets = List.map2 ( + ) offsets delta }
    else Access { field; offsets }
  in
  map_accesses shift expr

let rec substitute_var ~name ~value expr =
  match expr with
  | Var v when String.equal v name -> value
  | Const _ | Access _ | Var _ -> expr
  | Unary (op, x) -> Unary (op, substitute_var ~name ~value x)
  | Binary (op, x, y) -> Binary (op, substitute_var ~name ~value x, substitute_var ~name ~value y)
  | Select { cond; if_true; if_false } ->
      Select
        {
          cond = substitute_var ~name ~value cond;
          if_true = substitute_var ~name ~value if_true;
          if_false = substitute_var ~name ~value if_false;
        }
  | Call (g, args) -> Call (g, List.map (substitute_var ~name ~value) args)

let inline_lets { lets; result } =
  (* Substitute bindings in order: later bindings may use earlier ones, so
     each binding's expression is first resolved against the accumulated
     environment. *)
  let resolved =
    List.fold_left
      (fun env (name, expr) ->
        let expr =
          List.fold_left (fun e (n, v) -> substitute_var ~name:n ~value:v e) expr env
        in
        (name, expr) :: env)
      [] lets
  in
  List.fold_left (fun e (n, v) -> substitute_var ~name:n ~value:v e) result resolved

(* Equivalent to [accesses (inline_lets body)], but linear in the body
   size. Each binding's deduplicated access sequence is computed once
   against the earlier bindings; substituting the variable into a later
   expression can only replay that sequence, and the replay's duplicates
   are exactly what the final dedup drops. Bindings never referenced
   contribute nothing, matching substitution semantics. *)
let body_accesses { lets; result } =
  let expr_accesses env expr =
    fold
      (fun acc e ->
        match e with
        | Access { field; offsets } -> (field, offsets) :: acc
        | Var v -> (
            match Hashtbl.find_opt env v with
            | Some l -> List.rev_append l acc
            | None -> acc)
        | _ -> acc)
      [] expr
    |> List.rev |> dedup_keep_order
  in
  let env = Hashtbl.create 16 in
  List.iter (fun (n, e) -> Hashtbl.replace env n (expr_accesses env e)) lets;
  expr_accesses env result

let rename_accesses rename expr =
  map_accesses (fun ~field ~offsets -> Access { field = rename field; offsets }) expr

type op_profile = {
  adds : int;
  muls : int;
  divs : int;
  sqrts : int;
  mins : int;
  maxs : int;
  other_calls : int;
  compares : int;
  data_branches : int;
  const_branches : int;
}

let empty_profile =
  {
    adds = 0;
    muls = 0;
    divs = 0;
    sqrts = 0;
    mins = 0;
    maxs = 0;
    other_calls = 0;
    compares = 0;
    data_branches = 0;
    const_branches = 0;
  }

let add_profile a b =
  {
    adds = a.adds + b.adds;
    muls = a.muls + b.muls;
    divs = a.divs + b.divs;
    sqrts = a.sqrts + b.sqrts;
    mins = a.mins + b.mins;
    maxs = a.maxs + b.maxs;
    other_calls = a.other_calls + b.other_calls;
    compares = a.compares + b.compares;
    data_branches = a.data_branches + b.data_branches;
    const_branches = a.const_branches + b.const_branches;
  }

(* A branch condition is data-dependent when it reads a field directly or
   through a let-bound temporary (which, in well-formed bodies, is itself
   computed from field reads). *)
let reads_data expr = accesses expr <> [] || free_vars expr <> []

let op_profile expr =
  fold
    (fun p e ->
      match e with
      | Const _ | Access _ | Var _ -> p
      | Unary (Neg, _) -> { p with adds = p.adds + 1 }
      | Unary (Not, _) -> p
      | Binary ((Add | Sub), _, _) -> { p with adds = p.adds + 1 }
      | Binary (Mul, _, _) -> { p with muls = p.muls + 1 }
      | Binary (Div, _, _) -> { p with divs = p.divs + 1 }
      | Binary ((Lt | Le | Gt | Ge | Eq | Ne), _, _) -> { p with compares = p.compares + 1 }
      | Binary ((And | Or), _, _) -> p
      | Select { cond; _ } ->
          if reads_data cond then { p with data_branches = p.data_branches + 1 }
          else { p with const_branches = p.const_branches + 1 }
      | Call (Sqrt, _) -> { p with sqrts = p.sqrts + 1 }
      | Call (Min, _) -> { p with mins = p.mins + 1 }
      | Call (Max, _) -> { p with maxs = p.maxs + 1 }
      | Call ((Abs | Exp | Log | Pow | Sin | Cos | Floor | Ceil), _) ->
          { p with other_calls = p.other_calls + 1 })
    empty_profile expr

(* Each let binding is counted once: the spatial pipeline computes a
   bound value a single time and fans it out, so inlining (which would
   duplicate shared subexpressions) would over-count hardware ops. *)
let body_op_profile body =
  List.fold_left
    (fun acc (_, e) -> add_profile acc (op_profile e))
    (op_profile body.result) body.lets
let flop_count p = p.adds + p.muls + p.divs + p.sqrts

(* Precedence levels for printing; larger binds tighter. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let const_to_string c =
  if Float.is_integer c && Float.abs c < 1e15 then
    (* Keep a decimal point so reparsing yields a float literal. *)
    Printf.sprintf "%.1f" c
  else Printf.sprintf "%.17g" c

let to_string expr =
  let buf = Buffer.create 64 in
  (* [emit prec e]: print [e], parenthesizing when its own precedence is
     below [prec]. Ternary is level 0 and right-associative. *)
  let rec emit prec e =
    match e with
    | Const c -> Buffer.add_string buf (const_to_string c)
    | Var v -> Buffer.add_string buf v
    | Access { field; offsets } ->
        Buffer.add_string buf field;
        if offsets <> [] then begin
          Buffer.add_char buf '[';
          List.iteri
            (fun i o ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf (string_of_int o))
            offsets;
          Buffer.add_char buf ']'
        end
    | Unary (op, x) ->
        let wrap = prec > 7 in
        if wrap then Buffer.add_char buf '(';
        Buffer.add_string buf (match op with Neg -> "-" | Not -> "!");
        emit 7 x;
        if wrap then Buffer.add_char buf ')'
    | Binary (op, x, y) ->
        let p = binop_prec op in
        let wrap = prec > p in
        if wrap then Buffer.add_char buf '(';
        emit p x;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (binop_symbol op);
        Buffer.add_char buf ' ';
        emit (p + 1) y;
        if wrap then Buffer.add_char buf ')'
    | Select { cond; if_true; if_false } ->
        let wrap = prec > 0 in
        if wrap then Buffer.add_char buf '(';
        emit 1 cond;
        Buffer.add_string buf " ? ";
        emit 1 if_true;
        Buffer.add_string buf " : ";
        emit 0 if_false;
        if wrap then Buffer.add_char buf ')'
    | Call (f, args) ->
        Buffer.add_string buf (func_name f);
        Buffer.add_char buf '(';
        List.iteri
          (fun i a ->
            if i > 0 then Buffer.add_string buf ", ";
            emit 0 a)
          args;
        Buffer.add_char buf ')'
  in
  emit 0 expr;
  Buffer.contents buf

let body_to_string { lets; result } =
  let bindings = List.map (fun (n, e) -> Printf.sprintf "%s = %s;\n" n (to_string e)) lets in
  String.concat "" bindings ^ to_string result

let pp fmt expr = Format.pp_print_string fmt (to_string expr)
