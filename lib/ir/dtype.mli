(** Data types of stencil fields.

    The paper's stack supports "any data type recognized by the underlying
    compiler" (Sec. VIII-B); the evaluation focuses on 32-bit floats. The
    data type determines operand size (for bandwidth and buffer sizing) and
    default operation latencies. Arithmetic in this reproduction is always
    evaluated in double precision; see DESIGN.md. *)

type t = F32 | F64 | I32 | I64

val size_bytes : t -> int
(** Operand size in bytes: 4, 8, 4, 8 respectively. *)

val name : t -> string
(** Canonical lowercase name: ["float32"], ["float64"], ["int32"], ["int64"]. *)

val of_string : string -> t option
(** Parse a name as produced by {!name}; also accepts the C-style aliases
    ["float"], ["double"], ["int"], ["long"]. *)

val is_float : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
