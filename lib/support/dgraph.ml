module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (V : ORDERED) = struct
  type vertex = V.t

  module VMap = Map.Make (V)
  module VSet = Set.Make (V)

  (* Adjacency is kept in insertion order (lists) so that analyses and
     printers are deterministic across runs. *)
  type ('a, 'e) t = {
    labels : 'a VMap.t;
    succ : (vertex * 'e) list VMap.t;
    pred : (vertex * 'e) list VMap.t;
    insertion : vertex list; (* reverse insertion order of vertices *)
  }

  let empty = { labels = VMap.empty; succ = VMap.empty; pred = VMap.empty; insertion = [] }
  let mem_vertex g v = VMap.mem v g.labels

  let add_vertex g v label =
    if mem_vertex g v then { g with labels = VMap.add v label g.labels }
    else
      {
        labels = VMap.add v label g.labels;
        succ = VMap.add v [] g.succ;
        pred = VMap.add v [] g.pred;
        insertion = v :: g.insertion;
      }

  let adjacency map v = match VMap.find_opt v map with Some l -> l | None -> []

  let replace_assoc key value l =
    let without = List.filter (fun (k, _) -> V.compare k key <> 0) l in
    without @ [ (key, value) ]

  let add_edge g ~src ~dst e =
    if not (mem_vertex g src) then invalid_arg "Dgraph.add_edge: unknown source vertex";
    if not (mem_vertex g dst) then invalid_arg "Dgraph.add_edge: unknown destination vertex";
    {
      g with
      succ = VMap.add src (replace_assoc dst e (adjacency g.succ src)) g.succ;
      pred = VMap.add dst (replace_assoc src e (adjacency g.pred dst)) g.pred;
    }

  let remove_edge g ~src ~dst =
    let drop key l = List.filter (fun (k, _) -> V.compare k key <> 0) l in
    {
      g with
      succ = VMap.add src (drop dst (adjacency g.succ src)) g.succ;
      pred = VMap.add dst (drop src (adjacency g.pred dst)) g.pred;
    }

  let remove_vertex g v =
    if not (mem_vertex g v) then g
    else begin
      let g =
        List.fold_left (fun g (s, _) -> remove_edge g ~src:v ~dst:s) g (adjacency g.succ v)
      in
      let g =
        List.fold_left (fun g (p, _) -> remove_edge g ~src:p ~dst:v) g (adjacency g.pred v)
      in
      {
        labels = VMap.remove v g.labels;
        succ = VMap.remove v g.succ;
        pred = VMap.remove v g.pred;
        insertion = List.filter (fun u -> V.compare u v <> 0) g.insertion;
      }
    end

  let mem_edge g ~src ~dst = List.exists (fun (k, _) -> V.compare k dst = 0) (adjacency g.succ src)
  let find_vertex g v = VMap.find_opt v g.labels

  let find_vertex_exn g v =
    match find_vertex g v with
    | Some label -> label
    | None -> invalid_arg "Dgraph.find_vertex_exn: unknown vertex"

  let find_edge g ~src ~dst =
    List.find_opt (fun (k, _) -> V.compare k dst = 0) (adjacency g.succ src) |> Option.map snd

  let succs g v = adjacency g.succ v
  let preds g v = adjacency g.pred v
  let out_degree g v = List.length (succs g v)
  let in_degree g v = List.length (preds g v)
  let vertex_order g = List.rev g.insertion
  let vertices g = List.map (fun v -> (v, VMap.find v g.labels)) (vertex_order g)

  let edges g =
    List.concat_map (fun v -> List.map (fun (d, e) -> (v, d, e)) (succs g v)) (vertex_order g)

  let num_vertices g = VMap.cardinal g.labels
  let num_edges g = List.length (edges g)
  let sources g = List.filter (fun v -> in_degree g v = 0) (vertex_order g)
  let sinks g = List.filter (fun v -> out_degree g v = 0) (vertex_order g)

  (* Kahn's algorithm, scanning ready vertices in insertion order for
     deterministic output. *)
  let topological_sort g =
    let in_deg = Hashtbl.create 16 in
    List.iter (fun (v, _) -> Hashtbl.replace in_deg v (in_degree g v)) (vertices g);
    let order = vertex_order g in
    let rec collect_ready acc = function
      | [] -> List.rev acc
      | v :: rest ->
          if Hashtbl.find in_deg v = 0 then collect_ready (v :: acc) rest
          else collect_ready acc rest
    in
    let rec go sorted ready remaining =
      match ready with
      | [] ->
          if remaining = [] then Ok (List.rev sorted)
          else
            (* Every remaining vertex has positive in-degree among the
               remaining set: they all lie on or feed cycles. *)
            Error remaining
      | v :: ready_rest ->
          let newly_ready =
            List.filter_map
              (fun (s, _) ->
                let d = Hashtbl.find in_deg s - 1 in
                Hashtbl.replace in_deg s d;
                if d = 0 then Some s else None)
              (succs g v)
          in
          let remaining = List.filter (fun u -> V.compare u v <> 0) remaining in
          go (v :: sorted) (ready_rest @ newly_ready) remaining
    in
    go [] (collect_ready [] order) order

  let is_dag g = match topological_sort g with Ok _ -> true | Error _ -> false

  let reachable_from g seeds =
    let visited = ref VSet.empty in
    let rec visit v =
      if not (VSet.mem v !visited) then begin
        visited := VSet.add v !visited;
        List.iter (fun (s, _) -> visit s) (succs g v)
      end
    in
    List.iter visit seeds;
    List.filter (fun v -> VSet.mem v !visited) (vertex_order g)

  let map_vertices f g = { g with labels = VMap.mapi f g.labels }
  let fold_vertices f g acc = List.fold_left (fun acc (v, a) -> f v a acc) acc (vertices g)
  let transpose g = { g with succ = g.pred; pred = g.succ }

  let longest_path g ~weight =
    match topological_sort g with
    | Error _ -> invalid_arg "Dgraph.longest_path: graph has a cycle"
    | Ok order ->
        let dist = Hashtbl.create 16 in
        List.iter
          (fun v ->
            let d =
              List.fold_left
                (fun acc (p, _) -> Float.max acc (Hashtbl.find dist p +. weight p))
                0. (preds g v)
            in
            Hashtbl.replace dist v d)
          order;
        let total =
          List.fold_left (fun acc v -> Float.max acc (Hashtbl.find dist v +. weight v)) 0. order
        in
        let lookup v =
          match Hashtbl.find_opt dist v with
          | Some d -> d
          | None -> invalid_arg "Dgraph.longest_path: unknown vertex"
        in
        (lookup, total)
end
