type severity = Error | Warning | Note

type span = { file : string option; line : int; col : int }

type t = {
  severity : severity;
  code : string;
  span : span option;
  message : string;
  notes : string list;
}

module Code = struct
  let lex = "SF0101"
  let syntax = "SF0102"
  let json_parse = "SF0201"
  let json_type = "SF0202"
  let format = "SF0203"
  let io = "SF0204"
  let validation = "SF0301"
  let transform = "SF0302"
  let analysis_invariant = "SF0401"
  let partition = "SF0501"
  let partition_invariant = "SF0502"
  let partition_fallback = "SF0503"
  let codegen = "SF0601"
  let sim_deadlock = "SF0701"
  let sim_mismatch = "SF0702"
  let sim_timeout = "SF0703"
  let sim_config = "SF0704"
  let pass_verification = "SF0801"
  let internal = "SF0901"
  let cancelled = "SF0902"
  let overload = "SF0903"
  let deadline = "SF0904"
  let serve_internal = "SF0905"
end

let span ?file ~line ~col () = { file; line; col }
let file_span file = { file = Some file; line = 0; col = 0 }

let make ?span ?(notes = []) ~severity ~code message =
  { severity; code; span; message; notes }

let error ?span ?notes ~code message = make ?span ?notes ~severity:Error ~code message
let warning ?span ?notes ~code message = make ?span ?notes ~severity:Warning ~code message
let note ?span ~code message = make ?span ~severity:Note ~code message

let errorf ?span ?notes ~code fmt =
  Printf.ksprintf (fun m -> error ?span ?notes ~code m) fmt

let warningf ?span ?notes ~code fmt =
  Printf.ksprintf (fun m -> warning ?span ?notes ~code m) fmt

let with_file file d =
  match d.span with
  | Some s -> { d with span = Some { s with file = Some file } }
  | None -> { d with span = Some (file_span file) }

let add_note n d = { d with notes = d.notes @ [ n ] }

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let errors ds = List.filter is_error ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

let span_to_string s =
  let file = match s.file with Some f -> f | None -> "" in
  if s.line <= 0 then file
  else if file = "" then Printf.sprintf "line %d, column %d" s.line s.col
  else Printf.sprintf "%s:%d:%d" file s.line s.col

let pp fmt d =
  (match d.span with
  | Some s ->
      let loc = span_to_string s in
      if loc <> "" then Format.fprintf fmt "%s: " loc
  | None -> ());
  Format.fprintf fmt "%s[%s]: %s" (severity_name d.severity) d.code d.message;
  List.iter (fun n -> Format.fprintf fmt "@.  note: %s" n) d.notes

let pp_list fmt ds =
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf fmt "@.";
      pp fmt d)
    ds

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  let span_json s =
    Json.Obj
      ((match s.file with Some f -> [ ("file", Json.String f) ] | None -> [])
      @ (if s.line > 0 then [ ("line", Json.Int s.line); ("col", Json.Int s.col) ] else []))
  in
  Json.Obj
    ([
       ("severity", Json.String (severity_name d.severity));
       ("code", Json.String d.code);
     ]
    @ (match d.span with Some s -> [ ("span", span_json s) ] | None -> [])
    @ [ ("message", Json.String d.message) ]
    @
    if d.notes = [] then []
    else [ ("notes", Json.List (List.map (fun n -> Json.String n) d.notes)) ])

let list_to_json ds = Json.Obj [ ("diagnostics", Json.List (List.map to_json ds)) ]

(* Exit codes are stable per layer: the first error's code selects the
   layer (see the .mli table). *)
let layer_exit code =
  if String.length code >= 4 then
    match String.sub code 0 4 with
    | "SF01" | "SF02" -> 2
    | "SF03" -> 3
    | "SF04" -> 4
    | "SF05" -> 5
    | "SF06" -> 6
    | "SF07" -> 7
    | "SF08" -> 8
    | "SF09" -> 9
    | _ -> 1
  else 1

let exit_code ds =
  match errors ds with [] -> 0 | d :: _ -> layer_exit d.code
