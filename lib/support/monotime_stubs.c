/* Monotonic clock for timing measurements.

   OCaml 5.1's Unix library exposes only gettimeofday, which is wall
   clock: NTP slews and manual clock changes can make intervals
   negative or wildly wrong. Every duration the toolchain reports
   (pass timings, per-request serve telemetry, bench sections) should
   come from CLOCK_MONOTONIC instead; this stub is the one place that
   reads it. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value sf_monotime_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
