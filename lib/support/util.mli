(** Small shared helpers used across the StencilFlow stack. *)

val monotime : unit -> float
(** Seconds on the system's monotonic clock ([CLOCK_MONOTONIC], read
    through a C stub — OCaml 5.1's Unix only exposes wall clock).
    The origin is arbitrary; only differences are meaningful. Use this,
    never [Unix.gettimeofday], to measure durations: the wall clock can
    be slewed or stepped mid-measurement. *)

val monotime_ns : unit -> int64
(** The same clock in integer nanoseconds. *)

val range : int -> int list
(** [range n] is [[0; 1; ...; n-1]]; empty when [n <= 0]. *)

val sum_int : int list -> int
val sum_float : float list -> float
val max_int_list : int list -> int
(** Maximum of a list; raises [Invalid_argument] on the empty list. *)

val float_close : ?rel:float -> ?abs:float -> float -> float -> bool
(** Relative/absolute tolerance comparison (defaults: 1e-9 both). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is ⌈a / b⌉ for positive [b]. *)

val clamp : lo:int -> hi:int -> int -> int

val string_concat_map : string -> ('a -> string) -> 'a list -> string
(** [string_concat_map sep f l] is [String.concat sep (List.map f l)]. *)

val human_rate : float -> string
(** Format an operations-per-second figure: ["264.0 GOp/s"], ["4.18 TOp/s"]. *)

val human_bytes_rate : float -> string
(** Format a bandwidth figure in B/s: ["36.4 GB/s"]. *)

val human_time : float -> string
(** Format a duration in seconds: ["1178 us"], ["1.2 ms"]. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole] (0 when [whole = 0]). *)
