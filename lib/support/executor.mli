(** Shared fixed-size domain pool for embarrassingly-parallel work.

    One pool serves every independent-simulation caller in the process —
    fault campaigns, autotune sweeps, under-provisioning probe arms, the
    bench harness — so concurrency is bounded once, by the pool size,
    rather than per call site. Tasks are distributed over per-worker
    deques (each worker owns a contiguous block of task indices) and
    idle workers steal from the others, so an unbalanced workload — some
    simulations deadlocking after thousands of idle cycles, others
    finishing early — still keeps every domain busy.

    {b Determinism.} [map pool n f] computes [f i] for every [i] and
    returns the results indexed by [i]. Which worker computes which task
    depends on steal order, but the result array does not: as long as
    each [f i] is itself deterministic (no shared mutable state), the
    output is byte-identical to the [jobs = 1] serial loop. This is what
    lets campaign reports and sweep tables stay bit-reproducible under
    any [--jobs].

    {b Exceptions.} The first task exception (in completion order, which
    is scheduling-dependent) is re-raised by [map]/[run] in the
    submitting domain with its backtrace; remaining tasks are claimed
    and dropped without running. The pool survives and can run further
    batches.

    {b Limits.} Batches must not nest: calling [map]/[run] from inside a
    task of the same pool deadlocks the submitter. A pool with
    [jobs <= 1] never spawns a domain and runs every batch inline, so
    serial behaviour is always available as the degenerate case.

    {b Persistent submission.} Alongside the barrier-style batches, a
    pool accepts individual fire-and-forget tasks through {!submit}:
    the task is queued and executed asynchronously by the next free
    worker, and the submitter continues immediately. This is the serve
    tier's request path — a reader domain admits requests as tasks and
    a writer domain collects their responses, with completion signalled
    by whatever channel the task itself writes to. Submitted tasks and
    batches share the workers; batches take priority (a submitter is
    blocked on them). *)

type t

val create : ?dedicated:bool -> jobs:int -> unit -> t
(** A pool executing up to [jobs] tasks concurrently: the submitting
    domain participates, so [jobs - 1] worker domains are spawned
    (none when [jobs <= 1]). [jobs] is clamped to at least 1.
    [dedicated] (default false) spawns [jobs] worker domains instead —
    for submission-style pools whose creating domain never drains
    batches itself (e.g. the serve reader), so [jobs] tasks really run
    concurrently without counting the submitter. *)

val jobs : t -> int
(** The configured concurrency (>= 1). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: what [--jobs 0] / "auto"
    resolves to. *)

val run : t -> int -> (int -> unit) -> unit
(** [run pool n f] executes [f 0 .. f (n-1)], each exactly once, across
    the pool, and returns when all have finished. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] is [Array.init n f] computed across the pool, with
    the determinism guarantee above. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one task for asynchronous execution by a pool worker and
    return immediately. Completion is not signalled by the pool — the
    task communicates through its own side effects (typically a
    response queue). Tasks still queued at {!shutdown} are drained
    before the workers exit, so a submitted task always runs exactly
    once. A task's escaped exception kills its worker; the pool records
    the crash ({!crashes}) and spawns a replacement worker, so the
    pool's concurrency survives — but the task's remaining work is
    lost, so tasks that must answer someone should catch their own.
    On a pool with no worker domains (non-dedicated [jobs <= 1]) the
    task runs inline in the submitting domain before [submit] returns
    and its exception propagates to the submitter. Raises
    [Invalid_argument] after {!shutdown}. *)

val alive : t -> int
(** Spawned worker domains currently running. Equals the spawn count
    ([jobs] when dedicated, [jobs - 1] otherwise) in steady state —
    crashed workers are respawned — and drops only transiently between
    a crash and its respawn, or permanently during {!shutdown}. *)

val crashes : t -> int
(** Cumulative count of workers killed by an escaped {!submit}-task
    exception (each was replaced unless the pool was shutting down).
    Surfaced by the serve tier's [health] verb. *)

val worker_index : unit -> int
(** The calling domain's worker number within its pool ([1 .. workers]),
    or [0] when the caller is not a pool worker (e.g. the submitting
    domain, or a task inlined by [submit] on a workerless pool) —
    telemetry for per-request worker attribution in serve responses. *)

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards;
    idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], apply, then [shutdown] (also on exception). *)
