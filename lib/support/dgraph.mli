(** Persistent directed graphs with labelled vertices and edges.

    The stencil program (paper, Sec. II) and the dataflow graphs derived
    from it are DAGs; this module provides the graph substrate shared by
    the IR, the buffer analyses (Sec. IV), and the device partitioner
    (Sec. III-B): topological sorting, cycle detection, source/sink
    queries, and traversals. At most one edge exists per (src, dst) pair;
    re-adding replaces the edge label. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (V : ORDERED) : sig
  type vertex = V.t

  type ('a, 'e) t
  (** A graph with vertex labels of type ['a] and edge labels of type ['e]. *)

  val empty : ('a, 'e) t

  val add_vertex : ('a, 'e) t -> vertex -> 'a -> ('a, 'e) t
  (** Insert or relabel a vertex. *)

  val add_edge : ('a, 'e) t -> src:vertex -> dst:vertex -> 'e -> ('a, 'e) t
  (** Insert or relabel the edge [src -> dst]. Raises [Invalid_argument]
      if either endpoint is not a vertex of the graph. *)

  val remove_vertex : ('a, 'e) t -> vertex -> ('a, 'e) t
  (** Remove a vertex and all incident edges; no-op when absent. *)

  val remove_edge : ('a, 'e) t -> src:vertex -> dst:vertex -> ('a, 'e) t
  val mem_vertex : ('a, 'e) t -> vertex -> bool
  val mem_edge : ('a, 'e) t -> src:vertex -> dst:vertex -> bool
  val find_vertex : ('a, 'e) t -> vertex -> 'a option
  val find_vertex_exn : ('a, 'e) t -> vertex -> 'a
  val find_edge : ('a, 'e) t -> src:vertex -> dst:vertex -> 'e option

  val succs : ('a, 'e) t -> vertex -> (vertex * 'e) list
  (** Outgoing neighbours with edge labels, in insertion order. *)

  val preds : ('a, 'e) t -> vertex -> (vertex * 'e) list
  (** Incoming neighbours with edge labels, in insertion order. *)

  val out_degree : ('a, 'e) t -> vertex -> int
  val in_degree : ('a, 'e) t -> vertex -> int
  val vertices : ('a, 'e) t -> (vertex * 'a) list
  val edges : ('a, 'e) t -> (vertex * vertex * 'e) list
  val num_vertices : ('a, 'e) t -> int
  val num_edges : ('a, 'e) t -> int

  val sources : ('a, 'e) t -> vertex list
  (** Vertices with no incoming edges. *)

  val sinks : ('a, 'e) t -> vertex list
  (** Vertices with no outgoing edges. *)

  val topological_sort : ('a, 'e) t -> (vertex list, vertex list) result
  (** [Ok order] lists every vertex after all its predecessors;
      [Error cycle] returns the vertices of one strongly connected
      component witnessing a cycle. *)

  val is_dag : ('a, 'e) t -> bool

  val reachable_from : ('a, 'e) t -> vertex list -> vertex list
  (** All vertices reachable from the given seeds (seeds included). *)

  val map_vertices : (vertex -> 'a -> 'b) -> ('a, 'e) t -> ('b, 'e) t
  val fold_vertices : (vertex -> 'a -> 'acc -> 'acc) -> ('a, 'e) t -> 'acc -> 'acc
  val transpose : ('a, 'e) t -> ('a, 'e) t

  val longest_path : ('a, 'e) t -> weight:(vertex -> float) -> (vertex -> float) * float
  (** [longest_path g ~weight] returns [(dist, max)] where [dist v] is the
      maximum, over all paths from a source to [v], of the summed weights
      of the vertices strictly before [v] on the path, and [max] is the
      largest [dist v + weight v] over all vertices. This is the delay
      accumulation used by the delay-buffer analysis (paper, Sec. IV-B).
      Raises [Invalid_argument] when the graph has a cycle. *)
end
