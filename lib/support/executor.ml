(* Fixed domain pool with per-worker deques and work stealing.

   Tasks of a batch are integer indices, block-partitioned across the
   workers' deques up front (worker k owns a contiguous slice, so the
   common balanced case never touches a foreign deque). Each worker pops
   its own deque from the bottom and steals from the others' tops when
   empty — the classic Chase-Lev discipline, simplified by the fact that
   owners never push after the batch is installed, so the arrays never
   grow. All cross-domain coordination is OCaml 5 SC atomics; batch
   installation and completion are handed over under the pool mutex,
   which also provides the happens-before edge that publishes task
   results (written into caller arrays by workers) back to the
   submitter. *)

type deque = {
  tasks : int array;
  top : int Atomic.t;  (* next index to steal; CAS to claim *)
  bottom : int Atomic.t;  (* one past the owner's end *)
}

let pop_bottom d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Empty; restore the canonical empty shape (bottom = top). *)
    Atomic.set d.bottom t;
    -1
  end
  else if b = t then begin
    (* Last element: race the thieves for it via top. *)
    let v = if Atomic.compare_and_set d.top t (t + 1) then d.tasks.(b) else -1 in
    Atomic.set d.bottom (t + 1);
    v
  end
  else d.tasks.(b)

(* -1 = observed empty, -2 = lost a race (the deque may still hold work). *)
let try_steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then -1
  else begin
    let v = d.tasks.(t) in
    if Atomic.compare_and_set d.top t (t + 1) then v else -2
  end

type batch = {
  deques : deque array;
  work : int -> unit;
  pending : int Atomic.t;  (* tasks not yet executed or dropped *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  jobs : int;
  mu : Mutex.t;
  work_cv : Condition.t;  (* workers wait here for the next batch *)
  done_cv : Condition.t;  (* the submitter waits here for completion *)
  mutable current : (int * batch) option;  (* generation, batch *)
  mutable generation : int;
  submitted : (unit -> unit) Queue.t;  (* persistent one-off tasks *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  mutable live : int;  (* spawned worker domains currently running *)
  mutable crashes : int;  (* workers killed by an escaped task exception *)
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

(* Which pool worker the current domain is (0 = a domain that is not a
   pool worker, e.g. the submitter). Set once per worker at spawn. *)
let worker_key = Domain.DLS.new_key (fun () -> 0)
let worker_index () = Domain.DLS.get worker_key

(* Run one claimed task. After a failure the batch is cancelled: tasks
   are still claimed (so [pending] drains and the submitter wakes) but
   no longer run. *)
let exec pool b i =
  (match Atomic.get b.failed with
  | Some _ -> ()
  | None -> (
      try b.work i
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set b.failed None (Some (e, bt)))));
  if Atomic.fetch_and_add b.pending (-1) = 1 then begin
    Mutex.lock pool.mu;
    Condition.broadcast pool.done_cv;
    Mutex.unlock pool.mu
  end

(* Drain the batch from worker [me]'s perspective: own deque first, then
   sweep the others for steals. A lost steal race means the victim may
   still hold work, so the sweep restarts; a clean all-empty sweep means
   every task is claimed and this worker is done (claimed tasks finish
   in their claimants before those exit). *)
let drain pool b me =
  let n = Array.length b.deques in
  let rec own () =
    let v = pop_bottom b.deques.(me) in
    if v >= 0 then begin
      exec pool b v;
      own ()
    end
    else sweep 0 false
  and sweep k contended =
    if k >= n then if contended then sweep 0 false else ()
    else begin
      let v = try_steal b.deques.((me + 1 + k) mod n) in
      if v >= 0 then begin
        exec pool b v;
        own ()
      end
      else sweep (k + 1) (contended || v = -2)
    end
  in
  own ()

(* A worker alternates between three duties, in priority order: drain
   the current barrier batch (a submitter is blocked on it), run one
   submitted task, park. Submitted tasks still queued at shutdown are
   drained before the worker exits, so [submit]ted work is never lost.
   A submitted task's exception propagates out of [worker] and kills
   this domain — the crash guard in [spawn_worker] then accounts for it
   and spawns a replacement, so the pool's concurrency survives tasks
   that fail to catch their own. *)
let worker pool me () =
  Domain.DLS.set worker_key me;
  let last = ref 0 in
  let rec loop () =
    Mutex.lock pool.mu;
    let rec next () =
      match pool.current with
      | Some (g, b) when g > !last ->
          last := g;
          `Batch b
      | _ ->
          if not (Queue.is_empty pool.submitted) then `Task (Queue.pop pool.submitted)
          else if pool.stopped then `Exit
          else begin
            Condition.wait pool.work_cv pool.mu;
            next ()
          end
    in
    let duty = next () in
    Mutex.unlock pool.mu;
    match duty with
    | `Exit -> ()
    | `Batch b ->
        drain pool b me;
        loop ()
    | `Task f ->
        f ();
        loop ()
  in
  loop ()

(* Spawn worker [me] under a crash guard: if a submitted task's
   exception escapes and kills the worker, record the crash and spawn a
   replacement (same worker number) unless the pool is shutting down.
   The dying domain itself terminates normally, so [shutdown]'s joins
   never re-raise. *)
let rec spawn_worker pool me =
  Domain.spawn (fun () ->
      match worker pool me () with
      | () ->
          Mutex.lock pool.mu;
          pool.live <- pool.live - 1;
          Mutex.unlock pool.mu
      | exception _ ->
          Mutex.lock pool.mu;
          pool.live <- pool.live - 1;
          pool.crashes <- pool.crashes + 1;
          if not pool.stopped then begin
            pool.live <- pool.live + 1;
            pool.domains <- spawn_worker pool me :: pool.domains
          end;
          Mutex.unlock pool.mu)

let create ?(dedicated = false) ~jobs () =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      generation = 0;
      submitted = Queue.create ();
      stopped = false;
      domains = [];
      live = 0;
      crashes = 0;
    }
  in
  let workers = if dedicated then jobs else jobs - 1 in
  pool.live <- max 0 workers;
  pool.domains <- List.init workers (fun k -> spawn_worker pool (k + 1));
  pool

let alive t =
  Mutex.lock t.mu;
  let n = t.live in
  Mutex.unlock t.mu;
  n

let crashes t =
  Mutex.lock t.mu;
  let n = t.crashes in
  Mutex.unlock t.mu;
  n

let submit t f =
  Mutex.lock t.mu;
  if t.stopped then begin
    Mutex.unlock t.mu;
    invalid_arg "Executor.submit: pool is shut down"
  end
  else if t.domains = [] then begin
    (* No worker domains (a non-dedicated jobs=1 pool): run inline. *)
    Mutex.unlock t.mu;
    f ()
  end
  else begin
    Queue.push f t.submitted;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mu
  end

let shutdown t =
  Mutex.lock t.mu;
  let ds = t.domains in
  t.stopped <- true;
  t.domains <- [];
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  List.iter Domain.join ds

let run pool n f =
  if n > 0 then begin
    if pool.stopped then invalid_arg "Executor.run: pool is shut down";
    if pool.jobs <= 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let w = pool.jobs in
      let deques =
        Array.init w (fun k ->
            let lo = k * n / w and hi = (k + 1) * n / w in
            {
              tasks = Array.init (hi - lo) (fun j -> lo + j);
              top = Atomic.make 0;
              bottom = Atomic.make (hi - lo);
            })
      in
      let b = { deques; work = f; pending = Atomic.make n; failed = Atomic.make None } in
      Mutex.lock pool.mu;
      pool.generation <- pool.generation + 1;
      pool.current <- Some (pool.generation, b);
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.mu;
      (* The submitter works too: jobs = N means N executing domains. *)
      drain pool b 0;
      Mutex.lock pool.mu;
      while Atomic.get b.pending > 0 do
        Condition.wait pool.done_cv pool.mu
      done;
      pool.current <- None;
      Mutex.unlock pool.mu;
      match Atomic.get b.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let map pool n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run pool n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list pool f xs =
  let arr = Array.of_list xs in
  Array.to_list (map pool (Array.length arr) (fun i -> f arr.(i)))

let with_pool ~jobs f =
  let pool = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
