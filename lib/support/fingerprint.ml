(* Content digests over a canonical tagged serialization, hashed with
   the stdlib MD5 (Digest). MD5 is not collision-resistant against an
   adversary, but the cache only ever faces its own serializations;
   128 bits against accidental collision is ample. *)

type t = string (* raw 16-byte MD5 *)

let equal = String.equal
let compare = String.compare
let to_hex = Digest.to_hex

type state = Buffer.t

let create () = Buffer.create 256

(* Every component is tagged with a one-byte kind and, for variable
   length payloads, length-prefixed, so component boundaries are
   unambiguous in the byte stream. *)
let add_string st s =
  Buffer.add_char st 's';
  Buffer.add_string st (string_of_int (String.length s));
  Buffer.add_char st ':';
  Buffer.add_string st s

let add_int st n =
  Buffer.add_char st 'i';
  Buffer.add_string st (string_of_int n);
  Buffer.add_char st ';'

let add_float st f =
  Buffer.add_char st 'f';
  Buffer.add_int64_le st (Int64.bits_of_float f)

let add_bool st b = Buffer.add_char st (if b then 'T' else 'F')

let add_option st add = function
  | None -> Buffer.add_char st 'N'
  | Some v ->
      Buffer.add_char st 'S';
      add st v

let add_list st add xs =
  Buffer.add_char st 'l';
  Buffer.add_string st (string_of_int (List.length xs));
  Buffer.add_char st ':';
  List.iter (add st) xs

let add_fingerprint st (fp : t) =
  Buffer.add_char st 'd';
  Buffer.add_string st fp

let finish st = Digest.string (Buffer.contents st)

let digest f =
  let st = create () in
  f st;
  finish st

let of_string s = digest (fun st -> add_string st s)
let combine fps = digest (fun st -> add_list st add_fingerprint fps)
