type t = { dir : string; version : string }

(* Bumped whenever the serialized artifact format changes shape; stale
   blobs are then ignored rather than misread. *)
let default_version = "sf-store-1"

let open_ ?(version = default_version) dir = { dir; version }
let version t = t.version
let dir t = t.dir

(* Keys come from Fingerprint.to_hex; reject anything else so a
   malicious or corrupted key can never escape the store root. *)
let valid_key key =
  String.length key >= 2
  && String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) key

let blob_path t ~key =
  Filename.concat (Filename.concat t.dir (String.sub key 0 2)) (key ^ ".blob")

let mkdir_p dir =
  let rec go dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      go (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let find t ~key =
  if not (valid_key key) then `Absent
  else
    let path = blob_path t ~key in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> `Absent
    | content -> (
        match String.index_opt content '\n' with
        | None -> `Stale
        | Some nl ->
            if String.equal (String.sub content 0 nl) t.version then
              `Found (String.sub content (nl + 1) (String.length content - nl - 1))
            else `Stale)

let put t ~key payload =
  valid_key key
  &&
  let path = blob_path t ~key in
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc t.version;
        Out_channel.output_char oc '\n';
        Out_channel.output_string oc payload)
  with
  | exception Sys_error _ -> false
  | () -> (
      try
        Sys.rename tmp path;
        true
      with Sys_error _ ->
        (try Sys.remove tmp with Sys_error _ -> ());
        false)

let clear t =
  let removed = ref 0 in
  let subdirs = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.iter
    (fun sub ->
      let subpath = Filename.concat t.dir sub in
      if try Sys.is_directory subpath with Sys_error _ -> false then
        Array.iter
          (fun file ->
            if Filename.check_suffix file ".blob" then begin
              try
                Sys.remove (Filename.concat subpath file);
                incr removed
              with Sys_error _ -> ()
            end)
          (try Sys.readdir subpath with Sys_error _ -> [||]))
    subdirs;
  !removed
