type t = { dir : string; version : string }

(* Bumped whenever the serialized artifact format changes shape; stale
   blobs are then ignored rather than misread. v2 added the checksum
   trailer, so v1 blobs (no trailer) surface as `Stale, not `Corrupt. *)
let default_version = "sf-store-2"

let open_ ?(version = default_version) dir = { dir; version }
let version t = t.version
let dir t = t.dir

(* Keys come from Fingerprint.to_hex; reject anything else so a
   malicious or corrupted key can never escape the store root. *)
let valid_key key =
  String.length key >= 2
  && String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) key

let blob_path t ~key =
  Filename.concat (Filename.concat t.dir (String.sub key 0 2)) (key ^ ".blob")

let mkdir_p dir =
  let rec go dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      go (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let checksum payload = Fingerprint.to_hex (Fingerprint.of_string payload)
let checksum_len = 32

let is_hex s = String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) s

(* Classify raw blob bytes: [version "\n" payload "\n" hex_md5(payload)].
   The trailer is parsed from the end so payloads may contain newlines.
   Anything that is not a well-formed blob of the expected version is
   `Corrupt — except a well-formed header with a different version,
   which is `Stale (a schema change, not damage). *)
let classify t content =
  match String.index_opt content '\n' with
  | None -> `Corrupt
  | Some nl ->
      if not (String.equal (String.sub content 0 nl) t.version) then `Stale
      else
        let body_len = String.length content - nl - 1 in
        if body_len < checksum_len + 1 then `Corrupt
        else
          let trailer_nl = String.length content - checksum_len - 1 in
          let trailer = String.sub content (trailer_nl + 1) checksum_len in
          if content.[trailer_nl] <> '\n' || not (is_hex trailer) then `Corrupt
          else
            let payload = String.sub content (nl + 1) (trailer_nl - nl - 1) in
            if String.equal (checksum payload) trailer then `Found payload
            else `Corrupt

(* Move a damaged blob aside so it stops shadowing future writes but
   stays available for post-mortem inspection. Best-effort: if the
   rename fails the blob is simply reported corrupt again next read. *)
let quarantine path =
  try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ()

let find t ~key =
  if not (valid_key key) then `Absent
  else
    let path = blob_path t ~key in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> `Absent
    | exception _ -> `Absent
    | content -> (
        match classify t content with
        | `Found payload -> `Found payload
        | `Stale -> `Stale
        | `Corrupt ->
            quarantine path;
            `Corrupt)

let put t ~key payload =
  valid_key key
  &&
  let path = blob_path t ~key in
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc t.version;
        Out_channel.output_char oc '\n';
        Out_channel.output_string oc payload;
        Out_channel.output_char oc '\n';
        Out_channel.output_string oc (checksum payload))
  with
  | exception Sys_error _ -> false
  | () -> (
      try
        Sys.rename tmp path;
        true
      with Sys_error _ ->
        (try Sys.remove tmp with Sys_error _ -> ());
        false)

let iter_blobs t f =
  let subdirs = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.iter
    (fun sub ->
      let subpath = Filename.concat t.dir sub in
      if try Sys.is_directory subpath with Sys_error _ -> false then
        Array.iter
          (fun file ->
            if Filename.check_suffix file ".blob" then
              f (Filename.concat subpath file))
          (try Sys.readdir subpath with Sys_error _ -> [||]))
    subdirs

let clear t =
  let removed = ref 0 in
  iter_blobs t (fun path ->
      try
        Sys.remove path;
        incr removed
      with Sys_error _ -> ());
  !removed

type scrub_report = { scanned : int; ok : int; stale : int; corrupt : int }

let scrub t =
  let scanned = ref 0 and ok = ref 0 and stale = ref 0 and corrupt = ref 0 in
  iter_blobs t (fun path ->
      incr scanned;
      match In_channel.with_open_bin path In_channel.input_all with
      | exception _ ->
          (* Unreadable counts as corrupt but cannot be quarantined. *)
          incr corrupt
      | content -> (
          match classify t content with
          | `Found _ -> incr ok
          | `Stale -> incr stale
          | `Corrupt ->
              quarantine path;
              incr corrupt));
  { scanned = !scanned; ok = !ok; stale = !stale; corrupt = !corrupt }
