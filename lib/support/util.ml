external monotime_ns : unit -> int64 = "sf_monotime_ns"

let monotime () = Int64.to_float (monotime_ns ()) *. 1e-9

let range n = List.init (max 0 n) Fun.id
let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.

let max_int_list = function
  | [] -> invalid_arg "Util.max_int_list: empty list"
  | x :: rest -> List.fold_left max x rest

let float_close ?(rel = 1e-9) ?(abs = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let ceil_div a b =
  if b <= 0 then invalid_arg "Util.ceil_div: non-positive divisor";
  (a + b - 1) / b

let clamp ~lo ~hi x = max lo (min hi x)
let string_concat_map sep f l = String.concat sep (List.map f l)

let scaled units value =
  let rec go value = function
    | [] -> assert false
    | [ unit_name ] -> (value, unit_name)
    | unit_name :: rest -> if Float.abs value < 1000. then (value, unit_name) else go (value /. 1000.) rest
  in
  go value units

let human_rate ops_per_s =
  let value, unit_name = scaled [ "Op/s"; "KOp/s"; "MOp/s"; "GOp/s"; "TOp/s"; "POp/s" ] ops_per_s in
  Printf.sprintf "%.2f %s" value unit_name

let human_bytes_rate bytes_per_s =
  let value, unit_name = scaled [ "B/s"; "KB/s"; "MB/s"; "GB/s"; "TB/s" ] bytes_per_s in
  Printf.sprintf "%.1f %s" value unit_name

let human_time seconds =
  if seconds < 1e-3 then Printf.sprintf "%.0f us" (seconds *. 1e6)
  else if seconds < 1. then Printf.sprintf "%.2f ms" (seconds *. 1e3)
  else Printf.sprintf "%.2f s" seconds

let percent part whole = if whole = 0. then 0. else 100. *. part /. whole
