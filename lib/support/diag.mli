(** Structured diagnostics for the whole toolchain.

    Every layer reports failures as values of {!t} instead of ad-hoc
    string exceptions: a severity, a stable error code (the table below),
    an optional source span, a message, and attached notes. Fallible
    entry points follow the [('a, t list) result] idiom throughout; the
    few remaining [_exn] entry points (e.g. [Engine.run_exn]) are
    conveniences for infallible-by-construction call sites, not a
    parallel API surface.

    {2 Stable diagnostic codes}

    Codes are grouped by layer; the hundreds digit pair is the layer and
    also determines the process exit code of the CLI (see {!exit_code}):

    {v
      SF01xx  DSL frontend (lexer SF0101, parser SF0102)        exit 2
      SF02xx  JSON frontend (parse SF0201, type SF0202,
              format SF0203, io SF0204)                         exit 2
      SF03xx  program validation SF0301, transformation SF0302  exit 3
      SF04xx  analysis invariants (delay-buffer slack SF0401)   exit 4
      SF05xx  mapping (partition SF0501, partition invariant
              SF0502, fallback warning SF0503)                  exit 5
      SF06xx  code generation SF0601                            exit 6
      SF07xx  simulation (deadlock SF0701, mismatch SF0702,
              timeout SF0703, invalid config SF0704)            exit 7
      SF08xx  optimization-pass verification SF0801             exit 8
      SF09xx  internal errors SF0901, cancelled SF0902,
              overload SF0903, deadline SF0904, serve
              internal SF0905                                   exit 9
    v} *)

type severity = Error | Warning | Note

type span = {
  file : string option;
  line : int;  (** 1-based; 0 when only the file is known. *)
  col : int;  (** 1-based; 0 when only the file is known. *)
}

type t = {
  severity : severity;
  code : string;  (** Stable code from the table above. *)
  span : span option;
  message : string;
  notes : string list;
}

(** The stable code table (see the module docstring). *)
module Code : sig
  val lex : string
  val syntax : string
  val json_parse : string
  val json_type : string
  val format : string
  val io : string
  val validation : string
  val transform : string
  val analysis_invariant : string
  val partition : string
  val partition_invariant : string
  val partition_fallback : string
  val codegen : string
  val sim_deadlock : string
  val sim_mismatch : string
  val sim_timeout : string
  val sim_config : string
  val pass_verification : string

  val internal : string
  (** [SF0901] — escaped exception. *)

  val cancelled : string
  (** [SF0902] — request cancelled at a pass boundary (serve [cancel]
      verb); the pipeline stops cleanly, nothing is cached. *)

  val overload : string
  (** [SF0903] — serve admission queue full; the request was rejected
      without executing (resubmit later or raise [--queue-depth]). *)

  val deadline : string
  (** [SF0904] — request deadline exceeded at a pass boundary
      ([deadline_ms] request field or [--deadline-ms] default). Passes
      completed before the deadline stay cached; only the remaining
      suffix is abandoned. *)

  val serve_internal : string
  (** [SF0905] — an exception escaped a serve worker while executing a
      request. The crash is isolated: the request is answered with this
      diag (backtrace attached as a note) and the pool keeps serving. *)
end

val span : ?file:string -> line:int -> col:int -> unit -> span
val file_span : string -> span

val make :
  ?span:span -> ?notes:string list -> severity:severity -> code:string -> string -> t

val error : ?span:span -> ?notes:string list -> code:string -> string -> t
val warning : ?span:span -> ?notes:string list -> code:string -> string -> t
val note : ?span:span -> code:string -> string -> t

val errorf :
  ?span:span ->
  ?notes:string list ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

val warningf :
  ?span:span ->
  ?notes:string list ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

val with_file : string -> t -> t
(** Attach a file name: fills the span's [file] when a span is present,
    or adds a file-only span otherwise. *)

val add_note : string -> t -> t

val is_error : t -> bool
val has_errors : t list -> bool
val errors : t list -> t list
val warnings : t list -> t list

val severity_name : severity -> string
val span_to_string : span -> string

val pp : Format.formatter -> t -> unit
(** [file:line:col: error[SF0102]: message] followed by indented
    [note: ...] lines. *)

val pp_list : Format.formatter -> t list -> unit
val to_string : t -> string

val to_json : t -> Json.t
val list_to_json : t list -> Json.t
(** [{"diagnostics": [...]}] — the CLI's machine-readable format. *)

val exit_code : t list -> int
(** Stable process exit code for a diagnostic set: 0 when no error is
    present, otherwise the layer code of the first error (table above);
    unknown codes map to 1. *)
