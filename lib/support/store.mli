(** On-disk content-addressed blob store.

    Backs the in-memory artifact cache (see docs/PIPELINE.md): blobs are
    keyed by a fingerprint's hex digest and laid out two-level
    ([dir/ab/abcdef....blob]) to keep directories small. Every blob is
    written with a version header; reading a blob whose header does not
    match the store's version reports [`Stale] instead of returning
    bytes that a different schema produced. Writes are atomic (temp file
    + rename), so a crashed or concurrent writer can never leave a
    torn blob behind. All I/O failures degrade to misses — the store is
    an accelerator, never a correctness dependency. *)

type t

val open_ : ?version:string -> string -> t
(** Open (creating directories as needed is deferred to {!put}) a store
    rooted at the given directory. [version] defaults to the library's
    cache schema version; bump it whenever the serialized artifact
    format changes. *)

val version : t -> string
val dir : t -> string

val find : t -> key:string -> [ `Found of string | `Absent | `Stale ]
(** Look a blob up by hex key. [`Stale] means a blob exists but its
    version header does not match {!version} (it is left on disk;
    {!clear} removes it). Malformed keys and I/O failures are
    [`Absent]. *)

val put : t -> key:string -> string -> bool
(** Write a blob atomically. Returns false (and writes nothing) on I/O
    failure or a malformed key; the cache then simply stays in-memory. *)

val clear : t -> int
(** Delete every blob (any version). Returns the number removed. *)
