(** On-disk content-addressed blob store.

    Backs the in-memory artifact cache (see docs/PIPELINE.md): blobs are
    keyed by a fingerprint's hex digest and laid out two-level
    ([dir/ab/abcdef....blob]) to keep directories small. Every blob is
    written with a version header and an MD5 checksum trailer over the
    payload; reading a blob whose header does not match the store's
    version reports [`Stale], and a blob whose bytes fail the checksum
    (truncation, bit flips, torn writes that slipped past rename)
    reports [`Corrupt] and is quarantined aside as [<blob>.corrupt].
    Writes are atomic (temp file + rename). All I/O failures degrade to
    misses — the store is an accelerator, never a correctness
    dependency, and {!find} never raises on any byte sequence. *)

type t

val open_ : ?version:string -> string -> t
(** Open (creating directories as needed is deferred to {!put}) a store
    rooted at the given directory. [version] defaults to the library's
    cache schema version; bump it whenever the serialized artifact
    format changes. *)

val version : t -> string
val dir : t -> string

val find : t -> key:string -> [ `Found of string | `Absent | `Stale | `Corrupt ]
(** Look a blob up by hex key. [`Stale] means a blob exists but its
    version header does not match {!version} (it is left on disk;
    {!clear} removes it). [`Corrupt] means the blob exists with the
    right version but its payload fails the checksum trailer — the blob
    is renamed to [<path>.corrupt] and callers must treat the key as a
    miss. Malformed keys and I/O failures are [`Absent]. Never
    raises. *)

val put : t -> key:string -> string -> bool
(** Write a blob atomically (with checksum trailer). Returns false (and
    writes nothing) on I/O failure or a malformed key; the cache then
    simply stays in-memory. *)

val clear : t -> int
(** Delete every blob (any version). Returns the number removed.
    Quarantined [.corrupt] files are left for inspection. *)

type scrub_report = { scanned : int; ok : int; stale : int; corrupt : int }

val scrub : t -> scrub_report
(** Validate every blob in the store: verify version header and
    checksum trailer without deserializing payloads. Corrupt blobs are
    quarantined exactly as {!find} would. Backs the
    [stencilflow cache verify] subcommand. *)
