(** Minimal self-contained JSON parser and printer.

    StencilFlow program descriptions are JSON documents (paper, Sec. II).
    This module implements the subset of JSON needed for that format: all
    value forms, [//]-style line comments (an extension used by the example
    programs), and precise error positions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message containing line and column. *)

type error = { line : int; col : int; reason : string }
(** A structured parse failure. [line]/[col] are 1-based; both are [0]
    when the input could not be read at all (I/O failure). *)

val parse : string -> (t, error) result
(** Parse a JSON document, reporting failures as values. *)

val parse_file : string -> (t, error) result
(** Like {!parse}; I/O failures map to an [error] with [line = 0]. *)

val error_to_string : error -> string

val of_string : string -> t
(** Parse a JSON document. Raises {!Parse_error} on malformed input. *)

val of_file : string -> t
(** Parse the JSON document contained in a file. *)

val to_string : ?minify:bool -> t -> string
(** Serialize. Pretty-prints with two-space indentation unless [minify]. *)

(** {2 Accessors}

    The [get_*] functions raise {!Type_error}; the [*_opt] forms return
    [None] instead. Objects are accessed by key with {!member}. *)

exception Type_error of string

val member : string -> t -> t option
(** [member key json] is the value bound to [key] if [json] is an object. *)

val member_exn : string -> t -> t
(** Like {!member} but raises {!Type_error} when absent. *)

val get_string : t -> string
val get_int : t -> int
val get_float : t -> float
(** [get_float] accepts both [Int] and [Float] values. *)

val get_bool : t -> bool
val get_list : t -> t list
val get_obj : t -> (string * t) list

val string_opt : t -> string option
val int_opt : t -> int option
val float_opt : t -> float option
val list_opt : t -> t list option

val equal : t -> t -> bool
(** Structural equality; object key order is significant. *)

val pp : Format.formatter -> t -> unit
