(** Canonical content digests for the artifact cache.

    A fingerprint is a short stable digest of a value's {e content}:
    structurally equal values fingerprint equal, any semantic change
    fingerprints different (up to hash collisions), and the digest is
    stable across processes and sessions — the property the
    content-addressed pass cache (see docs/PIPELINE.md) is keyed on.

    Values are folded into a {!state} through typed combinators that
    tag-and-length-prefix every component, so no two distinct
    serializations collide by concatenation ambiguity (["ab"; "c"] vs
    ["a"; "bc"]). Floats are digested on their IEEE-754 bit pattern:
    NaN payloads and [-0.0] vs [0.0] are distinct, matching the
    hash-consing discipline of {!Sf_ir.Dag}. *)

type t
(** An opaque digest. Total ordering and equality are structural. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_hex : t -> string
(** 32 lowercase hex characters — the on-disk store key. *)

(** {2 One-shot digests} *)

val of_string : string -> t
(** Digest raw bytes. *)

val combine : t list -> t
(** Digest of a list of digests (order-sensitive). *)

(** {2 Incremental digesting} *)

type state

val create : unit -> state
val add_string : state -> string -> unit
val add_int : state -> int -> unit
val add_float : state -> float -> unit
(** IEEE-754 bit pattern, so [-0.0], [0.0] and distinct NaNs differ. *)

val add_bool : state -> bool -> unit
val add_option : state -> (state -> 'a -> unit) -> 'a option -> unit
val add_list : state -> (state -> 'a -> unit) -> 'a list -> unit
val add_fingerprint : state -> t -> unit
val finish : state -> t
(** The digest of everything added so far. The state must not be reused. *)

val digest : (state -> unit) -> t
(** [digest f] is [create]/[f]/[finish] in one step. *)
