type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
exception Type_error of string

type error = { line : int; col : int; reason : string }

(* Internal: carries the structured position to the [parse] boundary;
   [of_string] re-raises it as the historical [Parse_error]. *)
exception Located_error of error

(* Parsing state: a cursor over the input string that tracks line and
   column for error messages. *)
type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let fail st msg = raise (Located_error { line = st.line; col = st.col; reason = msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c but found %c" c c')
  | None -> fail st (Printf.sprintf "expected %c but reached end of input" c)

let parse_keyword st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    for _ = 1 to n do
      advance st
    done;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let is_digit c = c >= '0' && c <= '9'

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume_digits () =
    let rec go () =
      match peek st with
      | Some c when is_digit c ->
          advance st;
          go ()
      | Some _ | None -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | Some _ | None -> ());
  consume_digits ();
  (match peek st with
  | Some '.' ->
      is_float := true;
      advance st;
      consume_digits ()
  | Some _ | None -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | Some _ | None -> ());
      consume_digits ()
  | Some _ | None -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "malformed number %s" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* Integers beyond native range degrade to float. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st (Printf.sprintf "malformed number %s" text))

let parse_string_literal st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                (* Decode \uXXXX as UTF-8; surrogate pairs are not needed by
                   the program format, so a lone code point suffices. *)
                let hex = Buffer.create 4 in
                for _ = 1 to 4 do
                  match peek st with
                  | Some h ->
                      Buffer.add_char hex h;
                      advance st
                  | None -> fail st "truncated unicode escape"
                done;
                let code =
                  match int_of_string_opt ("0x" ^ Buffer.contents hex) with
                  | Some c -> c
                  | None -> fail st "malformed unicode escape"
                in
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail st (Printf.sprintf "invalid escape \\%c" c));
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string_literal st)
  | Some 't' -> parse_keyword st "true" (Bool true)
  | Some 'f' -> parse_keyword st "false" (Bool false)
  | Some 'n' -> parse_keyword st "null" Null
  | Some c when is_digit c || c = '-' -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
      advance st;
      Obj []
  | Some _ | None ->
      let rec members acc =
        skip_ws st;
        let key = parse_string_literal st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            members ((key, value) :: acc)
        | Some '}' ->
            advance st;
            Obj (List.rev ((key, value) :: acc))
        | Some c -> fail st (Printf.sprintf "expected , or } but found %c" c)
        | None -> fail st "unterminated object"
      in
      members []

and parse_list st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
      advance st;
      List []
  | Some _ | None ->
      let rec elements acc =
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            elements (value :: acc)
        | Some ']' ->
            advance st;
            List (List.rev (value :: acc))
        | Some c -> fail st (Printf.sprintf "expected , or ] but found %c" c)
        | None -> fail st "unterminated list"
      in
      elements []

let parse src =
  match
    let st = { src; pos = 0; line = 1; col = 1 } in
    let v = parse_value st in
    skip_ws st;
    match peek st with
    | None -> v
    | Some c -> fail st (Printf.sprintf "trailing content starting with %c" c)
  with
  | v -> Ok v
  | exception Located_error e -> Error e

let error_to_string (e : error) =
  Printf.sprintf "line %d, column %d: %s" e.line e.col e.reason

let of_string src =
  match parse src with Ok v -> v | Error e -> raise (Parse_error (error_to_string e))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let parse_file path =
  match read_file path with
  | src -> parse src
  | exception Sys_error m -> Error { line = 0; col = 0; reason = m }

let of_file path = of_string (read_file path)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_to_json_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(minify = false) json =
  let buf = Buffer.create 256 in
  let newline indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec emit indent json =
    match json with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_json_string f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            newline (indent + 2);
            emit (indent + 2) item)
          items;
        newline indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            newline (indent + 2);
            Buffer.add_string buf (escape_string key);
            Buffer.add_char buf ':';
            if not minify then Buffer.add_char buf ' ';
            emit (indent + 2) value)
          members;
        newline indent;
        Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let member key = function Obj members -> List.assoc_opt key members | _ -> None

let member_exn key json =
  match member key json with
  | Some v -> v
  | None -> raise (Type_error (Printf.sprintf "missing key %S in %s" key (type_name json)))

let get_string = function
  | String s -> s
  | j -> raise (Type_error ("expected string, found " ^ type_name j))

let get_int = function
  | Int i -> i
  | j -> raise (Type_error ("expected int, found " ^ type_name j))

let get_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | j -> raise (Type_error ("expected number, found " ^ type_name j))

let get_bool = function
  | Bool b -> b
  | j -> raise (Type_error ("expected bool, found " ^ type_name j))

let get_list = function
  | List items -> items
  | j -> raise (Type_error ("expected list, found " ^ type_name j))

let get_obj = function
  | Obj members -> members
  | j -> raise (Type_error ("expected object, found " ^ type_name j))

let string_opt = function String s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let list_opt = function List items -> Some items | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | String a, String b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

let pp fmt json = Format.pp_print_string fmt (to_string json)
