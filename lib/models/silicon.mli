(** Silicon efficiency accounting (paper, Sec. IX-C).

    Performance per die area compares architectures across process nodes:
    the paper reports 0.21 / 0.71 GOp/s/mm2 for the Stratix 10 with and
    without its memory bottleneck, 0.34 for the P100 and 1.04 for the
    V100 on horizontal diffusion. *)

val efficiency : performance_ops_per_s:float -> die_area_mm2:float -> float
(** GOp/s per mm2. *)
