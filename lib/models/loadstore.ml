type t = {
  name : string;
  bandwidth_bytes_per_s : float;
  achievable_fraction : float;
  die_area_mm2 : float;
  process : string;
}

let xeon_12c =
  {
    name = "Xeon 12C (E5-2690V3)";
    bandwidth_bytes_per_s = 68e9;
    achievable_fraction = 0.13;
    die_area_mm2 = 662.;
    process = "Intel 22 nm";
  }

let p100 =
  {
    name = "Tesla P100";
    bandwidth_bytes_per_s = 732e9;
    achievable_fraction = 0.08;
    die_area_mm2 = 610.;
    process = "TSMC 16 nm";
  }

let v100 =
  {
    name = "Tesla V100";
    bandwidth_bytes_per_s = 900e9;
    achievable_fraction = 0.26;
    die_area_mm2 = 815.;
    process = "TSMC 12 nm";
  }

let performance t ~ai_ops_per_byte =
  ai_ops_per_byte *. t.bandwidth_bytes_per_s *. t.achievable_fraction

let runtime t ~ai_ops_per_byte ~total_flops = total_flops /. performance t ~ai_ops_per_byte
let roof_fraction t = t.achievable_fraction
