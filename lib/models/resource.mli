(** Resource-usage estimation for generated stencil architectures.

    The paper evaluates real place-and-route results (Table I); without a
    synthesis toolchain we estimate usage from the program analysis with
    coefficients calibrated against Table I's kernels (see DESIGN.md and
    the [tab1] bench). The estimates drive the multi-device partitioner
    (Sec. III-B) and the chain-scaling benchmarks (Figs. 14-15), where
    what matters is {e how many stencil stages fit on one device}. *)

type usage = { alm : int; ff : int; m20k : int; dsp : int }

val zero : usage
val add : usage -> usage -> usage
val scale : int -> usage -> usage

val of_stencil : Sf_ir.Program.t -> Sf_ir.Stencil.t -> usage
(** Estimate one stencil unit: compute logic scaled by the vector width,
    per-lane stream/predication overhead, and M20K blocks for its
    internal buffers. *)

val of_program : Sf_ir.Program.t -> usage
(** All stencil units plus delay-buffer memory and per-off-chip-access
    infrastructure (prefetchers/writers, the global memory ring). *)

val utilization : Device.t -> usage -> float * float * float * float
(** Fractions of (alm, ff, m20k, dsp) consumed. *)

val fits : ?ceiling:float -> Device.t -> usage -> bool
(** Whether the design routes: every resource below [ceiling] (default
    0.85; high utilizations fail timing in practice — the paper's largest
    design uses 82% ALMs). *)

val max_chain_length : ?ceiling:float -> Device.t -> per_stage:usage -> fixed:usage -> int
(** Largest n with [fixed + n * per_stage] fitting — how many copies of an
    iterative stencil a device sustains (Sec. VIII-C). *)

val pp : Format.formatter -> usage -> unit
