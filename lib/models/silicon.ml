let efficiency ~performance_ops_per_s ~die_area_mm2 = performance_ops_per_s /. 1e9 /. die_area_mm2
