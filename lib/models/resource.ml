open Sf_ir

type usage = { alm : int; ff : int; m20k : int; dsp : int }

let zero = { alm = 0; ff = 0; m20k = 0; dsp = 0 }

let add a b =
  { alm = a.alm + b.alm; ff = a.ff + b.ff; m20k = a.m20k + b.m20k; dsp = a.dsp + b.dsp }

let scale k u = { alm = k * u.alm; ff = k * u.ff; m20k = k * u.m20k; dsp = k * u.dsp }

(* Calibration constants (fitted to Table I, see DESIGN.md):
   - every FP add/mul maps to one hardened DSP per vector lane; div and
     sqrt consume a DSP cluster;
   - ALMs: a per-unit base for stream control plus a per-lane cost for
     datapath glue, predication and the boundary muxes;
   - flip-flops track ALMs (pipelining registers);
   - M20Ks hold the internal buffers (2560 B each), with a small fixed
     cost per buffered field for addressing. *)
let alm_base = 4000
let alm_per_lane = 600
let alm_per_op = 60
let alm_per_cmp = 90
let ff_per_alm = 2.3
let dsp_div_cost = 4
let dsp_sqrt_cost = 4
let m20k_per_buffered_field = 2

(* Precision factor: double-precision floating point costs ~4 hardened
   DSPs per add/mul on Stratix 10 (vs 1 for fp32) and roughly twice the
   soft-logic datapath width. *)
let dsp_dtype_factor = function
  | Dtype.F64 -> 4
  | Dtype.F32 | Dtype.I32 | Dtype.I64 -> 1

let alm_dtype_factor = function Dtype.F64 | Dtype.I64 -> 2 | Dtype.F32 | Dtype.I32 -> 1

let of_stencil (p : Program.t) (s : Stencil.t) =
  let w = p.Program.vector_width in
  (* Work profile, not tree profile: codegen emits every shared DAG node
     as a single local temporary, so the pipeline instantiates one ALU
     per distinct node — shared values are computed once and fanned out,
     and the resource estimate must not bill them per occurrence. *)
  let profile = Stencil.work_profile s in
  let flop_ops = profile.Expr.adds + profile.Expr.muls in
  let cheap_ops =
    profile.Expr.mins + profile.Expr.maxs + profile.Expr.compares + profile.Expr.data_branches
    + profile.Expr.const_branches + profile.Expr.other_calls
  in
  let dsp =
    dsp_dtype_factor p.Program.dtype * w
    * (flop_ops + (dsp_div_cost * profile.Expr.divs) + (dsp_sqrt_cost * profile.Expr.sqrts))
  in
  let alm =
    alm_base
    + (alm_dtype_factor p.Program.dtype * w
      * (alm_per_lane + (alm_per_op * (flop_ops + profile.Expr.divs + profile.Expr.sqrts))
        + (alm_per_cmp * cheap_ops)))
  in
  let buffers = Sf_analysis.Internal_buffer.of_stencil p s in
  let buffer_bytes =
    List.fold_left
      (fun acc (b : Sf_analysis.Internal_buffer.t) ->
        acc + (b.size_elements * Dtype.size_bytes p.Program.dtype))
      0 buffers
  in
  let buffered_fields =
    List.length (List.filter (fun (b : Sf_analysis.Internal_buffer.t) -> b.size_elements > 0) buffers)
  in
  let m20k =
    Sf_support.Util.ceil_div buffer_bytes Device.m20k_bytes
    + (m20k_per_buffered_field * buffered_fields)
  in
  { alm; ff = int_of_float (ff_per_alm *. float_of_int alm) + (50 * w); m20k; dsp }

let memory_interface_usage (p : Program.t) =
  (* Prefetchers, writers and the memory ring: the paper's bandwidth study
     shows routing pressure growing with access points (Sec. VIII-D). *)
  let w = p.Program.vector_width in
  let full_rank = Program.rank p in
  let streams =
    List.length (List.filter (fun f -> Field.rank f = full_rank) p.Program.inputs)
    + List.length p.Program.outputs
  in
  { alm = streams * (800 + (120 * w)); ff = streams * (1800 + (250 * w)); m20k = streams * 4; dsp = 0 }

let of_program (p : Program.t) =
  let units =
    List.fold_left (fun acc s -> add acc (of_stencil p s)) zero p.Program.stencils
  in
  let analysis = Sf_analysis.Delay_buffer.analyze p in
  let delay_bytes =
    Sf_analysis.Delay_buffer.total_delay_buffer_words analysis
    * p.Program.vector_width
    * Dtype.size_bytes p.Program.dtype
  in
  let delay_m20k = Sf_support.Util.ceil_div delay_bytes Device.m20k_bytes in
  add units (add (memory_interface_usage p) { zero with m20k = delay_m20k })

let utilization (d : Device.t) u =
  ( float_of_int u.alm /. float_of_int d.Device.alm,
    float_of_int u.ff /. float_of_int d.Device.ff,
    float_of_int u.m20k /. float_of_int d.Device.m20k,
    float_of_int u.dsp /. float_of_int d.Device.dsp )

let fits ?(ceiling = 0.85) d u =
  let a, f, m, s = utilization d u in
  a <= ceiling && f <= ceiling && m <= ceiling && s <= ceiling

let max_chain_length ?(ceiling = 0.85) d ~per_stage ~fixed =
  let rec go n = if fits ~ceiling d (add fixed (scale (n + 1) per_stage)) then go (n + 1) else n in
  go 0

let pp fmt u =
  Format.fprintf fmt "ALM %d, FF %d, M20K %d, DSP %d" u.alm u.ff u.m20k u.dsp
