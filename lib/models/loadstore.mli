(** Load/store architecture baselines for the application study
    (paper, Sec. IX-B, Table II).

    The paper compares the generated FPGA architecture to the horizontal
    diffusion program emitted by the MeteoSwiss Dawn compiler for a
    12-core Xeon and for P100/V100 GPUs. Without that hardware we model
    each architecture by its memory bandwidth and the fraction of its
    bandwidth roofline the Dawn-generated code achieves — the paper's own
    %Roof column (13%, 8% and 26%): load/store architectures fall well
    short of the roofline because they cannot exploit all temporal
    locality without a fused global pipeline (Secs. I, III-A). *)

type t = {
  name : string;
  bandwidth_bytes_per_s : float;
  achievable_fraction : float;
      (** Measured fraction of the bandwidth roofline reached on
          horizontal diffusion (calibrated from Table II). *)
  die_area_mm2 : float;
  process : string;
}

val xeon_12c : t
val p100 : t
val v100 : t

val performance : t -> ai_ops_per_byte:float -> float
(** Modelled ops/s on a program of the given arithmetic intensity. *)

val runtime : t -> ai_ops_per_byte:float -> total_flops:float -> float
(** Modelled kernel runtime in seconds. *)

val roof_fraction : t -> float
(** The %Roof column entry. *)
