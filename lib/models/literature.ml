type entry = {
  label : string;
  performance_gop_s : float;
  platform : string;
  alm : int option;
  ff : int option;
  m20k : int option;
  dsp : int option;
}

let zohouri_diffusion2d =
  {
    label = "Diffusion 2D (Zohouri et al.)";
    performance_gop_s = 913.;
    platform = "Stratix 10 GX 2800";
    alm = Some 471_400;
    ff = Some 1_173_600;
    m20k = Some 2_204;
    dsp = Some 3_844;
  }

let zohouri_diffusion3d =
  {
    label = "Diffusion 3D (Zohouri et al.)";
    performance_gop_s = 934.;
    platform = "Stratix 10 GX 2800";
    alm = Some 450_500;
    ff = Some 1_078_200;
    m20k = Some 8_684;
    dsp = Some 3_592;
  }

let waidyasooriya =
  {
    label = "Waidyasooriya and Hariyama";
    performance_gop_s = 630.;
    platform = "Arria 10 GX 1150";
    alm = None;
    ff = None;
    m20k = None;
    dsp = None;
  }

let soda_jacobi3d =
  {
    label = "SODA (Jacobi 3D)";
    performance_gop_s = 135.;
    platform = "ADM-PCIE-KU3";
    alm = None;
    ff = None;
    m20k = None;
    dsp = None;
  }

let niu =
  {
    label = "Niu et al.";
    performance_gop_s = 119.;
    platform = "Virtex-6 SX475T";
    alm = None;
    ff = None;
    m20k = None;
    dsp = None;
  }

let ben_nun_dace =
  {
    label = "Ben-Nun et al. (DaCe)";
    performance_gop_s = 139.;
    platform = "Virtex UltraScale+ VCU1525";
    alm = None;
    ff = None;
    m20k = None;
    dsp = None;
  }

let all =
  [ zohouri_diffusion2d; zohouri_diffusion3d; waidyasooriya; soda_jacobi3d; niu; ben_nun_dace ]
