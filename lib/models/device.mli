(** Spatial device descriptions.

    The evaluation platform of the paper (Sec. VIII-B): a BittWare 520N
    board with an Intel Stratix 10 GX 2800, four DDR4 banks at a combined
    76.8 GB/s, and four 40 Gbit/s network ports of which two connect each
    pair of consecutive devices in the testbed chain. Resource totals are
    the "available" row of Table I (the shell reserves the rest). *)

type t = {
  name : string;
  alm : int;  (** Adaptive logic modules available to the kernel. *)
  ff : int;  (** Flip-flops. *)
  m20k : int;  (** 20 Kbit on-chip RAM blocks. *)
  dsp : int;  (** Hardened floating-point DSP blocks. *)
  frequency_hz : float;
      (** Achieved kernel clock; the paper reports 292-317 MHz across all
          bitstreams, modelled as a flat 300 MHz. *)
  peak_bandwidth : float;  (** Data-sheet DDR4 bandwidth, bytes/s. *)
  scalar_bw_cap : float;
      (** Effective bandwidth ceiling with many scalar access points
          (Fig. 16): 36.4 GB/s = 47% of peak. *)
  vector_bw_cap : float;
      (** Effective ceiling with vectorized access points: 58.3 GB/s =
          76% of peak. *)
  links_per_hop : int;  (** Network connections between adjacent devices. *)
  link_bytes_per_s : float;  (** Per link. *)
  die_area_mm2 : float;
}

val stratix10 : t

val m20k_bytes : int
(** Usable bytes per M20K block (20 Kbit = 2560 B). *)

val bytes_per_cycle : t -> float
(** Peak DDR bytes per kernel clock cycle. *)

val link_bytes_per_cycle : t -> float
(** Combined network bytes per cycle between adjacent devices. *)

val fingerprint : t -> Sf_support.Fingerprint.t
(** Content digest over every field — a cache key component for passes
    that read the device model (partitioning, performance model). *)
