type t = {
  name : string;
  alm : int;
  ff : int;
  m20k : int;
  dsp : int;
  frequency_hz : float;
  peak_bandwidth : float;
  scalar_bw_cap : float;
  vector_bw_cap : float;
  links_per_hop : int;
  link_bytes_per_s : float;
  die_area_mm2 : float;
}

let stratix10 =
  {
    name = "Stratix 10 GX 2800 (BittWare 520N)";
    alm = 692_000;
    ff = 2_800_000;
    m20k = 8_900;
    dsp = 4_468;
    frequency_hz = 300e6;
    peak_bandwidth = 76.8e9;
    scalar_bw_cap = 36.4e9;
    vector_bw_cap = 58.3e9;
    links_per_hop = 2;
    link_bytes_per_s = 40e9 /. 8.;
    die_area_mm2 = 700.;
  }

let m20k_bytes = 2560
let bytes_per_cycle d = d.peak_bandwidth /. d.frequency_hz

let link_bytes_per_cycle d =
  float_of_int d.links_per_hop *. d.link_bytes_per_s /. d.frequency_hz

let fingerprint d =
  let module F = Sf_support.Fingerprint in
  F.digest (fun st ->
      F.add_string st d.name;
      F.add_int st d.alm;
      F.add_int st d.ff;
      F.add_int st d.m20k;
      F.add_int st d.dsp;
      F.add_float st d.frequency_hz;
      F.add_float st d.peak_bandwidth;
      F.add_float st d.scalar_bw_cap;
      F.add_float st d.vector_bw_cap;
      F.add_int st d.links_per_hop;
      F.add_float st d.link_bytes_per_s;
      F.add_float st d.die_area_mm2)
