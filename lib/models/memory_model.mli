(** Effective off-chip bandwidth model (paper, Sec. VIII-D, Fig. 16).

    Measured behaviour on the 520N: effective bandwidth scales linearly
    with the number of operands requested per cycle until the memory
    controller crossbar saturates — at 36.4 GB/s (47% of the 76.8 GB/s
    peak) when access points are scalar, and at 58.3 GB/s (76%) when each
    access point is vectorized (fewer, wider endpoints route better). A
    mild efficiency droop (the paper measures 0.94x at 12 vectorized
    access points) appears as saturation is approached. *)

val effective_bandwidth :
  Device.t -> operands_per_cycle:int -> element_bytes:int -> vectorized:bool -> float
(** Achievable bytes/s when the design requests the given number of
    operands per cycle. *)

val requested_bandwidth :
  Device.t -> operands_per_cycle:int -> element_bytes:int -> float
(** What the design would consume with no memory system limits. *)

val efficiency_vs_requested :
  Device.t -> operands_per_cycle:int -> element_bytes:int -> vectorized:bool -> float
(** Effective / requested, in (0, 1]. *)

val bytes_per_cycle_cap : Device.t -> vectorized:bool -> float
(** The saturation ceiling expressed per kernel cycle — the budget handed
    to the simulator's memory {!Sf_sim.Controller}. *)
