(** Published results quoted by Table I for comparison.

    These numbers are taken verbatim from the paper (and the works it
    cites); they are constants, not measurements of this reproduction. *)

type entry = {
  label : string;
  performance_gop_s : float;
  platform : string;
  alm : int option;  (** Resource usage where the paper reports it. *)
  ff : int option;
  m20k : int option;
  dsp : int option;
}

val zohouri_diffusion2d : entry
val zohouri_diffusion3d : entry
val waidyasooriya : entry
val soda_jacobi3d : entry
val niu : entry
val ben_nun_dace : entry

val all : entry list
