let requested_bandwidth (d : Device.t) ~operands_per_cycle ~element_bytes =
  float_of_int (operands_per_cycle * element_bytes) *. d.Device.frequency_hz

let cap (d : Device.t) ~vectorized =
  if vectorized then d.Device.vector_bw_cap else d.Device.scalar_bw_cap

(* Saturation onset: beyond ~80% of the crossbar ceiling, arbitration
   overhead costs a few percent (the 0.94x droop the paper measures). *)
let droop_threshold = 0.8
let droop_factor = 0.94

let effective_bandwidth d ~operands_per_cycle ~element_bytes ~vectorized =
  let requested = requested_bandwidth d ~operands_per_cycle ~element_bytes in
  let ceiling = cap d ~vectorized in
  if requested <= droop_threshold *. ceiling then requested
  else Float.min (requested *. droop_factor) ceiling

let efficiency_vs_requested d ~operands_per_cycle ~element_bytes ~vectorized =
  let requested = requested_bandwidth d ~operands_per_cycle ~element_bytes in
  if requested <= 0. then 1.
  else effective_bandwidth d ~operands_per_cycle ~element_bytes ~vectorized /. requested

let bytes_per_cycle_cap d ~vectorized = cap d ~vectorized /. d.Device.frequency_hz
