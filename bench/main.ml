(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Secs. VIII-IX). Each section prints the series/rows the
   paper reports next to this reproduction's numbers. Absolute values
   come from the calibrated device models and the cycle-level simulator
   (see DESIGN.md); the claims under reproduction are the *shapes*: who
   wins, by what factor, and where the bottlenecks fall.

   Run all sections:        dune exec bench/main.exe
   Run selected sections:   dune exec bench/main.exe -- fig14 tab2
   Sections: fig14 fig15 tab1 fig16 hdiff tab2 silicon fusion deadlock
            tiling autotune cse fp64 micro
   Add the pseudo-section "timings" to print per-section wall-clock
   times (measured through the pass manager's timing primitive). *)
open Stencilflow

let section_timings : (string * float) list ref = ref []

let timed name f =
  let result, seconds = Pass_manager.time ~label:name f in
  section_timings := !section_timings @ [ (name, seconds) ];
  result

let dev = Device.stratix10
let f = dev.Device.frequency_hz

let heading title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

(* ------------------------------------------------------------------ *)
(* Chain performance model shared by Figs. 14-15 and Table I.          *)
(* ------------------------------------------------------------------ *)

type chain_point = {
  stages : int;
  devices : int;
  gop_s : float;
  bound : string; (* what stops further scaling at this point *)
}

let stage_latency kind ~shape ~w =
  let p = Iterative.chain ~shape ~vector_width:w kind ~length:1 in
  let a = Delay_buffer.analyze p in
  let info = Delay_buffer.node_info a "f1" in
  info.Delay_buffer.init_cycles + info.Delay_buffer.compute_cycles

let chain_model kind ~shape ~w ~stages ~devices ~bound =
  let flops = Iterative.flops_per_cell kind in
  let cells = List.fold_left ( * ) 1 shape in
  let n_words = cells / w in
  let latency = (stages * stage_latency kind ~shape ~w) + (128 * (devices - 1)) in
  let cycles = latency + n_words in
  let total_flops = float_of_int (stages * flops) *. float_of_int cells in
  { stages; devices; gop_s = total_flops /. (float_of_int cycles /. f); bound }

let max_stages kind ~shape ~w =
  let p = Iterative.chain ~shape ~vector_width:w kind ~length:1 in
  let per_stage = Resource.of_stencil p (List.hd p.Program.stencils) in
  Resource.max_chain_length dev ~per_stage ~fixed:Resource.zero

let print_points points =
  Printf.printf "%8s %8s %12s   %s\n" "stages" "devices" "GOp/s" "bound";
  List.iter
    (fun pt ->
      Printf.printf "%8d %8d %12.1f   %s\n" pt.stages pt.devices (pt.gop_s /. 1e9) pt.bound)
    points

(* Anchor the analytic chain model against the cycle-level simulator on
   a scaled-down instance. *)
let anchor_chain_model () =
  let shape = [ 32; 64 ] and w = 1 and stages = 8 in
  let p = Iterative.chain ~shape ~vector_width:w Iterative.Jacobi2d ~length:stages in
  match Engine.run_exn p with
  | Engine.Deadlocked _ -> Printf.printf "anchor: unexpected deadlock\n"
  | Engine.Completed stats ->
      let model = chain_model Iterative.Jacobi2d ~shape ~w ~stages ~devices:1 ~bound:"-" in
      let measured_gop =
        float_of_int (stages * Iterative.flops_per_cell Iterative.Jacobi2d)
        *. float_of_int (List.fold_left ( * ) 1 shape)
        /. (float_of_int stats.Engine.cycles /. f)
      in
      Printf.printf
        "model anchor (8-stage Jacobi2D, 32x64, simulated): %.2f GOp/s measured vs %.2f GOp/s \
         model (%.1f%% deviation)\n"
        (measured_gop /. 1e9) (model.gop_s /. 1e9)
        (100. *. Float.abs ((measured_gop /. model.gop_s) -. 1.))

let scaling_series kind ~w =
  let shape = Iterative.default_shape kind in
  let per_device = max_stages kind ~shape ~w in
  let single =
    List.filter_map
      (fun frac ->
        let stages = max 1 (per_device * frac / 100) in
        if stages <= per_device then
          Some
            (chain_model kind ~shape ~w ~stages ~devices:1
               ~bound:(if frac = 100 then "device full (ALM/DSP)" else "-"))
        else None)
      [ 12; 25; 50; 75; 100 ]
  in
  let multi =
    (* Distributed scaling: the network caps the cross-device word rate;
       W = 4 with two 40 Gbit/s links is the feasible maximum
       (Sec. VIII-C), so wider chains cannot span devices. *)
    let topo = Smi.chain ~devices:8 ~links_per_hop:dev.Device.links_per_hop in
    let w_max = Smi.max_vector_width topo dev ~element_bytes:4 ~streams_per_hop:1 in
    if w > w_max then []
    else
      List.map
        (fun devices ->
          chain_model kind ~shape ~w ~stages:(per_device * devices) ~devices
            ~bound:(if devices = 8 then "testbed size" else "-"))
        [ 2; 4; 6; 8 ]
  in
  (single @ multi, per_device)

let fig14 () =
  heading "Fig. 14: iterative stencil scaling, single and multi-node (W = 1)";
  let points, per_device = scaling_series Iterative.Jacobi3d ~w:1 in
  Printf.printf "Jacobi 3D chains, %d stages fill one device\n" per_device;
  print_points points;
  let single = List.find (fun p -> p.devices = 1 && p.stages = per_device) points in
  let eight = List.find_opt (fun p -> p.devices = 8) points in
  Printf.printf "\npaper:  264 GOp/s on one device, ~1.5 TOp/s on 8 FPGAs\n";
  Printf.printf "ours:   %.0f GOp/s on one device%s\n" (single.gop_s /. 1e9)
    (match eight with
    | Some p -> Printf.sprintf ", %.2f TOp/s on 8 FPGAs" (p.gop_s /. 1e12)
    | None -> "");
  anchor_chain_model ()

let fig15 () =
  heading "Fig. 15: iterative stencil scaling with 4-way vectorization";
  let points, per_device = scaling_series Iterative.Jacobi3d ~w:4 in
  Printf.printf "Jacobi 3D chains at W=4, %d stages fill one device\n" per_device;
  print_points points;
  let single = List.find (fun p -> p.devices = 1 && p.stages = per_device) points in
  let eight = List.find_opt (fun p -> p.devices = 8) points in
  Printf.printf "\npaper:  568.2 GOp/s on one device, 4.2 TOp/s on 8 FPGAs\n";
  Printf.printf "ours:   %.0f GOp/s on one device%s\n" (single.gop_s /. 1e9)
    (match eight with
    | Some p -> Printf.sprintf ", %.2f TOp/s on 8 FPGAs" (p.gop_s /. 1e12)
    | None -> "");
  let points1, n1 = scaling_series Iterative.Jacobi3d ~w:1 in
  let s1 = List.find (fun p -> p.devices = 1 && p.stages = n1) points1 in
  Printf.printf "shape check: vectorization multiplies single-device performance %.1fx\n"
    (single.gop_s /. s1.gop_s)

let tab1 () =
  heading "Table I: highest performing kernels and resource usage";
  Printf.printf "%-26s %10s %9s %9s %7s %6s\n" "kernel" "GOp/s" "ALM" "FF" "M20K" "DSP";
  let row kind w paper_gop =
    let shape = Iterative.default_shape kind in
    let stages = max_stages kind ~shape ~w in
    let program = Iterative.chain ~shape ~vector_width:w kind ~length:stages in
    let usage = Resource.of_program program in
    let model = chain_model kind ~shape ~w ~stages ~devices:1 ~bound:"" in
    let alm, ff, m20k, dsp = Resource.utilization dev usage in
    Printf.printf "%-26s %10.0f %8dK %8dK %7d %6d\n"
      (Printf.sprintf "%s W=%d (%d st.)" (Iterative.kind_name kind) w stages)
      (model.gop_s /. 1e9) (usage.Resource.alm / 1000)
      (usage.Resource.ff / 1000) usage.Resource.m20k usage.Resource.dsp;
    Printf.printf "%-26s %10s %8.1f%% %8.1f%% %6.1f%% %5.1f%%  (paper: %.0f GOp/s)\n" "" ""
      (100. *. alm) (100. *. ff) (100. *. m20k) (100. *. dsp) paper_gop
  in
  row Iterative.Jacobi3d 1 265.;
  row Iterative.Jacobi3d 8 921.;
  row Iterative.Diffusion2d 8 1313.;
  row Iterative.Diffusion3d 8 1152.;
  Printf.printf "\ncomparison rows quoted from the literature (Table I):\n";
  List.iter
    (fun e ->
      Printf.printf "%-36s %8.0f GOp/s   %s\n" e.Literature.label
        e.Literature.performance_gop_s e.Literature.platform)
    Literature.all

let fig16 () =
  heading "Fig. 16: effective off-chip bandwidth vs operands requested per cycle";
  Printf.printf "%10s %16s %16s\n" "operands" "scalar GB/s" "vectorized GB/s";
  List.iter
    (fun n ->
      let scalar =
        Memory_model.effective_bandwidth dev ~operands_per_cycle:n ~element_bytes:4
          ~vectorized:false
      in
      let vectorized =
        Memory_model.effective_bandwidth dev ~operands_per_cycle:n ~element_bytes:4
          ~vectorized:true
      in
      Printf.printf "%10d %16.1f %16.1f\n" n (scalar /. 1e9) (vectorized /. 1e9))
    [ 2; 4; 8; 12; 16; 20; 24; 28; 32; 36; 40; 44; 48; 56; 64 ];
  Printf.printf
    "\npaper: scalar access flattens at 36.4 GB/s (47%% of 76.8 GB/s peak) after ~24 points;\n";
  Printf.printf
    "       4-way vectorized access reaches 58.3 GB/s (76%%) with a 0.94x droop at 12 points\n";
  (* Validate one saturated point against the simulator's memory
     controller: a program demanding more than the cap streams at the
     cap. *)
  let p = Hdiff.program ~shape:[ 4; 16; 16 ] ~vector_width:8 () in
  let cap = Memory_model.bytes_per_cycle_cap dev ~vectorized:true in
  let config =
    Engine.Config.make ~bandwidth:(Engine.Config.bandwidth ~mem_bytes_per_cycle:cap ()) ()
  in
  match Engine.run_exn ~config p with
  | Engine.Deadlocked _ -> Printf.printf "simulator check: deadlock (unexpected)\n"
  | Engine.Completed stats ->
      let achieved =
        float_of_int (stats.Engine.bytes_read + stats.Engine.bytes_written)
        /. float_of_int stats.Engine.cycles
      in
      Printf.printf
        "simulator check (hdiff W=8, capped controller): %.0f B/cycle achieved vs %.0f B/cycle \
         cap\n"
        achieved cap

let hdiff_analysis () =
  heading "Sec. IX-A: horizontal diffusion analysis (Eqs. 2-4)";
  let p = Hdiff.program () in
  let counts = Op_count.of_program p in
  let profile = counts.Op_count.profile in
  Printf.printf "%-34s %10s %10s\n" "quantity" "paper" "ours";
  Printf.printf "%-34s %10d %10d\n" "additions" 87 profile.Expr.adds;
  Printf.printf "%-34s %10d %10d\n" "multiplications" 41 profile.Expr.muls;
  Printf.printf "%-34s %10d %10d\n" "square roots" 2 profile.Expr.sqrts;
  Printf.printf "%-34s %10d %10d\n" "min operations" 2 profile.Expr.mins;
  Printf.printf "%-34s %10d %10d\n" "max operations" 2 profile.Expr.maxs;
  Printf.printf "%-34s %10d %10d\n" "data-dependent branches" 20 profile.Expr.data_branches;
  Printf.printf "%-34s %10d %10d\n" "flops counted (adds+muls+sqrt)" 130
    counts.Op_count.flops_per_cell;
  let ai = Op_count.ai_ops_per_operand p in
  Printf.printf "%-34s %10.4f %10.4f\n" "AI [Op/operand] (Eq. 2)" (130. /. 9.) ai;
  let ai_b = Op_count.ai_ops_per_byte p in
  Printf.printf "%-34s %10.4f %10.4f\n" "AI [Op/B]" (65. /. 18.) ai_b;
  Printf.printf "%-34s %10.1f %10.1f\n" "roofline @58.3 GB/s [GOp/s]" 210.5
    (Roofline.attainable_ops_per_s ~ai_ops_per_byte:ai_b
       ~bandwidth_bytes_per_s:dev.Device.vector_bw_cap
    /. 1e9);
  Printf.printf "%-34s %10.1f %10.1f\n" "BW to saturate 917 GOp/s [GB/s]" 254.
    (Roofline.bandwidth_to_saturate ~compute_ops_per_s:917.1e9 ~ai_ops_per_byte:ai_b /. 1e9);
  Printf.printf "%-34s %10d %10d\n" "operands per cycle at W=1" 9
    (Op_count.streaming_operands_per_cycle p)

(* Application-level bandwidth efficiency: the paper's design achieves
   69% of the Fig. 16 microbenchmark bandwidth when the full horizontal
   diffusion runs (Sec. IX-B) - nine concurrent streams interleave less
   favourably than the isolated bandwidth test. *)
let application_bw_efficiency = 0.69

let tab2 () =
  heading "Table II: horizontal diffusion benchmarks (128 x 128 x 80, W = 8)";
  let p = Hdiff.program () in
  let fused, _ = Fusion.fuse_all p in
  let ai_b = Op_count.ai_ops_per_byte p in
  let total_flops = Op_count.total_flops p in
  let analysis = Delay_buffer.analyze fused in
  let n_words w = Program.cells p / w in
  (* Stratix 10, W=8: bandwidth-bound; throughput = achievable/demanded
     bandwidth times the application-level efficiency. *)
  let demand_bytes =
    float_of_int (Op_count.streaming_operands_per_cycle (Vectorize.apply p 8) * 4)
  in
  let cap_bytes = Memory_model.bytes_per_cycle_cap dev ~vectorized:true in
  let throughput = Float.min 1. (cap_bytes /. demand_bytes) *. application_bw_efficiency in
  let cycles_bw =
    float_of_int analysis.Delay_buffer.latency_cycles
    +. (float_of_int (n_words 8) /. throughput)
  in
  let runtime_bw = cycles_bw /. f in
  let perf_bw = total_flops /. runtime_bw in
  (* Stratix 10*, W=16, simulated infinite memory bandwidth: compute
     bound at one 16-wide word per cycle. *)
  let cycles_inf = float_of_int (analysis.Delay_buffer.latency_cycles + n_words 16) in
  let runtime_inf = cycles_inf /. f in
  let perf_inf = total_flops /. runtime_inf in
  let roof_frac perf = 100. *. perf /. (ai_b *. dev.Device.peak_bandwidth) in
  Printf.printf "%-14s %12s %14s %10s %8s\n" "platform" "runtime" "perf" "peak BW" "%Roof";
  Printf.printf "%-14s %12s %14s %10s %7.0f%%   (paper: 1178 us, 145 GOp/s, 52%%)\n"
    "Stratix 10" (Util.human_time runtime_bw) (Util.human_rate perf_bw)
    (Util.human_bytes_rate dev.Device.peak_bandwidth)
    (roof_frac perf_bw);
  Printf.printf "%-14s %12s %14s %10s %8s   (paper: 332 us, 513 GOp/s)\n" "Stratix 10*"
    (Util.human_time runtime_inf) (Util.human_rate perf_inf) "inf" "-";
  List.iter
    (fun (arch, paper) ->
      let runtime = Loadstore.runtime arch ~ai_ops_per_byte:ai_b ~total_flops in
      let perf = Loadstore.performance arch ~ai_ops_per_byte:ai_b in
      Printf.printf "%-14s %12s %14s %10s %7.0f%%   (paper: %s)\n" arch.Loadstore.name
        (Util.human_time runtime) (Util.human_rate perf)
        (Util.human_bytes_rate arch.Loadstore.bandwidth_bytes_per_s)
        (100. *. Loadstore.roof_fraction arch)
        paper)
    [
      (Loadstore.xeon_12c, "5270 us, 32 GOp/s, 13%");
      (Loadstore.p100, "810 us, 210 GOp/s, 8%");
      (Loadstore.v100, "201 us, 849 GOp/s, 26%");
    ];
  (* An honest measured row: this reproduction's own sequential reference
     interpreter on a reduced domain, scaled per cell. *)
  let small = Hdiff.program ~shape:[ 4; 64; 64 ] () in
  let inputs = Interp.random_inputs small in
  let _, elapsed =
    Pass_manager.time ~label:"reference-interpreter" (fun () -> Interp.run small ~inputs)
  in
  let measured =
    float_of_int (Op_count.of_program small).Op_count.flops_per_cell
    *. float_of_int (Program.cells small) /. elapsed
  in
  Printf.printf
    "%-14s %12s %14s %10s %8s   (measured: this work's OCaml interpreter, 1 core)\n"
    "OCaml ref."
    (Util.human_time (total_flops /. measured))
    (Util.human_rate measured) "-" "-";
  Printf.printf
    "\nshape checks: FPGA beats CPU %.1fx (paper 4.5x); V100 beats the bandwidth-bound FPGA \
     %.1fx (paper 5.9x)\n"
    (perf_bw /. Loadstore.performance Loadstore.xeon_12c ~ai_ops_per_byte:ai_b)
    (Loadstore.performance Loadstore.v100 ~ai_ops_per_byte:ai_b /. perf_bw);
  Printf.printf
    "without the memory bottleneck the FPGA overtakes the P100 (%.0f vs %.0f GOp/s) but not \
     the V100, as in the paper\n"
    (perf_inf /. 1e9)
    (Loadstore.performance Loadstore.p100 ~ai_ops_per_byte:ai_b /. 1e9);
  (* Cross-check the bandwidth-bound row on the simulator at a reduced
     domain: same W, same per-cycle bandwidth cap. *)
  let small = Hdiff.program ~shape:[ 8; 32; 32 ] ~vector_width:8 () in
  let config =
    Engine.Config.make
      ~bandwidth:(Engine.Config.bandwidth ~mem_bytes_per_cycle:cap_bytes ())
      ()
  in
  (match Engine.run_exn ~config small with
  | Engine.Deadlocked _ -> Printf.printf "simulator cross-check: deadlock (unexpected)\n"
  | Engine.Completed stats ->
      let words = Program.cells small / 8 in
      Printf.printf
        "simulator cross-check (reduced domain, capped controller): %d cycles for %d words -> \
         throughput factor %.2f (model %.2f before the application-efficiency factor)\n"
        stats.Engine.cycles words
        (float_of_int words /. float_of_int stats.Engine.cycles)
        (Float.min 1. (cap_bytes /. demand_bytes)));
  (perf_bw, perf_inf)

let silicon_section perf_bw perf_inf =
  heading "Sec. IX-C: silicon efficiency [GOp/s per mm^2]";
  let p = Hdiff.program () in
  let ai_b = Op_count.ai_ops_per_byte p in
  Printf.printf "%-24s %8s %8s\n" "platform" "paper" "ours";
  Printf.printf "%-24s %8.2f %8.2f\n" "Stratix 10 (bw-bound)" 0.21
    (Silicon.efficiency ~performance_ops_per_s:perf_bw ~die_area_mm2:dev.Device.die_area_mm2);
  Printf.printf "%-24s %8.2f %8.2f\n" "Stratix 10 (inf bw)" 0.71
    (Silicon.efficiency ~performance_ops_per_s:perf_inf ~die_area_mm2:dev.Device.die_area_mm2);
  Printf.printf "%-24s %8.2f %8.2f\n" "P100" 0.34
    (Silicon.efficiency
       ~performance_ops_per_s:(Loadstore.performance Loadstore.p100 ~ai_ops_per_byte:ai_b)
       ~die_area_mm2:Loadstore.p100.Loadstore.die_area_mm2);
  Printf.printf "%-24s %8.2f %8.2f\n" "V100" 1.04
    (Silicon.efficiency
       ~performance_ops_per_s:(Loadstore.performance Loadstore.v100 ~ai_ops_per_byte:ai_b)
       ~die_area_mm2:Loadstore.v100.Loadstore.die_area_mm2)

let fusion_study () =
  heading "Fig. 17: horizontal diffusion DAG before and after aggressive fusion";
  let p = Hdiff.program () in
  let fused, report = Fusion.fuse_all p in
  let before = Delay_buffer.analyze p and after = Delay_buffer.analyze fused in
  Printf.printf "%-36s %10s %10s\n" "" "before" "after";
  Printf.printf "%-36s %10d %10d\n" "stencil nodes" report.Fusion.stencils_before
    report.Fusion.stencils_after;
  Printf.printf "%-36s %10d %10d\n" "dataflow edges"
    (Program.G.num_edges (Program.graph p))
    (Program.G.num_edges (Program.graph fused));
  Printf.printf "%-36s %10d %10d\n" "program latency L [cycles]"
    before.Delay_buffer.latency_cycles after.Delay_buffer.latency_cycles;
  Printf.printf "%-36s %10d %10d\n" "delay buffer total [words]"
    (Delay_buffer.total_delay_buffer_words before)
    (Delay_buffer.total_delay_buffer_words after);
  Printf.printf "%-36s %9.2f%% %9.2f%%\n" "initialization fraction"
    (100. *. Runtime_model.initialization_fraction p)
    (100. *. Runtime_model.initialization_fraction fused);
  Printf.printf "\nfused pairs: %s\n"
    (Util.string_concat_map ", " (fun (u, v) -> u ^ "->" ^ v) report.Fusion.fused_pairs)

let diamond_program () =
  let b = Builder.create ~name:"fig4" ~shape:[ 16; 64 ] () in
  Builder.input b "x";
  Builder.stencil b "a" Builder.E.(acc "x" [ 0; 0 ] *% c 2.);
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "b"
    Builder.E.(acc "a" [ 0; -8 ] +% acc "a" [ 0; 8 ]);
  Builder.stencil b "c" Builder.E.(acc "a" [ 0; 0 ] +% acc "b" [ 0; 0 ]);
  Builder.output b "c";
  Builder.finish b

let deadlock_study () =
  heading "Fig. 4: delay buffers prevent deadlocks";
  let p = diamond_program () in
  let a = Delay_buffer.analyze p in
  let skip_depth = Delay_buffer.buffer_for a ~src:"a" ~dst:"c" in
  Printf.printf "computed skip-edge buffer: %d words\n" skip_depth;
  (match
     Engine.run_exn
       ~config:
         (Engine.Config.make
            ~tracing:(Engine.Config.tracing ~trace_interval:32 ~telemetry:true ())
            ())
       p
   with
  | Engine.Completed stats ->
      Printf.printf "with buffers:    completed in %d cycles (model %d)\n" stats.Engine.cycles
        stats.Engine.predicted_cycles;
      (* Visualize the skip edge's occupancy over time: it fills during
         b's initialization phase, stays full while streaming (absorbing
         the path-latency difference), and drains at the end. *)
      let samples =
        List.filter_map
          (fun (_, occupancies) -> List.assoc_opt "a->c" occupancies)
          stats.Engine.telemetry.Telemetry.samples
      in
      let glyph occ =
        let levels = "_.:-=+*#" in
        let i = occ * (String.length levels - 1) / max 1 skip_depth in
        levels.[min (String.length levels - 1) i]
      in
      Printf.printf "a->c occupancy over time (0..%d words):\n  %s\n" skip_depth
        (String.init (List.length samples) (fun i -> glyph (List.nth samples i)))
  | Engine.Deadlocked _ -> Printf.printf "with buffers:    DEADLOCK (unexpected)\n");
  let config =
    Engine.Config.make ~channel_slack:2
      ~override_edge_buffers:[ (("a", "c"), 0) ]
      ~safety:(Engine.Config.safety ~deadlock_window:512 ())
      ()
  in
  match Engine.run_exn ~config p with
  | Engine.Completed _ -> Printf.printf "without buffers: completed (unexpected)\n"
  | Engine.Deadlocked { cycle; wait_cycle; _ } ->
      Printf.printf "without buffers: deadlock detected at cycle %d, as in Fig. 4\n" cycle;
      if wait_cycle <> [] then
        Printf.printf "circular wait: %s\n" (String.concat " -> " wait_cycle)


(* ------------------------------------------------------------------ *)
(* Ablations: design-choice studies beyond the paper's headline        *)
(* experiments (DESIGN.md).                                            *)
(* ------------------------------------------------------------------ *)

let tiling_ablation () =
  heading "Ablation (Sec. IX-D): spatial tiling of horizontal diffusion";
  let p = Hdiff.program () in
  let untiled_buffers =
    Delay_buffer.total_fast_memory_elements (Delay_buffer.analyze p)
  in
  Printf.printf "untiled on-chip buffering: %d elements (%.0f M20K equivalent)\n" untiled_buffers
    (float_of_int (untiled_buffers * 4) /. 2560.);
  Printf.printf "%12s %12s %16s %14s\n" "tile (JxI)" "tiles" "redundancy" "buffers/tile";
  List.iter
    (fun t ->
      let plan = Tiling.plan p ~tile_shape:[ 80; t; t ] in
      Printf.printf "%12s %12d %15.1f%% %14d\n"
        (Printf.sprintf "%dx%d" t t)
        (List.length plan.Tiling.tiles)
        (100. *. plan.Tiling.redundancy)
        (Tiling.buffer_elements_per_tile plan))
    [ 16; 32; 64; 128 ];
  Printf.printf
    "redundant computation scales with DAG depth x surface-to-volume, buffers with the tile's \
     inner extents, as Sec. IX-D argues\n";
  (* Correctness of the tiled schedule at a reduced domain. *)
  let small = Hdiff.program ~shape:[ 4; 16; 16 ] () in
  let inputs = Interp.random_inputs small in
  let plan = Tiling.plan small ~tile_shape:[ 4; 8; 8 ] in
  let tiled = Tiling.run_tiled plan ~inputs in
  let untiled = Interp.run small ~inputs in
  let exact =
    List.for_all
      (fun (name, (r : Interp.result)) ->
        Tensor.max_abs_diff r.Interp.tensor (List.assoc name tiled) < 1e-12)
      untiled
  in
  Printf.printf "tiled == untiled on a reduced domain: %b\n" exact

let autotune_ablation () =
  heading "Ablation: vectorization-width selection (Sec. IV-C / IX-B)";
  let p = Hdiff.program () in
  let best, sweep = Autotune.choose ~device:dev ~max_width:16 p in
  Printf.printf "%6s %14s %10s %8s\n" "W" "model GOp/s" "bw-bound" "fits";
  List.iter
    (fun e ->
      Printf.printf "%6d %14.1f %10b %8b%s\n" e.Autotune.vector_width
        (e.Autotune.modeled_ops_per_s /. 1e9)
        e.Autotune.bandwidth_bound e.Autotune.fits
        (if e.Autotune.vector_width = best.Autotune.vector_width then "   <- chosen" else ""))
    sweep;
  Printf.printf
    "the paper vectorizes horizontal diffusion by 8 to saturate bandwidth (Sec. IX-B); wider \
     widths only help once the memory bottleneck is simulated away\n"

let cse_ablation () =
  heading "Ablation: fusion + common subexpression elimination";
  let p = Hdiff.program ~shape:[ 8; 32; 32 ] () in
  let fused, _ = Fusion.fuse_all p in
  let optimized = Opt.optimize fused in
  let describe label q =
    let counts = Op_count.of_program q in
    let usage = Resource.of_program q in
    let a = Delay_buffer.analyze q in
    Printf.printf "%-24s %8d flops/cell %8d DSP %8d ALM %6d cycles L\n" label
      counts.Op_count.flops_per_cell usage.Resource.dsp usage.Resource.alm
      a.Delay_buffer.latency_cycles
  in
  describe "unfused" p;
  describe "fused (duplicated)" fused;
  describe "fused + CSE" optimized;
  (match Engine.run_and_validate optimized with
  | Ok _ -> Printf.printf "optimized program validates against the reference\n"
  | Error m -> Printf.printf "optimized program FAILED: %s\n" (Diag.to_string m));
  Printf.printf
    "fusion duplicates producer expressions per consuming access; CSE restores the sharing the \
     paper delegates to the downstream compiler (Sec. V-B)\n"

let fp64_ablation () =
  heading "Ablation: double precision (Sec. VIII-B: any data type is supported)";
  let f32 = Hdiff.program () in
  let f64 = Hdiff.program ~dtype:Dtype.F64 () in
  let row label p =
    let ai = Op_count.ai_ops_per_byte p in
    let roof =
      Roofline.attainable_ops_per_s ~ai_ops_per_byte:ai
        ~bandwidth_bytes_per_s:dev.Device.vector_bw_cap
    in
    Printf.printf "%-10s AI %.3f Op/B -> roofline %s; streaming demand %s at W=8\n" label ai
      (Util.human_rate roof)
      (Util.human_bytes_rate
         (Op_count.streaming_bytes_per_second ~frequency_hz:f (Vectorize.apply p 8)))
  in
  row "float32" f32;
  row "float64" f64;
  Printf.printf
    "halving the arithmetic intensity halves the bandwidth-bound roofline - double precision \
     makes the memory bottleneck twice as severe\n";
  (* The whole stack runs in f64 too. *)
  match Engine.run_and_validate (Hdiff.program ~shape:[ 4; 8; 8 ] ~dtype:Dtype.F64 ()) with
  | Ok _ -> Printf.printf "f64 simulation validates against the reference\n"
  | Error m -> Printf.printf "f64 simulation FAILED: %s\n" (Diag.to_string m)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: wall-clock cost of the framework itself, *)
(* one per experiment family.                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  heading "Micro-benchmarks (Bechamel): cost of the StencilFlow toolchain itself";
  let open Bechamel in
  let hdiff_small = Hdiff.program ~shape:[ 4; 16; 16 ] () in
  let chain16 = Iterative.chain ~shape:[ 32; 32 ] Iterative.Jacobi2d ~length:16 in
  let diamond = diamond_program () in
  let json = Program_json.to_string hdiff_small in
  let tests =
    [
      Test.make ~name:"fig14_chain_analysis"
        (Staged.stage (fun () -> ignore (Delay_buffer.analyze chain16)));
      Test.make ~name:"tab1_resource_estimate"
        (Staged.stage (fun () -> ignore (Resource.of_program chain16)));
      Test.make ~name:"fig16_memory_model"
        (Staged.stage (fun () ->
             ignore
               (Memory_model.effective_bandwidth dev ~operands_per_cycle:24 ~element_bytes:4
                  ~vectorized:true)));
      Test.make ~name:"tab2_hdiff_parse"
        (Staged.stage (fun () -> ignore (Result.get_ok (Program_json.of_string json))));
      Test.make ~name:"fig17_hdiff_fusion"
        (Staged.stage (fun () -> ignore (Fusion.fuse_all hdiff_small)));
      Test.make ~name:"fig4_diamond_simulation"
        (Staged.stage (fun () -> ignore (Engine.run_exn diamond)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ ns ] -> Printf.printf "%-32s %14.1f ns/run\n" name ns
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
        stats)
    tests

let () =
  let raw = List.tl (Array.to_list Sys.argv) in
  let show_timings = List.mem "timings" raw in
  let requested = List.filter (fun s -> s <> "timings") raw in
  let want name = requested = [] || List.mem name requested in
  if want "fig14" then timed "fig14" fig14;
  if want "fig15" then timed "fig15" fig15;
  if want "tab1" then timed "tab1" tab1;
  if want "fig16" then timed "fig16" fig16;
  if want "hdiff" then timed "hdiff" hdiff_analysis;
  (if want "tab2" || want "silicon" then
     let perf_bw, perf_inf = timed "tab2" tab2 in
     if want "silicon" then timed "silicon" (fun () -> silicon_section perf_bw perf_inf));
  if want "fusion" then timed "fusion" fusion_study;
  if want "deadlock" then timed "deadlock" deadlock_study;
  if want "tiling" then timed "tiling" tiling_ablation;
  if want "autotune" then timed "autotune" autotune_ablation;
  if want "cse" then timed "cse" cse_ablation;
  if want "fp64" then timed "fp64" fp64_ablation;
  if want "micro" then timed "micro" micro;
  if show_timings then begin
    Printf.printf "\nsection timings:\n";
    List.iter
      (fun (name, seconds) -> Printf.printf "  %-10s %10.1f ms\n" name (1000. *. seconds))
      !section_timings
  end;
  Printf.printf "\nAll requested sections complete. See EXPERIMENTS.md for the comparison log.\n"
