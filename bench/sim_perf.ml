(* Simulator throughput benchmark: how fast the cycle-level engine
   itself runs, in simulated cells/second and cycles/second of wall
   clock. This is the binding constraint on how large a stencil DAG,
   vector width or iterative-chain depth the evaluation harness can
   reach (the paper scales to 226-stage chains and the 139-node COSMO
   program), so its trajectory is tracked in BENCH_sim.json.

   Run:  dune exec bench/sim_perf.exe            (writes BENCH_sim.json)
         dune exec bench/sim_perf.exe -- --quick (fewer/smaller cases)
         dune exec bench/sim_perf.exe -- --quick --no-json
                                       (smoke run, no BENCH_sim.json
                                        overwrite; the @bench-smoke
                                        alias runs this in CI)

   Each case simulates a program to completion with unconstrained
   bandwidth (the hot configuration of the evaluation harness), checks
   the run completed, and reports the median of three runs. *)
open Stencilflow

type case = { name : string; program : Program.t; runs : int }

let jacobi_chain ~stages ~shape ~w =
  {
    name = Printf.sprintf "jacobi2d-%dstage-%dx%d-w%d" stages (List.nth shape 0) (List.nth shape 1) w;
    program = Iterative.chain ~shape ~vector_width:w Iterative.Jacobi2d ~length:stages;
    runs = 3;
  }

let hdiff_small ~w =
  let dir = if Sys.file_exists "examples/programs" then "examples/programs" else "../examples/programs" in
  let p =
    match Program_json.of_file (Filename.concat dir "horizontal_diffusion_small.json") with
    | Ok p -> p
    | Error ds -> failwith (String.concat "; " (List.map Diag.to_string ds))
  in
  let p = if w = p.Program.vector_width then p else Vectorize.apply p w in
  { name = Printf.sprintf "hdiff-small-w%d" w; program = p; runs = 3 }

let cases ~quick =
  if quick then
    [ jacobi_chain ~stages:8 ~shape:[ 64; 64 ] ~w:1; hdiff_small ~w:1 ]
  else
    [
      jacobi_chain ~stages:8 ~shape:[ 256; 256 ] ~w:1;
      jacobi_chain ~stages:16 ~shape:[ 256; 256 ] ~w:1;
      jacobi_chain ~stages:32 ~shape:[ 128; 128 ] ~w:1;
      jacobi_chain ~stages:64 ~shape:[ 128; 128 ] ~w:1;
      jacobi_chain ~stages:8 ~shape:[ 256; 256 ] ~w:4;
      jacobi_chain ~stages:8 ~shape:[ 256; 256 ] ~w:8;
      hdiff_small ~w:1;
      hdiff_small ~w:2;
      hdiff_small ~w:4;
    ]

type measurement = {
  case : case;
  cycles : int;
  seconds : float;
  cells : int;
  stages : int;
}

let measure ?(config = Engine.Config.default) case =
  let p = case.program in
  let inputs = Interp.random_inputs p in
  let samples =
    List.init case.runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        match Engine.run_exn ~config ~inputs p with
        | Engine.Deadlocked _ -> failwith (case.name ^ ": unexpected deadlock")
        | Engine.Completed stats -> (Unix.gettimeofday () -. t0, stats.Engine.cycles))
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
  let seconds, cycles = List.nth sorted (List.length sorted / 2) in
  {
    case;
    cycles;
    seconds;
    cells = Program.cells p;
    stages = List.length p.Program.stencils;
  }

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let no_json = List.mem "--no-json" args in
  (* What the host can actually run concurrently: every speedup figure
     below is only meaningful relative to this. *)
  let host_cores = Executor.default_jobs () in
  Printf.printf "host cores: %d\n" host_cores;
  Printf.printf "%-32s %10s %10s %14s %14s\n" "case" "cycles" "wall [s]" "cells/s" "cycles/s";
  let results = List.map measure (cases ~quick) in
  List.iter
    (fun m ->
      (* Throughput in *simulated stage-cells* per wall second: each chain
         stage computes every cell once, so deeper chains do more work. *)
      let stage_cells = float_of_int (m.cells * m.stages) in
      Printf.printf "%-32s %10d %10.3f %14.3e %14.3e\n" m.case.name m.cycles m.seconds
        (stage_cells /. m.seconds)
        (float_of_int m.cycles /. m.seconds))
    results;
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "sim_perf");
        ("quick", Json.Bool quick);
        ( "cases",
          Json.List
            (List.map
               (fun m ->
                 Json.Obj
                   [
                     ("name", Json.String m.case.name);
                     ("cycles", Json.Int m.cycles);
                     ("wall_seconds", Json.Float m.seconds);
                     ("cells", Json.Int m.cells);
                     ("stages", Json.Int m.stages);
                     ( "stage_cells_per_second",
                       Json.Float (float_of_int (m.cells * m.stages) /. m.seconds) );
                     ("cycles_per_second", Json.Float (float_of_int m.cycles /. m.seconds));
                   ])
               results) );
      ]
  in
  (* Telemetry overhead: the same case with the counter registry off
     (default) and on (--profile). Off must stay within noise of the
     historical baseline -- the probes compile to no-ops; on pays for the
     instrumented schedule (no fast-forward batching), which is the
     documented price of exact stall attribution. *)
  let overhead_case =
    if quick then jacobi_chain ~stages:8 ~shape:[ 64; 64 ] ~w:1
    else jacobi_chain ~stages:8 ~shape:[ 256; 256 ] ~w:1
  in
  let off = measure overhead_case in
  let on_config =
    Engine.Config.make ~tracing:(Engine.Config.tracing ~telemetry:true ()) ()
  in
  let on = measure ~config:on_config overhead_case in
  Printf.printf "\ntelemetry overhead (%s): off %.3fs, on %.3fs (%.2fx)\n"
    overhead_case.name off.seconds on.seconds (on.seconds /. off.seconds);
  let telemetry_json =
    Json.Obj
      [
        ("case", Json.String overhead_case.name);
        ("off_wall_seconds", Json.Float off.seconds);
        ("on_wall_seconds", Json.Float on.seconds);
        ("on_over_off", Json.Float (on.seconds /. off.seconds));
      ]
  in
  let json =
    match json with
    | Json.Obj fields -> Json.Obj (fields @ [ ("telemetry_overhead", telemetry_json) ])
    | other -> other
  in
  (* Multi-device scaling: the same deep Jacobi chain split over 2 and 4
     devices, sequential engine vs one domain per device. Speedup needs
     real cores: on a single-core host the domains time-slice one core
     and the ratio measures scheduler overhead, not the engine — the
     record keeps the parity check and the honest wall numbers but flags
     the speedup as not meaningful ([speedup_valid] = false). *)
  let md_stages, md_shape, md_runs = if quick then (8, [ 64; 64 ], 1) else (32, [ 128; 128 ], 3) in
  let md_program = Iterative.chain ~shape:md_shape Iterative.Jacobi2d ~length:md_stages in
  let md_inputs = Interp.random_inputs md_program in
  let network = Engine.Config.network ~net_latency_cycles:128 () in
  let measure_mode ~placement mode =
    let config =
      Engine.Config.make ~network ~parallelism:(Engine.Config.parallelism ~mode ()) ()
    in
    let samples =
      List.init md_runs (fun _ ->
          let t0 = Unix.gettimeofday () in
          match Parallel.run_exn ~config ~placement ~inputs:md_inputs md_program with
          | Engine.Deadlocked _ -> failwith "multi-device case: unexpected deadlock"
          | Engine.Completed stats -> (Unix.gettimeofday () -. t0, stats.Engine.cycles))
    in
    List.nth (List.sort compare samples) (md_runs / 2)
  in
  let multi_device =
    List.map
      (fun devices ->
        let pt =
          match Partition.contiguous ~devices md_program with
          | Ok pt -> pt
          | Error d -> failwith d.Diag.message
        in
        let placement = Partition.placement_fn pt in
        let seq_s, seq_c = measure_mode ~placement `Sequential in
        let par_s, par_c = measure_mode ~placement `Domains_per_device in
        if seq_c <> par_c then failwith "multi-device case: engines disagree on cycles";
        let speedup_valid = host_cores > 1 in
        Printf.printf
          "jacobi2d-%dstage over %d devices: sequential %.3fs, parallel %.3fs (%.2fx, %d domains on %d core(s))%s\n"
          md_stages devices seq_s par_s (seq_s /. par_s) devices host_cores
          (if speedup_valid then ""
           else "  [single-core host: ratio measures overhead, not speedup]");
        Json.Obj
          [
            ("name", Json.String (Printf.sprintf "jacobi2d-%dstage-%ddev" md_stages devices));
            ("devices", Json.Int devices);
            ("cycles", Json.Int seq_c);
            ("sequential_wall_seconds", Json.Float seq_s);
            ("parallel_wall_seconds", Json.Float par_s);
            ("parallel_speedup", Json.Float (seq_s /. par_s));
            ("speedup_valid", Json.Bool speedup_valid);
            ("host_cores", Json.Int host_cores);
          ])
      [ 2; 4 ]
  in
  let json =
    match json with
    | Json.Obj fields -> Json.Obj (fields @ [ ("multi_device", Json.List multi_device) ])
    | other -> other
  in
  (* Fault-injection campaign: wall cost of the adversarial validation
     harness (Faults.campaign). Injected runs force the cycle-exact
     schedule — no fast-forward batching — so the per-schedule overhead
     over the unperturbed baseline is the price of each robustness
     sample, and the pass rate must stay 1.0 (the latency-insensitivity
     claim itself). *)
  let fc_case =
    if quick then jacobi_chain ~stages:4 ~shape:[ 32; 32 ] ~w:1 else hdiff_small ~w:1
  in
  let fc_schedules = if quick then 5 else 25 in
  let fc_inputs = Interp.random_inputs fc_case.program in
  let fc_baseline = measure { fc_case with runs = 1 } in
  let t0 = Unix.gettimeofday () in
  let fc_report =
    match Faults.campaign ~inputs:fc_inputs ~schedules:fc_schedules fc_case.program with
    | Ok r -> r
    | Error d -> failwith ("fault campaign baseline failed: " ^ d.Diag.message)
  in
  let fc_seconds = Unix.gettimeofday () -. t0 in
  let fc_failures = List.length (Faults.failures fc_report) in
  let fc_pass_rate =
    float_of_int (fc_schedules - fc_failures) /. float_of_int fc_schedules
  in
  Printf.printf
    "\nfault campaign (%s): %d schedules in %.3fs (baseline %.3fs, %.2fx per schedule), pass rate %.2f\n"
    fc_case.name fc_schedules fc_seconds fc_baseline.seconds
    (fc_seconds /. float_of_int fc_schedules /. fc_baseline.seconds)
    fc_pass_rate;
  let fault_campaign_json =
    Json.Obj
      [
        ("case", Json.String fc_case.name);
        ("schedules", Json.Int fc_schedules);
        ("pass_rate", Json.Float fc_pass_rate);
        ("baseline_cycles", Json.Int fc_report.Faults.baseline_cycles);
        ("baseline_wall_seconds", Json.Float fc_baseline.seconds);
        ("campaign_wall_seconds", Json.Float fc_seconds);
        ( "overhead_per_schedule",
          Json.Float (fc_seconds /. float_of_int fc_schedules /. fc_baseline.seconds) );
      ]
  in
  let json =
    match json with
    | Json.Obj fields -> Json.Obj (fields @ [ ("fault_campaign", fault_campaign_json) ])
    | other -> other
  in
  (* Concurrent campaign: the same schedules fanned over the shared
     executor pool. Determinism is part of the contract — the report
     must be structurally identical to the serial one under any --jobs —
     and the speedup is recorded against the honest core count. *)
  let run_campaign jobs =
    let t0 = Unix.gettimeofday () in
    match Faults.campaign ~inputs:fc_inputs ~schedules:fc_schedules ~jobs fc_case.program with
    | Ok r -> (Unix.gettimeofday () -. t0, r)
    | Error d -> failwith ("parallel fault campaign baseline failed: " ^ d.Diag.message)
  in
  let cp_serial_s, cp_serial_r = run_campaign 1 in
  let cp_par_s, cp_par_r = run_campaign host_cores in
  if cp_serial_r <> cp_par_r then
    failwith "parallel campaign report differs from the serial one";
  Printf.printf
    "campaign --jobs %d (%s): %d schedules in %.3fs vs %.3fs serial (%.2fx on %d core(s)), reports identical\n"
    host_cores fc_case.name fc_schedules cp_par_s cp_serial_s (cp_serial_s /. cp_par_s)
    host_cores;
  let campaign_parallel_json =
    Json.Obj
      [
        ("case", Json.String fc_case.name);
        ("schedules", Json.Int fc_schedules);
        ("jobs", Json.Int host_cores);
        ("host_cores", Json.Int host_cores);
        ("serial_wall_seconds", Json.Float cp_serial_s);
        ("parallel_wall_seconds", Json.Float cp_par_s);
        ("speedup", Json.Float (cp_serial_s /. cp_par_s));
        ("speedup_valid", Json.Bool (host_cores > 1));
        ("identical_to_serial", Json.Bool true);
      ]
  in
  let json =
    match json with
    | Json.Obj fields -> Json.Obj (fields @ [ ("campaign_parallel", campaign_parallel_json) ])
    | other -> other
  in
  (* Expression optimizer: op counts and per-cell eval cost on the fused
     horizontal diffusion. The fused bodies keep their sharing as let
     bindings (DAG extraction); the "inlined" variant re-expands every
     shared node per occurrence — the evaluation strategy the paper
     delegated to the vendor compiler's CSE. Work flops must be strictly
     below tree flops, and the shared compiled body must be cheaper to
     evaluate per cell. *)
  let eo_case = hdiff_small ~w:1 in
  let eo_fused, _ = Fusion.fuse_all eo_case.program in
  let eo_opt, eo_report = Opt.optimize_with_report eo_fused in
  let eo_counts = Op_count.of_program eo_opt in
  let eo_work = eo_counts.Op_count.work_flops_per_cell in
  let eo_tree = eo_counts.Op_count.tree_flops_per_cell in
  if eo_work >= eo_tree then
    failwith "expr_opt: fused hdiff work flops not below tree flops";
  let eval_ns_per_cell compile body =
    let slots = Hashtbl.create 32 in
    let data = Array.init 64 (fun i -> 0.25 +. (float_of_int i /. 7.)) in
    let access ~field ~offsets =
      let idx =
        match Hashtbl.find_opt slots (field, offsets) with
        | Some i -> i
        | None ->
            let i = Hashtbl.length slots in
            Hashtbl.add slots (field, offsets) i;
            i
      in
      let i = idx land 63 in
      fun (ctx : float array) -> Array.unsafe_get ctx i
    in
    let fn = compile ~access body in
    let cells = if quick then 100_000 else 2_000_000 in
    let sink = ref 0. in
    ignore (fn data);
    let t0 = Unix.gettimeofday () in
    for i = 0 to cells - 1 do
      data.(i land 63) <- data.(i land 63) +. 1e-12;
      sink := !sink +. fn data
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if Float.is_nan !sink then Printf.printf "(unreachable)";
    dt /. float_of_int cells *. 1e9
  in
  (* The widest fused stencil dominates; bench both evaluation modes of
     its body. *)
  let eo_body =
    let flops (s : Stencil.t) = Expr.flop_count (Stencil.work_profile s) in
    let widest =
      List.fold_left
        (fun best s -> if flops s > flops best then s else best)
        (List.hd eo_opt.Program.stencils)
        eo_opt.Program.stencils
    in
    widest.Stencil.body
  in
  (* Shared: the DAG-slot compiler, each distinct node once per cell.
     Inlined: the plain closure-tree compiler on the fully inlined
     expression, every shared node re-evaluated per occurrence —
     Compile.body would just hash-cons the sharing back. *)
  let shared_ns = eval_ns_per_cell (fun ~access b -> Compile.body ~access b) eo_body in
  let inlined_ns =
    eval_ns_per_cell
      (fun ~access b -> Compile.expr ~access ~env:(fun _ -> None) b.Expr.result)
      { Expr.lets = []; result = Expr.inline_lets eo_body }
  in
  Printf.printf
    "\nexpr_opt (%s fused): ops %d -> %d, %d work vs %d tree flops/cell (%d saved); eval %.1f ns/cell shared vs %.1f inlined (%.2fx)\n"
    eo_case.name eo_report.Opt.ops_before eo_report.Opt.ops_after eo_work eo_tree
    (eo_tree - eo_work) shared_ns inlined_ns (inlined_ns /. shared_ns);
  let expr_opt_json =
    Json.Obj
      [
        ("case", Json.String eo_case.name);
        ("ops_before", Json.Int eo_report.Opt.ops_before);
        ("ops_after", Json.Int eo_report.Opt.ops_after);
        ("shared_nodes", Json.Int eo_report.Opt.shared_nodes);
        ("work_flops_per_cell", Json.Int eo_work);
        ("tree_flops_per_cell", Json.Int eo_tree);
        ("flops_saved_per_cell", Json.Int (eo_tree - eo_work));
        ("shared_eval_ns_per_cell", Json.Float shared_ns);
        ("inlined_eval_ns_per_cell", Json.Float inlined_ns);
        ("eval_speedup", Json.Float (inlined_ns /. shared_ns));
      ]
  in
  let json =
    match json with
    | Json.Obj fields -> Json.Obj (fields @ [ ("expr_opt", expr_opt_json) ])
    | other -> other
  in
  (* Serve-mode cache: latency of one simulate request against a cold
     service vs the same request repeated against the warm cache. The
     warm path must execute zero passes (every artifact replayed), so
     its latency bounds the per-request overhead of the serve loop
     itself — the number that makes design-space exploration through
     `stencilflow serve` cheap. *)
  let sc_dir =
    if Sys.file_exists "examples/programs" then "examples/programs"
    else "../examples/programs"
  in
  let sc_request =
    Printf.sprintf
      {|{"verb": "simulate", "program_file": %S, "options": {"validate": false}}|}
      (Filename.concat sc_dir "horizontal_diffusion_small.json")
  in
  let sc_service = Service.create () in
  let sc_time () =
    let t0 = Unix.gettimeofday () in
    let resp, _ = Service.handle sc_service sc_request in
    let dt = Unix.gettimeofday () -. t0 in
    let executed =
      match Json.parse resp with
      | Ok json -> (
          match Option.bind (Json.member "passes" json) (Json.member "executed") with
          | Some (Json.Int n) -> n
          | _ -> failwith "service_cache: malformed response")
      | Error _ -> failwith "service_cache: response is not JSON"
    in
    (dt, executed)
  in
  let sc_cold_s, sc_cold_executed = sc_time () in
  if sc_cold_executed = 0 then failwith "service_cache: cold request hit the cache";
  let sc_warm_runs = if quick then 5 else 20 in
  let sc_warm =
    List.init sc_warm_runs (fun _ ->
        let dt, executed = sc_time () in
        if executed <> 0 then failwith "service_cache: warm request executed a pass";
        dt)
  in
  let sc_warm_s = List.nth (List.sort compare sc_warm) (sc_warm_runs / 2) in
  let sc_stats = Cache.stats (Service.cache sc_service) in
  let sc_hit_rate =
    float_of_int sc_stats.Cache.hits
    /. float_of_int (sc_stats.Cache.hits + sc_stats.Cache.misses)
  in
  Printf.printf
    "\nservice cache (hdiff-small simulate): cold %.3fs, warm %.6fs (%.0fx), hit rate %.2f\n"
    sc_cold_s sc_warm_s (sc_cold_s /. sc_warm_s) sc_hit_rate;
  let service_cache_json =
    Json.Obj
      [
        ("case", Json.String "hdiff-small-simulate");
        ("cold_wall_seconds", Json.Float sc_cold_s);
        ("warm_wall_seconds", Json.Float sc_warm_s);
        ("warm_runs", Json.Int sc_warm_runs);
        ("speedup", Json.Float (sc_cold_s /. sc_warm_s));
        ("warm_passes_executed", Json.Int 0);
        ("hits", Json.Int sc_stats.Cache.hits);
        ("misses", Json.Int sc_stats.Cache.misses);
        ("hit_rate", Json.Float sc_hit_rate);
      ]
  in
  let json =
    match json with
    | Json.Obj fields -> Json.Obj (fields @ [ ("service_cache", service_cache_json) ])
    | other -> other
  in
  (* Concurrent serve tier: the same stream of distinct simulate
     requests through a one-worker vs an N-worker server — the full
     serve loop over pipes, so admission, pool scheduling, the
     thread-safe cache and the writer are all on the measured path. A
     second stream with every request duplicated measures how much work
     single-flight deduplication absorbs. On a single-core host the
     speedup is recorded but flagged invalid. *)
  let svc_programs = if quick then 4 else 12 in
  let svc_shape = if quick then 48 else 96 in
  let svc_program i =
    Printf.sprintf
      {|{"name": "bench%d", "shape": [%d, %d], "inputs": {"x": {}}, "stencils": {"s": {"code": "x[0,0] * %d.0 + x[0,1]", "boundary": {"x": {"type": "constant", "value": 0.0}}}}, "outputs": ["s"]}|}
      i svc_shape svc_shape (i + 2)
  in
  let svc_request i =
    Printf.sprintf {|{"id": %d, "verb": "simulate", "program": %s, "options": {"validate": false}}|}
      i (svc_program i)
  in
  let run_serve ~serve_jobs reqs =
    let t = Service.create ~serve_jobs () in
    let req_r, req_w = Unix.pipe () in
    let resp_r, resp_w = Unix.pipe () in
    let ocq = Unix.out_channel_of_descr req_w in
    List.iter
      (fun l ->
        output_string ocq l;
        output_char ocq '\n')
      (reqs @ [ {|{"verb": "shutdown"}|} ]);
    close_out ocq;
    let t0 = Util.monotime () in
    let server =
      Domain.spawn (fun () ->
          let ic = Unix.in_channel_of_descr req_r in
          let oc = Unix.out_channel_of_descr resp_w in
          Service.serve_loop t ic oc;
          Out_channel.close oc;
          In_channel.close ic)
    in
    let ic = Unix.in_channel_of_descr resp_r in
    let rec read n =
      match In_channel.input_line ic with None -> n | Some _ -> read (n + 1)
    in
    let answered = read 0 in
    Domain.join server;
    In_channel.close ic;
    let dt = Util.monotime () -. t0 in
    if answered <> List.length reqs + 1 then failwith "service_concurrent: lost a response";
    (dt, Cache.stats (Service.cache t))
  in
  let svc_reqs = List.init svc_programs svc_request in
  let svc_jobs_n = if host_cores > 1 then min 4 host_cores else 4 in
  let svc_serial_s, _ = run_serve ~serve_jobs:1 svc_reqs in
  let svc_par_s, _ = run_serve ~serve_jobs:svc_jobs_n svc_reqs in
  let rps1 = float_of_int svc_programs /. svc_serial_s in
  let rpsn = float_of_int svc_programs /. svc_par_s in
  let svc_dup_reqs = List.concat_map (fun r -> [ r; r ]) svc_reqs in
  let _, dup_stats = run_serve ~serve_jobs:svc_jobs_n svc_dup_reqs in
  let lookups = dup_stats.Cache.hits + dup_stats.Cache.misses + dup_stats.Cache.joined in
  let dedup_ratio =
    if lookups = 0 then 0. else float_of_int dup_stats.Cache.joined /. float_of_int lookups
  in
  Printf.printf
    "\n\
     service concurrent (%d simulate requests): jobs=1 %.2f req/s, jobs=%d %.2f req/s \
     (%.2fx)%s\n\
     single-flight: %d joined of %d lookups (ratio %.2f) on the duplicated stream\n"
    svc_programs rps1 svc_jobs_n rpsn (rpsn /. rps1)
    (if host_cores > 1 then "" else " [1-core host: speedup not meaningful]")
    dup_stats.Cache.joined lookups dedup_ratio;
  let service_concurrent_json =
    Json.Obj
      [
        ("requests", Json.Int svc_programs);
        ("jobs", Json.Int svc_jobs_n);
        ("serial_wall_seconds", Json.Float svc_serial_s);
        ("parallel_wall_seconds", Json.Float svc_par_s);
        ("requests_per_second_jobs1", Json.Float rps1);
        ("requests_per_second_jobsN", Json.Float rpsn);
        ("speedup", Json.Float (rpsn /. rps1));
        ("host_cores", Json.Int host_cores);
        ("speedup_valid", Json.Bool (host_cores > 1));
        ("singleflight_joined", Json.Int dup_stats.Cache.joined);
        ("singleflight_lookups", Json.Int lookups);
        ("singleflight_dedup_ratio", Json.Float dedup_ratio);
      ]
  in
  let json =
    match json with
    | Json.Obj fields ->
        Json.Obj (fields @ [ ("service_concurrent", service_concurrent_json) ])
    | other -> other
  in
  (* Service chaos: the hardened serve tier under seeded adversity —
     injected worker exceptions, slow passes, malformed lines and blob
     corruption — timed end to end. The campaign is a correctness gate
     (any violated invariant fails the bench) and its wall clock tracks
     how much the hardening costs per perturbed seed. *)
  let chaos_dir =
    if Sys.file_exists "examples/programs" then "examples/programs"
    else "../examples/programs"
  in
  let chaos_programs =
    List.map (Filename.concat chaos_dir) [ "diamond.json"; "laplace2d.json" ]
  in
  let chaos_seeds = List.init (if quick then 5 else 25) (fun i -> i + 1) in
  let chaos_requests = if quick then 4 else 6 in
  let ch0 = Util.monotime () in
  let chaos_report =
    Chaos.campaign ~seeds:chaos_seeds ~requests:chaos_requests
      ~programs:chaos_programs ()
  in
  let chaos_s = Util.monotime () -. ch0 in
  if not (Chaos.passed chaos_report) then begin
    Format.printf "%a@." Chaos.pp_report chaos_report;
    failwith "service_chaos: campaign violated an invariant"
  end;
  let chaos_total f =
    List.fold_left (fun acc (r : Chaos.seed_report) -> acc + f r) 0
      chaos_report.Chaos.seed_reports
  in
  let chaos_raises = chaos_total (fun r -> r.Chaos.raises) in
  let chaos_malformed = chaos_total (fun r -> r.Chaos.malformed) in
  let chaos_slows = chaos_total (fun r -> r.Chaos.slows) in
  let chaos_corrupted = chaos_total (fun r -> r.Chaos.corrupted_blobs) in
  Printf.printf
    "\n\
     service chaos (%d seeds x %d requests): all invariants held in %.2fs (%.3fs/seed)\n\
     injected: %d raise(s), %d malformed line(s), %d slow(s), %d corrupted blob(s)\n"
    chaos_report.Chaos.seeds chaos_requests chaos_s
    (chaos_s /. float_of_int (max 1 chaos_report.Chaos.seeds))
    chaos_raises chaos_malformed chaos_slows chaos_corrupted;
  let service_chaos_json =
    Json.Obj
      [
        ("seeds", Json.Int chaos_report.Chaos.seeds);
        ("requests_per_seed", Json.Int chaos_requests);
        ("failed_seeds", Json.Int chaos_report.Chaos.failed);
        ("wall_seconds", Json.Float chaos_s);
        ( "seconds_per_seed",
          Json.Float (chaos_s /. float_of_int (max 1 chaos_report.Chaos.seeds)) );
        ("injected_raises", Json.Int chaos_raises);
        ("injected_malformed", Json.Int chaos_malformed);
        ("injected_slows", Json.Int chaos_slows);
        ("corrupted_blobs", Json.Int chaos_corrupted);
      ]
  in
  let json =
    match json with
    | Json.Obj fields -> Json.Obj (fields @ [ ("service_chaos", service_chaos_json) ])
    | other -> other
  in
  if no_json then Printf.printf "\n--no-json: skipped BENCH_sim.json\n"
  else begin
    let out = if Sys.file_exists "BENCH_sim.json" || Sys.file_exists "dune-project" then "BENCH_sim.json" else "../BENCH_sim.json" in
    let oc = open_out out in
    output_string oc (Json.to_string json);
    output_string oc "\n";
    close_out oc;
    Printf.printf "\nwrote %s\n" out
  end
