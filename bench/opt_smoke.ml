(* Optimize-and-simulate smoke: every example program must survive
   fusion + the expression optimizer (fold-cse over the hash-consed DAG)
   and still validate bit-for-bit against the sequential reference.
   Run via the @opt-smoke alias (attached to `dune runtest`). *)
open Stencilflow

let () =
  let dir =
    if Sys.file_exists "examples/programs" then "examples/programs"
    else "../examples/programs"
  in
  let programs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if programs = [] then failwith ("no programs found under " ^ dir);
  List.iter
    (fun file ->
      let p =
        match Program_json.of_file (Filename.concat dir file) with
        | Ok p -> p
        | Error ds -> failwith (String.concat "; " (List.map Diag.to_string ds))
      in
      let fused, _ = Fusion.fuse_all p in
      let optimized, report = Opt.optimize_with_report fused in
      match Engine.run_and_validate optimized with
      | Ok stats ->
          Printf.printf "%-36s ok: ops %d -> %d, %d cycles\n%!" file
            report.Opt.ops_before report.Opt.ops_after stats.Engine.cycles
      | Error d -> failwith (file ^ ": " ^ Diag.to_string d))
    programs
