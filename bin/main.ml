(* StencilFlow command-line interface: analysis, simulation, partitioning
   and code generation for JSON stencil-program descriptions.

   The analyze/simulate/codegen commands execute through the instrumented
   pass manager (lib/toolchain): --trace-passes prints per-pass timings
   and artifact counters, --dump-ir writes every intermediate artifact to
   a directory, and failures are structured diagnostics with stable codes
   and exit codes (see docs/PIPELINE.md). *)
open Stencilflow
open Cmdliner

let program_arg =
  let doc = "JSON stencil program description (see README for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.json" ~doc)

let vector_width_arg =
  let doc = "Override the program's vectorization width W (Sec. IV-C)." in
  Arg.(value & opt (some int) None & info [ "w"; "vector-width" ] ~docv:"W" ~doc)

(* The flags shared by every pipeline-driving command (analyze, simulate,
   codegen, serve), factored into one record + one Cmdliner term so the
   commands cannot drift apart. *)
module Common = struct
  type t = {
    fuse : bool;
    optimize : bool;
    trace_passes : bool;
    dump_ir : string option;
    diag_json : bool;
    jobs : int;
    cache_dir : string option;
  }

  let fuse_arg =
    let doc = "Apply aggressive stencil fusion before mapping (Sec. V-B)." in
    Arg.(value & flag & info [ "fuse" ] ~doc)

  let optimize_arg =
    let doc =
      "Run the expression optimiser (constant folding + CSE over the hash-consed \
       DAG) after the frontend; its op counters appear in $(b,--trace-passes)."
    in
    Arg.(value & flag & info [ "optimize" ] ~doc)

  let trace_passes_arg =
    let doc =
      "Print per-pass wall-clock timings and artifact counters; passes replayed \
       from the cache are marked $(b,[cached]) and a hit/miss summary follows."
    in
    Arg.(value & flag & info [ "trace-passes" ] ~doc)

  let dump_ir_arg =
    let doc = "Dump every intermediate artifact into $(docv)/NN-passname/ after each pass." in
    Arg.(value & opt (some string) None & info [ "dump-ir" ] ~docv:"DIR" ~doc)

  let diag_json_arg =
    let doc = "Report diagnostics as JSON on stdout instead of text on stderr." in
    Arg.(value & flag & info [ "diag-json" ] ~doc)

  let jobs_arg =
    let doc =
      "Hardware threads to use: campaigns, probe arms and sweeps run that many \
       independent simulations concurrently, and the parallel engine tunes its \
       spin/park behaviour to it. $(b,0) (the default) means auto-detect \
       ($(b,Domain.recommended_domain_count)); $(b,1) forces fully serial \
       execution. Results are byte-identical for every value."
    in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

  let cache_dir_arg =
    let doc =
      "Back the content-addressed pass cache with an on-disk store rooted at \
       $(docv): unchanged passes are replayed from earlier invocations instead \
       of re-executed (keys cover the program content, device, configuration \
       and pass options; see docs/PIPELINE.md)."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

  let term =
    let make fuse optimize trace_passes dump_ir diag_json jobs cache_dir =
      { fuse; optimize; trace_passes; dump_ir; diag_json; jobs; cache_dir }
    in
    Term.(
      const make $ fuse_arg $ optimize_arg $ trace_passes_arg $ dump_ir_arg $ diag_json_arg
      $ jobs_arg $ cache_dir_arg)
end

let remote_arg =
  let doc =
    "Execute the request through a freshly spawned $(b,stencilflow serve) child \
     process over its JSON protocol and print the raw response line (with \
     $(b,--cache-dir), repeated invocations hit the shared on-disk cache)."
  in
  Arg.(value & flag & info [ "remote" ] ~doc)

(* Kept as top-level names: the non-pipeline commands (validate-depths,
   autotune, partition, dot, report, tile) take these à la carte. *)
let fuse_arg = Common.fuse_arg
let jobs_arg = Common.jobs_arg

(* --jobs 0 = auto. Campaign/probe/sweep call sites take the resolved
   count; the engine config keeps the raw value (its 0 means the same
   auto-detect, resolved at run time). *)
let resolve_jobs jobs = if jobs > 0 then jobs else Executor.default_jobs ()

(* Diagnostics go to stderr as "stencilflow: <file:line:col:> severity[CODE]:
   message" lines (or as one JSON object on stdout with --diag-json); the
   process exit code is derived from the first error's code layer. *)
let emit_diags ~json ds =
  if ds <> [] then
    if json then print_endline (Json.to_string (Diag.list_to_json ds))
    else List.iter (fun d -> Format.eprintf "stencilflow: %s@." (Diag.to_string d)) ds

let exit_diags ~json ds =
  emit_diags ~json ds;
  exit (Diag.exit_code ds)

(* Run a pass list from an empty context; on failure print the executed
   prefix's trace (if requested) and the diagnostics, and exit with the
   stable code. On success, warnings are reported but do not change the
   caller's flow. With --cache-dir, passes run against a disk-backed
   content-addressed cache and --trace-passes appends its hit/miss
   summary. *)
let pp_cache_stats fmt (s : Cache.stats) =
  Format.fprintf fmt "cache: %d hit(s), %d miss(es), %d stale@." (s.Cache.hits + s.Cache.joined)
    s.Cache.misses s.Cache.stale

let run_pipeline ?device ?sim_config ?inputs ~(common : Common.t) passes =
  let hooks =
    match common.Common.dump_ir with
    | Some dir -> Passes.dump_hook ~dir
    | None -> Pass_manager.no_hooks
  in
  let cache =
    Option.map
      (fun dir -> Cache.with_store (Cache.create ()) (Store.open_ dir))
      common.Common.cache_dir
  in
  let emit_trace trace =
    if common.Common.trace_passes then begin
      Format.printf "%a" Pass_manager.pp_trace trace;
      match cache with
      | Some c -> Format.printf "%a" pp_cache_stats (Cache.stats c)
      | None -> ()
    end
  in
  let ctx = Ctx.create ?device ?sim_config ?inputs () in
  match Pass_manager.run ~hooks ?cache passes ctx with
  | Ok (ctx, trace) ->
      emit_trace trace;
      ctx
  | Error (ds, trace) ->
      emit_trace trace;
      exit_diags ~json:common.Common.diag_json ds

(* --remote: spawn a serve child, send the single request this command
   would have executed locally, print the raw response line, and exit 0
   when the response reports ok. A child that dies mid-stream (no
   response line, or a broken request pipe) is retried a bounded number
   of times with backoff — each retry spawns a fresh child. *)
let remote_attempts = 3

let remote_eval ~verb ~path ~(common : Common.t) ?width ?devices ?seed ?max_cycles () =
  (* A dead child must surface as EOF/EPIPE on the pipes, not kill this
     process with an unhandled SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let options =
    [ ("fuse", Json.Bool common.Common.fuse); ("optimize", Json.Bool common.Common.optimize) ]
    @ (match width with Some w -> [ ("width", Json.Int w) ] | None -> [])
    @ (match devices with Some n -> [ ("devices", Json.Int n) ] | None -> [])
    @ (match seed with Some n -> [ ("seed", Json.Int n) ] | None -> [])
    @ match max_cycles with Some n -> [ ("max_cycles", Json.Int n) ] | None -> []
  in
  let request =
    Json.to_string ~minify:true
      (Json.Obj
         [
           ("verb", Json.String verb);
           ("program_file", Json.String path);
           ("options", Json.Obj options);
         ])
  in
  let exe = Sys.executable_name in
  let argv =
    [| exe; "serve" |]
    |> Array.to_list
    |> (fun base ->
         base
         @ match common.Common.cache_dir with Some d -> [ "--cache-dir"; d ] | None -> [])
    |> Array.of_list
  in
  (* cloexec on every end: create_process dup2s req_read/resp_write onto
     the child's stdin/stdout (clearing the flag on those), and the
     parent's ends must NOT leak into the child or its stdin never sees
     EOF and it outlives the session. *)
  let attempt () =
    let req_read, req_write = Unix.pipe ~cloexec:true () in
    let resp_read, resp_write = Unix.pipe ~cloexec:true () in
    let pid = Unix.create_process exe argv req_read resp_write Unix.stderr in
    Unix.close req_read;
    Unix.close resp_write;
    let oc = Unix.out_channel_of_descr req_write in
    let ic = Unix.in_channel_of_descr resp_read in
    let resp =
      (* A child dying before (or while) reading the request raises
         Sys_error (EPIPE) on the write; a child dying before answering
         yields EOF (None). Both are the same failure: no response. *)
      try
        output_string oc (request ^ "\n");
        flush oc;
        In_channel.input_line ic
      with Sys_error _ -> None
    in
    close_out_noerr oc;
    close_in_noerr ic;
    ignore (Unix.waitpid [] pid);
    resp
  in
  let rec go n =
    match attempt () with
    | Some line -> line
    | None when n < remote_attempts ->
        (* Exponential backoff: 50ms, 100ms, ... between fresh children. *)
        Unix.sleepf (0.05 *. float_of_int (1 lsl (n - 1)));
        go (n + 1)
    | None ->
        exit_diags ~json:common.Common.diag_json
          [
            Diag.errorf ~code:Diag.Code.internal
              "serve child produced no response (%d attempt(s))" remote_attempts;
          ]
  in
  let line = go 1 in
  print_endline line;
  let ok =
    match Json.parse line with
    | Ok json -> ( match Json.member "ok" json with Some (Json.Bool b) -> b | _ -> false)
    | Error _ -> false
  in
  exit (if ok then 0 else 1)

(* Fusion runs before the optimiser so fold-cse sees (and re-shares) the
   substituted fused bodies — the same order as Sdfg.Pipeline.default_pipeline. *)
let frontend_passes ?(optimize = false) path width fuse =
  [ Passes.load_file path ]
  @ (match width with Some w -> [ Passes.vectorize w ] | None -> [])
  @ (if fuse then [ Passes.fuse () ] else [])
  @ if optimize then [ Passes.optimize () ] else []

(* Shared loader for the commands that do not run through the pass
   manager; failures still carry coded diagnostics. *)
let load path width =
  match load_file path with
  | Error ds -> exit_diags ~json:false ds
  | Ok p -> ( match width with None -> p | Some w -> Vectorize.apply p w)

let with_fusion fuse p = if fuse then fst (Fusion.fuse_all p) else p

let the_program (ctx : Ctx.t) =
  match ctx.Ctx.program with
  | Some p -> p
  | None -> invalid_arg "pipeline finished without a program"

let analyze_cmd =
  let run path width (common : Common.t) remote =
    if remote then remote_eval ~verb:"analyze" ~path ~common ?width ()
    else begin
      let ctx =
        run_pipeline ~common
          (frontend_passes ~optimize:common.Common.optimize path width common.Common.fuse
          @ [ Passes.delay_buffers ])
      in
      let p = the_program ctx in
      let analysis = match ctx.Ctx.analysis with Some a -> a | None -> assert false in
      Format.printf "%a@." Delay_buffer.pp analysis;
      let counts = Op_count.of_program p in
      Format.printf "%a@." Op_count.pp counts;
      Format.printf "arithmetic intensity: %.3f Op/operand, %.3f Op/B@."
        (Op_count.ai_ops_per_operand p) (Op_count.ai_ops_per_byte p);
      Format.printf "expected cycles (Eq. 1): %d@." (Runtime_model.expected_cycles p);
      let usage = Resource.of_program p in
      Format.printf "estimated resources: %a@." Resource.pp usage;
      let a, f, m, d = Resource.utilization Device.stratix10 usage in
      Format.printf "utilization on %s: ALM %.1f%%, FF %.1f%%, M20K %.1f%%, DSP %.1f%%@."
        Device.stratix10.Device.name (100. *. a) (100. *. f) (100. *. m) (100. *. d);
      emit_diags ~json:common.Common.diag_json ctx.Ctx.diags;
      exit (Diag.exit_code ctx.Ctx.diags)
    end
  in
  let doc = "Run the buffering, latency, and resource analyses on a program." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ program_arg $ vector_width_arg $ Common.term $ remote_arg)

let simulate_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed for generated input data.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE.csv"
             ~doc:"Sample channel occupancies every 16 cycles into a CSV file.")
  in
  let profile_arg =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Run the simulator instrumented and print a stall-attribution table \
                   ranking components by blocked cycles.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE.json"
             ~doc:"Write a Chrome trace_event JSON file (open in chrome://tracing or \
                   Perfetto) with per-component activity, stall spans and channel \
                   occupancy counters.")
  in
  let counters_json_arg =
    Arg.(value & flag
         & info [ "counters-json" ]
             ~doc:"Print the telemetry counter registry (per-component busy/stalled \
                   cycles, stalls by cause, pushes, pops, bytes; per-channel high-water \
                   marks) as JSON on stdout.")
  in
  let parallel_arg =
    Arg.(value & flag
         & info [ "parallel" ]
             ~doc:"Simulate with one OCaml domain per device, synchronizing at link \
                   boundaries (cycle- and bit-identical to the sequential engine). \
                   Degrades to sequential for single-device placements and \
                   instrumented runs ($(b,--profile), $(b,--trace), $(b,--trace-out), \
                   $(b,--counters-json)).")
  in
  let devices_arg =
    Arg.(value & opt (some int) None
         & info [ "devices" ] ~docv:"N"
             ~doc:"Force the mapping onto $(docv) devices (even contiguous chunks of \
                   the topological order) instead of the resource-driven greedy \
                   partitioner.")
  in
  let inject_arg =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"PLAN"
             ~doc:"Inject deterministic timing faults: $(b,default), $(b,none), or a \
                   semicolon-separated plan (e.g. \
                   'link-stall:gap=100,dur=8;unit-hiccup\\@a:gap=50,dur=4'; see \
                   docs/SIMULATOR.md). Faults perturb timing, never values; the run \
                   degrades to the sequential engine.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 1
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed of the injected fault timeline (with $(b,--inject)). The whole \
                   perturbation sequence is a pure function of (seed, plan).")
  in
  let max_cycles_arg =
    Arg.(value & opt (some int) None
         & info [ "max-cycles" ] ~docv:"N"
             ~doc:"Abort the simulation after $(docv) cycles with a coded SF0703 \
                   timeout; the budget is echoed in the diagnostic's notes.")
  in
  let run path width (common : Common.t) remote seed trace profile trace_out counters_json
      parallel devices inject fault_seed max_cycles =
    if remote then remote_eval ~verb:"simulate" ~path ~common ?width ?devices ~seed ?max_cycles ()
    else begin
    let diag_json = common.Common.diag_json in
    let telemetry = profile || trace_out <> None || counters_json in
    let trace_interval =
      if trace <> None || trace_out <> None then Some 16 else None
    in
    let fault_plan =
      match inject with
      | None -> None
      | Some spec -> (
          match Fault_plan.of_string spec with
          | Ok pl -> if pl = Fault_plan.none then None else Some pl
          | Error m ->
              exit_diags ~json:diag_json
                [ Diag.errorf ~code:Diag.Code.sim_config "bad --inject plan: %s" m ])
    in
    let sim_config =
      Engine.Config.make
        ~tracing:(Engine.Config.tracing ?trace_interval ~telemetry ())
        ~parallelism:
          (Engine.Config.parallelism
             ~mode:(if parallel then `Domains_per_device else `Sequential)
             ~host_jobs:common.Common.jobs ())
        ~safety:(Engine.Config.safety ?max_cycles ())
        ~faults:(Engine.Config.faults ?plan:fault_plan ~seed:fault_seed ())
        ()
    in
    let partition_pass =
      match devices with Some n -> Passes.partition_into n | None -> Passes.partition
    in
    let ctx =
      run_pipeline ~sim_config ~common
        (frontend_passes path width false
        @ [ Passes.fuse () ]
        @ (if common.Common.optimize then [ Passes.optimize () ] else [])
        @ [ Passes.delay_buffers; partition_pass; Passes.performance_model ]
        @ [ Passes.simulate ~seed () ])
    in
    let report = report_of_ctx ctx in
    Format.printf "%a@." pp_report report;
    (* The failed-run report is still available for profiling: the engine
       harvests telemetry on deadlock and timeout too. *)
    let telemetry_report =
      match report.simulation with
      | Some (Ok stats) -> Some stats.Engine.telemetry
      | _ -> None
    in
    (match (profile, telemetry_report) with
    | true, Some t -> Format.printf "%a@." Telemetry.pp_attribution t
    | _, _ -> ());
    (match (counters_json, telemetry_report) with
    | true, Some t -> print_endline (Json.to_string (Telemetry.counters_json t))
    | _, _ -> ());
    (match (trace_out, telemetry_report) with
    | Some file, Some t ->
        Out_channel.with_open_text file (fun oc ->
            output_string oc (Json.to_string (Telemetry.trace_events_json t)));
        Format.printf "wrote %s@." file
    | _, _ -> ());
    (match (trace, telemetry_report) with
    | Some file, Some t when t.Telemetry.samples <> [] ->
        let samples = t.Telemetry.samples in
        Out_channel.with_open_text file (fun oc ->
            let channels = List.map fst (snd (List.hd samples)) in
            output_string oc ("cycle," ^ String.concat "," channels ^ "\n");
            List.iter
              (fun (cycle, occupancies) ->
                output_string oc
                  (string_of_int cycle ^ ","
                  ^ String.concat "," (List.map (fun (_, o) -> string_of_int o) occupancies)
                  ^ "\n"))
              samples);
        Format.printf "wrote %s@." file
    | _, _ -> ());
    (if diag_json then emit_diags ~json:true ctx.Ctx.diags);
    exit (Diag.exit_code ctx.Ctx.diags)
    end
  in
  let doc =
    "Execute the program on the cycle-level spatial simulator and validate against the \
     sequential reference interpreter."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ program_arg $ vector_width_arg $ Common.term $ remote_arg $ seed_arg
      $ trace_arg $ profile_arg $ trace_out_arg $ counters_json_arg $ parallel_arg
      $ devices_arg $ inject_arg $ fault_seed_arg $ max_cycles_arg)

let validate_depths_cmd =
  let campaign_arg =
    Arg.(value & opt int 25
         & info [ "campaign" ] ~docv:"N"
             ~doc:"Number of seeded fault schedules to run against the analysed depths.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed for generated input data.")
  in
  let inject_arg =
    Arg.(value & opt string "default"
         & info [ "inject" ] ~docv:"PLAN"
             ~doc:"Fault plan driving the campaign and the under-provisioning probe \
                   (same syntax as $(b,simulate --inject)).")
  in
  let fault_seed_arg =
    Arg.(value & opt int 1
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Fault-timeline seed of the under-provisioning probe.")
  in
  let run path width campaign_n seed inject fault_seed jobs =
    let jobs = resolve_jobs jobs in
    (* No fusion: collapsing the DAG can erase the very join edges whose
       delay buffers the campaign is exercising. *)
    let p = load path width in
    let plan =
      match Fault_plan.of_string inject with
      | Ok pl -> pl
      | Error m ->
          exit_diags ~json:false
            [ Diag.errorf ~code:Diag.Code.sim_config "bad --inject plan: %s" m ]
    in
    let inputs = Interp.random_inputs ~seed p in
    let analysis = Delay_buffer.analyze p in
    let config = Engine.Config.default in
    (match Faults.campaign ~config ~inputs ~plan ~schedules:campaign_n ~jobs p with
    | Error d -> exit_diags ~json:false [ d ]
    | Ok report ->
        let failed = Faults.failures report in
        Format.printf
          "campaign: %d/%d seeded schedules bit-identical to the unperturbed run (%d cycles)@."
          (campaign_n - List.length failed)
          campaign_n report.Faults.baseline_cycles;
        List.iter
          (fun (r, d) ->
            Format.printf "  seed %d FAILED: %s@." r.Faults.seed (Diag.to_string d))
          failed;
        let probe_ok =
          match Faults.probe_tightest ~config ~inputs ~plan ~fault_seed ~jobs ~analysis p with
          | None ->
              Format.printf
                "no positive-depth delay buffer: nothing to under-provision@.";
              true
          | Some probe ->
              let src, dst = probe.Faults.edge in
              let slack = config.Engine.Config.channel_slack in
              Format.printf
                "tightest delay-buffer edge: %s->%s (analysed depth %d + slack %d words)@."
                src dst probe.Faults.analysed_depth slack;
              (match probe.Faults.tight_capacity with
              | None ->
                  Format.printf
                    "  completes even at capacity 1: edge is not load-bearing (no \
                     blocking cycle forms through it)@.";
                  true
              | Some tight ->
                  Format.printf
                    "  under-provisioned to capacity %d: deadlocks; capacity %d \
                     completes (margin %d words below analysed provisioning)@."
                    tight (tight + 1)
                    (probe.Faults.analysed_depth + slack - tight);
                  (match probe.Faults.probe_diag with
                  | None ->
                      Format.printf "  probe run unexpectedly completed@.";
                      false
                  | Some d ->
                      Format.printf "  error[%s]: %s@." d.Diag.code d.Diag.message;
                      List.iter
                        (fun note ->
                          if
                            String.starts_with ~prefix:"fault-attribution:" note
                            || String.starts_with ~prefix:"injected " note
                          then Format.printf "  %s@." note)
                        d.Diag.notes;
                      String.equal d.Diag.code Diag.Code.sim_deadlock))
        in
        if failed = [] && probe_ok then exit 0
        else
          exit
            (Diag.exit_code
               [ Diag.errorf ~code:Diag.Code.sim_deadlock "depth validation failed" ]))
  in
  let doc =
    "Adversarially validate the analysed delay-buffer depths: run a seeded fault-injection \
     campaign expecting bit-identical outputs, then under-provision the tightest edge to \
     the largest capacity that deadlocks, expecting a deterministic SF0701 with \
     fault-attribution notes."
  in
  Cmd.v (Cmd.info "validate-depths" ~doc)
    Term.(
      const run $ program_arg $ vector_width_arg $ campaign_arg $ seed_arg $ inject_arg
      $ fault_seed_arg $ jobs_arg)

let codegen_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Write kernel files into this directory instead of stdout.")
  in
  let run path width (common : Common.t) remote out =
    if remote then remote_eval ~verb:"codegen" ~path ~common ?width ()
    else begin
      let ctx =
        run_pipeline ~common
          (frontend_passes ~optimize:common.Common.optimize path width common.Common.fuse
          @ Passes.codegen_pipeline ~backend:`Opencl)
      in
      let artifacts = ctx.Ctx.kernels in
      let host = match ctx.Ctx.host_source with Some h -> h | None -> assert false in
      (match out with
      | None ->
          List.iter
            (fun (a : Opencl.artifact) ->
              Format.printf "// ===== %s =====@.%s@." a.Opencl.filename a.Opencl.source)
            artifacts;
          Format.printf "// ===== host.c =====@.%s@." host
      | Some dir ->
          List.iter
            (fun (a : Opencl.artifact) ->
              let file = Filename.concat dir a.Opencl.filename in
              Out_channel.with_open_text file (fun oc -> output_string oc a.Opencl.source);
              Format.printf "wrote %s@." file)
            artifacts;
          let host_file = Filename.concat dir "host.c" in
          Out_channel.with_open_text host_file (fun oc -> output_string oc host);
          Format.printf "wrote %s@." host_file);
      emit_diags ~json:common.Common.diag_json ctx.Ctx.diags;
      exit (Diag.exit_code ctx.Ctx.diags)
    end
  in
  let doc = "Emit Intel-FPGA-style annotated OpenCL kernels and host code." in
  Cmd.v (Cmd.info "codegen" ~doc)
    Term.(const run $ program_arg $ vector_width_arg $ Common.term $ remote_arg $ out_arg)

let partition_cmd =
  let devices_arg =
    Arg.(value & opt int 8 & info [ "max-devices" ] ~doc:"Maximum devices in the chain.")
  in
  let run path width fuse max_devices =
    let p = with_fusion fuse (load path width) in
    match Partition.greedy ~max_devices ~device:Device.stratix10 p with
    | Error d ->
        Format.eprintf "partitioning failed: %s@." d.Diag.message;
        exit (Diag.exit_code [ d ])
    | Ok pt ->
        Format.printf "%a@." Partition.pp pt;
        List.iteri
          (fun d usage ->
            let a, _, m, s = Resource.utilization Device.stratix10 usage in
            Format.printf "device %d: %a (ALM %.1f%%, M20K %.1f%%, DSP %.1f%%)@." d Resource.pp
              usage (100. *. a) (100. *. m) (100. *. s))
          pt.Partition.per_device_usage;
        Format.printf "network feasible at W=%d: %b@." p.Program.vector_width
          (Partition.network_feasible p pt ~device:Device.stratix10)
  in
  let doc = "Partition a program across a chain of devices (Sec. III-B)." in
  Cmd.v (Cmd.info "partition" ~doc)
    Term.(const run $ program_arg $ vector_width_arg $ fuse_arg $ devices_arg)

let dot_cmd =
  let run path width fuse =
    let p = with_fusion fuse (load path width) in
    print_string (Dot.of_program p)
  in
  let doc = "Print the stencil DAG in Graphviz format with delay-buffer labels." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ program_arg $ vector_width_arg $ fuse_arg)

let fuse_cmd =
  let run path width =
    let p = load path width in
    let fused, report = Fusion.fuse_all p in
    Format.printf "fused %d stencils into %d:@." report.Fusion.stencils_before
      report.Fusion.stencils_after;
    List.iter
      (fun (u, v) -> Format.printf "  %s into %s@." u v)
      report.Fusion.fused_pairs;
    print_string (Program_json.to_string fused)
  in
  let doc = "Apply aggressive stencil fusion and print the resulting program." in
  Cmd.v (Cmd.info "fuse" ~doc) Term.(const run $ program_arg $ vector_width_arg)

let tile_cmd =
  let tile_arg =
    Arg.(required & opt (some string) None
         & info [ "tile" ] ~docv:"T1,T2,..."
             ~doc:"Tile extents per axis, comma separated (Sec. IX-D).")
  in
  let run path width tile =
    let p = load path width in
    let tile_shape =
      try List.map int_of_string (String.split_on_char ',' tile)
      with Failure _ ->
        Format.eprintf "stencilflow: malformed tile %s@." tile;
        exit 1
    in
    let plan = Tiling.plan p ~tile_shape in
    Format.printf "%a@." Tiling.pp plan;
    Format.printf "per-tile on-chip buffering: %d elements (untiled: %d)@."
      (Tiling.buffer_elements_per_tile plan)
      (Delay_buffer.total_fast_memory_elements (Delay_buffer.analyze p));
    if Program.cells p <= 65536 then begin
      let inputs = Interp.random_inputs p in
      let untiled = Interp.run p ~inputs in
      let tiled = Tiling.run_tiled plan ~inputs in
      let exact =
        List.for_all
          (fun (name, (r : Interp.result)) ->
            Tensor.max_abs_diff r.Interp.tensor (List.assoc name tiled) < 1e-9)
          untiled
      in
      Format.printf "tiled execution equals untiled: %b@." exact
    end
  in
  let doc = "Plan spatial tiling: halo, redundancy, per-tile buffers; verify on small domains." in
  Cmd.v (Cmd.info "tile" ~doc) Term.(const run $ program_arg $ vector_width_arg $ tile_arg)

let autotune_cmd =
  let devices_arg =
    Arg.(value & opt int 1 & info [ "devices" ] ~doc:"Devices in the chain (network bound).")
  in
  let run path devices jobs =
    let p = load path None in
    match
      Autotune.choose ~devices ~device:Device.stratix10 ~max_width:16
        ~jobs:(resolve_jobs jobs) p
    with
    | exception Invalid_argument m ->
        Format.eprintf "stencilflow: %s@." m;
        exit 1
    | best, sweep ->
        Format.printf "%6s %14s %10s %6s %8s@." "W" "model GOp/s" "bw-bound" "fits" "network";
        List.iter
          (fun e ->
            Format.printf "%6d %14.1f %10b %6b %8b%s@." e.Autotune.vector_width
              (e.Autotune.modeled_ops_per_s /. 1e9)
              e.Autotune.bandwidth_bound e.Autotune.fits e.Autotune.network_ok
              (if e.Autotune.vector_width = best.Autotune.vector_width then "   <- chosen"
               else ""))
          sweep
  in
  let doc = "Sweep vectorization widths under the device, memory and network models." in
  Cmd.v (Cmd.info "autotune" ~doc) Term.(const run $ program_arg $ devices_arg $ jobs_arg)

let optimize_cmd =
  let run path width =
    let p = load path width in
    match Pipeline.run Pipeline.default_pipeline p with
    | Error ds -> exit_diags ~json:false ds
    | Ok (optimized, entries) ->
        List.iter (fun e -> Format.printf "%a@." Pipeline.pp_entry e) entries;
        print_string (Program_json.to_string optimized)
  in
  let doc =
    "Run the verified optimization pipeline (fusion, folding, CSE) and print the optimized \
     program."
  in
  Cmd.v (Cmd.info "optimize" ~doc) Term.(const run $ program_arg $ vector_width_arg)

let report_cmd =
  let run path width fuse =
    let p = with_fusion fuse (load path width) in
    print_string (Report.markdown p)
  in
  let doc = "Print a Markdown report: DAG, buffers, runtime model, roofline, resources." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ program_arg $ vector_width_arg $ fuse_arg)

let serve_cmd =
  let cache_entries_arg =
    Arg.(value & opt int 128
         & info [ "cache-entries" ] ~docv:"N"
             ~doc:"Capacity of the in-memory LRU artifact cache, in entries.")
  in
  let serve_jobs_arg =
    Arg.(value & opt int 1
         & info [ "serve-jobs" ] ~docv:"N"
             ~doc:"Worker domains executing requests concurrently (default 1: one \
                   worker, FIFO execution). Identical concurrent requests still \
                   execute their passes once (single-flight).")
  in
  let queue_depth_arg =
    Arg.(value & opt int 64
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Maximum admitted-but-uncompleted requests; further requests are \
                   rejected immediately with an SF0903 diagnostic.")
  in
  let ordered_arg =
    Arg.(value & flag
         & info [ "ordered" ]
             ~doc:"Emit responses in request order (FIFO) instead of completion \
                   order. Costs head-of-line blocking under --serve-jobs > 1.")
  in
  let deadline_ms_arg =
    Arg.(value & opt int 0
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline in milliseconds (0 = none). A \
                   request whose budget expires before a pass that would actually \
                   execute answers SF0904 — cached replays are free, and completed \
                   passes stay cached for the retry. Overridable per request with \
                   the $(b,deadline_ms) field (negative disables).")
  in
  let run (common : Common.t) cache_entries serve_jobs queue_depth ordered deadline_ms =
    (* A client hanging up must surface as EPIPE in the writer (handled
       as graceful shutdown), not kill the daemon with SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let on_trace =
      if common.Common.trace_passes then
        Some
          (fun ~verb trace ->
            Format.eprintf "%s: %a%!" verb Pass_manager.pp_trace trace)
      else None
    in
    let service =
      Service.create ~cache_capacity:cache_entries ?store_dir:common.Common.cache_dir
        ?on_trace ~jobs:common.Common.jobs ~serve_jobs ~queue_depth ~ordered ~deadline_ms ()
    in
    Service.serve_loop service stdin stdout
  in
  let doc =
    "Run a persistent compile/simulate service over newline-delimited JSON requests \
     on stdin (verbs: analyze, simulate, codegen, cache-stats, evict, cancel, \
     health, shutdown), one JSON response per line on stdout. Requests execute \
     concurrently on $(b,--serve-jobs) worker domains over a shared \
     content-addressed pass cache; see docs/PIPELINE.md for the protocol."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ Common.term $ cache_entries_arg $ serve_jobs_arg $ queue_depth_arg
      $ ordered_arg $ deadline_ms_arg)

(* stencilflow cache verify --cache-dir DIR: scrub every blob in the
   on-disk store, quarantining any whose checksum fails. *)
let cache_cmd =
  let verify_cmd =
    let run (common : Common.t) =
      match common.Common.cache_dir with
      | None ->
          prerr_endline "cache verify: --cache-dir is required";
          exit 2
      | Some dir ->
          let store = Store.open_ dir in
          let r = Store.scrub store in
          Printf.printf
            "cache verify: %d blob(s) scanned, %d ok, %d stale, %d corrupt%s\n" r.Store.scanned
            r.Store.ok r.Store.stale r.Store.corrupt
            (if r.Store.corrupt > 0 then " (quarantined as .corrupt)" else "");
          exit (if r.Store.corrupt > 0 then 1 else 0)
    in
    let doc =
      "Scrub the on-disk pass cache at $(b,--cache-dir): verify every blob's \
       version header and checksum trailer, quarantine corrupt blobs aside as \
       $(b,.corrupt) files, and report. Exits non-zero when corruption was found."
    in
    Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ Common.term)
  in
  let doc = "Inspect and maintain the on-disk pass cache." in
  Cmd.group (Cmd.info "cache" ~doc) [ verify_cmd ]

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "stencilflow" ~version:"1.0.0"
      ~doc:"Mapping large stencil programs to distributed spatial computing systems"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ analyze_cmd; simulate_cmd; validate_depths_cmd; codegen_cmd; serve_cmd;
            cache_cmd; partition_cmd; dot_cmd; fuse_cmd; optimize_cmd; report_cmd;
            tile_cmd; autotune_cmd ]))
