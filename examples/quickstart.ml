(* Quickstart: define a small stencil program with the builder API (or
   load the equivalent JSON), analyze it, simulate it on the spatial
   engine, and validate against the sequential reference.

   Run with: dune exec examples/quickstart.exe *)
open Stencilflow

let () =
  (* A two-stage 2D program: a Laplace operator followed by a weighted
     update — the "b reads a, c reads a and b" pattern of the paper's
     Fig. 2, with explicit boundary conditions. *)
  let b = Builder.create ~name:"quickstart" ~shape:[ 64; 64 ] () in
  Builder.input b "a";
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "lap"
    Builder.E.(
      acc "a" [ 0; -1 ] +% acc "a" [ 0; 1 ] +% acc "a" [ -1; 0 ] +% acc "a" [ 1; 0 ]
      -% (c 4. *% acc "a" [ 0; 0 ]));
  Builder.stencil b
    ~boundary:[ ("lap", Boundary.Constant 0.) ]
    "smoothed"
    Builder.E.(acc "a" [ 0; 0 ] +% (c 0.1 *% acc "lap" [ 0; 0 ]));
  Builder.output b "smoothed";
  let program = Builder.finish b in

  (* The same program as a JSON document — what the CLI consumes. *)
  print_endline "Program description (JSON):";
  print_endline (Program_json.to_string program);

  (* Buffering analysis: internal buffers (Sec. IV-A) and delay buffers
     (Sec. IV-B). *)
  let analysis = Delay_buffer.analyze program in
  Format.printf "@.%a@." Delay_buffer.pp analysis;

  (* Expected runtime, Eq. 1: C = L + N. *)
  Format.printf "expected cycles: %d (L = %d, N = %d)@."
    (Runtime_model.expected_cycles program)
    analysis.Delay_buffer.latency_cycles (Program.cells program);

  (* Execute on the cycle-level spatial simulator and compare the
     streamed outputs with the sequential reference interpreter. *)
  match Engine.run_and_validate program with
  | Error m -> Format.printf "simulation failed: %s@." (Sf_support.Diag.to_string m)
  | Ok stats ->
      Format.printf "simulated %d cycles (model predicted %d); outputs match the reference@."
        stats.Engine.cycles stats.Engine.predicted_cycles;
      Format.printf "off-chip traffic: %d B read, %d B written (perfect reuse)@."
        stats.Engine.bytes_read stats.Engine.bytes_written
