(* Iterative execution of a coupled system: one Lax-Friedrichs step of
   the shallow-water equations is a 5-stencil, 3-output DAG; unrolling
   k timesteps wires outputs back to inputs spatially — the general-DAG
   version of the paper's chained iterative stencils (Sec. VIII-C).

   Run with: dune exec examples/swe_timeloop.exe *)
open Stencilflow

let () =
  let steps = 3 in
  let program = Swe.program ~shape:[ 24; 24 ] () in
  Format.printf "one step: %d stencils, outputs %s@."
    (List.length program.Program.stencils)
    (String.concat ", " program.Program.outputs);

  (* Unroll the time loop into one spatial DAG. *)
  let unrolled = Timeloop.unroll program ~steps ~feedback:Swe.feedback in
  Format.printf "unrolled %d steps: %d stencils, L = %d cycles@." steps
    (List.length unrolled.Program.stencils)
    (Delay_buffer.analyze unrolled).Delay_buffer.latency_cycles;
  let counts = Op_count.of_program unrolled in
  Format.printf
    "perfect reuse across the whole loop: %d operands read (coefficients are read once, not %d \
     times)@."
    counts.Op_count.read_elements steps;

  (* Execute both ways and compare. *)
  let inputs = Swe.stable_inputs program in
  let looped = Timeloop.run_reference program ~steps ~feedback:Swe.feedback ~inputs in
  match Timeloop.run_simulated program ~steps ~feedback:Swe.feedback ~inputs with
  | Error m -> Format.printf "simulation failed: %s@." m
  | Ok finals ->
      List.iter
        (fun (name, simulated) ->
          let expected = List.assoc name looped in
          Format.printf "%s: max |spatial - sequential| = %g@." name
            (Tensor.max_abs_diff expected simulated))
        finals;
      let h = List.assoc "h_out" finals in
      let mass = Array.fold_left ( +. ) 0. h.Tensor.data in
      Format.printf "water volume after %d steps: %.3f (started at %.3f)@." steps mass
        (Array.fold_left ( +. ) 0. (List.assoc "h" inputs).Tensor.data)
