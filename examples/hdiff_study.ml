(* The weather application study (Sec. IX): build the COSMO horizontal
   diffusion program, reproduce the paper's analysis (arithmetic
   intensity, roofline, required bandwidth), fuse it aggressively
   (Fig. 17), and run it end to end on the simulator at a reduced domain.

   Run with: dune exec examples/hdiff_study.exe *)
open Stencilflow

let () =
  let device = Device.stratix10 in
  let program = Hdiff.program () in
  Format.printf "horizontal diffusion: %d stencils, %d inputs, %d outputs, domain %s@."
    (List.length program.Program.stencils)
    (List.length program.Program.inputs)
    (List.length program.Program.outputs)
    (Util.string_concat_map "x" string_of_int program.Program.shape);

  (* Sec. IX-A: operation mix and arithmetic intensity. *)
  let counts = Op_count.of_program program in
  let profile = counts.Op_count.profile in
  Format.printf "ops/cell: %d adds, %d muls, %d sqrt, %d min, %d max, %d data branches@."
    profile.Expr.adds profile.Expr.muls profile.Expr.sqrts profile.Expr.mins profile.Expr.maxs
    profile.Expr.data_branches;
  Format.printf "reads %d operands, writes %d (5 IJK + 5 1D in, 4 IJK out)@."
    counts.Op_count.read_elements counts.Op_count.written_elements;
  let ai_operand = Op_count.ai_ops_per_operand program in
  let ai_byte = Op_count.ai_ops_per_byte program in
  Format.printf "arithmetic intensity: %.3f Op/operand (paper: 130/9 = %.3f), %.3f Op/B@."
    ai_operand (130. /. 9.) ai_byte;

  (* Eq. 3 and Eq. 4. *)
  let roof =
    Roofline.attainable_ops_per_s ~ai_ops_per_byte:ai_byte
      ~bandwidth_bytes_per_s:device.Device.vector_bw_cap
  in
  Format.printf "roofline at %.1f GB/s effective bandwidth: %s (paper: 210.5 GOp/s)@."
    (device.Device.vector_bw_cap /. 1e9)
    (Util.human_rate roof);
  Format.printf "bandwidth to saturate 917 GOp/s of compute: %s (paper: 254 GB/s)@."
    (Util.human_bytes_rate
       (Roofline.bandwidth_to_saturate ~compute_ops_per_s:917.1e9 ~ai_ops_per_byte:ai_byte));

  (* Fig. 17: aggressive fusion collapses the DAG onto its outputs. *)
  let fused, report = Fusion.fuse_all program in
  Format.printf "fusion: %d -> %d stencils (%s)@." report.Fusion.stencils_before
    report.Fusion.stencils_after
    (Util.string_concat_map ", " (fun (u, v) -> u ^ "->" ^ v) report.Fusion.fused_pairs);
  Format.printf "initialization fraction of runtime: %.2f%% (paper: ~0.7%%)@."
    (100. *. Runtime_model.initialization_fraction fused);

  (* Load/store comparison, Table II style (modelled). *)
  List.iter
    (fun arch ->
      let t = Loadstore.runtime arch ~ai_ops_per_byte:ai_byte ~total_flops:(Op_count.total_flops program) in
      Format.printf "%-22s %10s  %s@." arch.Loadstore.name (Util.human_time t)
        (Util.human_rate (Loadstore.performance arch ~ai_ops_per_byte:ai_byte)))
    [ Loadstore.xeon_12c; Loadstore.p100; Loadstore.v100 ];

  (* End-to-end simulation at a reduced domain (full cycle-level
     simulation of 128x128x80 would take minutes; the bench harness
     scales the results). *)
  let small = Hdiff.program ~shape:[ 8; 32; 32 ] () in
  match Engine.run_and_validate small with
  | Error m -> Format.printf "simulation failed: %s@." (Sf_support.Diag.to_string m)
  | Ok stats ->
      Format.printf "simulated reduced domain: %d cycles (model: %d); validated@."
        stats.Engine.cycles stats.Engine.predicted_cycles
