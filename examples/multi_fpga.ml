(* Multi-device mapping (Secs. III-B, VIII-C): a Jacobi chain too long
   for one device is partitioned over a chain of FPGAs; crossing edges
   become network streams, and the whole system is simulated with link
   bandwidth and latency, then validated against the reference.

   Run with: dune exec examples/multi_fpga.exe *)
open Stencilflow

let () =
  let device = Device.stratix10 in
  (* A 40-stage Jacobi 2D chain on a small domain (so simulation stays
     fast); pretend the device only fits ~8 stages by lowering the
     resource ceiling. *)
  let program = Iterative.chain ~shape:[ 32; 64 ] Iterative.Jacobi2d ~length:40 in
  let partition =
    match Partition.greedy ~ceiling:0.06 ~device program with
    | Ok pt -> pt
    | Error m -> failwith m.Diag.message
  in
  Format.printf "%a@." Partition.pp partition;
  List.iteri
    (fun d usage ->
      let alm, _, m20k, dsp = Resource.utilization device usage in
      Format.printf "device %d: ALM %.2f%%, M20K %.2f%%, DSP %.2f%%@." d (100. *. alm)
        (100. *. m20k) (100. *. dsp))
    partition.Partition.per_device_usage;
  Format.printf "inputs replicated to: %s@."
    (Util.string_concat_map "; "
       (fun (f, devs) ->
         Printf.sprintf "%s -> {%s}" f (Util.string_concat_map "," string_of_int devs))
       partition.Partition.replicated_inputs);

  (* Network feasibility at increasing vector widths (the SMI bound of
     Sec. VI-B / VIII-C). *)
  let topo =
    Smi.chain ~devices:partition.Partition.num_devices
      ~links_per_hop:device.Device.links_per_hop
  in
  let max_w = Smi.max_vector_width topo device ~element_bytes:4 ~streams_per_hop:1 in
  Format.printf "largest vector width sustainable across devices: W = %d@." max_w;

  (* Simulate the partitioned system with realistic link parameters,
     domain-parallel: one OCaml domain per device, synchronizing at link
     boundaries with the 128-cycle link latency as lookahead. Results are
     bit-identical to the sequential engine (Parallel degrades to it
     automatically when the configuration does not support parallel
     execution, e.g. on a single device). *)
  let config =
    Engine.Config.make
      ~network:
        (Engine.Config.network
           ~net_bytes_per_cycle:(Device.link_bytes_per_cycle device)
           ~net_latency_cycles:128 ())
      ~parallelism:(Engine.Config.parallelism ~mode:`Domains_per_device ())
      ()
  in
  let placement = Partition.placement_fn partition in
  (match Parallel.decide ~config ~placement program with
  | `Parallel n -> Format.printf "parallel execution: %d domains@." n
  | `Degrade reason -> Format.printf "sequential execution: %s@." reason
  | `Reject d -> Format.printf "invalid parallel configuration: %s@." d.Diag.message);
  match Parallel.run_and_validate ~config ~placement program with
  | Error m -> Format.printf "simulation failed: %s@." (Sf_support.Diag.to_string m)
  | Ok stats ->
      Format.printf "simulated %d cycles (model: %d) across %d devices@." stats.Engine.cycles
        stats.Engine.predicted_cycles partition.Partition.num_devices;
      Format.printf "network traffic: %d B; outputs match the reference@."
        stats.Engine.network_bytes
