(* The deadlock scenario of Fig. 4: stencil c joins a fast path (directly
   from a) with a slow path (through b, which must fill an internal
   buffer before producing anything). Without a delay buffer on the
   skip edge the system deadlocks; with the analysed buffer it streams
   at full rate.

   Run with: dune exec examples/deadlock_demo.exe *)
open Stencilflow

let build_diamond () =
  let b = Builder.create ~name:"fig4_diamond" ~shape:[ 32; 64 ] () in
  Builder.input b "x";
  Builder.stencil b "a" Builder.E.(acc "x" [ 0; 0 ] *% c 2.);
  (* b needs a window of 17 elements of a before its first output. *)
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "b"
    Builder.E.(acc "a" [ 0; -8 ] +% acc "a" [ 0; 8 ]);
  Builder.stencil b "c" Builder.E.(acc "a" [ 0; 0 ] +% acc "b" [ 0; 0 ]);
  Builder.output b "c";
  Builder.finish b

let () =
  let program = build_diamond () in
  let analysis = Delay_buffer.analyze program in
  Format.printf "delay buffers computed by StencilFlow:@.";
  List.iter
    (fun ((src, dst), depth) ->
      if depth > 0 then Format.printf "  %s -> %s needs %d words@." src dst depth)
    analysis.Delay_buffer.edges;

  (* Scenario 1: analysed buffers in place. *)
  (match Engine.run_exn program with
  | Engine.Completed stats ->
      Format.printf "@.with delay buffers: completed in %d cycles (model: %d)@."
        stats.Engine.cycles stats.Engine.predicted_cycles
  | Engine.Deadlocked _ -> Format.printf "@.unexpected deadlock!@.");

  (* Scenario 2: force the skip edge's buffer to zero (the left side of
     Fig. 4) and watch the circular wait appear. *)
  let config =
    Engine.Config.make ~channel_slack:2
      ~override_edge_buffers:[ (("a", "c"), 0) ]
      ~safety:(Engine.Config.safety ~deadlock_window:512 ())
      ~tracing:(Engine.Config.tracing ~telemetry:true ())
      ()
  in
  match Engine.run_exn ~config program with
  | Engine.Completed _ -> Format.printf "unexpectedly completed@."
  | Engine.Deadlocked { cycle; blocked; wait_cycle; telemetry; _ } ->
      Format.printf "@.without the skip-edge buffer: deadlock detected at cycle %d@." cycle;
      List.iter (fun (unit_name, reason) -> Format.printf "  %s: %s@." unit_name reason) blocked;
      if wait_cycle <> [] then
        Format.printf "circular wait: %s -> (back to start)@."
          (String.concat " -> " wait_cycle);
      (* The stall-attribution table names the undersized edge directly. *)
      Format.printf "@.%a@." Telemetry.pp_attribution telemetry
