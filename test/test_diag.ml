(* Structured diagnostics: formatting, exit codes, JSON rendering, and
   the property that malformed frontend input always yields located,
   coded diagnostics — never a raw exception. *)
module Diag = Sf_support.Diag
module Json = Sf_support.Json
module Program_json = Sf_frontend.Program_json

let test_pp_format () =
  let d =
    Diag.error ~code:Diag.Code.syntax
      ~span:(Diag.span ~file:"prog.json" ~line:3 ~col:7 ())
      ~notes:[ "in the code of stencil s" ]
      "unexpected token"
  in
  Alcotest.(check string) "rendered"
    "prog.json:3:7: error[SF0102]: unexpected token\n  note: in the code of stencil s"
    (Diag.to_string d)

let test_pp_no_span () =
  let d = Diag.warning ~code:Diag.Code.partition_fallback "falling back" in
  Alcotest.(check string) "rendered" "warning[SF0503]: falling back" (Diag.to_string d)

let test_file_only_span () =
  let d = Diag.with_file "p.json" (Diag.error ~code:Diag.Code.validation "bad") in
  Alcotest.(check string) "rendered" "p.json: error[SF0301]: bad" (Diag.to_string d)

let test_exit_codes () =
  let check_code code expected =
    Alcotest.(check int) code expected (Diag.exit_code [ Diag.error ~code "m" ])
  in
  check_code Diag.Code.lex 2;
  check_code Diag.Code.syntax 2;
  check_code Diag.Code.json_parse 2;
  check_code Diag.Code.format 2;
  check_code Diag.Code.validation 3;
  check_code Diag.Code.analysis_invariant 4;
  check_code Diag.Code.partition 5;
  check_code Diag.Code.codegen 6;
  check_code Diag.Code.sim_deadlock 7;
  check_code Diag.Code.sim_mismatch 7;
  check_code Diag.Code.pass_verification 8;
  check_code Diag.Code.internal 9;
  (* Warnings alone exit 0; the first *error* decides. *)
  Alcotest.(check int) "warnings only" 0
    (Diag.exit_code [ Diag.warning ~code:Diag.Code.partition_fallback "w" ]);
  Alcotest.(check int) "first error wins" 5
    (Diag.exit_code
       [
         Diag.warning ~code:Diag.Code.partition_fallback "w";
         Diag.error ~code:Diag.Code.partition "e";
         Diag.error ~code:Diag.Code.internal "e2";
       ]);
  Alcotest.(check int) "empty" 0 (Diag.exit_code [])

let test_to_json () =
  let d =
    Diag.error ~code:Diag.Code.json_parse
      ~span:(Diag.span ~file:"x.json" ~line:2 ~col:5 ())
      "unexpected end of input"
  in
  let j = Diag.list_to_json [ d ] in
  match Json.member "diagnostics" j with
  | Some (Json.List [ entry ]) ->
      let str key = Json.member_exn key entry |> Json.get_string in
      Alcotest.(check string) "severity" "error" (str "severity");
      Alcotest.(check string) "code" "SF0201" (str "code");
      let span = Json.member_exn "span" entry in
      Alcotest.(check string) "file" "x.json" (Json.member_exn "file" span |> Json.get_string);
      Alcotest.(check int) "line" 2 (Json.member_exn "line" span |> Json.get_int);
      Alcotest.(check int) "col" 5 (Json.member_exn "col" span |> Json.get_int)
  | _ -> Alcotest.fail "expected {\"diagnostics\": [entry]}"

let located ds =
  List.for_all
    (fun (d : Diag.t) ->
      String.length d.Diag.code = 6
      && String.sub d.Diag.code 0 2 = "SF"
      && d.Diag.message <> "")
    ds
  && ds <> []

let test_malformed_json_diag () =
  match Program_json.of_string ~file:"t.json" "{\"shape\": [4," with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error ds -> (
      Alcotest.(check bool) "coded" true (located ds);
      match ds with
      | { Diag.code = "SF0201"; span = Some { Diag.file = Some "t.json"; line; _ }; _ } :: _
        ->
          Alcotest.(check bool) "positioned" true (line >= 1)
      | d :: _ -> Alcotest.fail ("unexpected diagnostic: " ^ Diag.to_string d)
      | [] -> Alcotest.fail "no diagnostics")

let test_malformed_dsl_diag () =
  let json =
    {|{"shape": [4], "inputs": {"a": {}}, "stencils": {"s": {"code": "a[0] +"}}, "outputs": ["s"]}|}
  in
  match Program_json.of_string ~file:"t.json" json with
  | Ok _ -> Alcotest.fail "expected a syntax error"
  | Error (d :: _) ->
      Alcotest.(check string) "code" "SF0102" d.Diag.code;
      Alcotest.(check bool) "names the stencil" true
        (List.exists (fun n -> n = "in the code of stencil s") d.Diag.notes)
  | Error [] -> Alcotest.fail "no diagnostics"

let test_lex_error_diag () =
  let json =
    {|{"shape": [4], "inputs": {"a": {}}, "stencils": {"s": {"code": "a[0] @ 1.0"}}, "outputs": ["s"]}|}
  in
  match Program_json.of_string json with
  | Ok _ -> Alcotest.fail "expected a lex error"
  | Error (d :: _) -> Alcotest.(check string) "code" "SF0101" d.Diag.code
  | Error [] -> Alcotest.fail "no diagnostics"

(* Any mangling of a valid program description must produce coded
   diagnostics through the result API — never escape as an exception. *)
let valid_source = Program_json.to_string (Fixtures.diamond ())

let mangle (pos, mode) =
  let n = String.length valid_source in
  let pos = pos mod n in
  match mode mod 3 with
  | 0 -> String.sub valid_source 0 pos (* truncate *)
  | 1 ->
      String.sub valid_source 0 pos ^ "@"
      ^ String.sub valid_source pos (n - pos) (* inject *)
  | _ ->
      Bytes.of_string valid_source |> fun b ->
      Bytes.set b pos '}';
      Bytes.to_string b (* overwrite *)

let fuzz_frontend_total =
  QCheck.Test.make ~count:300 ~name:"mangled input yields coded diagnostics, never raises"
    QCheck.(pair (int_bound 10_000) (int_bound 1_000))
    (fun seed ->
      match Program_json.of_string (mangle seed) with
      | Ok _ -> true (* some mutations stay valid *)
      | Error ds -> located ds
      | exception e -> QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e))

let suite =
  [
    Alcotest.test_case "pp format" `Quick test_pp_format;
    Alcotest.test_case "pp without span" `Quick test_pp_no_span;
    Alcotest.test_case "file-only span" `Quick test_file_only_span;
    Alcotest.test_case "stable exit codes" `Quick test_exit_codes;
    Alcotest.test_case "json rendering" `Quick test_to_json;
    Alcotest.test_case "malformed json is located" `Quick test_malformed_json_diag;
    Alcotest.test_case "malformed dsl names the stencil" `Quick test_malformed_dsl_diag;
    Alcotest.test_case "lex errors carry the lexer code" `Quick test_lex_error_diag;
    QCheck_alcotest.to_alcotest fuzz_frontend_total;
  ]
