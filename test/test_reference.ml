open Sf_ir
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp
module E = Builder.E

let test_tensor_basics () =
  let t = Tensor.of_fn [ 2; 3 ] (fun idx -> match idx with [ i; j ] -> float_of_int ((10 * i) + j) | _ -> 0.) in
  Alcotest.(check (float 0.)) "get" 12. (Tensor.get t [ 1; 2 ]);
  Alcotest.(check int) "flat" 5 (Tensor.flat_index t [ 1; 2 ]);
  Alcotest.(check bool) "in bounds" true (Tensor.in_bounds t [ 1; 2 ]);
  Alcotest.(check bool) "out of bounds" false (Tensor.in_bounds t [ 2; 0 ]);
  (match Tensor.get t [ 0; 3 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds error");
  let u = Tensor.copy t in
  Tensor.set u [ 0; 0 ] 99.;
  Alcotest.(check (float 0.)) "copy is independent" 0. (Tensor.get t [ 0; 0 ]);
  Alcotest.(check (float 0.)) "max abs diff" 99. (Tensor.max_abs_diff t u)

let test_laplace_center () =
  (* On a linear ramp f(j,i) = i, the 4-point laplacian minus 4*center is
     -2*i at interior cells with constant-zero boundary corrections at the
     edges. Check one interior cell exactly. *)
  let p = Fixtures.laplace2d ~shape:[ 4; 4 ] () in
  let a = Tensor.of_fn [ 4; 4 ] (function [ _; i ] -> float_of_int i | _ -> 0.) in
  let results = Interp.run p ~inputs:[ ("a", a) ] in
  let lap = (List.assoc "lap" results).Interp.tensor in
  (* cell (1,1): left 0 + right 2 + up 1 + down 1 - 4*1 = 0. *)
  Alcotest.(check (float 1e-12)) "interior" 0. (Tensor.get lap [ 1; 1 ]);
  (* cell (0,0): left OOB->0, right 1, up OOB->0, down 0, -4*0 = 1. *)
  Alcotest.(check (float 1e-12)) "corner with constant bc" 1. (Tensor.get lap [ 0; 0 ])

let test_copy_boundary () =
  let b = Builder.create ~name:"copybc" ~shape:[ 1; 4 ] () in
  Builder.input b "a";
  Builder.stencil b ~boundary:[ ("a", Boundary.Copy) ] "s" E.(acc "a" [ 0; -1 ] +% acc "a" [ 0; 1 ]);
  Builder.output b "s";
  let p = Builder.finish b in
  let a = Tensor.of_array [ 1; 4 ] [| 1.; 2.; 3.; 4. |] in
  let s = (List.assoc "s" (Interp.run p ~inputs:[ ("a", a) ])).Interp.tensor in
  (* At i=0 the left neighbour copies the center: 1 + 2 = 3. *)
  Alcotest.(check (float 0.)) "left edge" 3. (Tensor.get s [ 0; 0 ]);
  Alcotest.(check (float 0.)) "right edge" 7. (Tensor.get s [ 0; 3 ]);
  Alcotest.(check (float 0.)) "interior" 4. (Tensor.get s [ 0; 1 ])

let test_shrink_mask () =
  let b = Builder.create ~name:"shrink" ~shape:[ 3; 3 ] () in
  Builder.input b "a";
  Builder.stencil b ~shrink:true
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "s"
    E.(acc "a" [ 0; -1 ] +% acc "a" [ 0; 1 ] +% acc "a" [ -1; 0 ] +% acc "a" [ 1; 0 ]);
  Builder.output b "s";
  let p = Builder.finish b in
  let a = Tensor.create ~init:1. [ 3; 3 ] in
  let r = List.assoc "s" (Interp.run p ~inputs:[ ("a", a) ]) in
  (* Only the single interior cell (1,1) is valid on a 3x3 domain. *)
  let valid_count = Array.fold_left (fun n v -> if v then n + 1 else n) 0 r.Interp.valid in
  Alcotest.(check int) "one valid cell" 1 valid_count;
  Alcotest.(check bool) "center valid" true r.Interp.valid.(4);
  Alcotest.(check (float 0.)) "center value" 4. (Tensor.get r.Interp.tensor [ 1; 1 ])

let test_lower_dim_and_scalar () =
  let b = Builder.create ~name:"lower" ~shape:[ 2; 3; 4 ] () in
  Builder.input b "u";
  Builder.input b ~axes:[ 1 ] "row";
  Builder.input b ~axes:[] "alpha";
  Builder.stencil b "s" E.(acc "u" [ 0; 0; 0 ] *% acc "row" [ 0 ] +% sc "alpha");
  Builder.output b "s";
  let p = Builder.finish b in
  let u = Tensor.create ~init:2. [ 2; 3; 4 ] in
  let row = Tensor.of_array [ 3 ] [| 10.; 20.; 30. |] in
  let alpha = Tensor.of_array [ 1 ] [| 0.5 |] in
  let s =
    (List.assoc "s" (Interp.run p ~inputs:[ ("u", u); ("row", row); ("alpha", alpha) ]))
      .Interp.tensor
  in
  Alcotest.(check (float 0.)) "j=0" 20.5 (Tensor.get s [ 0; 0; 3 ]);
  Alcotest.(check (float 0.)) "j=2" 60.5 (Tensor.get s [ 1; 2; 0 ])

let test_multi_stage_dependency () =
  (* b = a+1 everywhere; c = b * 2 reads b at an offset. *)
  let bld = Builder.create ~name:"stages" ~shape:[ 1; 4 ] () in
  Builder.input bld "a";
  Builder.stencil bld "b" E.(acc "a" [ 0; 0 ] +% c 1.);
  Builder.stencil bld ~boundary:[ ("b", Boundary.Constant 100.) ] "c" E.(acc "b" [ 0; 1 ] *% c 2.);
  Builder.output bld "c";
  let p = Builder.finish bld in
  let a = Tensor.of_array [ 1; 4 ] [| 0.; 1.; 2.; 3. |] in
  let cres = (List.assoc "c" (Interp.run p ~inputs:[ ("a", a) ])).Interp.tensor in
  Alcotest.(check (float 0.)) "reads downstream neighbour" 4. (Tensor.get cres [ 0; 0 ]);
  Alcotest.(check (float 0.)) "boundary of produced field" 200. (Tensor.get cres [ 0; 3 ])

let test_data_dependent_branch () =
  let bld = Builder.create ~name:"branchy" ~shape:[ 1; 4 ] () in
  Builder.input bld "a";
  Builder.stencil bld "s" E.(sel (acc "a" [ 0; 0 ] >% c 0.) (sqrt_ (acc "a" [ 0; 0 ])) (c 0.)) ;
  Builder.output bld "s";
  let p = Builder.finish bld in
  let a = Tensor.of_array [ 1; 4 ] [| 4.; -1.; 9.; 0. |] in
  let s = (List.assoc "s" (Interp.run p ~inputs:[ ("a", a) ])).Interp.tensor in
  Alcotest.(check (float 0.)) "sqrt branch" 2. (Tensor.get s [ 0; 0 ]);
  Alcotest.(check (float 0.)) "else branch" 0. (Tensor.get s [ 0; 1 ]);
  Alcotest.(check (float 0.)) "sqrt 9" 3. (Tensor.get s [ 0; 2 ])

let test_missing_input () =
  let p = Fixtures.laplace2d () in
  match Interp.run p ~inputs:[] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected runtime error for missing input"

let test_non_shortcircuit_semantics () =
  (* Both sides of && are evaluated but selection is still correct. *)
  let e = Fixtures.ok1 (Sf_frontend.Parser.parse_expr "a[0] > 0.0 && 1.0 / a[0] > 0.5 ? 1.0 : 0.0") in
  let lookup ~field:_ ~offsets:_ = 0. in
  let v = Interp.eval_expr ~lookup ~env:(fun _ -> None) e in
  Alcotest.(check (float 0.)) "division by zero tolerated" 0. v

let suite =
  [
    Alcotest.test_case "tensor basics" `Quick test_tensor_basics;
    Alcotest.test_case "laplace values" `Quick test_laplace_center;
    Alcotest.test_case "copy boundary condition" `Quick test_copy_boundary;
    Alcotest.test_case "shrink validity mask" `Quick test_shrink_mask;
    Alcotest.test_case "lower-dimensional and scalar inputs" `Quick test_lower_dim_and_scalar;
    Alcotest.test_case "multi-stage dependencies" `Quick test_multi_stage_dependency;
    Alcotest.test_case "data-dependent branches" `Quick test_data_dependent_branch;
    Alcotest.test_case "missing input is reported" `Quick test_missing_input;
    Alcotest.test_case "non-short-circuit logic" `Quick test_non_shortcircuit_semantics;
  ]
