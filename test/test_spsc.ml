(* The lock-free SPSC ring under the parallel engine's link transport.
   Sequential tests pin the staging/publish contract; the QCheck model
   checks an arbitrary produce/publish/consume interleaving against a
   reference Queue; the cross-domain stress runs a real producer domain
   against a consumer through a deliberately tiny ring, forcing it
   across the full and empty boundaries thousands of times. *)
module Spsc = Sf_sim.Spsc

(* {2 Staging and publication} *)

let test_capacity_rounding () =
  let q = Spsc.create ~capacity:5 ~lanes:1 in
  Alcotest.(check int) "rounded to power of two" 8 (Spsc.capacity q);
  Alcotest.(check int) "lanes" 1 (Spsc.lanes q);
  (match Spsc.create ~capacity:0 ~lanes:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected");
  match Spsc.create ~capacity:1 ~lanes:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lanes 0 must be rejected"

let test_staged_invisible_until_publish () =
  let q = Spsc.create ~capacity:4 ~lanes:2 in
  let base = Spsc.try_produce q ~tag:7 ~release:42 in
  Alcotest.(check bool) "staged" true (base >= 0);
  (Spsc.values q).(base) <- 1.5;
  (Spsc.values q).(base + 1) <- 2.5;
  (Spsc.valid q).(base + 1) <- false;
  Alcotest.(check int) "invisible before publish" (-1) (Spsc.front q);
  Alcotest.(check bool) "is_empty sees published tail" true (Spsc.is_empty q);
  Spsc.publish q;
  let fbase = Spsc.front q in
  Alcotest.(check bool) "visible after publish" true (fbase >= 0);
  Alcotest.(check int) "tag" 7 (Spsc.front_tag q);
  Alcotest.(check int) "release" 42 (Spsc.front_release q);
  Alcotest.(check (float 0.)) "lane 0" 1.5 (Spsc.values q).(fbase);
  Alcotest.(check (float 0.)) "lane 1" 2.5 (Spsc.values q).(fbase + 1);
  Alcotest.(check bool) "valid lane" false (Spsc.valid q).(fbase + 1);
  Spsc.consume q;
  Alcotest.(check int) "empty again" (-1) (Spsc.front q)

let test_full_and_wraparound () =
  let q = Spsc.create ~capacity:4 ~lanes:1 in
  for i = 0 to 3 do
    let base = Spsc.try_produce q ~tag:i ~release:0 in
    Alcotest.(check bool) (Printf.sprintf "slot %d" i) true (base >= 0);
    (Spsc.values q).(base) <- float_of_int i
  done;
  Alcotest.(check int) "full" (-1) (Spsc.try_produce q ~tag:9 ~release:0);
  Spsc.publish q;
  Alcotest.(check int) "length" 4 (Spsc.length q);
  (* Drain two, refill two: exercises the cached-head refresh and the
     cursor wraparound. *)
  for i = 0 to 1 do
    Alcotest.(check (float 0.)) "fifo" (float_of_int i) (Spsc.values q).(Spsc.front q);
    Spsc.consume q
  done;
  for i = 4 to 5 do
    let base = Spsc.try_produce q ~tag:i ~release:0 in
    Alcotest.(check bool) "reuses freed slots" true (base >= 0);
    (Spsc.values q).(base) <- float_of_int i
  done;
  Spsc.publish q;
  for i = 2 to 5 do
    Alcotest.(check (float 0.)) "wrapped fifo" (float_of_int i)
      (Spsc.values q).(Spsc.front q);
    Alcotest.(check int) "wrapped tag" i (Spsc.front_tag q);
    Spsc.consume q
  done;
  match Spsc.consume q with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "consume of empty must fail"

(* {2 Model equivalence} *)

(* One domain driving both sides: any produce/publish/consume sequence
   must behave as a bounded FIFO with a visibility barrier — staged
   elements join the model queue only at publish. *)
let prop_queue_model =
  QCheck.Test.make ~count:300 ~name:"spsc equals a staged bounded FIFO"
    QCheck.(
      pair (int_range 1 6)
        (small_list (oneofl [ `Produce; `Publish; `Consume ])))
    (fun (capacity, ops) ->
      let q = Spsc.create ~capacity ~lanes:1 in
      let cap = Spsc.capacity q in
      let staged = Queue.create () and published = Queue.create () in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Produce ->
              let base = Spsc.try_produce q ~tag:!next ~release:(2 * !next) in
              if Queue.length staged + Queue.length published < cap then begin
                if base < 0 then false
                else begin
                  (Spsc.values q).(base) <- float_of_int !next;
                  Queue.push !next staged;
                  incr next;
                  true
                end
              end
              else base = -1
          | `Publish ->
              Spsc.publish q;
              Queue.transfer staged published;
              true
          | `Consume ->
              if Queue.is_empty published then Spsc.front q = -1
              else begin
                let expect = Queue.pop published in
                let base = Spsc.front q in
                base >= 0
                && Spsc.front_tag q = expect
                && Spsc.front_release q = 2 * expect
                && (Spsc.values q).(base) = float_of_int expect
                && begin
                     Spsc.consume q;
                     true
                   end
              end)
        ops)

(* {2 Cross-domain stress} *)

(* A real producer domain races the consumer through a tiny ring. The
   ring is far smaller than the element count, so both sides cross the
   full/empty boundary (and therefore the cached-cursor refresh paths)
   thousands of times; varying the publish batch length exercises
   multi-element visibility windows. The consumer checks every element's
   tag, release and lanes in order — any lost, duplicated, reordered or
   torn element fails. Blocked sides yield to the OS rather than spin:
   on a single-core host a pure spin burns a whole scheduler quantum per
   boundary crossing. *)
let yield () = Unix.sleepf 1e-4

let test_two_domain_stress () =
  let total = 10_000 in
  let lanes = 2 in
  let q = Spsc.create ~capacity:4 ~lanes in
  let producer =
    Domain.spawn (fun () ->
        let sent = ref 0 in
        let unpublished = ref 0 in
        while !sent < total do
          let base = Spsc.try_produce q ~tag:!sent ~release:(3 * !sent) in
          if base < 0 then begin
            (* Ring full: make staged work visible before yielding. *)
            Spsc.publish q;
            unpublished := 0;
            yield ()
          end
          else begin
            (Spsc.values q).(base) <- float_of_int !sent;
            (Spsc.values q).(base + 1) <- float_of_int (- !sent);
            (Spsc.valid q).(base + 1) <- !sent mod 3 = 0;
            incr sent;
            incr unpublished;
            (* Batch lengths 1..3, deterministically varied. *)
            if !unpublished > !sent mod 3 then begin
              Spsc.publish q;
              unpublished := 0
            end
          end
        done;
        Spsc.publish q)
  in
  let ok = ref true in
  let received = ref 0 in
  while !received < total do
    let base = Spsc.front q in
    if base < 0 then yield ()
    else begin
      let i = !received in
      if
        Spsc.front_tag q <> i
        || Spsc.front_release q <> 3 * i
        || (Spsc.values q).(base) <> float_of_int i
        || (Spsc.values q).(base + 1) <> float_of_int (-i)
        || (Spsc.valid q).(base + 1) <> (i mod 3 = 0)
      then ok := false;
      (* Restore the valid lane so a stale slot can't leak into a later
         element's check. *)
      (Spsc.valid q).(base + 1) <- true;
      Spsc.consume q;
      incr received
    end
  done;
  Domain.join producer;
  Alcotest.(check bool) "all elements in order and intact" true !ok;
  Alcotest.(check int) "ring drained" (-1) (Spsc.front q)

let suite =
  [
    Alcotest.test_case "capacity/lanes validation" `Quick test_capacity_rounding;
    Alcotest.test_case "staged elements invisible until publish" `Quick
      test_staged_invisible_until_publish;
    Alcotest.test_case "full detection and wraparound" `Quick test_full_and_wraparound;
    QCheck_alcotest.to_alcotest prop_queue_model;
    Alcotest.test_case "two-domain stress through a tiny ring" `Quick
      test_two_domain_stress;
  ]
