module Json = Sf_support.Json

let check_roundtrip json () =
  let s = Json.to_string json in
  let reparsed = Json.of_string s in
  Alcotest.(check bool) ("roundtrip " ^ s) true (Json.equal json reparsed);
  let minified = Json.of_string (Json.to_string ~minify:true json) in
  Alcotest.(check bool) ("minified roundtrip " ^ s) true (Json.equal json minified)

let test_parse_basic () =
  let j = Json.of_string {| {"a": 1, "b": [true, null, -2.5], "c": "x\ny"} |} in
  Alcotest.(check int) "a" 1 (Json.get_int (Json.member_exn "a" j));
  (match Json.member_exn "b" j with
  | Json.List [ Json.Bool true; Json.Null; Json.Float f ] ->
      Alcotest.(check (float 0.)) "float" (-2.5) f
  | _ -> Alcotest.fail "list shape");
  Alcotest.(check string) "c" "x\ny" (Json.get_string (Json.member_exn "c" j))

let test_comments () =
  let j = Json.of_string "{\n// a comment\n\"k\": 2 // trailing\n}" in
  Alcotest.(check int) "k" 2 (Json.get_int (Json.member_exn "k" j))

let test_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for " ^ s)
  in
  fails "{";
  fails "[1,]";
  fails "{\"a\" 1}";
  fails "tru";
  fails "\"unterminated";
  fails "1 2"

let test_scientific () =
  match Json.of_string "[1e3, 2.5E-2, -4e+1]" with
  | Json.List [ Json.Float a; Json.Float b; Json.Float c ] ->
      Alcotest.(check (float 1e-12)) "1e3" 1000. a;
      Alcotest.(check (float 1e-12)) "2.5e-2" 0.025 b;
      Alcotest.(check (float 1e-12)) "-4e1" (-40.) c
  | _ -> Alcotest.fail "scientific notation"

let test_unicode_escape () =
  let j = Json.of_string {| "Aé" |} in
  Alcotest.(check string) "unicode" "A\xc3\xa9" (Json.get_string j)

let test_accessors () =
  let j = Json.of_string {| {"s": "x", "i": 3, "f": 1.5, "b": false, "l": [1]} |} in
  Alcotest.(check (float 0.)) "int as float" 3. (Json.get_float (Json.member_exn "i" j));
  Alcotest.(check bool) "bool" false (Json.get_bool (Json.member_exn "b" j));
  Alcotest.(check int) "list len" 1 (List.length (Json.get_list (Json.member_exn "l" j)));
  (match Json.member "missing" j with
  | None -> ()
  | Some _ -> Alcotest.fail "missing member should be None");
  match Json.get_int (Json.member_exn "s" j) with
  | exception Json.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

(* Property: every generated document survives print -> parse. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun f -> Json.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (value (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                (* Deduplicate keys: objects with repeated keys do not
                   roundtrip through assoc semantics. *)
                let seen = Hashtbl.create 8 in
                Json.Obj
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else (
                         Hashtbl.add seen k ();
                         true))
                     kvs))
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 1 8)) (value (depth - 1)))) );
        ]
  in
  value 3

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"json print/parse roundtrip"
    (QCheck.make ~print:Json.to_string json_gen) (fun j ->
      Json.equal j (Json.of_string (Json.to_string j))
      && Json.equal j (Json.of_string (Json.to_string ~minify:true j)))

(* Fuzz: arbitrary byte strings either parse or raise Parse_error —
   never any other exception, never a hang. *)
let prop_fuzz_no_crash =
  QCheck.Test.make ~count:500 ~name:"json parser never crashes on fuzz input"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 64) QCheck.Gen.char)
    (fun s ->
      match Json.of_string s with
      | _ -> true
      | exception Json.Parse_error _ -> true)

(* Fuzz structured-ish inputs: mutate a valid document by splicing random
   characters; same guarantee. *)
let prop_fuzz_mutated =
  QCheck.Test.make ~count:300 ~name:"json parser survives mutated documents"
    QCheck.(pair (int_range 0 80) printable_char)
    (fun (pos, c) ->
      let base = {| {"name": "x", "shape": [4, 4], "inputs": {"a": {}}, "outputs": ["s"]} |} in
      let mutated =
        if pos >= String.length base then base ^ String.make 1 c
        else String.mapi (fun i ch -> if i = pos then c else ch) base
      in
      match Json.of_string mutated with
      | _ -> true
      | exception Json.Parse_error _ -> true)

let suite =
  [
    Alcotest.test_case "parse basic document" `Quick test_parse_basic;
    Alcotest.test_case "line comments" `Quick test_comments;
    Alcotest.test_case "malformed documents are rejected" `Quick test_errors;
    Alcotest.test_case "scientific notation" `Quick test_scientific;
    Alcotest.test_case "unicode escapes decode to UTF-8" `Quick test_unicode_escape;
    Alcotest.test_case "typed accessors" `Quick test_accessors;
    Alcotest.test_case "nested roundtrip" `Quick
      (check_roundtrip
         (Json.Obj
            [
              ("nested", Json.List [ Json.Obj [ ("x", Json.Int 1) ]; Json.List [] ]);
              ("empty", Json.Obj []);
            ]));
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_fuzz_no_crash;
    QCheck_alcotest.to_alcotest prop_fuzz_mutated;
  ]
