(* The serve request loop, driven in-process through [Service.handle]. *)
module Json = Sf_support.Json
module Service = Sf_toolchain.Service

let program_json =
  {|{"name": "svc", "shape": [8, 8],
     "inputs": {"a": {}},
     "stencils": {"b": {"code": "a[0,0] * 2.0 + a[0,1]",
                        "boundary": {"a": {"type": "constant", "value": 0.0}}}},
     "outputs": ["b"]}|}

let request ?(verb = "analyze") ?(id = "1") ?(options = "") () =
  Printf.sprintf {|{"id": %s, "verb": %S, "program": %s%s}|} id verb program_json
    (if options = "" then "" else ", \"options\": " ^ options)

let handle_ok t line =
  let resp, continue = Service.handle t line in
  (match continue with `Continue -> () | `Stop -> Alcotest.fail "unexpected stop");
  match Json.parse resp with
  | Ok json -> json
  | Error _ -> Alcotest.fail ("response is not JSON: " ^ resp)

let field path json =
  List.fold_left
    (fun j k ->
      match Option.bind j (Json.member k) with
      | Some v -> Some v
      | None -> None)
    (Some json) path

let int_field path json =
  match Option.bind (field path json) Json.int_opt with
  | Some n -> n
  | None -> Alcotest.fail ("missing int field " ^ String.concat "." path)

let bool_field path json =
  match field path json with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail ("missing bool field " ^ String.concat "." path)

let test_analyze_roundtrip () =
  let t = Service.create () in
  let json = handle_ok t (request ()) in
  Alcotest.(check bool) "ok" true (bool_field [ "ok" ] json);
  Alcotest.(check bool) "has latency" true
    (int_field [ "result"; "latency_cycles" ] json > 0);
  (* The id is echoed back verbatim. *)
  Alcotest.(check int) "id echoed" 1 (int_field [ "id" ] json)

let test_repeat_request_fully_cached () =
  let t = Service.create () in
  let cold = handle_ok t (request ()) in
  let warm = handle_ok t (request ~id:"2" ()) in
  Alcotest.(check bool) "cold executed passes" true
    (int_field [ "passes"; "executed" ] cold > 0);
  Alcotest.(check int) "warm executed zero passes" 0
    (int_field [ "passes"; "executed" ] warm);
  Alcotest.(check int) "warm replayed every pass"
    (int_field [ "passes"; "executed" ] cold)
    (int_field [ "passes"; "cached" ] warm);
  (* Identical payloads modulo the echoed id, the pass trace's cached
     flags, the cache counters and the timing. *)
  let result j = Option.get (field [ "result" ] j) in
  Alcotest.(check string) "results bit-identical"
    (Json.to_string ~minify:true (result cold))
    (Json.to_string ~minify:true (result warm))

let test_formatting_does_not_defeat_cache () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  (* Same program, different whitespace: inline programs are minified
     before keying, so this must be a full cache hit. *)
  let reformatted =
    request ~id:"3" () |> String.split_on_char '\n' |> List.map String.trim
    |> String.concat " "
  in
  let warm = handle_ok t reformatted in
  Alcotest.(check int) "still zero executed" 0 (int_field [ "passes"; "executed" ] warm)

let test_option_change_misses () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  let changed = handle_ok t (request ~id:"4" ~options:{|{"width": 4}|} ()) in
  Alcotest.(check bool) "vectorized request re-executes" true
    (int_field [ "passes"; "executed" ] changed > 0)

let test_bad_requests_keep_loop_alive () =
  let t = Service.create () in
  let malformed = handle_ok t "{not json" in
  Alcotest.(check bool) "malformed -> ok:false" false (bool_field [ "ok" ] malformed);
  let unknown = handle_ok t {|{"verb": "transmogrify"}|} in
  Alcotest.(check bool) "unknown verb -> ok:false" false (bool_field [ "ok" ] unknown);
  let missing = handle_ok t {|{"verb": "analyze"}|} in
  Alcotest.(check bool) "missing program -> ok:false" false (bool_field [ "ok" ] missing);
  (* The service still works afterwards. *)
  Alcotest.(check bool) "still serving" true (bool_field [ "ok" ] (handle_ok t (request ())))

let test_evict_and_stats () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  let stats = handle_ok t {|{"verb": "cache-stats"}|} in
  Alcotest.(check bool) "entries after a run" true (int_field [ "result"; "entries" ] stats > 0);
  let evict = handle_ok t {|{"verb": "evict"}|} in
  Alcotest.(check int) "evict reports drops"
    (int_field [ "result"; "entries" ] stats)
    (int_field [ "result"; "entries_dropped" ] evict);
  let stats' = handle_ok t {|{"verb": "cache-stats"}|} in
  Alcotest.(check int) "cache empty" 0 (int_field [ "result"; "entries" ] stats')

let test_shutdown_stops () =
  let t = Service.create () in
  match Service.handle t {|{"verb": "shutdown"}|} with
  | _, `Stop -> ()
  | _, `Continue -> Alcotest.fail "shutdown must stop the loop"

(* Concurrency ------------------------------------------------------- *)

module Pass_manager = Sf_toolchain.Pass_manager

(* A family of small distinct programs (the stencil constant varies), so
   concurrent domains produce a mix of cache misses, hits and joins. *)
let family_program i =
  Printf.sprintf
    {|{"name": "svc%d", "shape": [8, 8],
       "inputs": {"a": {}},
       "stencils": {"b": {"code": "a[0,0] * %d.0 + a[0,1]",
                          "boundary": {"a": {"type": "constant", "value": 0.0}}}},
       "outputs": ["b"]}|}
    i (i + 2)

let family_request ~id ~verb i =
  (* One line: the serve loop is newline-delimited. *)
  Printf.sprintf {|{"id": %S, "verb": %S, "program": %s, "options": {"validate": false}}|} id
    verb (family_program i)
  |> String.split_on_char '\n' |> List.map String.trim |> String.concat " "

let result_payload json = Json.to_string ~minify:true (Option.get (field [ "result" ] json))

(* N domains x M mixed requests against one shared service: every result
   payload must be byte-identical to the one a fresh serial service
   computes for the same request — concurrent execution (and whichever
   mix of misses/hits/joins it produces) never changes an answer. *)
let test_concurrent_handle_matches_serial () =
  let domains = 4 and per = 8 in
  let verb i = if i mod 2 = 0 then "analyze" else "simulate" in
  let t = Service.create () in
  let run d =
    List.init per (fun i ->
        let id = Printf.sprintf "%d-%d" d i in
        (i, result_payload (handle_ok t (family_request ~id ~verb:(verb i) i))))
  in
  let spawned = List.init domains (fun d -> Domain.spawn (fun () -> run d)) in
  let concurrent = List.map Domain.join spawned in
  let serial_service = Service.create () in
  let serial =
    List.init per (fun i ->
        result_payload (handle_ok serial_service (family_request ~id:"s" ~verb:(verb i) i)))
  in
  List.iter
    (List.iter (fun (i, payload) ->
         Alcotest.(check string) "payload matches serial run" (List.nth serial i) payload))
    concurrent

(* Concurrent identical requests: the single-flight protocol lets only
   one domain execute the simulate pass; everyone else replays (as a
   join while it runs, as a plain hit afterwards) the same entry. *)
let test_single_flight_dedup () =
  let mu = Mutex.create () in
  let executed = ref 0 and replayed = ref 0 in
  let on_trace ~verb:_ trace =
    Mutex.lock mu;
    List.iter
      (fun (tm : Pass_manager.timing) ->
        if tm.Pass_manager.pass = "simulate" then
          if tm.Pass_manager.cached then incr replayed else incr executed)
      trace;
    Mutex.unlock mu
  in
  let t = Service.create ~on_trace () in
  let line = family_request ~id:"sf" ~verb:"simulate" 0 in
  let k = 6 in
  let spawned =
    List.init k (fun _ -> Domain.spawn (fun () -> result_payload (handle_ok t line)))
  in
  let results = List.map Domain.join spawned in
  Alcotest.(check int) "simulate executed exactly once" 1 !executed;
  Alcotest.(check int) "other requests replayed it" (k - 1) !replayed;
  match results with
  | first :: rest ->
      List.iter (fun r -> Alcotest.(check string) "identical result payloads" first r) rest
  | [] -> assert false

(* The full serve loop over pipes with three workers: every request line
   (including the malformed and unknown-verb ones) gets exactly one
   response, ids are echoed exactly once each, and the writer's seq is
   gap-free no matter the completion order. *)
let test_serve_loop_seq_gap_free () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let reqs =
    List.init 10 (fun i ->
        let verb = if i mod 2 = 0 then "analyze" else "simulate" in
        family_request ~id:(string_of_int i) ~verb (i mod 5))
    @ [ "{not json"; {|{"verb": "transmogrify", "id": "bad"}|};
        {|{"verb": "shutdown", "id": "end"}|} ]
  in
  let oc_req = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      Out_channel.output_string oc_req l;
      Out_channel.output_char oc_req '\n')
    reqs;
  Out_channel.close oc_req;
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        let t = Service.create ~serve_jobs:3 ~queue_depth:32 () in
        Service.serve_loop t ic oc;
        Out_channel.close oc;
        In_channel.close ic)
  in
  let ic = Unix.in_channel_of_descr resp_r in
  let rec read acc =
    match In_channel.input_line ic with None -> List.rev acc | Some l -> read (l :: acc)
  in
  let responses = read [] in
  Domain.join server;
  In_channel.close ic;
  Alcotest.(check int) "one response per request" (List.length reqs) (List.length responses);
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok j -> j
        | Error _ -> Alcotest.fail ("response is not JSON: " ^ l))
      responses
  in
  let seqs = List.sort compare (List.map (int_field [ "seq" ]) parsed) in
  Alcotest.(check (list int)) "seq gap-free" (List.init (List.length reqs) Fun.id) seqs;
  let ids =
    List.sort compare
      (List.filter_map
         (fun j -> Option.map (Json.to_string ~minify:true) (field [ "id" ] j))
         parsed)
  in
  let expected_ids =
    List.sort compare ({|"bad"|} :: {|"end"|} :: List.init 10 (fun i -> Printf.sprintf {|"%d"|} i))
  in
  Alcotest.(check (list string)) "every id answered exactly once" expected_ids ids

let suite =
  [
    Alcotest.test_case "analyze roundtrip" `Quick test_analyze_roundtrip;
    Alcotest.test_case "repeat request fully cached" `Quick test_repeat_request_fully_cached;
    Alcotest.test_case "formatting does not defeat the cache" `Quick
      test_formatting_does_not_defeat_cache;
    Alcotest.test_case "option change misses" `Quick test_option_change_misses;
    Alcotest.test_case "bad requests keep the loop alive" `Quick
      test_bad_requests_keep_loop_alive;
    Alcotest.test_case "evict and cache-stats" `Quick test_evict_and_stats;
    Alcotest.test_case "shutdown stops the loop" `Quick test_shutdown_stops;
    Alcotest.test_case "concurrent handle matches serial run" `Quick
      test_concurrent_handle_matches_serial;
    Alcotest.test_case "single-flight dedups identical requests" `Quick
      test_single_flight_dedup;
    Alcotest.test_case "serve loop: gap-free seq, every request answered" `Quick
      test_serve_loop_seq_gap_free;
  ]
