(* The serve request loop, driven in-process through [Service.handle]. *)
module Json = Sf_support.Json
module Service = Sf_toolchain.Service

let program_json =
  {|{"name": "svc", "shape": [8, 8],
     "inputs": {"a": {}},
     "stencils": {"b": {"code": "a[0,0] * 2.0 + a[0,1]",
                        "boundary": {"a": {"type": "constant", "value": 0.0}}}},
     "outputs": ["b"]}|}

let request ?(verb = "analyze") ?(id = "1") ?(options = "") () =
  Printf.sprintf {|{"id": %s, "verb": %S, "program": %s%s}|} id verb program_json
    (if options = "" then "" else ", \"options\": " ^ options)

let handle_ok t line =
  let resp, continue = Service.handle t line in
  (match continue with `Continue -> () | `Stop -> Alcotest.fail "unexpected stop");
  match Json.parse resp with
  | Ok json -> json
  | Error _ -> Alcotest.fail ("response is not JSON: " ^ resp)

let field path json =
  List.fold_left
    (fun j k ->
      match Option.bind j (Json.member k) with
      | Some v -> Some v
      | None -> None)
    (Some json) path

let int_field path json =
  match Option.bind (field path json) Json.int_opt with
  | Some n -> n
  | None -> Alcotest.fail ("missing int field " ^ String.concat "." path)

let bool_field path json =
  match field path json with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail ("missing bool field " ^ String.concat "." path)

let test_analyze_roundtrip () =
  let t = Service.create () in
  let json = handle_ok t (request ()) in
  Alcotest.(check bool) "ok" true (bool_field [ "ok" ] json);
  Alcotest.(check bool) "has latency" true
    (int_field [ "result"; "latency_cycles" ] json > 0);
  (* The id is echoed back verbatim. *)
  Alcotest.(check int) "id echoed" 1 (int_field [ "id" ] json)

let test_repeat_request_fully_cached () =
  let t = Service.create () in
  let cold = handle_ok t (request ()) in
  let warm = handle_ok t (request ~id:"2" ()) in
  Alcotest.(check bool) "cold executed passes" true
    (int_field [ "passes"; "executed" ] cold > 0);
  Alcotest.(check int) "warm executed zero passes" 0
    (int_field [ "passes"; "executed" ] warm);
  Alcotest.(check int) "warm replayed every pass"
    (int_field [ "passes"; "executed" ] cold)
    (int_field [ "passes"; "cached" ] warm);
  (* Identical payloads modulo the echoed id, the pass trace's cached
     flags, the cache counters and the timing. *)
  let result j = Option.get (field [ "result" ] j) in
  Alcotest.(check string) "results bit-identical"
    (Json.to_string ~minify:true (result cold))
    (Json.to_string ~minify:true (result warm))

let test_formatting_does_not_defeat_cache () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  (* Same program, different whitespace: inline programs are minified
     before keying, so this must be a full cache hit. *)
  let reformatted =
    request ~id:"3" () |> String.split_on_char '\n' |> List.map String.trim
    |> String.concat " "
  in
  let warm = handle_ok t reformatted in
  Alcotest.(check int) "still zero executed" 0 (int_field [ "passes"; "executed" ] warm)

let test_option_change_misses () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  let changed = handle_ok t (request ~id:"4" ~options:{|{"width": 4}|} ()) in
  Alcotest.(check bool) "vectorized request re-executes" true
    (int_field [ "passes"; "executed" ] changed > 0)

let test_bad_requests_keep_loop_alive () =
  let t = Service.create () in
  let malformed = handle_ok t "{not json" in
  Alcotest.(check bool) "malformed -> ok:false" false (bool_field [ "ok" ] malformed);
  let unknown = handle_ok t {|{"verb": "transmogrify"}|} in
  Alcotest.(check bool) "unknown verb -> ok:false" false (bool_field [ "ok" ] unknown);
  let missing = handle_ok t {|{"verb": "analyze"}|} in
  Alcotest.(check bool) "missing program -> ok:false" false (bool_field [ "ok" ] missing);
  (* The service still works afterwards. *)
  Alcotest.(check bool) "still serving" true (bool_field [ "ok" ] (handle_ok t (request ())))

let test_evict_and_stats () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  let stats = handle_ok t {|{"verb": "cache-stats"}|} in
  Alcotest.(check bool) "entries after a run" true (int_field [ "result"; "entries" ] stats > 0);
  let evict = handle_ok t {|{"verb": "evict"}|} in
  Alcotest.(check int) "evict reports drops"
    (int_field [ "result"; "entries" ] stats)
    (int_field [ "result"; "entries_dropped" ] evict);
  let stats' = handle_ok t {|{"verb": "cache-stats"}|} in
  Alcotest.(check int) "cache empty" 0 (int_field [ "result"; "entries" ] stats')

let test_shutdown_stops () =
  let t = Service.create () in
  match Service.handle t {|{"verb": "shutdown"}|} with
  | _, `Stop -> ()
  | _, `Continue -> Alcotest.fail "shutdown must stop the loop"

(* Concurrency ------------------------------------------------------- *)

module Pass_manager = Sf_toolchain.Pass_manager

(* A family of small distinct programs (the stencil constant varies), so
   concurrent domains produce a mix of cache misses, hits and joins. *)
let family_program i =
  Printf.sprintf
    {|{"name": "svc%d", "shape": [8, 8],
       "inputs": {"a": {}},
       "stencils": {"b": {"code": "a[0,0] * %d.0 + a[0,1]",
                          "boundary": {"a": {"type": "constant", "value": 0.0}}}},
       "outputs": ["b"]}|}
    i (i + 2)

let family_request ~id ~verb i =
  (* One line: the serve loop is newline-delimited. *)
  Printf.sprintf {|{"id": %S, "verb": %S, "program": %s, "options": {"validate": false}}|} id
    verb (family_program i)
  |> String.split_on_char '\n' |> List.map String.trim |> String.concat " "

let result_payload json = Json.to_string ~minify:true (Option.get (field [ "result" ] json))

(* N domains x M mixed requests against one shared service: every result
   payload must be byte-identical to the one a fresh serial service
   computes for the same request — concurrent execution (and whichever
   mix of misses/hits/joins it produces) never changes an answer. *)
let test_concurrent_handle_matches_serial () =
  let domains = 4 and per = 8 in
  let verb i = if i mod 2 = 0 then "analyze" else "simulate" in
  let t = Service.create () in
  let run d =
    List.init per (fun i ->
        let id = Printf.sprintf "%d-%d" d i in
        (i, result_payload (handle_ok t (family_request ~id ~verb:(verb i) i))))
  in
  let spawned = List.init domains (fun d -> Domain.spawn (fun () -> run d)) in
  let concurrent = List.map Domain.join spawned in
  let serial_service = Service.create () in
  let serial =
    List.init per (fun i ->
        result_payload (handle_ok serial_service (family_request ~id:"s" ~verb:(verb i) i)))
  in
  List.iter
    (List.iter (fun (i, payload) ->
         Alcotest.(check string) "payload matches serial run" (List.nth serial i) payload))
    concurrent

(* Concurrent identical requests: the single-flight protocol lets only
   one domain execute the simulate pass; everyone else replays (as a
   join while it runs, as a plain hit afterwards) the same entry. *)
let test_single_flight_dedup () =
  let mu = Mutex.create () in
  let executed = ref 0 and replayed = ref 0 in
  let on_trace ~verb:_ trace =
    Mutex.lock mu;
    List.iter
      (fun (tm : Pass_manager.timing) ->
        if tm.Pass_manager.pass = "simulate" then
          if tm.Pass_manager.cached then incr replayed else incr executed)
      trace;
    Mutex.unlock mu
  in
  let t = Service.create ~on_trace () in
  let line = family_request ~id:"sf" ~verb:"simulate" 0 in
  let k = 6 in
  let spawned =
    List.init k (fun _ -> Domain.spawn (fun () -> result_payload (handle_ok t line)))
  in
  let results = List.map Domain.join spawned in
  Alcotest.(check int) "simulate executed exactly once" 1 !executed;
  Alcotest.(check int) "other requests replayed it" (k - 1) !replayed;
  match results with
  | first :: rest ->
      List.iter (fun r -> Alcotest.(check string) "identical result payloads" first r) rest
  | [] -> assert false

(* The full serve loop over pipes with three workers: every request line
   (including the malformed and unknown-verb ones) gets exactly one
   response, ids are echoed exactly once each, and the writer's seq is
   gap-free no matter the completion order. *)
let test_serve_loop_seq_gap_free () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let reqs =
    List.init 10 (fun i ->
        let verb = if i mod 2 = 0 then "analyze" else "simulate" in
        family_request ~id:(string_of_int i) ~verb (i mod 5))
    @ [ "{not json"; {|{"verb": "transmogrify", "id": "bad"}|};
        {|{"verb": "shutdown", "id": "end"}|} ]
  in
  let oc_req = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      Out_channel.output_string oc_req l;
      Out_channel.output_char oc_req '\n')
    reqs;
  Out_channel.close oc_req;
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        let t = Service.create ~serve_jobs:3 ~queue_depth:32 () in
        Service.serve_loop t ic oc;
        Out_channel.close oc;
        In_channel.close ic)
  in
  let ic = Unix.in_channel_of_descr resp_r in
  let rec read acc =
    match In_channel.input_line ic with None -> List.rev acc | Some l -> read (l :: acc)
  in
  let responses = read [] in
  Domain.join server;
  In_channel.close ic;
  Alcotest.(check int) "one response per request" (List.length reqs) (List.length responses);
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok j -> j
        | Error _ -> Alcotest.fail ("response is not JSON: " ^ l))
      responses
  in
  let seqs = List.sort compare (List.map (int_field [ "seq" ]) parsed) in
  Alcotest.(check (list int)) "seq gap-free" (List.init (List.length reqs) Fun.id) seqs;
  let ids =
    List.sort compare
      (List.filter_map
         (fun j -> Option.map (Json.to_string ~minify:true) (field [ "id" ] j))
         parsed)
  in
  let expected_ids =
    List.sort compare ({|"bad"|} :: {|"end"|} :: List.init 10 (fun i -> Printf.sprintf {|"%d"|} i))
  in
  Alcotest.(check (list string)) "every id answered exactly once" expected_ids ids

(* Robustness --------------------------------------------------------- *)

module Cache = Sf_toolchain.Cache
module F = Sf_support.Fingerprint

let diag_codes json =
  match field [ "diagnostics" ] json with
  | Some (Json.List ds) ->
      List.filter_map
        (fun d -> Option.bind (Json.member "code" d) Json.string_opt)
        ds
  | _ -> []

(* An expired deadline fails a cold request with SF0904 before any pass
   executes — but cached replays are free, so the same request over a
   warm cache still answers, and a partially-warm one keeps its cached
   prefix and stops at the first pass that would execute. *)
let test_deadline_sf0904 () =
  let t = Service.create () in
  ignore (handle_ok t (request ~id:"10" ~options:{|{"validate": false}|} ()));
  (* Cold simulate with an already-expired deadline: analyze primed
     load-string and delay-buffers, so the trace replays those two and
     SF0904 fires before partition. *)
  let line =
    Printf.sprintf
      {|{"id": "11", "verb": "simulate", "deadline_ms": 0, "program": %s, "options": {"validate": false}}|}
      program_json
    |> String.split_on_char '\n' |> List.map String.trim |> String.concat " "
  in
  let dead = handle_ok t line in
  Alcotest.(check bool) "expired deadline -> ok:false" false (bool_field [ "ok" ] dead);
  Alcotest.(check (list string)) "SF0904" [ "SF0904" ] (diag_codes dead);
  Alcotest.(check int) "prefix replayed from cache" 2 (int_field [ "passes"; "cached" ] dead);
  Alcotest.(check int) "nothing executed" 0 (int_field [ "passes"; "executed" ] dead);
  (* Fully warm: the same request without the deadline, then again with
     deadline 0 — all passes replay, so the budget is never charged. *)
  ignore
    (handle_ok t
       (Printf.sprintf
          {|{"id": "12", "verb": "simulate", "program": %s, "options": {"validate": false}}|}
          program_json
       |> String.split_on_char '\n' |> List.map String.trim |> String.concat " "));
  let warm = handle_ok t line in
  Alcotest.(check bool) "warm replay beats the deadline" true (bool_field [ "ok" ] warm);
  Alcotest.(check int) "warm executes nothing" 0 (int_field [ "passes"; "executed" ] warm);
  (* A negative deadline_ms disables the server-wide default. *)
  let strict = Service.create ~deadline_ms:1 () in
  let opt_out =
    Printf.sprintf {|{"id": "13", "verb": "analyze", "deadline_ms": -1, "program": %s}|}
      program_json
    |> String.split_on_char '\n' |> List.map String.trim |> String.concat " "
  in
  Alcotest.(check bool) "negative deadline_ms opts out" true
    (bool_field [ "ok" ] (handle_ok strict opt_out))

(* An exception escaping a pool worker's request — injected through the
   chaos hook — answers SF0905 (with a backtrace note) and the loop
   keeps serving. *)
let test_sf0905_crash_isolation () =
  let disturb ~id =
    match id with
    | Some (Json.String "boom") -> failwith "injected"
    | _ -> ()
  in
  let t = Service.create ~serve_jobs:2 ~disturb () in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let reqs =
    [
      family_request ~id:"ok1" ~verb:"analyze" 0;
      family_request ~id:"boom" ~verb:"analyze" 1;
      family_request ~id:"ok2" ~verb:"analyze" 2;
      {|{"verb": "shutdown"}|};
    ]
  in
  let oc_req = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      Out_channel.output_string oc_req l;
      Out_channel.output_char oc_req '\n')
    reqs;
  Out_channel.close oc_req;
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.serve_loop t ic oc;
        Out_channel.close oc;
        In_channel.close ic)
  in
  let ic = Unix.in_channel_of_descr resp_r in
  let rec read acc =
    match In_channel.input_line ic with None -> List.rev acc | Some l -> read (l :: acc)
  in
  let responses = read [] in
  Domain.join server;
  In_channel.close ic;
  Alcotest.(check int) "every request answered" (List.length reqs) (List.length responses);
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok j -> j
        | Error _ -> Alcotest.fail ("response is not JSON: " ^ l))
      responses
  in
  let by_id key =
    match
      List.find_opt
        (fun j ->
          match field [ "id" ] j with
          | Some id -> Json.to_string ~minify:true id = key
          | None -> false)
        parsed
    with
    | Some j -> j
    | None -> Alcotest.fail ("no response for id " ^ key)
  in
  Alcotest.(check bool) "ok1 fine" true (bool_field [ "ok" ] (by_id {|"ok1"|}));
  Alcotest.(check bool) "ok2 fine" true (bool_field [ "ok" ] (by_id {|"ok2"|}));
  let boom = by_id {|"boom"|} in
  Alcotest.(check bool) "boom failed" false (bool_field [ "ok" ] boom);
  Alcotest.(check (list string)) "boom is SF0905" [ "SF0905" ] (diag_codes boom)

let test_health_verb () =
  let t = Service.create ~serve_jobs:3 () in
  let json = handle_ok t {|{"id": "h", "verb": "health"}|} in
  Alcotest.(check bool) "ok" true (bool_field [ "ok" ] json);
  Alcotest.(check int) "in_flight (sync path)" 0 (int_field [ "result"; "in_flight" ] json);
  Alcotest.(check int) "serve_jobs" 3 (int_field [ "result"; "serve_jobs" ] json);
  Alcotest.(check int) "no corruption" 0 (int_field [ "result"; "store_corrupt" ] json);
  match field [ "result"; "uptime_seconds" ] json with
  | Some (Json.Float s) when s >= 0. -> ()
  | _ -> Alcotest.fail "uptime_seconds missing"

(* A waiter bounded by [wait_until] takes over a stalled leader's flight
   instead of blocking forever; the stale leader settling later cannot
   disturb the published entry. *)
let test_flight_takeover () =
  let cache = Cache.create () in
  let key = F.of_string "takeover-key" in
  let leader_flight =
    match Cache.acquire cache key with
    | Cache.Miss f -> f
    | _ -> Alcotest.fail "leader must miss"
  in
  (* The leader never settles (simulating a wedged execution). A bounded
     waiter must take the flight over at its deadline and lead. *)
  let entry = { Cache.bindings = []; diags = [] } in
  let waiter =
    Domain.spawn (fun () ->
        let wait_until = Sf_support.Util.monotime () +. 0.02 in
        match Cache.acquire ~wait_until cache key with
        | Cache.Miss f ->
            Cache.fulfill cache f entry;
            `Took_over
        | Cache.Hit _ -> `Hit
        | Cache.Joined _ -> `Joined)
  in
  Alcotest.(check bool) "waiter took the flight over" true (Domain.join waiter = `Took_over);
  Alcotest.(check int) "takeover counted" 1 (Cache.stats cache).Cache.takeovers;
  (* The entry is published despite the wedged leader. *)
  (match Cache.acquire cache key with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "takeover result must be published");
  (* The stale leader finally settles; the published entry survives. *)
  Cache.abandon cache leader_flight;
  match Cache.acquire cache key with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "stale leader's abandon must not evict the entry"

let suite =
  [
    Alcotest.test_case "analyze roundtrip" `Quick test_analyze_roundtrip;
    Alcotest.test_case "repeat request fully cached" `Quick test_repeat_request_fully_cached;
    Alcotest.test_case "formatting does not defeat the cache" `Quick
      test_formatting_does_not_defeat_cache;
    Alcotest.test_case "option change misses" `Quick test_option_change_misses;
    Alcotest.test_case "bad requests keep the loop alive" `Quick
      test_bad_requests_keep_loop_alive;
    Alcotest.test_case "evict and cache-stats" `Quick test_evict_and_stats;
    Alcotest.test_case "shutdown stops the loop" `Quick test_shutdown_stops;
    Alcotest.test_case "concurrent handle matches serial run" `Quick
      test_concurrent_handle_matches_serial;
    Alcotest.test_case "single-flight dedups identical requests" `Quick
      test_single_flight_dedup;
    Alcotest.test_case "serve loop: gap-free seq, every request answered" `Quick
      test_serve_loop_seq_gap_free;
    Alcotest.test_case "deadline: SF0904, cached prefix survives" `Quick
      test_deadline_sf0904;
    Alcotest.test_case "crash isolation: SF0905, loop survives" `Quick
      test_sf0905_crash_isolation;
    Alcotest.test_case "health verb" `Quick test_health_verb;
    Alcotest.test_case "flight takeover unparks bounded waiters" `Quick
      test_flight_takeover;
  ]
