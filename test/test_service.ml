(* The serve request loop, driven in-process through [Service.handle]. *)
module Json = Sf_support.Json
module Service = Sf_toolchain.Service

let program_json =
  {|{"name": "svc", "shape": [8, 8],
     "inputs": {"a": {}},
     "stencils": {"b": {"code": "a[0,0] * 2.0 + a[0,1]",
                        "boundary": {"a": {"type": "constant", "value": 0.0}}}},
     "outputs": ["b"]}|}

let request ?(verb = "analyze") ?(id = "1") ?(options = "") () =
  Printf.sprintf {|{"id": %s, "verb": %S, "program": %s%s}|} id verb program_json
    (if options = "" then "" else ", \"options\": " ^ options)

let handle_ok t line =
  let resp, continue = Service.handle t line in
  (match continue with `Continue -> () | `Stop -> Alcotest.fail "unexpected stop");
  match Json.parse resp with
  | Ok json -> json
  | Error _ -> Alcotest.fail ("response is not JSON: " ^ resp)

let field path json =
  List.fold_left
    (fun j k ->
      match Option.bind j (Json.member k) with
      | Some v -> Some v
      | None -> None)
    (Some json) path

let int_field path json =
  match Option.bind (field path json) Json.int_opt with
  | Some n -> n
  | None -> Alcotest.fail ("missing int field " ^ String.concat "." path)

let bool_field path json =
  match field path json with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail ("missing bool field " ^ String.concat "." path)

let test_analyze_roundtrip () =
  let t = Service.create () in
  let json = handle_ok t (request ()) in
  Alcotest.(check bool) "ok" true (bool_field [ "ok" ] json);
  Alcotest.(check bool) "has latency" true
    (int_field [ "result"; "latency_cycles" ] json > 0);
  (* The id is echoed back verbatim. *)
  Alcotest.(check int) "id echoed" 1 (int_field [ "id" ] json)

let test_repeat_request_fully_cached () =
  let t = Service.create () in
  let cold = handle_ok t (request ()) in
  let warm = handle_ok t (request ~id:"2" ()) in
  Alcotest.(check bool) "cold executed passes" true
    (int_field [ "passes"; "executed" ] cold > 0);
  Alcotest.(check int) "warm executed zero passes" 0
    (int_field [ "passes"; "executed" ] warm);
  Alcotest.(check int) "warm replayed every pass"
    (int_field [ "passes"; "executed" ] cold)
    (int_field [ "passes"; "cached" ] warm);
  (* Identical payloads modulo the echoed id, the pass trace's cached
     flags, the cache counters and the timing. *)
  let result j = Option.get (field [ "result" ] j) in
  Alcotest.(check string) "results bit-identical"
    (Json.to_string ~minify:true (result cold))
    (Json.to_string ~minify:true (result warm))

let test_formatting_does_not_defeat_cache () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  (* Same program, different whitespace: inline programs are minified
     before keying, so this must be a full cache hit. *)
  let reformatted =
    request ~id:"3" () |> String.split_on_char '\n' |> List.map String.trim
    |> String.concat " "
  in
  let warm = handle_ok t reformatted in
  Alcotest.(check int) "still zero executed" 0 (int_field [ "passes"; "executed" ] warm)

let test_option_change_misses () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  let changed = handle_ok t (request ~id:"4" ~options:{|{"width": 4}|} ()) in
  Alcotest.(check bool) "vectorized request re-executes" true
    (int_field [ "passes"; "executed" ] changed > 0)

let test_bad_requests_keep_loop_alive () =
  let t = Service.create () in
  let malformed = handle_ok t "{not json" in
  Alcotest.(check bool) "malformed -> ok:false" false (bool_field [ "ok" ] malformed);
  let unknown = handle_ok t {|{"verb": "transmogrify"}|} in
  Alcotest.(check bool) "unknown verb -> ok:false" false (bool_field [ "ok" ] unknown);
  let missing = handle_ok t {|{"verb": "analyze"}|} in
  Alcotest.(check bool) "missing program -> ok:false" false (bool_field [ "ok" ] missing);
  (* The service still works afterwards. *)
  Alcotest.(check bool) "still serving" true (bool_field [ "ok" ] (handle_ok t (request ())))

let test_evict_and_stats () =
  let t = Service.create () in
  ignore (handle_ok t (request ()));
  let stats = handle_ok t {|{"verb": "cache-stats"}|} in
  Alcotest.(check bool) "entries after a run" true (int_field [ "result"; "entries" ] stats > 0);
  let evict = handle_ok t {|{"verb": "evict"}|} in
  Alcotest.(check int) "evict reports drops"
    (int_field [ "result"; "entries" ] stats)
    (int_field [ "result"; "entries_dropped" ] evict);
  let stats' = handle_ok t {|{"verb": "cache-stats"}|} in
  Alcotest.(check int) "cache empty" 0 (int_field [ "result"; "entries" ] stats')

let test_shutdown_stops () =
  let t = Service.create () in
  match Service.handle t {|{"verb": "shutdown"}|} with
  | _, `Stop -> ()
  | _, `Continue -> Alcotest.fail "shutdown must stop the loop"

let suite =
  [
    Alcotest.test_case "analyze roundtrip" `Quick test_analyze_roundtrip;
    Alcotest.test_case "repeat request fully cached" `Quick test_repeat_request_fully_cached;
    Alcotest.test_case "formatting does not defeat the cache" `Quick
      test_formatting_does_not_defeat_cache;
    Alcotest.test_case "option change misses" `Quick test_option_change_misses;
    Alcotest.test_case "bad requests keep the loop alive" `Quick
      test_bad_requests_keep_loop_alive;
    Alcotest.test_case "evict and cache-stats" `Quick test_evict_and_stats;
    Alcotest.test_case "shutdown stops the loop" `Quick test_shutdown_stops;
  ]
