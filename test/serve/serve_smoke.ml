(* End-to-end smoke for the serve loop, wired into `dune build
   @serve-smoke` (and through it into `dune runtest`). For every seed
   example program: an analyze request must succeed, and repeating it
   verbatim must execute zero passes — every pass replayed from the
   session cache. This is the service-level form of the per-pass claims
   test/test_service.ml pins on one fixture. *)
open Stencilflow

let examples_dir =
  List.find Sys.file_exists
    [ "examples/programs"; "../examples/programs"; "../../examples/programs" ]

let check name ok = if not ok then failwith name

let int_field path json =
  let rec go path json =
    match path with
    | [] -> Json.int_opt json
    | k :: rest -> ( match Json.member k json with Some v -> go rest v | None -> None)
  in
  match go path json with
  | Some n -> n
  | None -> failwith ("missing field " ^ String.concat "." path)

let request file =
  Printf.sprintf {|{"verb": "analyze", "program_file": %S}|}
    (Filename.concat examples_dir file)

let handle t line =
  match Service.handle t line with
  | resp, `Continue -> (
      match Json.parse resp with
      | Ok json -> json
      | Error _ -> failwith ("response is not JSON: " ^ resp))
  | _, `Stop -> failwith "unexpected stop"

let run_example t file =
  let cold = handle t (request file) in
  check (file ^ ": cold ok") (Json.member "ok" cold = Some (Json.Bool true));
  check (file ^ ": cold executes") (int_field [ "passes"; "executed" ] cold > 0);
  let warm = handle t (request file) in
  check (file ^ ": warm ok") (Json.member "ok" warm = Some (Json.Bool true));
  check (file ^ ": warm executes nothing") (int_field [ "passes"; "executed" ] warm = 0);
  check
    (file ^ ": warm replays every pass")
    (int_field [ "passes"; "cached" ] warm = int_field [ "passes"; "executed" ] cold);
  Printf.printf "%-36s ok: %d pass(es) cold, 0 warm\n%!" file
    (int_field [ "passes"; "executed" ] cold)

(* The same examples through a real concurrent server: a four-worker
   serve loop over pipes, two identical analyze requests per example so
   the single-flight cache gets concurrent identical keys. Every request
   must be answered ok, exactly once, with a gap-free seq. *)
let concurrent_leg examples =
  let t = Service.create ~serve_jobs:4 ~queue_depth:64 () in
  let reqs =
    List.concat_map (fun f -> [ request f; request f ]) examples
    @ [ {|{"verb": "shutdown"}|} ]
  in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ocq = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      Out_channel.output_string ocq l;
      Out_channel.output_char ocq '\n')
    reqs;
  Out_channel.close ocq;
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Service.serve_loop t ic oc;
        Out_channel.close oc;
        In_channel.close ic)
  in
  let ic = Unix.in_channel_of_descr resp_r in
  let rec read acc =
    match In_channel.input_line ic with None -> List.rev acc | Some l -> read (l :: acc)
  in
  let responses = read [] in
  Domain.join server;
  In_channel.close ic;
  check "concurrent: one response per request" (List.length responses = List.length reqs);
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with Ok j -> j | Error _ -> failwith ("bad response: " ^ l))
      responses
  in
  List.iter
    (fun j -> check "concurrent: every response ok" (Json.member "ok" j = Some (Json.Bool true)))
    parsed;
  let seqs = List.sort compare (List.map (int_field [ "seq" ]) parsed) in
  check "concurrent: seq gap-free" (seqs = List.init (List.length reqs) Fun.id);
  let stats = Cache.stats (Service.cache t) in
  check "concurrent: no stale entries" (stats.Cache.stale = 0);
  Printf.printf "serve smoke (4 workers): %d request(s) answered, seq gap-free\n%!"
    (List.length reqs)

let () =
  let t = Service.create () in
  let examples =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if examples = [] then failwith ("no example programs under " ^ examples_dir);
  List.iter (run_example t) examples;
  let stats = Cache.stats (Service.cache t) in
  check "cache saw hits" (stats.Cache.hits > 0);
  check "no stale entries" (stats.Cache.stale = 0);
  Printf.printf "serve smoke: %d example(s), %d cache hit(s), %d miss(es)\n%!"
    (List.length examples) stats.Cache.hits stats.Cache.misses;
  concurrent_leg examples
