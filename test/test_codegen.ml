open Sf_ir
module Opencl = Sf_codegen.Opencl
module Dot = Sf_codegen.Dot
module Partition = Sf_mapping.Partition
module E = Builder.E

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains source fragments =
  List.iter
    (fun f -> Alcotest.(check bool) ("contains " ^ f) true (contains source f))
    fragments

let generate_single p =
  match Fixtures.ok (Opencl.generate p) with
  | [ a ] -> a.Opencl.source
  | artifacts -> Alcotest.fail (Printf.sprintf "expected 1 artifact, got %d" (List.length artifacts))

let test_laplace_kernel_structure () =
  let src = generate_single (Fixtures.laplace2d ~shape:[ 8; 8 ] ()) in
  check_contains src
    [
      "#pragma OPENCL EXTENSION cl_intel_channels : enable";
      "__attribute__((autorun))";
      "__kernel void stencil_lap()";
      "float sr_a[25]";
      "#pragma unroll";
      "read_channel_intel(ch_a__lap)";
      "write_channel_intel(ch_lap__mem";
      "__kernel void read_a(";
      "__kernel void write_lap(";
    ];
  (* Boundary predication with the constant condition. *)
  check_contains src [ "? sr_a["; ": 0.0f" ]

let test_channel_depths_annotated () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 () in
  let src = generate_single p in
  (* The skip edge a -> c carries the 7-word delay buffer. *)
  check_contains src [ "channel float ch_a__c __attribute__((depth(14)))" ]

let test_copy_boundary_codegen () =
  let b = Builder.create ~name:"copybc" ~shape:[ 4; 8 ] () in
  Builder.input b "a";
  Builder.stencil b ~boundary:[ ("a", Boundary.Copy) ] "s" E.(acc "a" [ 0; -1 ] +% acc "a" [ 0; 1 ]);
  Builder.output b "s";
  let src = generate_single (Builder.finish b) in
  (* Copy falls back to the center tap, not a constant. *)
  check_contains src [ ": sr_a[1 + v])" ]

let test_lets_become_locals () =
  let p = Fixtures.kitchen_sink () in
  let src = generate_single p in
  check_contains src [ "const float t = " ]

let test_shared_nodes_become_temporaries () =
  (* Structural sharing (no lets in the source) is scheduled as __tN
     locals: the shared subexpression is computed once and referenced
     twice, in both backends. *)
  let b = Builder.create ~name:"shared" ~shape:[ 8; 8 ] () in
  Builder.input b "a";
  Builder.stencil b "s"
    Builder.E.(
      sqrt_ (acc "a" [ 0; 0 ] +% acc "a" [ 0; 1 ])
      *% sqrt_ (acc "a" [ 0; 0 ] +% acc "a" [ 0; 1 ]));
  Builder.output b "s";
  let p = Builder.finish b in
  let src = generate_single p in
  check_contains src [ "const float __t0 = "; "__t0 * __t0" ];
  check_contains
    (Fixtures.ok (Sf_codegen.Vitis.generate p))
    [ "const float __t0 = "; "__t0 * __t0" ]

let test_lower_dim_prefetch () =
  let p = Fixtures.kitchen_sink () in
  let src = generate_single p in
  check_contains src [ "float pref_crlat[6]"; "float pref_alpha[1]" ]

let test_vectorized_codegen () =
  let p = Sf_analysis.Vectorize.apply (Fixtures.laplace2d ~shape:[ 8; 8 ] ()) 4 in
  let src = generate_single p in
  check_contains src [ "for (int v = 0; v < 4; ++v)"; "float sr_a[32]" ]

let test_multi_device_smi () =
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:4 () in
  let pt =
    {
      Partition.num_devices = 2;
      device_of = [ ("f1", 0); ("f2", 0); ("f3", 1); ("f4", 1) ];
      replicated_inputs = [ ("f0", [ 0 ]) ];
      cross_edges = [ (("f2", "f3"), (0, 1)) ];
      per_device_usage = [];
    }
  in
  match Fixtures.ok (Opencl.generate ~partition:pt p) with
  | [ dev0; dev1 ] ->
      check_contains dev0.Opencl.source [ "SMI_Push(&smi_f2__f3"; "__kernel void stencil_f2" ];
      check_contains dev1.Opencl.source [ "SMI_Pop(&smi_f2__f3"; "__kernel void stencil_f3" ];
      Alcotest.(check bool) "reader only on device 0" true
        (contains dev0.Opencl.source "__kernel void read_f0"
        && not (contains dev1.Opencl.source "__kernel void read_f0"));
      Alcotest.(check bool) "writer only on device 1" true
        (contains dev1.Opencl.source "__kernel void write_f4"
        && not (contains dev0.Opencl.source "__kernel void write_f4"))
  | artifacts -> Alcotest.fail (Printf.sprintf "expected 2 artifacts, got %d" (List.length artifacts))

let test_host_code () =
  let p = Fixtures.fork () in
  let host = Fixtures.ok (Opencl.host_source p) in
  check_contains host
    [ "clCreateBuffer"; "clEnqueueWriteBuffer"; "kernel_write_left"; "kernel_write_join" ]

let test_expression_to_c () =
  let access ~field ~offsets =
    Printf.sprintf "%s_%s" field (Sf_support.Util.string_concat_map "_" string_of_int offsets)
  in
  let e =
    Fixtures.ok1
      (Sf_frontend.Parser.parse_expr "a[0,1] * (b[0,0] + 2.0) < 1.0 ? sqrt(a[0,1]) : -b[0,0]")
  in
  Alcotest.(check string) "rendered"
    "((a_0_1 * (b_0_0 + 2.0f)) < 1.0f) ? sqrtf(a_0_1) : (-b_0_0)"
    (Opencl.expression_to_c ~access e)

let test_vitis_backend () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 () in
  let src = Fixtures.ok (Sf_codegen.Vitis.generate p) in
  check_contains src
    [
      "#include <hls_stream.h>";
      "#pragma HLS DATAFLOW";
      "#pragma HLS PIPELINE II=1";
      "void pe_b(";
      "hls::stream<float> s_a__c;";
      "#pragma HLS STREAM variable=s_a__c depth=14";
      "extern \"C\" void stencilflow_diamond(";
      "read_x(mem_x, s_x__a);";
      "write_c(s_c__mem, mem_c);";
    ]

let test_vitis_kitchen_sink () =
  (* Lower-dimensional inputs, copy boundaries and lets all lower. *)
  let src = Fixtures.ok (Sf_codegen.Vitis.generate (Fixtures.kitchen_sink ())) in
  check_contains src [ "float pref_crlat[6]"; "const float t ="; "#pragma HLS ARRAY_PARTITION" ]

let test_dot_export () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 () in
  let dot = Dot.of_program p in
  check_contains dot
    [ "digraph"; "\"x\" [shape=box"; "\"c\" [shape=ellipse, peripheries=2]"; "\"a\" -> \"c\" [label=\"14\"]" ]

let test_sdfg_dot_export () =
  let p = Fixtures.laplace2d ~shape:[ 8; 8 ] () in
  let expanded = Sf_sdfg.Sdfg.expand_library_nodes (Sf_sdfg.Sdfg.of_program p) in
  let dot = Dot.of_sdfg expanded in
  check_contains dot
    [ "digraph \"laplace2d\""; "pipeline_lap (init"; "shape=octagon"; "compute";
      "write_if_not_initializing"; "shift_a (unroll" ]

let suite =
  [
    Alcotest.test_case "laplace kernel structure (fig 12)" `Quick test_laplace_kernel_structure;
    Alcotest.test_case "channel depths annotated" `Quick test_channel_depths_annotated;
    Alcotest.test_case "copy boundary predication" `Quick test_copy_boundary_codegen;
    Alcotest.test_case "lets lower to locals" `Quick test_lets_become_locals;
    Alcotest.test_case "shared nodes lower to __tN temporaries" `Quick
      test_shared_nodes_become_temporaries;
    Alcotest.test_case "lower-dim inputs prefetch" `Quick test_lower_dim_prefetch;
    Alcotest.test_case "vectorized kernels" `Quick test_vectorized_codegen;
    Alcotest.test_case "multi-device SMI emission (sec 6B)" `Quick test_multi_device_smi;
    Alcotest.test_case "host code" `Quick test_host_code;
    Alcotest.test_case "expression rendering" `Quick test_expression_to_c;
    Alcotest.test_case "vitis backend structure" `Quick test_vitis_backend;
    Alcotest.test_case "vitis backend kitchen sink" `Quick test_vitis_kitchen_sink;
    Alcotest.test_case "graphviz export" `Quick test_dot_export;
    Alcotest.test_case "sdfg graphviz export (fig 12)" `Quick test_sdfg_dot_export;
  ]
