(* The on-disk blob store's integrity contract: [find] never raises on
   any byte sequence, never returns [`Found] for damaged bytes, and
   quarantines corruption aside instead of re-reporting it forever.
   Every row of the corruption matrix — truncated, bit-flipped, empty,
   wrong-version, oversized — must behave as miss-and-quarantine (or
   stale for a clean version mismatch), never a crash or a wrong
   replay. *)
module Store = Sf_support.Store
module F = Sf_support.Fingerprint

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sf-store-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    dir

let key_of payload = F.to_hex (F.of_string payload)

let blob_path dir key =
  Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".blob")

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let kind = function
  | `Found _ -> "Found"
  | `Absent -> "Absent"
  | `Stale -> "Stale"
  | `Corrupt -> "Corrupt"

let check_kind name expected actual = Alcotest.(check string) name expected (kind actual)

let test_round_trip () =
  let dir = temp_dir () in
  let store = Store.open_ dir in
  let payload = "hello blob \x00\x01 with\nnewlines\nand bytes" in
  let key = key_of payload in
  Alcotest.(check bool) "put succeeds" true (Store.put store ~key payload);
  (match Store.find store ~key with
  | `Found p -> Alcotest.(check string) "payload round-trips" payload p
  | other -> Alcotest.failf "expected Found, got %s" (kind other));
  check_kind "unknown key" "Absent" (Store.find store ~key:"deadbeefdeadbeef");
  check_kind "invalid key" "Absent" (Store.find store ~key:"../../etc/passwd")

(* One matrix row: damage the blob with [mutate], then [find] must
   report [expected] without raising, and — when corrupt — the blob must
   be quarantined so the next lookup is a plain miss. *)
let matrix_row name mutate expected () =
  let dir = temp_dir () in
  let store = Store.open_ dir in
  let payload = "matrix payload: " ^ name in
  let key = key_of payload in
  Alcotest.(check bool) "put succeeds" true (Store.put store ~key payload);
  let path = blob_path dir key in
  write_file path (mutate (read_file path));
  check_kind (name ^ " detected") expected (Store.find store ~key);
  match expected with
  | "Corrupt" ->
      check_kind (name ^ " quarantined -> miss") "Absent" (Store.find store ~key);
      Alcotest.(check bool)
        (name ^ " .corrupt file kept") true
        (Sys.file_exists (path ^ ".corrupt"))
  | "Stale" ->
      (* Version mismatches are not damage: left in place for [clear]. *)
      check_kind (name ^ " still stale") "Stale" (Store.find store ~key);
      Alcotest.(check bool) (name ^ " not quarantined") false
        (Sys.file_exists (path ^ ".corrupt"))
  | _ -> ()

let truncated content = String.sub content 0 (String.length content / 2)

let bit_flipped content =
  let b = Bytes.of_string content in
  (* Flip a payload byte (past the "sf-store-2\n" header). *)
  let pos = min (Bytes.length b - 1) 15 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
  Bytes.to_string b

let empty _ = ""

let wrong_version content =
  let nl = String.index content '\n' in
  "sf-store-0" ^ String.sub content nl (String.length content - nl)

let oversized content = content ^ "trailing garbage beyond the checksum"

let checksum_garbage content =
  (* Keep the length plausible but make the trailer non-hex. *)
  String.sub content 0 (String.length content - 32) ^ String.make 32 'Z'

let test_no_trailing_newline () =
  let dir = temp_dir () in
  let store = Store.open_ dir in
  let payload = "p" in
  let key = key_of payload in
  Alcotest.(check bool) "put" true (Store.put store ~key payload);
  write_file (blob_path dir key) "sf-store-2\nshort";
  check_kind "short body is corrupt" "Corrupt" (Store.find store ~key)

(* A corrupt blob must never shadow the slot: after quarantine, a fresh
   [put] under the same key must serve the new payload. *)
let test_corrupt_then_rewrite () =
  let dir = temp_dir () in
  let store = Store.open_ dir in
  let payload = "original" in
  let key = key_of payload in
  Alcotest.(check bool) "put" true (Store.put store ~key payload);
  let path = blob_path dir key in
  write_file path (truncated (read_file path));
  check_kind "detected" "Corrupt" (Store.find store ~key);
  Alcotest.(check bool) "re-put succeeds" true (Store.put store ~key payload);
  match Store.find store ~key with
  | `Found p -> Alcotest.(check string) "fresh payload served" payload p
  | other -> Alcotest.failf "expected Found after rewrite, got %s" (kind other)

let test_scrub () =
  let dir = temp_dir () in
  let store = Store.open_ dir in
  let payloads = [ "alpha"; "beta"; "gamma"; "delta" ] in
  List.iter (fun p -> ignore (Store.put store ~key:(key_of p) p)) payloads;
  (* Damage two, stale one. *)
  let damage p mutate =
    let path = blob_path dir (key_of p) in
    write_file path (mutate (read_file path))
  in
  damage "alpha" truncated;
  damage "beta" bit_flipped;
  damage "gamma" wrong_version;
  let r = Store.scrub store in
  Alcotest.(check int) "scanned" 4 r.Store.scanned;
  Alcotest.(check int) "ok" 1 r.Store.ok;
  Alcotest.(check int) "stale" 1 r.Store.stale;
  Alcotest.(check int) "corrupt" 2 r.Store.corrupt;
  (* Scrub quarantined the corrupt blobs: a second pass is clean. *)
  let r2 = Store.scrub store in
  Alcotest.(check int) "second scan" 2 r2.Store.scanned;
  Alcotest.(check int) "second corrupt" 0 r2.Store.corrupt;
  (* The intact blob still replays. *)
  match Store.find store ~key:(key_of "delta") with
  | `Found p -> Alcotest.(check string) "survivor intact" "delta" p
  | other -> Alcotest.failf "expected Found, got %s" (kind other)

(* [find] must never raise, whatever bytes are on disk — fuzz the blob
   with adversarial shapes, including huge headers and binary noise. *)
let test_find_never_raises () =
  let dir = temp_dir () in
  let store = Store.open_ dir in
  let payload = "fuzz" in
  let key = key_of payload in
  let path = blob_path dir key in
  let shapes =
    [
      "";
      "\n";
      "sf-store-2";
      "sf-store-2\n";
      "sf-store-2\n\n";
      "sf-store-2\nx\n" ^ String.make 31 'a';
      "sf-store-2\nx\n" ^ String.make 33 'a';
      String.make 4096 '\xff';
      "sf-store-2\n" ^ String.make 64 '\x00';
      "v1\npayload";
    ]
  in
  List.iter
    (fun shape ->
      ignore (Store.put store ~key payload);
      write_file path shape;
      match Store.find store ~key with
      | `Found p ->
          Alcotest.failf "damaged shape %S must not be Found (got %S)" shape p
      | `Absent | `Stale | `Corrupt -> ();
      (* Clean up any quarantine so the next shape starts fresh. *)
      (try Sys.remove (path ^ ".corrupt") with Sys_error _ -> ()))
    shapes

let suite =
  [
    Alcotest.test_case "round trip" `Quick test_round_trip;
    Alcotest.test_case "matrix: truncated" `Quick (matrix_row "truncated" truncated "Corrupt");
    Alcotest.test_case "matrix: bit-flipped" `Quick
      (matrix_row "bit-flipped" bit_flipped "Corrupt");
    Alcotest.test_case "matrix: empty" `Quick (matrix_row "empty" empty "Corrupt");
    Alcotest.test_case "matrix: wrong version" `Quick
      (matrix_row "wrong-version" wrong_version "Stale");
    Alcotest.test_case "matrix: oversized" `Quick (matrix_row "oversized" oversized "Corrupt");
    Alcotest.test_case "matrix: garbage checksum" `Quick
      (matrix_row "garbage-checksum" checksum_garbage "Corrupt");
    Alcotest.test_case "short body" `Quick test_no_trailing_newline;
    Alcotest.test_case "corrupt then rewrite" `Quick test_corrupt_then_rewrite;
    Alcotest.test_case "scrub" `Quick test_scrub;
    Alcotest.test_case "find never raises" `Quick test_find_never_raises;
  ]
