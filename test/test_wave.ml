module Wave = Sf_kernels.Wave
module Timeloop = Sf_sim.Timeloop
module Engine = Sf_sim.Engine
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor

let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

let test_single_step_validates () =
  let p = Wave.program ~shape:[ 16; 16 ] () in
  match Engine.run_and_validate ~config:cheap ~inputs:(Wave.pulse_inputs p) p with
  | Ok _ -> ()
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_two_field_feedback () =
  (* The pass-through output carries u into u_prev: after one step,
     u_prev of step 2 equals u of step 1 — checked by comparing the
     unrolled spatial program against the sequential loop. *)
  let p = Wave.program ~shape:[ 12; 12 ] () in
  let inputs = Wave.pulse_inputs p in
  let looped = Timeloop.run_reference p ~steps:4 ~feedback:Wave.feedback ~inputs in
  match Timeloop.run_simulated ~config:cheap p ~steps:4 ~feedback:Wave.feedback ~inputs with
  | Error m -> Alcotest.fail m
  | Ok finals ->
      List.iter
        (fun (name, expected) ->
          Alcotest.(check bool) (name ^ " equal") true
            (Tensor.max_abs_diff expected (List.assoc name finals) < 1e-9))
        looped

let test_wave_physics () =
  (* A pulse at rest spreads outward: the centre amplitude decreases and
     energy appears away from the centre; with c=1, dt2=0.1 the scheme is
     stable (values stay bounded). On an odd grid centred on the pulse,
     mirror symmetry is exact (commutativity); transpose symmetry only
     holds up to float associativity, hence the looser tolerance. *)
  let p = Wave.program ~shape:[ 33; 33 ] () in
  let inputs = Wave.pulse_inputs p in
  let finals = Timeloop.run_reference p ~steps:10 ~feedback:Wave.feedback ~inputs in
  let u = List.assoc "u_next" finals in
  let initial_centre = Tensor.get (List.assoc "u" inputs) [ 16; 16 ] in
  Alcotest.(check bool) "centre decays" true (Tensor.get u [ 16; 16 ] < initial_centre);
  Array.iter
    (fun v -> Alcotest.(check bool) "bounded" true (Float.abs v <= 1.5))
    u.Tensor.data;
  for d = 1 to 15 do
    Alcotest.(check (float 1e-12)) "mirror symmetry"
      (Tensor.get u [ 16; 16 + d ])
      (Tensor.get u [ 16; 16 - d ]);
    Alcotest.(check (float 1e-7)) "axis symmetry"
      (Tensor.get u [ 16 + d; 16 ])
      (Tensor.get u [ 16; 16 + d ])
  done

let test_unrolled_wave_is_one_dag () =
  (* 3 steps x 3 stencils; the pass-through keeps every level alive. *)
  let p = Wave.program ~shape:[ 8; 8 ] () in
  let unrolled = Timeloop.unroll p ~steps:3 ~feedback:Wave.feedback in
  Alcotest.(check int) "9 stencils" 9 (List.length unrolled.Sf_ir.Program.stencils);
  match Engine.run_and_validate ~config:cheap ~inputs:(Wave.pulse_inputs p) unrolled with
  | Ok _ -> ()
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let suite =
  [
    Alcotest.test_case "single step validates" `Quick test_single_step_validates;
    Alcotest.test_case "two-field feedback round trip" `Quick test_two_field_feedback;
    Alcotest.test_case "wave physics sanity" `Quick test_wave_physics;
    Alcotest.test_case "unrolled wave simulates" `Quick test_unrolled_wave_is_one_dag;
  ]
